// Direct convolution via PARLOOPER/TPP on a ResNet-50 layer shape, showing
// the Listing-4 pattern: one identical kernel, multiple loop_spec_strings —
// and a full scaled ResNet-50 forward pass on top.
//
//   ./resnet_conv [loop_spec_string]
#include <cstdio>
#include <string>

#include "common/timer.hpp"
#include "dl/resnet.hpp"
#include "kernels/conv_kernel.hpp"

using namespace plt;

int main(int argc, char** argv) {
  // Layer 8 of the Fig. 7 table: 128x128 3x3 on 28x28.
  kernels::ConvConfig cfg;
  cfg.N = 1;
  cfg.C = 128;
  cfg.K = 128;
  cfg.H = cfg.W = 28;
  cfg.R = cfg.S = 3;
  cfg.pad_h = cfg.pad_w = 1;
  cfg.bc = cfg.bk = 32;
  if (argc > 1) cfg.loop_spec = argv[1];
  kernels::ConvKernel conv(cfg);

  Xoshiro256 rng(9);
  std::vector<float> input(static_cast<std::size_t>(cfg.C * cfg.H * cfg.W));
  std::vector<float> weights(static_cast<std::size_t>(cfg.K * cfg.C * 9));
  fill_uniform(input.data(), input.size(), rng, -1.0f, 1.0f);
  fill_uniform(weights.data(), weights.size(), rng, -0.1f, 0.1f);
  AlignedBuffer<std::uint8_t> in_b(conv.input_elems() * 4);
  AlignedBuffer<std::uint8_t> w_b(conv.weight_elems() * 4);
  AlignedBuffer<std::uint8_t> out_b(conv.output_elems() * 4);
  conv.pack_input(input.data(), in_b.data());
  conv.pack_weights(weights.data(), w_b.data());

  const double s = time_best_seconds(
      [&] { conv.run(in_b.data(), w_b.data(), out_b.data()); }, 1, 3);
  std::printf("conv 128x128 3x3 @28x28 spec '%s': %.2f GFLOPS\n",
              cfg.loop_spec.c_str(), gflops(conv.flops(), s));

  // Full (scaled) ResNet-50 forward.
  dl::ResNetConfig rcfg;
  rcfg.N = 1;
  rcfg.image = 64;
  rcfg.channel_scale = 4;
  dl::ResNet50 model(rcfg, rng);
  std::vector<float> img(static_cast<std::size_t>(3 * rcfg.image * rcfg.image));
  fill_uniform(img.data(), img.size(), rng, -1.0f, 1.0f);
  std::vector<float> logits(1000);
  WallTimer t;
  model.forward(img.data(), logits.data());
  std::printf("scaled ResNet-50 forward: %.1f ms (%.2f GFLOP)\n", t.millis(),
              model.forward_flops() / 1e9);
  std::printf("logits[0..3]: %.4f %.4f %.4f %.4f\n", logits[0], logits[1],
              logits[2], logits[3]);
  return 0;
}
