// End-to-end BERT-style encoder inference on synthetic tokens: embeddings
// (lookup + layernorm) followed by a stack of PARLOOPER/TPP encoder layers —
// the workload family of Section IV-A, runnable in both fp32 and bf16.
//
//   ./bert_inference [fp32|bf16]
#include <cstdio>
#include <cstring>

#include "common/timer.hpp"
#include "dl/bert.hpp"

using namespace plt;

int main(int argc, char** argv) {
  dl::BertConfig cfg = dl::BertConfig::base_scaled();
  if (argc > 1 && std::strcmp(argv[1], "bf16") == 0) cfg.dtype = DType::BF16;

  Xoshiro256 rng(7);
  dl::BertEmbeddings embeddings(cfg, /*vocab=*/8192, rng);
  dl::BertEncoder encoder(cfg, rng);

  // Synthetic token stream (stands in for a SQuAD batch; see DESIGN.md).
  std::vector<std::int32_t> tokens(static_cast<std::size_t>(cfg.tokens()));
  for (auto& t : tokens) t = static_cast<std::int32_t>(rng.bounded(8192));

  dl::Tensor x({cfg.tokens(), cfg.hidden}), y(x);
  embeddings.forward(tokens.data(), x.data(), rng);

  encoder.forward(x.data(), y.data(), rng);  // warmup
  const int iters = 5;
  WallTimer t;
  for (int i = 0; i < iters; ++i) encoder.forward(x.data(), y.data(), rng);
  const double s = t.seconds() / iters;

  std::printf("BERT encoder (%s): hidden=%ld heads=%ld layers=%ld seq=%ld\n",
              cfg.dtype == DType::BF16 ? "bf16" : "fp32",
              static_cast<long>(cfg.hidden), static_cast<long>(cfg.heads),
              static_cast<long>(cfg.layers), static_cast<long>(cfg.seq_len));
  std::printf("latency %.2f ms  |  %.2f sequences/sec  |  %.2f GFLOPS\n",
              s * 1e3, cfg.batch / s, encoder.forward_flops() / s * 1e-9);
  std::printf("output[0..3]: %.4f %.4f %.4f %.4f\n", y[0], y[1], y[2], y[3]);
  return 0;
}
