// Block-sparse transformer inference (Section IV-B): prune a dense encoder
// layer's weights to 80% block sparsity (8x8 blocks, magnitude pruning) and
// compare per-layer latency against the dense path — the Fig. 10 workflow
// as a library user would run it.
#include <cstdio>

#include "common/timer.hpp"
#include "dl/bert.hpp"

using namespace plt;

int main() {
  dl::BertConfig cfg;
  cfg.hidden = 256;
  cfg.heads = 4;
  cfg.intermediate = 1024;
  cfg.seq_len = 128;
  cfg.layers = 1;

  Xoshiro256 rng(13);
  dl::BertEncoderLayer dense(cfg, rng);
  dl::SparseBertEncoderLayer sparse(cfg, /*sparsity=*/0.8, /*block=*/8, rng);

  dl::Tensor x({cfg.tokens(), cfg.hidden}), y(x);
  x.randn_uniform(rng, -1.0f, 1.0f);

  Xoshiro256 drop(1);
  dense.forward(x.data(), y.data(), drop);
  const int iters = 10;
  WallTimer td;
  for (int i = 0; i < iters; ++i) dense.forward(x.data(), y.data(), drop);
  const double dense_ms = td.millis() / iters;

  sparse.forward(x.data(), y.data());
  WallTimer ts;
  for (int i = 0; i < iters; ++i) sparse.forward(x.data(), y.data());
  const double sparse_ms = ts.millis() / iters;

  std::printf("encoder layer latency: dense %.2f ms, 80%% block-sparse %.2f "
              "ms -> %.2fx speedup\n",
              dense_ms, sparse_ms, dense_ms / sparse_ms);
  std::printf("contraction flops kept: %.0f%% (expected ~20%% at 80%% "
              "sparsity)\n",
              100.0 * sparse.effective_flops() / sparse.dense_flops());
  return 0;
}
