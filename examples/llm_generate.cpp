// LLM text-generation loop (Fig. 11 workload as an application): prefill a
// prompt through a GPT-J-style decoder, then generate tokens one at a time
// against the KV cache, reporting the two latency regimes.
//
//   ./llm_generate [prompt_len] [gen_tokens]
#include <cstdio>
#include <cstdlib>

#include "dl/llm.hpp"

using namespace plt;

int main(int argc, char** argv) {
  const std::int64_t prompt = argc > 1 ? std::atoll(argv[1]) : 256;
  const std::int64_t gen = argc > 2 ? std::atoll(argv[2]) : 16;

  dl::LlmConfig cfg = dl::LlmConfig::gptj_scaled();
  cfg.max_seq = prompt + gen;
  Xoshiro256 rng(17);
  dl::LlmModel model(cfg, rng);

  const auto t = model.generate(prompt, gen, rng);
  std::printf("decoder: hidden=%ld layers=%ld heads=%ld | prompt=%ld gen=%ld\n",
              static_cast<long>(cfg.hidden), static_cast<long>(cfg.layers),
              static_cast<long>(cfg.heads), static_cast<long>(prompt),
              static_cast<long>(gen));
  std::printf("first token: %.2f ms (prefill, compute bound — %.2f GFLOP)\n",
              t.first_token_ms, model.prefill_flops(prompt) / 1e9);
  std::printf("next tokens: %.3f ms each (KV-cache decode, bandwidth bound)\n",
              t.per_next_token_ms);
  return 0;
}
