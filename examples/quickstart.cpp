// Quickstart: the Listing-1 GEMM, written exactly as in the paper —
// declare three logical loops, express the body with zero_tpp + brgemm_tpp,
// and pick the loop instantiation with a runtime loop_spec_string.
//
//   ./quickstart            # default spec
//   ./quickstart bcaBCb     # any other spec: zero code change
#include <cstdio>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/timer.hpp"
#include "parlooper/threaded_loop.hpp"
#include "tpp/brgemm.hpp"
#include "tpp/unary.hpp"

using namespace plt;

int main(int argc, char** argv) {
  // Problem: C(M x N) = A(M x K) x B(K x N), blocked by (bm, bn, bk).
  const std::int64_t M = 512, N = 512, K = 512;
  const std::int64_t bm = 32, bn = 32, bk = 32;
  const std::int64_t Mb = M / bm, Nb = N / bn, Kb = K / bk;
  const std::string loop_spec_string = argc > 1 ? argv[1] : "bcaBCb";

  // Blocked tensors: A[Mb][Kb][bk][bm], B[Nb][Kb][bn][bk], C[Nb][Mb][bn][bm].
  std::vector<float> A(static_cast<std::size_t>(M * K));
  std::vector<float> B(static_cast<std::size_t>(K * N));
  std::vector<float> C(static_cast<std::size_t>(M * N));
  Xoshiro256 rng(1);
  fill_uniform(A.data(), A.size(), rng, -0.5f, 0.5f);
  fill_uniform(B.data(), B.size(), rng, -0.5f, 0.5f);

  // The two TPPs of Listing 1.
  tpp::UnaryTPP zero_tpp(tpp::UnaryKind::kZero, bm, bn);
  tpp::BrgemmTPP brgemm_tpp(bm, bn, bk, /*stride_a=*/bk * bm,
                            /*stride_b=*/bn * bk, /*beta=*/1.0f);

  // Logical loop declaration (a = K blocks, b = M blocks, c = N blocks).
  const std::int64_t k_step = 1;
  // Blocking lists: outermost-first sizes consumed by repeated letters
  // ("bcaBCb" blocks the M loop twice and the N loop once).
  parlooper::ThreadedLoop<3> gemm_loop(
      {parlooper::LoopSpecs{0, Kb, k_step, {4}},
       parlooper::LoopSpecs{0, Mb, 1, {4, 2}},
       parlooper::LoopSpecs{0, Nb, 1, {4, 2}}},
      loop_spec_string);

  WallTimer t;
  gemm_loop([&](const std::int64_t* ind) {
    const std::int64_t ik = ind[0], im = ind[1], in = ind[2];
    float* c_blk = C.data() + (in * Mb + im) * bn * bm;
    if (ik == 0) zero_tpp(nullptr, c_blk);
    brgemm_tpp(A.data() + (im * Kb + ik) * bk * bm,
               B.data() + (in * Kb + ik) * bn * bk, c_blk, k_step);
  });
  const double secs = t.seconds();

  std::printf("GEMM %ldx%ldx%ld with spec '%s': %.2f GFLOPS (%.2f ms)\n",
              static_cast<long>(M), static_cast<long>(N), static_cast<long>(K),
              loop_spec_string.c_str(), gflops(2.0 * M * N * K, secs),
              secs * 1e3);
  std::printf("checksum C[0..3]: %.4f %.4f %.4f %.4f\n", C[0], C[1], C[2], C[3]);
  return 0;
}
