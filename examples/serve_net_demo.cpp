// Network-serving demo: the serve_demo traffic pattern moved onto a real
// socket. Registers MLP + BERT + LLM sessions, starts the epoll Server on a
// loopback port, drives mixed-tenant traffic through blocking wire Clients,
// and then showcases the two production moves the front-end exists for:
//
//   * per-tenant quotas — a greedy tenant is answered RESOURCE_EXHAUSTED on
//     the wire before its requests ever touch the scheduler;
//   * zero-downtime hot reload — ModelRegistry::reload() swaps a new MLP
//     model (different weights) under live traffic, and the demo prints the
//     moment responses flip from old-version outputs to new-version outputs
//     with zero failed requests across the swap.
//
//   ./example_serve_net_demo [seconds]
//
// Knobs: PLT_NET_PORT (0 = ephemeral), PLT_NET_MAX_CONNS,
// PLT_NET_TENANT_QPS / PLT_NET_TENANT_BURST, plus every PLT_SERVE_* /
// PLT_NUM_THREADS / PLT_RUNTIME serving knob, and the chaos pair
// PLT_FAULT_SPEC / PLT_FAULT_SEED (e.g. net_write:full:0.1 forces 1-byte
// short writes on the response path).
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "common/status.hpp"
#include "common/timer.hpp"
#include "net/client.hpp"
#include "net/server.hpp"
#include "net/wire.hpp"
#include "serving/model_registry.hpp"
#include "serving/scheduler.hpp"
#include "serving/session.hpp"
#include "serving/watchdog.hpp"

using namespace plt;

namespace {

serving::MlpServeConfig demo_mlp() {
  serving::MlpServeConfig mlp;
  mlp.features = 128;
  mlp.layers = 2;
  mlp.tokens = 32;
  return mlp;
}

}  // namespace

int main(int argc, char** argv) {
  const double run_seconds = argc > 1 ? std::atof(argv[1]) : 2.0;
  const serving::SchedulerConfig cfg = serving::SchedulerConfig::from_env();
  const int lanes = cfg.max_batch;

  serving::ModelRegistry registry;
  registry.add(serving::make_mlp_session("mlp", demo_mlp(), lanes, 1));
  {
    dl::BertConfig bert;
    bert.hidden = 64;
    bert.heads = 4;
    bert.intermediate = 256;
    bert.layers = 1;
    bert.seq_len = 32;
    bert.bm = bert.bn = bert.bk = 16;
    registry.add(serving::make_bert_session("bert", bert, lanes, 2));

    dl::LlmConfig llm;
    llm.hidden = 64;
    llm.heads = 4;
    llm.layers = 2;
    llm.ffn = 256;
    llm.vocab = 256;
    llm.max_seq = 64;
    llm.bm = llm.bn = llm.bk = 16;
    registry.add(serving::make_llm_session("llm", llm, /*prompt=*/16,
                                           /*gen=*/4, lanes, 3));
  }

  serving::RequestScheduler scheduler(cfg);
  net::ServerConfig net_cfg = net::ServerConfig::from_env();
  net::Server server(registry, scheduler, net_cfg);
  const Status up = server.start();
  if (!up.ok()) {
    std::printf("server failed to start: %s\n", up.to_string().c_str());
    return 1;
  }
  // SIGTERM/SIGINT -> Server::begin_drain(): the listen port is released
  // immediately, in-flight requests flush to their terminal status, new
  // submits on live connections answer UNAVAILABLE "draining".
  server.install_signal_handlers();
  // Supervision (PLT_WATCHDOG_USECS > 0): wedged shard dispatchers are
  // quarantined/failed-over/restarted; the epoll loop gets a warn-only
  // probe (the watchdog cannot restart what it does not own).
  serving::Watchdog watchdog(&scheduler, &registry);
  watchdog.add_probe(
      "net.server", [&server] { return server.loop_epoch(); },
      [&server] { return server.loop_backlog(); });
  std::printf("serving %zu models on 127.0.0.1:%d (%d scheduler shard(s)); "
              "SIGTERM/SIGINT drains gracefully\n",
              registry.size(), server.port(), scheduler.shard_count());

  const auto print_stats = [&] {
    const auto st = server.stats();
    std::printf("\nserver stats: %llu conns, %llu frames, %llu responses, "
                "%llu quota-rejected, %llu drain-rejected, %llu protocol "
                "errors\n",
                static_cast<unsigned long long>(st.accepted),
                static_cast<unsigned long long>(st.frames),
                static_cast<unsigned long long>(st.responses),
                static_cast<unsigned long long>(st.quota_rejected),
                static_cast<unsigned long long>(st.drain_rejected),
                static_cast<unsigned long long>(st.protocol_errors));
    const auto c = scheduler.counters();
    std::printf("terminal accounting: %llu submitted = %llu completed + %llu "
                "failed + %llu expired + %llu shed + %llu rejected\n",
                static_cast<unsigned long long>(c.submitted),
                static_cast<unsigned long long>(c.completed),
                static_cast<unsigned long long>(c.failed),
                static_cast<unsigned long long>(c.expired),
                static_cast<unsigned long long>(c.shed),
                static_cast<unsigned long long>(c.rejected));
  };

  // --- mixed-tenant wire traffic ------------------------------------------
  constexpr int kClients = 4;
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> ok{0};
  std::atomic<std::uint64_t> not_ok{0};
  const auto sessions = registry.sessions();
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      net::Client client;
      if (!client.connect("127.0.0.1", server.port()).ok()) return;
      Xoshiro256 rng(static_cast<std::uint64_t>(c) + 177);
      std::uint64_t i = 0;
      while (!stop.load(std::memory_order_acquire)) {
        const auto& s = sessions[(static_cast<std::size_t>(c) + i) %
                                 sessions.size()];
        net::RequestFrame req;
        req.request_id = ++i;
        req.tenant_id = static_cast<std::uint64_t>(c);
        req.name = s->name();
        req.payload.resize(static_cast<std::size_t>(s->input_elems()));
        fill_uniform(req.payload.data(), req.payload.size(), rng, -1.0f, 1.0f);
        net::ResponseFrame resp;
        if (!client.call(req, &resp).ok()) break;
        if (resp.code == net::WireCode::kOk) {
          ok.fetch_add(1, std::memory_order_relaxed);
        } else {
          not_ok.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }

  WallTimer t;
  while (t.seconds() < run_seconds && !server.draining()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  stop.store(true, std::memory_order_release);
  for (auto& th : clients) th.join();
  const double secs = t.seconds();
  std::printf("\n%.1fs of wire traffic from %d clients: %llu OK, %llu not-OK "
              "(%.1f req/s aggregate)\n",
              secs, kClients, static_cast<unsigned long long>(ok.load()),
              static_cast<unsigned long long>(not_ok.load()),
              ok.load() / secs);

  if (server.draining()) {
    // A signal arrived mid-run: begin_drain() already released the port and
    // is flushing in-flight work. Skip the showcases and report the drain.
    std::printf("\ndrain requested (SIGTERM/SIGINT): listen port released, "
                "in-flight flushed, new submits answered UNAVAILABLE\n");
    server.stop();
    scheduler.shutdown();
    print_stats();
    return 0;
  }

  // --- failure + quota + reload showcase ----------------------------------
  std::printf("\nwire status semantics (every code is "
              "status_code_name(StatusCode) 1:1):\n");
  net::Client probe;
  if (!probe.connect("127.0.0.1", server.port()).ok()) return 1;
  const auto show = [&](const char* what, const net::ResponseFrame& resp) {
    std::printf("  %-34s -> %s%s%s\n", what, net::wire_code_name(resp.code),
                resp.message.empty() ? "" : ": ",
                resp.message.c_str());
  };

  net::RequestFrame bad;
  bad.request_id = 9001;
  bad.name = "no-such-model";
  bad.payload.resize(4);
  net::ResponseFrame resp;
  if (probe.call(bad, &resp).ok()) show("unknown model", resp);

  net::RequestFrame rush;
  rush.request_id = 9002;
  rush.name = "mlp";
  rush.payload.resize(static_cast<std::size_t>(sessions[0]->input_elems()));
  rush.deadline_usecs = 1;  // expires while queued: never executes
  if (probe.call(rush, &resp).ok()) show("deadline_usecs=1", resp);

  // Zero-downtime hot reload: swap in an MLP with new weights (seed 42)
  // while a background client hammers the same name. Every response across
  // the swap is OK — old-snapshot requests drain against the old weights,
  // new arrivals hit the new ones.
  std::printf("\nhot reload under live traffic:\n");
  std::vector<float> probe_in(
      static_cast<std::size_t>(sessions[0]->input_elems()), 0.25f);
  const auto sample = [&](const char* when) {
    net::RequestFrame r;
    r.request_id = 9100;
    r.name = "mlp";
    r.payload = probe_in;
    net::ResponseFrame rr;
    if (probe.call(r, &rr).ok() && rr.code == net::WireCode::kOk) {
      double sum = 0.0;
      for (const float v : rr.payload) sum += v;
      std::printf("  %-22s sum(out) = %+.6f\n", when, sum);
    }
  };
  sample("before reload:");
  std::atomic<std::uint64_t> reload_ok{0}, reload_bad{0};
  std::atomic<bool> reload_stop{false};
  std::thread hammer([&] {
    net::Client c;
    if (!c.connect("127.0.0.1", server.port()).ok()) return;
    net::RequestFrame r;
    r.name = "mlp";
    r.payload = probe_in;
    net::ResponseFrame rr;
    std::uint64_t id = 0;
    while (!reload_stop.load(std::memory_order_acquire)) {
      r.request_id = ++id;
      if (!c.call(r, &rr).ok()) break;
      (rr.code == net::WireCode::kOk ? reload_ok : reload_bad)
          .fetch_add(1, std::memory_order_relaxed);
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  registry.reload([&](const std::vector<std::shared_ptr<serving::Session>>&
                          current) {
    std::vector<std::shared_ptr<serving::Session>> next;
    for (const auto& s : current) {
      if (s->name() != "mlp") next.push_back(s);  // keep bert/llm as-is
    }
    next.push_back(serving::make_mlp_session("mlp", demo_mlp(), lanes,
                                             /*seed=*/42));
    return next;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  reload_stop.store(true, std::memory_order_release);
  hammer.join();
  sample("after reload (v42):");
  std::printf("  requests across the swap: %llu OK, %llu failed (registry "
              "version %llu)\n",
              static_cast<unsigned long long>(reload_ok.load()),
              static_cast<unsigned long long>(reload_bad.load()),
              static_cast<unsigned long long>(registry.version()));

  server.stop();
  scheduler.shutdown();
  print_stats();
  return 0;
}
