// Auto-tuning walkthrough (Section II-D/E): generate loop_spec_string
// candidates under the paper's constraints, pre-rank them with the cache-
// simulator performance model for an SPR-like target, benchmark the top
// candidates, and persist the results as CSV.
#include <cstdio>

#include "tuner/tuner.hpp"

using namespace plt;

int main() {
  kernels::GemmConfig base;
  base.M = base.N = base.K = 512;
  base.bm = base.bn = base.bk = 32;

  perfmodel::GemmModelProblem problem;
  problem.M = problem.N = problem.K = 512;
  problem.bm = problem.bn = problem.bk = 32;

  tuner::SpecGenOptions gen;
  gen.max_candidates = 24;
  const auto candidates = tuner::generate_gemm_candidates(problem, gen);
  std::printf("generated %zu candidate loop instantiations\n",
              candidates.size());

  tuner::TuneOptions opts;
  opts.model_top_k = 8;  // model prunes the search before any execution
  opts.platform = perfmodel::PlatformModel::spr_like();
  opts.model_threads = 8;
  tuner::GemmTuner tuner(base, opts);

  double tuning_seconds = 0.0;
  const auto results = tuner.run(candidates, &tuning_seconds);

  std::printf("benchmarked the model's top %zu in %.2fs:\n", results.size(),
              tuning_seconds);
  std::printf("%-24s %10s %12s\n", "spec", "GFLOPS", "model f/c");
  for (const auto& r : results) {
    std::printf("%-24s %10.2f %12.2f\n", r.candidate.spec.c_str(), r.gflops,
                r.model_score);
  }
  tuner::GemmTuner::write_csv("/tmp/parlooper_tune_results.csv", results);
  std::printf("results written to /tmp/parlooper_tune_results.csv\n");
  std::printf("best spec: '%s' — reuse it at runtime with zero code change.\n",
              results.front().candidate.spec.c_str());
  return 0;
}
