// Serving-layer demo: registers BERT + MLP + LLM sessions in the model
// registry, starts the micro-batching request scheduler, and drives mixed
// traffic from several client threads — the production-shaped entry point
// the ROADMAP's "batch/server layer" item asks for. Every handle is resolved
// through the Status API, and the tail of the run showcases the failure
// semantics: a request with an impossible deadline (DEADLINE_EXCEEDED), an
// injected kernel fault (INTERNAL + quarantine), and recovery.
//
//   ./example_serve_demo [seconds]
//
// Knobs: PLT_SERVE_MAX_BATCH, PLT_SERVE_BATCH_USECS, PLT_SERVE_QUEUE_CAP,
// PLT_SERVE_DEADLINE_USECS, PLT_SERVE_PRIORITY, PLT_SERVE_DECODE_STEP_TOKENS,
// PLT_NUM_THREADS, PLT_RUNTIME, and the chaos pair PLT_FAULT_SPEC /
// PLT_FAULT_SEED (e.g. PLT_FAULT_SPEC=kernel_exec:throw:0.01 fails ~1% of
// requests INTERNAL while everything else keeps serving).
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <thread>
#include <vector>

#include "common/fault.hpp"
#include "common/status.hpp"
#include "common/thread_pool.hpp"
#include "common/timer.hpp"
#include "serving/model_registry.hpp"
#include "serving/scheduler.hpp"
#include "serving/session.hpp"
#include "serving/watchdog.hpp"

using namespace plt;

int main(int argc, char** argv) {
  const double run_seconds = argc > 1 ? std::atof(argv[1]) : 2.0;
  const serving::SchedulerConfig cfg = serving::SchedulerConfig::from_env();
  const int lanes = cfg.max_batch;

  serving::ModelRegistry& registry = serving::ModelRegistry::instance();
  {
    serving::MlpServeConfig mlp;
    mlp.features = 128;
    mlp.layers = 2;
    mlp.tokens = 32;
    registry.add(serving::make_mlp_session("mlp", mlp, lanes, 1));

    dl::BertConfig bert;
    bert.hidden = 64;
    bert.heads = 4;
    bert.intermediate = 256;
    bert.layers = 1;
    bert.seq_len = 32;
    bert.bm = bert.bn = bert.bk = 16;
    registry.add(serving::make_bert_session("bert", bert, lanes, 2));

    dl::LlmConfig llm;
    llm.hidden = 64;
    llm.heads = 4;
    llm.layers = 2;
    llm.ffn = 256;
    llm.vocab = 256;
    llm.max_seq = 64;
    llm.bm = llm.bn = llm.bk = 16;
    registry.add(serving::make_llm_session("llm", llm, /*prompt=*/16,
                                           /*gen=*/4, lanes, 3));
  }
  std::printf("registered %zu models; max_batch=%d deadline=%ldus\n",
              registry.size(), cfg.max_batch,
              static_cast<long>(cfg.batch_usecs));

  serving::RequestScheduler scheduler(cfg);
  // Supervision (PLT_WATCHDOG_USECS > 0): a wedged dispatcher — e.g. the
  // dispatcher_stall chaos site — is quarantined, its sessions failed over,
  // and its thread restarted instead of hanging the demo forever. Period 0
  // (the default) never starts the thread.
  serving::Watchdog watchdog(&scheduler, &registry);
  const auto sessions = registry.sessions();
  std::printf("pool: %d threads, %d partitions; scheduler: %d shard(s)%s\n",
              ThreadPool::instance().size(),
              ThreadPool::instance().partitions(), scheduler.shard_count(),
              watchdog.running() ? "; watchdog on" : "");
  for (const auto& s : sessions) {
    std::printf("  %-6s -> partition %d, default class %s\n",
                s->name().c_str(), s->partition(),
                serving::request_class_name(s->default_class()));
  }

  constexpr int kClients = 4;
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> completed{0};
  std::atomic<std::uint64_t> not_ok{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      Xoshiro256 rng(static_cast<std::uint64_t>(c) + 77);
      std::uint64_t i = 0;
      while (!stop.load(std::memory_order_acquire)) {
        const auto& s = sessions[(static_cast<std::size_t>(c) + i++) %
                                 sessions.size()];
        std::vector<float> in(static_cast<std::size_t>(s->input_elems()));
        std::vector<float> out(static_cast<std::size_t>(s->output_elems()));
        fill_uniform(in.data(), in.size(), rng, -1.0f, 1.0f);
        serving::Request req;
        req.in = in.data();
        req.out = out.data();  // cls stays kSessionDefault: the session's
                               // default class (llm -> latency) applies
        auto h = scheduler.submit(s, req);
        if (!h.ok()) {
          // Shed/rejected at admission (or scheduler shut down): the handle
          // is already terminal with the reason attached.
          not_ok.fetch_add(1, std::memory_order_relaxed);
          if (h.status().code() == StatusCode::kUnavailable) break;
          continue;
        }
        h.wait();
        if (h.status().ok()) {
          completed.fetch_add(1, std::memory_order_relaxed);
        } else {
          not_ok.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }

  WallTimer t;
  while (t.seconds() < run_seconds) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  stop.store(true, std::memory_order_release);
  for (auto& th : clients) th.join();
  const double secs = t.seconds();
  scheduler.shutdown();

  std::printf("\n%.1fs of mixed traffic from %d clients: %llu OK, %llu "
              "not-OK (%.1f req/s aggregate)\n\n", secs, kClients,
              static_cast<unsigned long long>(completed.load()),
              static_cast<unsigned long long>(not_ok.load()),
              completed.load() / secs);
  std::printf("%-8s %9s %8s %11s %7s %6s %11s %11s %7s\n", "model",
              "requests", "batches", "mean batch", "steps", "occ",
              "mean lat us", "max lat us", "depth");
  for (const auto& st : scheduler.stats()) {
    std::printf("%-8s %9llu %8llu %11.2f %7llu %6.2f %11.1f %11.1f %7zu\n",
                st.model.c_str(),
                static_cast<unsigned long long>(st.requests),
                static_cast<unsigned long long>(st.batches), st.mean_batch(),
                static_cast<unsigned long long>(st.decode_steps),
                st.mean_decode_occupancy(), st.mean_latency_us(),
                st.max_latency_us, st.pending_highwater);
  }
  std::printf("admission-queue depth highwater: %zu\n",
              scheduler.queue_depth_highwater());
  const auto c = scheduler.counters();
  std::printf("terminal accounting: %llu submitted = %llu completed + %llu "
              "failed + %llu expired + %llu shed + %llu rejected\n",
              static_cast<unsigned long long>(c.submitted),
              static_cast<unsigned long long>(c.completed),
              static_cast<unsigned long long>(c.failed),
              static_cast<unsigned long long>(c.expired),
              static_cast<unsigned long long>(c.shed),
              static_cast<unsigned long long>(c.rejected));

  // --- failure-semantics showcase -----------------------------------------
  // A second scheduler so the demo's deliberate failures don't pollute the
  // traffic stats above.
  std::printf("\nfailure semantics:\n");
  serving::RequestScheduler demo(cfg);
  const auto& victim = sessions[0];
  std::vector<float> in(static_cast<std::size_t>(victim->input_elems()), 0.5f);
  std::vector<float> out(static_cast<std::size_t>(victim->output_elems()));
  const auto show = [&](const char* what, const serving::RequestHandle& h) {
    std::printf("  %-34s -> %s [%s] (%.1f us)\n", what,
                h.status().to_string().c_str(),
                serving::request_class_name(h.request_class()),
                h.latency_us());
  };

  serving::Request rush;
  rush.in = in.data();
  rush.out = out.data();
  rush.cls = serving::RequestClass::kLatency;
  rush.deadline_usecs = 1;  // expires while queued: never executes
  auto h_dl = demo.submit(victim, rush);
  h_dl.wait();
  show("deadline_usecs=1", h_dl);

  serving::Request plain;
  plain.in = in.data();
  plain.out = out.data();

  common::fault::configure("kernel_exec:throw:1.0", /*seed=*/1);
  auto h_fault = demo.submit(victim, plain);
  std::printf("  %-34s -> %s\n", "status() before done()",
              h_fault.status().to_string().c_str());
  h_fault.wait();
  common::fault::reset();
  show("kernel_exec:throw:1.0 injected", h_fault);

  // The poisoned request quarantined its session; everyone else still serves.
  auto h_q = demo.submit(victim, plain);
  show("submit to quarantined session", h_q);
  auto h_other = demo.submit(sessions[1 % sessions.size()], plain);
  h_other.wait();
  show("submit to healthy session", h_other);

  victim->mark_healthy();
  auto h_back = demo.submit(victim, plain);
  h_back.wait();
  show("after mark_healthy()", h_back);
  demo.shutdown();
  return 0;
}
