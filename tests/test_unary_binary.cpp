#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "test_utils.hpp"
#include "tpp/binary.hpp"
#include "tpp/unary.hpp"

namespace plt::tpp {
namespace {

using plt::test::expect_allclose;
using plt::test::random_vec;

// ---------- parameterized elementwise sweep ----------

using UnaryParam = std::tuple<UnaryKind, std::int64_t, std::int64_t>;

class UnaryElementwiseP : public ::testing::TestWithParam<UnaryParam> {};

TEST_P(UnaryElementwiseP, MatchesScalarReference) {
  const auto [kind, rows, cols] = GetParam();
  // Positive-shifted input keeps sqrt/rsqrt/reciprocal well-defined.
  const bool needs_positive = kind == UnaryKind::kSqrt ||
                              kind == UnaryKind::kRsqrt ||
                              kind == UnaryKind::kReciprocal;
  auto in = random_vec(static_cast<std::size_t>(rows * cols), 11,
                       needs_positive ? 0.1f : -2.0f, 2.0f);
  std::vector<float> out(in.size(), -7.0f);
  UnaryTPP tpp(kind, rows, cols);
  tpp(in.data(), out.data());
  for (std::size_t i = 0; i < in.size(); ++i) {
    ASSERT_FLOAT_EQ(out[i], unary_scalar_op(kind, in[i], 1.0f)) << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Kinds, UnaryElementwiseP,
    ::testing::Combine(
        ::testing::Values(UnaryKind::kZero, UnaryKind::kCopy, UnaryKind::kRelu,
                          UnaryKind::kGelu, UnaryKind::kTanh,
                          UnaryKind::kSigmoid, UnaryKind::kExp,
                          UnaryKind::kSqrt, UnaryKind::kRsqrt,
                          UnaryKind::kReciprocal, UnaryKind::kNegate,
                          UnaryKind::kSquare, UnaryKind::kAbs),
        ::testing::Values<std::int64_t>(1, 7, 16),
        ::testing::Values<std::int64_t>(1, 5, 32)));

TEST(UnaryTPP, StridedLeadingDimensions) {
  const std::int64_t rows = 5, cols = 4, ldi = 9, ldo = 7;
  auto in = random_vec(static_cast<std::size_t>(ldi * cols), 3);
  std::vector<float> out(static_cast<std::size_t>(ldo * cols), -1.0f);
  UnaryTPP tpp(UnaryDesc{UnaryKind::kRelu, rows, cols, ldi, ldo,
                         DType::F32, DType::F32, 1.0f});
  tpp(in.data(), out.data());
  for (std::int64_t j = 0; j < cols; ++j) {
    for (std::int64_t i = 0; i < rows; ++i) {
      EXPECT_FLOAT_EQ(out[static_cast<std::size_t>(i + j * ldo)],
                      std::max(0.0f, in[static_cast<std::size_t>(i + j * ldi)]));
    }
    // Padding between columns is untouched.
    for (std::int64_t i = rows; i < ldo; ++i) {
      EXPECT_FLOAT_EQ(out[static_cast<std::size_t>(i + j * ldo)], -1.0f);
    }
  }
}

TEST(UnaryTPP, ScaleAndLeakyReluUseAlpha) {
  auto in = random_vec(32, 5);
  std::vector<float> out(32);
  UnaryTPP scale(UnaryDesc{UnaryKind::kScale, 8, 4, 0, 0, DType::F32,
                           DType::F32, 2.5f});
  scale(in.data(), out.data());
  for (std::size_t i = 0; i < 32; ++i) EXPECT_FLOAT_EQ(out[i], 2.5f * in[i]);

  UnaryTPP leaky(UnaryDesc{UnaryKind::kLeakyRelu, 8, 4, 0, 0, DType::F32,
                           DType::F32, 0.1f});
  leaky(in.data(), out.data());
  for (std::size_t i = 0; i < 32; ++i)
    EXPECT_FLOAT_EQ(out[i], in[i] > 0 ? in[i] : 0.1f * in[i]);
}

TEST(UnaryTPP, CopyConvertsBf16BothWays) {
  auto in = random_vec(64, 17);
  std::vector<bf16> mid(64);
  std::vector<float> back(64);
  UnaryTPP down(UnaryKind::kCopy, 8, 8, DType::F32, DType::BF16);
  UnaryTPP up(UnaryKind::kCopy, 8, 8, DType::BF16, DType::F32);
  down(in.data(), mid.data());
  up(mid.data(), back.data());
  for (std::size_t i = 0; i < 64; ++i) {
    EXPECT_EQ(back[i], bf16::from_f32(in[i]).to_f32());
  }
}

TEST(UnaryTPP, ZeroIgnoresInputDtype) {
  std::vector<float> out(16, 5.0f);
  UnaryTPP z(UnaryKind::kZero, 4, 4);
  z(nullptr, out.data());  // zero never reads the input
  for (float v : out) EXPECT_EQ(v, 0.0f);
}

TEST(UnaryTPP, ReluBwdMasksBySavedInput) {
  auto grad = random_vec(24, 21);
  auto saved = random_vec(24, 22);
  std::vector<float> out(24);
  UnaryTPP tpp(UnaryKind::kReluBwd, 6, 4);
  tpp(grad.data(), out.data(), saved.data());
  for (std::size_t i = 0; i < 24; ++i)
    EXPECT_FLOAT_EQ(out[i], saved[i] > 0 ? grad[i] : 0.0f);
}

TEST(UnaryTPP, GeluBwdMatchesFiniteDifference) {
  auto x = random_vec(16, 31, -1.5f, 1.5f);
  std::vector<float> grad(16, 1.0f), got(16);
  UnaryTPP tpp(UnaryKind::kGeluBwd, 4, 4);
  tpp(grad.data(), got.data(), x.data());
  const float h = 1e-3f;
  for (std::size_t i = 0; i < 16; ++i) {
    const float fd = (gelu_fwd_scalar(x[i] + h) - gelu_fwd_scalar(x[i] - h)) /
                     (2.0f * h);
    EXPECT_NEAR(got[i], fd, 5e-3f) << "x=" << x[i];
  }
}

// ---------- reductions ----------

TEST(UnaryTPP, ReduceSumAndMax) {
  const std::int64_t rows = 6, cols = 5;
  auto in = random_vec(static_cast<std::size_t>(rows * cols), 13);
  std::vector<float> row_sum(static_cast<std::size_t>(cols));
  std::vector<float> col_sum(static_cast<std::size_t>(rows));
  std::vector<float> row_max(static_cast<std::size_t>(cols));
  UnaryTPP(UnaryKind::kReduceSumRows, rows, cols)(in.data(), row_sum.data());
  UnaryTPP(UnaryKind::kReduceSumCols, rows, cols)(in.data(), col_sum.data());
  UnaryTPP(UnaryKind::kReduceMaxRows, rows, cols)(in.data(), row_max.data());
  for (std::int64_t j = 0; j < cols; ++j) {
    float s = 0.0f, mx = -1e30f;
    for (std::int64_t i = 0; i < rows; ++i) {
      s += in[static_cast<std::size_t>(i + j * rows)];
      mx = std::max(mx, in[static_cast<std::size_t>(i + j * rows)]);
    }
    EXPECT_NEAR(row_sum[static_cast<std::size_t>(j)], s, 1e-5f);
    EXPECT_FLOAT_EQ(row_max[static_cast<std::size_t>(j)], mx);
  }
  for (std::int64_t i = 0; i < rows; ++i) {
    float s = 0.0f;
    for (std::int64_t j = 0; j < cols; ++j)
      s += in[static_cast<std::size_t>(i + j * rows)];
    EXPECT_NEAR(col_sum[static_cast<std::size_t>(i)], s, 1e-5f);
  }
}

// ---------- binary ----------

using BinaryParam = std::tuple<BinaryKind, Broadcast>;

class BinaryP : public ::testing::TestWithParam<BinaryParam> {};

TEST_P(BinaryP, MatchesScalarReference) {
  const auto [kind, bcast] = GetParam();
  const std::int64_t rows = 7, cols = 6;
  std::size_t in0_elems = static_cast<std::size_t>(rows * cols);
  if (bcast == Broadcast::kRow) in0_elems = static_cast<std::size_t>(cols);
  if (bcast == Broadcast::kCol) in0_elems = static_cast<std::size_t>(rows);
  if (bcast == Broadcast::kScalar) in0_elems = 1;
  auto in0 = random_vec(in0_elems, 41, 0.5f, 2.0f);  // positive: div-safe
  auto in1 = random_vec(static_cast<std::size_t>(rows * cols), 42, 0.5f, 2.0f);
  std::vector<float> out(in1.size());
  BinaryTPP tpp(kind, rows, cols, DType::F32, bcast);
  tpp(in0.data(), in1.data(), out.data());
  for (std::int64_t j = 0; j < cols; ++j) {
    for (std::int64_t i = 0; i < rows; ++i) {
      float a = 0.0f;
      switch (bcast) {
        case Broadcast::kNone: a = in0[static_cast<std::size_t>(i + j * rows)]; break;
        case Broadcast::kRow: a = in0[static_cast<std::size_t>(j)]; break;
        case Broadcast::kCol: a = in0[static_cast<std::size_t>(i)]; break;
        case Broadcast::kScalar: a = in0[0]; break;
      }
      const float b = in1[static_cast<std::size_t>(i + j * rows)];
      ASSERT_FLOAT_EQ(out[static_cast<std::size_t>(i + j * rows)],
                      binary_scalar_op(kind, a, b));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    KindsAndBroadcasts, BinaryP,
    ::testing::Combine(::testing::Values(BinaryKind::kAdd, BinaryKind::kSub,
                                         BinaryKind::kMul, BinaryKind::kDiv,
                                         BinaryKind::kMax, BinaryKind::kMin),
                       ::testing::Values(Broadcast::kNone, Broadcast::kRow,
                                         Broadcast::kCol, Broadcast::kScalar)));

TEST(BinaryTPP, MixedPrecisionAdd) {
  auto a = random_vec(16, 51);
  auto bf = plt::test::to_bf16(random_vec(16, 52));
  std::vector<float> out(16);
  BinaryTPP tpp(BinaryDesc{BinaryKind::kAdd, 4, 4, 0, 0, 0, DType::F32,
                           DType::BF16, DType::F32, Broadcast::kNone});
  tpp(a.data(), bf.data(), out.data());
  for (std::size_t i = 0; i < 16; ++i)
    EXPECT_FLOAT_EQ(out[i], a[i] + bf[i].to_f32());
}

TEST(UnaryTPP, RejectsBadDescriptors) {
  EXPECT_THROW(UnaryTPP(UnaryKind::kCopy, 0, 4), std::invalid_argument);
  EXPECT_THROW(UnaryTPP(UnaryDesc{UnaryKind::kCopy, 8, 4, 2 /* ldi < rows */,
                                  0, DType::F32, DType::F32, 1.0f}),
               std::invalid_argument);
}

}  // namespace
}  // namespace plt::tpp
