#include <gtest/gtest.h>

#include <tuple>

#include "baselines/ref_conv.hpp"
#include "baselines/ref_gemm.hpp"
#include "kernels/conv_kernel.hpp"
#include "kernels/gemm_kernel.hpp"
#include "kernels/mlp_kernel.hpp"
#include "kernels/spmm_kernel.hpp"
#include "test_utils.hpp"
#include "tpp/unary.hpp"

namespace plt::kernels {
namespace {

using plt::test::expect_allclose;
using plt::test::naive_gemm;
using plt::test::random_vec;

// ---------- GEMM kernel: spec sweep x dtype ----------

using GemmParam = std::tuple<const char*, DType>;

class GemmKernelP : public ::testing::TestWithParam<GemmParam> {};

TEST_P(GemmKernelP, MatchesNaiveUnderAnySpec) {
  const auto [spec, dtype] = GetParam();
  GemmConfig cfg;
  cfg.M = 64;
  cfg.N = 48;
  cfg.K = 32;
  cfg.bm = 16;
  cfg.bn = 8;
  cfg.bk = 8;
  cfg.dtype = dtype;
  cfg.loop_spec = spec;
  cfg.m_blocking = {2};
  cfg.n_blocking = {3};
  GemmKernel kernel(cfg);

  auto a_flat = random_vec(static_cast<std::size_t>(cfg.M * cfg.K), 1);
  auto b_flat = random_vec(static_cast<std::size_t>(cfg.K * cfg.N), 2);
  AlignedBuffer<std::uint8_t> a(kernel.a_elems() * dtype_size(dtype));
  AlignedBuffer<std::uint8_t> b(kernel.b_elems() * dtype_size(dtype));
  AlignedBuffer<std::uint8_t> c(kernel.c_elems() * dtype_size(dtype));
  kernel.pack_a(a_flat.data(), a.data());
  kernel.pack_b(b_flat.data(), b.data());
  kernel.run(a.data(), b.data(), c.data());

  std::vector<float> got(static_cast<std::size_t>(cfg.M * cfg.N));
  kernel.unpack_c(c.data(), got.data());

  std::vector<float> want(got.size(), 0.0f);
  if (dtype == DType::BF16) {
    // Round the operands the way the kernel sees them.
    for (auto& v : a_flat) v = bf16::from_f32(v).to_f32();
    for (auto& v : b_flat) v = bf16::from_f32(v).to_f32();
  }
  naive_gemm(a_flat.data(), b_flat.data(), want.data(), cfg.M, cfg.N, cfg.K,
             cfg.M, cfg.K, cfg.M, 0.0f);
  const float tol = dtype == DType::BF16 ? 0.05f : 1e-4f;
  expect_allclose(got.data(), want.data(), got.size(), tol, spec);
}

INSTANTIATE_TEST_SUITE_P(
    SpecsAndTypes, GemmKernelP,
    ::testing::Combine(::testing::Values("BCa", "aBC", "abc", "bBCca", "Cab",
                                         "BCa @ schedule(dynamic,1)"),
                       ::testing::Values(DType::F32, DType::BF16)));

TEST(GemmKernel, KStepFusesReduction) {
  GemmConfig cfg;
  cfg.M = 32;
  cfg.N = 16;
  cfg.K = 64;
  cfg.bm = 16;
  cfg.bn = 8;
  cfg.bk = 8;
  cfg.k_step = 4;  // 8 k-blocks fused 4 at a time
  GemmKernel kernel(cfg);
  auto a_flat = random_vec(static_cast<std::size_t>(cfg.M * cfg.K), 3);
  auto b_flat = random_vec(static_cast<std::size_t>(cfg.K * cfg.N), 4);
  AlignedBuffer<std::uint8_t> a(kernel.a_elems() * 4), b(kernel.b_elems() * 4),
      c(kernel.c_elems() * 4);
  kernel.pack_a(a_flat.data(), a.data());
  kernel.pack_b(b_flat.data(), b.data());
  kernel.run(a.data(), b.data(), c.data());
  std::vector<float> got(static_cast<std::size_t>(cfg.M * cfg.N));
  kernel.unpack_c(c.data(), got.data());
  std::vector<float> want(got.size(), 0.0f);
  naive_gemm(a_flat.data(), b_flat.data(), want.data(), cfg.M, cfg.N, cfg.K,
             cfg.M, cfg.K, cfg.M, 0.0f);
  expect_allclose(got.data(), want.data(), got.size(), 1e-4f, "k_step");
}

TEST(GemmKernel, WithSpecChangesScheduleNotResult) {
  GemmConfig cfg;
  cfg.M = 32;
  cfg.N = 32;
  cfg.K = 32;
  cfg.bm = cfg.bn = cfg.bk = 16;
  GemmKernel k1(cfg);
  GemmKernel k2 = k1.with_spec("Cba");
  auto a_flat = random_vec(1024, 5);
  auto b_flat = random_vec(1024, 6);
  AlignedBuffer<std::uint8_t> a(k1.a_elems() * 4), b(k1.b_elems() * 4);
  AlignedBuffer<std::uint8_t> c1(k1.c_elems() * 4), c2(k1.c_elems() * 4);
  k1.pack_a(a_flat.data(), a.data());
  k1.pack_b(b_flat.data(), b.data());
  k1.run(a.data(), b.data(), c1.data());
  k2.run(a.data(), b.data(), c2.data());
  expect_allclose(reinterpret_cast<float*>(c1.data()),
                  reinterpret_cast<float*>(c2.data()), k1.c_elems(), 1e-6f);
}

TEST(GemmKernel, RejectsNonDividingBlocks) {
  GemmConfig cfg;
  cfg.M = 30;  // not divisible by bm
  cfg.N = 32;
  cfg.K = 32;
  EXPECT_THROW(GemmKernel k(cfg), std::invalid_argument);
}

// ---------- MLP ----------

TEST(MlpKernel, CascadedLayersMatchReference) {
  MlpConfig cfg;
  cfg.sizes = {32, 64, 32};  // two layers
  cfg.N = 16;
  cfg.bm = cfg.bn = cfg.bk = 8;
  cfg.act = Activation::kRelu;
  MlpKernel mlp(cfg);

  // Weights + biases.
  std::vector<std::vector<float>> w_flat;
  std::vector<std::vector<float>> biases;
  std::vector<AlignedBuffer<std::uint8_t>> w_blocked;
  std::vector<const void*> w_ptrs;
  std::vector<const float*> b_ptrs;
  for (std::int64_t l = 0; l < mlp.num_layers(); ++l) {
    const GemmKernel& g = mlp.layer(l);
    w_flat.push_back(random_vec(
        static_cast<std::size_t>(g.config().M * g.config().K), 10 + l, -0.3f,
        0.3f));
    biases.push_back(random_vec(static_cast<std::size_t>(g.config().M),
                                20 + l, -0.2f, 0.2f));
    w_blocked.emplace_back(g.a_elems() * 4);
    g.pack_a(w_flat.back().data(), w_blocked.back().data());
  }
  for (auto& w : w_blocked) w_ptrs.push_back(w.data());
  for (auto& b : biases) b_ptrs.push_back(b.data());

  auto in_flat = random_vec(static_cast<std::size_t>(32 * cfg.N), 30);
  const GemmKernel& g0 = mlp.layer(0);
  AlignedBuffer<std::uint8_t> in_blocked(g0.b_elems() * 4);
  g0.pack_b(in_flat.data(), in_blocked.data());

  const GemmKernel& gl = mlp.layer(mlp.num_layers() - 1);
  AlignedBuffer<std::uint8_t> out_blocked(gl.c_elems() * 4);
  mlp.run(in_blocked.data(), w_ptrs, b_ptrs, out_blocked.data());
  std::vector<float> got(gl.c_elems());
  gl.unpack_c(out_blocked.data(), got.data());

  // Reference: layer by layer, col-major (features x N).
  std::vector<float> cur = in_flat;  // 32 x N col-major
  std::int64_t cur_f = 32;
  for (std::int64_t l = 0; l < mlp.num_layers(); ++l) {
    const std::int64_t out_f = mlp.layer(l).config().M;
    std::vector<float> next(static_cast<std::size_t>(out_f * cfg.N), 0.0f);
    naive_gemm(w_flat[static_cast<std::size_t>(l)].data(), cur.data(),
               next.data(), out_f, cfg.N, cur_f, out_f, cur_f, out_f, 0.0f);
    for (std::int64_t s = 0; s < cfg.N; ++s)
      for (std::int64_t o = 0; o < out_f; ++o) {
        float& v = next[static_cast<std::size_t>(o + s * out_f)];
        v += biases[static_cast<std::size_t>(l)][static_cast<std::size_t>(o)];
        v = std::max(v, 0.0f);
      }
    cur = std::move(next);
    cur_f = out_f;
  }
  expect_allclose(got.data(), cur.data(), got.size(), 1e-3f, "mlp");
}

// ---------- Convolution: parameterized against the naive reference ----------

struct ConvCase {
  std::int64_t C, K, H, W, R, S, stride, pad;
};

class ConvKernelP : public ::testing::TestWithParam<ConvCase> {};

TEST_P(ConvKernelP, MatchesNaiveConv) {
  const ConvCase cc = GetParam();
  ConvConfig cfg;
  cfg.N = 2;
  cfg.C = cc.C;
  cfg.K = cc.K;
  cfg.H = cc.H;
  cfg.W = cc.W;
  cfg.R = cc.R;
  cfg.S = cc.S;
  cfg.stride_h = cfg.stride_w = cc.stride;
  cfg.pad_h = cfg.pad_w = cc.pad;
  cfg.bc = cc.C >= 8 ? 8 : cc.C;
  cfg.bk = 8;
  ConvKernel kernel(cfg);

  auto input = random_vec(static_cast<std::size_t>(cfg.N * cfg.C * cfg.H * cfg.W), 1);
  auto weights = random_vec(static_cast<std::size_t>(cfg.K * cfg.C * cfg.R * cfg.S), 2);

  AlignedBuffer<std::uint8_t> in_b(kernel.input_elems() * 4);
  AlignedBuffer<std::uint8_t> w_b(kernel.weight_elems() * 4);
  AlignedBuffer<std::uint8_t> out_b(kernel.output_elems() * 4);
  kernel.pack_input(input.data(), in_b.data());
  kernel.pack_weights(weights.data(), w_b.data());
  kernel.run(in_b.data(), w_b.data(), out_b.data());
  std::vector<float> got(static_cast<std::size_t>(cfg.N * cfg.K * cfg.P() * cfg.Q()));
  kernel.unpack_output(out_b.data(), got.data());

  baselines::ConvShape shape{cfg.N, cfg.C, cfg.K, cfg.H, cfg.W,
                             cfg.R, cfg.S, cc.stride, cc.stride, cc.pad, cc.pad};
  std::vector<float> want(got.size());
  baselines::naive_conv(shape, input.data(), weights.data(), want.data());
  expect_allclose(got.data(), want.data(), got.size(),
                  1e-4f * static_cast<float>(cfg.C * cfg.R * cfg.S), "conv");
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, ConvKernelP,
    ::testing::Values(ConvCase{8, 16, 8, 8, 1, 1, 1, 0},
                      ConvCase{8, 8, 8, 8, 3, 3, 1, 1},
                      ConvCase{16, 8, 12, 12, 3, 3, 1, 1},
                      ConvCase{8, 16, 9, 9, 3, 3, 2, 1},
                      ConvCase{16, 16, 8, 8, 1, 1, 2, 0},
                      ConvCase{3, 8, 12, 12, 7, 7, 2, 3},   // stem-like
                      ConvCase{8, 8, 10, 10, 5, 5, 1, 2}));

TEST(ConvKernel, WStepTilingMatchesFullRow) {
  ConvConfig cfg;
  cfg.N = 1;
  cfg.C = 8;
  cfg.K = 8;
  cfg.H = cfg.W = 8;
  cfg.R = cfg.S = 3;
  cfg.pad_h = cfg.pad_w = 1;
  cfg.bc = cfg.bk = 8;
  ConvKernel full(cfg);
  cfg.w_step = 4;
  ConvKernel tiled(cfg);

  auto input = random_vec(static_cast<std::size_t>(cfg.C * cfg.H * cfg.W), 9);
  auto weights = random_vec(static_cast<std::size_t>(cfg.K * cfg.C * 9), 10);
  AlignedBuffer<std::uint8_t> in_b(full.input_elems() * 4), w_b(full.weight_elems() * 4);
  AlignedBuffer<std::uint8_t> o1(full.output_elems() * 4), o2(full.output_elems() * 4);
  full.pack_input(input.data(), in_b.data());
  full.pack_weights(weights.data(), w_b.data());
  full.run(in_b.data(), w_b.data(), o1.data());
  tiled.run(in_b.data(), w_b.data(), o2.data());
  expect_allclose(reinterpret_cast<float*>(o1.data()),
                  reinterpret_cast<float*>(o2.data()), full.output_elems(),
                  1e-5f, "w_step");
}

TEST(ConvKernel, Bf16TracksF32) {
  ConvConfig cfg;
  cfg.N = 1;
  cfg.C = 8;
  cfg.K = 8;
  cfg.H = cfg.W = 6;
  cfg.R = cfg.S = 3;
  cfg.pad_h = cfg.pad_w = 1;
  cfg.bc = cfg.bk = 8;
  ConvKernel f32(cfg);
  cfg.dtype = DType::BF16;
  ConvKernel b16(cfg);

  auto input = random_vec(static_cast<std::size_t>(cfg.C * cfg.H * cfg.W), 11);
  auto weights = random_vec(static_cast<std::size_t>(cfg.K * cfg.C * 9), 12);
  AlignedBuffer<std::uint8_t> i1(f32.input_elems() * 4), w1(f32.weight_elems() * 4),
      o1(f32.output_elems() * 4);
  AlignedBuffer<std::uint8_t> i2(b16.input_elems() * 2), w2(b16.weight_elems() * 2),
      o2(b16.output_elems() * 2);
  f32.pack_input(input.data(), i1.data());
  f32.pack_weights(weights.data(), w1.data());
  f32.run(i1.data(), w1.data(), o1.data());
  b16.pack_input(input.data(), i2.data());
  b16.pack_weights(weights.data(), w2.data());
  b16.run(i2.data(), w2.data(), o2.data());

  std::vector<float> g1(static_cast<std::size_t>(cfg.N * cfg.K * cfg.P() * cfg.Q()));
  std::vector<float> g2(g1.size());
  f32.unpack_output(o1.data(), g1.data());
  b16.unpack_output(o2.data(), g2.data());
  for (std::size_t i = 0; i < g1.size(); ++i) {
    const float scale = std::max(1.0f, std::fabs(g1[i]));
    EXPECT_NEAR(g2[i], g1[i], 0.05f * scale) << i;
  }
}

// ---------- SpMM kernel ----------

TEST(SpmmKernel, MatchesDenseGemmAcrossSparsities) {
  SpmmConfig cfg;
  cfg.M = 64;
  cfg.N = 32;
  cfg.K = 64;
  cfg.bm = cfg.bk = 8;
  cfg.bn = 16;
  SpmmKernel kernel(cfg);
  Xoshiro256 rng(3);
  for (double sparsity : {0.0, 0.5, 0.9}) {
    tpp::BcscMatrix a = tpp::BcscMatrix::random(cfg.M, cfg.K, cfg.bm, cfg.bk,
                                                DType::F32, sparsity, rng);
    std::vector<float> a_dense(static_cast<std::size_t>(cfg.M * cfg.K));
    a.to_dense(a_dense.data());
    auto b = random_vec(static_cast<std::size_t>(cfg.K * cfg.N), 4);
    std::vector<float> got(static_cast<std::size_t>(cfg.M * cfg.N), -5.0f);
    kernel.run(a, b.data(), got.data());
    std::vector<float> want(got.size(), 0.0f);
    naive_gemm(a_dense.data(), b.data(), want.data(), cfg.M, cfg.N, cfg.K,
               cfg.M, cfg.K, cfg.M, 0.0f);
    expect_allclose(got.data(), want.data(), got.size(), 1e-4f, "spmm kernel");
  }
}

// ---------- Baselines are correct too ----------

TEST(Baselines, FixedBlockedGemmMatchesNaive) {
  const std::int64_t m = 70, n = 33, k = 65;  // deliberately unaligned
  auto a = random_vec(static_cast<std::size_t>(m * k), 1);
  auto b = random_vec(static_cast<std::size_t>(k * n), 2);
  std::vector<float> want(static_cast<std::size_t>(m * n));
  std::vector<float> got(want.size());
  baselines::naive_gemm(a.data(), b.data(), want.data(), m, n, k);
  baselines::fixed_blocked_gemm(a.data(), b.data(), got.data(), m, n, k);
  expect_allclose(got.data(), want.data(), got.size(), 1e-4f, "blocked");

  auto a16 = plt::test::to_bf16(a);
  auto b16 = plt::test::to_bf16(b);
  baselines::fixed_blocked_gemm_bf16(a16.data(), b16.data(), got.data(), m, n, k);
  expect_allclose(got.data(), want.data(), got.size(), 0.05f, "blocked bf16");
}

TEST(Baselines, Im2colConvMatchesNaive) {
  baselines::ConvShape s{1, 4, 6, 9, 9, 3, 3, 1, 1, 1, 1};
  auto input = random_vec(static_cast<std::size_t>(s.N * s.C * s.H * s.W), 5);
  auto weights = random_vec(static_cast<std::size_t>(s.K * s.C * s.R * s.S), 6);
  std::vector<float> want(static_cast<std::size_t>(s.N * s.K * s.P() * s.Q()));
  std::vector<float> got(want.size());
  baselines::naive_conv(s, input.data(), weights.data(), want.data());
  baselines::im2col_conv(s, input.data(), weights.data(), got.data());
  expect_allclose(got.data(), want.data(), got.size(), 1e-4f, "im2col");
}

}  // namespace
}  // namespace plt::kernels
