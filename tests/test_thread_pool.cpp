// Persistent-runtime tests: pool barrier correctness (including teams wider
// than the machine), cross-runtime determinism of PARLOOPER nests, flat
// precompiled schedules vs the recursive traversal, and KernelCache stats
// exactness under a multi-threaded hit storm.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <map>
#include <mutex>
#include <thread>
#include <vector>

#include "common/status.hpp"
#include "common/thread_pool.hpp"
#include "common/threading.hpp"
#include "parlooper/threaded_loop.hpp"
#include "test_utils.hpp"
#include "tpp/brgemm.hpp"
#include "tpp/kernel_cache.hpp"

namespace plt {
namespace {

using parlooper::Backend;
using parlooper::LoopNest;
using parlooper::LoopSpecs;

TEST(ThreadPool, RunsEveryMemberExactlyOnce) {
  ThreadPool pool(4);
  std::atomic<int> seen{0};
  std::vector<int> tids(4, -1);
  struct Ctx {
    std::atomic<int>* seen;
    std::vector<int>* tids;
  } ctx{&seen, &tids};
  pool.run(
      [](void* c, int tid, int nthreads) {
        auto* x = static_cast<Ctx*>(c);
        ASSERT_EQ(nthreads, 4);
        (*x->tids)[static_cast<std::size_t>(tid)] = tid;
        x->seen->fetch_add(1);
      },
      &ctx);
  EXPECT_EQ(seen.load(), 4);
  for (int t = 0; t < 4; ++t) EXPECT_EQ(tids[static_cast<std::size_t>(t)], t);
}

TEST(ThreadPool, BarrierPhasesStayAlignedUnderOversubscription) {
  // 8 threads on however few cores the machine has: the barrier must still
  // separate phases. Each thread publishes its phase before the barrier and
  // asserts after it that nobody is still in an older phase.
  constexpr int kThreads = 8, kPhases = 25;
  ThreadPool pool(kThreads);
  struct Ctx {
    std::atomic<int> phase[kThreads];
    std::atomic<int> violations{0};
    ThreadPool* pool;
  } ctx;
  for (auto& p : ctx.phase) p.store(-1);
  ctx.pool = &pool;
  pool.run(
      [](void* c, int tid, int nthreads) {
        auto* x = static_cast<Ctx*>(c);
        for (int ph = 0; ph < kPhases; ++ph) {
          x->phase[tid].store(ph, std::memory_order_release);
          x->pool->barrier(tid);
          for (int t = 0; t < nthreads; ++t) {
            if (x->phase[t].load(std::memory_order_acquire) < ph) {
              x->violations.fetch_add(1);
            }
          }
          x->pool->barrier(tid);
        }
      },
      &ctx);
  EXPECT_EQ(ctx.violations.load(), 0);
}

TEST(ThreadPool, ThreadBarrierRoutesToActiveRegion) {
  // plt::thread_barrier() must resolve to the pool's barrier inside a pool
  // region (and be a no-op in a serial one).
  const Runtime saved = runtime();
  set_runtime(Runtime::kPool);
  std::atomic<int> after{0};
  parallel_region([&](int, int nthreads) {
    thread_barrier();
    after.fetch_add(1);
    thread_barrier();
    EXPECT_EQ(after.load(), nthreads);
  });
  set_runtime(Runtime::kSerial);
  parallel_region([&](int, int) { thread_barrier(); });
  set_runtime(saved);
}

TEST(ThreadPool, ConcurrentDispatchersFromUserThreadsDoNotDeadlock) {
  // Two application threads invoking nests at once (a serving host): only
  // one may own the team; the other must degrade to a serial region rather
  // than race on the dispatch state. Every iteration must still run.
  const Runtime saved = runtime();
  set_runtime(Runtime::kPool);
  constexpr int kDrivers = 4, kRepeats = 200;
  std::vector<LoopSpecs> loops = {LoopSpecs{0, 16, 1, {}}};
  LoopNest nest(loops, "A", Backend::kInterpreter);
  std::atomic<std::int64_t> total{0};
  std::vector<std::thread> drivers;
  for (int d = 0; d < kDrivers; ++d) {
    drivers.emplace_back([&] {
      for (int i = 0; i < kRepeats; ++i) {
        nest([&](const std::int64_t* ind) {
          total.fetch_add(1 + ind[0], std::memory_order_relaxed);
        });
      }
    });
  }
  for (auto& th : drivers) th.join();
  // 16 bodies per invocation, sum(1 + 0..15) = 136 each.
  EXPECT_EQ(total.load(), static_cast<std::int64_t>(kDrivers) * kRepeats * 136);
  set_runtime(saved);
}

TEST(ThreadPool, NestedRegionDegradesToSerial) {
  const Runtime saved = runtime();
  set_runtime(Runtime::kPool);
  std::atomic<int> inner_teams{0};
  parallel_region([&](int, int) {
    parallel_region([&](int tid, int nthreads) {
      EXPECT_EQ(tid, 0);
      EXPECT_EQ(nthreads, 1);
      inner_teams.fetch_add(1);
    });
  });
  EXPECT_GE(inner_teams.load(), 1);
  set_runtime(saved);
}

// --- partitioned pool --------------------------------------------------------

TEST(PartitionedPool, LayoutIsBalancedContiguousAndExact) {
  // The split must be a pure function of (nthreads, nparts): balanced
  // contiguous sub-teams, larger ones first, covering every slot.
  ThreadPool pool(7, /*pin=*/false, /*partitions=*/3);
  EXPECT_EQ(pool.size(), 7);
  EXPECT_EQ(pool.partitions(), 3);
  EXPECT_EQ(pool.partition_size(0), 3);
  EXPECT_EQ(pool.partition_size(1), 2);
  EXPECT_EQ(pool.partition_size(2), 2);
  EXPECT_EQ(pool.partition_size(-1), 0);
  EXPECT_EQ(pool.partition_size(3), 0);
}

TEST(PartitionedPool, PartitionCountClampsToTeamSize) {
  ThreadPool pool(2, /*pin=*/false, /*partitions=*/8);
  EXPECT_EQ(pool.partitions(), 2);
  EXPECT_EQ(pool.partition_size(0), 1);
  EXPECT_EQ(pool.partition_size(1), 1);
}

class PartitionedBarrierP : public ::testing::TestWithParam<int> {};

TEST_P(PartitionedBarrierP, HierarchicalBarrierStormUnderOversubscription) {
  // 8 threads on however few cores the machine has, split into 1..4
  // partitions: the hierarchical (leaf + root) barrier must still separate
  // phases across the WHOLE team, not just within a partition.
  constexpr int kThreads = 8, kPhases = 25;
  ThreadPool pool(kThreads, /*pin=*/false, GetParam());
  struct Ctx {
    std::atomic<int> phase[kThreads];
    std::atomic<int> violations{0};
    ThreadPool* pool;
  } ctx;
  for (auto& p : ctx.phase) p.store(-1);
  ctx.pool = &pool;
  pool.run(
      [](void* c, int tid, int nthreads) {
        auto* x = static_cast<Ctx*>(c);
        for (int ph = 0; ph < kPhases; ++ph) {
          x->phase[tid].store(ph, std::memory_order_release);
          x->pool->barrier(tid);
          for (int t = 0; t < nthreads; ++t) {
            if (x->phase[t].load(std::memory_order_acquire) < ph) {
              x->violations.fetch_add(1);
            }
          }
          x->pool->barrier(tid);
        }
      },
      &ctx);
  EXPECT_EQ(ctx.violations.load(), 0);
  const auto stats = pool.stats();
  EXPECT_EQ(stats.team_regions, 1u);
  EXPECT_GT(stats.barrier_epochs, 0u);
}

INSTANTIATE_TEST_SUITE_P(PartitionCounts, PartitionedBarrierP,
                         ::testing::Values(1, 2, 3, 4));

TEST(PartitionedPool, WholeTeamResultsBitwiseIdenticalAcrossPartitionCounts) {
  // Iteration partitioning is a pure function of (tid, nthreads), so a
  // fixed-size team must produce byte-identical output no matter how many
  // partitions it is split into (the ISSUE 5 determinism criterion).
  constexpr int kThreads = 4;
  constexpr std::size_t kN = 1 << 10;
  const auto compute = [](ThreadPool& pool) {
    std::vector<float> out(kN, 0.0f);
    struct Ctx {
      std::vector<float>* out;
    } ctx{&out};
    pool.run(
        [](void* c, int tid, int nthreads) {
          auto* x = static_cast<Ctx*>(c);
          const std::size_t n = x->out->size();
          for (std::size_t i = static_cast<std::size_t>(tid); i < n;
               i += static_cast<std::size_t>(nthreads)) {
            float acc = 0.0f;
            for (int k = 1; k <= 16; ++k) {
              acc += 1.0f / static_cast<float>(static_cast<int>(i) + k);
            }
            (*x->out)[i] = acc;
          }
        },
        &ctx);
    return out;
  };
  std::vector<std::vector<float>> results;
  for (int parts : {1, 2, 3, 4}) {
    ThreadPool pool(kThreads, /*pin=*/false, parts);
    results.push_back(compute(pool));
  }
  for (std::size_t i = 1; i < results.size(); ++i) {
    EXPECT_EQ(0, std::memcmp(results[0].data(), results[i].data(),
                             kN * sizeof(float)))
        << "partitions config " << i;
  }
}

TEST(PartitionedPool, RunOnExecutesConcurrentlyOnDistinctPartitions) {
  // Two driver threads dispatch onto partitions 0 and 1 at the same time;
  // both regions must run on their own sub-team (not degrade), and each
  // must observe the other in flight at least once — proof the partitions
  // do not serialize on a global dispatch lock.
  ThreadPool pool(4, /*pin=*/false, /*partitions=*/2);
  ASSERT_EQ(pool.partition_size(0), 2);
  ASSERT_EQ(pool.partition_size(1), 2);
  struct Ctx {
    ThreadPool* pool;
    std::atomic<int> active[2];
    std::atomic<int> overlapped{0};
    std::atomic<int> ran[2];
    std::atomic<bool> go{false};
  } ctx;
  ctx.pool = &pool;
  for (auto& a : ctx.active) a.store(0);
  for (auto& r : ctx.ran) r.store(0);

  const auto driver = [&ctx](int part) {
    while (!ctx.go.load(std::memory_order_acquire)) std::this_thread::yield();
    struct Arg {
      Ctx* ctx;
      int part;
    } arg{&ctx, part};
    for (int rep = 0; rep < 50; ++rep) {
      const bool on_team = ctx.pool->run_on(
          part,
          [](void* c, int tid, int nthreads) {
            auto* a = static_cast<Arg*>(c);
            a->ctx->ran[a->part].fetch_add(1);
            if (tid == 0) {
              a->ctx->active[a->part].store(1, std::memory_order_release);
              if (a->ctx->active[1 - a->part].load(
                      std::memory_order_acquire) != 0) {
                a->ctx->overlapped.fetch_add(1);
              }
            }
            a->ctx->pool->barrier(tid);
            EXPECT_EQ(nthreads, 2);
            if (tid == 0) {
              a->ctx->active[a->part].store(0, std::memory_order_release);
            }
          },
          &arg);
      EXPECT_TRUE(on_team) << "partition " << part << " rep " << rep;
    }
  };
  std::thread t0(driver, 0), t1(driver, 1);
  ctx.go.store(true, std::memory_order_release);
  t0.join();
  t1.join();
  // Every region ran on a 2-member sub-team: 50 reps x 2 members each.
  EXPECT_EQ(ctx.ran[0].load(), 100);
  EXPECT_EQ(ctx.ran[1].load(), 100);
  // With enough real cores for both sub-teams, 50 reps per side must
  // overlap at least once — a global dispatch lock serializing run_on()
  // would keep this at 0. (Single-core machines time-slice; overlap is
  // then possible but not guaranteed, so the assertion is gated.)
  if (std::thread::hardware_concurrency() >= 4) {
    EXPECT_GT(ctx.overlapped.load(), 0);
  }
  const auto stats = pool.stats();
  EXPECT_EQ(stats.partition[0].regions, 50u);
  EXPECT_EQ(stats.partition[1].regions, 50u);
  EXPECT_EQ(stats.serial_degradations, 0u);
}

TEST(PartitionedPool, RunOnMatchesSerialReferenceBitwise) {
  // The same reduction run serially, on partition 0, and on partition 1
  // must agree byte for byte: a sub-team region is still a pure
  // (tid, nthreads) partitioning of the iteration space.
  ThreadPool pool(4, /*pin=*/false, /*partitions=*/2);
  constexpr std::size_t kN = 512;
  const auto compute = [&](int mode) {  // -1 = serial, else partition
    std::vector<float> out(kN, 0.0f);
    struct Ctx {
      std::vector<float>* out;
    } ctx{&out};
    const ThreadPool::RegionFn fn = [](void* c, int tid, int nthreads) {
      auto* x = static_cast<Ctx*>(c);
      for (std::size_t i = static_cast<std::size_t>(tid); i < x->out->size();
           i += static_cast<std::size_t>(nthreads)) {
        float acc = 0.0f;
        for (int k = 1; k <= 8; ++k) {
          acc += static_cast<float>(static_cast<int>(i) * k) * 0.03125f;
        }
        (*x->out)[i] = acc;
      }
    };
    if (mode < 0) {
      fn(&ctx, 0, 1);
    } else {
      EXPECT_TRUE(pool.run_on(mode, fn, &ctx));
    }
    return out;
  };
  const auto serial = compute(-1);
  const auto p0 = compute(0);
  const auto p1 = compute(1);
  EXPECT_EQ(0, std::memcmp(serial.data(), p0.data(), kN * sizeof(float)));
  EXPECT_EQ(0, std::memcmp(serial.data(), p1.data(), kN * sizeof(float)));
}

TEST(PartitionedPool, BusyPartitionDegradesRunOnToSerial) {
  ThreadPool pool(4, /*pin=*/false, /*partitions=*/2);
  struct Ctx {
    std::atomic<bool> started{false};
    std::atomic<bool> release{false};
    std::atomic<int> inner_runs{0};
  } ctx;

  std::thread holder([&] {
    pool.run_on(
        1,
        [](void* c, int, int) {
          auto* x = static_cast<Ctx*>(c);
          x->started.store(true, std::memory_order_release);
          while (!x->release.load(std::memory_order_acquire)) {
            std::this_thread::yield();
          }
        },
        &ctx);
  });
  while (!ctx.started.load(std::memory_order_acquire)) {
    std::this_thread::yield();
  }
  // Partition 1 is owned by `holder`: this dispatch must degrade to a
  // serial call (returning false) yet still execute the region body.
  const bool on_team = pool.run_on(
      1,
      [](void* c, int tid, int nthreads) {
        auto* x = static_cast<Ctx*>(c);
        EXPECT_EQ(tid, 0);
        EXPECT_EQ(nthreads, 1);
        x->inner_runs.fetch_add(1);
      },
      &ctx);
  EXPECT_FALSE(on_team);
  EXPECT_EQ(ctx.inner_runs.load(), 1);
  ctx.release.store(true, std::memory_order_release);
  holder.join();
  const auto stats = pool.stats();
  EXPECT_EQ(stats.serial_degradations, 1u);
  EXPECT_EQ(stats.partition[1].regions, 1u);  // only the holder's region
}

TEST(PartitionedPool, StatsCountRegionsDegradationsAndSteals) {
  ThreadPool pool(4, /*pin=*/false, /*partitions=*/2);
  struct Ctx {
    ThreadPool* pool;
  } ctx{&pool};
  for (int i = 0; i < 3; ++i) {
    pool.run([](void*, int, int) {}, &ctx);
  }
  for (int i = 0; i < 2; ++i) {
    pool.run_on(1, [](void*, int, int) {}, &ctx);
  }
  // Nested dispatch from every team member: 4 serial degradations exactly.
  pool.run(
      [](void* c, int, int) {
        auto* x = static_cast<Ctx*>(c);
        x->pool->run([](void*, int, int) {}, nullptr);
      },
      &ctx);
  pool.note_steal(0);
  pool.note_steal(1);
  pool.note_steal(1);
  pool.note_steal(99);  // out of range: ignored

  const auto s = pool.stats();
  EXPECT_EQ(s.team_regions, 4u);  // 3 + the outer nested-test region
  EXPECT_EQ(s.serial_degradations, 4u);
  ASSERT_EQ(s.partition.size(), 2u);
  EXPECT_EQ(s.partition[0].regions, 0u);
  EXPECT_EQ(s.partition[1].regions, 2u);
  EXPECT_EQ(s.partition[0].steals, 1u);
  EXPECT_EQ(s.partition[1].steals, 2u);
}

// --- cross-runtime determinism ----------------------------------------------

struct Coverage {
  std::mutex mu;
  std::map<std::vector<std::int64_t>, int> visits;
};

std::map<std::vector<std::int64_t>, int> run_coverage(const char* spec,
                                                      Runtime rt) {
  const Runtime saved = runtime();
  set_runtime(rt);
  std::vector<LoopSpecs> loops = {LoopSpecs{0, 8, 1, {4, 2}},
                                  LoopSpecs{0, 16, 2, {8, 4}},
                                  LoopSpecs{0, 12, 3, {6}}};
  LoopNest nest(loops, spec, Backend::kInterpreter);
  Coverage cov;
  nest([&](const std::int64_t* ind) {
    std::vector<std::int64_t> v(ind, ind + 3);
    std::lock_guard<std::mutex> lock(cov.mu);
    ++cov.visits[v];
  });
  set_runtime(saved);
  return cov.visits;
}

class RuntimeSweepP : public ::testing::TestWithParam<const char*> {};

TEST_P(RuntimeSweepP, IterationCoverageIdenticalAcrossRuntimes) {
  const auto serial = run_coverage(GetParam(), Runtime::kSerial);
  const auto pool = run_coverage(GetParam(), Runtime::kPool);
  const auto omp = run_coverage(GetParam(), Runtime::kOpenMP);
  EXPECT_EQ(serial, pool) << GetParam();
  EXPECT_EQ(serial, omp) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(
    Specs, RuntimeSweepP,
    ::testing::Values("abc", "cba", "aBc", "aBC", "ABC", "bcaBCb", "aabbcc",
                      "aBC @ schedule(dynamic,1)", "a|Bc", "bC{R:2}aB{C:2}cb",
                      "B{R:2}C{C:2}a", "cabCBa"));

TEST(RuntimeDeterminism, GemmBitwiseIdenticalAcrossRuntimes) {
  // A blocked parallel GEMM must produce byte-identical C under every
  // runtime: block ownership and the per-block reduction order are pure
  // functions of the iteration space, not of the backend.
  const std::int64_t Mb = 4, Nb = 4, Kb = 4, bm = 8, bn = 8, bk = 8;
  const std::size_t a_sz = static_cast<std::size_t>(Mb * Kb * bm * bk);
  const std::size_t b_sz = static_cast<std::size_t>(Nb * Kb * bn * bk);
  const std::size_t c_sz = static_cast<std::size_t>(Mb * Nb * bm * bn);
  const auto a = test::random_vec(a_sz, 7);
  const auto b = test::random_vec(b_sz, 8);
  tpp::BrgemmTPP brgemm(bm, bn, bk, bk * bm, bn * bk, 1.0f);

  auto run_with = [&](Runtime rt) {
    const Runtime saved = runtime();
    set_runtime(rt);
    std::vector<float> c(c_sz, 0.0f);
    std::vector<LoopSpecs> loops = {LoopSpecs{0, Kb, 1, {}},
                                    LoopSpecs{0, Mb, 1, {}},
                                    LoopSpecs{0, Nb, 1, {}}};
    LoopNest gemm(loops, "aBC", Backend::kInterpreter);
    gemm([&](const std::int64_t* ind) {
      const std::int64_t ik = ind[0], im = ind[1], in = ind[2];
      brgemm(a.data() + ((im * Kb + ik) * bk * bm),
             b.data() + ((in * Kb + ik) * bn * bk),
             c.data() + ((in * Mb + im) * bn * bm), 1);
    });
    set_runtime(saved);
    return c;
  };

  const auto c_serial = run_with(Runtime::kSerial);
  const auto c_pool = run_with(Runtime::kPool);
  const auto c_omp = run_with(Runtime::kOpenMP);
  EXPECT_EQ(0, std::memcmp(c_serial.data(), c_pool.data(),
                           c_sz * sizeof(float)));
  EXPECT_EQ(0, std::memcmp(c_serial.data(), c_omp.data(),
                           c_sz * sizeof(float)));
}

// --- flat precompiled schedules ---------------------------------------------

class FlatScheduleP : public ::testing::TestWithParam<const char*> {};

TEST_P(FlatScheduleP, MatchesRecursiveSimulationPerThread) {
  std::vector<LoopSpecs> loops = {LoopSpecs{0, 8, 1, {4, 2}},
                                  LoopSpecs{0, 16, 2, {8, 4}},
                                  LoopSpecs{0, 12, 3, {6}}};
  LoopNest nest(loops, GetParam(), Backend::kInterpreter);
  const parlooper::LoopNestPlan& plan = nest.plan();
  ASSERT_LE(plan.total_iterations(),
            parlooper::LoopNestPlan::flat_schedule_max_iters());
  for (int nthreads : {1, 2, 3, 5}) {
    const parlooper::TeamSchedule* sched = plan.team_schedule(nthreads);
    ASSERT_NE(sched, nullptr);
    ASSERT_EQ(sched->nthreads, nthreads);
    ASSERT_EQ(sched->threads.size(), static_cast<std::size_t>(nthreads));
    for (int tid = 0; tid < nthreads; ++tid) {
      std::vector<std::int64_t> trace;
      parlooper::simulate_thread(plan, tid, nthreads,
                                 [&](const std::int64_t* ind) {
                                   trace.insert(trace.end(), ind, ind + 3);
                                 });
      const parlooper::ThreadProgram& prog =
          sched->threads[static_cast<std::size_t>(tid)];
      EXPECT_EQ(prog.inds, trace)
          << GetParam() << " tid " << tid << "/" << nthreads;
      std::int64_t seg_sum = 0;
      for (std::int64_t s : prog.seg_len) seg_sum += s;
      EXPECT_EQ(seg_sum * 3, static_cast<std::int64_t>(prog.inds.size()));
    }
    // Barrier counts must agree across the team or execution would deadlock.
    for (int tid = 1; tid < nthreads; ++tid) {
      EXPECT_EQ(sched->threads[static_cast<std::size_t>(tid)].seg_len.size(),
                sched->threads[0].seg_len.size());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Specs, FlatScheduleP,
    ::testing::Values("abc", "aBc", "ABC", "bcaBCb", "aabbcc",
                      "aBC @ schedule(dynamic,1)", "a|Bc", "a|b|C",
                      "bC{R:2}aB{C:2}cb", "B{R:2}C{C:2}a", "cabCBa"));

TEST(FlatSchedule, LookupIsMemoizedPerTeamSize) {
  std::vector<LoopSpecs> loops = {LoopSpecs{0, 16, 1, {}}};
  LoopNest nest(loops, "A", Backend::kInterpreter);
  const auto* s1 = nest.plan().team_schedule(3);
  const auto* s2 = nest.plan().team_schedule(3);
  const auto* s4 = nest.plan().team_schedule(4);
  EXPECT_EQ(s1, s2);
  EXPECT_NE(s1, s4);
}

TEST(FlatSchedule, HugeNestFallsBackToRecursive) {
  const std::int64_t big =
      parlooper::LoopNestPlan::flat_schedule_max_iters() + 1;
  std::vector<LoopSpecs> loops = {LoopSpecs{0, big, 1, {}}};
  LoopNest nest(loops, "A", Backend::kInterpreter);
  EXPECT_EQ(nest.plan().team_schedule(2), nullptr);
  // Still executes correctly through the recursive path.
  std::atomic<std::int64_t> count{0};
  nest([&](const std::int64_t*) { count.fetch_add(1, std::memory_order_relaxed); });
  EXPECT_EQ(count.load(), big);
}

// --- kernel cache ------------------------------------------------------------

TEST(KernelCache, MissesCountCodegenEventsExactly) {
  tpp::KernelCache<int> cache;
  std::atomic<int> factory_runs{0};
  const auto factory = [&] {
    factory_runs.fetch_add(1);
    return std::make_shared<int>(42);
  };
  EXPECT_EQ(*cache.get_or_create("k", factory), 42);
  auto s = cache.stats();
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.hits, 0u);
  EXPECT_EQ(*cache.get_or_create("k", factory), 42);
  s = cache.stats();
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(factory_runs.load(), 1);
  EXPECT_EQ(static_cast<std::uint64_t>(factory_runs.load()), s.misses);
}

TEST(KernelCache, HitStormStatsAreExact) {
  // Pre-warmed keys hammered from many threads: every lookup must be
  // counted as exactly one hit — no lost updates, no phantom misses.
  tpp::KernelCache<int> cache;
  constexpr int kKeys = 4, kThreads = 8, kIters = 5000;
  for (int k = 0; k < kKeys; ++k) {
    cache.get_or_create("key" + std::to_string(k),
                        [k] { return std::make_shared<int>(k); });
  }
  const auto warm = cache.stats();
  ASSERT_EQ(warm.misses, static_cast<std::uint64_t>(kKeys));

  std::vector<std::thread> threads;
  std::atomic<int> wrong_values{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kIters; ++i) {
        const int k = (t + i) % kKeys;
        auto v = cache.get_or_create(
            "key" + std::to_string(k),
            [] { return std::make_shared<int>(-1); });
        if (*v != k) wrong_values.fetch_add(1);
      }
    });
  }
  for (auto& th : threads) th.join();

  EXPECT_EQ(wrong_values.load(), 0);
  const auto s = cache.stats();
  EXPECT_EQ(s.misses, static_cast<std::uint64_t>(kKeys));
  EXPECT_EQ(s.hits, warm.hits + static_cast<std::uint64_t>(kThreads) * kIters);
  EXPECT_EQ(cache.size(), static_cast<std::size_t>(kKeys));
}

TEST(KernelCache, ColdStormAccountsEveryFactoryRun) {
  // All threads race on one cold key: hits + misses must equal the number
  // of lookups, misses must equal actual factory invocations (a loser of
  // the insert race did run codegen), and exactly one kernel must survive.
  tpp::KernelCache<int> cache;
  constexpr int kThreads = 8;
  std::atomic<int> factory_runs{0};
  std::atomic<int> lookups{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      auto v = cache.get_or_create("cold", [&] {
        factory_runs.fetch_add(1);
        return std::make_shared<int>(7);
      });
      lookups.fetch_add(1);
      EXPECT_EQ(*v, 7);
    });
  }
  for (auto& th : threads) th.join();
  const auto s = cache.stats();
  EXPECT_EQ(s.misses, static_cast<std::uint64_t>(factory_runs.load()));
  EXPECT_EQ(s.hits + s.misses, static_cast<std::uint64_t>(lookups.load()));
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_GE(factory_runs.load(), 1);
}

TEST(KernelCache, ClearInvalidatesThreadLocalMemo) {
  tpp::KernelCache<int> cache;
  auto v1 = cache.get_or_create("k", [] { return std::make_shared<int>(1); });
  // Second lookup is served by the per-thread memo.
  auto v2 = cache.get_or_create("k", [] { return std::make_shared<int>(2); });
  EXPECT_EQ(v1.get(), v2.get());
  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
  auto v3 = cache.get_or_create("k", [] { return std::make_shared<int>(3); });
  EXPECT_EQ(*v3, 3);  // memo must not resurrect the cleared kernel
  const auto s = cache.stats();
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.hits, 0u);
}

// --- exception firewall ------------------------------------------------------

TEST(ThreadPoolFirewall, WorkerExceptionRethrownOnDispatcherAndPoolReusable) {
  ThreadPool pool(4);
  struct Ctx {
    std::atomic<int>* ran;
  };
  std::atomic<int> ran{0};
  Ctx ctx{&ran};
  const auto throwing = [](void* c, int tid, int nthreads) {
    (void)nthreads;
    static_cast<Ctx*>(c)->ran->fetch_add(1);
    if (tid == 2) throw RuntimeError(StatusCode::kInternal, "poisoned body");
  };
  try {
    pool.run(throwing, &ctx);
    FAIL() << "worker exception was not rethrown";
  } catch (const RuntimeError& e) {
    EXPECT_EQ(e.code(), StatusCode::kInternal);
    EXPECT_STREQ(e.what(), "poisoned body");
  }
  // The pool stays fully usable: every member runs the next region.
  ran.store(0);
  pool.run(
      [](void* c, int, int) { static_cast<Ctx*>(c)->ran->fetch_add(1); },
      &ctx);
  EXPECT_EQ(ran.load(), 4);
}

TEST(ThreadPoolFirewall, DispatcherOwnExceptionRethrown) {
  ThreadPool pool(4);
  try {
    pool.run(
        [](void*, int tid, int) {
          if (tid == 0) throw std::invalid_argument("tid0 threw");
        },
        nullptr);
    FAIL() << "dispatcher exception was not rethrown";
  } catch (const std::invalid_argument& e) {
    EXPECT_STREQ(e.what(), "tid0 threw");
  }
  std::atomic<int> ran{0};
  pool.run(
      [](void* c, int, int) { static_cast<std::atomic<int>*>(c)->fetch_add(1); },
      &ran);
  EXPECT_EQ(ran.load(), 4);
}

TEST(ThreadPoolFirewall, ThrowBeforeBarrierDoesNotDeadlock) {
  // One member throws BEFORE a barrier its teammates wait at: without the
  // abort protocol the waiters would spin on an arrival that never comes.
  ThreadPool pool(4, /*pin=*/true, /*partitions=*/2);
  struct Ctx {
    ThreadPool* pool;
    std::atomic<int>* past_barrier;
  };
  std::atomic<int> past_barrier{0};
  Ctx ctx{&pool, &past_barrier};
  EXPECT_THROW(
      pool.run(
          [](void* c, int tid, int) {
            auto* x = static_cast<Ctx*>(c);
            if (tid == 1) {
              throw RuntimeError(StatusCode::kInternal, "pre-barrier");
            }
            x->pool->barrier(tid);
            x->past_barrier->fetch_add(1);
          },
          &ctx),
      RuntimeError);
  // Barrier/dispatch state was reset: a barrier-bearing region completes.
  past_barrier.store(0);
  pool.run(
      [](void* c, int tid, int) {
        auto* x = static_cast<Ctx*>(c);
        x->pool->barrier(tid);
        x->past_barrier->fetch_add(1);
      },
      &ctx);
  EXPECT_EQ(past_barrier.load(), 4);
}

TEST(ThreadPoolFirewall, RunOnRethrowsAndIsolatesPartitions) {
  ThreadPool pool(4, /*pin=*/true, /*partitions=*/2);
  ASSERT_EQ(pool.partitions(), 2);
  // Partition 1 is all pinned workers (the caller only dispatches): the
  // exception still lands on the calling thread.
  EXPECT_THROW(pool.run_on(
                   1,
                   [](void*, int tid, int) {
                     if (tid == 0) {
                       throw RuntimeError(StatusCode::kInternal, "p1 failed");
                     }
                   },
                   nullptr),
               RuntimeError);
  // Both partitions stay serviceable afterwards, including with barriers.
  for (int p = 0; p < 2; ++p) {
    struct Ctx {
      ThreadPool* pool;
      std::atomic<int>* ran;
    };
    std::atomic<int> ran{0};
    Ctx ctx{&pool, &ran};
    pool.run_on(
        p,
        [](void* c, int tid, int) {
          auto* x = static_cast<Ctx*>(c);
          x->pool->barrier(tid);
          x->ran->fetch_add(1);
        },
        &ctx);
    EXPECT_EQ(ran.load(), pool.partition_size(p)) << p;
  }
}

TEST(ThreadPoolFirewall, NestedSerialRegionPropagatesToOuterFirewall) {
  ThreadPool pool(2);
  struct Ctx {
    ThreadPool* pool;
  } ctx{&pool};
  // The nested dispatch degrades to a serial call inside the outer body, so
  // its exception unwinds the outer body on whatever member ran it — and the
  // outer firewall hands it to the dispatcher.
  EXPECT_THROW(pool.run(
                   [](void* c, int tid, int) {
                     if (tid != 1) return;
                     static_cast<Ctx*>(c)->pool->run(
                         [](void*, int, int) {
                           throw RuntimeError(StatusCode::kUnavailable,
                                              "nested");
                         },
                         nullptr);
                   },
                   &ctx),
               RuntimeError);
  std::atomic<int> ran{0};
  pool.run(
      [](void* c, int, int) { static_cast<std::atomic<int>*>(c)->fetch_add(1); },
      &ran);
  EXPECT_EQ(ran.load(), 2);
}

TEST(ThreadPoolFirewall, ParallelRegionRethrowsUnderEveryRuntime) {
  // Backend-generic contract: the first exception from any member reaches
  // the calling thread (serial: direct; omp: captured + rethrown; pool:
  // abort protocol). No barrier in the body — OpenMP barriers are
  // all-or-none, so barrier interplay is pool-specific (tested above).
  std::atomic<int> attempts{0};
  try {
    parallel_region([&](int tid, int nthreads) {
      attempts.fetch_add(1);
      if (tid == nthreads - 1) {
        throw RuntimeError(StatusCode::kInternal, "region body failed");
      }
    });
    FAIL() << "parallel_region swallowed the exception";
  } catch (const RuntimeError& e) {
    EXPECT_EQ(e.code(), StatusCode::kInternal);
  }
  EXPECT_GE(attempts.load(), 1);
  // The backend still serves regions afterwards.
  std::atomic<int> ran{0};
  parallel_region([&](int, int) { ran.fetch_add(1); });
  EXPECT_EQ(ran.load(), max_threads());
}

}  // namespace
}  // namespace plt
