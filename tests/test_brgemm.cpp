#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "common/cpu_features.hpp"
#include "test_utils.hpp"
#include "tpp/brgemm.hpp"
#include "tpp/transforms.hpp"

namespace plt::tpp {
namespace {

using plt::test::expect_allclose;
using plt::test::naive_gemm;
using plt::test::random_vec;
using plt::test::to_bf16;

// ---------- fp32 shape sweep against the naive reference ----------

using ShapeParam = std::tuple<std::int64_t, std::int64_t, std::int64_t, float>;

class GemmF32P : public ::testing::TestWithParam<ShapeParam> {};

TEST_P(GemmF32P, MatchesNaive) {
  const auto [m, n, k, beta] = GetParam();
  auto a = random_vec(static_cast<std::size_t>(m * k), 1);
  auto b = random_vec(static_cast<std::size_t>(k * n), 2);
  auto c0 = random_vec(static_cast<std::size_t>(m * n), 3);
  std::vector<float> got = c0, want = c0;
  GemmTPP gemm(m, n, k, beta);
  gemm(a.data(), b.data(), got.data());
  naive_gemm(a.data(), b.data(), want.data(), m, n, k, m, k, m, beta);
  expect_allclose(got.data(), want.data(), got.size(),
                  1e-5f * static_cast<float>(k), "gemm f32");
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GemmF32P,
    ::testing::Combine(::testing::Values<std::int64_t>(1, 3, 8, 16, 17, 33),
                       ::testing::Values<std::int64_t>(1, 2, 5, 16),
                       ::testing::Values<std::int64_t>(1, 7, 32),
                       ::testing::Values(0.0f, 1.0f)));

// ---------- vectorized paths agree with the scalar reference ----------

TEST(GemmMicro, VectorPathsMatchScalar) {
  const detail::MicroArgs args{33, 9, 21, 40, 25, 35};
  auto a = random_vec(static_cast<std::size_t>(args.lda * args.k), 5);
  auto b = random_vec(static_cast<std::size_t>(args.ldb * args.n), 6);
  auto c0 = random_vec(static_cast<std::size_t>(args.ldc * args.n), 7);

  std::vector<float> want = c0;
  detail::gemm_f32_ref(args, a.data(), b.data(), want.data(), true);

#if defined(PLT_KERNELS_AVX2)
  if (cpu_features().avx2 && cpu_features().fma) {
    std::vector<float> got = c0;
    detail::gemm_f32_avx2(args, a.data(), b.data(), got.data(), true);
    expect_allclose(got.data(), want.data(), got.size(), 1e-4f, "avx2");
  }
#endif
#if defined(PLT_KERNELS_AVX512)
  if (cpu_features().avx512f && cpu_features().avx512bw &&
      cpu_features().avx512vl) {
    std::vector<float> got = c0;
    detail::gemm_f32_avx512(args, a.data(), b.data(), got.data(), true);
    expect_allclose(got.data(), want.data(), got.size(), 1e-4f, "avx512");
  }
#endif
}

TEST(GemmMicro, Bf16VnniPathsMatchScalarRef) {
  const std::int64_t m = 29, n = 7, k = 18;
  auto af = random_vec(static_cast<std::size_t>(m * k), 8);
  auto bflat = to_bf16(random_vec(static_cast<std::size_t>(k * n), 9));
  auto aflat = to_bf16(af);
  std::vector<bf16> avnni(static_cast<std::size_t>(vnni2_elems(m, k)));
  vnni2_pack(aflat.data(), avnni.data(), m, k, m);

  const detail::MicroArgs args{m, n, k, m, k, m};
  std::vector<float> want(static_cast<std::size_t>(m * n), 0.0f);
  detail::gemm_bf16_vnni_ref(args, avnni.data(), bflat.data(), want.data(), false);

#if defined(PLT_KERNELS_AVX512)
  if (cpu_features().avx512f && cpu_features().avx512bw &&
      cpu_features().avx512vl) {
    std::vector<float> got(want.size(), 0.0f);
    detail::gemm_bf16_vnni_avx512(args, avnni.data(), bflat.data(), got.data(),
                                  false);
    expect_allclose(got.data(), want.data(), got.size(), 1e-4f, "avx512 up");
  }
#endif
#if defined(PLT_KERNELS_AVX512BF16)
  if (cpu_features().avx512_bf16) {
    std::vector<float> got(want.size(), 0.0f);
    detail::gemm_bf16_vnni_avx512bf16(args, avnni.data(), bflat.data(),
                                      got.data(), false);
    expect_allclose(got.data(), want.data(), got.size(), 1e-4f, "vdpbf16ps");
  }
#endif
}

// ---------- bf16 end-to-end against an fp32 reference ----------

using Bf16Param = std::tuple<std::int64_t, std::int64_t, std::int64_t, bool>;

class GemmBf16P : public ::testing::TestWithParam<Bf16Param> {};

TEST_P(GemmBf16P, VnniGemmTracksF32Reference) {
  const auto [m, n, k, c_bf16] = GetParam();
  auto af = random_vec(static_cast<std::size_t>(m * k), 11);
  auto bf = random_vec(static_cast<std::size_t>(k * n), 12);
  auto a16 = to_bf16(af);
  auto b16 = to_bf16(bf);
  std::vector<bf16> avnni(static_cast<std::size_t>(vnni2_elems(m, k)));
  vnni2_pack(a16.data(), avnni.data(), m, k, m);

  // Reference on the rounded values (isolates accumulation error).
  auto ar = plt::test::to_f32(a16);
  auto br = plt::test::to_f32(b16);
  std::vector<float> want(static_cast<std::size_t>(m * n), 0.0f);
  naive_gemm(ar.data(), br.data(), want.data(), m, n, k, m, k, m, 0.0f);

  if (c_bf16) {
    std::vector<bf16> got(static_cast<std::size_t>(m * n));
    GemmTPP gemm(m, n, k, 0.0f, DType::BF16, DType::BF16, DType::BF16,
                 ALayout::kVnni2);
    gemm(avnni.data(), b16.data(), got.data());
    for (std::size_t i = 0; i < got.size(); ++i) {
      const float scale = std::max(1.0f, std::fabs(want[i]));
      EXPECT_NEAR(got[i].to_f32(), want[i], 0.02f * scale) << i;
    }
  } else {
    std::vector<float> got(static_cast<std::size_t>(m * n), 0.0f);
    GemmTPP gemm(m, n, k, 0.0f, DType::BF16, DType::BF16, DType::F32,
                 ALayout::kVnni2);
    gemm(avnni.data(), b16.data(), got.data());
    expect_allclose(got.data(), want.data(), got.size(),
                    1e-5f * static_cast<float>(k), "bf16->f32");
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GemmBf16P,
    ::testing::Combine(::testing::Values<std::int64_t>(4, 16, 31),
                       ::testing::Values<std::int64_t>(1, 6),
                       ::testing::Values<std::int64_t>(2, 9, 32),
                       ::testing::Bool()));

// ---------- batch-reduce semantics and the three variants ----------

TEST(Brgemm, StrideVariantReducesBatch) {
  const std::int64_t m = 8, n = 6, k = 4, count = 5;
  const std::int64_t stride_a = m * k, stride_b = k * n;
  auto a = random_vec(static_cast<std::size_t>(stride_a * count), 21);
  auto b = random_vec(static_cast<std::size_t>(stride_b * count), 22);
  std::vector<float> got(static_cast<std::size_t>(m * n), 0.0f);
  std::vector<float> want(got.size(), 0.0f);
  BrgemmTPP brgemm(m, n, k, stride_a, stride_b, 0.0f);
  brgemm(a.data(), b.data(), got.data(), count);
  for (std::int64_t i = 0; i < count; ++i) {
    naive_gemm(a.data() + i * stride_a, b.data() + i * stride_b, want.data(),
               m, n, k, m, k, m, 1.0f);
  }
  expect_allclose(got.data(), want.data(), got.size(), 1e-4f, "stride");
}

TEST(Brgemm, AddressAndOffsetVariantsMatchStride) {
  const std::int64_t m = 7, n = 5, k = 6, count = 4;
  const std::int64_t stride_a = m * k, stride_b = k * n;
  auto a = random_vec(static_cast<std::size_t>(stride_a * count), 31);
  auto b = random_vec(static_cast<std::size_t>(stride_b * count), 32);

  std::vector<float> want(static_cast<std::size_t>(m * n), 0.0f);
  BrgemmTPP stride(m, n, k, stride_a, stride_b, 0.0f);
  stride(a.data(), b.data(), want.data(), count);

  std::vector<const void*> ap, bp;
  std::vector<std::int64_t> oa, ob;
  for (std::int64_t i = 0; i < count; ++i) {
    ap.push_back(a.data() + i * stride_a);
    bp.push_back(b.data() + i * stride_b);
    oa.push_back(i * stride_a);
    ob.push_back(i * stride_b);
  }

  std::vector<float> got(want.size(), 0.0f);
  BrgemmTPP addr(BrgemmDesc{m, n, k, 0, 0, 0, DType::F32, DType::F32,
                            DType::F32, 0.0f, BrgemmVariant::kAddress,
                            ALayout::kFlat, 0, 0});
  addr.run_address(ap.data(), bp.data(), got.data(), count);
  expect_allclose(got.data(), want.data(), got.size(), 1e-6f, "address");

  std::fill(got.begin(), got.end(), 0.0f);
  BrgemmTPP offs(BrgemmDesc{m, n, k, 0, 0, 0, DType::F32, DType::F32,
                            DType::F32, 0.0f, BrgemmVariant::kOffset,
                            ALayout::kFlat, 0, 0});
  offs.run_offset(a.data(), b.data(), got.data(), oa.data(), ob.data(), count);
  expect_allclose(got.data(), want.data(), got.size(), 1e-6f, "offset");
}

TEST(Brgemm, EmptyBatchHonoursBeta) {
  const std::int64_t m = 4, n = 3;
  std::vector<float> c(static_cast<std::size_t>(m * n), 2.0f);
  BrgemmTPP beta0(m, n, 2, 0, 0, 0.0f);
  beta0(nullptr, nullptr, c.data(), 0);
  for (float v : c) EXPECT_EQ(v, 0.0f);

  std::fill(c.begin(), c.end(), 2.0f);
  BrgemmTPP beta1(m, n, 2, 0, 0, 1.0f);
  beta1(nullptr, nullptr, c.data(), 0);
  for (float v : c) EXPECT_EQ(v, 2.0f);
}

TEST(Brgemm, Bf16AccumulationStaysFp32AcrossBatch) {
  // Summing `count` copies of small values would lose bits if the batch
  // accumulated in bf16; the fp32 scratch must keep them.
  const std::int64_t m = 2, n = 2, k = 2, count = 64;
  std::vector<bf16> a(static_cast<std::size_t>(vnni2_elems(m, k)) *
                      static_cast<std::size_t>(count));
  std::vector<bf16> b(static_cast<std::size_t>(k * n * count));
  std::vector<bf16> flat(static_cast<std::size_t>(m * k));
  for (auto& v : flat) v = bf16::from_f32(0.001f);
  for (std::int64_t i = 0; i < count; ++i)
    vnni2_pack(flat.data(), a.data() + i * vnni2_elems(m, k), m, k, m);
  for (auto& v : b) v = bf16::from_f32(1.0f);

  std::vector<bf16> c(static_cast<std::size_t>(m * n));
  BrgemmTPP brgemm(m, n, k, vnni2_elems(m, k), k * n, 0.0f, DType::BF16,
                   DType::BF16, DType::BF16, ALayout::kVnni2);
  brgemm(a.data(), b.data(), c.data(), count);
  const float q = bf16::from_f32(0.001f).to_f32();
  const float expected = q * static_cast<float>(k) * static_cast<float>(count);
  // Loose check: the result is near k*count*q and far from a bf16-step
  // truncation plateau.
  for (const bf16& v : c) {
    EXPECT_NEAR(v.to_f32(), expected, 0.02f * expected);
  }
}

TEST(Brgemm, RejectsInvalidDescriptors) {
  EXPECT_THROW(BrgemmTPP(0, 1, 1, 0, 0, 0.0f), std::invalid_argument);
  EXPECT_THROW(BrgemmTPP(1, 1, 1, 0, 0, 0.5f), std::invalid_argument);
  // VNNI layout is a low-precision feature.
  EXPECT_THROW(BrgemmTPP(4, 4, 4, 0, 0, 0.0f, DType::F32, DType::F32,
                         DType::F32, ALayout::kVnni2),
               std::invalid_argument);
}

TEST(Brgemm, ReportsFlops) {
  BrgemmTPP brgemm(8, 4, 2, 0, 0, 0.0f);
  EXPECT_DOUBLE_EQ(brgemm.flops(3), 2.0 * 8 * 4 * 2 * 3);
}

}  // namespace
}  // namespace plt::tpp
