// Fault-injection harness tests: spec parsing (good and malformed triples),
// seeded determinism of the fired-event subset, exact counter accounting,
// suppression scopes, and the fire_point -> RuntimeError(kInternal) contract.
//
// Every test configures the harness programmatically and resets it on exit:
// the suite must be runnable with and without PLT_FAULT_SPEC in the
// environment (configure() overrides env arming).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "common/fault.hpp"
#include "common/status.hpp"

namespace plt {
namespace {

namespace fault = common::fault;

// Reset on scope exit so one test's spec never leaks into the next (or into
// another suite in the same process).
struct FaultReset {
  ~FaultReset() { fault::reset(); }
};

TEST(Fault, DisabledByDefaultAndZeroCountersAfterReset) {
  FaultReset cleanup;
  fault::reset();
  EXPECT_FALSE(fault::enabled());
  EXPECT_EQ(fault::should_inject(fault::Site::kKernelExec),
            fault::Kind::kNone);
  // Unarmed sites do not consume events.
  EXPECT_EQ(fault::evaluated(fault::Site::kKernelExec), 0u);
  EXPECT_EQ(fault::injected(fault::Site::kKernelExec), 0u);
}

TEST(Fault, ParsesMultiSiteSpec) {
  FaultReset cleanup;
  fault::configure("kernel_exec:throw:1.0;queue_push:full:0.5", 7);
  EXPECT_TRUE(fault::enabled());
  EXPECT_EQ(fault::should_inject(fault::Site::kKernelExec),
            fault::Kind::kThrow);
  // Unarmed site in an armed harness still returns kNone without drawing.
  EXPECT_EQ(fault::should_inject(fault::Site::kSessionWarmup),
            fault::Kind::kNone);
  EXPECT_EQ(fault::evaluated(fault::Site::kSessionWarmup), 0u);
}

TEST(Fault, MalformedTriplesAreDroppedNotHalfArmed) {
  FaultReset cleanup;
  for (const char* bad :
       {"kernel_exec", "kernel_exec:throw", "bogus_site:throw:0.5",
        "kernel_exec:bogus_kind:0.5", "kernel_exec:throw:1.5",
        "kernel_exec:throw:-0.1", "kernel_exec:throw:abc",
        "kernel_exec:throw:0.5junk"}) {
    fault::configure(bad, 1);
    EXPECT_FALSE(fault::enabled()) << bad;
    EXPECT_EQ(fault::should_inject(fault::Site::kKernelExec),
              fault::Kind::kNone)
        << bad;
  }
  // A malformed triple next to a good one drops only itself.
  fault::configure("bogus:throw:1.0;queue_push:full:1.0", 1);
  EXPECT_TRUE(fault::enabled());
  EXPECT_EQ(fault::should_inject(fault::Site::kQueuePush), fault::Kind::kFull);
}

TEST(Fault, ProbabilityOneAlwaysFiresAndZeroNeverArms) {
  FaultReset cleanup;
  fault::configure("kernel_exec:throw:1.0", 123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(fault::should_inject(fault::Site::kKernelExec),
              fault::Kind::kThrow);
  }
  EXPECT_EQ(fault::evaluated(fault::Site::kKernelExec), 100u);
  EXPECT_EQ(fault::injected(fault::Site::kKernelExec), 100u);

  fault::configure("kernel_exec:throw:0.0", 123);
  EXPECT_FALSE(fault::enabled());  // prob 0 never arms the site
}

TEST(Fault, SameSeedSameFiredSequence) {
  FaultReset cleanup;
  const auto draw_sequence = [&](std::uint64_t seed) {
    fault::configure("kernel_exec:throw:0.3", seed);
    std::vector<bool> fired;
    for (int i = 0; i < 512; ++i) {
      fired.push_back(fault::should_inject(fault::Site::kKernelExec) !=
                      fault::Kind::kNone);
    }
    return fired;
  };
  const std::vector<bool> a = draw_sequence(42);
  const std::vector<bool> b = draw_sequence(42);
  const std::vector<bool> c = draw_sequence(43);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);  // 2^-512 false-failure odds: different seed, new subset
  // ~30% of 512 draws: loose bounds, deterministic given the fixed seed.
  const std::size_t fires = static_cast<std::size_t>(
      std::count(a.begin(), a.end(), true));
  EXPECT_GT(fires, 512u * 15 / 100);
  EXPECT_LT(fires, 512u * 45 / 100);
}

TEST(Fault, CountersAccountExactly) {
  FaultReset cleanup;
  fault::configure("queue_push:full:0.25", 9);
  std::uint64_t fired = 0;
  for (int i = 0; i < 1000; ++i) {
    if (fault::should_inject(fault::Site::kQueuePush) != fault::Kind::kNone) {
      ++fired;
    }
  }
  EXPECT_EQ(fault::evaluated(fault::Site::kQueuePush), 1000u);
  EXPECT_EQ(fault::injected(fault::Site::kQueuePush), fired);
}

TEST(Fault, SuppressGuardMasksInjectionWithoutConsumingEvents) {
  FaultReset cleanup;
  fault::configure("kernel_exec:throw:1.0", 5);
  {
    fault::SuppressGuard guard;
    for (int i = 0; i < 10; ++i) {
      EXPECT_EQ(fault::should_inject(fault::Site::kKernelExec),
                fault::Kind::kNone);
    }
    {
      fault::SuppressGuard nested;  // refcounted: nesting is fine
      EXPECT_EQ(fault::should_inject(fault::Site::kKernelExec),
                fault::Kind::kNone);
    }
    EXPECT_EQ(fault::should_inject(fault::Site::kKernelExec),
              fault::Kind::kNone);
  }
  EXPECT_EQ(fault::evaluated(fault::Site::kKernelExec), 0u);
  // Guard gone: the site fires again.
  EXPECT_EQ(fault::should_inject(fault::Site::kKernelExec),
            fault::Kind::kThrow);
}

TEST(Fault, FirePointThrowsRuntimeErrorWithSiteName) {
  FaultReset cleanup;
  fault::configure("kernel_exec:throw:1.0", 5);
  try {
    fault::fire_point(fault::Site::kKernelExec);
    FAIL() << "fire_point did not throw";
  } catch (const RuntimeError& e) {
    EXPECT_EQ(e.code(), StatusCode::kInternal);
    EXPECT_NE(std::string(e.what()).find("kernel_exec"), std::string::npos);
    EXPECT_EQ(status_from_exception(e).code(), StatusCode::kInternal);
  }
  // Non-throw kinds are returned, not thrown.
  fault::configure("queue_push:full:1.0", 5);
  EXPECT_EQ(fault::fire_point(fault::Site::kQueuePush), fault::Kind::kFull);
}

TEST(Fault, ParsesSupervisionSites) {
  FaultReset cleanup;
  fault::configure("dispatcher_stall:fail:1.0;conn_accept:fail:1.0", 3);
  EXPECT_TRUE(fault::enabled());
  EXPECT_EQ(fault::should_inject(fault::Site::kDispatcherStall),
            fault::Kind::kFail);
  EXPECT_EQ(fault::should_inject(fault::Site::kConnAccept),
            fault::Kind::kFail);
}

TEST(Fault, MaxFiresCapsInjectionExactly) {
  FaultReset cleanup;
  fault::configure("dispatcher_stall:fail:1.0:3", 11);
  std::uint64_t fired = 0;
  for (int i = 0; i < 100; ++i) {
    if (fault::should_inject(fault::Site::kDispatcherStall) !=
        fault::Kind::kNone) {
      ++fired;
    }
  }
  // Exactly-N semantics: the cap is a hard ceiling, and injected() counts
  // only the draws that actually fired.
  EXPECT_EQ(fired, 3u);
  EXPECT_EQ(fault::injected(fault::Site::kDispatcherStall), 3u);
  EXPECT_EQ(fault::evaluated(fault::Site::kDispatcherStall), 100u);
}

TEST(Fault, MaxFiresMalformedFourthFieldDropsTriple) {
  FaultReset cleanup;
  for (const char* bad :
       {"kernel_exec:throw:1.0:", "kernel_exec:throw:1.0:-1",
        "kernel_exec:throw:1.0:abc", "kernel_exec:throw:1.0:2junk"}) {
    fault::configure(bad, 1);
    EXPECT_FALSE(fault::enabled()) << bad;
  }
  // Zero means unlimited, same as omitting the field.
  fault::configure("kernel_exec:throw:1.0:0", 1);
  ASSERT_TRUE(fault::enabled());
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(fault::should_inject(fault::Site::kKernelExec),
              fault::Kind::kThrow);
  }
}

TEST(Fault, ResetDisarms) {
  FaultReset cleanup;
  fault::configure("kernel_exec:throw:1.0", 5);
  ASSERT_TRUE(fault::enabled());
  fault::reset();
  EXPECT_FALSE(fault::enabled());
  EXPECT_EQ(fault::should_inject(fault::Site::kKernelExec),
            fault::Kind::kNone);
  EXPECT_EQ(fault::evaluated(fault::Site::kKernelExec), 0u);
}

}  // namespace
}  // namespace plt
