// Source-JIT backend tests. These exercise the real JIT path: generate C++,
// invoke the system compiler, dlopen, run — and assert it is observationally
// identical to the interpreter executor. Skipped when no compiler exists.
#include <gtest/gtest.h>

#include <map>
#include <mutex>
#include <vector>

#include "parlooper/jit_backend.hpp"
#include "parlooper/threaded_loop.hpp"

namespace plt::parlooper {
namespace {

using Coverage = std::map<std::vector<std::int64_t>, int>;

Coverage run_and_record(const LoopNest& nest, int nloops) {
  Coverage cov;
  std::mutex mu;
  nest([&](const std::int64_t* ind) {
    std::vector<std::int64_t> v(ind, ind + nloops);
    std::lock_guard<std::mutex> lock(mu);
    ++cov[v];
  });
  return cov;
}

TEST(JitSource, GeneratesPoolDispatchableEntry) {
  // The generated entry is called once per team member inside a
  // plt::parallel_region: no OpenMP directives, explicit (tid, nthreads)
  // partitioning of the collapse group's flat range.
  std::vector<LoopSpecs> loops = {LoopSpecs{0, 8, 1, {}},
                                  LoopSpecs{0, 16, 2, {8, 4}},
                                  LoopSpecs{0, 12, 3, {6}}};
  LoopNestPlan plan(loops, "bcaBCb");
  const std::string src = JitLoop::generate_source(plan);
  EXPECT_EQ(src.find("#pragma"), std::string::npos);
  EXPECT_NE(src.find("plt_jit_entry(const PltJitArgs* a, std::int64_t plt_tid, "
                     "std::int64_t plt_nth)"),
            std::string::npos);
  EXPECT_NE(src.find("plt_per"), std::string::npos);  // static block partition
  EXPECT_NE(src.find("a->body(a->body_ctx, ind);"), std::string::npos);
}

TEST(JitSource, DynamicScheduleEmitsCyclicChunks) {
  std::vector<LoopSpecs> loops = {LoopSpecs{0, 8, 1, {}}};
  LoopNestPlan plan(loops, "A @ schedule(dynamic,1)");
  const std::string src = JitLoop::generate_source(plan);
  // The interpreter's deterministic cyclic-chunk emulation, not an omp-for.
  EXPECT_NE(src.find("plt_blk += plt_nth"), std::string::npos);
  EXPECT_EQ(src.find("#pragma"), std::string::npos);
}

TEST(JitSource, BarrierRoutedThroughHostCallback) {
  std::vector<LoopSpecs> loops = {LoopSpecs{0, 8, 1, {}},
                                  LoopSpecs{0, 8, 1, {}}};
  LoopNestPlan plan(loops, "A|b");
  const std::string src = JitLoop::generate_source(plan);
  EXPECT_NE(src.find("a->barrier(a->barrier_ctx)"), std::string::npos);
}

TEST(JitSource, SerialSpecHasNoPartitioning) {
  std::vector<LoopSpecs> loops = {LoopSpecs{0, 8, 1, {}}};
  LoopNestPlan plan(loops, "a");
  const std::string src = JitLoop::generate_source(plan);
  EXPECT_EQ(src.find("plt_per"), std::string::npos);
  EXPECT_EQ(src.find("#pragma"), std::string::npos);
}

class JitVsInterpreterP : public ::testing::TestWithParam<const char*> {};

TEST_P(JitVsInterpreterP, IdenticalCoverage) {
  if (!JitLoop::available()) GTEST_SKIP() << "no C++ compiler on this host";
  std::vector<LoopSpecs> loops = {LoopSpecs{0, 8, 1, {4, 2}},
                                  LoopSpecs{0, 16, 2, {8, 4}},
                                  LoopSpecs{0, 12, 3, {6}}};
  LoopNest interp(loops, GetParam(), Backend::kInterpreter);
  LoopNest jit(loops, GetParam(), Backend::kJit);
  if (!jit.using_jit()) GTEST_SKIP() << "jit unavailable for this spec";
  const Coverage want = run_and_record(interp, 3);
  const Coverage got = run_and_record(jit, 3);
  EXPECT_EQ(got, want) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Specs, JitVsInterpreterP,
                         ::testing::Values("abc", "aBC", "bcaBCb",
                                           "aBC @ schedule(dynamic,1)",
                                           "bC{R:2}aB{C:2}cb", "aabbcc"));

TEST(Jit, CompileCacheAvoidsReJit) {
  if (!JitLoop::available()) GTEST_SKIP() << "no C++ compiler on this host";
  std::vector<LoopSpecs> loops = {LoopSpecs{0, 32, 1, {}},
                                  LoopSpecs{0, 32, 1, {}},
                                  LoopSpecs{0, 32, 1, {}}};
  LoopNest first(loops, "aBc", Backend::kJit);
  if (!first.using_jit()) GTEST_SKIP();
  const std::uint64_t after_first = JitLoop::compile_count();
  // Same structure, different bounds: the cached artifact must be reused.
  std::vector<LoopSpecs> loops2 = {LoopSpecs{0, 64, 1, {}},
                                   LoopSpecs{0, 16, 1, {}},
                                   LoopSpecs{0, 8, 1, {}}};
  LoopNest second(loops2, "aBc", Backend::kJit);
  EXPECT_TRUE(second.using_jit());
  EXPECT_EQ(JitLoop::compile_count(), after_first);

  // And it must still execute the *new* bounds.
  std::size_t count = 0;
  std::mutex mu;
  second([&](const std::int64_t*) {
    std::lock_guard<std::mutex> lock(mu);
    ++count;
  });
  EXPECT_EQ(count, 64u * 16u * 8u);
}

TEST(Jit, InitAndTermCalledInsideRegion) {
  if (!JitLoop::available()) GTEST_SKIP() << "no C++ compiler on this host";
  std::vector<LoopSpecs> loops = {LoopSpecs{0, 4, 1, {}}};
  LoopNest nest(loops, "A", Backend::kJit);
  if (!nest.using_jit()) GTEST_SKIP();
  std::atomic<int> inits{0}, terms{0}, bodies{0};
  nest([&](const std::int64_t*) { ++bodies; }, [&] { ++inits; },
       [&] { ++terms; });
  EXPECT_EQ(bodies.load(), 4);
  EXPECT_EQ(inits.load(), terms.load());
  EXPECT_GE(inits.load(), 1);
}

}  // namespace
}  // namespace plt::parlooper
