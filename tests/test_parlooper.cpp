#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <mutex>
#include <set>
#include <vector>

#include "parlooper/threaded_loop.hpp"
#include "test_utils.hpp"
#include "tpp/brgemm.hpp"
#include "tpp/transforms.hpp"
#include "tpp/unary.hpp"

namespace plt::parlooper {
namespace {

using plt::test::expect_allclose;
using plt::test::naive_gemm;
using plt::test::random_vec;

// Records every (a, b, c) logical-index triple the nest produced. Each
// visit must occur exactly once regardless of order/blocking/parallelism.
struct CoverageRecorder {
  std::mutex mu;
  std::map<std::vector<std::int64_t>, int> visits;

  BodyFn body(int nloops) {
    return [this, nloops](const std::int64_t* ind) {
      std::vector<std::int64_t> v(ind, ind + nloops);
      std::lock_guard<std::mutex> lock(mu);
      ++visits[v];
    };
  }
};

std::set<std::vector<std::int64_t>> expected_triples(
    const std::vector<LoopSpecs>& loops) {
  std::set<std::vector<std::int64_t>> out;
  // Innermost-occurrence values are exactly the step-grid of each loop.
  std::vector<std::vector<std::int64_t>> axes;
  for (const auto& l : loops) {
    std::vector<std::int64_t> vals;
    for (std::int64_t v = l.start; v < l.end; v += l.step) vals.push_back(v);
    axes.push_back(vals);
  }
  std::vector<std::size_t> idx(axes.size(), 0);
  while (true) {
    std::vector<std::int64_t> t;
    for (std::size_t i = 0; i < axes.size(); ++i) t.push_back(axes[i][idx[i]]);
    out.insert(t);
    std::size_t d = axes.size();
    while (d > 0) {
      --d;
      if (++idx[d] < axes[d].size()) break;
      idx[d] = 0;
      if (d == 0) return out;
    }
  }
}

class SpecSweepP : public ::testing::TestWithParam<const char*> {};

TEST_P(SpecSweepP, EveryIterationVisitedExactlyOnce) {
  std::vector<LoopSpecs> loops = {LoopSpecs{0, 8, 1, {4, 2}},
                                  LoopSpecs{0, 16, 2, {8, 4}},
                                  LoopSpecs{0, 12, 3, {6}}};
  LoopNest nest(loops, GetParam(), Backend::kInterpreter);
  CoverageRecorder rec;
  nest(rec.body(3));
  const auto want = expected_triples(loops);
  EXPECT_EQ(rec.visits.size(), want.size()) << GetParam();
  for (const auto& [triple, count] : rec.visits) {
    EXPECT_EQ(count, 1) << GetParam();
    EXPECT_TRUE(want.count(triple)) << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(
    Specs, SpecSweepP,
    ::testing::Values("abc", "cba", "acb", "aBc", "aBC", "ABC", "bcaBCb",
                      "bbac" /* unusual but legal */, "aabbcc", "bcabcb",
                      "aBC @ schedule(dynamic,1)",
                      "aBC @ schedule(dynamic,4)",
                      "a|Bc", "bC{R:2}aB{C:2}cb", "bC{R:3}acb",
                      "B{R:2}C{C:2}a", "cabCBa"));

TEST(ThreadedLoop, PaperListing1GemmProducesCorrectResult) {
  // The GEMM of Listing 1: blocked tensors, zero_tpp + brgemm_tpp body.
  const std::int64_t M = 32, N = 24, K = 16;
  const std::int64_t bm = 8, bn = 6, bk = 4;
  const std::int64_t Mb = M / bm, Nb = N / bn, Kb = K / bk;

  auto a_flat = random_vec(static_cast<std::size_t>(M * K), 1);
  auto b_flat = random_vec(static_cast<std::size_t>(K * N), 2);

  // A[Mb][Kb][bk][bm], B[Nb][Kb][bn][bk], C[Nb][Mb][bn][bm].
  std::vector<float> A(a_flat.size()), B(b_flat.size());
  std::vector<float> C(static_cast<std::size_t>(M * N), -1.0f);
  tpp::block_a_matrix(a_flat.data(), A.data(), M, K, bm, bk);
  // B blocked: B[n-block][k-block][bn][bk] with bk fastest == block of B^T.
  for (std::int64_t in = 0; in < Nb; ++in)
    for (std::int64_t ik = 0; ik < Kb; ++ik)
      for (std::int64_t nn = 0; nn < bn; ++nn)
        for (std::int64_t kk = 0; kk < bk; ++kk)
          B[static_cast<std::size_t>((((in * Kb + ik) * bn + nn) * bk) + kk)] =
              b_flat[static_cast<std::size_t>((ik * bk + kk) + (in * bn + nn) * K)];

  tpp::UnaryTPP zero_tpp(tpp::UnaryKind::kZero, bm, bn);
  tpp::BrgemmTPP brgemm_tpp(bm, bn, bk, bk * bm, bn * bk, 1.0f);

  for (const char* spec : {"abc", "bcaBCb", "Cba", "acBb" /* b blocked? no */}) {
    // NOTE: specs must keep the K loop ("a") sequential per C block.
    std::vector<LoopSpecs> loops = {
        LoopSpecs{0, Kb, 1, {}}, LoopSpecs{0, Mb, 1, {2}}, LoopSpecs{0, Nb, 1, {2}}};
    // "bcaBCb" blocks b twice — needs two sizes.
    if (std::string(spec) == "bcaBCb") {
      loops[1].block_steps = {2, 2};
      loops[2].block_steps = {2};
    }
    std::fill(C.begin(), C.end(), -1.0f);
    LoopNest gemm_loop(loops, spec, Backend::kInterpreter);
    gemm_loop([&](const std::int64_t* ind) {
      const std::int64_t ik = ind[0], im = ind[1], in = ind[2];
      float* c_blk = C.data() + ((in * Mb + im) * bn * bm);
      if (ik == 0) zero_tpp(nullptr, c_blk);
      brgemm_tpp(A.data() + ((im * Kb + ik) * bk * bm),
                 B.data() + ((in * Kb + ik) * bn * bk), c_blk, 1);
    });

    // Reference.
    std::vector<float> want(static_cast<std::size_t>(M * N), 0.0f);
    naive_gemm(a_flat.data(), b_flat.data(), want.data(), M, N, K, M, K, M, 0.0f);
    // Un-block C[Nb][Mb][bn][bm] -> col-major M x N.
    std::vector<float> got(want.size());
    for (std::int64_t in = 0; in < Nb; ++in)
      for (std::int64_t im = 0; im < Mb; ++im)
        for (std::int64_t nn = 0; nn < bn; ++nn)
          for (std::int64_t mm = 0; mm < bm; ++mm)
            got[static_cast<std::size_t>((im * bm + mm) + (in * bn + nn) * M)] =
                C[static_cast<std::size_t>((((in * Mb + im) * bn + nn) * bm) + mm)];
    expect_allclose(got.data(), want.data(), got.size(), 1e-4f, spec);
  }
}

TEST(ThreadedLoop, InitAndTermRunOncePerParticipant) {
  std::vector<LoopSpecs> loops = {LoopSpecs{0, 4, 1, {}}};
  std::atomic<int> inits{0}, terms{0}, bodies{0};
  LoopNest nest(loops, "A", Backend::kInterpreter);
  nest([&](const std::int64_t*) { ++bodies; }, [&] { ++inits; },
       [&] { ++terms; });
  EXPECT_EQ(bodies.load(), 4);
  EXPECT_EQ(inits.load(), terms.load());
  EXPECT_GE(inits.load(), 1);
}

TEST(ThreadedLoop, SerialSpecRunsInitOnce) {
  std::vector<LoopSpecs> loops = {LoopSpecs{0, 4, 1, {}}};
  std::atomic<int> inits{0}, bodies{0};
  LoopNest nest(loops, "a", Backend::kInterpreter);
  nest([&](const std::int64_t*) { ++bodies; }, [&] { ++inits; });
  EXPECT_EQ(bodies.load(), 4);
  EXPECT_EQ(inits.load(), 1);
}

TEST(ThreadedLoop, NonZeroStartsPropagate) {
  std::vector<LoopSpecs> loops = {LoopSpecs{4, 12, 2, {}},
                                  LoopSpecs{-6, 0, 3, {}}};
  CoverageRecorder rec;
  LoopNest nest(loops, "ab", Backend::kInterpreter);
  nest(rec.body(2));
  EXPECT_EQ(rec.visits.size(), 4u * 2u);
  EXPECT_TRUE(rec.visits.count({4, -6}));
  EXPECT_TRUE(rec.visits.count({10, -3}));
}

TEST(ThreadedLoop, PlanCacheHitsOnRepeatedConstruction) {
  std::vector<LoopSpecs> loops = {LoopSpecs{0, 64, 1, {8}}};
  const auto before = plan_cache_stats();
  LoopNest n1(loops, "aa", Backend::kInterpreter);
  LoopNest n2(loops, "aa", Backend::kInterpreter);
  LoopNest n3(loops, "aa", Backend::kInterpreter);
  const auto after = plan_cache_stats();
  EXPECT_GE(after.hits - before.hits, 2u);
  EXPECT_EQ(after.misses - before.misses, 1u);
}

TEST(ThreadedLoop, TemplateSugarMatchesPaperSignature) {
  ThreadedLoop<2> loop({LoopSpecs{0, 4, 1, {}}, LoopSpecs{0, 6, 2, {}}}, "ab");
  int count = 0;
  loop([&](const std::int64_t*) { ++count; });
  EXPECT_EQ(count, 4 * 3);
}

TEST(ThreadedLoop, InvalidSpecThrowsAtConstruction) {
  std::vector<LoopSpecs> loops = {LoopSpecs{0, 4, 1, {}}};
  EXPECT_THROW(LoopNest(loops, "ab", Backend::kInterpreter),
               std::invalid_argument);
  EXPECT_THROW(LoopNest(loops, "aa", Backend::kInterpreter),
               std::invalid_argument);  // no blocking size declared
}

TEST(ThreadedLoop, GridWiderThanTeamStillCoversAllIterations) {
  // A 16-way grid on a small team: cells are distributed round-robin, so
  // every chunk (and thus every iteration) still executes exactly once.
  std::vector<LoopSpecs> loops = {LoopSpecs{0, 32, 1, {}},
                                  LoopSpecs{0, 8, 1, {}}};
  CoverageRecorder rec;
  LoopNest nest(loops, "A{R:16}B{C:2}", Backend::kInterpreter);
  nest(rec.body(2));
  EXPECT_EQ(rec.visits.size(), 32u * 8u);
  for (const auto& [triple, count] : rec.visits) EXPECT_EQ(count, 1);
}

TEST(ThreadedLoop, BarrierWithExplicitGridRejected) {
  std::vector<LoopSpecs> loops = {LoopSpecs{0, 8, 1, {}},
                                  LoopSpecs{0, 8, 1, {}}};
  EXPECT_THROW(LoopNest(loops, "a|B{R:2}", Backend::kInterpreter),
               std::invalid_argument);
}

}  // namespace
}  // namespace plt::parlooper
