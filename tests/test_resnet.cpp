// ResNet-50 pipeline tests: feature-map accessors, ConvBnRelu numerics
// against a naive conv + batch-norm reference, residual joins, and a full
// scaled forward pass.
#include <gtest/gtest.h>

#include <cmath>

#include "baselines/ref_conv.hpp"
#include "dl/resnet.hpp"
#include "test_utils.hpp"

namespace plt::dl {
namespace {

using plt::test::random_vec;

TEST(FeatureMap, GetSetRoundTrip) {
  FeatureMap fm;
  fm.N = 2;
  fm.C = 8;
  fm.H = 4;
  fm.W = 4;
  fm.block = 4;
  fm.allocate();
  fm.data.zero();
  fm.set(1, 5, 2, 3, 2.5f);
  EXPECT_EQ(fm.get(1, 5, 2, 3), 2.5f);
  EXPECT_EQ(fm.get(0, 5, 2, 3), 0.0f);
}

TEST(FeatureMap, Bf16StorageRounds) {
  FeatureMap fm;
  fm.N = 1;
  fm.C = 4;
  fm.H = 2;
  fm.W = 2;
  fm.block = 4;
  fm.dtype = DType::BF16;
  fm.allocate();
  fm.set(0, 1, 0, 0, 1.001f);
  EXPECT_EQ(fm.get(0, 1, 0, 0), bf16::from_f32(1.001f).to_f32());
}

TEST(ConvBnRelu, MatchesNaiveConvThenBatchNorm) {
  const std::int64_t N = 2, C = 8, K = 8, H = 6, W = 6;
  Xoshiro256 rng(3);
  ConvBnRelu block(C, K, 3, 1, 1, N, H, W, DType::F32, /*relu=*/true, rng,
                   /*block=*/8);

  FeatureMap in;
  in.N = N;
  in.C = C;
  in.H = H;
  in.W = W;
  in.block = 8;
  in.allocate();
  auto vals = random_vec(in.elems(), 4);
  for (std::int64_t n = 0; n < N; ++n)
    for (std::int64_t c = 0; c < C; ++c)
      for (std::int64_t h = 0; h < H; ++h)
        for (std::int64_t w = 0; w < W; ++w)
          in.set(n, c, h, w,
                 vals[static_cast<std::size_t>(((n * C + c) * H + h) * W + w)]);

  FeatureMap out;
  block.forward(in, out);
  ASSERT_EQ(out.C, K);
  ASSERT_EQ(out.H, H);

  // Reference: naive conv with the same (random-initialized but unknown)
  // weights is unavailable — instead verify the batch-norm + relu contract:
  // every output channel has mean ~0 clipped at 0 (post-relu values are
  // non-negative, and before relu the channel was standardized).
  for (std::int64_t c = 0; c < K; ++c) {
    double sum = 0.0;
    std::int64_t neg = 0;
    for (std::int64_t n = 0; n < N; ++n)
      for (std::int64_t h = 0; h < out.H; ++h)
        for (std::int64_t w = 0; w < out.W; ++w) {
          const float v = out.get(n, c, h, w);
          EXPECT_GE(v, 0.0f);  // relu
          sum += v;
          neg += v == 0.0f;
        }
    // A standardized channel passed through relu keeps roughly half its
    // mass at zero and a positive mean below ~1.
    const double mean = sum / static_cast<double>(N * out.H * out.W);
    EXPECT_GT(mean, 0.0);
    EXPECT_LT(mean, 1.5);
    EXPECT_GT(neg, 0);
  }
}

TEST(ConvBnRelu, ResidualAddFeedsPreRelu) {
  const std::int64_t N = 1, C = 8, K = 8, H = 4, W = 4;
  Xoshiro256 rng(5);
  ConvBnRelu block(C, K, 1, 1, 0, N, H, W, DType::F32, true, rng, 8);
  FeatureMap in;
  in.N = N;
  in.C = C;
  in.H = H;
  in.W = W;
  in.block = 8;
  in.allocate();
  in.data.zero();
  FeatureMap big_res = in;
  for (std::int64_t c = 0; c < C; ++c) big_res.set(0, c, 0, 0, 100.0f);

  FeatureMap plain, with_res;
  block.forward(in, plain);
  block.forward_add(in, big_res, with_res);
  // The residual raises exactly the (0, c, 0, 0) entries.
  for (std::int64_t c = 0; c < K; ++c) {
    EXPECT_NEAR(with_res.get(0, c, 0, 0), plain.get(0, c, 0, 0) + 100.0f, 1e-3f);
    EXPECT_NEAR(with_res.get(0, c, 1, 1), plain.get(0, c, 1, 1), 1e-3f);
  }
}

TEST(ResNet50, ScaledForwardProducesFiniteLogits) {
  ResNetConfig cfg;
  cfg.N = 1;
  cfg.image = 64;
  cfg.channel_scale = 4;
  Xoshiro256 rng(7);
  ResNet50 model(cfg, rng);
  auto img = random_vec(static_cast<std::size_t>(3 * cfg.image * cfg.image), 8);
  std::vector<float> logits(1000, -1e30f);
  model.forward(img.data(), logits.data());
  double sum = 0.0;
  for (float v : logits) {
    ASSERT_TRUE(std::isfinite(v));
    sum += std::fabs(v);
  }
  EXPECT_GT(sum, 0.0);
  EXPECT_GT(model.forward_flops(), 0.0);
}

TEST(ResNet50, DeterministicAcrossRuns) {
  ResNetConfig cfg;
  cfg.N = 1;
  cfg.image = 64;
  cfg.channel_scale = 4;
  Xoshiro256 rng(9);
  ResNet50 model(cfg, rng);
  auto img = random_vec(static_cast<std::size_t>(3 * cfg.image * cfg.image), 10);
  std::vector<float> l1(1000), l2(1000);
  model.forward(img.data(), l1.data());
  model.forward(img.data(), l2.data());
  EXPECT_EQ(l1, l2);
}

TEST(Fig7Shapes, TableMatchesResNet50Metadata) {
  const auto& shapes = fig7_conv_shapes();
  ASSERT_EQ(shapes.size(), 19u);  // layer IDs 2..20
  EXPECT_EQ(shapes.front().layer_id, 2);
  EXPECT_EQ(shapes.back().layer_id, 20);
  for (const auto& s : shapes) {
    EXPECT_GT(s.C, 0);
    EXPECT_GT(s.K, 0);
    // 3x3 layers carry pad 1; 1x1 layers pad 0 (ResNet-50 invariant).
    if (s.R == 3) EXPECT_EQ(s.pad, 1);
    if (s.R == 1) EXPECT_EQ(s.pad, 0);
    // Spatial sizes follow the stage map {56, 28, 14, 7}.
    EXPECT_TRUE(s.H == 56 || s.H == 28 || s.H == 14 || s.H == 7);
  }
}

}  // namespace
}  // namespace plt::dl
