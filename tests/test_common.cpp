#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <set>

#include "common/aligned_buffer.hpp"
#include "common/bf16.hpp"
#include "common/cpu_features.hpp"
#include "common/env.hpp"
#include "common/math_utils.hpp"
#include "common/check.hpp"
#include "common/rng.hpp"
#include "common/status.hpp"

namespace plt {
namespace {

TEST(Bf16, RoundTripExactForBf16Representable) {
  // Values with <= 7 explicit mantissa bits survive the round trip exactly.
  for (float v : {0.0f, 1.0f, -1.0f, 0.5f, 2.0f, -3.25f, 100.0f,
                  std::ldexp(1.0f, 30)}) {
    EXPECT_EQ(bf16::from_f32(v).to_f32(), v) << v;
  }
}

TEST(Bf16, RoundToNearestEven) {
  // bf16 has a 7-bit mantissa: the step at 1.0 is 2^-7, so 1.0 + 2^-8 is
  // exactly halfway between bf16(1.0) and the next value; RNE picks the even
  // mantissa (1.0).
  const float halfway = 1.0f + std::ldexp(1.0f, -8);
  EXPECT_EQ(bf16::from_f32(halfway).to_f32(), 1.0f);
  // Just above halfway rounds up.
  const float above = 1.0f + std::ldexp(1.0f, -8) + std::ldexp(1.0f, -15);
  EXPECT_EQ(bf16::from_f32(above).to_f32(), 1.0f + std::ldexp(1.0f, -7));
}

TEST(Bf16, RelativeErrorBounded) {
  Xoshiro256 rng(7);
  for (int i = 0; i < 10000; ++i) {
    const float v = rng.uniform(-100.0f, 100.0f);
    const float r = bf16::from_f32(v).to_f32();
    EXPECT_LE(std::fabs(r - v), std::fabs(v) * (1.0f / 256.0f) + 1e-38f);
  }
}

TEST(Bf16, NanAndInfPreserved) {
  EXPECT_TRUE(std::isnan(bf16::from_f32(std::nanf("")).to_f32()));
  EXPECT_TRUE(std::isinf(bf16::from_f32(INFINITY).to_f32()));
  EXPECT_LT(bf16::from_f32(-INFINITY).to_f32(), 0.0f);
}

TEST(Bf16, DtypeSizes) {
  EXPECT_EQ(dtype_size(DType::F32), 4u);
  EXPECT_EQ(dtype_size(DType::BF16), 2u);
  EXPECT_EQ(dtype_size(DType::I32), 4u);
  EXPECT_EQ(dtype_size(DType::U8), 1u);
}

TEST(Rng, Deterministic) {
  Xoshiro256 a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Xoshiro256 a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.next_u64() == b.next_u64();
  EXPECT_LT(same, 4);
}

TEST(Rng, UniformRange) {
  Xoshiro256 rng(3);
  for (int i = 0; i < 10000; ++i) {
    const float v = rng.uniform(-2.0f, 5.0f);
    EXPECT_GE(v, -2.0f);
    EXPECT_LT(v, 5.0f);
  }
}

TEST(Rng, SplitDecorrelates) {
  Xoshiro256 parent(9);
  Xoshiro256 child = parent.split();
  int same = 0;
  for (int i = 0; i < 64; ++i) same += parent.next_u64() == child.next_u64();
  EXPECT_LT(same, 4);
}

TEST(MathUtils, PrimeFactors) {
  EXPECT_EQ(prime_factors(1), (std::vector<std::int64_t>{}));
  EXPECT_EQ(prime_factors(12), (std::vector<std::int64_t>{2, 2, 3}));
  EXPECT_EQ(prime_factors(97), (std::vector<std::int64_t>{97}));
  EXPECT_EQ(prime_factors(64), (std::vector<std::int64_t>(6, 2)));
}

TEST(MathUtils, Divisors) {
  EXPECT_EQ(divisors(12), (std::vector<std::int64_t>{1, 2, 3, 4, 6, 12}));
  EXPECT_EQ(divisors(1), (std::vector<std::int64_t>{1}));
}

TEST(MathUtils, PrefixProductBlockings) {
  // Trip 8 with step 2: factors {2,2,2} -> blockings {4, 8, 16}.
  EXPECT_EQ(prefix_product_blockings(8, 2),
            (std::vector<std::int64_t>{4, 8, 16}));
}

TEST(MathUtils, CeilDivRoundUp) {
  EXPECT_EQ(ceil_div(7, 3), 3);
  EXPECT_EQ(ceil_div(6, 3), 2);
  EXPECT_EQ(round_up(7, 4), 8);
}

TEST(AlignedBuffer, AlignmentAndValueSemantics) {
  AlignedBuffer<float> a(100);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(a.data()) % kCacheLine, 0u);
  a.zero();
  a[7] = 3.0f;
  AlignedBuffer<float> b = a;  // deep copy
  b[7] = 5.0f;
  EXPECT_EQ(a[7], 3.0f);
  AlignedBuffer<float> c = std::move(a);
  EXPECT_EQ(c[7], 3.0f);
  EXPECT_EQ(a.size(), 0u);  // NOLINT(bugprone-use-after-move): move contract
}

TEST(CpuFeatures, ConsistentIsaSelection) {
  const CpuFeatures& f = cpu_features();
  const IsaLevel isa = effective_isa();
  if (isa >= IsaLevel::kAVX2) EXPECT_TRUE(f.avx2 && f.fma);
  if (isa >= IsaLevel::kAVX512) EXPECT_TRUE(f.avx512f);
  if (isa >= IsaLevel::kAVX512BF16) EXPECT_TRUE(f.avx512_bf16);
  EXPECT_GE(f.logical_cores, 1);
  EXPECT_STRNE(isa_name(isa), "?");
}

// --- env helpers (centralized PLT_* parsing) ---------------------------------

TEST(Env, IntParsesValidatesAndFallsBack) {
  ::unsetenv("PLT_TEST_INT");
  EXPECT_EQ(common::env_int("PLT_TEST_INT", 42), 42);
  ::setenv("PLT_TEST_INT", "17", 1);
  EXPECT_EQ(common::env_int("PLT_TEST_INT", 42), 17);
  ::setenv("PLT_TEST_INT", "-5", 1);
  EXPECT_EQ(common::env_int("PLT_TEST_INT", 42, 0, 100), 42);  // range
  ::setenv("PLT_TEST_INT", "12abc", 1);
  EXPECT_EQ(common::env_int("PLT_TEST_INT", 42), 42);  // trailing garbage
  ::setenv("PLT_TEST_INT", "abc", 1);
  EXPECT_EQ(common::env_int("PLT_TEST_INT", 42), 42);  // not a number
  ::unsetenv("PLT_TEST_INT");
}

TEST(Env, FlagAcceptsDocumentedSpellingsOnly) {
  ::unsetenv("PLT_TEST_FLAG");
  EXPECT_TRUE(common::env_flag("PLT_TEST_FLAG", true));
  EXPECT_FALSE(common::env_flag("PLT_TEST_FLAG", false));
  for (const char* t : {"1", "true", "on"}) {
    ::setenv("PLT_TEST_FLAG", t, 1);
    EXPECT_TRUE(common::env_flag("PLT_TEST_FLAG", false)) << t;
  }
  for (const char* f : {"0", "false", "off"}) {
    ::setenv("PLT_TEST_FLAG", f, 1);
    EXPECT_FALSE(common::env_flag("PLT_TEST_FLAG", true)) << f;
  }
  ::setenv("PLT_TEST_FLAG", "yep", 1);
  EXPECT_TRUE(common::env_flag("PLT_TEST_FLAG", true));  // warn + default
  ::unsetenv("PLT_TEST_FLAG");
}

TEST(Env, EnumRejectsUnknownValues) {
  ::unsetenv("PLT_TEST_ENUM");
  EXPECT_EQ(common::env_enum("PLT_TEST_ENUM", "pool", {"omp", "pool"}),
            "pool");
  ::setenv("PLT_TEST_ENUM", "omp", 1);
  EXPECT_EQ(common::env_enum("PLT_TEST_ENUM", "pool", {"omp", "pool"}), "omp");
  ::setenv("PLT_TEST_ENUM", "pools", 1);
  EXPECT_EQ(common::env_enum("PLT_TEST_ENUM", "pool", {"omp", "pool"}),
            "pool");  // warn + default
  ::unsetenv("PLT_TEST_ENUM");
}

TEST(Env, StrPassesThrough) {
  ::unsetenv("PLT_TEST_STR");
  EXPECT_EQ(common::env_str("PLT_TEST_STR", "dflt"), "dflt");
  ::setenv("PLT_TEST_STR", "/some/path", 1);
  EXPECT_EQ(common::env_str("PLT_TEST_STR", "dflt"), "/some/path");
  ::unsetenv("PLT_TEST_STR");
}

TEST(Status, CodesNamesAndFactories) {
  EXPECT_TRUE(Status().ok());
  EXPECT_EQ(Status().to_string(), "OK");
  const Status s = Status::DeadlineExceeded("too slow");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(s.message(), "too slow");
  EXPECT_EQ(s.to_string(), "DEADLINE_EXCEEDED: too slow");
  EXPECT_STREQ(status_code_name(StatusCode::kResourceExhausted),
               "RESOURCE_EXHAUSTED");
}

TEST(Status, StatusOrHoldsValueOrStatus) {
  StatusOr<int> good(7);
  EXPECT_TRUE(good.ok());
  EXPECT_EQ(good.value(), 7);
  EXPECT_EQ(good.value_or(-1), 7);

  StatusOr<int> bad(Status::Unavailable("gone"));
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kUnavailable);
  EXPECT_EQ(bad.value_or(-1), -1);
  EXPECT_THROW(bad.value(), RuntimeError);
}

TEST(Status, FromExceptionMapsTypesToCodes) {
  EXPECT_EQ(status_from_exception(RuntimeError(StatusCode::kInternal, "x"))
                .code(),
            StatusCode::kInternal);
  EXPECT_EQ(
      status_from_exception(RuntimeError(StatusCode::kResourceExhausted, "x"))
          .code(),
      StatusCode::kResourceExhausted);
  EXPECT_EQ(status_from_exception(std::invalid_argument("bad arg")).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(status_from_exception(std::bad_alloc()).code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(status_from_exception(std::runtime_error("boom")).code(),
            StatusCode::kInternal);
}

TEST(Check, EnsureThrowsRuntimeErrorWithCodeAndContext) {
  PLT_ENSURE(true, StatusCode::kInternal, "never thrown");
  try {
    PLT_ENSURE(1 == 2, StatusCode::kUnavailable, "backend missing");
    FAIL() << "PLT_ENSURE did not throw";
  } catch (const RuntimeError& e) {
    EXPECT_EQ(e.code(), StatusCode::kUnavailable);
    const std::string what = e.what();
    EXPECT_NE(what.find("UNAVAILABLE"), std::string::npos);
    EXPECT_NE(what.find("1 == 2"), std::string::npos);
    EXPECT_NE(what.find("backend missing"), std::string::npos);
  }
  // PLT_CHECK stays the API-misuse family: std::invalid_argument.
  EXPECT_THROW(PLT_CHECK(false, "misuse"), std::invalid_argument);
}

}  // namespace
}  // namespace plt
