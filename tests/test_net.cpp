// Network front-end tests: wire-protocol codec edge cases (truncated
// headers, oversized length prefixes, version mismatches), the 1:1
// StatusCode <-> WireCode mapping, per-tenant token-bucket quotas, and
// loopback end-to-end serving — payload bitwise-identical to in-process
// submit, every failure mode (deadline, shed, quarantine, quota, protocol
// error, injected write faults) surfaced as the right wire status, and a
// reload storm swapping models under live traffic with zero dropped
// requests. Designed to run TSan/ASan-clean (the CI sanitizer jobs run this
// binary).
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/fault.hpp"
#include "common/rng.hpp"
#include "common/status.hpp"
#include "net/client.hpp"
#include "net/quota.hpp"
#include "net/server.hpp"
#include "net/wire.hpp"
#include "serving/model_registry.hpp"
#include "serving/scheduler.hpp"
#include "serving/session.hpp"

namespace plt::net {
namespace {

namespace fault = plt::common::fault;

serving::MlpServeConfig tiny_mlp() {
  serving::MlpServeConfig c;
  c.features = 32;
  c.layers = 2;
  c.tokens = 8;
  c.bm = c.bn = c.bk = 8;
  return c;
}

std::vector<float> make_input(const serving::Session& s, std::uint64_t seed) {
  std::vector<float> in(static_cast<std::size_t>(s.input_elems()));
  Xoshiro256 rng(seed);
  fill_uniform(in.data(), in.size(), rng, -1.0f, 1.0f);
  return in;
}

// In-process reference: lane 0, calling thread. Lanes are identical replicas
// and serial nest walks are bitwise-equal to parallel ones, so this is the
// value every wire response must match byte for byte.
std::vector<float> run_reference(serving::Session& s,
                                 const std::vector<float>& in) {
  std::vector<float> out(static_cast<std::size_t>(s.output_elems()));
  s.run(0, in.data(), out.data());
  return out;
}

RequestFrame sample_request() {
  RequestFrame f;
  f.request_id = 0x1122334455667788ull;
  f.tenant_id = 42;
  f.cls = 1;
  f.deadline_usecs = 123456;
  f.name = "mlp";
  f.payload = {1.5f, -2.25f, 0.0f, 1e-30f};
  return f;
}

// send_request() only puts bytes on the socket; the server's event loop
// submits them asynchronously. Tests that stage queue states must wait for
// the scheduler's counters to reflect the staged state before acting on it.
// `submitted` counts at submit ENTRY (before the queue push), so waiting on
// it means "the loop thread reached this request", not "it resolved" —
// tests that need resolution wait on a terminal counter (e.g. `shed`).
bool await_counter(const serving::RequestScheduler& sched,
                   std::uint64_t serving::RequestScheduler::Counters::*field,
                   std::uint64_t want) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (sched.counters().*field < want) {
    if (std::chrono::steady_clock::now() > deadline) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return true;
}

// Arms a fault spec for the test body and guarantees disarm on every exit
// path (EXPECT failures do not throw, but ASSERT returns early).
struct FaultScope {
  FaultScope(const std::string& spec, std::uint64_t seed) {
    fault::configure(spec, seed);
  }
  ~FaultScope() { fault::reset(); }
};

// Blocks inside run() until released: parks the dispatcher so tests can
// deterministically pile work up behind it (same idiom as test_serving).
class BlockingSession final : public serving::Session {
 public:
  explicit BlockingSession(const std::string& name)
      : Session(name, /*lanes=*/4, /*input_elems=*/4, /*output_elems=*/4,
                /*flops=*/1.0) {}

  std::atomic<bool> entered{false};

  void run(int, const float* in, float* out) override {
    entered.store(true, std::memory_order_release);
    std::unique_lock<std::mutex> lk(mu_);
    cv_.wait(lk, [&] { return released_; });
    for (int i = 0; i < 4; ++i) out[i] = in[i] + 1.0f;
  }

  void release() {
    {
      std::lock_guard<std::mutex> g(mu_);
      released_ = true;
    }
    cv_.notify_all();
  }

  void await_entered() {
    while (!entered.load(std::memory_order_acquire)) {
      std::this_thread::yield();
    }
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  bool released_ = false;
};

// Passthrough that throws on demand — drives the quarantine wire status.
class FailingSession final : public serving::Session {
 public:
  explicit FailingSession(const std::string& name)
      : Session(name, /*lanes=*/4, 4, 4, 1.0) {}

  std::atomic<bool> fail{false};

  void run(int, const float* in, float* out) override {
    if (fail.load(std::memory_order_acquire)) {
      throw RuntimeError(StatusCode::kInternal, "scripted net failure");
    }
    for (int i = 0; i < 4; ++i) out[i] = in[i];
  }
};

// Raw blocking socket helpers for the byte-level tests (dribbled sends,
// garbage frames) that the cooked Client cannot express.
int raw_connect(int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return -1;
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

// Blocking read until one full response decodes (or the peer closes —
// returns false).
bool raw_recv_response(int fd, ResponseFrame* resp) {
  std::vector<std::uint8_t> buf;
  std::uint8_t chunk[4096];
  while (true) {
    std::size_t consumed = 0;
    std::string error;
    const DecodeResult res =
        decode_response(buf.data(), buf.size(), resp, &consumed, &error);
    if (res == DecodeResult::kOk) return true;
    if (res == DecodeResult::kError) return false;
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) return false;
    buf.insert(buf.end(), chunk, chunk + n);
  }
}

// --- wire codec -------------------------------------------------------------

TEST(WireCodec, RequestRoundTrip) {
  const RequestFrame f = sample_request();
  std::vector<std::uint8_t> bytes;
  encode_request(f, &bytes);
  EXPECT_EQ(bytes.size(), kRequestHeaderBytes + f.name.size() +
                              f.payload.size() * 4);

  RequestFrame out;
  std::size_t consumed = 0;
  std::string error;
  ASSERT_EQ(decode_request(bytes.data(), bytes.size(), &out, &consumed, &error),
            DecodeResult::kOk);
  EXPECT_EQ(consumed, bytes.size());
  EXPECT_EQ(out.request_id, f.request_id);
  EXPECT_EQ(out.tenant_id, f.tenant_id);
  EXPECT_EQ(out.cls, f.cls);
  EXPECT_EQ(out.deadline_usecs, f.deadline_usecs);
  EXPECT_EQ(out.name, f.name);
  ASSERT_EQ(out.payload.size(), f.payload.size());
  EXPECT_EQ(std::memcmp(out.payload.data(), f.payload.data(),
                        f.payload.size() * sizeof(float)),
            0);
}

TEST(WireCodec, ResponseRoundTripOkAndError) {
  ResponseFrame ok;
  ok.request_id = 7;
  ok.code = WireCode::kOk;
  ok.payload = {3.25f, -0.5f};
  std::vector<std::uint8_t> bytes;
  encode_response(ok, &bytes);

  ResponseFrame out;
  std::size_t consumed = 0;
  std::string error;
  ASSERT_EQ(
      decode_response(bytes.data(), bytes.size(), &out, &consumed, &error),
      DecodeResult::kOk);
  EXPECT_EQ(out.request_id, 7u);
  EXPECT_EQ(out.code, WireCode::kOk);
  EXPECT_TRUE(out.message.empty());
  ASSERT_EQ(out.payload.size(), 2u);
  EXPECT_EQ(out.payload[0], 3.25f);

  ResponseFrame err;
  err.request_id = 8;
  err.code = WireCode::kDeadlineExceeded;
  err.message = "deadline passed while queued";
  bytes.clear();
  encode_response(err, &bytes);
  ASSERT_EQ(
      decode_response(bytes.data(), bytes.size(), &out, &consumed, &error),
      DecodeResult::kOk);
  EXPECT_EQ(out.code, WireCode::kDeadlineExceeded);
  EXPECT_EQ(out.message, err.message);
  EXPECT_TRUE(out.payload.empty());
}

// Two frames encoded back-to-back into one buffer decode one at a time with
// exact consumed offsets — the pipelining contract the server and client
// read loops rely on.
TEST(WireCodec, BackToBackFramesDecodeSequentially) {
  RequestFrame a = sample_request();
  RequestFrame b = sample_request();
  b.request_id = 99;
  b.payload = {1.0f};
  std::vector<std::uint8_t> bytes;
  encode_request(a, &bytes);
  const std::size_t a_len = bytes.size();
  encode_request(b, &bytes);

  RequestFrame out;
  std::size_t consumed = 0;
  std::string error;
  ASSERT_EQ(decode_request(bytes.data(), bytes.size(), &out, &consumed, &error),
            DecodeResult::kOk);
  EXPECT_EQ(consumed, a_len);
  EXPECT_EQ(out.request_id, a.request_id);
  ASSERT_EQ(decode_request(bytes.data() + consumed, bytes.size() - consumed,
                           &out, &consumed, &error),
            DecodeResult::kOk);
  EXPECT_EQ(out.request_id, 99u);
  EXPECT_EQ(out.payload.size(), 1u);
}

// Every strict prefix of a valid frame — including a truncated header — is
// kNeedMore, never an error and never a partial decode.
TEST(WireCodec, EveryTruncationNeedsMore) {
  std::vector<std::uint8_t> bytes;
  encode_request(sample_request(), &bytes);
  RequestFrame out;
  std::size_t consumed = 0;
  std::string error;
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    EXPECT_EQ(decode_request(bytes.data(), len, &out, &consumed, &error),
              DecodeResult::kNeedMore)
        << "prefix length " << len;
  }

  ResponseFrame resp;
  resp.request_id = 1;
  resp.code = WireCode::kUnavailable;
  resp.message = "shutting down";
  bytes.clear();
  encode_response(resp, &bytes);
  ResponseFrame rout;
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    EXPECT_EQ(decode_response(bytes.data(), len, &rout, &consumed, &error),
              DecodeResult::kNeedMore)
        << "prefix length " << len;
  }
}

TEST(WireCodec, BadMagicAndVersionAndTypeRejected) {
  std::vector<std::uint8_t> bytes;
  encode_request(sample_request(), &bytes);
  RequestFrame out;
  std::size_t consumed = 0;
  std::string error;

  auto mutated = bytes;
  mutated[0] ^= 0xFF;  // magic
  EXPECT_EQ(
      decode_request(mutated.data(), mutated.size(), &out, &consumed, &error),
      DecodeResult::kError);
  EXPECT_NE(error.find("bad magic"), std::string::npos);

  mutated = bytes;
  mutated[4] = 0x7F;  // version
  EXPECT_EQ(
      decode_request(mutated.data(), mutated.size(), &out, &consumed, &error),
      DecodeResult::kError);
  EXPECT_NE(error.find("version mismatch"), std::string::npos);

  mutated = bytes;
  mutated[6] = 2;  // response type in a request decoder
  EXPECT_EQ(
      decode_request(mutated.data(), mutated.size(), &out, &consumed, &error),
      DecodeResult::kError);
  EXPECT_NE(error.find("frame type"), std::string::npos);
}

// An adversarial length prefix is rejected from the header bytes alone: the
// buffer holds ONLY the header, yet the decoder must say kError (a kNeedMore
// would mean it believed the 4 GB length and would buffer toward it).
TEST(WireCodec, OversizedLengthPrefixRejectedFromHeaderAlone) {
  std::vector<std::uint8_t> bytes;
  encode_request(sample_request(), &bytes);
  bytes.resize(kRequestHeaderBytes);  // header only
  RequestFrame out;
  std::size_t consumed = 0;
  std::string error;

  auto mutated = bytes;
  const std::uint32_t huge = 0xFFFFFFF0u;  // ~4 GB, multiple of 4
  for (int i = 0; i < 4; ++i) {
    mutated[28 + static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>((huge >> (8 * i)) & 0xFF);
  }
  EXPECT_EQ(decode_request(mutated.data(), mutated.size(), &out, &consumed,
                           &error),
            DecodeResult::kError);
  EXPECT_NE(error.find("exceeds cap"), std::string::npos);

  // payload_len not a multiple of 4 (not a float32 tensor).
  mutated = bytes;
  mutated[28] = 3;
  mutated[29] = mutated[30] = mutated[31] = 0;
  EXPECT_EQ(decode_request(mutated.data(), mutated.size(), &out, &consumed,
                           &error),
            DecodeResult::kError);
  EXPECT_NE(error.find("multiple of 4"), std::string::npos);

  // name_len of 0 and of > kMaxNameLen.
  mutated = bytes;
  mutated[26] = mutated[27] = 0;
  EXPECT_EQ(decode_request(mutated.data(), mutated.size(), &out, &consumed,
                           &error),
            DecodeResult::kError);
  mutated[26] = 0xFF;
  mutated[27] = 0xFF;
  EXPECT_EQ(decode_request(mutated.data(), mutated.size(), &out, &consumed,
                           &error),
            DecodeResult::kError);

  // Response side: oversized message and payload caps.
  ResponseFrame resp;
  resp.request_id = 1;
  std::vector<std::uint8_t> rbytes;
  encode_response(resp, &rbytes);
  rbytes.resize(kResponseHeaderBytes);
  rbytes[18] = 0xFF;  // msg_len = 0xFFFF > kMaxMessageLen
  rbytes[19] = 0xFF;
  ResponseFrame rout;
  EXPECT_EQ(decode_response(rbytes.data(), rbytes.size(), &rout, &consumed,
                            &error),
            DecodeResult::kError);
  EXPECT_NE(error.find("exceeds cap"), std::string::npos);
}

// Satellite: status_code_name + the 1:1 StatusCode <-> WireCode mapping.
TEST(WireCodec, StatusCodeNamesAndWireMappingRoundTrip) {
  const StatusCode terminal[] = {
      StatusCode::kOk,          StatusCode::kInvalidArgument,
      StatusCode::kDeadlineExceeded, StatusCode::kUnavailable,
      StatusCode::kResourceExhausted, StatusCode::kInternal,
  };
  for (const StatusCode c : terminal) {
    const WireCode w = wire_code_from_status(c);
    StatusCode back;
    ASSERT_TRUE(status_from_wire_code(static_cast<std::uint16_t>(w), &back))
        << status_code_name(c);
    EXPECT_EQ(back, c);  // exact round trip
    // The wire code's display name IS the status code's display name.
    EXPECT_STREQ(wire_code_name(w), status_code_name(c));
  }
  EXPECT_STREQ(status_code_name(StatusCode::kOk), "OK");
  EXPECT_STREQ(status_code_name(StatusCode::kResourceExhausted),
               "RESOURCE_EXHAUSTED");
  EXPECT_STREQ(status_code_name(StatusCode::kInFlight), "IN_FLIGHT");

  // kInFlight is non-terminal: it never crosses the wire, and serializing it
  // anyway reads as a server bug (kInternal), not a new wire code.
  EXPECT_EQ(wire_code_from_status(StatusCode::kInFlight), WireCode::kInternal);

  StatusCode ignored;
  EXPECT_FALSE(status_from_wire_code(999, &ignored));
  EXPECT_FALSE(status_from_wire_code(6, &ignored));  // kInFlight's raw value
}

// --- tenant quotas ----------------------------------------------------------

TEST(TenantQuota, DisabledAdmitsEverything) {
  TenantQuota q(0.0);
  EXPECT_FALSE(q.enabled());
  const auto now = std::chrono::steady_clock::now();
  for (int i = 0; i < 100; ++i) EXPECT_TRUE(q.admit(1, now));
  EXPECT_EQ(q.rejected(), 0u);
}

// Synthetic time points make the bucket arithmetic exact: burst admits, the
// next request rejects, refill at qps tokens/sec re-admits.
TEST(TenantQuota, BurstCapThenRefillAtQps) {
  TenantQuota q(/*qps=*/1000.0, /*burst=*/3.0);
  EXPECT_TRUE(q.enabled());
  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_TRUE(q.admit(1, t0));
  EXPECT_TRUE(q.admit(1, t0));
  EXPECT_TRUE(q.admit(1, t0));
  EXPECT_FALSE(q.admit(1, t0));  // burst spent
  // 2 ms at 1000 qps accrues 2 tokens (capped at burst 3).
  const auto t1 = t0 + std::chrono::milliseconds(2);
  EXPECT_TRUE(q.admit(1, t1));
  EXPECT_TRUE(q.admit(1, t1));
  EXPECT_FALSE(q.admit(1, t1));
  EXPECT_EQ(q.admitted(), 5u);
  EXPECT_EQ(q.rejected(), 2u);
}

TEST(TenantQuota, TenantsHaveIndependentBuckets) {
  TenantQuota q(/*qps=*/10.0, /*burst=*/1.0);
  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_TRUE(q.admit(1, t0));
  EXPECT_FALSE(q.admit(1, t0));  // tenant 1 spent
  EXPECT_TRUE(q.admit(2, t0));   // tenant 2 untouched
  EXPECT_TRUE(q.admit(3, t0));
}

// --- loopback end-to-end ----------------------------------------------------

// Payloads served over the socket are bitwise-identical to in-process
// execution, for monolithic (MLP) and stepped (LLM decode) sessions, across
// latency/throughput/default request classes.
TEST(NetServing, LoopbackBitwiseIdenticalToInProcess) {
  serving::SchedulerConfig cfg;
  cfg.max_batch = 4;
  cfg.batch_usecs = 100;
  cfg.shards = 1;
  const int lanes = cfg.max_batch;

  serving::ModelRegistry reg;
  reg.add(serving::make_mlp_session("mlp", tiny_mlp(), lanes, 7));
  dl::LlmConfig llm;
  llm.hidden = 32;
  llm.heads = 2;
  llm.layers = 1;
  llm.ffn = 64;
  llm.vocab = 64;
  llm.max_seq = 32;
  llm.bm = llm.bn = llm.bk = 8;
  reg.add(serving::make_llm_session("llm", llm, /*prompt=*/4, /*gen=*/8,
                                    lanes, 8));

  serving::RequestScheduler sched(cfg);
  Server server(reg, sched, ServerConfig{});
  ASSERT_TRUE(server.start().ok());
  ASSERT_GT(server.port(), 0);

  const auto sessions = reg.sessions();
  constexpr int kRequests = 24;
  std::vector<std::vector<float>> ins, want;
  for (int i = 0; i < kRequests; ++i) {
    auto& s = *sessions[static_cast<std::size_t>(i) % sessions.size()];
    ins.push_back(make_input(s, 100 + static_cast<std::uint64_t>(i)));
    want.push_back(run_reference(s, ins.back()));
  }

  Client client;
  ASSERT_TRUE(client.connect("127.0.0.1", server.port()).ok());
  for (int i = 0; i < kRequests; ++i) {
    auto& s = *sessions[static_cast<std::size_t>(i) % sessions.size()];
    RequestFrame req;
    req.request_id = static_cast<std::uint64_t>(i) + 1;
    req.name = s.name();
    req.cls = static_cast<std::uint16_t>(i % 3);  // latency/throughput/default
    req.payload = ins[static_cast<std::size_t>(i)];
    ResponseFrame resp;
    ASSERT_TRUE(client.call(req, &resp).ok()) << "request " << i;
    ASSERT_EQ(resp.code, WireCode::kOk) << resp.message;
    EXPECT_EQ(resp.request_id, req.request_id);
    ASSERT_EQ(resp.payload.size(), want[static_cast<std::size_t>(i)].size());
    EXPECT_EQ(std::memcmp(resp.payload.data(),
                          want[static_cast<std::size_t>(i)].data(),
                          resp.payload.size() * sizeof(float)),
              0)
        << "wire output diverged from in-process execution for request " << i;
  }

  server.stop();
  sched.shutdown();
  const auto st = server.stats();
  EXPECT_EQ(st.frames, static_cast<std::uint64_t>(kRequests));
  EXPECT_EQ(st.responses, static_cast<std::uint64_t>(kRequests));
  EXPECT_EQ(st.protocol_errors, 0u);
  const auto c = sched.counters();
  EXPECT_EQ(c.submitted, static_cast<std::uint64_t>(kRequests));
  EXPECT_EQ(c.completed, static_cast<std::uint64_t>(kRequests));
  EXPECT_EQ(c.completed + c.failed + c.expired + c.shed + c.rejected,
            c.submitted);
}

// Malformed-at-the-API-level requests (unknown model, wrong tensor size, bad
// class) are answered INVALID_ARGUMENT on the SAME connection, which stays
// usable — only byte-level protocol errors poison a stream.
TEST(NetServing, ApiRejectsAnswerInvalidArgumentAndKeepConnection) {
  serving::SchedulerConfig cfg;
  cfg.shards = 1;
  serving::ModelRegistry reg;
  reg.add(serving::make_mlp_session("mlp", tiny_mlp(), 4, 7));
  serving::RequestScheduler sched(cfg);
  Server server(reg, sched, ServerConfig{});
  ASSERT_TRUE(server.start().ok());
  const auto mlp = reg.find("mlp");

  Client client;
  ASSERT_TRUE(client.connect("127.0.0.1", server.port()).ok());
  ResponseFrame resp;

  RequestFrame unknown;
  unknown.request_id = 1;
  unknown.name = "nope";
  unknown.payload = {1.0f};
  ASSERT_TRUE(client.call(unknown, &resp).ok());
  EXPECT_EQ(resp.code, WireCode::kInvalidArgument);
  EXPECT_NE(resp.message.find("unknown model"), std::string::npos);

  RequestFrame short_payload;
  short_payload.request_id = 2;
  short_payload.name = "mlp";
  short_payload.payload = {1.0f, 2.0f};  // mlp wants 256 floats
  ASSERT_TRUE(client.call(short_payload, &resp).ok());
  EXPECT_EQ(resp.code, WireCode::kInvalidArgument);
  EXPECT_NE(resp.message.find("model expects"), std::string::npos);

  RequestFrame bad_cls;
  bad_cls.request_id = 3;
  bad_cls.name = "mlp";
  bad_cls.cls = 9;
  bad_cls.payload = make_input(*mlp, 1);
  ASSERT_TRUE(client.call(bad_cls, &resp).ok());
  EXPECT_EQ(resp.code, WireCode::kInvalidArgument);
  EXPECT_NE(resp.message.find("request class"), std::string::npos);

  // The connection survived all three rejects and still serves.
  RequestFrame good;
  good.request_id = 4;
  good.name = "mlp";
  good.payload = make_input(*mlp, 2);
  ASSERT_TRUE(client.call(good, &resp).ok());
  EXPECT_EQ(resp.code, WireCode::kOk);

  server.stop();
  sched.shutdown();
  EXPECT_EQ(server.stats().protocol_errors, 0u);
  // API rejects never touched the scheduler.
  EXPECT_EQ(sched.counters().submitted, 1u);
}

// Deadline expiry while queued surfaces as DEADLINE_EXCEEDED on the wire.
// The dispatcher is parked inside a blocking request, so the dealined
// request is deterministically still queued when its 1 us budget passes.
TEST(NetServing, DeadlineExpirySurfacesOnTheWire) {
  auto blocker = std::make_shared<BlockingSession>("blocker");
  serving::SchedulerConfig cfg;
  cfg.max_batch = 1;
  cfg.batch_usecs = 0;
  cfg.shards = 1;
  serving::ModelRegistry reg;
  reg.add(blocker);
  serving::RequestScheduler sched(cfg);
  Server server(reg, sched, ServerConfig{});
  ASSERT_TRUE(server.start().ok());

  Client client;
  ASSERT_TRUE(client.connect("127.0.0.1", server.port()).ok());
  RequestFrame park;
  park.request_id = 1;
  park.name = "blocker";
  park.payload = {0.0f, 0.0f, 0.0f, 0.0f};
  park.deadline_usecs = 0;  // no deadline
  ASSERT_TRUE(client.send_request(park).ok());
  blocker->await_entered();

  RequestFrame rushed = park;
  rushed.request_id = 2;
  rushed.deadline_usecs = 1;
  ASSERT_TRUE(client.send_request(rushed).ok());
  // Wait until the loop thread has actually queued the rushed request, then
  // let its 1 us budget lapse before unparking the dispatcher. (Entry-level
  // `submitted` is sufficient here: the queue has room, so a submit that
  // entered has pushed by the time the dispatcher next drains.)
  ASSERT_TRUE(await_counter(
      sched, &serving::RequestScheduler::Counters::submitted, 2));
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  blocker->release();

  int ok = 0, expired = 0;
  for (int i = 0; i < 2; ++i) {
    ResponseFrame resp;
    ASSERT_TRUE(client.recv_response(&resp).ok());
    if (resp.request_id == 1) {
      EXPECT_EQ(resp.code, WireCode::kOk);
      ++ok;
    } else {
      EXPECT_EQ(resp.code, WireCode::kDeadlineExceeded);
      EXPECT_NE(resp.message.find("deadline"), std::string::npos);
      ++expired;
    }
  }
  EXPECT_EQ(ok, 1);
  EXPECT_EQ(expired, 1);

  server.stop();
  sched.shutdown();
  const auto c = sched.counters();
  EXPECT_EQ(c.completed, 1u);
  EXPECT_EQ(c.expired, 1u);
}

// Admission shedding under a saturated queue surfaces as RESOURCE_EXHAUSTED:
// the dispatcher is parked, the 4-slot admission queue fills, and every
// further submit sheds after the submit timeout.
TEST(NetServing, LoadShedSurfacesAsResourceExhausted) {
  auto blocker = std::make_shared<BlockingSession>("blocker");
  serving::SchedulerConfig cfg;
  cfg.max_batch = 4;
  cfg.batch_usecs = 0;
  cfg.shards = 1;
  cfg.queue_capacity = 4;
  cfg.submit_timeout_usecs = 2000;
  serving::ModelRegistry reg;
  reg.add(blocker);
  serving::RequestScheduler sched(cfg);
  Server server(reg, sched, ServerConfig{});
  ASSERT_TRUE(server.start().ok());

  Client client;
  ASSERT_TRUE(client.connect("127.0.0.1", server.port()).ok());
  RequestFrame req;
  req.name = "blocker";
  req.payload = {1.0f, 2.0f, 3.0f, 4.0f};
  req.request_id = 1;
  ASSERT_TRUE(client.send_request(req).ok());
  blocker->await_entered();  // dispatcher parked; queue is empty

  constexpr int kFlood = 8;  // 4 fit the queue, 4 must shed
  for (int i = 0; i < kFlood; ++i) {
    req.request_id = static_cast<std::uint64_t>(i) + 2;
    ASSERT_TRUE(client.send_request(req).ok());
  }
  // The loop thread submits the flood in frame order: 4 fill the queue, the
  // next 4 each stall past the 2 ms submit timeout and shed. Wait for the
  // SHED terminal counter, not `submitted` (which counts at submit entry):
  // releasing while the last overflow submit is still inside its retry
  // window would free a queue slot and let it sneak in.
  ASSERT_TRUE(await_counter(
      sched, &serving::RequestScheduler::Counters::shed, 4));
  blocker->release();

  int ok = 0, shed = 0;
  for (int i = 0; i < kFlood + 1; ++i) {
    ResponseFrame resp;
    ASSERT_TRUE(client.recv_response(&resp).ok());
    if (resp.code == WireCode::kOk) {
      ASSERT_EQ(resp.payload.size(), 4u);
      EXPECT_EQ(resp.payload[2], 4.0f);  // in[2] + 1
      ++ok;
    } else {
      EXPECT_EQ(resp.code, WireCode::kResourceExhausted);
      ++shed;
    }
  }
  EXPECT_EQ(ok, 5);    // the parked request + the 4 that fit the queue
  EXPECT_EQ(shed, 4);  // exactly the overflow

  server.stop();
  sched.shutdown();
  const auto c = sched.counters();
  EXPECT_EQ(c.submitted, static_cast<std::uint64_t>(kFlood) + 1);
  EXPECT_EQ(c.completed, 5u);
  EXPECT_EQ(c.shed, 4u);
}

// A session whose batch throws is quarantined: the poisoned request answers
// INTERNAL, subsequent requests answer UNAVAILABLE ("quarantined") without
// executing, and other sessions keep serving.
TEST(NetServing, QuarantineSurfacesAsUnavailable) {
  auto failing = std::make_shared<FailingSession>("failing");
  serving::SchedulerConfig cfg;
  cfg.max_batch = 2;
  cfg.batch_usecs = 0;
  cfg.shards = 1;
  cfg.quarantine = true;
  serving::ModelRegistry reg;
  reg.add(failing);
  reg.add(serving::make_mlp_session("mlp", tiny_mlp(), 2, 7));
  serving::RequestScheduler sched(cfg);
  Server server(reg, sched, ServerConfig{});
  ASSERT_TRUE(server.start().ok());
  const auto mlp = reg.find("mlp");

  Client client;
  ASSERT_TRUE(client.connect("127.0.0.1", server.port()).ok());
  ResponseFrame resp;

  failing->fail.store(true, std::memory_order_release);
  RequestFrame poison;
  poison.request_id = 1;
  poison.name = "failing";
  poison.payload = {1.0f, 2.0f, 3.0f, 4.0f};
  ASSERT_TRUE(client.call(poison, &resp).ok());
  EXPECT_EQ(resp.code, WireCode::kInternal);
  EXPECT_NE(resp.message.find("scripted net failure"), std::string::npos);

  poison.request_id = 2;
  ASSERT_TRUE(client.call(poison, &resp).ok());
  EXPECT_EQ(resp.code, WireCode::kUnavailable);
  EXPECT_NE(resp.message.find("quarantined"), std::string::npos);

  RequestFrame good;
  good.request_id = 3;
  good.name = "mlp";
  good.payload = make_input(*mlp, 3);
  ASSERT_TRUE(client.call(good, &resp).ok());
  EXPECT_EQ(resp.code, WireCode::kOk);

  server.stop();
  sched.shutdown();
  const auto c = sched.counters();
  EXPECT_EQ(c.failed, 1u);
  EXPECT_EQ(c.rejected, 1u);
  EXPECT_EQ(c.completed, 1u);
}

// Per-tenant quota rejects RESOURCE_EXHAUSTED from the event loop BEFORE the
// scheduler: submitted == requests admitted, sent == submitted +
// quota_rejected, and tenants have independent buckets.
TEST(NetServing, QuotaRejectsBeforeTheScheduler) {
  serving::SchedulerConfig cfg;
  cfg.shards = 1;
  serving::ModelRegistry reg;
  reg.add(serving::make_mlp_session("mlp", tiny_mlp(), 4, 7));
  serving::RequestScheduler sched(cfg);
  ServerConfig net_cfg;
  net_cfg.tenant_qps = 1;  // refill far slower than the test runs
  net_cfg.tenant_burst = 2;
  Server server(reg, sched, net_cfg);
  ASSERT_TRUE(server.start().ok());
  const auto mlp = reg.find("mlp");
  const auto in = make_input(*mlp, 5);

  Client client;
  ASSERT_TRUE(client.connect("127.0.0.1", server.port()).ok());
  constexpr int kGreedy = 6;
  int ok = 0, rejected = 0;
  for (int i = 0; i < kGreedy; ++i) {
    RequestFrame req;
    req.request_id = static_cast<std::uint64_t>(i) + 1;
    req.tenant_id = 7;
    req.name = "mlp";
    req.payload = in;
    ResponseFrame resp;
    ASSERT_TRUE(client.call(req, &resp).ok());
    if (resp.code == WireCode::kOk) {
      ++ok;
    } else {
      ASSERT_EQ(resp.code, WireCode::kResourceExhausted);
      EXPECT_NE(resp.message.find("over quota"), std::string::npos);
      ++rejected;
    }
  }
  EXPECT_GE(ok, 2);        // the burst
  EXPECT_GE(rejected, 3);  // the overflow (>= : a slow run may refill one)
  EXPECT_EQ(ok + rejected, kGreedy);

  // A different tenant has its own untouched bucket.
  RequestFrame other;
  other.request_id = 100;
  other.tenant_id = 8;
  other.name = "mlp";
  other.payload = in;
  ResponseFrame resp;
  ASSERT_TRUE(client.call(other, &resp).ok());
  EXPECT_EQ(resp.code, WireCode::kOk);
  ++ok;

  server.stop();
  sched.shutdown();
  const auto st = server.stats();
  const auto c = sched.counters();
  // Exact accounting including quota rejections: every frame either reached
  // the scheduler or was quota-rejected, and everything submitted resolved.
  EXPECT_EQ(c.submitted, static_cast<std::uint64_t>(ok));
  EXPECT_EQ(st.quota_rejected, static_cast<std::uint64_t>(rejected));
  EXPECT_EQ(st.frames, c.submitted + st.quota_rejected);
  EXPECT_EQ(c.completed + c.failed + c.expired + c.shed + c.rejected,
            c.submitted);
}

// A request frame dribbled onto the socket a few bytes at a time crosses
// many recv() boundaries; the server's incremental decoder reassembles it
// and serves the exact payload.
TEST(NetServing, PartialReadsReassembleAcrossRecvBoundaries) {
  serving::SchedulerConfig cfg;
  cfg.shards = 1;
  serving::ModelRegistry reg;
  reg.add(serving::make_mlp_session("mlp", tiny_mlp(), 4, 7));
  serving::RequestScheduler sched(cfg);
  Server server(reg, sched, ServerConfig{});
  ASSERT_TRUE(server.start().ok());
  const auto mlp = reg.find("mlp");
  const auto in = make_input(*mlp, 11);
  const auto want = run_reference(*mlp, in);

  RequestFrame req;
  req.request_id = 77;
  req.name = "mlp";
  req.payload = in;
  std::vector<std::uint8_t> bytes;
  encode_request(req, &bytes);

  const int fd = raw_connect(server.port());
  ASSERT_GE(fd, 0);
  // 13-byte chunks with pauses: dozens of separate epoll readable events,
  // none aligned with any frame boundary.
  for (std::size_t off = 0; off < bytes.size(); off += 13) {
    const std::size_t n = std::min<std::size_t>(13, bytes.size() - off);
    ASSERT_EQ(::send(fd, bytes.data() + off, n, MSG_NOSIGNAL),
              static_cast<ssize_t>(n));
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }

  ResponseFrame resp;
  ASSERT_TRUE(raw_recv_response(fd, &resp));
  EXPECT_EQ(resp.request_id, 77u);
  ASSERT_EQ(resp.code, WireCode::kOk) << resp.message;
  ASSERT_EQ(resp.payload.size(), want.size());
  EXPECT_EQ(std::memcmp(resp.payload.data(), want.data(),
                        want.size() * sizeof(float)),
            0);
  ::close(fd);
  server.stop();
  sched.shutdown();
}

// Garbage bytes (bad magic) poison the stream: the server answers one
// best-effort protocol-error response, then closes the connection.
TEST(NetServing, ProtocolErrorRespondsThenCloses) {
  serving::SchedulerConfig cfg;
  cfg.shards = 1;
  serving::ModelRegistry reg;
  reg.add(serving::make_mlp_session("mlp", tiny_mlp(), 4, 7));
  serving::RequestScheduler sched(cfg);
  Server server(reg, sched, ServerConfig{});
  ASSERT_TRUE(server.start().ok());

  const int fd = raw_connect(server.port());
  ASSERT_GE(fd, 0);
  std::uint8_t garbage[64];
  std::memset(garbage, 0xAB, sizeof(garbage));
  ASSERT_EQ(::send(fd, garbage, sizeof(garbage), MSG_NOSIGNAL),
            static_cast<ssize_t>(sizeof(garbage)));

  ResponseFrame resp;
  ASSERT_TRUE(raw_recv_response(fd, &resp));
  EXPECT_EQ(resp.request_id, 0u);  // unparseable frame: no id to echo
  EXPECT_EQ(resp.code, WireCode::kInvalidArgument);
  EXPECT_NE(resp.message.find("protocol error"), std::string::npos);
  EXPECT_NE(resp.message.find("bad magic"), std::string::npos);

  // The stream is dead: the next read is EOF.
  std::uint8_t one;
  EXPECT_EQ(::recv(fd, &one, 1, 0), 0);
  ::close(fd);

  server.stop();
  sched.shutdown();
  EXPECT_EQ(server.stats().protocol_errors, 1u);
  EXPECT_EQ(sched.counters().submitted, 0u);
}

// net_write:full chaos forces every send() to hand the kernel one byte — the
// response must still arrive complete and bitwise-correct.
TEST(NetServing, InjectedShortWritesStillDeliverFullResponses) {
  serving::SchedulerConfig cfg;
  cfg.shards = 1;
  serving::ModelRegistry reg;
  reg.add(serving::make_mlp_session("mlp", tiny_mlp(), 4, 7));
  serving::RequestScheduler sched(cfg);
  Server server(reg, sched, ServerConfig{});
  ASSERT_TRUE(server.start().ok());
  const auto mlp = reg.find("mlp");
  const auto in = make_input(*mlp, 21);
  const auto want = run_reference(*mlp, in);

  FaultScope chaos("net_write:full:1.0", 11);
  Client client;
  ASSERT_TRUE(client.connect("127.0.0.1", server.port()).ok());
  RequestFrame req;
  req.request_id = 5;
  req.name = "mlp";
  req.payload = in;
  ResponseFrame resp;
  ASSERT_TRUE(client.call(req, &resp).ok());
  ASSERT_EQ(resp.code, WireCode::kOk) << resp.message;
  ASSERT_EQ(resp.payload.size(), want.size());
  EXPECT_EQ(std::memcmp(resp.payload.data(), want.data(),
                        want.size() * sizeof(float)),
            0);
  EXPECT_GT(fault::injected(fault::Site::kNetWrite), 100u);  // ~1 per byte

  server.stop();
  sched.shutdown();
}

// net_write:fail chaos resets the connection mid-response; the server counts
// the fault, survives, and serves new connections once the chaos is disarmed.
TEST(NetServing, InjectedWriteResetKillsConnectionNotServer) {
  serving::SchedulerConfig cfg;
  cfg.shards = 1;
  serving::ModelRegistry reg;
  reg.add(serving::make_mlp_session("mlp", tiny_mlp(), 4, 7));
  serving::RequestScheduler sched(cfg);
  Server server(reg, sched, ServerConfig{});
  ASSERT_TRUE(server.start().ok());
  const auto mlp = reg.find("mlp");
  const auto in = make_input(*mlp, 31);

  // Armed for the whole test; reconfiguring while the server/dispatcher
  // threads are live is documented harness misuse (the fields race), so the
  // real reset happens in the FaultScope dtor AFTER stop()/shutdown() join
  // them, and the mid-test disarm below uses the atomic SuppressGuard.
  FaultScope chaos("net_write:fail:1.0", 12);
  {
    Client doomed;
    ASSERT_TRUE(doomed.connect("127.0.0.1", server.port()).ok());
    RequestFrame req;
    req.request_id = 6;
    req.name = "mlp";
    req.payload = in;
    ResponseFrame resp;
    const Status st = doomed.call(req, &resp);
    EXPECT_FALSE(st.ok());  // connection reset before the response flushed
    EXPECT_EQ(st.code(), StatusCode::kUnavailable);
  }
  EXPECT_GE(server.stats().write_faults, 1u);

  // Chaos suppressed: the server is intact and a fresh connection serves.
  fault::SuppressGuard quiet;
  Client fresh;
  ASSERT_TRUE(fresh.connect("127.0.0.1", server.port()).ok());
  RequestFrame req;
  req.request_id = 7;
  req.name = "mlp";
  req.payload = in;
  ResponseFrame resp;
  ASSERT_TRUE(fresh.call(req, &resp).ok());
  EXPECT_EQ(resp.code, WireCode::kOk);

  server.stop();
  sched.shutdown();
  // The doomed request still resolved exactly once in the scheduler.
  const auto c = sched.counters();
  EXPECT_EQ(c.submitted, 2u);
  EXPECT_EQ(c.completed + c.failed + c.expired + c.shed + c.rejected,
            c.submitted);
}

// The max_conns cap closes surplus connections at accept; the connection
// inside the cap keeps serving.
TEST(NetServing, MaxConnsCapClosesTheDoor) {
  serving::SchedulerConfig cfg;
  cfg.shards = 1;
  serving::ModelRegistry reg;
  reg.add(serving::make_mlp_session("mlp", tiny_mlp(), 4, 7));
  serving::RequestScheduler sched(cfg);
  ServerConfig net_cfg;
  net_cfg.max_conns = 1;
  Server server(reg, sched, net_cfg);
  ASSERT_TRUE(server.start().ok());
  const auto mlp = reg.find("mlp");

  Client inside;
  ASSERT_TRUE(inside.connect("127.0.0.1", server.port()).ok());
  RequestFrame req;
  req.request_id = 1;
  req.name = "mlp";
  req.payload = make_input(*mlp, 1);
  ResponseFrame resp;
  ASSERT_TRUE(inside.call(req, &resp).ok());  // pins the one slot

  Client outside;
  ASSERT_TRUE(outside.connect("127.0.0.1", server.port()).ok());  // TCP-level
  req.request_id = 2;
  EXPECT_FALSE(outside.call(req, &resp).ok());  // server closed it at accept

  // The admitted connection still serves.
  req.request_id = 3;
  ASSERT_TRUE(inside.call(req, &resp).ok());
  EXPECT_EQ(resp.code, WireCode::kOk);

  server.stop();
  sched.shutdown();
  EXPECT_GE(server.stats().conn_rejected, 1u);
}

// --- hot reload -------------------------------------------------------------

// Registry snapshot semantics: old snapshots stay valid after a reload (in-
// flight work drains against them), kept sessions keep their object
// identity, and the version advances per publish.
TEST(ModelRegistryReload, SnapshotSwapKeepsOldSnapshotAlive) {
  serving::ModelRegistry reg;
  reg.add(serving::make_mlp_session("a", tiny_mlp(), 2, 1));
  reg.add(serving::make_mlp_session("b", tiny_mlp(), 2, 2));
  const auto before = reg.snapshot();
  const auto a_before = reg.find("a");
  const std::uint64_t v_before = reg.version();

  reg.reload([&](const std::vector<std::shared_ptr<serving::Session>>& cur) {
    std::vector<std::shared_ptr<serving::Session>> next;
    for (const auto& s : cur) {
      if (s->name() == "a") next.push_back(s);  // keep a, drop b
    }
    next.push_back(serving::make_mlp_session("c", tiny_mlp(), 2, 3));
    return next;
  });

  EXPECT_EQ(reg.version(), v_before + 1);
  EXPECT_EQ(reg.size(), 2u);
  EXPECT_EQ(reg.find("a").get(), a_before.get());  // identity kept
  EXPECT_EQ(reg.find("b"), nullptr);
  EXPECT_NE(reg.find("c"), nullptr);

  // The pre-reload snapshot is immutable and fully usable: b is still there
  // and still runs (an in-flight batch would drain exactly like this).
  EXPECT_EQ(before->by_name.size(), 2u);
  const auto& b_old = before->by_name.at("b");
  const auto in = make_input(*b_old, 4);
  std::vector<float> out(static_cast<std::size_t>(b_old->output_elems()));
  b_old->run(0, in.data(), out.data());

  EXPECT_THROW(
      reg.reload([](const std::vector<std::shared_ptr<serving::Session>>&) {
        return std::vector<std::shared_ptr<serving::Session>>{nullptr};
      }),
      std::invalid_argument);
  EXPECT_EQ(reg.size(), 2u);  // failed reload left the table unchanged
}

// The acceptance gate: >= 20 reload() swaps of a model under continuous wire
// traffic. Zero transport failures, zero INTERNAL, zero dropped responses;
// every OK payload is bitwise-identical to the reference output of exactly
// one published weight version.
TEST(NetServing, ReloadStormServesEveryVersionBitwiseCorrect) {
  constexpr int kSwaps = 22;
  constexpr int kTrafficThreads = 2;

  serving::SchedulerConfig cfg;
  cfg.max_batch = 4;
  cfg.batch_usecs = 100;
  cfg.shards = 1;
  const int lanes = cfg.max_batch;

  // Reference outputs per weight version for one fixed probe input. Seed s
  // builds version s; the registry starts at version seed 1 and reload v
  // publishes seed v+1.
  std::vector<float> probe;
  std::vector<std::vector<float>> version_want;
  for (int s = 1; s <= kSwaps + 1; ++s) {
    const auto ref = serving::make_mlp_session(
        "ref", tiny_mlp(), /*lanes=*/1, static_cast<std::uint64_t>(s));
    if (probe.empty()) probe = make_input(*ref, 999);
    version_want.push_back(run_reference(*ref, probe));
  }
  // Distinct seeds must give distinct outputs, or "matches some version"
  // would be vacuous.
  ASSERT_NE(std::memcmp(version_want[0].data(), version_want[1].data(),
                        version_want[0].size() * sizeof(float)),
            0);

  serving::ModelRegistry reg;
  reg.add(serving::make_mlp_session("m", tiny_mlp(), lanes, 1));
  serving::RequestScheduler sched(cfg);
  Server server(reg, sched, ServerConfig{});
  ASSERT_TRUE(server.start().ok());

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> ok_count{0};
  std::atomic<int> transport_errors{0};
  std::atomic<int> wrong_status{0};
  std::atomic<int> mismatches{0};
  std::vector<std::thread> traffic;
  for (int t = 0; t < kTrafficThreads; ++t) {
    traffic.emplace_back([&, t] {
      Client client;
      if (!client.connect("127.0.0.1", server.port()).ok()) {
        transport_errors.fetch_add(1);
        return;
      }
      std::uint64_t id = static_cast<std::uint64_t>(t) << 32;
      while (!stop.load(std::memory_order_acquire)) {
        RequestFrame req;
        req.request_id = ++id;
        req.name = "m";
        req.payload = probe;
        ResponseFrame resp;
        if (!client.call(req, &resp).ok()) {
          transport_errors.fetch_add(1);
          return;
        }
        if (resp.code != WireCode::kOk) {
          // ANY non-OK during a clean reload storm is a failure: reloads
          // must be invisible to traffic.
          wrong_status.fetch_add(1);
          continue;
        }
        bool matched = false;
        for (const auto& want : version_want) {
          if (resp.payload.size() == want.size() &&
              std::memcmp(resp.payload.data(), want.data(),
                          want.size() * sizeof(float)) == 0) {
            matched = true;
            break;
          }
        }
        if (!matched) mismatches.fetch_add(1);
        ok_count.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  // Swap storm: each reload replaces "m" with freshly-seeded weights while
  // the traffic threads hammer it.
  for (int v = 0; v < kSwaps; ++v) {
    const std::uint64_t seed = static_cast<std::uint64_t>(v) + 2;
    reg.reload(
        [&](const std::vector<std::shared_ptr<serving::Session>>& cur) {
          std::vector<std::shared_ptr<serving::Session>> next;
          for (const auto& s : cur) {
            if (s->name() != "m") next.push_back(s);
          }
          next.push_back(serving::make_mlp_session("m", tiny_mlp(), lanes,
                                                   seed));
          return next;
        });
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  // Let traffic drain against the final version, then stop.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  stop.store(true, std::memory_order_release);
  for (auto& th : traffic) th.join();

  server.stop();
  sched.shutdown();

  EXPECT_GE(reg.version(), static_cast<std::uint64_t>(kSwaps));
  EXPECT_EQ(transport_errors.load(), 0);
  EXPECT_EQ(wrong_status.load(), 0);  // zero INTERNAL / shed / anything
  EXPECT_EQ(mismatches.load(), 0)
      << "an OK payload matched NO published weight version";
  EXPECT_GT(ok_count.load(), static_cast<std::uint64_t>(kSwaps))
      << "traffic did not actually overlap the swaps";

  // Zero dropped: every admitted request resolved, every resolution OK.
  const auto c = sched.counters();
  EXPECT_EQ(c.submitted, ok_count.load());
  EXPECT_EQ(c.completed, c.submitted);
  EXPECT_EQ(c.failed, 0u);
  EXPECT_EQ(c.expired + c.shed + c.rejected, 0u);
}

// --- health + drain (wire v2) ------------------------------------------------

TEST(WireCodec, HealthFramesRoundTripAndTruncationNeedsMore) {
  HealthFrame probe;
  probe.request_id = 0xABCDEF0123456789ull;
  std::vector<std::uint8_t> req_bytes;
  encode_health_request(probe, &req_bytes);

  HealthFrame probe2;
  std::size_t consumed = 0;
  std::string error;
  ASSERT_EQ(decode_health_request(req_bytes.data(), req_bytes.size(), &probe2,
                                  &consumed, &error),
            DecodeResult::kOk)
      << error;
  EXPECT_EQ(consumed, req_bytes.size());
  EXPECT_EQ(probe2.request_id, probe.request_id);

  HealthResponseFrame h;
  h.request_id = probe.request_id;
  h.draining = true;
  h.submitted = 100;
  h.completed = 90;
  h.failed = 1;
  h.expired = 2;
  h.shed = 3;
  h.rejected = 4;
  ShardHealth s0;
  s0.queue_depth = 17;
  s0.quarantined = true;
  s0.overload_level = 2;
  s0.heartbeat = 0x1111222233334444ull;
  h.shards.push_back(s0);
  h.shards.push_back(ShardHealth{});
  std::vector<std::uint8_t> bytes;
  encode_health_response(h, &bytes);

  // Every strict prefix is a valid partial frame, never an error.
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    HealthResponseFrame partial;
    EXPECT_EQ(decode_health_response(bytes.data(), len, &partial, &consumed,
                                     &error),
              DecodeResult::kNeedMore)
        << "prefix length " << len;
  }

  HealthResponseFrame got;
  ASSERT_EQ(decode_health_response(bytes.data(), bytes.size(), &got, &consumed,
                                   &error),
            DecodeResult::kOk)
      << error;
  EXPECT_EQ(consumed, bytes.size());
  EXPECT_EQ(got.request_id, h.request_id);
  EXPECT_TRUE(got.draining);
  EXPECT_EQ(got.submitted, 100u);
  EXPECT_EQ(got.completed, 90u);
  EXPECT_EQ(got.failed, 1u);
  EXPECT_EQ(got.expired, 2u);
  EXPECT_EQ(got.shed, 3u);
  EXPECT_EQ(got.rejected, 4u);
  ASSERT_EQ(got.shards.size(), 2u);
  EXPECT_EQ(got.shards[0].queue_depth, 17u);
  EXPECT_TRUE(got.shards[0].quarantined);
  EXPECT_EQ(got.shards[0].overload_level, 2);
  EXPECT_EQ(got.shards[0].heartbeat, s0.heartbeat);
  EXPECT_FALSE(got.shards[1].quarantined);
}

// A live server answers health probes with the scheduler's terminal counters
// and one record per shard; the draining flag flips after begin_drain() while
// probes keep being served.
TEST(NetServing, HealthProbeReportsCountersShardsAndDraining) {
  serving::SchedulerConfig cfg;
  cfg.shards = 2;
  serving::ModelRegistry reg;
  reg.add(serving::make_mlp_session("mlp", tiny_mlp(), 4, 7));
  serving::RequestScheduler sched(cfg);
  Server server(reg, sched, ServerConfig{});
  ASSERT_TRUE(server.start().ok());

  Client client;
  ASSERT_TRUE(client.connect("127.0.0.1", server.port()).ok());

  HealthResponseFrame h;
  ASSERT_TRUE(client.health(&h, /*request_id=*/7).ok());
  EXPECT_EQ(h.request_id, 7u);
  EXPECT_FALSE(h.draining);
  ASSERT_EQ(h.shards.size(), 2u);
  EXPECT_EQ(h.submitted, 0u);

  const auto mlp = reg.find("mlp");
  RequestFrame req;
  req.request_id = 1;
  req.name = "mlp";
  req.payload = make_input(*mlp, 3);
  ResponseFrame resp;
  ASSERT_TRUE(client.call(req, &resp).ok());
  ASSERT_EQ(resp.code, WireCode::kOk) << resp.message;

  ASSERT_TRUE(client.health(&h, 8).ok());
  EXPECT_EQ(h.submitted, 1u);
  EXPECT_EQ(h.completed, 1u);
  for (const auto& sh : h.shards) {
    EXPECT_FALSE(sh.quarantined);
    EXPECT_EQ(sh.overload_level, 0);
  }

  // Draining servers still answer probes — that is how an orchestrator
  // watches the flush — with the flag set.
  server.begin_drain();
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  bool saw_draining = false;
  while (std::chrono::steady_clock::now() < deadline) {
    ASSERT_TRUE(client.health(&h, 9).ok());
    if (h.draining) {
      saw_draining = true;
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_TRUE(saw_draining);

  server.stop();
  sched.shutdown();
  EXPECT_GE(server.stats().health_frames, 3u);
}

// The ISSUE drain scenario: begin_drain() under live pipelined mixed-class
// traffic. The listen port is released immediately (a replacement can bind),
// NEW submits answer UNAVAILABLE "draining", and every in-flight request
// still resolves with exactly one terminal status and a whole frame.
TEST(NetServing, DrainUnderLoadFlushesInFlightAndReleasesPort) {
  auto blocker = std::make_shared<BlockingSession>("blocker");
  serving::ModelRegistry reg;
  reg.add(blocker);
  serving::SchedulerConfig cfg;
  cfg.shards = 1;
  cfg.max_batch = 4;
  cfg.batch_usecs = 0;
  serving::RequestScheduler sched(cfg);
  Server server(reg, sched, ServerConfig{});
  ASSERT_TRUE(server.start().ok());
  const int port = server.port();

  Client client;
  ASSERT_TRUE(client.connect("127.0.0.1", port).ok());
  constexpr int kInFlight = 6;
  for (int i = 1; i <= kInFlight; ++i) {
    RequestFrame req;
    req.request_id = static_cast<std::uint64_t>(i);
    req.name = "blocker";
    req.cls = static_cast<std::uint16_t>(i % 2);  // mixed latency/throughput
    req.payload = {1, 2, 3, 4};
    ASSERT_TRUE(client.send_request(req).ok());
  }
  // All six are owned by the scheduler (first batch parked inside run(), the
  // rest pending behind it) before the drain begins.
  ASSERT_TRUE(await_counter(
      sched, &serving::RequestScheduler::Counters::submitted, kInFlight));
  blocker->await_entered();

  server.begin_drain();
  EXPECT_TRUE(server.draining());

  // The listen port is released while in-flight work still flushes: a
  // replacement server can bind it. Poll — the drain hand-off happens on the
  // loop thread.
  int rebind = -1;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (std::chrono::steady_clock::now() < deadline) {
    rebind = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    ASSERT_GE(rebind, 0);
    const int one = 1;
    ::setsockopt(rebind, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    if (::bind(rebind, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) ==
        0) {
      break;
    }
    ::close(rebind);
    rebind = -1;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_GE(rebind, 0) << "listen port was not released during drain";
  if (rebind >= 0) ::close(rebind);

  // A NEW submit on the still-open connection answers UNAVAILABLE
  // "draining" — and because the in-flight batch is parked, that reject is
  // the first response on the stream.
  RequestFrame late;
  late.request_id = 100;
  late.name = "blocker";
  late.payload = {1, 2, 3, 4};
  ASSERT_TRUE(client.send_request(late).ok());
  ResponseFrame resp;
  ASSERT_TRUE(client.recv_response(&resp).ok());
  EXPECT_EQ(resp.request_id, 100u);
  EXPECT_EQ(resp.code, WireCode::kUnavailable);
  EXPECT_NE(resp.message.find("draining"), std::string::npos);

  // Release the parked batch: the drain must now flush every in-flight
  // response — whole frames, exactly one per request — and exit the loop.
  blocker->release();
  std::vector<bool> seen(kInFlight + 1, false);
  for (int i = 0; i < kInFlight; ++i) {
    ASSERT_TRUE(client.recv_response(&resp).ok()) << "response " << i;
    ASSERT_GE(resp.request_id, 1u);
    ASSERT_LE(resp.request_id, static_cast<std::uint64_t>(kInFlight));
    EXPECT_FALSE(seen[static_cast<std::size_t>(resp.request_id)])
        << "duplicate terminal status for request " << resp.request_id;
    seen[static_cast<std::size_t>(resp.request_id)] = true;
    EXPECT_EQ(resp.code, WireCode::kOk) << resp.message;
    ASSERT_EQ(resp.payload.size(), 4u);
    EXPECT_EQ(resp.payload[0], 2.0f);  // in[0] + 1
  }

  server.stop();
  sched.shutdown();
  const auto st = server.stats();
  EXPECT_GE(st.drain_rejected, 1u);
  const auto c = sched.counters();
  EXPECT_EQ(c.submitted, static_cast<std::uint64_t>(kInFlight));
  EXPECT_EQ(c.completed, static_cast<std::uint64_t>(kInFlight));
  EXPECT_EQ(c.completed + c.failed + c.expired + c.shed + c.rejected,
            c.submitted);
}

// --- client hardening ---------------------------------------------------------

// A peer that accepts but never answers can no longer wedge the client:
// SO_RCVTIMEO surfaces as kDeadlineExceeded (which is never retried — the
// caller's clock, not the transport's).
TEST(NetClient, TimeoutOnSilentPeerReturnsDeadlineExceeded) {
  const int lfd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  ASSERT_GE(lfd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = 0;
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  ASSERT_EQ(::bind(lfd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  ASSERT_EQ(::listen(lfd, 8), 0);
  socklen_t alen = sizeof(addr);
  ASSERT_EQ(::getsockname(lfd, reinterpret_cast<sockaddr*>(&addr), &alen), 0);
  const int port = ntohs(addr.sin_port);

  ClientConfig cc;
  cc.timeout_usecs = 50000;  // 50 ms
  cc.max_retries = 3;        // must NOT fire: deadline is not retryable
  Client client(cc);
  ASSERT_TRUE(client.connect("127.0.0.1", port).ok());

  RequestFrame req;
  req.request_id = 1;
  req.name = "nobody";
  req.payload = {1.0f};
  ResponseFrame resp;
  const auto t0 = std::chrono::steady_clock::now();
  const Status st = client.call(req, &resp);
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  EXPECT_EQ(st.code(), StatusCode::kDeadlineExceeded) << st.to_string();
  EXPECT_LT(elapsed, std::chrono::seconds(5));
  EXPECT_EQ(client.retries(), 0u);
  EXPECT_FALSE(client.connected());  // a torn stream is unrecoverable
  ::close(lfd);
}

// conn_accept chaos: the server slams the door on the first two accepted
// connections; call() reconnects and replays the SAME request id until a
// healthy accept goes through, and the request executes exactly once.
TEST(NetClient, RetriesThroughConnAcceptFaultsWithSameRequestId) {
  FaultScope chaos("conn_accept:fail:1.0:2", 17);
  serving::SchedulerConfig cfg;
  cfg.shards = 1;
  serving::ModelRegistry reg;
  reg.add(serving::make_mlp_session("mlp", tiny_mlp(), 4, 7));
  serving::RequestScheduler sched(cfg);
  Server server(reg, sched, ServerConfig{});
  ASSERT_TRUE(server.start().ok());
  const auto mlp = reg.find("mlp");

  ClientConfig cc;
  cc.timeout_usecs = 2000000;
  cc.max_retries = 5;
  cc.backoff_usecs = 500;
  Client client(cc);
  // The TCP handshake completes against the backlog even when the server
  // closes the socket straight after accepting — the failure surfaces on
  // the first round trip, which is what the retry loop covers.
  ASSERT_TRUE(client.connect("127.0.0.1", server.port()).ok());

  RequestFrame req;
  req.request_id = 99;
  req.name = "mlp";
  req.payload = make_input(*mlp, 5);
  ResponseFrame resp;
  const Status st = client.call(req, &resp);
  ASSERT_TRUE(st.ok()) << st.to_string();
  EXPECT_EQ(resp.code, WireCode::kOk) << resp.message;
  EXPECT_EQ(resp.request_id, 99u);
  EXPECT_GE(client.retries(), 1u);
  EXPECT_EQ(fault::injected(fault::Site::kConnAccept), 2u);

  server.stop();
  sched.shutdown();
  EXPECT_GE(server.stats().conn_rejected, 2u);
  // Replays never double-executed: one submit, one completion.
  EXPECT_EQ(sched.counters().submitted, 1u);
  EXPECT_EQ(sched.counters().completed, 1u);
}

// Consecutive transport failures open the circuit breaker; while open,
// call() fails fast without touching the socket.
TEST(NetClient, CircuitBreakerOpensAfterConsecutiveTransportFailures) {
  // Grab a loopback port with nothing listening on it: bind, read it back,
  // close. (Racy in principle, deterministic in practice for a test run.)
  const int tmp = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  ASSERT_GE(tmp, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = 0;
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  ASSERT_EQ(::bind(tmp, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  socklen_t alen = sizeof(addr);
  ASSERT_EQ(::getsockname(tmp, reinterpret_cast<sockaddr*>(&addr), &alen), 0);
  const int dead_port = ntohs(addr.sin_port);
  ::close(tmp);

  ClientConfig cc;
  cc.breaker_fails = 2;
  cc.breaker_cooldown_usecs = 60000000;  // 60 s: stays open for the test
  Client client(cc);
  EXPECT_FALSE(client.connect("127.0.0.1", dead_port).ok());
  EXPECT_FALSE(client.breaker_open());  // one failure: below the threshold
  EXPECT_FALSE(client.connect("127.0.0.1", dead_port).ok());
  EXPECT_TRUE(client.breaker_open());
  EXPECT_EQ(client.breaker_trips(), 1u);

  RequestFrame req;
  req.request_id = 1;
  req.name = "x";
  req.payload = {1.0f};
  ResponseFrame resp;
  const auto t0 = std::chrono::steady_clock::now();
  const Status st = client.call(req, &resp);
  EXPECT_EQ(st.code(), StatusCode::kUnavailable);
  EXPECT_NE(st.message().find("circuit breaker open"), std::string::npos)
      << st.to_string();
  // Fail-fast means no connect attempt, no socket timeout: microseconds,
  // bounded loosely here.
  EXPECT_LT(std::chrono::steady_clock::now() - t0, std::chrono::seconds(1));
  EXPECT_EQ(client.breaker_trips(), 1u);  // an open breaker does not re-trip
}

// --- bounded quota map --------------------------------------------------------

// At the max_tenants cap the LRU bucket is evicted — preferring one whose
// idle accrual has refilled it (lossless: its tenant returns to a fresh full
// bucket, the exact state it was evicted in). Synthetic time points make the
// scan deterministic.
TEST(TenantQuota, BoundedMapEvictsLruIdleFullBucketFirst) {
  TenantQuota q(/*qps=*/1000.0, /*burst=*/1.0, /*max_tenants=*/4);
  const auto t0 = std::chrono::steady_clock::now();
  for (std::uint64_t t = 1; t <= 4; ++t) {
    EXPECT_TRUE(q.admit(t, t0));
  }
  EXPECT_EQ(q.tracked_tenants(), 4u);
  EXPECT_EQ(q.evicted(), 0u);

  // One second later every bucket has refilled: the LRU tail (tenant 1) is
  // idle-full and is the lossless victim.
  const auto t1 = t0 + std::chrono::seconds(1);
  EXPECT_TRUE(q.admit(5, t1));
  EXPECT_EQ(q.evicted(), 1u);
  EXPECT_EQ(q.tracked_tenants(), 4u);

  // The evicted tenant returns to a fresh full bucket — admitted exactly as
  // if the bucket had never been dropped (and evicting for it keeps the map
  // at the cap).
  EXPECT_TRUE(q.admit(1, t1));
  EXPECT_EQ(q.evicted(), 2u);
  EXPECT_EQ(q.tracked_tenants(), 4u);

  // With zero idle time none of the scanned buckets is full (every token
  // was just spent): the absolute LRU tail is taken instead — the map stays
  // bounded no matter what.
  TenantQuota cold(/*qps=*/1000.0, /*burst=*/1.0, /*max_tenants=*/2);
  EXPECT_TRUE(cold.admit(1, t0));
  EXPECT_TRUE(cold.admit(2, t0));
  EXPECT_TRUE(cold.admit(3, t0));
  EXPECT_EQ(cold.evicted(), 1u);
  EXPECT_EQ(cold.tracked_tenants(), 2u);
}

}  // namespace
}  // namespace plt::net
