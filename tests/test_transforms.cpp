#include <gtest/gtest.h>

#include "test_utils.hpp"
#include "tpp/transforms.hpp"

namespace plt::tpp {
namespace {

using plt::test::random_vec;
using plt::test::to_bf16;

TEST(Transpose, SquareAndRectangular) {
  for (auto [rows, cols] : {std::pair<std::int64_t, std::int64_t>{4, 4},
                            {3, 7}, {1, 9}, {8, 1}}) {
    auto in = random_vec(static_cast<std::size_t>(rows * cols), 1);
    std::vector<float> out(in.size());
    transpose_2d(in.data(), out.data(), rows, cols, rows, cols);
    for (std::int64_t j = 0; j < cols; ++j)
      for (std::int64_t i = 0; i < rows; ++i)
        EXPECT_EQ(out[static_cast<std::size_t>(j + i * cols)],
                  in[static_cast<std::size_t>(i + j * rows)]);
  }
}

TEST(Transpose, DoubleTransposeIsIdentity) {
  const std::int64_t rows = 5, cols = 11;
  auto in = random_vec(static_cast<std::size_t>(rows * cols), 2);
  std::vector<float> t(in.size()), back(in.size());
  transpose_2d(in.data(), t.data(), rows, cols, rows, cols);
  transpose_2d(t.data(), back.data(), cols, rows, cols, rows);
  EXPECT_EQ(back, in);
}

class VnniPackP : public ::testing::TestWithParam<std::pair<std::int64_t, std::int64_t>> {};

TEST_P(VnniPackP, PackUnpackRoundTrip) {
  const auto [m, k] = GetParam();
  auto in = to_bf16(random_vec(static_cast<std::size_t>(m * k), 3));
  std::vector<bf16> packed(static_cast<std::size_t>(vnni2_elems(m, k)));
  std::vector<bf16> back(in.size());
  vnni2_pack(in.data(), packed.data(), m, k, m);
  vnni2_unpack(packed.data(), back.data(), m, k, m);
  for (std::size_t i = 0; i < in.size(); ++i) EXPECT_EQ(back[i], in[i]) << i;
}

TEST_P(VnniPackP, PackedLayoutIsPairMajor) {
  const auto [m, k] = GetParam();
  auto in = to_bf16(random_vec(static_cast<std::size_t>(m * k), 4));
  std::vector<bf16> packed(static_cast<std::size_t>(vnni2_elems(m, k)));
  vnni2_pack(in.data(), packed.data(), m, k, m);
  for (std::int64_t p = 0; p < (k + 1) / 2; ++p) {
    for (std::int64_t i = 0; i < m; ++i) {
      EXPECT_EQ(packed[static_cast<std::size_t>((p * m + i) * 2)],
                in[static_cast<std::size_t>(i + 2 * p * m)]);
      if (2 * p + 1 < k) {
        EXPECT_EQ(packed[static_cast<std::size_t>((p * m + i) * 2 + 1)],
                  in[static_cast<std::size_t>(i + (2 * p + 1) * m)]);
      } else {
        EXPECT_EQ(packed[static_cast<std::size_t>((p * m + i) * 2 + 1)].bits, 0);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, VnniPackP,
                         ::testing::Values(std::pair<std::int64_t, std::int64_t>{4, 4},
                                           std::pair<std::int64_t, std::int64_t>{16, 32},
                                           std::pair<std::int64_t, std::int64_t>{7, 5},
                                           std::pair<std::int64_t, std::int64_t>{1, 1},
                                           std::pair<std::int64_t, std::int64_t>{3, 9}));

TEST(BlockedLayout, BlockUnblockRoundTrip) {
  const std::int64_t M = 12, K = 8, bm = 4, bk = 2;
  auto flat = random_vec(static_cast<std::size_t>(M * K), 5);
  std::vector<float> blocked(flat.size()), back(flat.size());
  block_a_matrix(flat.data(), blocked.data(), M, K, bm, bk);
  unblock_a_matrix(blocked.data(), back.data(), M, K, bm, bk);
  EXPECT_EQ(back, flat);
}

TEST(BlockedLayout, BlockElementPlacement) {
  // A[Mb][Kb][bk][bm]: element (m, k) of the flat matrix lives at block
  // (m/bm, k/bk), inner offset (k%bk)*bm + m%bm.
  const std::int64_t M = 8, K = 6, bm = 4, bk = 3;
  std::vector<float> flat(static_cast<std::size_t>(M * K));
  for (std::size_t i = 0; i < flat.size(); ++i) flat[i] = static_cast<float>(i);
  std::vector<float> blocked(flat.size());
  block_a_matrix(flat.data(), blocked.data(), M, K, bm, bk);
  const std::int64_t Kb = K / bk;
  for (std::int64_t mm = 0; mm < M; ++mm)
    for (std::int64_t kk = 0; kk < K; ++kk) {
      const std::int64_t idx =
          (((mm / bm) * Kb + kk / bk) * bk + kk % bk) * bm + mm % bm;
      EXPECT_EQ(blocked[static_cast<std::size_t>(idx)],
                flat[static_cast<std::size_t>(mm + kk * M)]);
    }
}

}  // namespace
}  // namespace plt::tpp
