#include <gtest/gtest.h>

#include "parlooper/loop_spec.hpp"

namespace plt::parlooper {
namespace {

std::vector<LoopSpecs> gemm_like_loops() {
  // a: 0..8 step 1 (blockable by {4, 2}); b: 0..16 step 2 ({8, 4});
  // c: 0..12 step 3 ({6}).
  return {LoopSpecs{0, 8, 1, {4, 2}}, LoopSpecs{0, 16, 2, {8, 4}},
          LoopSpecs{0, 12, 3, {6}}};
}

TEST(LoopSpecParse, SimpleOrder) {
  ParsedSpec p = parse_loop_spec("abc", 3);
  ASSERT_EQ(p.terms.size(), 3u);
  EXPECT_EQ(p.terms[0].logical, 0);
  EXPECT_EQ(p.terms[1].logical, 1);
  EXPECT_EQ(p.terms[2].logical, 2);
  for (const auto& t : p.terms) {
    EXPECT_FALSE(t.parallel);
    EXPECT_EQ(t.occurrence, 0);
  }
}

TEST(LoopSpecParse, BlockingOccurrences) {
  ParsedSpec p = parse_loop_spec("bcabcb", 3);
  ASSERT_EQ(p.terms.size(), 6u);
  // b appears 3x => blocked twice; occurrences are numbered in order.
  EXPECT_EQ(p.terms[0].logical, 1);
  EXPECT_EQ(p.terms[0].occurrence, 0);
  EXPECT_EQ(p.terms[3].logical, 1);
  EXPECT_EQ(p.terms[3].occurrence, 1);
  EXPECT_EQ(p.terms[5].logical, 1);
  EXPECT_EQ(p.terms[5].occurrence, 2);
}

TEST(LoopSpecParse, UppercaseMarksParallel) {
  ParsedSpec p = parse_loop_spec("bcaBCb", 3);
  EXPECT_FALSE(p.terms[0].parallel);
  EXPECT_TRUE(p.terms[3].parallel);
  EXPECT_TRUE(p.terms[4].parallel);
  EXPECT_FALSE(p.terms[5].parallel);
}

TEST(LoopSpecParse, GridAnnotations) {
  ParsedSpec p = parse_loop_spec("bC{R:16}aB{C:4}cb", 3);
  EXPECT_TRUE(p.explicit_grid);
  ASSERT_EQ(p.terms.size(), 6u);
  EXPECT_EQ(p.terms[1].grid, GridAxis::kRow);
  EXPECT_EQ(p.terms[1].grid_ways, 16);
  EXPECT_EQ(p.terms[3].grid, GridAxis::kCol);
  EXPECT_EQ(p.terms[3].grid_ways, 4);
}

TEST(LoopSpecParse, DirectiveSuffix) {
  ParsedSpec p = parse_loop_spec("bcaBCb @ schedule(dynamic,1)", 3);
  EXPECT_EQ(p.omp_suffix, "schedule(dynamic,1)");
  EXPECT_TRUE(p.dynamic_schedule);
  EXPECT_EQ(p.dynamic_chunk, 1);

  ParsedSpec p2 = parse_loop_spec("aBc @ schedule(dynamic,8)", 3);
  EXPECT_EQ(p2.dynamic_chunk, 8);

  ParsedSpec p3 = parse_loop_spec("aBc @ schedule(static)", 3);
  EXPECT_FALSE(p3.dynamic_schedule);
}

TEST(LoopSpecParse, BarrierMarksPrecedingTerm) {
  ParsedSpec p = parse_loop_spec("a|Bc", 3);
  EXPECT_TRUE(p.terms[0].barrier_after);
  EXPECT_FALSE(p.terms[1].barrier_after);
}

TEST(LoopSpecParse, Errors) {
  EXPECT_THROW(parse_loop_spec("", 3), std::invalid_argument);
  EXPECT_THROW(parse_loop_spec("abd", 3), std::invalid_argument);  // d > c
  EXPECT_THROW(parse_loop_spec("a{R:4}bc", 3), std::invalid_argument);  // grid on lowercase
  EXPECT_THROW(parse_loop_spec("A{R:}bc", 3), std::invalid_argument);
  EXPECT_THROW(parse_loop_spec("A{X:4}bc", 3), std::invalid_argument);
  EXPECT_THROW(parse_loop_spec("A{R:4bc", 3), std::invalid_argument);   // unterminated
  EXPECT_THROW(parse_loop_spec("|abc", 3), std::invalid_argument);
  EXPECT_THROW(parse_loop_spec("a?c", 3), std::invalid_argument);
  EXPECT_THROW(parse_loop_spec("abc", 0), std::invalid_argument);
  EXPECT_THROW(parse_loop_spec("abc", 27), std::invalid_argument);
}

TEST(LoopSpecValidate, AcceptsWellFormed) {
  auto loops = gemm_like_loops();
  for (const char* s : {"abc", "bca", "aBC", "bcaBCb", "cabCBa"}) {
    ParsedSpec p = parse_loop_spec(s, 3);
    EXPECT_EQ(validate_spec(p, loops), "") << s;
  }
}

TEST(LoopSpecValidate, MissingLoopRejected) {
  auto loops = gemm_like_loops();
  ParsedSpec p = parse_loop_spec("ab", 3);
  EXPECT_NE(validate_spec(p, loops), "");
}

TEST(LoopSpecValidate, TooFewBlockingSizesRejected) {
  auto loops = gemm_like_loops();
  // c has 1 blocking size; "ccc" needs 2.
  ParsedSpec p = parse_loop_spec("abccc", 3);
  EXPECT_NE(validate_spec(p, loops), "");
}

TEST(LoopSpecValidate, NonPerfectNestingRejected) {
  // b trip 16, block 8; blocking 5 does not divide 16.
  std::vector<LoopSpecs> loops = {LoopSpecs{0, 8, 1, {}},
                                  LoopSpecs{0, 16, 2, {5}},
                                  LoopSpecs{0, 12, 3, {}}};
  ParsedSpec p = parse_loop_spec("abbc", 3);
  EXPECT_NE(validate_spec(p, loops), "");
}

TEST(LoopSpecValidate, NonConsecutiveParMode1Rejected) {
  auto loops = gemm_like_loops();
  ParsedSpec p = parse_loop_spec("AbC", 3);
  EXPECT_NE(validate_spec(p, loops), "");
}

TEST(LoopSpecValidate, MixedParModesRejected) {
  auto loops = gemm_like_loops();
  ParsedSpec p = parse_loop_spec("A{R:2}Bc", 3);
  EXPECT_NE(validate_spec(p, loops), "");
}

TEST(LoopSpecValidate, DuplicateGridAxisRejected) {
  auto loops = gemm_like_loops();
  ParsedSpec p = parse_loop_spec("A{R:2}B{R:2}c", 3);
  EXPECT_NE(validate_spec(p, loops), "");
}

TEST(LoopSpecValidate, BarrierBelowParallelRejected) {
  auto loops = gemm_like_loops();
  ParsedSpec p = parse_loop_spec("Abc|", 3);
  EXPECT_NE(validate_spec(p, loops), "");
}

TEST(LoopSpecTermStep, BlockingListConsumedInOrder) {
  auto loops = gemm_like_loops();
  ParsedSpec p = parse_loop_spec("bbbac", 3);  // b blocked twice
  EXPECT_EQ(term_step(p, 0, loops), 8);   // first blocking size
  EXPECT_EQ(term_step(p, 1, loops), 4);   // second blocking size
  EXPECT_EQ(term_step(p, 2, loops), 2);   // base step
  EXPECT_EQ(term_step(p, 3, loops), 1);   // a base step
}

TEST(LoopSpecStructuralKey, DiscriminatesStructureNotBounds) {
  ParsedSpec p1 = parse_loop_spec("aBc", 3);
  ParsedSpec p2 = parse_loop_spec("aBc", 3);
  ParsedSpec p3 = parse_loop_spec("abC", 3);
  EXPECT_EQ(structural_key(p1, 3), structural_key(p2, 3));
  EXPECT_NE(structural_key(p1, 3), structural_key(p3, 3));
  ParsedSpec p4 = parse_loop_spec("aBc @ schedule(dynamic,1)", 3);
  EXPECT_NE(structural_key(p1, 3), structural_key(p4, 3));
}

}  // namespace
}  // namespace plt::parlooper
