#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "test_utils.hpp"
#include "tpp/equations.hpp"

namespace plt::tpp {
namespace {

using plt::test::random_vec;

TEST(Softmax, RowsSumToOneAndPreserveOrder) {
  const std::int64_t rows = 8, cols = 16;
  auto in = random_vec(static_cast<std::size_t>(rows * cols), 1, -4.0f, 4.0f);
  std::vector<float> out(in.size());
  softmax_rows(in.data(), out.data(), rows, cols, cols, cols);
  for (std::int64_t r = 0; r < rows; ++r) {
    float sum = 0.0f;
    for (std::int64_t c = 0; c < cols; ++c) {
      const float v = out[static_cast<std::size_t>(r * cols + c)];
      EXPECT_GT(v, 0.0f);
      sum += v;
    }
    EXPECT_NEAR(sum, 1.0f, 1e-5f);
    // Monotone: larger logit => larger probability.
    for (std::int64_t c = 1; c < cols; ++c) {
      const auto i0 = static_cast<std::size_t>(r * cols + c - 1);
      const auto i1 = static_cast<std::size_t>(r * cols + c);
      if (in[i0] < in[i1]) EXPECT_LT(out[i0], out[i1]);
    }
  }
}

TEST(Softmax, StableUnderLargeLogits) {
  std::vector<float> in = {1000.0f, 1001.0f, 999.0f};
  std::vector<float> out(3);
  softmax_rows(in.data(), out.data(), 1, 3, 3, 3);
  EXPECT_FALSE(std::isnan(out[0]));
  EXPECT_NEAR(out[0] + out[1] + out[2], 1.0f, 1e-5f);
  EXPECT_GT(out[1], out[0]);
}

TEST(Softmax, ScaleMaskRespectsValidLength) {
  const std::int64_t rows = 2, cols = 8;
  auto in = random_vec(static_cast<std::size_t>(rows * cols), 2);
  std::vector<float> out(in.size());
  const std::int32_t valid[2] = {3, 8};
  softmax_scale_mask_rows(in.data(), out.data(), rows, cols, cols, cols, 0.5f,
                          valid);
  for (std::int64_t c = 3; c < cols; ++c)
    EXPECT_EQ(out[static_cast<std::size_t>(c)], 0.0f);
  float sum0 = 0.0f;
  for (std::int64_t c = 0; c < 3; ++c) sum0 += out[static_cast<std::size_t>(c)];
  EXPECT_NEAR(sum0, 1.0f, 1e-5f);
}

TEST(Softmax, BackwardMatchesFiniteDifference) {
  const std::int64_t cols = 6;
  auto x = random_vec(static_cast<std::size_t>(cols), 3);
  std::vector<float> y(x.size());
  softmax_rows(x.data(), y.data(), 1, cols, cols, cols);
  // Loss = sum(w * y); dL/dx via softmax_rows_bwd vs finite differences.
  auto w = random_vec(static_cast<std::size_t>(cols), 4);
  std::vector<float> grad_in(x.size());
  softmax_rows_bwd(w.data(), y.data(), grad_in.data(), 1, cols, cols);
  const float h = 1e-3f;
  for (std::int64_t i = 0; i < cols; ++i) {
    auto xp = x, xm = x;
    xp[static_cast<std::size_t>(i)] += h;
    xm[static_cast<std::size_t>(i)] -= h;
    std::vector<float> yp(x.size()), ym(x.size());
    softmax_rows(xp.data(), yp.data(), 1, cols, cols, cols);
    softmax_rows(xm.data(), ym.data(), 1, cols, cols, cols);
    float lp = 0.0f, lm = 0.0f;
    for (std::size_t c = 0; c < x.size(); ++c) {
      lp += w[c] * yp[c];
      lm += w[c] * ym[c];
    }
    EXPECT_NEAR(grad_in[static_cast<std::size_t>(i)], (lp - lm) / (2 * h), 5e-3f);
  }
}

TEST(LayerNorm, NormalizesRows) {
  const std::int64_t rows = 4, cols = 32;
  auto in = random_vec(static_cast<std::size_t>(rows * cols), 5, -3.0f, 7.0f);
  std::vector<float> gamma(static_cast<std::size_t>(cols), 1.0f);
  std::vector<float> beta(static_cast<std::size_t>(cols), 0.0f);
  std::vector<float> mean(static_cast<std::size_t>(rows)), var(mean.size());
  std::vector<float> out(in.size());
  LayerNormFwd ln{rows, cols, 1e-5f};
  ln(in.data(), gamma.data(), beta.data(), mean.data(), var.data(), out.data());
  for (std::int64_t r = 0; r < rows; ++r) {
    float mu = 0.0f, v = 0.0f;
    for (std::int64_t c = 0; c < cols; ++c)
      mu += out[static_cast<std::size_t>(r * cols + c)];
    mu /= static_cast<float>(cols);
    for (std::int64_t c = 0; c < cols; ++c) {
      const float d = out[static_cast<std::size_t>(r * cols + c)] - mu;
      v += d * d;
    }
    v /= static_cast<float>(cols);
    EXPECT_NEAR(mu, 0.0f, 1e-4f);
    EXPECT_NEAR(v, 1.0f, 1e-2f);
  }
}

TEST(LayerNorm, GammaBetaApplied) {
  const std::int64_t rows = 2, cols = 8;
  auto in = random_vec(static_cast<std::size_t>(rows * cols), 6);
  std::vector<float> gamma(static_cast<std::size_t>(cols)), beta(gamma.size());
  for (std::size_t c = 0; c < gamma.size(); ++c) {
    gamma[c] = 2.0f;
    beta[c] = 1.0f;
  }
  std::vector<float> mean(2), var(2), out(in.size());
  LayerNormFwd ln{rows, cols, 1e-5f};
  ln(in.data(), gamma.data(), beta.data(), mean.data(), var.data(), out.data());
  for (std::int64_t r = 0; r < rows; ++r) {
    float mu = 0.0f;
    for (std::int64_t c = 0; c < cols; ++c)
      mu += out[static_cast<std::size_t>(r * cols + c)];
    mu /= static_cast<float>(cols);
    EXPECT_NEAR(mu, 1.0f, 1e-4f);  // beta shifts the mean
  }
}

TEST(LayerNorm, BackwardMatchesFiniteDifference) {
  const std::int64_t rows = 1, cols = 8;
  auto x = random_vec(static_cast<std::size_t>(cols), 7);
  auto gamma = random_vec(static_cast<std::size_t>(cols), 8, 0.5f, 1.5f);
  auto beta = random_vec(static_cast<std::size_t>(cols), 9);
  auto w = random_vec(static_cast<std::size_t>(cols), 10);  // loss weights

  const auto loss = [&](const std::vector<float>& xin) {
    std::vector<float> mean(1), var(1), out(xin.size());
    LayerNormFwd ln{rows, cols, 1e-5f};
    ln(xin.data(), gamma.data(), beta.data(), mean.data(), var.data(),
       out.data());
    float l = 0.0f;
    for (std::size_t c = 0; c < out.size(); ++c) l += w[c] * out[c];
    return l;
  };

  std::vector<float> mean(1), var(1), out(x.size());
  LayerNormFwd ln{rows, cols, 1e-5f};
  ln(x.data(), gamma.data(), beta.data(), mean.data(), var.data(), out.data());
  std::vector<float> gi(x.size()), dgamma(x.size(), 0.0f), dbeta(x.size(), 0.0f);
  LayerNormBwd lnb{rows, cols};
  lnb(w.data(), x.data(), gamma.data(), mean.data(), var.data(), gi.data(),
      dgamma.data(), dbeta.data());

  const float h = 1e-3f;
  for (std::size_t i = 0; i < x.size(); ++i) {
    auto xp = x, xm = x;
    xp[i] += h;
    xm[i] -= h;
    EXPECT_NEAR(gi[i], (loss(xp) - loss(xm)) / (2 * h), 2e-2f) << i;
  }
  for (std::size_t c = 0; c < x.size(); ++c) EXPECT_FLOAT_EQ(dbeta[c], w[c]);
}

TEST(Dropout, MaskFrequencyAndScaling) {
  const std::int64_t rows = 64, cols = 64;
  const float p = 0.3f;
  auto in = random_vec(static_cast<std::size_t>(rows * cols), 11, 0.5f, 1.5f);
  std::vector<float> out(in.size());
  std::vector<std::uint8_t> mask(in.size());
  Xoshiro256 rng(123);
  DropoutFwd fwd{rows, cols, p};
  fwd(in.data(), rng, out.data(), mask.data());
  std::size_t kept = 0;
  for (std::size_t i = 0; i < in.size(); ++i) {
    if (mask[i]) {
      ++kept;
      EXPECT_FLOAT_EQ(out[i], in[i] / (1.0f - p));
    } else {
      EXPECT_EQ(out[i], 0.0f);
    }
  }
  const double frac = static_cast<double>(kept) / static_cast<double>(in.size());
  EXPECT_NEAR(frac, 1.0 - p, 0.03);
}

TEST(Dropout, BackwardUsesSavedMask) {
  const std::int64_t rows = 4, cols = 8;
  const float p = 0.5f;
  auto grad = random_vec(static_cast<std::size_t>(rows * cols), 12);
  std::vector<std::uint8_t> mask(grad.size());
  for (std::size_t i = 0; i < mask.size(); ++i) mask[i] = i % 3 == 0 ? 1 : 0;
  std::vector<float> gi(grad.size());
  DropoutBwd bwd{rows, cols, p};
  bwd(grad.data(), mask.data(), gi.data());
  for (std::size_t i = 0; i < grad.size(); ++i)
    EXPECT_FLOAT_EQ(gi[i], mask[i] ? grad[i] * 2.0f : 0.0f);
}

TEST(Dropout, ZeroProbabilityIsIdentity) {
  auto in = random_vec(32, 13);
  std::vector<float> out(in.size());
  std::vector<std::uint8_t> mask(in.size());
  Xoshiro256 rng(1);
  DropoutFwd fwd{4, 8, 0.0f};
  fwd(in.data(), rng, out.data(), mask.data());
  EXPECT_EQ(out, in);
}

}  // namespace
}  // namespace plt::tpp
