// Shared test helpers: naive references and tolerance-aware comparisons.
#pragma once

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "common/bf16.hpp"
#include "common/rng.hpp"

namespace plt::test {

// Naive col-major GEMM: C(m x n) = beta * C + A(m x k) * B(k x n).
inline void naive_gemm(const float* a, const float* b, float* c,
                       std::int64_t m, std::int64_t n, std::int64_t k,
                       std::int64_t lda, std::int64_t ldb, std::int64_t ldc,
                       float beta) {
  for (std::int64_t j = 0; j < n; ++j) {
    for (std::int64_t i = 0; i < m; ++i) {
      double sum = beta == 0.0f ? 0.0 : static_cast<double>(c[i + j * ldc]);
      for (std::int64_t kk = 0; kk < k; ++kk) {
        sum += static_cast<double>(a[i + kk * lda]) *
               static_cast<double>(b[kk + j * ldb]);
      }
      c[i + j * ldc] = static_cast<float>(sum);
    }
  }
}

// Relative-error comparison scaled by the reduction length.
inline void expect_allclose(const float* got, const float* want,
                            std::size_t n, float rel_tol,
                            const char* what = "") {
  for (std::size_t i = 0; i < n; ++i) {
    const float scale = std::max(1.0f, std::fabs(want[i]));
    ASSERT_NEAR(got[i], want[i], rel_tol * scale)
        << what << " mismatch at flat index " << i;
  }
}

inline std::vector<float> random_vec(std::size_t n, std::uint64_t seed,
                                     float lo = -1.0f, float hi = 1.0f) {
  std::vector<float> v(n);
  Xoshiro256 rng(seed);
  fill_uniform(v.data(), n, rng, lo, hi);
  return v;
}

inline std::vector<bf16> to_bf16(const std::vector<float>& v) {
  std::vector<bf16> out(v.size());
  for (std::size_t i = 0; i < v.size(); ++i) out[i] = bf16::from_f32(v[i]);
  return out;
}

inline std::vector<float> to_f32(const std::vector<bf16>& v) {
  std::vector<float> out(v.size());
  for (std::size_t i = 0; i < v.size(); ++i) out[i] = v[i].to_f32();
  return out;
}

}  // namespace plt::test
