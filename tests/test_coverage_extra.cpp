// Breadth coverage: the corners the main suites don't reach — 3D explicit
// thread grids, bf16 address/offset BRGEMM variants, dropout-enabled BERT
// training, embeddings, single-token FC paths, whitespace-tolerant specs and
// the JIT source generator for grid loops.
#include <gtest/gtest.h>

#include <map>
#include <mutex>
#include <vector>

#include "dl/bert.hpp"
#include "dl/llm.hpp"
#include "parlooper/jit_backend.hpp"
#include "parlooper/threaded_loop.hpp"
#include "test_utils.hpp"
#include "common/timer.hpp"
#include "tpp/brgemm.hpp"
#include "tpp/transforms.hpp"

namespace plt {
namespace {

using plt::test::expect_allclose;
using plt::test::random_vec;
using plt::test::to_bf16;

// ---------- PAR-MODE 2: full 3D grid ----------

TEST(ThreeDGrid, CoversEveryIterationOnce) {
  std::vector<parlooper::LoopSpecs> loops = {parlooper::LoopSpecs{0, 8, 1},
                                             parlooper::LoopSpecs{0, 6, 1},
                                             parlooper::LoopSpecs{0, 4, 1}};
  parlooper::LoopNest nest(loops, "A{R:4}B{C:3}C{L:2}",
                           parlooper::Backend::kInterpreter);
  std::mutex mu;
  std::map<std::vector<std::int64_t>, int> visits;
  nest([&](const std::int64_t* ind) {
    std::lock_guard<std::mutex> lock(mu);
    ++visits[{ind[0], ind[1], ind[2]}];
  });
  EXPECT_EQ(visits.size(), 8u * 6u * 4u);
  for (const auto& [k, v] : visits) EXPECT_EQ(v, 1);
}

TEST(ThreeDGrid, JitSourceEmitsCellLoop) {
  std::vector<parlooper::LoopSpecs> loops = {parlooper::LoopSpecs{0, 8, 1},
                                             parlooper::LoopSpecs{0, 6, 1}};
  parlooper::LoopNestPlan plan(loops, "A{R:4}B{C:2}");
  const std::string src = parlooper::JitLoop::generate_source(plan);
  EXPECT_NE(src.find("plt_cell"), std::string::npos);
  EXPECT_NE(src.find("plt_coord"), std::string::npos);
}

TEST(LoopSpec, WhitespaceTolerated) {
  parlooper::ParsedSpec p = parlooper::parse_loop_spec("a B c", 3);
  EXPECT_EQ(p.terms.size(), 3u);
  EXPECT_TRUE(p.terms[1].parallel);
}

// ---------- bf16 BRGEMM address/offset variants ----------

TEST(BrgemmBf16, AddressVariantMatchesStride) {
  const std::int64_t m = 16, n = 8, k = 8, count = 3;
  const std::int64_t a_blk = tpp::vnni2_elems(m, k);
  auto af = random_vec(static_cast<std::size_t>(m * k * count), 1);
  auto bfv = random_vec(static_cast<std::size_t>(k * n * count), 2);
  std::vector<bf16> a(static_cast<std::size_t>(a_blk * count));
  auto a16 = to_bf16(af);
  for (std::int64_t i = 0; i < count; ++i)
    tpp::vnni2_pack(a16.data() + i * m * k, a.data() + i * a_blk, m, k, m);
  auto b16 = to_bf16(bfv);

  std::vector<float> want(static_cast<std::size_t>(m * n), 0.0f);
  tpp::BrgemmTPP stride(m, n, k, a_blk, k * n, 0.0f, DType::BF16, DType::BF16,
                        DType::F32, tpp::ALayout::kVnni2);
  stride(a.data(), b16.data(), want.data(), count);

  std::vector<const void*> ap, bp;
  std::vector<std::int64_t> oa, ob;
  for (std::int64_t i = 0; i < count; ++i) {
    ap.push_back(a.data() + i * a_blk);
    bp.push_back(b16.data() + i * k * n);
    oa.push_back(i * a_blk);
    ob.push_back(i * k * n);
  }
  std::vector<float> got(want.size(), 0.0f);
  tpp::BrgemmTPP addr(tpp::BrgemmDesc{m, n, k, 0, 0, 0, DType::BF16,
                                      DType::BF16, DType::F32, 0.0f,
                                      tpp::BrgemmVariant::kAddress,
                                      tpp::ALayout::kVnni2, 0, 0});
  addr.run_address(ap.data(), bp.data(), got.data(), count);
  expect_allclose(got.data(), want.data(), got.size(), 1e-6f, "bf16 addr");

  std::fill(got.begin(), got.end(), 0.0f);
  tpp::BrgemmTPP offs(tpp::BrgemmDesc{m, n, k, 0, 0, 0, DType::BF16,
                                      DType::BF16, DType::F32, 0.0f,
                                      tpp::BrgemmVariant::kOffset,
                                      tpp::ALayout::kVnni2, 0, 0});
  offs.run_offset(a.data(), b16.data(), got.data(), oa.data(), ob.data(),
                  count);
  expect_allclose(got.data(), want.data(), got.size(), 1e-6f, "bf16 offs");
}

// ---------- DL corners ----------

TEST(BertWithDropout, TrainingStepRunsAndMasksConsistently) {
  dl::BertConfig cfg;
  cfg.hidden = 32;
  cfg.heads = 2;
  cfg.intermediate = 64;
  cfg.layers = 1;
  cfg.seq_len = 8;
  cfg.bm = cfg.bn = cfg.bk = 8;
  cfg.dropout_p = 0.2f;
  Xoshiro256 rng(3);
  dl::BertEncoder model(cfg, rng);
  auto x = random_vec(static_cast<std::size_t>(cfg.tokens() * cfg.hidden), 4);
  auto target = random_vec(x.size(), 5, -0.5f, 0.5f);
  const double l = model.training_step(x.data(), target.data(), 0.1f, rng);
  EXPECT_TRUE(std::isfinite(l));
  EXPECT_GT(l, 0.0);
}

TEST(BertEmbeddings, LookupIsNormalizedPerToken) {
  dl::BertConfig cfg;
  cfg.hidden = 32;
  cfg.heads = 2;
  cfg.intermediate = 64;
  cfg.seq_len = 8;
  Xoshiro256 rng(7);
  dl::BertEmbeddings emb(cfg, /*vocab=*/64, rng);
  std::vector<std::int32_t> ids(static_cast<std::size_t>(cfg.tokens()));
  for (std::size_t i = 0; i < ids.size(); ++i) ids[i] = static_cast<std::int32_t>(i * 7);
  std::vector<float> out(static_cast<std::size_t>(cfg.tokens() * cfg.hidden));
  emb.forward(ids.data(), out.data(), rng);
  for (std::int64_t t = 0; t < cfg.tokens(); ++t) {
    float mu = 0.0f;
    for (std::int64_t h = 0; h < cfg.hidden; ++h)
      mu += out[static_cast<std::size_t>(t * cfg.hidden + h)];
    EXPECT_NEAR(mu / static_cast<float>(cfg.hidden), 0.0f, 1e-4f);
  }
  // Same token id => same embedding row.
  std::vector<std::int32_t> same(ids.size(), 5);
  emb.forward(same.data(), out.data(), rng);
  for (std::int64_t h = 0; h < cfg.hidden; ++h) {
    EXPECT_EQ(out[static_cast<std::size_t>(h)],
              out[static_cast<std::size_t>(cfg.hidden + h)]);
  }
}

TEST(FcLayer, SingleTokenForwardMatchesBatchRow) {
  Xoshiro256 rng(9);
  dl::FcConfig c;
  c.in_features = 16;
  c.out_features = 16;
  c.tokens = 8;
  c.bm = c.bn = c.bk = 8;
  dl::FcLayer fc(c, rng);
  auto x = random_vec(static_cast<std::size_t>(8 * 16), 10);
  std::vector<float> batch(static_cast<std::size_t>(8 * 16));
  fc.forward(x.data(), batch.data());
  // Row 3 recomputed through the single-token path (bn falls back to 1).
  std::vector<float> one(16);
  fc.forward_tokens(x.data() + 3 * 16, 1, one.data());
  for (std::int64_t o = 0; o < 16; ++o)
    EXPECT_NEAR(one[static_cast<std::size_t>(o)],
                batch[static_cast<std::size_t>(3 * 16 + o)], 1e-5f);
}

TEST(Llm, Bf16GenerationStaysFinite) {
  dl::LlmConfig cfg;
  cfg.hidden = 64;
  cfg.heads = 2;
  cfg.layers = 2;
  cfg.ffn = 128;
  cfg.max_seq = 48;
  cfg.bm = cfg.bn = cfg.bk = 16;
  cfg.dtype = DType::BF16;
  Xoshiro256 rng(11);
  dl::LlmModel model(cfg, rng);
  const auto t = model.generate(32, 8, rng);
  EXPECT_GT(t.first_token_ms, 0.0);
  EXPECT_GT(t.per_next_token_ms, 0.0);
}

TEST(Llm, LongerCacheCostsMorePerToken) {
  // Decode cost grows with the visible cache length — the bandwidth-bound
  // regime of Fig. 11's "next tokens" bar.
  dl::LlmConfig cfg;
  cfg.hidden = 64;
  cfg.heads = 2;
  cfg.layers = 2;
  cfg.ffn = 128;
  cfg.max_seq = 512;
  cfg.bm = cfg.bn = cfg.bk = 16;
  Xoshiro256 rng(13);
  dl::DecoderLayer layer(cfg, rng);
  std::vector<float> x(static_cast<std::size_t>(cfg.hidden), 0.1f);
  std::vector<float> y(x.size());
  // Fill positions [0, 400) then time decode at short vs long positions.
  dl::Tensor prompt({400, cfg.hidden});
  prompt.randn_uniform(rng);
  dl::Tensor out({400, cfg.hidden});
  layer.prefill(prompt.data(), 400, out.data());
  const auto time_at = [&](std::int64_t pos) {
    WallTimer t;
    for (int i = 0; i < 50; ++i) layer.decode_one(x.data(), pos, y.data());
    return t.seconds();
  };
  // Amortized over 50 calls; position 399 attends to 8x more cache than 49.
  EXPECT_GT(time_at(399), time_at(49) * 1.05);
}

TEST(UnaryTPP, StridedBf16Reductions) {
  const std::int64_t rows = 6, cols = 4, ldi = 9;
  auto in = to_bf16(random_vec(static_cast<std::size_t>(ldi * cols), 14));
  std::vector<float> sums(static_cast<std::size_t>(cols));
  tpp::UnaryTPP reduce(tpp::UnaryDesc{tpp::UnaryKind::kReduceSumRows, rows,
                                      cols, ldi, 0, DType::BF16, DType::F32,
                                      1.0f});
  reduce(in.data(), sums.data());
  for (std::int64_t j = 0; j < cols; ++j) {
    float want = 0.0f;
    for (std::int64_t i = 0; i < rows; ++i)
      want += in[static_cast<std::size_t>(i + j * ldi)].to_f32();
    EXPECT_NEAR(sums[static_cast<std::size_t>(j)], want, 1e-4f);
  }
}

}  // namespace
}  // namespace plt
