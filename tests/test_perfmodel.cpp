#include <gtest/gtest.h>

#include "perfmodel/cache_model.hpp"
#include "perfmodel/contraction_model.hpp"

namespace plt::perfmodel {
namespace {

std::vector<CacheLevelConfig> tiny_caches() {
  // L1: 2 slices of 100B; L2: 8 slices.
  return {{200, 10.0}, {800, 5.0}};
}

TEST(LruCacheSim, ColdMissThenHit) {
  LruCacheSim sim(tiny_caches());
  EXPECT_EQ(sim.access(1, 100), 2);  // memory
  EXPECT_EQ(sim.access(1, 100), 0);  // L1 hit
}

TEST(LruCacheSim, LruEviction) {
  LruCacheSim sim(tiny_caches());
  sim.access(1, 100);
  sim.access(2, 100);
  sim.access(3, 100);  // evicts 1 from L1 (capacity 200)
  EXPECT_EQ(sim.access(2, 100), 0);
  EXPECT_EQ(sim.access(1, 100), 1);  // still in L2
}

TEST(LruCacheSim, AccessRefreshesRecency) {
  LruCacheSim sim(tiny_caches());
  sim.access(1, 100);
  sim.access(2, 100);
  sim.access(1, 100);  // 1 becomes MRU
  sim.access(3, 100);  // evicts 2, not 1
  EXPECT_EQ(sim.access(1, 100), 0);
  EXPECT_EQ(sim.access(2, 100), 1);
}

TEST(LruCacheSim, OversizedSliceBypassesLevel) {
  LruCacheSim sim(tiny_caches());
  sim.access(1, 100);
  sim.access(9, 500);                // fits only in L2
  EXPECT_EQ(sim.access(1, 100), 0);  // L1 content untouched
  EXPECT_EQ(sim.access(9, 500), 1);
}

TEST(LruCacheSim, HitCountersTrackLevels) {
  LruCacheSim sim(tiny_caches());
  sim.access(1, 100);
  sim.access(1, 100);
  sim.access(1, 100);
  EXPECT_EQ(sim.hits(2), 1u);  // one memory access
  EXPECT_EQ(sim.hits(0), 2u);  // two L1 hits
}

TEST(PlatformModel, PresetsAreOrderedSanely) {
  const auto spr = PlatformModel::spr_like();
  const auto zen = PlatformModel::zen4_like();
  EXPECT_GT(spr.bf16_flops_per_cycle, spr.fp32_flops_per_cycle);
  EXPECT_GT(spr.bf16_flops_per_cycle, zen.bf16_flops_per_cycle);
  EXPECT_EQ(spr.caches.size(), 3u);
}

// ---------- contraction model properties ----------

GemmModelProblem square(std::int64_t n) {
  GemmModelProblem p;
  p.M = p.N = p.K = n;
  p.bm = p.bn = p.bk = 32;
  return p;
}

TEST(ContractionModel, MoreThreadsNeverSlower) {
  const auto p = square(512);
  const auto plat = PlatformModel::spr_like();
  const double c1 = model_gemm_spec(p, "aBC", plat, 1).cycles;
  const double c4 = model_gemm_spec(p, "aBC", plat, 4).cycles;
  const double c16 = model_gemm_spec(p, "aBC", plat, 16).cycles;
  EXPECT_LE(c4, c1);
  EXPECT_LE(c16, c4);
}

TEST(ContractionModel, SerialScheduleScoresWorseThanParallel) {
  const auto p = square(512);
  const auto plat = PlatformModel::spr_like();
  const double serial = model_gemm_spec(p, "abc", plat, 8).flops_per_cycle;
  const double parallel = model_gemm_spec(p, "aBC", plat, 8).flops_per_cycle;
  EXPECT_GT(parallel, serial);
}

TEST(ContractionModel, CacheBlockingBeatsNoReuseOrder) {
  // In a high-compute-peak regime (bf16 on the SPR-like platform) the model
  // is bandwidth-sensitive: an M/N-tiled order that keeps C tiles cache
  // resident must outscore the K-outer order that streams C from memory on
  // every K step. This is exactly the locality signal Fig. 6 relies on.
  auto p = square(1024);
  p.bf16 = true;
  p.m_blocking = {8};
  p.n_blocking = {8};
  const auto plat = PlatformModel::spr_like();
  const double blocked = model_gemm_spec(p, "bcabc", plat, 1).flops_per_cycle;
  GemmModelProblem p2 = square(1024);
  p2.bf16 = true;
  const double streaming = model_gemm_spec(p2, "abc", plat, 1).flops_per_cycle;
  EXPECT_GT(blocked, streaming);
}

TEST(ContractionModel, Bf16RaisesComputeCeiling) {
  auto p = square(256);
  const auto plat = PlatformModel::spr_like();
  const double f32 = model_gemm_spec(p, "aBC", plat, 4).flops_per_cycle;
  p.bf16 = true;
  const double b16 = model_gemm_spec(p, "aBC", plat, 4).flops_per_cycle;
  EXPECT_GT(b16, f32);
}

TEST(ContractionModel, BusiestThreadCallsAccountAllWork) {
  const auto p = square(256);  // 8x8x8 blocks
  const auto plat = PlatformModel::spr_like();
  const auto pred = predict_contraction(
      [] {
        std::vector<parlooper::LoopSpecs> loops = {
            parlooper::LoopSpecs{0, 8, 1}, parlooper::LoopSpecs{0, 8, 1},
            parlooper::LoopSpecs{0, 8, 1}};
        return parlooper::LoopNestPlan(loops, "abc");
      }(),
      ContractionDesc{
          1000.0, false,
          [](const std::int64_t*) { return SliceAccess{1, 64}; },
          [](const std::int64_t*) { return SliceAccess{2, 64}; },
          [](const std::int64_t*) { return SliceAccess{3, 64}; }},
      plat, 1);
  EXPECT_EQ(pred.busiest_thread_calls, 8 * 8 * 8);
  EXPECT_GT(pred.cycles, 0.0);
}

}  // namespace
}  // namespace plt::perfmodel
