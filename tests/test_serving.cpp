// Serving-layer tests: MPMC admission queue accounting under producer/
// consumer storms, registry lookup, micro-batch determinism (batched
// execution bitwise-identical to sequential per-request execution),
// deadline/batch-size boundary cases, graceful shutdown with in-flight
// requests, and concurrent mixed-model traffic. Designed to run TSan-clean
// (the CI thread-sanitizer job runs this binary).
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <thread>
#include <vector>

#include "common/mpmc_queue.hpp"
#include "common/threading.hpp"
#include "serving/model_registry.hpp"
#include "serving/scheduler.hpp"
#include "serving/session.hpp"

namespace plt::serving {
namespace {

MlpServeConfig tiny_mlp() {
  MlpServeConfig c;
  c.features = 32;
  c.layers = 2;
  c.tokens = 8;
  c.bm = c.bn = c.bk = 8;
  return c;
}

dl::BertConfig tiny_bert() {
  dl::BertConfig c;
  c.hidden = 32;
  c.heads = 2;
  c.intermediate = 64;
  c.layers = 1;
  c.seq_len = 8;
  c.batch = 1;
  c.bm = c.bn = c.bk = 8;
  return c;
}

dl::LlmConfig tiny_llm() {
  dl::LlmConfig c;
  c.hidden = 32;
  c.heads = 2;
  c.layers = 1;
  c.ffn = 64;
  c.vocab = 64;
  c.max_seq = 32;
  c.bm = c.bn = c.bk = 8;
  return c;
}

std::vector<float> make_input(const Session& s, std::uint64_t seed) {
  std::vector<float> in(static_cast<std::size_t>(s.input_elems()));
  Xoshiro256 rng(seed);
  fill_uniform(in.data(), in.size(), rng, -1.0f, 1.0f);
  return in;
}

// --- MPMC queue -------------------------------------------------------------

TEST(MpmcQueue, FifoWithinSingleProducer) {
  common::MpmcQueue<int> q(8);
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(q.try_push(i));
  int v = -1;
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(q.try_pop(v));
    EXPECT_EQ(v, i);
  }
  EXPECT_FALSE(q.try_pop(v));
}

TEST(MpmcQueue, FullQueueRejectsPush) {
  common::MpmcQueue<int> q(4);  // rounded to capacity 4
  EXPECT_EQ(q.capacity(), 4u);
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(q.try_push(i));
  EXPECT_FALSE(q.try_push(99));
  int v = -1;
  EXPECT_TRUE(q.try_pop(v));
  EXPECT_TRUE(q.try_push(99));  // slot freed
}

TEST(MpmcQueue, StormAccountsEveryItem) {
  // N producers push disjoint ranges, M consumers drain: every value must
  // arrive exactly once (sum check) with no loss under contention.
  constexpr int kProducers = 4, kConsumers = 3, kPerProducer = 2000;
  common::MpmcQueue<std::int64_t> q(64);
  std::atomic<std::int64_t> sum{0};
  std::atomic<int> popped{0};
  constexpr int kTotal = kProducers * kPerProducer;

  std::vector<std::thread> threads;
  for (int c = 0; c < kConsumers; ++c) {
    threads.emplace_back([&] {
      std::int64_t v;
      while (popped.load(std::memory_order_acquire) < kTotal) {
        if (q.try_pop(v)) {
          sum.fetch_add(v, std::memory_order_relaxed);
          popped.fetch_add(1, std::memory_order_acq_rel);
        } else {
          std::this_thread::yield();
        }
      }
    });
  }
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        const std::int64_t v = static_cast<std::int64_t>(p) * kPerProducer + i;
        while (!q.try_push(v)) std::this_thread::yield();
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(popped.load(), kTotal);
  EXPECT_EQ(sum.load(),
            static_cast<std::int64_t>(kTotal) * (kTotal - 1) / 2);
}

// --- registry ---------------------------------------------------------------

TEST(ModelRegistry, AddAndFind) {
  ModelRegistry reg;
  auto mlp = make_mlp_session("mlp_reg", tiny_mlp(), /*lanes=*/2, 7);
  reg.add(mlp);
  EXPECT_EQ(reg.size(), 1u);
  EXPECT_EQ(reg.find("mlp_reg"), mlp);
  EXPECT_EQ(reg.find("nope"), nullptr);
  EXPECT_THROW(reg.add(make_mlp_session("mlp_reg", tiny_mlp(), 1, 7)),
               std::invalid_argument);
}

// --- sessions ---------------------------------------------------------------

TEST(Session, LanesAreBitwiseIdenticalReplicas) {
  auto s = make_mlp_session("mlp_lanes", tiny_mlp(), /*lanes=*/3, 21);
  const auto in = make_input(*s, 5);
  std::vector<std::vector<float>> outs;
  for (int lane = 0; lane < s->lanes(); ++lane) {
    std::vector<float> out(static_cast<std::size_t>(s->output_elems()));
    s->run(lane, in.data(), out.data());
    outs.push_back(std::move(out));
  }
  for (int lane = 1; lane < s->lanes(); ++lane) {
    EXPECT_EQ(0, std::memcmp(outs[0].data(),
                             outs[static_cast<std::size_t>(lane)].data(),
                             outs[0].size() * sizeof(float)))
        << "lane " << lane;
  }
}

// --- scheduler: determinism -------------------------------------------------

// Batched execution must be bitwise-identical to sequential per-request
// execution for every model family the serving layer hosts.
TEST(Scheduler, BatchedMatchesSequentialBitwise) {
  std::vector<std::shared_ptr<Session>> sessions = {
      make_mlp_session("mlp_det", tiny_mlp(), /*lanes=*/4, 11),
      make_bert_session("bert_det", tiny_bert(), /*lanes=*/4, 12),
      make_llm_session("llm_det", tiny_llm(), /*prompt=*/4, /*gen=*/2,
                       /*lanes=*/4, 13),
  };
  constexpr int kPerModel = 8;

  for (auto& s : sessions) {
    std::vector<std::vector<float>> ins, want, got;
    for (int i = 0; i < kPerModel; ++i) {
      ins.push_back(make_input(*s, 100 + static_cast<std::uint64_t>(i)));
      want.emplace_back(static_cast<std::size_t>(s->output_elems()));
      got.emplace_back(static_cast<std::size_t>(s->output_elems()));
    }
    // Sequential reference: one request at a time, lane 0, parallel nests.
    for (int i = 0; i < kPerModel; ++i) {
      s->run(0, ins[static_cast<std::size_t>(i)].data(),
             want[static_cast<std::size_t>(i)].data());
    }

    SchedulerConfig cfg;
    cfg.max_batch = 4;
    cfg.batch_usecs = 1000;
    RequestScheduler sched(cfg);
    std::vector<RequestHandle> handles;
    for (int i = 0; i < kPerModel; ++i) {
      handles.push_back(sched.submit(s, ins[static_cast<std::size_t>(i)].data(),
                                     got[static_cast<std::size_t>(i)].data()));
    }
    for (auto& h : handles) {
      ASSERT_TRUE(h.ok());
      h.wait();
      EXPECT_TRUE(h.done());
      EXPECT_GT(h.latency_us(), 0.0);
    }
    for (int i = 0; i < kPerModel; ++i) {
      EXPECT_EQ(0, std::memcmp(want[static_cast<std::size_t>(i)].data(),
                               got[static_cast<std::size_t>(i)].data(),
                               want[static_cast<std::size_t>(i)].size() *
                                   sizeof(float)))
          << s->name() << " request " << i;
    }
  }
}

// --- scheduler: batching boundaries -----------------------------------------

TEST(Scheduler, MaxBatchOneDegradesToSequentialServing) {
  auto s = make_mlp_session("mlp_b1", tiny_mlp(), /*lanes=*/2, 31);
  SchedulerConfig cfg;
  cfg.max_batch = 1;
  cfg.batch_usecs = 0;
  RequestScheduler sched(cfg);
  const auto in = make_input(*s, 3);
  std::vector<float> want(static_cast<std::size_t>(s->output_elems()));
  s->run(0, in.data(), want.data());
  for (int i = 0; i < 6; ++i) {
    std::vector<float> out(static_cast<std::size_t>(s->output_elems()));
    auto h = sched.submit(s, in.data(), out.data());
    h.wait();
    EXPECT_EQ(0, std::memcmp(want.data(), out.data(),
                             want.size() * sizeof(float)));
  }
  const auto stats = sched.stats();
  ASSERT_EQ(stats.size(), 1u);
  EXPECT_EQ(stats[0].requests, 6u);
  EXPECT_EQ(stats[0].batches, 6u);  // every batch has exactly one request
}

TEST(Scheduler, ZeroDeadlineFlushesImmediately) {
  auto s = make_mlp_session("mlp_dl0", tiny_mlp(), /*lanes=*/4, 32);
  SchedulerConfig cfg;
  cfg.max_batch = 4;
  cfg.batch_usecs = 0;  // a partial batch never waits
  RequestScheduler sched(cfg);
  const auto in = make_input(*s, 4);
  std::vector<float> out(static_cast<std::size_t>(s->output_elems()));
  auto h = sched.submit(s, in.data(), out.data());
  h.wait();  // must complete without three more requests arriving
  EXPECT_TRUE(h.done());
}

TEST(Scheduler, BatchNeverExceedsSessionLanes) {
  auto s = make_mlp_session("mlp_lim", tiny_mlp(), /*lanes=*/2, 33);
  SchedulerConfig cfg;
  cfg.max_batch = 16;  // more than the session can run concurrently
  cfg.batch_usecs = 500;
  RequestScheduler sched(cfg);
  const auto in = make_input(*s, 5);
  constexpr int kReqs = 12;
  std::vector<std::vector<float>> outs(
      kReqs, std::vector<float>(static_cast<std::size_t>(s->output_elems())));
  std::vector<RequestHandle> handles;
  for (int i = 0; i < kReqs; ++i) {
    handles.push_back(
        sched.submit(s, in.data(), outs[static_cast<std::size_t>(i)].data()));
  }
  for (auto& h : handles) h.wait();
  const auto stats = sched.stats();
  ASSERT_EQ(stats.size(), 1u);
  EXPECT_EQ(stats[0].requests, static_cast<std::uint64_t>(kReqs));
  EXPECT_LE(stats[0].mean_batch(), 2.0);  // clamped to lanes()
}

TEST(Scheduler, TinyQueueAppliesBackpressureWithoutLoss) {
  auto s = make_mlp_session("mlp_bp", tiny_mlp(), /*lanes=*/2, 34);
  SchedulerConfig cfg;
  cfg.max_batch = 2;
  cfg.batch_usecs = 0;
  cfg.queue_capacity = 2;  // submit must block-and-retry, never drop
  RequestScheduler sched(cfg);
  const auto in = make_input(*s, 6);
  constexpr int kReqs = 32;
  std::vector<std::vector<float>> outs(
      kReqs, std::vector<float>(static_cast<std::size_t>(s->output_elems())));
  std::vector<RequestHandle> handles;
  for (int i = 0; i < kReqs; ++i) {
    handles.push_back(
        sched.submit(s, in.data(), outs[static_cast<std::size_t>(i)].data()));
  }
  for (auto& h : handles) {
    h.wait();
    EXPECT_TRUE(h.done());
  }
  const auto stats = sched.stats();
  ASSERT_EQ(stats.size(), 1u);
  EXPECT_EQ(stats[0].requests, static_cast<std::uint64_t>(kReqs));
}

// --- scheduler: shutdown ----------------------------------------------------

TEST(Scheduler, GracefulShutdownDrainsInFlightRequests) {
  auto s = make_mlp_session("mlp_shut", tiny_mlp(), /*lanes=*/4, 35);
  const auto in = make_input(*s, 7);
  std::vector<float> want(static_cast<std::size_t>(s->output_elems()));
  s->run(0, in.data(), want.data());

  SchedulerConfig cfg;
  cfg.max_batch = 4;
  cfg.batch_usecs = 50000;  // long deadline: shutdown must not wait it out
  RequestScheduler sched(cfg);
  constexpr int kReqs = 10;
  std::vector<std::vector<float>> outs(
      kReqs, std::vector<float>(static_cast<std::size_t>(s->output_elems())));
  std::vector<RequestHandle> handles;
  for (int i = 0; i < kReqs; ++i) {
    handles.push_back(
        sched.submit(s, in.data(), outs[static_cast<std::size_t>(i)].data()));
  }
  sched.shutdown();  // every accepted request must have completed
  for (int i = 0; i < kReqs; ++i) {
    EXPECT_TRUE(handles[static_cast<std::size_t>(i)].done());
    EXPECT_EQ(0, std::memcmp(want.data(),
                             outs[static_cast<std::size_t>(i)].data(),
                             want.size() * sizeof(float)));
  }
  // Admission is closed after shutdown.
  std::vector<float> out(static_cast<std::size_t>(s->output_elems()));
  auto rejected = sched.submit(s, in.data(), out.data());
  EXPECT_FALSE(rejected.ok());
  EXPECT_TRUE(rejected.done());  // a rejected handle is trivially done
}

// --- scheduler: sharded layout ----------------------------------------------

// The sharded scheduler (one queue + dispatcher per shard, pinned sessions,
// idle-shard stealing) must produce results bitwise-identical to both the
// single-queue scheduler and sequential execution — on any machine, any
// partition count (shards above the partition count share sub-teams via the
// documented run_on busy-degradation).
TEST(Scheduler, ShardedMatchesSingleQueueBitwise) {
  std::vector<std::shared_ptr<Session>> sessions = {
      make_mlp_session("mlp_sh", tiny_mlp(), /*lanes=*/4, 61),
      make_bert_session("bert_sh", tiny_bert(), /*lanes=*/4, 62),
      make_llm_session("llm_sh", tiny_llm(), 4, 2, /*lanes=*/4, 63),
  };
  for (std::size_t m = 0; m < sessions.size(); ++m) {
    sessions[m]->pin_partition(static_cast<int>(m));
  }
  constexpr int kPerModel = 8;

  // Sequential reference.
  std::vector<std::vector<std::vector<float>>> ins(sessions.size());
  std::vector<std::vector<std::vector<float>>> want(sessions.size());
  for (std::size_t m = 0; m < sessions.size(); ++m) {
    for (int i = 0; i < kPerModel; ++i) {
      ins[m].push_back(
          make_input(*sessions[m], 200 + static_cast<std::uint64_t>(i)));
      want[m].emplace_back(
          static_cast<std::size_t>(sessions[m]->output_elems()));
      sessions[m]->run(0, ins[m].back().data(), want[m].back().data());
    }
  }

  for (const int shards : {1, 3}) {
    SchedulerConfig cfg;
    cfg.max_batch = 4;
    cfg.batch_usecs = 200;
    cfg.shards = shards;
    RequestScheduler sched(cfg);
    EXPECT_EQ(sched.shard_count(), shards);
    std::vector<std::vector<std::vector<float>>> got(sessions.size());
    std::vector<RequestHandle> handles;
    for (std::size_t m = 0; m < sessions.size(); ++m) {
      for (int i = 0; i < kPerModel; ++i) {
        got[m].emplace_back(
            static_cast<std::size_t>(sessions[m]->output_elems()));
        handles.push_back(sched.submit(sessions[m],
                                       ins[m][static_cast<std::size_t>(i)].data(),
                                       got[m].back().data()));
      }
    }
    for (auto& h : handles) {
      ASSERT_TRUE(h.ok());
      h.wait();
    }
    for (std::size_t m = 0; m < sessions.size(); ++m) {
      for (int i = 0; i < kPerModel; ++i) {
        EXPECT_EQ(0,
                  std::memcmp(want[m][static_cast<std::size_t>(i)].data(),
                              got[m][static_cast<std::size_t>(i)].data(),
                              want[m][static_cast<std::size_t>(i)].size() *
                                  sizeof(float)))
            << sessions[m]->name() << " request " << i << " shards " << shards;
      }
    }
    std::uint64_t total = 0;
    for (const auto& st : sched.stats()) total += st.requests;
    EXPECT_EQ(total,
              static_cast<std::uint64_t>(sessions.size()) * kPerModel);
  }
}

TEST(Scheduler, StealingDrainsABackloggedSiblingCorrectly) {
  // Every session pinned to shard 0: shard 1 has an empty queue and may
  // only serve by stealing. All requests must complete bitwise-correct no
  // matter which shard executed them (lanes are identical replicas).
  auto s = make_mlp_session("mlp_steal", tiny_mlp(), /*lanes=*/2, 71);
  s->pin_partition(0);
  const auto in = make_input(*s, 9);
  std::vector<float> want(static_cast<std::size_t>(s->output_elems()));
  s->run(0, in.data(), want.data());

  SchedulerConfig cfg;
  cfg.max_batch = 2;
  cfg.batch_usecs = 0;
  cfg.shards = 2;
  cfg.steal = true;
  RequestScheduler sched(cfg);
  constexpr int kReqs = 48;
  std::vector<std::vector<float>> outs(
      kReqs, std::vector<float>(static_cast<std::size_t>(s->output_elems())));
  std::vector<RequestHandle> handles;
  for (int i = 0; i < kReqs; ++i) {
    handles.push_back(
        sched.submit(s, in.data(), outs[static_cast<std::size_t>(i)].data()));
  }
  for (auto& h : handles) h.wait();
  for (int i = 0; i < kReqs; ++i) {
    EXPECT_EQ(0, std::memcmp(want.data(),
                             outs[static_cast<std::size_t>(i)].data(),
                             want.size() * sizeof(float)))
        << "request " << i;
  }
  const auto stats = sched.stats();
  ASSERT_EQ(stats.size(), 1u);
  EXPECT_EQ(stats[0].requests, static_cast<std::uint64_t>(kReqs));
  // Stolen work is bounded by what existed; shard 0 never steals (its own
  // queue holds everything). Stealing itself is timing-dependent, so only
  // the invariants are asserted, not a minimum count.
  EXPECT_EQ(sched.steals(0), 0u);
  EXPECT_LE(sched.steals(1), static_cast<std::uint64_t>(kReqs));
  sched.shutdown();
}

TEST(Scheduler, DisabledStealingKeepsWorkOnTheHomeShard) {
  auto s = make_mlp_session("mlp_nosteal", tiny_mlp(), /*lanes=*/2, 72);
  s->pin_partition(0);
  const auto in = make_input(*s, 10);
  SchedulerConfig cfg;
  cfg.max_batch = 2;
  cfg.batch_usecs = 0;
  cfg.shards = 2;
  cfg.steal = false;
  RequestScheduler sched(cfg);
  std::vector<float> out(static_cast<std::size_t>(s->output_elems()));
  for (int i = 0; i < 8; ++i) {
    auto h = sched.submit(s, in.data(), out.data());
    h.wait();
  }
  EXPECT_EQ(sched.steals(0), 0u);
  EXPECT_EQ(sched.steals(1), 0u);
}

TEST(Session, PinPartitionIsStickyAndFirstWins) {
  auto s = make_mlp_session("mlp_pin", tiny_mlp(), /*lanes=*/1, 73);
  EXPECT_EQ(s->partition(), -1);
  // The CAS path stores the raw routing hint (the scheduler normalizes its
  // own inputs); executors wrap it modulo the real partition count.
  EXPECT_EQ(s->pin_partition_if_unpinned(2), 2);
  EXPECT_EQ(s->pin_partition_if_unpinned(5), 2);  // already pinned: kept
  // The explicit pin (warmup + caller affinity) normalizes to a real
  // pool partition.
  s->pin_partition(1);
  EXPECT_EQ(s->partition(), 1 % pool_partitions());
}

TEST(ModelRegistry, RegistrationPinsSessionsToPartitions) {
  ModelRegistry reg;
  auto a = make_mlp_session("mlp_rr_a", tiny_mlp(), 1, 81);
  auto b = make_mlp_session("mlp_rr_b", tiny_mlp(), 1, 82);
  auto c = make_mlp_session("mlp_rr_c", tiny_mlp(), 1, 83);
  reg.add(a);               // round-robin
  reg.add(b);               // round-robin
  reg.add(c, /*partition=*/0);  // explicit
  const int nparts = pool_partitions();
  EXPECT_EQ(a->partition(), 0 % nparts);
  EXPECT_EQ(b->partition(), 1 % nparts);
  EXPECT_EQ(c->partition(), 0);
}

// --- scheduler: concurrent mixed traffic -------------------------------------

TEST(Scheduler, ConcurrentProducersAcrossModels) {
  // N producer threads x M models, all in flight at once; every request
  // must complete with the bitwise-correct result. This is the test the CI
  // ThreadSanitizer job leans on.
  std::vector<std::shared_ptr<Session>> sessions = {
      make_mlp_session("mlp_mix", tiny_mlp(), /*lanes=*/4, 41),
      make_bert_session("bert_mix", tiny_bert(), /*lanes=*/4, 42),
      make_llm_session("llm_mix", tiny_llm(), 4, 2, /*lanes=*/4, 43),
  };
  constexpr int kProducers = 4, kPerProducer = 12;

  // Reference outputs for one shared input per model.
  std::vector<std::vector<float>> ins, want;
  for (auto& s : sessions) {
    ins.push_back(make_input(*s, 50));
    want.emplace_back(static_cast<std::size_t>(s->output_elems()));
    s->run(0, ins.back().data(), want.back().data());
  }

  SchedulerConfig cfg;
  cfg.max_batch = 4;
  cfg.batch_usecs = 200;
  RequestScheduler sched(cfg);
  std::atomic<int> mismatches{0};
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        const std::size_t m =
            static_cast<std::size_t>(p + i) % sessions.size();
        std::vector<float> out(
            static_cast<std::size_t>(sessions[m]->output_elems()));
        auto h = sched.submit(sessions[m], ins[m].data(), out.data());
        ASSERT_TRUE(h.ok());
        h.wait();
        if (std::memcmp(want[m].data(), out.data(),
                        want[m].size() * sizeof(float)) != 0) {
          mismatches.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : producers) t.join();
  EXPECT_EQ(mismatches.load(), 0);

  std::uint64_t total = 0;
  for (const auto& st : sched.stats()) {
    total += st.requests;
    EXPECT_GE(st.pending_highwater, 1u);
    EXPECT_GT(st.mean_latency_us(), 0.0);
  }
  EXPECT_EQ(total, static_cast<std::uint64_t>(kProducers) * kPerProducer);
  EXPECT_GE(sched.queue_depth_highwater(), 1u);
}

}  // namespace
}  // namespace plt::serving
