// Serving-layer tests: MPMC admission queue accounting under producer/
// consumer storms, registry lookup, micro-batch determinism (batched
// execution bitwise-identical to sequential per-request execution),
// deadline/batch-size boundary cases, graceful shutdown with in-flight
// requests, and concurrent mixed-model traffic. Designed to run TSan-clean
// (the CI thread-sanitizer job runs this binary).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/env.hpp"
#include "common/fault.hpp"
#include "common/mpmc_queue.hpp"
#include "common/status.hpp"
#include "common/threading.hpp"
#include "serving/model_registry.hpp"
#include "serving/scheduler.hpp"
#include "serving/session.hpp"

namespace plt::serving {
namespace {

MlpServeConfig tiny_mlp() {
  MlpServeConfig c;
  c.features = 32;
  c.layers = 2;
  c.tokens = 8;
  c.bm = c.bn = c.bk = 8;
  return c;
}

dl::BertConfig tiny_bert() {
  dl::BertConfig c;
  c.hidden = 32;
  c.heads = 2;
  c.intermediate = 64;
  c.layers = 1;
  c.seq_len = 8;
  c.batch = 1;
  c.bm = c.bn = c.bk = 8;
  return c;
}

dl::LlmConfig tiny_llm() {
  dl::LlmConfig c;
  c.hidden = 32;
  c.heads = 2;
  c.layers = 1;
  c.ffn = 64;
  c.vocab = 64;
  c.max_seq = 32;
  c.bm = c.bn = c.bk = 8;
  return c;
}

std::vector<float> make_input(const Session& s, std::uint64_t seed) {
  std::vector<float> in(static_cast<std::size_t>(s.input_elems()));
  Xoshiro256 rng(seed);
  fill_uniform(in.data(), in.size(), rng, -1.0f, 1.0f);
  return in;
}

// --- MPMC queue -------------------------------------------------------------

TEST(MpmcQueue, FifoWithinSingleProducer) {
  common::MpmcQueue<int> q(8);
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(q.try_push(i));
  int v = -1;
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(q.try_pop(v));
    EXPECT_EQ(v, i);
  }
  EXPECT_FALSE(q.try_pop(v));
}

TEST(MpmcQueue, FullQueueRejectsPush) {
  common::MpmcQueue<int> q(4);  // rounded to capacity 4
  EXPECT_EQ(q.capacity(), 4u);
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(q.try_push(i));
  EXPECT_FALSE(q.try_push(99));
  int v = -1;
  EXPECT_TRUE(q.try_pop(v));
  EXPECT_TRUE(q.try_push(99));  // slot freed
}

TEST(MpmcQueue, StormAccountsEveryItem) {
  // N producers push disjoint ranges, M consumers drain: every value must
  // arrive exactly once (sum check) with no loss under contention.
  constexpr int kProducers = 4, kConsumers = 3, kPerProducer = 2000;
  common::MpmcQueue<std::int64_t> q(64);
  std::atomic<std::int64_t> sum{0};
  std::atomic<int> popped{0};
  constexpr int kTotal = kProducers * kPerProducer;

  std::vector<std::thread> threads;
  for (int c = 0; c < kConsumers; ++c) {
    threads.emplace_back([&] {
      std::int64_t v;
      while (popped.load(std::memory_order_acquire) < kTotal) {
        if (q.try_pop(v)) {
          sum.fetch_add(v, std::memory_order_relaxed);
          popped.fetch_add(1, std::memory_order_acq_rel);
        } else {
          std::this_thread::yield();
        }
      }
    });
  }
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        const std::int64_t v = static_cast<std::int64_t>(p) * kPerProducer + i;
        while (!q.try_push(v)) std::this_thread::yield();
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(popped.load(), kTotal);
  EXPECT_EQ(sum.load(),
            static_cast<std::int64_t>(kTotal) * (kTotal - 1) / 2);
}

// --- registry ---------------------------------------------------------------

TEST(ModelRegistry, AddAndFind) {
  ModelRegistry reg;
  auto mlp = make_mlp_session("mlp_reg", tiny_mlp(), /*lanes=*/2, 7);
  reg.add(mlp);
  EXPECT_EQ(reg.size(), 1u);
  EXPECT_EQ(reg.find("mlp_reg"), mlp);
  EXPECT_EQ(reg.find("nope"), nullptr);
  EXPECT_THROW(reg.add(make_mlp_session("mlp_reg", tiny_mlp(), 1, 7)),
               std::invalid_argument);
}

// --- sessions ---------------------------------------------------------------

TEST(Session, LanesAreBitwiseIdenticalReplicas) {
  auto s = make_mlp_session("mlp_lanes", tiny_mlp(), /*lanes=*/3, 21);
  const auto in = make_input(*s, 5);
  std::vector<std::vector<float>> outs;
  for (int lane = 0; lane < s->lanes(); ++lane) {
    std::vector<float> out(static_cast<std::size_t>(s->output_elems()));
    s->run(lane, in.data(), out.data());
    outs.push_back(std::move(out));
  }
  for (int lane = 1; lane < s->lanes(); ++lane) {
    EXPECT_EQ(0, std::memcmp(outs[0].data(),
                             outs[static_cast<std::size_t>(lane)].data(),
                             outs[0].size() * sizeof(float)))
        << "lane " << lane;
  }
}

// --- scheduler: determinism -------------------------------------------------

// Batched execution must be bitwise-identical to sequential per-request
// execution for every model family the serving layer hosts.
TEST(Scheduler, BatchedMatchesSequentialBitwise) {
  std::vector<std::shared_ptr<Session>> sessions = {
      make_mlp_session("mlp_det", tiny_mlp(), /*lanes=*/4, 11),
      make_bert_session("bert_det", tiny_bert(), /*lanes=*/4, 12),
      make_llm_session("llm_det", tiny_llm(), /*prompt=*/4, /*gen=*/2,
                       /*lanes=*/4, 13),
  };
  constexpr int kPerModel = 8;

  for (auto& s : sessions) {
    std::vector<std::vector<float>> ins, want, got;
    for (int i = 0; i < kPerModel; ++i) {
      ins.push_back(make_input(*s, 100 + static_cast<std::uint64_t>(i)));
      want.emplace_back(static_cast<std::size_t>(s->output_elems()));
      got.emplace_back(static_cast<std::size_t>(s->output_elems()));
    }
    // Sequential reference: one request at a time, lane 0, parallel nests.
    for (int i = 0; i < kPerModel; ++i) {
      s->run(0, ins[static_cast<std::size_t>(i)].data(),
             want[static_cast<std::size_t>(i)].data());
    }

    SchedulerConfig cfg;
    cfg.max_batch = 4;
    cfg.batch_usecs = 1000;
    RequestScheduler sched(cfg);
    std::vector<RequestHandle> handles;
    for (int i = 0; i < kPerModel; ++i) {
      handles.push_back(sched.submit(s, ins[static_cast<std::size_t>(i)].data(),
                                     got[static_cast<std::size_t>(i)].data()));
    }
    for (auto& h : handles) {
      ASSERT_TRUE(h.ok());
      h.wait();
      EXPECT_TRUE(h.done());
      EXPECT_GT(h.latency_us(), 0.0);
    }
    for (int i = 0; i < kPerModel; ++i) {
      EXPECT_EQ(0, std::memcmp(want[static_cast<std::size_t>(i)].data(),
                               got[static_cast<std::size_t>(i)].data(),
                               want[static_cast<std::size_t>(i)].size() *
                                   sizeof(float)))
          << s->name() << " request " << i;
    }
  }
}

// --- scheduler: batching boundaries -----------------------------------------

TEST(Scheduler, MaxBatchOneDegradesToSequentialServing) {
  auto s = make_mlp_session("mlp_b1", tiny_mlp(), /*lanes=*/2, 31);
  SchedulerConfig cfg;
  cfg.max_batch = 1;
  cfg.batch_usecs = 0;
  RequestScheduler sched(cfg);
  const auto in = make_input(*s, 3);
  std::vector<float> want(static_cast<std::size_t>(s->output_elems()));
  s->run(0, in.data(), want.data());
  for (int i = 0; i < 6; ++i) {
    std::vector<float> out(static_cast<std::size_t>(s->output_elems()));
    auto h = sched.submit(s, in.data(), out.data());
    h.wait();
    EXPECT_EQ(0, std::memcmp(want.data(), out.data(),
                             want.size() * sizeof(float)));
  }
  const auto stats = sched.stats();
  ASSERT_EQ(stats.size(), 1u);
  EXPECT_EQ(stats[0].requests, 6u);
  EXPECT_EQ(stats[0].batches, 6u);  // every batch has exactly one request
}

TEST(Scheduler, ZeroDeadlineFlushesImmediately) {
  auto s = make_mlp_session("mlp_dl0", tiny_mlp(), /*lanes=*/4, 32);
  SchedulerConfig cfg;
  cfg.max_batch = 4;
  cfg.batch_usecs = 0;  // a partial batch never waits
  RequestScheduler sched(cfg);
  const auto in = make_input(*s, 4);
  std::vector<float> out(static_cast<std::size_t>(s->output_elems()));
  auto h = sched.submit(s, in.data(), out.data());
  h.wait();  // must complete without three more requests arriving
  EXPECT_TRUE(h.done());
}

TEST(Scheduler, BatchNeverExceedsSessionLanes) {
  auto s = make_mlp_session("mlp_lim", tiny_mlp(), /*lanes=*/2, 33);
  SchedulerConfig cfg;
  cfg.max_batch = 16;  // more than the session can run concurrently
  cfg.batch_usecs = 500;
  RequestScheduler sched(cfg);
  const auto in = make_input(*s, 5);
  constexpr int kReqs = 12;
  std::vector<std::vector<float>> outs(
      kReqs, std::vector<float>(static_cast<std::size_t>(s->output_elems())));
  std::vector<RequestHandle> handles;
  for (int i = 0; i < kReqs; ++i) {
    handles.push_back(
        sched.submit(s, in.data(), outs[static_cast<std::size_t>(i)].data()));
  }
  for (auto& h : handles) h.wait();
  const auto stats = sched.stats();
  ASSERT_EQ(stats.size(), 1u);
  EXPECT_EQ(stats[0].requests, static_cast<std::uint64_t>(kReqs));
  EXPECT_LE(stats[0].mean_batch(), 2.0);  // clamped to lanes()
}

TEST(Scheduler, TinyQueueAppliesBackpressureWithoutLoss) {
  auto s = make_mlp_session("mlp_bp", tiny_mlp(), /*lanes=*/2, 34);
  SchedulerConfig cfg;
  cfg.max_batch = 2;
  cfg.batch_usecs = 0;
  cfg.queue_capacity = 2;  // submit must block-and-retry, never drop
  RequestScheduler sched(cfg);
  const auto in = make_input(*s, 6);
  constexpr int kReqs = 32;
  std::vector<std::vector<float>> outs(
      kReqs, std::vector<float>(static_cast<std::size_t>(s->output_elems())));
  std::vector<RequestHandle> handles;
  for (int i = 0; i < kReqs; ++i) {
    handles.push_back(
        sched.submit(s, in.data(), outs[static_cast<std::size_t>(i)].data()));
  }
  for (auto& h : handles) {
    h.wait();
    EXPECT_TRUE(h.done());
  }
  const auto stats = sched.stats();
  ASSERT_EQ(stats.size(), 1u);
  EXPECT_EQ(stats[0].requests, static_cast<std::uint64_t>(kReqs));
}

// --- scheduler: shutdown ----------------------------------------------------

TEST(Scheduler, GracefulShutdownDrainsInFlightRequests) {
  auto s = make_mlp_session("mlp_shut", tiny_mlp(), /*lanes=*/4, 35);
  const auto in = make_input(*s, 7);
  std::vector<float> want(static_cast<std::size_t>(s->output_elems()));
  s->run(0, in.data(), want.data());

  SchedulerConfig cfg;
  cfg.max_batch = 4;
  cfg.batch_usecs = 50000;  // long deadline: shutdown must not wait it out
  RequestScheduler sched(cfg);
  constexpr int kReqs = 10;
  std::vector<std::vector<float>> outs(
      kReqs, std::vector<float>(static_cast<std::size_t>(s->output_elems())));
  std::vector<RequestHandle> handles;
  for (int i = 0; i < kReqs; ++i) {
    handles.push_back(
        sched.submit(s, in.data(), outs[static_cast<std::size_t>(i)].data()));
  }
  sched.shutdown();  // every accepted request must have completed
  for (int i = 0; i < kReqs; ++i) {
    EXPECT_TRUE(handles[static_cast<std::size_t>(i)].done());
    EXPECT_EQ(0, std::memcmp(want.data(),
                             outs[static_cast<std::size_t>(i)].data(),
                             want.size() * sizeof(float)));
  }
  // Admission is closed after shutdown.
  std::vector<float> out(static_cast<std::size_t>(s->output_elems()));
  auto rejected = sched.submit(s, in.data(), out.data());
  EXPECT_FALSE(rejected.ok());
  EXPECT_TRUE(rejected.done());  // a rejected handle is trivially done
}

// --- scheduler: sharded layout ----------------------------------------------

// The sharded scheduler (one queue + dispatcher per shard, pinned sessions,
// idle-shard stealing) must produce results bitwise-identical to both the
// single-queue scheduler and sequential execution — on any machine, any
// partition count (shards above the partition count share sub-teams via the
// documented run_on busy-degradation).
TEST(Scheduler, ShardedMatchesSingleQueueBitwise) {
  std::vector<std::shared_ptr<Session>> sessions = {
      make_mlp_session("mlp_sh", tiny_mlp(), /*lanes=*/4, 61),
      make_bert_session("bert_sh", tiny_bert(), /*lanes=*/4, 62),
      make_llm_session("llm_sh", tiny_llm(), 4, 2, /*lanes=*/4, 63),
  };
  for (std::size_t m = 0; m < sessions.size(); ++m) {
    sessions[m]->pin_partition(static_cast<int>(m));
  }
  constexpr int kPerModel = 8;

  // Sequential reference.
  std::vector<std::vector<std::vector<float>>> ins(sessions.size());
  std::vector<std::vector<std::vector<float>>> want(sessions.size());
  for (std::size_t m = 0; m < sessions.size(); ++m) {
    for (int i = 0; i < kPerModel; ++i) {
      ins[m].push_back(
          make_input(*sessions[m], 200 + static_cast<std::uint64_t>(i)));
      want[m].emplace_back(
          static_cast<std::size_t>(sessions[m]->output_elems()));
      sessions[m]->run(0, ins[m].back().data(), want[m].back().data());
    }
  }

  for (const int shards : {1, 3}) {
    SchedulerConfig cfg;
    cfg.max_batch = 4;
    cfg.batch_usecs = 200;
    cfg.shards = shards;
    RequestScheduler sched(cfg);
    EXPECT_EQ(sched.shard_count(), shards);
    std::vector<std::vector<std::vector<float>>> got(sessions.size());
    std::vector<RequestHandle> handles;
    for (std::size_t m = 0; m < sessions.size(); ++m) {
      for (int i = 0; i < kPerModel; ++i) {
        got[m].emplace_back(
            static_cast<std::size_t>(sessions[m]->output_elems()));
        handles.push_back(sched.submit(sessions[m],
                                       ins[m][static_cast<std::size_t>(i)].data(),
                                       got[m].back().data()));
      }
    }
    for (auto& h : handles) {
      ASSERT_TRUE(h.ok());
      h.wait();
    }
    for (std::size_t m = 0; m < sessions.size(); ++m) {
      for (int i = 0; i < kPerModel; ++i) {
        EXPECT_EQ(0,
                  std::memcmp(want[m][static_cast<std::size_t>(i)].data(),
                              got[m][static_cast<std::size_t>(i)].data(),
                              want[m][static_cast<std::size_t>(i)].size() *
                                  sizeof(float)))
            << sessions[m]->name() << " request " << i << " shards " << shards;
      }
    }
    std::uint64_t total = 0;
    for (const auto& st : sched.stats()) total += st.requests;
    EXPECT_EQ(total,
              static_cast<std::uint64_t>(sessions.size()) * kPerModel);
  }
}

TEST(Scheduler, StealingDrainsABackloggedSiblingCorrectly) {
  // Every session pinned to shard 0: shard 1 has an empty queue and may
  // only serve by stealing. All requests must complete bitwise-correct no
  // matter which shard executed them (lanes are identical replicas).
  auto s = make_mlp_session("mlp_steal", tiny_mlp(), /*lanes=*/2, 71);
  s->pin_partition(0);
  const auto in = make_input(*s, 9);
  std::vector<float> want(static_cast<std::size_t>(s->output_elems()));
  s->run(0, in.data(), want.data());

  SchedulerConfig cfg;
  cfg.max_batch = 2;
  cfg.batch_usecs = 0;
  cfg.shards = 2;
  cfg.steal = true;
  RequestScheduler sched(cfg);
  constexpr int kReqs = 48;
  std::vector<std::vector<float>> outs(
      kReqs, std::vector<float>(static_cast<std::size_t>(s->output_elems())));
  std::vector<RequestHandle> handles;
  for (int i = 0; i < kReqs; ++i) {
    handles.push_back(
        sched.submit(s, in.data(), outs[static_cast<std::size_t>(i)].data()));
  }
  for (auto& h : handles) h.wait();
  for (int i = 0; i < kReqs; ++i) {
    EXPECT_EQ(0, std::memcmp(want.data(),
                             outs[static_cast<std::size_t>(i)].data(),
                             want.size() * sizeof(float)))
        << "request " << i;
  }
  const auto stats = sched.stats();
  ASSERT_EQ(stats.size(), 1u);
  EXPECT_EQ(stats[0].requests, static_cast<std::uint64_t>(kReqs));
  // Stolen work is bounded by what existed; shard 0 never steals (its own
  // queue holds everything). Stealing itself is timing-dependent, so only
  // the invariants are asserted, not a minimum count.
  EXPECT_EQ(sched.steals(0), 0u);
  EXPECT_LE(sched.steals(1), static_cast<std::uint64_t>(kReqs));
  sched.shutdown();
}

TEST(Scheduler, DisabledStealingKeepsWorkOnTheHomeShard) {
  auto s = make_mlp_session("mlp_nosteal", tiny_mlp(), /*lanes=*/2, 72);
  s->pin_partition(0);
  const auto in = make_input(*s, 10);
  SchedulerConfig cfg;
  cfg.max_batch = 2;
  cfg.batch_usecs = 0;
  cfg.shards = 2;
  cfg.steal = false;
  RequestScheduler sched(cfg);
  std::vector<float> out(static_cast<std::size_t>(s->output_elems()));
  for (int i = 0; i < 8; ++i) {
    auto h = sched.submit(s, in.data(), out.data());
    h.wait();
  }
  EXPECT_EQ(sched.steals(0), 0u);
  EXPECT_EQ(sched.steals(1), 0u);
}

TEST(Session, PinPartitionIsStickyAndFirstWins) {
  auto s = make_mlp_session("mlp_pin", tiny_mlp(), /*lanes=*/1, 73);
  EXPECT_EQ(s->partition(), -1);
  // The CAS path stores the raw routing hint (the scheduler normalizes its
  // own inputs); executors wrap it modulo the real partition count.
  EXPECT_EQ(s->pin_partition_if_unpinned(2), 2);
  EXPECT_EQ(s->pin_partition_if_unpinned(5), 2);  // already pinned: kept
  // The explicit pin stores the raw routing hint too — the shard-homing
  // domain may exceed the pool partition count (watchdog failover re-homes
  // sessions across shards even on a 1-partition pool); only the warmup
  // itself wraps to a real partition.
  s->pin_partition(1);
  EXPECT_EQ(s->partition(), 1);
}

TEST(ModelRegistry, RegistrationPinsSessionsToPartitions) {
  ModelRegistry reg;
  auto a = make_mlp_session("mlp_rr_a", tiny_mlp(), 1, 81);
  auto b = make_mlp_session("mlp_rr_b", tiny_mlp(), 1, 82);
  auto c = make_mlp_session("mlp_rr_c", tiny_mlp(), 1, 83);
  reg.add(a);               // round-robin
  reg.add(b);               // round-robin
  reg.add(c, /*partition=*/0);  // explicit
  const int nparts = pool_partitions();
  EXPECT_EQ(a->partition(), 0 % nparts);
  EXPECT_EQ(b->partition(), 1 % nparts);
  EXPECT_EQ(c->partition(), 0);
}

// --- scheduler: concurrent mixed traffic -------------------------------------

TEST(Scheduler, ConcurrentProducersAcrossModels) {
  // N producer threads x M models, all in flight at once; every request
  // must complete with the bitwise-correct result. This is the test the CI
  // ThreadSanitizer job leans on.
  std::vector<std::shared_ptr<Session>> sessions = {
      make_mlp_session("mlp_mix", tiny_mlp(), /*lanes=*/4, 41),
      make_bert_session("bert_mix", tiny_bert(), /*lanes=*/4, 42),
      make_llm_session("llm_mix", tiny_llm(), 4, 2, /*lanes=*/4, 43),
  };
  constexpr int kProducers = 4, kPerProducer = 12;

  // Reference outputs for one shared input per model.
  std::vector<std::vector<float>> ins, want;
  for (auto& s : sessions) {
    ins.push_back(make_input(*s, 50));
    want.emplace_back(static_cast<std::size_t>(s->output_elems()));
    s->run(0, ins.back().data(), want.back().data());
  }

  SchedulerConfig cfg;
  cfg.max_batch = 4;
  cfg.batch_usecs = 200;
  RequestScheduler sched(cfg);
  std::atomic<int> mismatches{0};
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        const std::size_t m =
            static_cast<std::size_t>(p + i) % sessions.size();
        std::vector<float> out(
            static_cast<std::size_t>(sessions[m]->output_elems()));
        auto h = sched.submit(sessions[m], ins[m].data(), out.data());
        ASSERT_TRUE(h.ok());
        h.wait();
        if (std::memcmp(want[m].data(), out.data(),
                        want[m].size() * sizeof(float)) != 0) {
          mismatches.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : producers) t.join();
  EXPECT_EQ(mismatches.load(), 0);

  std::uint64_t total = 0;
  for (const auto& st : sched.stats()) {
    total += st.requests;
    EXPECT_GE(st.pending_highwater, 1u);
    EXPECT_GT(st.mean_latency_us(), 0.0);
  }
  EXPECT_EQ(total, static_cast<std::uint64_t>(kProducers) * kPerProducer);
  EXPECT_GE(sched.queue_depth_highwater(), 1u);
}

// --- failure semantics: firewalls, quarantine, deadlines, shedding ----------

namespace fault = plt::common::fault;

// Scripted model: 4-elem passthrough (out = 2 * in) that can be told to
// throw. No kernels, no warmup — failure-path tests stay fast and exact.
class ScriptedSession final : public Session {
 public:
  ScriptedSession(const std::string& name, int lanes)
      : Session(name, lanes, /*input_elems=*/4, /*output_elems=*/4,
                /*flops=*/1.0) {}

  std::atomic<bool> fail{false};
  std::atomic<int> runs{0};

  void run(int, const float* in, float* out) override {
    runs.fetch_add(1);
    if (fail.load()) {
      throw RuntimeError(StatusCode::kInternal, "scripted failure");
    }
    for (int i = 0; i < 4; ++i) out[i] = 2.0f * in[i];
  }
};

// Blocks inside run() until released: parks the dispatcher mid-batch so
// tests can deterministically stack work up behind it.
class BlockingSession final : public Session {
 public:
  explicit BlockingSession(const std::string& name)
      : Session(name, /*lanes=*/1, 4, 4, 1.0) {}

  std::atomic<bool> entered{false};

  void run(int, const float*, float*) override {
    entered.store(true, std::memory_order_release);
    std::unique_lock<std::mutex> lk(mu_);
    cv_.wait(lk, [&] { return released_; });
  }

  void release() {
    {
      std::lock_guard<std::mutex> g(mu_);
      released_ = true;
    }
    cv_.notify_all();
  }

  void await_entered() {
    while (!entered.load(std::memory_order_acquire)) {
      std::this_thread::yield();
    }
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  bool released_ = false;
};

TEST(SchedulerFailure, PoisonedRequestFailsAloneAndQuarantines) {
  auto bad = std::make_shared<ScriptedSession>("scripted_bad", 4);
  auto good = std::make_shared<ScriptedSession>("scripted_good", 4);
  SchedulerConfig cfg;
  cfg.max_batch = 4;
  cfg.batch_usecs = 200;
  cfg.shards = 1;
  cfg.quarantine = true;
  RequestScheduler sched(cfg);

  const float in[4] = {1.0f, 2.0f, 3.0f, 4.0f};
  float out_bad[4] = {0};
  float out_good[4] = {0};

  bad->fail.store(true);
  auto h_bad = sched.submit(bad, in, out_bad);
  auto h_good = sched.submit(good, in, out_good);
  ASSERT_TRUE(h_bad.ok());
  ASSERT_TRUE(h_good.ok());
  h_bad.wait();
  h_good.wait();

  // The poisoned request fails its OWN handle; the other session's request
  // (in flight at the same time) completes normally.
  EXPECT_EQ(h_bad.status().code(), StatusCode::kInternal);
  EXPECT_NE(h_bad.status().message().find("scripted failure"),
            std::string::npos);
  EXPECT_TRUE(h_good.status().ok());
  EXPECT_EQ(out_good[2], 6.0f);

  // The faulted session is quarantined: unhealthy, and new submits are
  // rejected kUnavailable without executing anything.
  EXPECT_FALSE(bad->healthy());
  EXPECT_TRUE(good->healthy());
  bad->fail.store(false);
  const int runs_before = bad->runs.load();
  auto h_rej = sched.submit(bad, in, out_bad);
  EXPECT_FALSE(h_rej.ok());
  EXPECT_TRUE(h_rej.done());
  EXPECT_EQ(h_rej.status().code(), StatusCode::kUnavailable);
  EXPECT_NE(h_rej.status().message().find("quarantined"), std::string::npos);
  EXPECT_EQ(bad->runs.load(), runs_before);

  // The healthy session keeps serving, and mark_healthy re-admits.
  auto h2 = sched.submit(good, in, out_good);
  h2.wait();
  EXPECT_TRUE(h2.status().ok());
  bad->mark_healthy();
  auto h3 = sched.submit(bad, in, out_bad);
  ASSERT_TRUE(h3.ok());
  h3.wait();
  EXPECT_TRUE(h3.status().ok());
  EXPECT_EQ(out_bad[3], 8.0f);

  sched.shutdown();
  const auto c = sched.counters();
  EXPECT_EQ(c.submitted, 5u);
  EXPECT_EQ(c.completed, 3u);
  EXPECT_EQ(c.failed, 1u);
  EXPECT_EQ(c.rejected, 1u);
  EXPECT_EQ(c.completed + c.failed + c.expired + c.shed + c.rejected,
            c.submitted);
  // Per-model split mirrors the scheduler-wide counters.
  for (const auto& st : sched.stats()) {
    if (st.model == "scripted_bad") {
      EXPECT_EQ(st.requests, 1u);
      EXPECT_EQ(st.failed, 1u);
      EXPECT_EQ(st.rejected, 1u);
    }
  }
}

TEST(SchedulerFailure, QuarantineOffKeepsServingAFaultySession) {
  auto s = std::make_shared<ScriptedSession>("scripted_noq", 2);
  SchedulerConfig cfg;
  cfg.max_batch = 1;
  cfg.batch_usecs = 0;
  cfg.quarantine = false;
  RequestScheduler sched(cfg);
  const float in[4] = {1, 1, 1, 1};
  float out[4];
  s->fail.store(true);
  auto h1 = sched.submit(s, in, out);
  h1.wait();
  EXPECT_EQ(h1.status().code(), StatusCode::kInternal);
  EXPECT_TRUE(s->healthy());  // quarantine disabled: health untouched
  s->fail.store(false);
  auto h2 = sched.submit(s, in, out);
  ASSERT_TRUE(h2.ok());
  h2.wait();
  EXPECT_TRUE(h2.status().ok());
}

TEST(SchedulerDeadline, QueuedRequestExpiresWithoutExecuting) {
  auto blocker = std::make_shared<BlockingSession>("blocker_dl");
  auto victim = std::make_shared<ScriptedSession>("victim_dl", 2);
  SchedulerConfig cfg;
  cfg.max_batch = 1;  // the blocker flushes (and blocks) immediately
  cfg.batch_usecs = 0;
  cfg.shards = 1;
  cfg.steal = false;
  RequestScheduler sched(cfg);

  const float in[4] = {1, 2, 3, 4};
  float out_b[4];
  float out_v[4] = {-7.0f, -7.0f, -7.0f, -7.0f};
  auto h_block = sched.submit(blocker, in, out_b);
  ASSERT_TRUE(h_block.ok());
  blocker->await_entered();  // dispatcher is now stuck mid-batch

  SubmitOptions opts;
  opts.deadline_usecs = 1000;  // 1 ms, guaranteed to pass while queued
  auto h_victim = sched.submit(victim, in, out_v);
  auto h_dead = sched.submit(victim, in, out_v, opts);
  ASSERT_TRUE(h_dead.ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  blocker->release();
  h_dead.wait();
  h_victim.wait();

  // The expired request resolved kDeadlineExceeded WITHOUT running: its
  // output sentinel is untouched (the no-deadline sibling did run).
  EXPECT_EQ(h_dead.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_TRUE(h_victim.status().ok());
  EXPECT_EQ(out_v[0], 2.0f);
  sched.shutdown();
  const auto c = sched.counters();
  EXPECT_EQ(c.submitted, 3u);
  EXPECT_EQ(c.expired, 1u);
  EXPECT_EQ(c.completed, 2u);
}

TEST(SchedulerDeadline, PendingPartialBatchExpiresPromptly) {
  // One request in a partial batch (max_batch 4) with a huge batching
  // window: the dispatcher's sleep must wake at the REQUEST deadline, not
  // the batch deadline.
  auto s = std::make_shared<ScriptedSession>("victim_wake", 4);
  SchedulerConfig cfg;
  cfg.max_batch = 4;
  cfg.batch_usecs = 10000000;  // 10 s batching window
  cfg.shards = 1;
  RequestScheduler sched(cfg);
  const float in[4] = {1, 2, 3, 4};
  float out[4] = {-7.0f, -7.0f, -7.0f, -7.0f};
  SubmitOptions opts;
  opts.deadline_usecs = 20000;  // 20 ms
  const auto t0 = std::chrono::steady_clock::now();
  auto h = sched.submit(s, in, out, opts);
  ASSERT_TRUE(h.ok());
  h.wait();
  const double waited_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - t0)
          .count();
  EXPECT_EQ(h.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(out[0], -7.0f);      // never executed
  EXPECT_LT(waited_ms, 5000.0);  // resolved at ~20 ms, not the 10 s window
  EXPECT_EQ(s->runs.load(), 0);
}

TEST(SchedulerShedding, SaturatedQueueShedsPastDeadlineSubmit) {
  auto blocker = std::make_shared<BlockingSession>("blocker_shed");
  auto s = std::make_shared<ScriptedSession>("victim_shed", 2);
  SchedulerConfig cfg;
  cfg.max_batch = 1;
  cfg.batch_usecs = 0;
  cfg.queue_capacity = 2;
  cfg.shards = 1;
  cfg.steal = false;
  RequestScheduler sched(cfg);
  const float in[4] = {1, 1, 1, 1};
  float out[4];
  auto h_block = sched.submit(blocker, in, out);
  blocker->await_entered();
  // Fill the admission queue while the dispatcher is stuck.
  std::vector<RequestHandle> queued;
  float outs[2][4];
  queued.push_back(sched.submit(s, in, outs[0]));
  queued.push_back(sched.submit(s, in, outs[1]));
  // Saturated queue + deadline that lapses while blocked: shed, newest first
  // — the queued requests are untouched.
  SubmitOptions opts;
  opts.deadline_usecs = 1000;
  float out_shed[4] = {-7.0f, -7.0f, -7.0f, -7.0f};
  auto h_shed = sched.submit(s, in, out_shed, opts);
  EXPECT_FALSE(h_shed.ok());
  EXPECT_TRUE(h_shed.done());
  EXPECT_EQ(h_shed.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(out_shed[0], -7.0f);
  blocker->release();
  for (auto& h : queued) {
    h.wait();
    EXPECT_TRUE(h.status().ok());
  }
  sched.shutdown();
  const auto c = sched.counters();
  EXPECT_EQ(c.shed, 1u);
  EXPECT_EQ(c.completed + c.failed + c.expired + c.shed + c.rejected,
            c.submitted);
}

TEST(SchedulerShedding, SubmitTimeoutShedsWithoutADeadline) {
  auto blocker = std::make_shared<BlockingSession>("blocker_to");
  auto s = std::make_shared<ScriptedSession>("victim_to", 2);
  SchedulerConfig cfg;
  cfg.max_batch = 1;
  cfg.batch_usecs = 0;
  cfg.queue_capacity = 2;
  cfg.shards = 1;
  cfg.steal = false;
  cfg.submit_timeout_usecs = 2000;  // 2 ms bound on submit blocking
  RequestScheduler sched(cfg);
  const float in[4] = {1, 1, 1, 1};
  float out[4];
  auto h_block = sched.submit(blocker, in, out);
  blocker->await_entered();
  float outs[2][4];
  std::vector<RequestHandle> queued;
  queued.push_back(sched.submit(s, in, outs[0]));
  queued.push_back(sched.submit(s, in, outs[1]));
  auto h_shed = sched.submit(s, in, out);  // no deadline: timeout governs
  EXPECT_FALSE(h_shed.ok());
  EXPECT_EQ(h_shed.status().code(), StatusCode::kResourceExhausted);
  blocker->release();
  for (auto& h : queued) h.wait();
  sched.shutdown();
}

TEST(SchedulerShutdown, RejectedHandleCarriesUnavailable) {
  auto s = std::make_shared<ScriptedSession>("scripted_rej", 1);
  RequestScheduler sched{SchedulerConfig{}};
  sched.shutdown();
  const float in[4] = {0, 0, 0, 0};
  float out[4];
  auto h = sched.submit(s, in, out);
  EXPECT_FALSE(h.ok());
  EXPECT_TRUE(h.done());
  EXPECT_EQ(h.status().code(), StatusCode::kUnavailable);
  EXPECT_EQ(s->runs.load(), 0);
  const auto c = sched.counters();
  EXPECT_EQ(c.submitted, 1u);
  EXPECT_EQ(c.rejected, 1u);
}

TEST(SchedulerShutdown, DestructorWithQueuedRequestsResolvesEveryHandle) {
  auto s = std::make_shared<ScriptedSession>("scripted_dtor", 2);
  const float in[4] = {1, 2, 3, 4};
  constexpr int kReqs = 24;
  float outs[kReqs][4];
  std::vector<RequestHandle> handles;
  {
    SchedulerConfig cfg;
    cfg.max_batch = 2;
    cfg.batch_usecs = 1000;
    RequestScheduler sched(cfg);
    for (int i = 0; i < kReqs; ++i) {
      handles.push_back(sched.submit(s, in, outs[i]));
    }
    // Destructor implies shutdown(): drains the queue, completes everything.
  }
  for (auto& h : handles) {
    EXPECT_TRUE(h.done());
    EXPECT_TRUE(h.status().ok());
  }
  EXPECT_EQ(s->runs.load(), kReqs);
}

TEST(SchedulerShutdown, SubmitRacingShutdownResolvesEveryHandleExactlyOnce) {
  auto s = std::make_shared<ScriptedSession>("scripted_race", 4);
  SchedulerConfig cfg;
  cfg.max_batch = 4;
  cfg.batch_usecs = 0;
  RequestScheduler sched(cfg);
  constexpr int kProducers = 4, kPerProducer = 50;
  const float in[4] = {1, 1, 1, 1};
  static float sink[kProducers][4];  // rejected requests never write anyway
  std::vector<std::vector<RequestHandle>> handles(kProducers);
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        handles[static_cast<std::size_t>(p)].push_back(
            sched.submit(s, in, sink[p]));
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::microseconds(200));
  sched.shutdown();  // races the producers mid-submit
  for (auto& t : producers) t.join();

  std::uint64_t ok = 0, rejected = 0;
  for (auto& per : handles) {
    for (auto& h : per) {
      h.wait();
      EXPECT_TRUE(h.done());
      if (h.status().ok()) {
        ++ok;
        EXPECT_TRUE(h.ok());
      } else {
        ++rejected;
        EXPECT_EQ(h.status().code(), StatusCode::kUnavailable);
        EXPECT_FALSE(h.ok());
      }
    }
  }
  const auto c = sched.counters();
  EXPECT_EQ(c.submitted,
            static_cast<std::uint64_t>(kProducers) * kPerProducer);
  EXPECT_EQ(c.completed, ok);
  EXPECT_EQ(c.rejected, rejected);
  EXPECT_EQ(c.completed + c.failed + c.expired + c.shed + c.rejected,
            c.submitted);
}

// --- registry: status lookup + quarantine ------------------------------------

TEST(ModelRegistry, LookupReturnsStatusAndQuarantineMarks) {
  ModelRegistry reg;
  auto s = make_mlp_session("mlp_lookup", tiny_mlp(), 1, 91);
  reg.add(s);

  auto found = reg.lookup("mlp_lookup");
  ASSERT_TRUE(found.ok());
  EXPECT_EQ(found.value(), s);

  auto missing = reg.lookup("nope");
  EXPECT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(missing.value_or(nullptr), nullptr);

  EXPECT_EQ(reg.healthy_count(), 1u);
  EXPECT_EQ(reg.quarantine("nope", "x").code(), StatusCode::kInvalidArgument);
  EXPECT_TRUE(reg.quarantine("mlp_lookup", "operator pulled it").ok());
  EXPECT_FALSE(s->healthy());
  EXPECT_EQ(s->health_reason(), "operator pulled it");
  EXPECT_EQ(reg.healthy_count(), 0u);
  // Quarantined sessions still resolve: callers decide on health.
  EXPECT_TRUE(reg.lookup("mlp_lookup").ok());
  s->mark_healthy();
  EXPECT_EQ(reg.healthy_count(), 1u);
}

TEST(ModelRegistry, LookupFaultSiteReportsUnavailable) {
  ModelRegistry reg;
  reg.add(make_mlp_session("mlp_flt", tiny_mlp(), 1, 92));
  fault::configure("registry_lookup:fail:1.0", 3);
  auto r = reg.lookup("mlp_flt");
  fault::reset();
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kUnavailable);
  EXPECT_TRUE(reg.lookup("mlp_flt").ok());  // disarmed: resolves again
}

// --- chaos: the ISSUE acceptance scenario ------------------------------------

// >= 1000 mixed-model requests on 2 shards with kernel faults injected at a
// seeded rate. The process must never terminate, every handle must resolve
// to exactly one terminal status, the terminal counters must account for
// every submit exactly, and every OK output must be bitwise-identical to the
// fault-free reference. Spec/seed are overridable from the environment (the
// CI chaos job varies them); sessions are built BEFORE arming so
// construction never draws chaos events.
TEST(SchedulerChaos, InjectedKernelFaultsNeverCrashAndAccountExactly) {
  fault::reset();  // construction below must not draw env-armed events
  std::vector<std::shared_ptr<Session>> sessions = {
      make_mlp_session("mlp_chaos", tiny_mlp(), /*lanes=*/4, 311),
      make_bert_session("bert_chaos", tiny_bert(), /*lanes=*/4, 312),
  };
  sessions[0]->pin_partition(0);
  sessions[1]->pin_partition(1);
  constexpr int kPerModel = 520;  // 1040 total
  constexpr int kInputs = 8;      // distinct inputs, cycled

  // Fault-free references.
  std::vector<std::vector<std::vector<float>>> ins(sessions.size());
  std::vector<std::vector<std::vector<float>>> want(sessions.size());
  for (std::size_t m = 0; m < sessions.size(); ++m) {
    for (int i = 0; i < kInputs; ++i) {
      ins[m].push_back(
          make_input(*sessions[m], 900 + static_cast<std::uint64_t>(i)));
      want[m].emplace_back(
          static_cast<std::size_t>(sessions[m]->output_elems()));
      sessions[m]->run(0, ins[m].back().data(), want[m].back().data());
    }
  }

  const std::string spec =
      common::env_str("PLT_FAULT_SPEC", "kernel_exec:throw:0.05");
  const std::uint64_t seed =
      static_cast<std::uint64_t>(common::env_int("PLT_FAULT_SEED", 7));
  fault::configure(spec, seed);

  SchedulerConfig cfg;
  cfg.max_batch = 4;
  cfg.batch_usecs = 200;
  cfg.shards = 2;
  cfg.quarantine = false;  // keep faulted sessions serving: rate, not gate
  {
    RequestScheduler sched(cfg);
    std::vector<RequestHandle> handles;
    std::vector<std::vector<float>> outs;
    std::vector<std::pair<std::size_t, int>> tags;  // (model, input index)
    outs.reserve(sessions.size() * kPerModel);
    for (int i = 0; i < kPerModel; ++i) {
      for (std::size_t m = 0; m < sessions.size(); ++m) {
        outs.emplace_back(
            static_cast<std::size_t>(sessions[m]->output_elems()));
        tags.emplace_back(m, i % kInputs);
        handles.push_back(sched.submit(sessions[m],
                                       ins[m][tags.back().second].data(),
                                       outs.back().data()));
      }
    }
    std::uint64_t ok = 0, failed = 0;
    for (std::size_t i = 0; i < handles.size(); ++i) {
      handles[i].wait();
      ASSERT_TRUE(handles[i].done());
      const Status st = handles[i].status();
      if (st.ok()) {
        ++ok;
        const auto [m, k] = tags[i];
        ASSERT_EQ(0, std::memcmp(want[m][static_cast<std::size_t>(k)].data(),
                                 outs[i].data(),
                                 outs[i].size() * sizeof(float)))
            << sessions[m]->name() << " request " << i
            << " (OK output diverged from the fault-free reference)";
      } else {
        ++failed;
        EXPECT_EQ(st.code(), StatusCode::kInternal) << st.to_string();
        EXPECT_NE(st.message().find("injected fault"), std::string::npos);
      }
    }
    fault::reset();
    sched.shutdown();
    const auto c = sched.counters();
    EXPECT_EQ(c.submitted, handles.size());
    EXPECT_EQ(c.completed, ok);
    EXPECT_EQ(c.failed, failed);
    EXPECT_EQ(c.completed + c.failed + c.expired + c.shed + c.rejected,
              c.submitted);
    // With the default 5% spec some faults should actually have fired; a
    // custom env spec may legitimately produce zero (e.g. queue_push only).
    if (spec == "kernel_exec:throw:0.05") {
      EXPECT_GT(failed, 0u);
      EXPECT_LT(failed, handles.size() / 4);
    }
  }
  fault::reset();
}

TEST(SchedulerChaos, QuarantineIsolatesFaultedSessionAndRecovers) {
  fault::reset();
  auto victim = make_mlp_session("mlp_chaos_q", tiny_mlp(), /*lanes=*/2, 313);
  auto bystander = std::make_shared<ScriptedSession>("scripted_chaos_q", 2);
  SchedulerConfig cfg;
  cfg.max_batch = 1;
  cfg.batch_usecs = 0;
  cfg.quarantine = true;
  RequestScheduler sched(cfg);

  const auto in = make_input(*victim, 77);
  std::vector<float> out(static_cast<std::size_t>(victim->output_elems()));
  const float sin[4] = {1, 1, 1, 1};
  float sout[4];

  fault::configure("kernel_exec:throw:1.0", 1);
  auto h = sched.submit(victim, in.data(), out.data());
  ASSERT_TRUE(h.ok());
  h.wait();
  fault::reset();
  EXPECT_EQ(h.status().code(), StatusCode::kInternal);
  EXPECT_FALSE(victim->healthy());

  // Victim rejected; the bystander session is untouched by the quarantine.
  auto h_rej = sched.submit(victim, in.data(), out.data());
  EXPECT_EQ(h_rej.status().code(), StatusCode::kUnavailable);
  auto h_by = sched.submit(bystander, sin, sout);
  h_by.wait();
  EXPECT_TRUE(h_by.status().ok());

  // Recovery: the lanes are stateless, so re-admission serves correctly.
  victim->mark_healthy();
  std::vector<float> want(static_cast<std::size_t>(victim->output_elems()));
  victim->run(0, in.data(), want.data());
  auto h_ok = sched.submit(victim, in.data(), out.data());
  ASSERT_TRUE(h_ok.ok());
  h_ok.wait();
  ASSERT_TRUE(h_ok.status().ok());
  EXPECT_EQ(0, std::memcmp(want.data(), out.data(),
                           want.size() * sizeof(float)));
  sched.shutdown();
  const auto c = sched.counters();
  EXPECT_EQ(c.completed + c.failed + c.expired + c.shed + c.rejected,
            c.submitted);
}

// --- typed submit API + handle contract ---------------------------------------

TEST(TypedSubmit, RequestAndLegacyShimAgree) {
  auto mlp = make_mlp_session("mlp_typed", tiny_mlp(), /*lanes=*/2, 21);
  SchedulerConfig cfg;
  cfg.shards = 1;
  RequestScheduler sched(cfg);

  const auto in = make_input(*mlp, 5);
  std::vector<float> out_new(static_cast<std::size_t>(mlp->output_elems()));
  std::vector<float> out_old(out_new.size());

  Request req;
  req.in = in.data();
  req.out = out_new.data();
  auto h_new = sched.submit(mlp, req);
  auto h_old = sched.submit(mlp, in.data(), out_old.data());
  h_new.wait();
  h_old.wait();
  ASSERT_TRUE(h_new.status().ok());
  ASSERT_TRUE(h_old.status().ok());
  EXPECT_EQ(0, std::memcmp(out_new.data(), out_old.data(),
                           out_new.size() * sizeof(float)));
  // Both went through the same class resolution: the MLP session default.
  EXPECT_EQ(h_new.request_class(), RequestClass::kThroughput);
  EXPECT_EQ(h_old.request_class(), RequestClass::kThroughput);
}

TEST(TypedSubmit, ClassResolvesFromSessionDefaultAndPerRequestOverride) {
  auto mlp = make_mlp_session("mlp_cls", tiny_mlp(), /*lanes=*/1, 22);
  auto llm = make_llm_session("llm_cls", tiny_llm(), /*prompt_len=*/4,
                              /*gen_tokens=*/2, /*lanes=*/1, 23);
  EXPECT_EQ(mlp->default_class(), RequestClass::kThroughput);
  EXPECT_EQ(llm->default_class(), RequestClass::kLatency);  // factory default

  ModelRegistry reg;
  reg.add(mlp);
  EXPECT_TRUE(reg.set_default_class("mlp_cls", RequestClass::kLatency).ok());
  EXPECT_EQ(mlp->default_class(), RequestClass::kLatency);
  EXPECT_EQ(reg.set_default_class("nope", RequestClass::kLatency).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(
      reg.set_default_class("mlp_cls", RequestClass::kSessionDefault).code(),
      StatusCode::kInvalidArgument);

  SchedulerConfig cfg;
  cfg.shards = 1;
  RequestScheduler sched(cfg);
  const auto in = make_input(*mlp, 6);
  std::vector<float> out(static_cast<std::size_t>(mlp->output_elems()));
  auto h_def = sched.submit(mlp, Request{in.data(), out.data()});
  EXPECT_EQ(h_def.request_class(), RequestClass::kLatency);
  Request req;
  req.in = in.data();
  req.out = out.data();
  req.cls = RequestClass::kThroughput;  // explicit beats the session default
  auto h_ovr = sched.submit(mlp, req);
  EXPECT_EQ(h_ovr.request_class(), RequestClass::kThroughput);
  h_def.wait();
  h_ovr.wait();
}

TEST(TypedSubmit, HandleReportsInFlightBeforeTerminal) {
  auto blocker = std::make_shared<BlockingSession>("blocking_inflight");
  SchedulerConfig cfg;
  cfg.max_batch = 1;
  cfg.batch_usecs = 0;
  cfg.shards = 1;
  RequestScheduler sched(cfg);

  const float in[4] = {1, 2, 3, 4};
  float out[4] = {0};
  auto h = sched.submit(blocker, Request{in, out});
  ASSERT_TRUE(h.ok());
  blocker->await_entered();
  // Mid-execution: the handle is not done and must NOT read as OK (the
  // pre-redesign wart) — it reports the distinct non-terminal kInFlight.
  EXPECT_FALSE(h.done());
  EXPECT_EQ(h.status().code(), StatusCode::kInFlight);
  EXPECT_FALSE(h.status().ok());
  blocker->release();
  h.wait();
  EXPECT_TRUE(h.status().ok());  // terminal now
  EXPECT_EQ(RequestHandle().status().code(), StatusCode::kUnavailable);
}

// --- priority classes ---------------------------------------------------------

// Appends its session name to a shared order log on every run: lets tests
// assert cross-session flush ordering.
class OrderSession final : public Session {
 public:
  OrderSession(const std::string& name, int lanes, std::mutex* mu,
               std::vector<std::string>* order)
      : Session(name, lanes, 4, 4, 1.0), mu_(mu), order_(order) {}

  void run(int, const float* in, float* out) override {
    {
      std::lock_guard<std::mutex> g(*mu_);
      order_->push_back(name());
    }
    for (int i = 0; i < 4; ++i) out[i] = in[i];
  }

 private:
  std::mutex* mu_;
  std::vector<std::string>* order_;
};

// A ready latency batch must overtake a throughput batch that formed earlier
// but has not flushed yet — and a blocked in-flight region is the worst the
// latency class ever waits for. The blocker parks the dispatcher mid-region
// while both classes stack up behind it; on release, the latency request
// must execute before every throughput request despite arriving last.
TEST(SchedulerPriority, ReadyLatencyOvertakesFormedThroughputBatch) {
  for (const bool priority : {true, false}) {
    auto blocker = std::make_shared<BlockingSession>(
        priority ? "blk_pri_on" : "blk_pri_off");
    std::mutex mu;
    std::vector<std::string> order;
    auto thr = std::make_shared<OrderSession>("thr", 4, &mu, &order);
    auto lat = std::make_shared<OrderSession>("lat", 4, &mu, &order);
    lat->set_default_class(RequestClass::kLatency);

    SchedulerConfig cfg;
    cfg.max_batch = 4;
    cfg.batch_usecs = 0;
    cfg.shards = 1;
    cfg.priority = priority;
    RequestScheduler sched(cfg);

    const float in[4] = {1, 1, 1, 1};
    float bout[4], touts[4][4], lout[4];
    auto hb = sched.submit(blocker, Request{in, bout});
    blocker->await_entered();  // dispatcher is pinned inside a region
    std::vector<RequestHandle> hs;
    for (auto& tout : touts) {
      hs.push_back(sched.submit(thr, Request{in, tout}));
    }
    hs.push_back(sched.submit(lat, Request{in, lout}));  // arrives LAST
    blocker->release();
    for (auto& h : hs) h.wait();
    hb.wait();

    std::lock_guard<std::mutex> g(mu);
    ASSERT_EQ(order.size(), 5u);
    if (priority) {
      // Latency first, past one in-flight region, despite 4 queued
      // throughput requests ahead of it.
      EXPECT_EQ(order.front(), "lat");
    } else {
      // Class-blind FIFO control: the older throughput group flushes first.
      EXPECT_EQ(order.back(), "lat");
    }
  }
}

// --- continuous batching ------------------------------------------------------

// Steppable scripted session: `steps` resumable steps per request, each
// logging (request id = in[0], step, lane). A gate can block inside one
// chosen (id, step) so tests can submit mid-stream deterministically.
class StepSession final : public Session {
 public:
  StepSession(const std::string& name, int lanes, int steps)
      : Session(name, lanes, 1, 1, 1.0), steps_(steps) {}

  struct Entry {
    int id, step, lane;
  };

  bool steppable() const override { return true; }
  int step_count(int tokens_per_step) const override {
    return tokens_per_step <= 0 ? 1 : steps_;
  }

  void run(int, const float* in, float* out) override {
    out[0] = in[0] + static_cast<float>(steps_);
  }

  void run_step(int lane, const float* in, float* out, int step,
                int tokens_per_step) override {
    if (tokens_per_step <= 0) {
      run(lane, in, out);
      return;
    }
    {
      std::lock_guard<std::mutex> g(mu_);
      log_.push_back({static_cast<int>(in[0]), step, lane});
    }
    if (static_cast<int>(in[0]) == gate_id_.load() &&
        step == gate_step_.load()) {
      entered_gate.store(true, std::memory_order_release);
      std::unique_lock<std::mutex> lk(gate_mu_);
      gate_cv_.wait(lk, [&] { return gate_open_; });
    }
    if (step + 1 == steps_) out[0] = in[0] + static_cast<float>(steps_);
  }

  void arm_gate(int id, int step) {
    gate_id_.store(id);
    gate_step_.store(step);
  }
  void open_gate() {
    {
      std::lock_guard<std::mutex> g(gate_mu_);
      gate_open_ = true;
    }
    gate_cv_.notify_all();
  }
  void await_gate() {
    while (!entered_gate.load(std::memory_order_acquire)) {
      std::this_thread::yield();
    }
  }
  std::vector<Entry> log() {
    std::lock_guard<std::mutex> g(mu_);
    return log_;
  }

  std::atomic<bool> entered_gate{false};

 private:
  int steps_;
  std::mutex mu_;
  std::vector<Entry> log_;
  std::atomic<int> gate_id_{-1};
  std::atomic<int> gate_step_{-1};
  std::mutex gate_mu_;
  std::condition_variable gate_cv_;
  bool gate_open_ = false;
};

// A request submitted while another is mid-decode joins the running batch at
// the NEXT token boundary — not after the stream finishes — and every
// request keeps one sticky lane across all of its steps.
TEST(SchedulerDecode, MidStreamSubmitJoinsAtTokenBoundary) {
  constexpr int kSteps = 4;
  auto sess = std::make_shared<StepSession>("step_join", /*lanes=*/2, kSteps);
  SchedulerConfig cfg;
  cfg.max_batch = 2;
  cfg.batch_usecs = 0;
  cfg.shards = 1;
  cfg.decode_step_tokens = 1;
  RequestScheduler sched(cfg);

  const float in_a[1] = {1.0f}, in_b[1] = {2.0f};
  float out_a[1] = {0}, out_b[1] = {0};
  sess->arm_gate(/*id=*/1, /*step=*/0);  // hold A inside its first step
  auto ha = sched.submit(sess, Request{in_a, out_a});
  sess->await_gate();
  auto hb = sched.submit(sess, Request{in_b, out_b});  // arrives mid-stream
  sess->open_gate();
  ha.wait();
  hb.wait();
  ASSERT_TRUE(ha.status().ok());
  ASSERT_TRUE(hb.status().ok());
  EXPECT_EQ(out_a[0], 1.0f + kSteps);
  EXPECT_EQ(out_b[0], 2.0f + kSteps);

  const auto log = sess->log();
  ASSERT_EQ(log.size(), 2u * kSteps);
  int lane_a = -1, lane_b = -1;
  std::size_t b_first = log.size(), a_last = 0;
  for (std::size_t i = 0; i < log.size(); ++i) {
    const auto& e = log[i];
    if (e.id == 1) {
      if (lane_a < 0) lane_a = e.lane;
      EXPECT_EQ(e.lane, lane_a) << "A hopped lanes mid-stream";
      if (e.step == kSteps - 1) a_last = i;
    } else {
      if (lane_b < 0) lane_b = e.lane;
      EXPECT_EQ(e.lane, lane_b) << "B hopped lanes mid-stream";
      if (e.step == 0) b_first = i;
    }
  }
  EXPECT_NE(lane_a, lane_b);  // exclusive lane ownership
  // The join: B's first step ran BEFORE A's last step — B did not wait for
  // A's stream to finish.
  EXPECT_LT(b_first, a_last);
}

// Stepped decode must be bitwise-identical to a monolithic run() — across
// decode granularities and shard counts (the ctest matrix adds runtimes).
TEST(SchedulerDecode, SteppedMatchesMonolithicBitwise) {
  auto llm = make_llm_session("llm_stepwise", tiny_llm(), /*prompt_len=*/4,
                              /*gen_tokens=*/5, /*lanes=*/2, 31);
  constexpr int kReqs = 6;
  std::vector<std::vector<float>> ins, want;
  for (int i = 0; i < kReqs; ++i) {
    ins.push_back(make_input(*llm, 400 + static_cast<std::uint64_t>(i)));
    want.emplace_back(static_cast<std::size_t>(llm->output_elems()));
    llm->run(0, ins.back().data(), want.back().data());  // monolithic ref
  }
  for (const int tps : {1, 3, 0}) {
    for (const int shards : {1, 2}) {
      SchedulerConfig cfg;
      cfg.max_batch = 2;
      cfg.batch_usecs = 100;
      cfg.shards = shards;
      cfg.decode_step_tokens = tps;
      RequestScheduler sched(cfg);
      std::vector<std::vector<float>> outs(
          kReqs,
          std::vector<float>(static_cast<std::size_t>(llm->output_elems())));
      std::vector<RequestHandle> hs;
      for (int i = 0; i < kReqs; ++i) {
        hs.push_back(sched.submit(
            llm, Request{ins[static_cast<std::size_t>(i)].data(),
                         outs[static_cast<std::size_t>(i)].data()}));
      }
      for (auto& h : hs) h.wait();
      for (int i = 0; i < kReqs; ++i) {
        ASSERT_TRUE(hs[static_cast<std::size_t>(i)].status().ok());
        EXPECT_EQ(0,
                  std::memcmp(want[static_cast<std::size_t>(i)].data(),
                              outs[static_cast<std::size_t>(i)].data(),
                              want[static_cast<std::size_t>(i)].size() *
                                  sizeof(float)))
            << "tps=" << tps << " shards=" << shards << " req=" << i;
      }
      sched.shutdown();
      const auto stats = sched.stats();
      ASSERT_EQ(stats.size(), 1u);
      if (tps > 0) {
        EXPECT_GT(stats[0].decode_steps, 0u);  // stepped path actually ran
      } else {
        EXPECT_EQ(stats[0].decode_steps, 0u);  // 0 = monolithic, by contract
        EXPECT_GT(stats[0].batches, 0u);
      }
    }
  }
}

// Chaos with stepped requests in flight: exact terminal accounting and
// bitwise-correct OK outputs must survive faults that fire mid-decode.
TEST(SchedulerChaos, SteppedRequestsKeepExactAccountingUnderFaults) {
  fault::reset();
  auto llm = make_llm_session("llm_chaos_step", tiny_llm(), /*prompt_len=*/4,
                              /*gen_tokens=*/4, /*lanes=*/4, 317);
  auto mlp = make_mlp_session("mlp_chaos_step", tiny_mlp(), /*lanes=*/4, 318);
  llm->pin_partition(0);
  mlp->pin_partition(1);
  std::vector<std::shared_ptr<Session>> sessions = {llm, mlp};
  constexpr int kPerModel = 120;
  constexpr int kInputs = 4;

  std::vector<std::vector<std::vector<float>>> ins(sessions.size());
  std::vector<std::vector<std::vector<float>>> want(sessions.size());
  for (std::size_t m = 0; m < sessions.size(); ++m) {
    for (int i = 0; i < kInputs; ++i) {
      ins[m].push_back(
          make_input(*sessions[m], 700 + static_cast<std::uint64_t>(i)));
      want[m].emplace_back(
          static_cast<std::size_t>(sessions[m]->output_elems()));
      sessions[m]->run(0, ins[m].back().data(), want[m].back().data());
    }
  }

  fault::configure("kernel_exec:throw:0.02", 11);
  SchedulerConfig cfg;
  cfg.max_batch = 4;
  cfg.batch_usecs = 200;
  cfg.shards = 2;
  cfg.decode_step_tokens = 1;  // llm requests run stepped
  cfg.quarantine = false;
  {
    RequestScheduler sched(cfg);
    std::vector<RequestHandle> handles;
    std::vector<std::vector<float>> outs;
    std::vector<std::pair<std::size_t, int>> tags;
    for (int i = 0; i < kPerModel; ++i) {
      for (std::size_t m = 0; m < sessions.size(); ++m) {
        outs.emplace_back(
            static_cast<std::size_t>(sessions[m]->output_elems()));
        tags.emplace_back(m, i % kInputs);
        handles.push_back(
            sched.submit(sessions[m],
                         Request{ins[m][tags.back().second].data(),
                                 outs.back().data()}));
      }
    }
    std::uint64_t ok = 0, failed = 0;
    for (std::size_t i = 0; i < handles.size(); ++i) {
      handles[i].wait();
      ASSERT_TRUE(handles[i].done());
      const Status st = handles[i].status();
      if (st.ok()) {
        ++ok;
        const auto [m, k] = tags[i];
        ASSERT_EQ(0, std::memcmp(want[m][static_cast<std::size_t>(k)].data(),
                                 outs[i].data(),
                                 outs[i].size() * sizeof(float)))
            << sessions[m]->name() << " request " << i;
      } else {
        ++failed;
        EXPECT_EQ(st.code(), StatusCode::kInternal) << st.to_string();
      }
    }
    fault::reset();
    sched.shutdown();
    const auto c = sched.counters();
    EXPECT_EQ(c.submitted, handles.size());
    EXPECT_EQ(c.completed, ok);
    EXPECT_EQ(c.failed, failed);
    EXPECT_EQ(c.completed + c.failed + c.expired + c.shed + c.rejected,
              c.submitted);
    // The llm session must actually have taken the stepped path.
    for (const auto& st : sched.stats()) {
      if (st.model == "llm_chaos_step") EXPECT_GT(st.decode_steps, 0u);
    }
  }
  fault::reset();
}

// --- config knobs -------------------------------------------------------------

TEST(SchedulerConfigEnv, PriorityAndDecodeKnobsValidateWithFallback) {
  const SchedulerConfig def;
  ::setenv("PLT_SERVE_PRIORITY", "0", 1);
  ::setenv("PLT_SERVE_DECODE_STEP_TOKENS", "3", 1);
  SchedulerConfig good = SchedulerConfig::from_env();
  EXPECT_FALSE(good.priority);
  EXPECT_EQ(good.decode_step_tokens, 3);

  // Malformed / out-of-range values warn and fall back to the defaults.
  ::setenv("PLT_SERVE_PRIORITY", "maybe", 1);
  ::setenv("PLT_SERVE_DECODE_STEP_TOKENS", "-5", 1);
  SchedulerConfig bad = SchedulerConfig::from_env();
  EXPECT_EQ(bad.priority, def.priority);
  EXPECT_EQ(bad.decode_step_tokens, def.decode_step_tokens);

  ::setenv("PLT_SERVE_DECODE_STEP_TOKENS", "99999", 1);  // > 4096 cap
  EXPECT_EQ(SchedulerConfig::from_env().decode_step_tokens,
            def.decode_step_tokens);

  ::unsetenv("PLT_SERVE_PRIORITY");
  ::unsetenv("PLT_SERVE_DECODE_STEP_TOKENS");
}

}  // namespace
}  // namespace plt::serving
