#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <set>

#include "parlooper/loop_spec.hpp"
#include "tuner/tuner.hpp"

namespace plt::tuner {
namespace {

perfmodel::GemmModelProblem small_problem() {
  perfmodel::GemmModelProblem p;
  p.M = 128;
  p.N = 128;
  p.K = 128;
  p.bm = p.bn = p.bk = 32;  // 4 blocks per dim
  return p;
}

TEST(SpecGenerator, CandidatesAreValidSpecs) {
  const auto p = small_problem();
  SpecGenOptions opts;
  opts.max_candidates = 48;
  const auto cands = generate_gemm_candidates(p, opts);
  ASSERT_FALSE(cands.empty());
  for (const TuneCandidate& c : cands) {
    std::vector<parlooper::LoopSpecs> loops = {
        parlooper::LoopSpecs{0, p.K / p.bk, p.k_step, c.k_blocking},
        parlooper::LoopSpecs{0, p.M / p.bm, 1, c.m_blocking},
        parlooper::LoopSpecs{0, p.N / p.bn, 1, c.n_blocking}};
    const auto parsed = parlooper::parse_loop_spec(c.spec, 3);
    EXPECT_EQ(parlooper::validate_spec(parsed, loops), "") << c.spec;
  }
}

TEST(SpecGenerator, EveryCandidateIsParallelByDefault) {
  const auto cands = generate_gemm_candidates(small_problem(), SpecGenOptions{});
  for (const TuneCandidate& c : cands) {
    bool has_upper = false;
    for (char ch : c.spec) has_upper = has_upper || std::isupper(static_cast<unsigned char>(ch));
    EXPECT_TRUE(has_upper) << c.spec;
  }
}

TEST(SpecGenerator, RespectsCandidateBudgetAndIsDeterministic) {
  SpecGenOptions opts;
  opts.max_candidates = 10;
  const auto a = generate_gemm_candidates(small_problem(), opts);
  const auto b = generate_gemm_candidates(small_problem(), opts);
  EXPECT_LE(a.size(), 10u);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i].spec, b[i].spec);
}

TEST(SpecGenerator, CandidatesAreUnique) {
  SpecGenOptions opts;
  opts.max_candidates = 200;
  const auto cands = generate_gemm_candidates(small_problem(), opts);
  std::set<std::string> keys;
  for (const TuneCandidate& c : cands) {
    std::string k = c.spec;
    for (auto v : c.k_blocking) k += "/" + std::to_string(v);
    for (auto v : c.m_blocking) k += "/" + std::to_string(v);
    for (auto v : c.n_blocking) k += "/" + std::to_string(v);
    EXPECT_TRUE(keys.insert(k).second) << k;
  }
}

TEST(GemmTuner, RunsAndRanksCandidates) {
  kernels::GemmConfig base;
  base.M = base.N = base.K = 128;
  base.bm = base.bn = base.bk = 32;
  SpecGenOptions gopts;
  gopts.max_candidates = 6;
  const auto cands = generate_gemm_candidates(small_problem(), gopts);
  ASSERT_GE(cands.size(), 2u);

  TuneOptions topts;
  topts.warmup = 0;
  topts.iters = 1;
  GemmTuner tuner(base, topts);
  double secs = 0.0;
  const auto results = tuner.run(cands, &secs);
  ASSERT_EQ(results.size(), cands.size());
  EXPECT_GT(secs, 0.0);
  for (std::size_t i = 1; i < results.size(); ++i) {
    EXPECT_GE(results[i - 1].gflops, results[i].gflops);  // sorted best-first
  }
  for (const auto& r : results) EXPECT_GT(r.gflops, 0.0);
}

TEST(GemmTuner, ModelTopKReducesBenchmarkedSet) {
  kernels::GemmConfig base;
  base.M = base.N = base.K = 128;
  base.bm = base.bn = base.bk = 32;
  SpecGenOptions gopts;
  gopts.max_candidates = 12;
  const auto cands = generate_gemm_candidates(small_problem(), gopts);

  TuneOptions topts;
  topts.warmup = 0;
  topts.iters = 1;
  topts.model_top_k = 3;
  topts.model_threads = 4;
  GemmTuner tuner(base, topts);
  const auto results = tuner.run(cands);
  EXPECT_EQ(results.size(), 3u);
  for (const auto& r : results) EXPECT_GT(r.model_score, 0.0);
}

TEST(GemmTuner, CsvRoundTrip) {
  TuneResult r;
  r.candidate = TuneCandidate{"aBC", {}, {2}, {2}};
  r.seconds = 0.5;
  r.gflops = 12.5;
  const std::string path = "/tmp/plt_tuner_test.csv";
  GemmTuner::write_csv(path, {r});
  std::ifstream is(path);
  std::string header, line;
  std::getline(is, header);
  std::getline(is, line);
  EXPECT_NE(header.find("gflops"), std::string::npos);
  EXPECT_NE(line.find("aBC"), std::string::npos);
  EXPECT_NE(line.find("12.5"), std::string::npos);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace plt::tuner
