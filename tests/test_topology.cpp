// Topology-discovery tests: kernel cpulist parsing (well-formed and
// malformed), sysfs-style node-directory parsing against a mocked directory
// tree, and the PLT_TOPOLOGY_DIR detection override with its flat fallback.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "common/topology.hpp"

namespace plt::common {
namespace {

namespace fs = std::filesystem;

// --- cpulist parsing ---------------------------------------------------------

TEST(ParseCpuList, SinglesRangesAndMixes) {
  EXPECT_EQ(parse_cpu_list("0"), (std::vector<int>{0}));
  EXPECT_EQ(parse_cpu_list("7"), (std::vector<int>{7}));
  EXPECT_EQ(parse_cpu_list("0-3"), (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(parse_cpu_list("0-3,8,10-11"),
            (std::vector<int>{0, 1, 2, 3, 8, 10, 11}));
  EXPECT_EQ(parse_cpu_list("5-5"), (std::vector<int>{5}));
}

TEST(ParseCpuList, SysfsTrailingNewlineAndDedup) {
  EXPECT_EQ(parse_cpu_list("0-1\n"), (std::vector<int>{0, 1}));
  EXPECT_EQ(parse_cpu_list("2,0-2,1"), (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(parse_cpu_list("  \n"), (std::vector<int>{}));
  EXPECT_EQ(parse_cpu_list(""), (std::vector<int>{}));
}

TEST(ParseCpuList, MalformedInputsReturnEmpty) {
  EXPECT_TRUE(parse_cpu_list("a").empty());
  EXPECT_TRUE(parse_cpu_list("0-").empty());
  EXPECT_TRUE(parse_cpu_list("3-1").empty());   // inverted range
  EXPECT_TRUE(parse_cpu_list("0,,1").empty());  // empty piece
  EXPECT_TRUE(parse_cpu_list("0-2x").empty());  // trailing garbage
  EXPECT_TRUE(parse_cpu_list("-1").empty());    // negative
  EXPECT_TRUE(parse_cpu_list("0:3").empty());   // wrong separator
}

// --- mocked sysfs directory --------------------------------------------------

// Builds a sysfs-shaped node dir under a fresh temp root; removed on
// destruction. Layout mirrors /sys/devices/system/node: node<N>/cpulist
// files next to non-node entries that the parser must skip.
class MockNodeDir {
 public:
  MockNodeDir() {
    root_ = fs::temp_directory_path() /
            ("plt_topo_test_" + std::to_string(::getpid()) + "_" +
             std::to_string(counter_++));
    fs::create_directories(root_);
  }
  ~MockNodeDir() {
    std::error_code ec;
    fs::remove_all(root_, ec);
  }

  void add_node(int id, const std::string& cpulist) {
    const fs::path dir = root_ / ("node" + std::to_string(id));
    fs::create_directories(dir);
    std::ofstream os(dir / "cpulist");
    os << cpulist;
  }
  void add_noise() {
    fs::create_directories(root_ / "nodeX");  // non-numeric suffix
    fs::create_directories(root_ / "power");  // unrelated dir
    std::ofstream(root_ / "has_cpu") << "0-1\n";  // plain file
    fs::create_directories(root_ / "node9");      // node without cpulist
  }

  std::string path() const { return root_.string(); }

 private:
  fs::path root_;
  static int counter_;
};
int MockNodeDir::counter_ = 0;

TEST(Topology, FromDirParsesNodesAndSkipsNoise) {
  MockNodeDir mock;
  mock.add_node(1, "2-3\n");
  mock.add_node(0, "0-1\n");
  mock.add_noise();
  mock.add_node(2, "\n");       // empty cpulist: skipped
  mock.add_node(3, "oops\n");   // malformed cpulist: skipped

  const Topology topo = Topology::from_dir(mock.path());
  ASSERT_EQ(topo.nodes.size(), 2u);  // sorted by id, noise ignored
  EXPECT_EQ(topo.nodes[0].id, 0);
  EXPECT_EQ(topo.nodes[0].cpus, (std::vector<int>{0, 1}));
  EXPECT_EQ(topo.nodes[1].id, 1);
  EXPECT_EQ(topo.nodes[1].cpus, (std::vector<int>{2, 3}));
  EXPECT_EQ(topo.total_cpus(), 4);
}

TEST(Topology, FromDirOnMissingDirectoryIsEmpty) {
  EXPECT_TRUE(Topology::from_dir("/nonexistent/plt/nodes").nodes.empty());
}

TEST(Topology, DetectHonorsTopologyDirOverride) {
  MockNodeDir mock;
  mock.add_node(0, "0-3\n");
  mock.add_node(1, "4-7\n");
  ::setenv("PLT_TOPOLOGY_DIR", mock.path().c_str(), 1);
  const Topology topo = Topology::detect();
  ::unsetenv("PLT_TOPOLOGY_DIR");
  ASSERT_EQ(topo.nodes.size(), 2u);
  EXPECT_EQ(topo.total_cpus(), 8);
}

TEST(Topology, DetectFallsBackWhenOverrideIsUnusable) {
  ::setenv("PLT_TOPOLOGY_DIR", "/nonexistent/plt/nodes", 1);
  const Topology topo = Topology::detect();
  ::unsetenv("PLT_TOPOLOGY_DIR");
  // Never empty: one flat node covering every hardware thread.
  ASSERT_EQ(topo.nodes.size(), 1u);
  EXPECT_EQ(topo.nodes[0].id, 0);
  const unsigned hc = std::thread::hardware_concurrency();
  EXPECT_EQ(topo.total_cpus(),
            static_cast<int>(hc == 0 ? 1 : hc));
}

TEST(Topology, FallbackClampsToAtLeastOneCpu) {
  EXPECT_EQ(Topology::fallback(0).total_cpus(), 1);
  EXPECT_EQ(Topology::fallback(-5).total_cpus(), 1);
  const Topology t = Topology::fallback(6);
  ASSERT_EQ(t.nodes.size(), 1u);
  EXPECT_EQ(t.nodes[0].cpus, (std::vector<int>{0, 1, 2, 3, 4, 5}));
}

}  // namespace
}  // namespace plt::common
