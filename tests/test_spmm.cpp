#include <gtest/gtest.h>

#include <tuple>

#include "test_utils.hpp"
#include "tpp/spmm.hpp"

namespace plt::tpp {
namespace {

using plt::test::expect_allclose;
using plt::test::naive_gemm;
using plt::test::random_vec;

TEST(Bcsc, DenseRoundTripF32) {
  const std::int64_t M = 16, K = 12, bm = 4, bk = 3;
  auto dense = random_vec(static_cast<std::size_t>(M * K), 1);
  BcscMatrix a = BcscMatrix::from_dense(dense.data(), M, K, bm, bk, DType::F32);
  EXPECT_EQ(a.nnz_blocks(), (M / bm) * (K / bk));  // random data: all kept
  std::vector<float> back(dense.size());
  a.to_dense(back.data());
  EXPECT_EQ(back, dense);
}

TEST(Bcsc, ZeroBlocksDropped) {
  const std::int64_t M = 8, K = 8, bm = 4, bk = 4;
  std::vector<float> dense(static_cast<std::size_t>(M * K), 0.0f);
  // Only block (1, 0) is non-zero.
  dense[static_cast<std::size_t>(5 + 2 * M)] = 3.0f;
  BcscMatrix a = BcscMatrix::from_dense(dense.data(), M, K, bm, bk, DType::F32);
  EXPECT_EQ(a.nnz_blocks(), 1);
  EXPECT_EQ(a.row_idx()[0], 0);                 // k-block 0
  EXPECT_EQ(a.col_ptr()[0], 0);                 // block-row 0: empty
  EXPECT_EQ(a.col_ptr()[1], 0);
  EXPECT_EQ(a.col_ptr()[2], 1);                 // block-row 1 holds it
  std::vector<float> back(dense.size());
  a.to_dense(back.data());
  EXPECT_EQ(back, dense);
}

TEST(Bcsc, PruneKeepsRequestedFraction) {
  const std::int64_t M = 32, K = 32, bm = 8, bk = 8;
  auto dense = random_vec(static_cast<std::size_t>(M * K), 2);
  for (double s : {0.0, 0.25, 0.5, 0.75}) {
    BcscMatrix a =
        BcscMatrix::prune_from_dense(dense.data(), M, K, bm, bk, DType::F32, s);
    EXPECT_NEAR(a.density(), 1.0 - s, 1e-9) << s;
  }
}

TEST(Bcsc, PruneKeepsLargestBlocks) {
  const std::int64_t M = 8, K = 8, bm = 4, bk = 4;
  std::vector<float> dense(static_cast<std::size_t>(M * K), 0.01f);
  // Make block (0,1) clearly the largest.
  for (std::int64_t kk = 4; kk < 8; ++kk)
    for (std::int64_t mm = 0; mm < 4; ++mm)
      dense[static_cast<std::size_t>(mm + kk * M)] = 10.0f;
  BcscMatrix a =
      BcscMatrix::prune_from_dense(dense.data(), M, K, bm, bk, DType::F32, 0.75);
  ASSERT_EQ(a.nnz_blocks(), 1);
  EXPECT_EQ(a.row_idx()[0], 1);
  EXPECT_EQ(a.col_ptr()[1], 1);  // lives in block-row 0
}

using SpmmParam = std::tuple<std::int64_t, double, DType>;

class SpmmP : public ::testing::TestWithParam<SpmmParam> {};

TEST_P(SpmmP, MatchesDenseGemmOnDensifiedA) {
  const auto [block, sparsity, dtype] = GetParam();
  const std::int64_t M = 32, K = 32, N = 8;
  const std::int64_t bm = block, bk = block, bn = N;
  Xoshiro256 rng(42);
  BcscMatrix a = BcscMatrix::random(M, K, bm, bk, dtype, sparsity, rng);

  std::vector<float> a_dense(static_cast<std::size_t>(M * K));
  a.to_dense(a_dense.data());
  auto bf = random_vec(static_cast<std::size_t>(K * N), 7);

  std::vector<float> want(static_cast<std::size_t>(M * N), 0.0f);
  naive_gemm(a_dense.data(), bf.data(), want.data(), M, N, K, M, K, M, 0.0f);

  std::vector<float> got(want.size(), 0.0f);
  if (dtype == DType::F32) {
    SpmmTPP spmm(bm, bk, bn, DType::F32, DType::F32, 0.0f, K, M);
    for (std::int64_t im = 0; im < a.block_rows(); ++im) {
      spmm(a, im, bf.data(), K, got.data() + im * bm, M);
    }
    expect_allclose(got.data(), want.data(), got.size(), 1e-4f, "spmm f32");
  } else {
    auto b16 = plt::test::to_bf16(bf);
    // Reference must also see the bf16-rounded B.
    auto br = plt::test::to_f32(b16);
    std::fill(want.begin(), want.end(), 0.0f);
    naive_gemm(a_dense.data(), br.data(), want.data(), M, N, K, M, K, M, 0.0f);
    SpmmTPP spmm(bm, bk, bn, DType::BF16, DType::F32, 0.0f, K, M);
    for (std::int64_t im = 0; im < a.block_rows(); ++im) {
      spmm(a, im, b16.data(), K, got.data() + im * bm, M);
    }
    expect_allclose(got.data(), want.data(), got.size(),
                    2e-2f * static_cast<float>(block), "spmm bf16");
  }
}

INSTANTIATE_TEST_SUITE_P(
    BlocksAndSparsities, SpmmP,
    ::testing::Combine(::testing::Values<std::int64_t>(4, 8, 16),
                       ::testing::Values(0.0, 0.3, 0.7, 0.95),
                       ::testing::Values(DType::F32, DType::BF16)));

TEST(Spmm, EmptyBlockRowWithBetaZeroClearsTile) {
  const std::int64_t M = 8, K = 8, bm = 4, bk = 4, N = 4;
  std::vector<float> dense(static_cast<std::size_t>(M * K), 0.0f);
  dense[0] = 1.0f;  // only block (0, 0) survives
  BcscMatrix a = BcscMatrix::from_dense(dense.data(), M, K, bm, bk, DType::F32);
  ASSERT_EQ(a.nnz_blocks(), 1);
  auto b = random_vec(static_cast<std::size_t>(K * N), 3);
  std::vector<float> c(static_cast<std::size_t>(M * N), 9.0f);
  SpmmTPP spmm(bm, bk, N, DType::F32, DType::F32, 0.0f, K, M);
  for (std::int64_t im = 0; im < a.block_rows(); ++im)
    spmm(a, im, b.data(), K, c.data() + im * bm, M);
  // Block-row 1 is empty: beta=0 must have cleared its tile.
  for (std::int64_t j = 0; j < N; ++j)
    for (std::int64_t i = 4; i < 8; ++i)
      EXPECT_EQ(c[static_cast<std::size_t>(i + j * M)], 0.0f);
}

TEST(Spmm, FlopsCountNonzeroBlocksOnly) {
  const std::int64_t M = 16, K = 16, bm = 4, bk = 4;
  Xoshiro256 rng(5);
  BcscMatrix a = BcscMatrix::random(M, K, bm, bk, DType::F32, 0.5, rng);
  SpmmTPP spmm(bm, bk, 8, DType::F32, DType::F32, 0.0f, K, M);
  double total = 0.0;
  for (std::int64_t im = 0; im < a.block_rows(); ++im) total += spmm.flops(a, im);
  EXPECT_DOUBLE_EQ(total, 2.0 * static_cast<double>(a.nnz_blocks()) * bm * bk * 8);
}

}  // namespace
}  // namespace plt::tpp
