#include <gtest/gtest.h>

#include <cmath>

#include "dl/attention.hpp"
#include "dl/bert.hpp"
#include "dl/fc_layer.hpp"
#include "dl/llm.hpp"
#include "dl/sparse_fc.hpp"
#include "test_utils.hpp"

namespace plt::dl {
namespace {

using plt::test::expect_allclose;
using plt::test::random_vec;

FcConfig small_fc(std::int64_t in_f, std::int64_t out_f, std::int64_t S,
                  FcActivation act = FcActivation::kNone,
                  DType dt = DType::F32) {
  FcConfig c;
  c.in_features = in_f;
  c.out_features = out_f;
  c.tokens = S;
  c.bm = c.bn = c.bk = 8;
  c.act = act;
  c.dtype = dt;
  return c;
}

void reference_fc(const FcLayer& fc, const float* in, float* out) {
  const auto& c = fc.config();
  const Tensor& w = const_cast<FcLayer&>(fc).weight();
  const Tensor& b = const_cast<FcLayer&>(fc).bias();
  for (std::int64_t s = 0; s < c.tokens; ++s)
    for (std::int64_t o = 0; o < c.out_features; ++o) {
      double acc = c.with_bias ? b[static_cast<std::size_t>(o)] : 0.0;
      for (std::int64_t i = 0; i < c.in_features; ++i)
        acc += static_cast<double>(w[static_cast<std::size_t>(o * c.in_features + i)]) *
               in[s * c.in_features + i];
      float v = static_cast<float>(acc);
      if (c.act == FcActivation::kRelu) v = std::max(v, 0.0f);
      if (c.act == FcActivation::kGelu) v = tpp::gelu_fwd_scalar(v);
      out[s * c.out_features + o] = v;
    }
}

TEST(FcLayer, ForwardMatchesReference) {
  Xoshiro256 rng(1);
  FcLayer fc(small_fc(24, 16, 8), rng);
  auto in = random_vec(24 * 8, 2);
  std::vector<float> got(16 * 8), want(16 * 8);
  fc.forward(in.data(), got.data());
  reference_fc(fc, in.data(), want.data());
  expect_allclose(got.data(), want.data(), got.size(), 1e-4f, "fc fwd");
}

TEST(FcLayer, ActivationsApplied) {
  Xoshiro256 rng(3);
  for (FcActivation act : {FcActivation::kRelu, FcActivation::kGelu}) {
    FcLayer fc(small_fc(16, 16, 8, act), rng);
    auto in = random_vec(16 * 8, 4, -2.0f, 2.0f);
    std::vector<float> got(16 * 8), want(16 * 8);
    fc.forward(in.data(), got.data());
    reference_fc(fc, in.data(), want.data());
    expect_allclose(got.data(), want.data(), got.size(), 1e-3f, "fc act");
  }
}

TEST(FcLayer, Bf16TracksF32) {
  Xoshiro256 rng(5);
  FcLayer f32(small_fc(32, 16, 8), rng);
  Xoshiro256 rng2(5);  // same weights
  FcLayer b16(small_fc(32, 16, 8, FcActivation::kNone, DType::BF16), rng2);
  auto in = random_vec(32 * 8, 6);
  std::vector<float> y1(16 * 8), y2(16 * 8);
  f32.forward(in.data(), y1.data());
  b16.forward(in.data(), y2.data());
  for (std::size_t i = 0; i < y1.size(); ++i) {
    const float scale = std::max(1.0f, std::fabs(y1[i]));
    EXPECT_NEAR(y2[i], y1[i], 0.05f * scale) << i;
  }
}

TEST(FcLayer, BackwardGradInMatchesFiniteDifference) {
  Xoshiro256 rng(7);
  const std::int64_t in_f = 16, out_f = 8, S = 8;
  FcConfig c = small_fc(in_f, out_f, S, FcActivation::kGelu);
  FcLayer fc(c, rng);
  auto x = random_vec(static_cast<std::size_t>(S * in_f), 8);
  auto w_loss = random_vec(static_cast<std::size_t>(S * out_f), 9);

  const auto loss = [&](const std::vector<float>& xin) {
    std::vector<float> y(static_cast<std::size_t>(S * out_f));
    fc.forward(xin.data(), y.data());
    double l = 0.0;
    for (std::size_t i = 0; i < y.size(); ++i) l += w_loss[i] * y[i];
    return l;
  };

  std::vector<float> y(static_cast<std::size_t>(S * out_f));
  fc.forward(x.data(), y.data());
  fc.zero_grad();
  std::vector<float> gi(static_cast<std::size_t>(S * in_f));
  fc.backward(x.data(), w_loss.data(), gi.data());

  const float h = 1e-2f;
  for (std::size_t i : {std::size_t{0}, std::size_t{5}, std::size_t{37},
                        std::size_t{static_cast<std::size_t>(S * in_f) - 1}}) {
    auto xp = x, xm = x;
    xp[i] += h;
    xm[i] -= h;
    const double fd = (loss(xp) - loss(xm)) / (2.0 * h);
    EXPECT_NEAR(gi[i], fd, 2e-2 * std::max(1.0, std::fabs(fd))) << i;
  }
}

TEST(FcLayer, BackwardWeightGradMatchesFiniteDifference) {
  Xoshiro256 rng(11);
  const std::int64_t in_f = 8, out_f = 8, S = 8;
  FcLayer fc(small_fc(in_f, out_f, S), rng);
  auto x = random_vec(static_cast<std::size_t>(S * in_f), 12);
  auto w_loss = random_vec(static_cast<std::size_t>(S * out_f), 13);

  std::vector<float> y(static_cast<std::size_t>(S * out_f));
  fc.forward(x.data(), y.data());
  fc.zero_grad();
  fc.backward(x.data(), w_loss.data(), nullptr);

  const float h = 1e-2f;
  for (std::size_t wi : {std::size_t{0}, std::size_t{17}, std::size_t{63}}) {
    const float orig = fc.weight()[wi];
    const auto eval = [&](float wv) {
      fc.weight()[wi] = wv;
      fc.repack();
      std::vector<float> yy(y.size());
      fc.forward(x.data(), yy.data());
      double l = 0.0;
      for (std::size_t i = 0; i < yy.size(); ++i) l += w_loss[i] * yy[i];
      return l;
    };
    const double fd = (eval(orig + h) - eval(orig - h)) / (2.0 * h);
    fc.weight()[wi] = orig;
    fc.repack();
    EXPECT_NEAR(fc.grad_weight()[wi], fd, 2e-2 * std::max(1.0, std::fabs(fd)));
  }
  // dbias equals column sums of the loss weights.
  for (std::int64_t o = 0; o < out_f; ++o) {
    float want = 0.0f;
    for (std::int64_t s = 0; s < S; ++s)
      want += w_loss[static_cast<std::size_t>(s * out_f + o)];
    EXPECT_NEAR(fc.grad_bias()[static_cast<std::size_t>(o)], want, 1e-3f);
  }
}

TEST(Attention, ForwardMatchesNaive) {
  const std::int64_t S = 8, dh = 4, H = 8;  // two heads worth of width
  auto q = random_vec(static_cast<std::size_t>(S * H), 1);
  auto k = random_vec(static_cast<std::size_t>(S * H), 2);
  auto v = random_vec(static_cast<std::size_t>(S * H), 3);
  std::vector<float> out(static_cast<std::size_t>(S * H), 0.0f);
  std::vector<float> pt(static_cast<std::size_t>(S * S));
  AttentionHead head{S, dh, H};
  head.forward(q.data(), k.data(), v.data(), out.data(), pt.data());

  // Naive reference for head 0 (columns [0, dh)).
  const float scale = 1.0f / std::sqrt(static_cast<float>(dh));
  for (std::int64_t i = 0; i < S; ++i) {
    std::vector<float> p(static_cast<std::size_t>(S));
    float mx = -1e30f;
    for (std::int64_t j = 0; j < S; ++j) {
      float dot = 0.0f;
      for (std::int64_t d = 0; d < dh; ++d) dot += q[i * H + d] * k[j * H + d];
      p[static_cast<std::size_t>(j)] = dot * scale;
      mx = std::max(mx, dot * scale);
    }
    float sum = 0.0f;
    for (auto& x : p) {
      x = std::exp(x - mx);
      sum += x;
    }
    for (auto& x : p) x /= sum;
    for (std::int64_t d = 0; d < dh; ++d) {
      float want = 0.0f;
      for (std::int64_t j = 0; j < S; ++j)
        want += p[static_cast<std::size_t>(j)] * v[j * H + d];
      EXPECT_NEAR(out[static_cast<std::size_t>(i * H + d)], want, 1e-4f)
          << i << "," << d;
    }
  }
}

TEST(Attention, BackwardMatchesFiniteDifference) {
  const std::int64_t S = 6, dh = 4, H = 4;
  auto q = random_vec(static_cast<std::size_t>(S * H), 4);
  auto k = random_vec(static_cast<std::size_t>(S * H), 5);
  auto v = random_vec(static_cast<std::size_t>(S * H), 6);
  auto w = random_vec(static_cast<std::size_t>(S * H), 7);
  AttentionHead head{S, dh, H};

  const auto loss = [&](const std::vector<float>& qq,
                        const std::vector<float>& kk,
                        const std::vector<float>& vv) {
    std::vector<float> out(static_cast<std::size_t>(S * H));
    std::vector<float> pt(static_cast<std::size_t>(S * S));
    head.forward(qq.data(), kk.data(), vv.data(), out.data(), pt.data());
    double l = 0.0;
    for (std::size_t i = 0; i < out.size(); ++i) l += w[i] * out[i];
    return l;
  };

  std::vector<float> out(static_cast<std::size_t>(S * H));
  std::vector<float> pt(static_cast<std::size_t>(S * S));
  head.forward(q.data(), k.data(), v.data(), out.data(), pt.data());
  std::vector<float> dq(out.size()), dk(out.size()), dv(out.size());
  head.backward(q.data(), k.data(), v.data(), pt.data(), w.data(), dq.data(),
                dk.data(), dv.data());

  const float h = 1e-3f;
  for (std::size_t i : {std::size_t{0}, std::size_t{9}, std::size_t{23}}) {
    auto qp = q, qm = q;
    qp[i] += h;
    qm[i] -= h;
    EXPECT_NEAR(dq[i], (loss(qp, k, v) - loss(qm, k, v)) / (2 * h), 5e-3)
        << "dq " << i;
    auto kp = k, km = k;
    kp[i] += h;
    km[i] -= h;
    EXPECT_NEAR(dk[i], (loss(q, kp, v) - loss(q, km, v)) / (2 * h), 5e-3)
        << "dk " << i;
    auto vp = v, vm = v;
    vp[i] += h;
    vm[i] -= h;
    EXPECT_NEAR(dv[i], (loss(q, k, vp) - loss(q, k, vm)) / (2 * h), 5e-3)
        << "dv " << i;
  }
}

TEST(SparseFc, DensityZeroSparsityMatchesDense) {
  Xoshiro256 rng(21);
  const std::int64_t in_f = 32, out_f = 32, S = 8;
  Tensor w({out_f, in_f}), b({out_f});
  w.randn_uniform(rng, -0.3f, 0.3f);
  b.randn_uniform(rng, -0.1f, 0.1f);
  SparseFcConfig sc;
  sc.in_features = in_f;
  sc.out_features = out_f;
  sc.tokens = S;
  sc.block = 8;
  sc.sparsity = 0.0;
  SparseFcLayer sparse(sc, w, b);
  EXPECT_DOUBLE_EQ(sparse.density(), 1.0);

  auto in = random_vec(static_cast<std::size_t>(S * in_f), 22);
  std::vector<float> got(static_cast<std::size_t>(S * out_f));
  sparse.forward(in.data(), got.data());
  for (std::int64_t s = 0; s < S; ++s)
    for (std::int64_t o = 0; o < out_f; ++o) {
      double acc = b[static_cast<std::size_t>(o)];
      for (std::int64_t i = 0; i < in_f; ++i)
        acc += static_cast<double>(w[static_cast<std::size_t>(o * in_f + i)]) *
               in[s * in_f + i];
      EXPECT_NEAR(got[static_cast<std::size_t>(s * out_f + o)],
                  static_cast<float>(acc), 1e-3f);
    }
}

TEST(SparseFc, SparsityReducesEffectiveFlops) {
  Xoshiro256 rng(23);
  Tensor w({64, 64}), b({64});
  w.randn_uniform(rng);
  SparseFcConfig sc;
  sc.in_features = sc.out_features = 64;
  sc.tokens = 8;
  sc.block = 8;
  sc.sparsity = 0.75;
  SparseFcLayer sparse(sc, w, b);
  EXPECT_NEAR(sparse.density(), 0.25, 1e-9);
  EXPECT_NEAR(sparse.effective_flops() / sparse.dense_flops(), 0.25, 1e-9);
}

TEST(BertEncoderLayer, ForwardProducesNormalizedOutput) {
  BertConfig cfg;
  cfg.hidden = 64;
  cfg.heads = 2;
  cfg.intermediate = 128;
  cfg.seq_len = 16;
  cfg.bm = cfg.bn = cfg.bk = 16;
  Xoshiro256 rng(31);
  BertEncoderLayer layer(cfg, rng);
  auto x = random_vec(static_cast<std::size_t>(cfg.tokens() * cfg.hidden), 32);
  std::vector<float> y(x.size());
  layer.forward(x.data(), y.data(), rng);
  // The final layernorm leaves each token with ~zero mean, ~unit variance.
  for (std::int64_t t = 0; t < cfg.tokens(); ++t) {
    float mu = 0.0f;
    for (std::int64_t hh = 0; hh < cfg.hidden; ++hh)
      mu += y[static_cast<std::size_t>(t * cfg.hidden + hh)];
    mu /= static_cast<float>(cfg.hidden);
    EXPECT_NEAR(mu, 0.0f, 1e-3f);
  }
}

TEST(BertEncoder, TrainingStepReducesLoss) {
  BertConfig cfg;
  cfg.hidden = 32;
  cfg.heads = 2;
  cfg.intermediate = 64;
  cfg.layers = 1;
  cfg.seq_len = 8;
  cfg.bm = cfg.bn = cfg.bk = 8;
  Xoshiro256 rng(41);
  BertEncoder model(cfg, rng);
  auto x = random_vec(static_cast<std::size_t>(cfg.tokens() * cfg.hidden), 42);
  auto target = random_vec(x.size(), 43, -0.5f, 0.5f);

  const double l0 = model.training_step(x.data(), target.data(), 0.0f, rng);
  double prev = l0;
  double last = l0;
  for (int step = 0; step < 20; ++step) {
    last = model.training_step(x.data(), target.data(), 0.5f, rng);
  }
  EXPECT_LT(last, prev) << "SGD on an L2 objective must reduce the loss";
}

TEST(LlmModel, PrefillThenDecodeRuns) {
  LlmConfig cfg;
  cfg.hidden = 64;
  cfg.heads = 2;
  cfg.layers = 2;
  cfg.ffn = 128;
  cfg.vocab = 256;
  cfg.max_seq = 64;
  cfg.bm = cfg.bn = cfg.bk = 16;
  Xoshiro256 rng(51);
  LlmModel model(cfg, rng);
  const auto t = model.generate(32, 4, rng);
  EXPECT_GT(t.first_token_ms, 0.0);
  EXPECT_GT(t.per_next_token_ms, 0.0);
  // Prefill does O(S) times more work than one decode step.
  EXPECT_GT(t.first_token_ms, t.per_next_token_ms);
}

TEST(LlmModel, DecodeMatchesPrefillForSameToken) {
  // Processing tokens [0, S) via prefill and then re-deriving position S-1's
  // output via decode_one on the same inputs must agree: run prefill over
  // S-1 tokens, then decode token S-1 and compare against a full S prefill.
  LlmConfig cfg;
  cfg.hidden = 32;
  cfg.heads = 2;
  cfg.layers = 1;
  cfg.ffn = 64;
  cfg.max_seq = 16;
  cfg.bm = cfg.bn = cfg.bk = 8;
  Xoshiro256 rng(61);
  DecoderLayer full(cfg, rng);
  Xoshiro256 rng2(61);
  DecoderLayer split(cfg, rng2);

  const std::int64_t S = 8, H = cfg.hidden;
  auto x = random_vec(static_cast<std::size_t>(S * H), 62);
  std::vector<float> y_full(static_cast<std::size_t>(S * H));
  full.prefill(x.data(), S, y_full.data());

  std::vector<float> y_head(static_cast<std::size_t>((S - 1) * H));
  split.prefill(x.data(), S - 1, y_head.data());
  std::vector<float> y_last(static_cast<std::size_t>(H));
  split.decode_one(x.data() + (S - 1) * H, S - 1, y_last.data());

  for (std::int64_t d = 0; d < H; ++d) {
    EXPECT_NEAR(y_last[static_cast<std::size_t>(d)],
                y_full[static_cast<std::size_t>((S - 1) * H + d)], 1e-3f)
        << d;
  }
}

}  // namespace
}  // namespace plt::dl
