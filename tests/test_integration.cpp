// Cross-module integration tests: the JIT backend under real kernels, the
// tuner driving the GEMM kernel end-to-end, generator-produced specs fuzzing
// the PARLOOPER executors, and cache behaviour across repeated construction.
#include <gtest/gtest.h>

#include <mutex>
#include <set>

#include "common/timer.hpp"
#include "kernels/conv_kernel.hpp"
#include "kernels/gemm_kernel.hpp"
#include "parlooper/jit_backend.hpp"
#include "test_utils.hpp"
#include "tuner/tuner.hpp"

namespace plt {
namespace {

using plt::test::expect_allclose;
using plt::test::naive_gemm;
using plt::test::random_vec;

// ---------- GEMM kernel under the source-JIT backend ----------

TEST(Integration, GemmKernelJitMatchesInterpreter) {
  if (!parlooper::JitLoop::available()) GTEST_SKIP() << "no compiler";
  kernels::GemmConfig cfg;
  cfg.M = cfg.N = cfg.K = 64;
  cfg.bm = cfg.bn = cfg.bk = 16;
  cfg.loop_spec = "bcaBCb";
  cfg.m_blocking = {2, 2};
  cfg.n_blocking = {2};

  auto a_flat = random_vec(static_cast<std::size_t>(cfg.M * cfg.K), 1);
  auto b_flat = random_vec(static_cast<std::size_t>(cfg.K * cfg.N), 2);

  std::vector<float> got_i, got_j;
  for (parlooper::Backend backend :
       {parlooper::Backend::kInterpreter, parlooper::Backend::kJit}) {
    cfg.backend = backend;
    kernels::GemmKernel kernel(cfg);
    AlignedBuffer<std::uint8_t> a(kernel.a_elems() * 4), b(kernel.b_elems() * 4),
        c(kernel.c_elems() * 4);
    kernel.pack_a(a_flat.data(), a.data());
    kernel.pack_b(b_flat.data(), b.data());
    kernel.run(a.data(), b.data(), c.data());
    std::vector<float> out(kernel.c_elems());
    kernel.unpack_c(c.data(), out.data());
    (backend == parlooper::Backend::kInterpreter ? got_i : got_j) = out;
  }
  ASSERT_EQ(got_i.size(), got_j.size());
  expect_allclose(got_j.data(), got_i.data(), got_i.size(), 1e-6f,
                  "jit vs interpreter");

  std::vector<float> want(got_i.size(), 0.0f);
  naive_gemm(a_flat.data(), b_flat.data(), want.data(), cfg.M, cfg.N, cfg.K,
             cfg.M, cfg.K, cfg.M, 0.0f);
  expect_allclose(got_i.data(), want.data(), want.size(), 1e-4f, "vs naive");
}

TEST(Integration, ConvKernelJitMatchesInterpreter) {
  if (!parlooper::JitLoop::available()) GTEST_SKIP() << "no compiler";
  kernels::ConvConfig cfg;
  cfg.N = 1;
  cfg.C = 8;
  cfg.K = 8;
  cfg.H = cfg.W = 10;
  cfg.R = cfg.S = 3;
  cfg.pad_h = cfg.pad_w = 1;
  cfg.bc = cfg.bk = 8;

  auto input = random_vec(static_cast<std::size_t>(cfg.C * cfg.H * cfg.W), 3);
  auto weights = random_vec(static_cast<std::size_t>(cfg.K * cfg.C * 9), 4);

  std::vector<float> got_i, got_j;
  for (parlooper::Backend backend :
       {parlooper::Backend::kInterpreter, parlooper::Backend::kJit}) {
    cfg.backend = backend;
    kernels::ConvKernel kernel(cfg);
    AlignedBuffer<std::uint8_t> in_b(kernel.input_elems() * 4),
        w_b(kernel.weight_elems() * 4), out_b(kernel.output_elems() * 4);
    kernel.pack_input(input.data(), in_b.data());
    kernel.pack_weights(weights.data(), w_b.data());
    kernel.run(in_b.data(), w_b.data(), out_b.data());
    std::vector<float> out(static_cast<std::size_t>(cfg.N * cfg.K * cfg.P() * cfg.Q()));
    kernel.unpack_output(out_b.data(), out.data());
    (backend == parlooper::Backend::kInterpreter ? got_i : got_j) = out;
  }
  expect_allclose(got_j.data(), got_i.data(), got_i.size(), 1e-6f,
                  "conv jit vs interpreter");
}

// ---------- generator-driven executor fuzzing ----------

class GeneratedSpecFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GeneratedSpecFuzz, EveryGeneratedSpecCoversIterationSpaceOnce) {
  perfmodel::GemmModelProblem p;
  p.M = p.N = p.K = 192;  // trips of 6 => rich prime factorization {2, 3}
  p.bm = p.bn = p.bk = 32;
  tuner::SpecGenOptions opts;
  opts.max_candidates = 12;
  opts.include_serial = true;
  opts.seed = GetParam();
  const auto cands = tuner::generate_gemm_candidates(p, opts);
  ASSERT_FALSE(cands.empty());

  const std::int64_t total = 6 * 6 * 6;
  for (const auto& c : cands) {
    std::vector<parlooper::LoopSpecs> loops = {
        parlooper::LoopSpecs{0, 6, 1, c.k_blocking},
        parlooper::LoopSpecs{0, 6, 1, c.m_blocking},
        parlooper::LoopSpecs{0, 6, 1, c.n_blocking}};
    parlooper::LoopNest nest(loops, c.spec, parlooper::Backend::kInterpreter);
    std::mutex mu;
    std::set<std::int64_t> seen;
    std::int64_t count = 0;
    nest([&](const std::int64_t* ind) {
      std::lock_guard<std::mutex> lock(mu);
      seen.insert(ind[0] * 36 + ind[1] * 6 + ind[2]);
      ++count;
    });
    EXPECT_EQ(count, total) << c.spec;
    EXPECT_EQ(static_cast<std::int64_t>(seen.size()), total) << c.spec;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GeneratedSpecFuzz,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u));

// ---------- tuner end-to-end: best spec actually runs fastest-or-close ----------

TEST(Integration, TunerBestSpecIsReproducible) {
  kernels::GemmConfig base;
  base.M = base.N = base.K = 128;
  base.bm = base.bn = base.bk = 32;
  perfmodel::GemmModelProblem p;
  p.M = p.N = p.K = 128;
  p.bm = p.bn = p.bk = 32;
  tuner::SpecGenOptions gopts;
  gopts.max_candidates = 6;
  const auto cands = tuner::generate_gemm_candidates(p, gopts);
  tuner::TuneOptions topts;
  topts.warmup = 1;
  topts.iters = 2;
  tuner::GemmTuner tuner(base, topts);
  const auto results = tuner.run(cands);

  // Re-running the winning candidate standalone reproduces a comparable
  // rate (within 2x — generous, CI timing is noisy).
  kernels::GemmConfig best = base;
  best.loop_spec = results.front().candidate.spec;
  best.k_blocking = results.front().candidate.k_blocking;
  best.m_blocking = results.front().candidate.m_blocking;
  best.n_blocking = results.front().candidate.n_blocking;
  kernels::GemmKernel kernel(best);
  AlignedBuffer<std::uint8_t> a(kernel.a_elems() * 4), b(kernel.b_elems() * 4),
      c(kernel.c_elems() * 4);
  a.zero();
  b.zero();
  const double s = time_best_seconds(
      [&] { kernel.run(a.data(), b.data(), c.data()); }, 1, 3);
  const double gf = gflops(kernel.flops(), s);
  EXPECT_GT(gf, results.front().gflops * 0.5);
}

// ---------- cache behaviour across modules ----------

TEST(Integration, RepeatedKernelConstructionHitsPlanCache) {
  kernels::GemmConfig cfg;
  cfg.M = cfg.N = cfg.K = 64;
  cfg.bm = cfg.bn = cfg.bk = 32;
  cfg.loop_spec = "CBa" /* unique-ish to this test */;
  const auto before = parlooper::plan_cache_stats();
  kernels::GemmKernel k1(cfg);
  kernels::GemmKernel k2(cfg);
  kernels::GemmKernel k3(cfg);
  const auto after = parlooper::plan_cache_stats();
  EXPECT_GE(after.hits - before.hits, 2u);
}

TEST(Integration, DistinctSpecStringsGetDistinctPlans) {
  std::vector<parlooper::LoopSpecs> loops = {parlooper::LoopSpecs{0, 4, 1},
                                             parlooper::LoopSpecs{0, 4, 1}};
  parlooper::LoopNest n1(loops, "ab");
  parlooper::LoopNest n2(loops, "ba");
  EXPECT_NE(n1.plan().structural_key(), n2.plan().structural_key());
  EXPECT_EQ(n1.plan().total_iterations(), n2.plan().total_iterations());
}

}  // namespace
}  // namespace plt
