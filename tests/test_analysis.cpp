// Static schedule verifier (src/analysis/): coverage, race-freedom and
// backend-equivalence proofs over recorded ThreadPrograms, the mutation
// self-test, and the PLT_VERIFY_PLANS plan-compile-time hook.
#include <gtest/gtest.h>

#include <cstdlib>

#include "analysis/verifier.hpp"
#include "common/status.hpp"
#include "parlooper/jit_backend.hpp"
#include "parlooper/threaded_loop.hpp"

namespace plt::analysis {
namespace {

using parlooper::AccessMap;
using parlooper::LoopNestPlan;
using parlooper::LoopSpecs;
using parlooper::ThreadProgram;

VerifyReport verify_team(const LoopNestPlan& plan, int nthreads,
                         const std::vector<AccessMap>& maps = {}) {
  return verify_programs(plan, parlooper::record_team_programs(plan, nthreads),
                         maps);
}

// --- coverage ----------------------------------------------------------------

TEST(Verifier, CoversPlainParallelNest) {
  LoopNestPlan plan({LoopSpecs{0, 4, 1}, LoopSpecs{0, 6, 1}}, "Ab");
  for (int n : default_team_sizes()) {
    const VerifyReport r = verify_team(plan, n);
    EXPECT_TRUE(r.ok()) << r.summary();
    EXPECT_TRUE(r.coverage_checked);
  }
}

TEST(Verifier, CoversCollapseGroupWithRemainderChunks) {
  // 5 x 7 = 35 flat iterations over teams of 2/4/8: every remainder shape
  // (35 = 4*8+3 etc.) must still tile the space exactly once.
  LoopNestPlan plan({LoopSpecs{0, 5, 1}, LoopSpecs{0, 7, 1}}, "AB");
  for (int n : {1, 2, 4, 8, 16}) {
    const VerifyReport r = verify_team(plan, n);
    EXPECT_TRUE(r.ok()) << "n=" << n << ": " << r.summary();
  }
}

TEST(Verifier, CoversDynamicScheduleChunking) {
  LoopNestPlan plan({LoopSpecs{0, 5, 1}, LoopSpecs{0, 3, 1}},
                    "AB @ schedule(dynamic,2)");
  for (int n : default_team_sizes()) {
    const VerifyReport r = verify_team(plan, n);
    EXPECT_TRUE(r.ok()) << r.summary();
  }
}

TEST(Verifier, CoversBlockedReorderedSpec) {
  // Blocked loops ("bBCca"-family): the collapse group runs over block
  // heads, inner occurrences cover the intra-block points.
  LoopSpecs b{0, 8, 1, {4}};
  LoopSpecs c{0, 8, 1, {2}};
  LoopNestPlan plan({LoopSpecs{0, 2, 1}, b, c}, "bBCca");
  for (int n : default_team_sizes()) {
    const VerifyReport r = verify_team(plan, n);
    EXPECT_TRUE(r.ok()) << r.summary();
  }
}

TEST(Verifier, CoversExplicitGrid) {
  // 2x2 thread grid over a 6x4 space: teams smaller than the grid own
  // several cells, larger teams leave members idle — both must still cover.
  LoopNestPlan plan({LoopSpecs{0, 6, 1}, LoopSpecs{0, 4, 1}},
                    "A{R:2}B{C:2}");
  for (int n : {1, 2, 3, 4, 8}) {
    const VerifyReport r = verify_team(plan, n);
    EXPECT_TRUE(r.ok()) << "n=" << n << ": " << r.summary();
  }
}

TEST(Verifier, CoversTeamLargerThanIterationSpace) {
  LoopNestPlan plan({LoopSpecs{0, 3, 1}}, "A");
  const VerifyReport r = verify_team(plan, 8);
  EXPECT_TRUE(r.ok()) << r.summary();
}

TEST(Verifier, CoversDegenerateTrips) {
  // Trip-1 loops collapse to a single tuple; trip-0 loops to none.
  LoopNestPlan one({LoopSpecs{0, 1, 1}, LoopSpecs{0, 1, 1}}, "Ab");
  EXPECT_TRUE(verify_team(one, 4).ok());

  LoopNestPlan zero({LoopSpecs{0, 0, 1}, LoopSpecs{0, 5, 1}}, "Ab");
  const VerifyReport r = verify_team(zero, 4);
  EXPECT_TRUE(r.ok()) << r.summary();
  EXPECT_TRUE(r.coverage_checked);
}

TEST(Verifier, CoversSerialNestWithIdleThreads) {
  LoopNestPlan plan({LoopSpecs{0, 4, 1}, LoopSpecs{0, 4, 1}}, "ab");
  const VerifyReport r = verify_team(plan, 4);
  EXPECT_TRUE(r.ok()) << r.summary();
}

TEST(Verifier, SkipsOversizedIterationSpaces) {
  LoopNestPlan plan({LoopSpecs{0, 64, 1}, LoopSpecs{0, 64, 1}}, "Ab");
  VerifyOptions opts;
  opts.max_iterations = 100;  // 4096 > 100 -> skip, not fail
  const VerifyReport r = verify_plan(plan, 4, opts);
  EXPECT_TRUE(r.ok());
  EXPECT_FALSE(r.coverage_checked);
  EXPECT_FALSE(r.races_checked);
}

// --- race-freedom ------------------------------------------------------------

TEST(Verifier, FlagsOverlappingWritesAcrossThreads) {
  // Every invocation writes element 0: any team wider than one races.
  LoopNestPlan plan({LoopSpecs{0, 4, 1}}, "A");
  AccessMap everyone_writes_zero;
  everyone_writes_zero.add_write("x", {0}, 1);
  EXPECT_TRUE(verify_team(plan, 1, {everyone_writes_zero}).ok());
  const VerifyReport r = verify_team(plan, 4, {everyone_writes_zero});
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.has(IssueKind::kRace)) << r.summary();
}

TEST(Verifier, AcceptsDisjointStridedTileWrites) {
  // Column tiles with a leading-dimension stride (the SpMM/FC shape):
  // disjoint across (a, b) owners, so any team size is race-free.
  LoopNestPlan plan({LoopSpecs{0, 4, 1}, LoopSpecs{0, 4, 1}}, "AB");
  AccessMap tiles;
  tiles.add_write("c", {4, 64}, 4, /*reps=*/4, /*rep_stride=*/16);
  for (int n : default_team_sizes()) {
    EXPECT_TRUE(verify_team(plan, n, {tiles}).ok()) << "n=" << n;
  }
}

TEST(Verifier, FlagsRawHazardWithinSegmentButNotAcrossBarrier) {
  // Two-phase plan: phase a writes row a, reads row a-1 (the self-test
  // shape). With the barrier the schedule is clean; the same accesses on a
  // barrier-less spec put producer and consumer in one segment -> RAW.
  AccessMap map;
  map.add_write("x", {16, 1}, 1);
  map.add_read("x", {16, 1}, 2, 1, 0, /*base=*/-16);

  LoopNestPlan with_barrier({LoopSpecs{0, 2, 1}, LoopSpecs{0, 8, 1}}, "aB|");
  EXPECT_TRUE(verify_team(with_barrier, 4, {map}).ok());

  LoopNestPlan no_barrier({LoopSpecs{0, 2, 1}, LoopSpecs{0, 8, 1}}, "aB");
  const VerifyReport r = verify_team(no_barrier, 4, {map});
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.has(IssueKind::kReadAfterWrite)) << r.summary();
}

TEST(Verifier, FlagsInOutAliasingViaSharedTensorName) {
  // Parallel threads read a neighbour's slot of the same buffer they write:
  // same tensor name makes the conflict visible.
  LoopNestPlan plan({LoopSpecs{0, 8, 1}}, "A");
  AccessMap aliased;
  aliased.add_write("buf", {1}, 1);
  aliased.add_read("buf", {1}, 1, 1, 0, /*base=*/1);  // reads slot a+1
  const VerifyReport r = verify_team(plan, 4, {aliased});
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.has(IssueKind::kReadAfterWrite)) << r.summary();
}

// --- mutations ---------------------------------------------------------------

TEST(Verifier, DetectsDroppedTuple) {
  LoopNestPlan plan({LoopSpecs{0, 4, 1}, LoopSpecs{0, 4, 1}}, "AB");
  auto team = parlooper::record_team_programs(plan, 4);
  auto mutated = mutate_programs(team, Mutation::kDropTuple, 2);
  ASSERT_FALSE(mutated.empty());
  const VerifyReport r = verify_programs(plan, mutated, {});
  EXPECT_TRUE(r.has(IssueKind::kCoverage)) << r.summary();
}

TEST(Verifier, DetectsDuplicatedTuple) {
  LoopNestPlan plan({LoopSpecs{0, 4, 1}, LoopSpecs{0, 4, 1}}, "AB");
  auto team = parlooper::record_team_programs(plan, 4);
  auto mutated = mutate_programs(team, Mutation::kDuplicateTuple, 2);
  ASSERT_FALSE(mutated.empty());
  const VerifyReport r = verify_programs(plan, mutated, {});
  EXPECT_TRUE(r.has(IssueKind::kCoverage)) << r.summary();
}

TEST(Verifier, CrossBarrierSwapNeedsAMultiSegmentProgram) {
  LoopNestPlan flat({LoopSpecs{0, 4, 1}}, "A");
  auto team = parlooper::record_team_programs(flat, 2);
  EXPECT_TRUE(mutate_programs(team, Mutation::kCrossBarrierSwap, 1).empty());
}

TEST(Verifier, MutationSelfTestPasses) {
  EXPECT_EQ(mutation_self_test(), "");
}

// --- backend equivalence -----------------------------------------------------

TEST(Verifier, BackendEquivalenceAcrossSpecFamilies) {
  if (!parlooper::JitLoop::available()) GTEST_SKIP() << "no JIT compiler";
  const char* specs[] = {"Ab", "aB", "AB", "ab", "aB|",
                         "AB @ schedule(dynamic,2)"};
  for (const char* spec : specs) {
    LoopNestPlan plan({LoopSpecs{0, 4, 1}, LoopSpecs{0, 6, 1}}, spec);
    for (int n : default_team_sizes()) {
      const VerifyReport r = verify_plan(plan, n);
      EXPECT_TRUE(r.ok()) << spec << " n=" << n << ": " << r.summary();
      EXPECT_TRUE(r.backend_checked) << spec;
    }
  }
}

// --- plan-compile-time hook --------------------------------------------------

// Unique bounds per test so the plan cache (keyed by bounds+spec) and the
// hook's per-plan memo cannot leak state between tests.

TEST(VerifyPlansHook, Mode2FailsConstructionOfRacyPlan) {
  ::setenv("PLT_VERIFY_PLANS", "2", 1);
  AccessMap everyone_writes_zero;
  everyone_writes_zero.add_write("x", {0}, 1);
  EXPECT_THROW(
      parlooper::LoopNest({LoopSpecs{0, 13, 1}}, "A",
                          parlooper::Backend::kInterpreter,
                          everyone_writes_zero),
      RuntimeError);
  // Not memoized on failure: constructing the same plan fails again.
  EXPECT_THROW(
      parlooper::LoopNest({LoopSpecs{0, 13, 1}}, "A",
                          parlooper::Backend::kInterpreter,
                          everyone_writes_zero),
      RuntimeError);
  ::unsetenv("PLT_VERIFY_PLANS");
}

TEST(VerifyPlansHook, Mode1WarnsButConstructs) {
  ::setenv("PLT_VERIFY_PLANS", "1", 1);
  AccessMap everyone_writes_zero;
  everyone_writes_zero.add_write("x", {0}, 1);
  parlooper::LoopNest nest({LoopSpecs{0, 17, 1}}, "A",
                           parlooper::Backend::kInterpreter,
                           everyone_writes_zero);
  ::unsetenv("PLT_VERIFY_PLANS");
  int count = 0;
  nest([&](const std::int64_t*) { ++count; });
  EXPECT_EQ(count, 17);
}

TEST(VerifyPlansHook, Mode2PassesCleanPlans) {
  ::setenv("PLT_VERIFY_PLANS", "2", 1);
  AccessMap per_owner;
  per_owner.add_write("x", {1, 0}, 1);
  parlooper::LoopNest nest({LoopSpecs{0, 19, 1}, LoopSpecs{0, 3, 1}}, "Ab",
                           parlooper::Backend::kInterpreter, per_owner);
  ::unsetenv("PLT_VERIFY_PLANS");
  int count = 0;
  nest([&](const std::int64_t*) { ++count; });
  EXPECT_EQ(count, 57);
}

// --- report plumbing ---------------------------------------------------------

TEST(Verifier, ReportSummaryNamesIssueKinds) {
  LoopNestPlan plan({LoopSpecs{0, 4, 1}}, "A");
  AccessMap racy;
  racy.add_write("x", {0}, 1);
  const VerifyReport r = verify_team(plan, 2, {racy});
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.summary().find("race"), std::string::npos);
  EXPECT_NE(r.summary().find("segment"), std::string::npos);
}

TEST(Verifier, StructureMismatchIsFlagged) {
  LoopNestPlan plan({LoopSpecs{0, 2, 1}, LoopSpecs{0, 8, 1}}, "aB|");
  auto team = parlooper::record_team_programs(plan, 2);
  team[1].seg_len.push_back(0);  // thread 1 claims an extra barrier
  const VerifyReport r = verify_programs(plan, team, {});
  EXPECT_TRUE(r.has(IssueKind::kStructure)) << r.summary();
}

}  // namespace
}  // namespace plt::analysis
