// Watchdog supervision + adaptive overload control tests: stall detection
// via the dispatcher_stall fault site, the warn -> quarantine -> failover +
// restart escalation ladder with exact terminal accounting (the PR 6
// invariant survives a supervised restart), quarantine rerouting, restart
// false-positive safety, and the delay-gradient controller's brownout /
// gradient-shed behavior. Designed to run TSan/ASan-clean.
#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/fault.hpp"
#include "common/status.hpp"
#include "serving/model_registry.hpp"
#include "serving/scheduler.hpp"
#include "serving/session.hpp"
#include "serving/watchdog.hpp"

namespace plt::serving {
namespace {

namespace fault = plt::common::fault;

// 4-elem passthrough (out = 2 * in) with an optional per-run sleep: the
// overload tests need an execution time that dwarfs the sojourn target
// without burning CPU, the watchdog tests need instant requests.
class EchoSession final : public Session {
 public:
  EchoSession(const std::string& name, int lanes, std::int64_t exec_usecs = 0)
      : Session(name, lanes, /*input_elems=*/4, /*output_elems=*/4,
                /*flops=*/1.0),
        exec_usecs_(exec_usecs) {}

  std::atomic<int> runs{0};

  void run(int, const float* in, float* out) override {
    runs.fetch_add(1);
    if (exec_usecs_ > 0) {
      std::this_thread::sleep_for(std::chrono::microseconds(exec_usecs_));
    }
    for (int i = 0; i < 4; ++i) out[i] = 2.0f * in[i];
  }

 private:
  const std::int64_t exec_usecs_;
};

TEST(WatchdogConfig, RestartTicksClampedAboveQuarantineTicks) {
  WatchdogConfig cfg;
  cfg.period_usecs = 1000;
  cfg.quarantine_ticks = 5;
  cfg.restart_ticks = 2;  // nonsense ordering: restart before quarantine
  RequestScheduler sched(SchedulerConfig{});
  Watchdog dog(&sched, nullptr, cfg);
  EXPECT_GE(dog.config().restart_ticks, dog.config().quarantine_ticks);
}

TEST(Watchdog, PeriodZeroDisablesSupervision) {
  RequestScheduler sched(SchedulerConfig{});
  WatchdogConfig cfg;
  cfg.period_usecs = 0;
  Watchdog dog(&sched, nullptr, cfg);
  EXPECT_FALSE(dog.running());
  EXPECT_EQ(dog.stats().warnings, 0u);
}

TEST(Watchdog, IdleParkedDispatcherIsNeverFlagged) {
  SchedulerConfig cfg;
  cfg.shards = 2;
  RequestScheduler sched(cfg);
  WatchdogConfig wcfg;
  wcfg.period_usecs = 1000;
  Watchdog dog(&sched, nullptr, wcfg);
  ASSERT_TRUE(dog.running());
  // Both dispatchers park with empty shards: heartbeats freeze, but zero
  // backlog is the idle signature, never the wedged one.
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  const auto st = dog.stats();
  EXPECT_EQ(st.warnings, 0u);
  EXPECT_EQ(st.quarantines, 0u);
  EXPECT_EQ(st.restarts, 0u);
}

// The ISSUE acceptance scenario: an armed dispatcher_stall wedges exactly
// one dispatcher (max_fires=1). The watchdog must warn, quarantine, fail
// the shard's pinned sessions over to a healthy partition, restart the
// dispatcher, and every request — including those stranded behind the
// stall — must resolve to exactly one terminal status. Stealing is off so
// the sibling cannot drain the wedged shard's queue out from under the
// ladder.
TEST(Watchdog, StallEscalatesToFailoverAndRestartWithExactAccounting) {
  fault::reset();
  auto a = std::make_shared<EchoSession>("wd_a", 2);
  auto b = std::make_shared<EchoSession>("wd_b", 2);
  ModelRegistry reg;
  reg.add(a);
  reg.add(b);

  SchedulerConfig cfg;
  cfg.max_batch = 2;
  cfg.batch_usecs = 100;
  cfg.shards = 2;
  cfg.steal = false;
  fault::configure("dispatcher_stall:fail:1.0:1", 5);
  RequestScheduler sched(cfg);
  // Commit the victim: exactly one dispatcher draws the stall and wedges.
  const auto t0 = std::chrono::steady_clock::now();
  while (fault::injected(fault::Site::kDispatcherStall) < 1 &&
         std::chrono::steady_clock::now() - t0 < std::chrono::seconds(10)) {
    std::this_thread::yield();
  }
  ASSERT_EQ(fault::injected(fault::Site::kDispatcherStall), 1u);

  a->pin_partition(0);
  b->pin_partition(1);

  WatchdogConfig wcfg;
  wcfg.period_usecs = 3000;
  wcfg.quarantine_ticks = 2;
  wcfg.restart_ticks = 3;
  Watchdog dog(&sched, &reg, wcfg);
  ASSERT_TRUE(dog.running());

  const float in[4] = {1, 2, 3, 4};
  constexpr int kPerModel = 16;
  std::vector<std::array<float, 4>> outs(2 * kPerModel);
  std::vector<RequestHandle> handles;
  for (int i = 0; i < kPerModel; ++i) {
    handles.push_back(
        sched.submit(a, in, outs[static_cast<std::size_t>(2 * i)].data()));
    handles.push_back(
        sched.submit(b, in, outs[static_cast<std::size_t>(2 * i + 1)].data()));
  }
  // One shard's requests are stranded behind the wedge until the watchdog
  // escalates through failover + restart; wait() must therefore return for
  // every handle, each with exactly one terminal status.
  for (auto& h : handles) {
    ASSERT_TRUE(h.ok());
    h.wait();
    ASSERT_TRUE(h.done());
    EXPECT_TRUE(h.status().ok()) << h.status().to_string();
  }
  for (const auto& out : outs) EXPECT_EQ(out[3], 8.0f);

  // Recovery: the replacement dispatcher's heartbeat lifts the quarantine.
  const auto t1 = std::chrono::steady_clock::now();
  while (dog.stats().recoveries < 1 &&
         std::chrono::steady_clock::now() - t1 < std::chrono::seconds(10)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  const auto wst = dog.stats();
  EXPECT_GE(wst.warnings, 1u);
  EXPECT_GE(wst.quarantines, 1u);
  EXPECT_GE(wst.restarts, 1u);
  EXPECT_GE(wst.failovers, 1u);  // the stalled shard's session was re-pinned
  EXPECT_GE(wst.recoveries, 1u);
  EXPECT_GE(sched.dispatcher_restarts(), 1u);
  for (int s = 0; s < sched.shard_count(); ++s) {
    EXPECT_FALSE(sched.shard_quarantined(s)) << "shard " << s;
  }

  dog.stop();
  fault::reset();
  sched.shutdown();
  const auto c = sched.counters();
  EXPECT_EQ(c.submitted, handles.size());
  EXPECT_EQ(c.completed + c.failed + c.expired + c.shed + c.rejected,
            c.submitted);
  EXPECT_EQ(c.completed, handles.size());  // nothing was lost OR failed
}

TEST(Watchdog, QuarantinedShardReroutesNewAdmissions) {
  auto s0 = std::make_shared<EchoSession>("wd_q0", 2);
  ModelRegistry reg;
  reg.add(s0);
  SchedulerConfig cfg;
  cfg.shards = 2;
  cfg.steal = false;
  RequestScheduler sched(cfg);
  s0->pin_partition(0);

  sched.set_shard_quarantined(0, true);
  EXPECT_TRUE(sched.shard_quarantined(0));
  const float in[4] = {1, 2, 3, 4};
  float out[4] = {0};
  // The home shard is quarantined: the submit lands on the healthy sibling
  // and still completes (thief-style execution on the sibling's partition).
  auto h = sched.submit(s0, in, out);
  ASSERT_TRUE(h.ok());
  h.wait();
  EXPECT_TRUE(h.status().ok()) << h.status().to_string();
  EXPECT_EQ(out[1], 4.0f);
  sched.set_shard_quarantined(0, false);

  sched.shutdown();
  const auto c = sched.counters();
  EXPECT_EQ(c.completed + c.failed + c.expired + c.shed + c.rejected,
            c.submitted);
}

// False-positive safety: restarting a HEALTHY dispatcher mid-traffic must
// lose nothing — the retired thread hands its pending work back through the
// queue and every handle still resolves exactly once.
TEST(Watchdog, RestartingHealthyDispatcherIsLossless) {
  auto s = std::make_shared<EchoSession>("wd_restart", 2, /*exec_usecs=*/200);
  SchedulerConfig cfg;
  cfg.shards = 1;
  cfg.max_batch = 2;
  cfg.batch_usecs = 100;
  RequestScheduler sched(cfg);

  const float in[4] = {1, 2, 3, 4};
  constexpr int kTotal = 64;
  std::vector<std::array<float, 4>> outs(kTotal);
  std::vector<RequestHandle> handles;
  for (int i = 0; i < kTotal; ++i) {
    handles.push_back(
        sched.submit(s, in, outs[static_cast<std::size_t>(i)].data()));
    if (i % 16 == 7) {
      EXPECT_TRUE(sched.restart_dispatcher(0));
    }
  }
  std::uint64_t ok = 0, unavailable = 0;
  for (auto& h : handles) {
    h.wait();
    ASSERT_TRUE(h.done());
    if (h.status().ok()) {
      ++ok;
    } else {
      // A restart racing shutdown may resolve a handed-back request
      // kUnavailable; that is still exactly-one-terminal-status.
      EXPECT_EQ(h.status().code(), StatusCode::kUnavailable)
          << h.status().to_string();
      ++unavailable;
    }
  }
  EXPECT_EQ(sched.dispatcher_restarts(), 4u);
  sched.shutdown();
  EXPECT_FALSE(sched.restart_dispatcher(0));  // after shutdown: refused
  const auto c = sched.counters();
  EXPECT_EQ(c.submitted, static_cast<std::uint64_t>(kTotal));
  EXPECT_EQ(c.completed, ok);
  EXPECT_EQ(c.completed + c.failed + c.expired + c.shed + c.rejected,
            c.submitted);
}

// Delay-gradient overload control: a single slow shard under a burst far
// beyond its capacity must brown out (level 1) and then shed throughput-
// class backlog (level 2) — while the latency class is never gradient-shed
// and completes in full (the "p95 of the latency class degrades last"
// contract, asserted structurally rather than by timing).
TEST(Overload, DelayGradientBrownsOutThenShedsThroughputOnly) {
  auto s = std::make_shared<EchoSession>("ovl", 2, /*exec_usecs=*/1000);
  SchedulerConfig cfg;
  cfg.shards = 1;
  cfg.max_batch = 4;
  cfg.batch_usecs = 100;
  cfg.target_delay_usecs = 300;  // sojourn target << 1 ms execution time
  RequestScheduler sched(cfg);

  const float in[4] = {1, 2, 3, 4};
  constexpr int kThroughput = 60;
  constexpr int kLatency = 10;
  std::vector<std::array<float, 4>> outs(kThroughput + kLatency);
  std::vector<RequestHandle> tp, lat;
  for (int i = 0; i < kThroughput; ++i) {
    Request r;
    r.in = in;
    r.out = outs[static_cast<std::size_t>(i)].data();
    r.cls = RequestClass::kThroughput;
    tp.push_back(sched.submit(s, r));
  }
  for (int i = 0; i < kLatency; ++i) {
    Request r;
    r.in = in;
    r.out = outs[static_cast<std::size_t>(kThroughput + i)].data();
    r.cls = RequestClass::kLatency;
    lat.push_back(sched.submit(s, r));
  }

  std::uint64_t tp_ok = 0, tp_shed = 0;
  for (auto& h : tp) {
    h.wait();
    ASSERT_TRUE(h.done());
    if (h.status().ok()) {
      ++tp_ok;
    } else {
      ASSERT_EQ(h.status().code(), StatusCode::kResourceExhausted)
          << h.status().to_string();
      EXPECT_NE(h.status().message().find("delay-gradient"),
                std::string::npos);
      ++tp_shed;
    }
  }
  for (auto& h : lat) {
    h.wait();
    ASSERT_TRUE(h.done());
    // The latency class is never gradient-shed: it completes, full stop.
    EXPECT_TRUE(h.status().ok()) << h.status().to_string();
  }

  EXPECT_GE(sched.overload_brownouts(), 1u);
  EXPECT_GE(sched.overload_sheds(), 1u);
  EXPECT_EQ(sched.overload_sheds(), tp_shed);
  EXPECT_GT(tp_ok, 0u);  // brownout is a brake, not a blackout

  sched.shutdown();
  const auto c = sched.counters();
  EXPECT_EQ(c.submitted, static_cast<std::uint64_t>(kThroughput + kLatency));
  EXPECT_EQ(c.shed, tp_shed);
  EXPECT_EQ(c.completed + c.failed + c.expired + c.shed + c.rejected,
            c.submitted);
}

TEST(Overload, ControllerOffWhenTargetUnset) {
  auto s = std::make_shared<EchoSession>("ovl_off", 2, /*exec_usecs=*/500);
  SchedulerConfig cfg;
  cfg.shards = 1;
  cfg.max_batch = 2;
  cfg.target_delay_usecs = 0;  // adaptive control disabled
  RequestScheduler sched(cfg);

  const float in[4] = {1, 2, 3, 4};
  std::vector<std::array<float, 4>> outs(24);
  std::vector<RequestHandle> handles;
  for (int i = 0; i < 24; ++i) {
    Request r;
    r.in = in;
    r.out = outs[static_cast<std::size_t>(i)].data();
    r.cls = RequestClass::kThroughput;
    handles.push_back(sched.submit(s, r));
  }
  for (auto& h : handles) {
    h.wait();
    EXPECT_TRUE(h.status().ok()) << h.status().to_string();
  }
  EXPECT_EQ(sched.overload_brownouts(), 0u);
  EXPECT_EQ(sched.overload_sheds(), 0u);
  EXPECT_EQ(sched.overload_level(0), 0);
  sched.shutdown();
}

}  // namespace
}  // namespace plt::serving
