// Table I: MLPerf-style BERT time-to-train. The paper reports multi-node
// SPR results (85.91 min on 8 nodes, 47.26 min on 16); a single host cannot
// reproduce a cluster, so per DESIGN.md this bench measures the real
// single-socket training step built on the PARLOOPER/TPP encoder and applies
// a strong-scaling model (92%/86% efficiency at 8/16 nodes — typical
// all-reduce-dominated BERT scaling) to a fixed sample budget.
// BENCH_tab1_mlperf_scaling.json rows carry a _p<N> suffix (N = active pool
// partition count), so the CI matrix legs (1 vs 2 partitions) land in
// distinct rows and the partition-scaling trajectory is tracked per PR.
#include "bench/bench_util.hpp"
#include "dl/bert.hpp"

using namespace plt;

int main(int argc, char** argv) {
  const bool full = bench::has_flag(argc, argv, "--full");
  dl::BertConfig cfg = full ? dl::BertConfig::large_scaled()
                            : [] {
                                dl::BertConfig c;
                                c.hidden = 128;
                                c.heads = 4;
                                c.intermediate = 512;
                                c.layers = 2;
                                c.seq_len = 64;
                                return c;
                              }();
  cfg.dtype = DType::BF16;

  Xoshiro256 rng(41);
  dl::BertEncoder model(cfg, rng);
  dl::Tensor x({cfg.tokens(), cfg.hidden}), target(x);
  x.randn_uniform(rng, -1.0f, 1.0f);
  target.randn_uniform(rng, -0.5f, 0.5f);
  model.training_step(x.data(), target.data(), 1e-4f, rng);  // warmup
  const int steps = 3;
  WallTimer t;
  for (int i = 0; i < steps; ++i)
    model.training_step(x.data(), target.data(), 1e-4f, rng);
  const double step_s = t.seconds() / steps;
  const double seq_per_sec_socket = static_cast<double>(cfg.batch) / step_s;

  // MLPerf BERT converges after a fixed sample budget; we use a scaled
  // budget proportional to our scaled model so minutes land in a readable
  // range. What matters for the table's shape is the 8->16 node ratio.
  const double samples = full ? 2.4e5 : 3.0e4;
  struct Row {
    const char* system;
    int sockets;
    double efficiency;
  };
  bench::JsonReporter json("tab1_mlperf_scaling");
  const std::string psuf = bench::partition_suffix();
  bench::print_header("Table I — BERT time-to-train (strong-scaling model "
                      "over the measured socket rate)");
  std::printf("measured single-socket rate: %.2f seq/s (step %.1f ms)\n",
              seq_per_sec_socket, step_s * 1e3);
  json.add_value("tab1_bert_socket_rate" + psuf, seq_per_sec_socket,
                 "seq_per_sec");
  json.add_value("tab1_bert_step" + psuf, step_s * 1e3, "ms");
  std::printf("%-26s %16s\n", "system", "time-to-train (min)");
  for (const Row& r : {Row{"8 nodes (16 sockets)", 16, 0.92},
                       Row{"16 nodes (32 sockets)", 32, 0.86}}) {
    const double rate = seq_per_sec_socket * r.sockets * r.efficiency;
    std::printf("%-26s %16.2f\n", r.system, samples / rate / 60.0);
    json.add_value("tab1_ttt_" + std::to_string(r.sockets) + "sockets" + psuf,
                   samples / rate / 60.0, "min");
  }
  bench::report_pool_stats(json);
  std::printf("\nexpected shape: 16 nodes ~1.8x faster than 8 nodes "
              "(paper: 85.91 -> 47.26 min, a 1.82x ratio).\n");
  return 0;
}
