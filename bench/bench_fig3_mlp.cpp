// Fig. 3: MLP with bias-add and ReLU activations — GFLOPS and efficiency
// (fraction of the best GEMM rate observed in this run; the paper reports
// % of machine peak) as the weight matrices grow. Expected shape: efficiency
// rises with weight size as B-tensor reuse improves.
#include "bench/bench_util.hpp"
#include "kernels/mlp_kernel.hpp"

using namespace plt;

int main(int argc, char** argv) {
  const bool full = bench::has_flag(argc, argv, "--full");
  struct Case {
    std::int64_t width;
    std::int64_t layers;
  };
  std::vector<Case> cases = full
                                ? std::vector<Case>{{512, 20}, {1024, 10},
                                                    {2048, 4}, {4096, 2}}
                                : std::vector<Case>{{128, 8}, {256, 4},
                                                    {512, 2}};
  const std::int64_t N = full ? 512 : 128;  // minibatch (paper uses 512)

  // Reference rate: a single large GEMM at the same blocking.
  kernels::GemmConfig ref;
  ref.M = ref.N = ref.K = full ? 1024 : 256;
  ref.bm = ref.bn = ref.bk = 32;
  const double peak = bench::run_gemm(ref).gflops;

  bench::print_header("Fig. 3 — MLP with bias + ReLU (N = minibatch)");
  std::printf("%-24s %12s %14s\n", "layers x (MxK)", "GFLOPS",
              "%% of GEMM rate");
  bench::JsonReporter json("fig3_mlp");
  json.add("gemm_reference", peak, 0.0);

  for (const Case& c : cases) {
    kernels::MlpConfig cfg;
    cfg.sizes.assign(static_cast<std::size_t>(c.layers) + 1, c.width);
    cfg.N = N;
    cfg.bm = cfg.bn = cfg.bk = 32;
    cfg.act = kernels::Activation::kRelu;
    kernels::MlpKernel mlp(cfg);

    // Operands.
    std::vector<AlignedBuffer<std::uint8_t>> weights;
    std::vector<std::vector<float>> biases;
    std::vector<const void*> w_ptrs;
    std::vector<const float*> b_ptrs;
    Xoshiro256 rng(3);
    for (std::int64_t l = 0; l < mlp.num_layers(); ++l) {
      const auto& g = mlp.layer(l);
      std::vector<float> flat(static_cast<std::size_t>(g.config().M *
                                                       g.config().K));
      fill_uniform(flat.data(), flat.size(), rng, -0.05f, 0.05f);
      weights.emplace_back(g.a_elems() * 4);
      g.pack_a(flat.data(), weights.back().data());
      biases.emplace_back(static_cast<std::size_t>(g.config().M), 0.01f);
    }
    for (auto& w : weights) w_ptrs.push_back(w.data());
    for (auto& b : biases) b_ptrs.push_back(b.data());

    const auto& g0 = mlp.layer(0);
    AlignedBuffer<std::uint8_t> in(g0.b_elems() * 4);
    std::vector<float> in_flat(g0.b_elems());
    fill_uniform(in_flat.data(), in_flat.size(), rng, -1.0f, 1.0f);
    g0.pack_b(in_flat.data(), in.data());
    const auto& gl = mlp.layer(mlp.num_layers() - 1);
    AlignedBuffer<std::uint8_t> out(gl.c_elems() * 4);

    const double s = time_best_seconds(
        [&] { mlp.run(in.data(), w_ptrs, b_ptrs, out.data()); }, 1, 3);
    const double gf = gflops(mlp.flops(), s);
    std::printf("%2ld x (%4ldx%-4ld)          %12.2f %13.1f%%\n",
                static_cast<long>(c.layers), static_cast<long>(c.width),
                static_cast<long>(c.width), gf, 100.0 * gf / peak);
    const std::string row = "mlp_" + std::to_string(c.layers) + "x" +
                            std::to_string(c.width);
    json.add(row, gf, 0.0);
    json.add_value(row + "_efficiency", 100.0 * gf / peak, "percent_of_gemm");
  }
  std::printf("\nexpected shape: efficiency increases with weight size "
              "(better B-tensor reuse), as in the paper's Fig. 3.\n");
  return 0;
}
