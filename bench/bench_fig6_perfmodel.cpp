// Fig. 6: performance-model score vs measured GFLOPS across many
// loop_spec_strings for a GEMM. The paper's claim: the model captures the
// trends (poor-locality / poor-concurrency specs score low) and its top-5
// modeled classes always contain the most performant measured instantiation.
#include <algorithm>

#include "bench/bench_util.hpp"
#include "tuner/tuner.hpp"

using namespace plt;

int main(int argc, char** argv) {
  const bool full = bench::has_flag(argc, argv, "--full");
  const std::int64_t n = full ? 1024 : 256;

  perfmodel::GemmModelProblem p;
  p.M = p.N = p.K = n;
  p.bm = p.bn = p.bk = 32;
  tuner::SpecGenOptions gopts;
  gopts.max_candidates = full ? 40 : 16;
  gopts.include_serial = true;  // include poor-concurrency schedules
  const auto cands = tuner::generate_gemm_candidates(p, gopts);

  kernels::GemmConfig base;
  base.M = base.N = base.K = n;
  base.bm = base.bn = base.bk = 32;
  tuner::TuneOptions topts;
  topts.warmup = 1;
  topts.iters = 3;
  // Rank for the machine being measured: offline cross-platform tuning would
  // pass the *target's* concurrency here; for the correlation check the
  // model must assume the same thread count the measurements run with.
  topts.model_threads = 0;

  for (const auto& platform : {perfmodel::PlatformModel::spr_like(),
                               perfmodel::PlatformModel::zen4_like()}) {
    topts.platform = platform;
    tuner::GemmTuner tuner(base, topts);
    auto measured = tuner.run(cands);
    auto modeled = tuner.rank_with_model(cands);

    // Join on the spec key.
    const auto key = [](const tuner::TuneCandidate& c) {
      std::string k = c.spec;
      for (auto v : c.m_blocking) k += "/" + std::to_string(v);
      for (auto v : c.n_blocking) k += "/" + std::to_string(v);
      for (auto v : c.k_blocking) k += "/" + std::to_string(v);
      return k;
    };
    bench::print_header(("Fig. 6 — model vs measured (" + platform.name +
                         ", GEMM " + std::to_string(n) + "^3)")
                            .c_str());
    std::printf("%-28s %12s %14s\n", "spec", "GFLOPS", "model f/c");
    for (const auto& m : measured) {
      double score = 0.0;
      for (const auto& r : modeled) {
        if (key(r.candidate) == key(m.candidate)) {
          score = r.model_score;
          break;
        }
      }
      std::printf("%-28s %12.2f %14.2f\n", m.candidate.spec.c_str(), m.gflops,
                  score);
    }

    // Top-5 containment, class-based as in the paper ("the top-5 modeled
    // classes always contain the most performant loop instantiation"):
    // candidates whose score ties the 5th-ranked score belong to the same
    // modeled class, so containment is judged by score, not list position.
    const std::string best_key = key(measured.front().candidate);
    double best_score = 0.0;
    for (const auto& r : modeled) {
      if (key(r.candidate) == best_key) {
        best_score = r.model_score;
        break;
      }
    }
    const std::size_t fifth = std::min<std::size_t>(5, modeled.size()) - 1;
    const double cutoff = modeled[fifth].model_score;
    const bool contained = best_score >= cutoff * (1.0 - 1e-6);
    std::printf("model top-5 classes contain measured best: %s "
                "(best spec score %.2f vs 5th-class cutoff %.2f; paper: "
                "always)\n",
                contained ? "YES" : "no", best_score, cutoff);
  }
  return 0;
}
