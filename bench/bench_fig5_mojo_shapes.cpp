// Fig. 5: FP32 GEMM on the 16 BERT/GPT/DLRM shapes of the Mojo comparison.
// The Mojo substitute is the fixed-schedule blocked GEMM (high-level tiling
// without per-shape outer-loop adaptation). The paper reports a geomean
// PARLOOPER speedup of 1.35x.
#include "baselines/ref_gemm.hpp"
#include "bench/bench_util.hpp"

using namespace plt;

int main(int argc, char** argv) {
  const bool full = bench::has_flag(argc, argv, "--full");
  // (M, N, K) triples from the paper's Fig. 5 x-axis.
  struct Shape {
    std::int64_t m, n, k;
  };
  std::vector<Shape> shapes = {
      {1024, 256, 4096}, {4096, 256, 1024}, {1024, 256, 1024},
      {1024, 128, 4096}, {4096, 128, 1024}, {1024, 128, 1024},
      {768, 256, 768},   {768, 128, 768},   {3072, 128, 768},
      {768, 128, 3072},  {3072, 256, 768},  {768, 256, 3072},
      {768, 128, 2304},  {2560, 1024, 1024}, {1024, 1024, 512},
      {352, 1024, 512},  {512, 1024, 256}};
  const std::int64_t scale = full ? 1 : 4;

  bench::print_header("Fig. 5 — GEMM on BERT/GPT/DLRM shapes (fp32)");
  std::printf("%-18s %12s %12s %9s\n", "MxNxK", "PARLOOPER", "mojo-sub",
              "speedup");

  std::vector<double> speedups;
  for (const Shape& s : shapes) {
    const std::int64_t m = s.m / scale, n = std::max<std::int64_t>(32, s.n / scale),
                       k = s.k / scale;
    if (m % 32 || n % 32 || k % 32) continue;
    kernels::GemmConfig cfg;
    cfg.M = m;
    cfg.N = n;
    cfg.K = k;
    cfg.bm = cfg.bn = cfg.bk = 32;
    // Skewed shapes prefer different orders; pick by aspect ratio — the
    // cheap "manual performance modeling" path of Fig. 1 Box B1.
    cfg.loop_spec = m >= 2 * n ? "CBa" : "BCa";
    const auto ours = bench::run_gemm(cfg, 1, 2);

    std::vector<float> a(static_cast<std::size_t>(m * k)),
        b(static_cast<std::size_t>(k * n)), c(static_cast<std::size_t>(m * n));
    Xoshiro256 rng(9);
    fill_uniform(a.data(), a.size(), rng, -0.5f, 0.5f);
    fill_uniform(b.data(), b.size(), rng, -0.5f, 0.5f);
    const double bs = time_best_seconds(
        [&] { baselines::fixed_blocked_gemm(a.data(), b.data(), c.data(), m, n, k); },
        1, 2);
    const double base_gf = gflops(2.0 * m * n * k, bs);
    speedups.push_back(ours.gflops / base_gf);
    std::printf("%5ldx%4ldx%-5ld %12.2f %12.2f %8.2fx\n",
                static_cast<long>(m), static_cast<long>(n),
                static_cast<long>(k), ours.gflops, base_gf,
                ours.gflops / base_gf);
  }
  std::printf("geomean speedup: %.2fx (paper: 1.35x vs Mojo)\n",
              bench::geomean(speedups));
  return 0;
}
