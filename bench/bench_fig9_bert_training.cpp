// Fig. 9: BERT-Large fine-tuning throughput (sequences/sec). Software
// tiers (vendor stacks substituted per DESIGN.md):
//   "hf-sub"    — the unadapted schedule (serial K-outer loops, the
//                 framework-default path),
//   "tpp-fixed" — TPP kernels with a fixed loop order (prior work [12]),
//   "this-work" — PARLOOPER-selected loop order,
// each in fp32 and bf16. Expected shape: this-work >= tpp-fixed >= hf-sub,
// and bf16 > fp32 (the paper reports 1.22x over tpp-fixed and large bf16
// gains on AMX-class hardware).
#include "bench/bench_util.hpp"
#include "dl/bert.hpp"

using namespace plt;

namespace {

double seq_per_sec(const dl::BertConfig& cfg, int steps) {
  Xoshiro256 rng(17);
  dl::BertEncoder model(cfg, rng);
  dl::Tensor x({cfg.tokens(), cfg.hidden}), target(x);
  x.randn_uniform(rng, -1.0f, 1.0f);
  target.randn_uniform(rng, -0.5f, 0.5f);
  // Warmup.
  model.training_step(x.data(), target.data(), 1e-4f, rng);
  WallTimer t;
  for (int i = 0; i < steps; ++i) {
    model.training_step(x.data(), target.data(), 1e-4f, rng);
  }
  return static_cast<double>(steps) * static_cast<double>(cfg.batch) /
         t.seconds();
}

}  // namespace

int main(int argc, char** argv) {
  const bool full = bench::has_flag(argc, argv, "--full");
  dl::BertConfig base = full ? dl::BertConfig::large_scaled()
                             : [] {
                                 dl::BertConfig c;
                                 c.hidden = 128;
                                 c.heads = 4;
                                 c.intermediate = 512;
                                 c.layers = 2;
                                 c.seq_len = 64;
                                 return c;
                               }();
  const int steps = full ? 4 : 3;

  bench::print_header("Fig. 9 — BERT fine-tuning throughput (sequences/sec)");
  std::printf("%-12s %-6s %14s\n", "stack", "dtype", "seq/sec");
  bench::JsonReporter json("fig9_bert_training");

  struct Tier {
    const char* name;
    const char* spec;
  };
  for (const Tier& tier : {Tier{"hf-sub", "abc"}, Tier{"tpp-fixed", "aBC"},
                           Tier{"this-work", "BCa"}}) {
    for (DType dt : {DType::F32, DType::BF16}) {
      dl::BertConfig cfg = base;
      cfg.loop_spec = tier.spec;
      cfg.dtype = dt;
      const double sps = seq_per_sec(cfg, steps);
      std::printf("%-12s %-6s %14.2f\n", tier.name,
                  dt == DType::F32 ? "fp32" : "bf16", sps);
      json.add_value(std::string(tier.name) + "_" +
                         (dt == DType::F32 ? "fp32" : "bf16"),
                     sps, "seq_per_sec");
    }
  }
  std::printf("\nexpected shape: this-work >= tpp-fixed >= hf-sub (paper: "
              "1.22x over the fixed-loop TPP stack, 3.3x over IPEX).\n");
  return 0;
}
