// Network front-end loadgen: wire-protocol round trips against a loopback
// net::Server, measuring what the socket layer adds on top of the in-process
// scheduler (bench_serving measures the scheduler itself).
//
// Topology: one epoll server over the sharded scheduler; `clients` blocking
// connections each keep `depth` pipelined requests in flight (send_request /
// recv_response halves, correlated by request_id), mixed MLP + BERT + LLM
// traffic with per-connection tenant ids.
//
// Emits BENCH_net.json with:
//   net_round_trip_p{50,95,99}_us   pipelined round-trip latency percentiles
//   net_round_trip_mean_us          mean round trip
//   net_req_per_sec                 aggregate wire throughput
//   net_wire_encode_ns / net_wire_decode_ns  frame codec cost (no socket)
//   net_quota_rejected / net_protocol_errors server-side counters (quota
//                                   rejects cross-checked against clients)
//   serving_<terminal>_requests     exact terminal accounting, as everywhere
//   pool_* ThreadPool stats
// plus a quota section when PLT_NET_TENANT_QPS is set (CI runs it both ways).
#include <algorithm>
#include <chrono>
#include <cstring>
#include <thread>
#include <unordered_map>

#include "bench/bench_util.hpp"
#include "net/client.hpp"
#include "net/server.hpp"
#include "net/wire.hpp"
#include "serving/model_registry.hpp"
#include "serving/scheduler.hpp"
#include "serving/session.hpp"

using namespace plt;

namespace {

double percentile(std::vector<double> v, double p) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const std::size_t idx = std::min(
      v.size() - 1, static_cast<std::size_t>(p * static_cast<double>(v.size())));
  return v[idx];
}

}  // namespace

int main(int argc, char** argv) {
  const bool full = bench::has_flag(argc, argv, "--full");
  const bool smoke = bench::has_flag(argc, argv, "--smoke");
  const int clients = 4;
  const int depth = 4;                                    // pipeline depth
  const int per_client = full ? 600 : (smoke ? 120 : 300);  // requests each

  serving::SchedulerConfig cfg = serving::SchedulerConfig::from_env();
  const int lanes = cfg.max_batch;

  bench::print_header("Network front-end — wire round trips over loopback");

  // The bench_serving latency-class model mix, served over the socket.
  serving::ModelRegistry registry;
  {
    serving::MlpServeConfig mlp;
    mlp.features = 16;
    mlp.layers = 8;
    mlp.tokens = 8;
    mlp.bm = mlp.bn = mlp.bk = 8;
    registry.add(serving::make_mlp_session("mlp", mlp, lanes, 101));
    dl::BertConfig bert;
    bert.hidden = 16;
    bert.heads = 2;
    bert.intermediate = 32;
    bert.layers = 1;
    bert.seq_len = 8;
    bert.bm = bert.bn = bert.bk = 8;
    registry.add(serving::make_bert_session("bert", bert, lanes, 102));
    dl::LlmConfig llm;
    llm.hidden = 16;
    llm.heads = 2;
    llm.layers = 2;
    llm.ffn = 32;
    llm.vocab = 128;
    llm.max_seq = 32;
    llm.bm = llm.bn = llm.bk = 8;
    registry.add(serving::make_llm_session("llm", llm, /*prompt=*/4,
                                           /*gen=*/16, lanes, 103));
  }
  const auto sessions = registry.sessions();

  const Runtime saved = runtime();
  set_runtime(Runtime::kPool);
  serving::RequestScheduler scheduler(cfg);
  net::Server server(registry, scheduler);
  const Status up = server.start();
  if (!up.ok()) {
    std::printf("FAIL: server start: %s\n", up.to_string().c_str());
    return 1;
  }
  std::printf("%d clients x %d requests, pipeline depth %d, port %d\n",
              clients, per_client, depth, server.port());

  bench::JsonReporter json("net");

  // --- frame codec microbench (no socket) ---------------------------------
  {
    net::RequestFrame req;
    req.request_id = 1;
    req.name = "mlp";
    req.payload.assign(static_cast<std::size_t>(sessions[0]->input_elems()),
                       0.5f);
    std::vector<std::uint8_t> bytes;
    const int reps = 20000;
    const double enc_s = time_best_seconds(
        [&] {
          for (int i = 0; i < reps; ++i) {
            bytes.clear();
            net::encode_request(req, &bytes);
          }
        },
        1, 3);
    net::RequestFrame out;
    std::size_t consumed = 0;
    std::string error;
    const double dec_s = time_best_seconds(
        [&] {
          for (int i = 0; i < reps; ++i) {
            net::decode_request(bytes.data(), bytes.size(), &out, &consumed,
                                &error);
          }
        },
        1, 3);
    std::printf("frame codec (%zu-byte request): encode %.0f ns, decode "
                "%.0f ns\n",
                bytes.size(), enc_s / reps * 1e9, dec_s / reps * 1e9);
    json.add_value("net_wire_encode_ns", enc_s / reps * 1e9, "ns");
    json.add_value("net_wire_decode_ns", dec_s / reps * 1e9, "ns");
  }

  // --- pipelined loadgen ---------------------------------------------------
  std::vector<std::vector<double>> lat_us(static_cast<std::size_t>(clients));
  std::atomic<int> failures{0};
  // Quota rejections are an expected terminal when PLT_NET_TENANT_QPS is set
  // (CI runs the loadgen both ways); they are counted separately and cross-
  // checked against the server's own counter, never treated as failures.
  std::atomic<std::uint64_t> quota_rejects{0};
  const auto run_load = [&](bool record) {
    std::vector<std::thread> threads;
    for (int c = 0; c < clients; ++c) {
      threads.emplace_back([&, c] {
        net::Client client;
        if (!client.connect("127.0.0.1", server.port()).ok()) {
          failures.fetch_add(per_client, std::memory_order_relaxed);
          return;
        }
        // Per-session input reused across requests; the server copies the
        // payload into its own in-flight buffers, so reuse is safe.
        std::vector<std::vector<float>> inputs;
        for (const auto& s : sessions) {
          std::vector<float> in(static_cast<std::size_t>(s->input_elems()));
          Xoshiro256 rng(9000 + static_cast<std::uint64_t>(c));
          fill_uniform(in.data(), in.size(), rng, -1.0f, 1.0f);
          inputs.push_back(std::move(in));
        }
        std::unordered_map<std::uint64_t,
                           std::chrono::steady_clock::time_point>
            sent;
        std::uint64_t next_id = 1;
        int received = 0;
        const auto send_one = [&] {
          const std::size_t m =
              (static_cast<std::size_t>(c) + next_id) % sessions.size();
          net::RequestFrame req;
          req.request_id = next_id++;
          req.tenant_id = static_cast<std::uint64_t>(c);
          req.name = sessions[m]->name();
          req.payload = inputs[m];
          sent.emplace(req.request_id, std::chrono::steady_clock::now());
          return client.send_request(req).ok();
        };
        for (int i = 0; i < depth; ++i) {
          if (!send_one()) break;
        }
        net::ResponseFrame resp;
        while (received < per_client) {
          if (!client.recv_response(&resp).ok()) break;
          const auto now = std::chrono::steady_clock::now();
          const auto it = sent.find(resp.request_id);
          if (it != sent.end()) {
            if (record && resp.code == net::WireCode::kOk) {
              lat_us[static_cast<std::size_t>(c)].push_back(
                  std::chrono::duration<double, std::micro>(now - it->second)
                      .count());
            }
            sent.erase(it);
          }
          if (resp.code == net::WireCode::kResourceExhausted &&
              resp.message.find("over quota") != std::string::npos) {
            quota_rejects.fetch_add(1, std::memory_order_relaxed);
          } else if (resp.code != net::WireCode::kOk) {
            failures.fetch_add(1, std::memory_order_relaxed);
          }
          ++received;
          if (next_id <= static_cast<std::uint64_t>(per_client)) {
            if (!send_one()) break;
          }
        }
        failures.fetch_add(per_client - received, std::memory_order_relaxed);
      });
    }
    for (auto& th : threads) th.join();
  };

  run_load(/*record=*/false);  // warmup: plan caches, lane sizing, TCP
  WallTimer t;
  run_load(/*record=*/true);
  const double secs = t.seconds();

  std::vector<double> all;
  for (const auto& v : lat_us) all.insert(all.end(), v.begin(), v.end());
  if (failures.load() != 0) {
    std::printf("FAIL: %d requests failed on the wire\n", failures.load());
    return 1;
  }
  // Under a tight quota every recorded round trip may be a reject; the run's
  // contract is then the accounting below, not the latency distribution. No
  // OK responses AND no rejects means the loadgen never actually ran.
  if (all.empty() && quota_rejects.load() == 0) {
    std::printf("FAIL: no round trips completed\n");
    return 1;
  }
  if (!all.empty()) {
    const double total = static_cast<double>(all.size());
    const double rps = total / secs;
    double mean = 0.0;
    for (double v : all) mean += v;
    mean /= total;
    const double p50 = percentile(all, 0.50);
    const double p95 = percentile(all, 0.95);
    const double p99 = percentile(all, 0.99);
    std::printf("\n%zu OK round trips in %.2fs: %.1f req/s (%llu quota "
                "rejects)\n",
                all.size(), secs, rps,
                static_cast<unsigned long long>(quota_rejects.load()));
    std::printf("round trip  mean %8.1f us   p50 %8.1f us   p95 %8.1f us   "
                "p99 %8.1f us\n",
                mean, p50, p95, p99);
    json.add_value("net_round_trip_mean_us", mean, "us");
    json.add_value("net_round_trip_p50_us", p50, "us");
    json.add_value("net_round_trip_p95_us", p95, "us");
    json.add_value("net_round_trip_p99_us", p99, "us");
    json.add_value("net_req_per_sec", rps, "req_per_sec");
  }

  server.stop();
  scheduler.shutdown();
  set_runtime(saved);

  const auto st = server.stats();
  json.add_value("net_quota_rejected", static_cast<double>(st.quota_rejected),
                 "requests");
  json.add_value("net_protocol_errors",
                 static_cast<double>(st.protocol_errors), "requests");
  const auto counters = scheduler.counters();
  json.add_value("serving_submitted_requests",
                 static_cast<double>(counters.submitted), "requests");
  json.add_value("serving_completed_requests",
                 static_cast<double>(counters.completed), "requests");
  json.add_value("serving_failed_requests",
                 static_cast<double>(counters.failed), "requests");
  json.add_value("serving_expired_requests",
                 static_cast<double>(counters.expired), "requests");
  json.add_value("serving_shed_requests",
                 static_cast<double>(counters.shed), "requests");
  json.add_value("serving_rejected_requests",
                 static_cast<double>(counters.rejected), "requests");
  bench::report_pool_stats(json);

  // Exact terminal accounting over the wire: every submit the server made
  // resolved to exactly one terminal status, every round trip got a
  // response, and the client-observed quota rejections match the server's
  // pre-scheduler counter exactly (both passes included).
  const std::uint64_t resolved = counters.completed + counters.failed +
                                 counters.expired + counters.shed +
                                 counters.rejected;
  if (counters.submitted != resolved) {
    std::printf("FAIL: terminal accounting %llu submitted != %llu resolved\n",
                static_cast<unsigned long long>(counters.submitted),
                static_cast<unsigned long long>(resolved));
    return 1;
  }
  if (quota_rejects.load() != st.quota_rejected) {
    std::printf("FAIL: quota accounting: clients saw %llu rejects, server "
                "counted %llu\n",
                static_cast<unsigned long long>(quota_rejects.load()),
                static_cast<unsigned long long>(st.quota_rejected));
    return 1;
  }
  if (st.frames != counters.submitted + st.quota_rejected) {
    std::printf("FAIL: %llu decoded frames != %llu submitted + %llu "
                "quota-rejected\n",
                static_cast<unsigned long long>(st.frames),
                static_cast<unsigned long long>(counters.submitted),
                static_cast<unsigned long long>(st.quota_rejected));
    return 1;
  }
  std::printf("terminal accounting exact: %llu submitted == %llu resolved "
              "(+%llu quota-rejected on the wire) OK\n",
              static_cast<unsigned long long>(counters.submitted),
              static_cast<unsigned long long>(resolved),
              static_cast<unsigned long long>(st.quota_rejected));
  return 0;
}
