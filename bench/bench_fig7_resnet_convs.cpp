// Fig. 7: the 20 ResNet-50 convolution shapes — PARLOOPER/TPP direct
// convolution vs the im2col+GEMM library substitute. The paper reports
// geomean wins of 1.12x-1.75x depending on platform.
#include "baselines/ref_conv.hpp"
#include "bench/bench_util.hpp"
#include "dl/resnet.hpp"
#include "kernels/conv_kernel.hpp"

using namespace plt;

int main(int argc, char** argv) {
  const bool full = bench::has_flag(argc, argv, "--full");
  const std::int64_t N = 1;  // ADL-style single-image inference by default
  const std::int64_t spatial_div = full ? 1 : 2;  // shrink H/W when scaled

  bench::print_header("Fig. 7 — ResNet-50 convolution shapes (fp32, MB=1)");
  std::printf("%-3s %-26s %12s %12s %9s\n", "ID", "CxK HxW RxS/str",
              "PARLOOPER", "im2col-sub", "speedup");
  bench::JsonReporter json("fig7_resnet_convs");

  std::vector<double> speedups;
  for (const dl::Fig7ConvShape& s : dl::fig7_conv_shapes()) {
    const std::int64_t H = std::max<std::int64_t>(7, s.H / spatial_div);
    const std::int64_t W = std::max<std::int64_t>(7, s.W / spatial_div);
    kernels::ConvConfig cfg;
    cfg.N = N;
    cfg.C = s.C;
    cfg.K = s.K;
    cfg.H = H;
    cfg.W = W;
    cfg.R = s.R;
    cfg.S = s.S;
    cfg.stride_h = cfg.stride_w = s.stride;
    cfg.pad_h = cfg.pad_w = s.pad;
    cfg.bc = cfg.bk = 32;
    kernels::ConvKernel kernel(cfg);

    Xoshiro256 rng(1);
    std::vector<float> input(static_cast<std::size_t>(N * s.C * H * W));
    std::vector<float> weights(static_cast<std::size_t>(s.K * s.C * s.R * s.S));
    fill_uniform(input.data(), input.size(), rng, -0.5f, 0.5f);
    fill_uniform(weights.data(), weights.size(), rng, -0.1f, 0.1f);

    AlignedBuffer<std::uint8_t> in_b(kernel.input_elems() * 4);
    AlignedBuffer<std::uint8_t> w_b(kernel.weight_elems() * 4);
    AlignedBuffer<std::uint8_t> out_b(kernel.output_elems() * 4);
    kernel.pack_input(input.data(), in_b.data());
    kernel.pack_weights(weights.data(), w_b.data());
    const double ours_s = time_best_seconds(
        [&] { kernel.run(in_b.data(), w_b.data(), out_b.data()); }, 1, 2);
    const double ours_gf = gflops(kernel.flops(), ours_s);

    baselines::ConvShape shape{N, s.C, s.K, H, W, s.R, s.S,
                               s.stride, s.stride, s.pad, s.pad};
    std::vector<float> out(static_cast<std::size_t>(N * s.K * shape.P() * shape.Q()));
    const double base_s = time_best_seconds(
        [&] { baselines::im2col_conv(shape, input.data(), weights.data(), out.data()); },
        0, 1);
    const double base_gf = gflops(shape.flops(), base_s);

    speedups.push_back(ours_gf / base_gf);
    const std::string row = "conv" + std::to_string(s.layer_id);
    json.add(row + "_parlooper", ours_gf, 0.0);
    json.add(row + "_im2col", base_gf, 0.0);
    json.add_value(row + "_speedup", ours_gf / base_gf, "ratio");
    std::printf("%-3d %4ldx%-4ld %3ldx%-3ld %ldx%ld/%ld  %12.2f %12.2f %8.2fx\n",
                s.layer_id, static_cast<long>(s.C), static_cast<long>(s.K),
                static_cast<long>(H), static_cast<long>(W),
                static_cast<long>(s.R), static_cast<long>(s.S),
                static_cast<long>(s.stride), ours_gf, base_gf,
                ours_gf / base_gf);
  }
  std::printf("geomean speedup: %.2fx (paper: 1.12x-1.75x per platform)\n",
              bench::geomean(speedups));
  json.add_value("geomean_speedup", bench::geomean(speedups), "ratio");
  return 0;
}
