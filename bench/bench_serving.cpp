// Serving-layer benchmark: micro-batching scheduler on the persistent pool
// vs naive per-request dispatch under the per-call OpenMP runtime (the
// paper's POC behaviour lifted to request granularity). Mixed BERT + MLP +
// LLM traffic from several producer threads.
//
// Emits BENCH_serving.json with:
//   serving_naive_throughput / serving_scheduler_throughput  (req/s + ns/req)
//   serving_speedup                                          (ratio)
//   serving_sharded_* per-partition sharded-scheduler rows (one admission
//     queue + dispatcher per pool partition, sessions pinned to partitions,
//     idle-shard work stealing) and serving_sharded_vs_single (ratio)
//   serve_<model>_* per-model latency/throughput/queue-depth stats
//   serving_decode_p{50,95,99}_{fifo,cont}_us latency-class LLM decode tail
//     latency on a mixed llm/bert tape, FIFO baseline (priority + stepping
//     off) vs continuous batching (priority classes + token-granular decode)
//   serving_decode_tail_speedup (p95 fifo/cont ratio)
//   serving_overload_p{50,95}_{fixed,adaptive}_us latency-class sojourn at
//     ~2x saturation (standing stepped-decode backlog + latency trickle),
//     fixed queue-cap baseline vs delay-gradient overload control
//     (throughput brownout + halved decode windows + gradient shed)
//   serving_overload_latency_p95_gain (p95 fixed/adaptive ratio) plus
//     serving_overload_{brownouts,sheds,tp_completed} controller counters
//   serving_<terminal>_requests terminal accounting counters (submitted ==
//     completed + failed + expired + shed + rejected; all but completed are 0
//     on a clean run — chaos runs with PLT_FAULT_SPEC move the split)
//   pool_* ThreadPool::stats() dispatch/steal counters
// bench/check_overhead.py --serving gates the scheduler-vs-naive speedup in
// CI (>= 1.5x); --partitioned gates sharded-vs-single (>= 1.3x with
// PLT_POOL_PARTITIONS=2); --decode-tail gates the decode p95 improvement
// (>= 1.3x); --overload gates the overload-control p95 gain (>= 1.2x).
// This binary exits non-zero if batched results are not
// bitwise-identical to sequential execution — sharded, stepped, or not.
#include <algorithm>
#include <cstring>
#include <thread>

#include "bench/bench_util.hpp"
#include "serving/model_registry.hpp"
#include "serving/scheduler.hpp"
#include "serving/session.hpp"

using namespace plt;

namespace {

struct Workload {
  std::vector<std::shared_ptr<serving::Session>> sessions;
  // Round-robin request tape: (session index, input seed).
  std::vector<int> tape;
};

// Latency-class serving shapes: small per-request tensors and 1-token LLM
// decode steps, where per-nest dispatch overhead is a first-order cost (the
// regime the paper's near-zero-overhead claim targets; large-batch
// throughput shapes amortize dispatch on their own and need no scheduler).
Workload build_workload(bool full, int lanes, int total_requests) {
  Workload w;
  serving::MlpServeConfig mlp;
  mlp.features = full ? 32 : 16;
  mlp.layers = 8;
  mlp.tokens = 8;
  mlp.bm = mlp.bn = mlp.bk = 8;
  w.sessions.push_back(serving::make_mlp_session("mlp", mlp, lanes, 101));

  dl::BertConfig bert;
  bert.hidden = full ? 32 : 16;
  bert.heads = 2;
  bert.intermediate = full ? 64 : 32;
  bert.layers = 1;
  bert.seq_len = 8;
  bert.bm = bert.bn = bert.bk = 8;
  w.sessions.push_back(serving::make_bert_session("bert", bert, lanes, 102));

  dl::LlmConfig llm;
  llm.hidden = full ? 32 : 16;
  llm.heads = 2;
  llm.layers = 2;
  llm.ffn = full ? 64 : 32;
  llm.vocab = 128;
  llm.max_seq = 32;
  llm.bm = llm.bn = llm.bk = 8;
  w.sessions.push_back(serving::make_llm_session(
      "llm", llm, /*prompt=*/4, /*gen=*/16, lanes, 103));

  // 2:1:1 llm:bert:mlp — generation traffic dominates a serving mix, and
  // its single-token nests are the dispatch-overhead-bound case the
  // scheduler exists for.
  const int pattern[4] = {2, 1, 2, 0};
  for (int i = 0; i < total_requests; ++i) {
    w.tape.push_back(pattern[i % 4]);
  }
  return w;
}

struct RequestBuffers {
  std::vector<std::vector<float>> ins;
  std::vector<std::vector<float>> outs;
};

RequestBuffers make_buffers(const Workload& w) {
  RequestBuffers b;
  for (std::size_t i = 0; i < w.tape.size(); ++i) {
    const auto& s = w.sessions[static_cast<std::size_t>(w.tape[i])];
    std::vector<float> in(static_cast<std::size_t>(s->input_elems()));
    Xoshiro256 rng(1000 + static_cast<std::uint64_t>(i));
    fill_uniform(in.data(), in.size(), rng, -1.0f, 1.0f);
    b.ins.push_back(std::move(in));
    b.outs.emplace_back(static_cast<std::size_t>(s->output_elems()), 0.0f);
  }
  return b;
}

// Sequential reference: one request at a time from one thread (used for the
// bitwise determinism check).
double run_sequential(const Workload& w, RequestBuffers& b, Runtime rt) {
  const Runtime saved = runtime();
  set_runtime(rt);
  WallTimer t;
  for (std::size_t i = 0; i < w.tape.size(); ++i) {
    const auto& s = w.sessions[static_cast<std::size_t>(w.tape[i])];
    s->run(0, b.ins[i].data(), b.outs[i].data());
  }
  const double secs = t.seconds();
  set_runtime(saved);
  return secs;
}

// Naive serving host: each of the `producers` client threads dispatches its
// requests inline the moment they arrive — per-request, per-nest region
// spawn under the given runtime, no admission control, no batching. Each
// thread owns session lane p exclusively (a real naive host would need
// exactly that replica set for thread safety), so the thread count is
// capped at the smallest session's lane count.
double run_naive(const Workload& w, RequestBuffers& b, Runtime rt,
                 int producers) {
  for (const auto& s : w.sessions) {
    producers = std::min(producers, s->lanes());
  }
  const Runtime saved = runtime();
  set_runtime(rt);
  const std::size_t n = w.tape.size();
  WallTimer t;
  std::vector<std::thread> threads;
  for (int p = 0; p < producers; ++p) {
    threads.emplace_back([&, p] {
      for (std::size_t i = static_cast<std::size_t>(p); i < n;
           i += static_cast<std::size_t>(producers)) {
        const auto& s = w.sessions[static_cast<std::size_t>(w.tape[i])];
        s->run(p, b.ins[i].data(), b.outs[i].data());
      }
    });
  }
  for (auto& th : threads) th.join();
  const double secs = t.seconds();
  set_runtime(saved);
  return secs;
}

// Scheduled serving: `producers` threads submit the tape concurrently; the
// scheduler micro-batches and executes on the persistent pool.
double run_scheduled(const Workload& w, RequestBuffers& b,
                     serving::RequestScheduler& sched, int producers) {
  const Runtime saved = runtime();
  set_runtime(Runtime::kPool);
  const std::size_t n = w.tape.size();
  WallTimer t;
  std::vector<std::thread> threads;
  std::vector<std::vector<serving::RequestHandle>> handles(
      static_cast<std::size_t>(producers));
  for (int p = 0; p < producers; ++p) {
    threads.emplace_back([&, p] {
      for (std::size_t i = static_cast<std::size_t>(p); i < n;
           i += static_cast<std::size_t>(producers)) {
        const auto& s = w.sessions[static_cast<std::size_t>(w.tape[i])];
        handles[static_cast<std::size_t>(p)].push_back(
            sched.submit(s, b.ins[i].data(), b.outs[i].data()));
      }
      for (auto& h : handles[static_cast<std::size_t>(p)]) h.wait();
    });
  }
  for (auto& th : threads) th.join();
  const double secs = t.seconds();
  set_runtime(saved);
  return secs;
}

double percentile(std::vector<double> v, double p) {
  std::sort(v.begin(), v.end());
  const std::size_t idx = std::min(
      v.size() - 1, static_cast<std::size_t>(p * static_cast<double>(v.size())));
  return v[idx];
}

// Decode-tail scenario: one client streams latency-class LLM decode requests
// with a small inter-arrival gap while another bursts throughput-class BERT
// traffic at the same scheduler. Returns the pooled per-request LLM
// latencies plus the session's mean decode-region occupancy.
struct DecodeTail {
  std::vector<double> llm_lat_us;
  double occupancy = 0.0;
};

DecodeTail run_decode_tail(const std::shared_ptr<serving::Session>& llm,
                           const std::shared_ptr<serving::Session>& bert,
                           RequestBuffers& lb, RequestBuffers& bb,
                           const serving::SchedulerConfig& cfg, int iters) {
  const Runtime saved = runtime();
  set_runtime(Runtime::kPool);
  DecodeTail r;
  double occ_sum = 0.0;
  int occ_n = 0;
  for (int it = 0; it < iters; ++it) {
    serving::RequestScheduler sched(cfg);
    std::vector<serving::RequestHandle> lh(lb.ins.size());
    std::atomic<bool> llm_active{true};
    // The throughput client keeps the scheduler under sustained BERT
    // pressure for as long as the decode stream is live (cycle after cycle,
    // not one finite burst that could drain before the decodes arrive).
    std::thread bert_client([&] {
      // Rolling queue depth: keep several bert batches outstanding at once
      // (wait-all per batch would leave at most one group in the scheduler —
      // nothing queued for a latency request to overtake). A buffer slot is
      // reused only after its batch has been waited on.
      const std::size_t batch = 8;
      const std::size_t depth = bb.ins.size() / batch;  // concurrent batches
      std::deque<std::vector<serving::RequestHandle>> inflight;
      std::size_t slot = 0;
      while (llm_active.load(std::memory_order_acquire)) {
        std::vector<serving::RequestHandle> bh;
        bh.reserve(batch);
        for (std::size_t i = 0; i < batch; ++i) {
          const std::size_t b = (slot + i) % bb.ins.size();
          serving::Request req;
          req.in = bb.ins[b].data();
          req.out = bb.outs[b].data();
          req.cls = serving::RequestClass::kThroughput;
          bh.push_back(sched.submit(bert, req));
        }
        slot = (slot + batch) % bb.ins.size();
        inflight.push_back(std::move(bh));
        if (inflight.size() >= depth) {
          for (auto& h : inflight.front()) h.wait();
          inflight.pop_front();
        }
      }
      for (auto& bh : inflight) {
        for (auto& h : bh) h.wait();
      }
    });
    std::thread llm_client([&] {
      for (std::size_t i = 0; i < lb.ins.size(); ++i) {
        lh[i] = sched.submit(
            llm, serving::Request{lb.ins[i].data(), lb.outs[i].data()});
        // Interactive decode arrival process: requests trickle in while the
        // throughput traffic is in flight, so mid-stream joins actually
        // occur.
        std::this_thread::sleep_for(std::chrono::microseconds(300));
      }
      for (auto& h : lh) h.wait();
      llm_active.store(false, std::memory_order_release);
    });
    llm_client.join();
    bert_client.join();
    for (auto& h : lh) r.llm_lat_us.push_back(h.latency_us());
    sched.shutdown();
    for (const auto& st : sched.stats()) {
      if (st.model == llm->name() && st.decode_steps > 0) {
        occ_sum += st.mean_decode_occupancy();
        ++occ_n;
      }
    }
  }
  r.occupancy = occ_n ? occ_sum / occ_n : 0.0;
  set_runtime(saved);
  return r;
}

// Overload scenario: a throughput-class pressure client keeps the single
// shard saturated well past capacity (two full batches queued behind every
// in-flight one, i.e. offered load >= 2x the service rate) while a latency
// client trickles small requests on top. Baseline = fixed queue-cap
// admission (target_delay 0): a READY full throughput batch flushes ahead
// of a pending-but-young latency request, so each latency arrival eats up
// to two heavy regions. Adaptive = delay-gradient controller: once the
// standing backlog's minimum sojourn exceeds the target the shard browns
// out (throughput yields to ANY pending latency work) and then sheds
// throughput-class backlog — latency-class p95 degrades last, by design.
// The first `warmup` latency requests per iteration are unmeasured: they
// span the controller's escalation interval so the measured samples see the
// steady (browned-out) regime, not the ramp.
struct OverloadResult {
  std::vector<double> lat_us;  // measured latency-class completion latencies
  std::uint64_t brownouts = 0;
  std::uint64_t sheds = 0;
  std::uint64_t tp_ok = 0;
  std::uint64_t tp_shed = 0;
};

OverloadResult run_overload(const std::shared_ptr<serving::Session>& lat_sess,
                            const std::shared_ptr<serving::Session>& tp_sess,
                            RequestBuffers& lb, RequestBuffers& tb,
                            const serving::SchedulerConfig& cfg, int warmup,
                            int iters) {
  const Runtime saved = runtime();
  set_runtime(Runtime::kPool);
  OverloadResult r;
  for (int it = 0; it < iters; ++it) {
    serving::RequestScheduler sched(cfg);
    std::atomic<bool> lat_active{true};
    std::thread tp_client([&] {
      const std::size_t batch = 8;
      const std::size_t depth = tb.ins.size() / batch;  // outstanding batches
      std::deque<std::vector<serving::RequestHandle>> inflight;
      std::size_t slot = 0;
      while (lat_active.load(std::memory_order_acquire)) {
        std::vector<serving::RequestHandle> bh;
        bh.reserve(batch);
        for (std::size_t i = 0; i < batch; ++i) {
          const std::size_t b = (slot + i) % tb.ins.size();
          serving::Request req;
          req.in = tb.ins[b].data();
          req.out = tb.outs[b].data();
          req.cls = serving::RequestClass::kThroughput;
          bh.push_back(sched.submit(tp_sess, req));
        }
        slot = (slot + batch) % tb.ins.size();
        inflight.push_back(std::move(bh));
        if (inflight.size() >= depth) {
          for (auto& h : inflight.front()) h.wait();
          inflight.pop_front();
        }
      }
      for (auto& bh : inflight) {
        for (auto& h : bh) h.wait();
      }
    });
    std::vector<serving::RequestHandle> lh(lb.ins.size());
    for (std::size_t i = 0; i < lb.ins.size(); ++i) {
      serving::Request req;
      req.in = lb.ins[i].data();
      req.out = lb.outs[i].data();
      req.cls = serving::RequestClass::kLatency;
      lh[i] = sched.submit(lat_sess, req);
      // Interactive arrival process: the latency stream rides on top of the
      // standing decode backlog, one small request at a time, with enough
      // headroom between arrivals that the baseline scheduler keeps feeding
      // throughput steps into the gaps (the interference being measured).
      std::this_thread::sleep_for(std::chrono::microseconds(600));
    }
    for (auto& h : lh) h.wait();
    lat_active.store(false, std::memory_order_release);
    tp_client.join();
    for (std::size_t i = 0; i < lh.size(); ++i) {
      if (i < static_cast<std::size_t>(warmup)) continue;
      // The latency class is never gradient-shed; completions are the whole
      // population (anything else would be a scheduler bug and shows up in
      // the terminal accounting rows).
      if (lh[i].status().ok()) r.lat_us.push_back(lh[i].latency_us());
    }
    sched.shutdown();
    r.brownouts += sched.overload_brownouts();
    r.sheds += sched.overload_sheds();
    const auto c = sched.counters();
    r.tp_shed += c.shed;
    r.tp_ok += c.completed;
  }
  set_runtime(saved);
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const bool full = bench::has_flag(argc, argv, "--full");
  const bool smoke = bench::has_flag(argc, argv, "--smoke");
  const int requests = full ? 240 : (smoke ? 96 : 144);
  const int producers = 4;

  serving::SchedulerConfig cfg = serving::SchedulerConfig::from_env();
  const int lanes = cfg.max_batch;

  bench::print_header("Serving — micro-batching scheduler vs naive dispatch");
  std::printf("mixed traffic: %d requests over 3 models, %d producers, "
              "max_batch=%d, deadline=%ldus\n",
              requests, producers, cfg.max_batch,
              static_cast<long>(cfg.batch_usecs));

  Workload w = build_workload(full, lanes, requests);
  bench::JsonReporter json("serving");
  const int iters = 5;  // best-of, as for the kernel benches

  // Sequential reference on the pool runtime (for the determinism check and
  // as the machinery-free compute floor).
  RequestBuffers ref = make_buffers(w);
  run_sequential(w, ref, Runtime::kPool);  // warmup
  double seq_s = 1e300;
  for (int it = 0; it < iters; ++it) {
    seq_s = std::min(seq_s, run_sequential(w, ref, Runtime::kPool));
  }
  std::printf("%-28s %10.1f req/s  (%8.1f us/req)\n",
              "sequential floor (pool)", requests / seq_s,
              1e6 * seq_s / requests);
  json.add("serving_sequential_floor", 0.0, 1e9 * seq_s / requests, "pool");

  // Naive: concurrent per-request dispatch, per-nest OpenMP regions (serial
  // fallback when OpenMP is not built — reported as such).
#if defined(PLT_HAVE_OPENMP)
  const Runtime naive_rt = Runtime::kOpenMP;
  const char* naive_label = "omp";
#else
  const Runtime naive_rt = Runtime::kSerial;
  const char* naive_label = "serial";
#endif
  RequestBuffers naive = make_buffers(w);
  run_naive(w, naive, naive_rt, producers);  // warmup
  double naive_s = 1e300;
  for (int it = 0; it < iters; ++it) {
    naive_s = std::min(naive_s, run_naive(w, naive, naive_rt, producers));
  }
  const double naive_rps = requests / naive_s;
  std::printf("%-28s %10.1f req/s  (%8.1f us/req)\n",
              (std::string("naive per-request (") + naive_label + ")").c_str(),
              naive_rps, 1e6 * naive_s / requests);
  json.add(std::string("serving_naive_throughput_") + naive_label, 0.0,
           1e9 * naive_s / requests, naive_label);
  json.add_value("serving_naive_req_per_sec", naive_rps, "req_per_sec",
                 naive_label);

  // Scheduler, single shard: one queue, one dispatcher, whole-team batches —
  // the PR 3 layout, kept as the sharding baseline and the serving_scheduler
  // rows' meaning across PRs. Priority classes and decode stepping are
  // pinned OFF here (and in the sharded section) so these rows keep
  // measuring the same thing they always did; the decode-tail section below
  // measures the new machinery.
  serving::SchedulerConfig single_cfg = cfg;
  single_cfg.shards = 1;
  single_cfg.priority = false;
  single_cfg.decode_step_tokens = 0;
  serving::RequestScheduler sched(single_cfg);
  RequestBuffers batched = make_buffers(w);
  run_scheduled(w, batched, sched, producers);  // warmup
  double sched_s = 1e300;
  for (int it = 0; it < iters; ++it) {
    sched_s = std::min(sched_s, run_scheduled(w, batched, sched, producers));
  }
  sched.shutdown();
  const double sched_rps = requests / sched_s;
  std::printf("%-28s %10.1f req/s  (%8.1f us/req)\n",
              "scheduler (pool, 1 shard)", sched_rps,
              1e6 * sched_s / requests);
  json.add("serving_scheduler_throughput", 0.0, 1e9 * sched_s / requests,
           "pool");
  json.add_value("serving_scheduler_req_per_sec", sched_rps, "req_per_sec",
                 "pool");

  const double speedup = naive_s / sched_s;
  std::printf("scheduler vs naive speedup: %.2fx\n", speedup);
  json.add_value("serving_speedup", speedup, "ratio");

  // Sharded scheduler: one admission queue + dispatcher per pool partition,
  // sessions pinned so each partition serves the models whose weights it
  // first-touched, idle shards steal. With 1 partition this collapses to the
  // single-shard layout (the rows then just mirror the baseline).
  const int nparts = ThreadPool::instance().partitions();
  // Pin to balance the 2:1:1 llm:bert:mlp tape: llm (half the traffic) gets
  // partition 0 to itself; bert + mlp share the next partition.
  w.sessions[2]->pin_partition(0);
  w.sessions[1]->pin_partition(1 % nparts);
  w.sessions[0]->pin_partition(1 % nparts);
  serving::SchedulerConfig sharded_cfg = cfg;
  sharded_cfg.shards = 0;  // auto: one shard per partition
  sharded_cfg.priority = false;
  sharded_cfg.decode_step_tokens = 0;
  serving::RequestScheduler sharded(sharded_cfg);
  RequestBuffers shard_out = make_buffers(w);
  run_scheduled(w, shard_out, sharded, producers);  // warmup
  double sharded_s = 1e300;
  for (int it = 0; it < iters; ++it) {
    sharded_s =
        std::min(sharded_s, run_scheduled(w, shard_out, sharded, producers));
  }
  std::uint64_t total_steals = 0;
  for (int s = 0; s < sharded.shard_count(); ++s) {
    total_steals += sharded.steals(s);
  }
  sharded.shutdown();
  const double sharded_rps = requests / sharded_s;
  std::printf("%-28s %10.1f req/s  (%8.1f us/req, %d shards, %llu stolen)\n",
              "scheduler (pool, sharded)", sharded_rps,
              1e6 * sharded_s / requests, sharded.shard_count(),
              static_cast<unsigned long long>(total_steals));
  json.add("serving_sharded_throughput", 0.0, 1e9 * sharded_s / requests,
           "pool");
  json.add_value("serving_sharded_req_per_sec", sharded_rps, "req_per_sec",
                 "pool");
  json.add_value("serving_sharded_shards",
                 static_cast<double>(sharded.shard_count()), "count");
  json.add_value("serving_sharded_steals", static_cast<double>(total_steals),
                 "requests");
  const double sharded_vs_single = sched_s / sharded_s;
  std::printf("sharded vs single-shard scheduler: %.2fx\n", sharded_vs_single);
  json.add_value("serving_sharded_vs_single", sharded_vs_single, "ratio");

  // Decode tail latency: latency-class LLM decode streaming against a
  // throughput-class BERT burst, FIFO baseline (priority + stepping off, the
  // pre-redesign scheduler) vs continuous batching (class-aware flush order
  // + token-granular decode with mid-stream joins). The ISSUE acceptance
  // gate is the p95 ratio (check_overhead.py --decode-tail, >= 1.3x).
  // Dedicated decode-tail LLM session: heavier per-token compute and fewer
  // lanes than the throughput mix, so a just-missed monolithic batch is a
  // real tail event (the FIFO failure mode continuous batching removes) and
  // token windows amortize their region dispatch.
  dl::LlmConfig dec_cfg;
  dec_cfg.hidden = 32;
  dec_cfg.heads = 2;
  dec_cfg.layers = 2;
  dec_cfg.ffn = 64;
  dec_cfg.vocab = 128;
  dec_cfg.max_seq = 64;
  dec_cfg.bm = dec_cfg.bn = dec_cfg.bk = 8;
  // Lanes cover the whole arrival burst: a lane-starved latency group cannot
  // flush, and flush_ready would fall through to the throughput class right
  // in front of the waiting decodes.
  const auto llm_sess = serving::make_llm_session(
      "llm_decode", dec_cfg, /*prompt=*/8, /*gen=*/24, /*lanes=*/24, 107);
  // Dedicated throughput-pressure BERT, much heavier than the mixed-tape one:
  // each batch is a long region, so the FIFO baseline (which alternates with
  // it by age) pays for every interleaved batch while the priority scheduler
  // overtakes all but the in-flight one.
  dl::BertConfig dec_bert;
  dec_bert.hidden = 32;
  dec_bert.heads = 2;
  dec_bert.intermediate = 128;
  dec_bert.layers = 2;
  dec_bert.seq_len = 16;
  dec_bert.bm = dec_bert.bn = dec_bert.bk = 8;
  const auto bert_sess =
      serving::make_bert_session("bert_pressure", dec_bert, /*lanes=*/8, 108);
  const int n_llm = full ? 24 : (smoke ? 10 : 16);
  const int n_bert = 24;  // 3 batches of 8 outstanding (rolling queue depth)
  RequestBuffers llm_buf, bert_buf;
  for (int i = 0; i < n_llm; ++i) {
    std::vector<float> in(static_cast<std::size_t>(llm_sess->input_elems()));
    Xoshiro256 rng(5000 + static_cast<std::uint64_t>(i));
    fill_uniform(in.data(), in.size(), rng, -1.0f, 1.0f);
    llm_buf.ins.push_back(std::move(in));
    llm_buf.outs.emplace_back(
        static_cast<std::size_t>(llm_sess->output_elems()), 0.0f);
  }
  for (int i = 0; i < n_bert; ++i) {
    std::vector<float> in(static_cast<std::size_t>(bert_sess->input_elems()));
    Xoshiro256 rng(6000 + static_cast<std::uint64_t>(i));
    fill_uniform(in.data(), in.size(), rng, -1.0f, 1.0f);
    bert_buf.ins.push_back(std::move(in));
    bert_buf.outs.emplace_back(
        static_cast<std::size_t>(bert_sess->output_elems()), 0.0f);
  }
  // Monolithic sequential references for the stepped bitwise re-check.
  std::vector<std::vector<float>> llm_want;
  {
    const Runtime saved = runtime();
    set_runtime(Runtime::kPool);
    for (int i = 0; i < n_llm; ++i) {
      llm_want.emplace_back(
          static_cast<std::size_t>(llm_sess->output_elems()));
      llm_sess->run(0, llm_buf.ins[static_cast<std::size_t>(i)].data(),
                    llm_want.back().data());
    }
    set_runtime(saved);
  }

  serving::SchedulerConfig fifo_cfg = cfg;
  fifo_cfg.shards = 1;
  fifo_cfg.priority = false;
  fifo_cfg.decode_step_tokens = 0;
  serving::SchedulerConfig cont_cfg = cfg;
  cont_cfg.shards = 1;
  cont_cfg.priority = true;
  cont_cfg.decode_step_tokens = 4;  // 6 windows/stream: joins stay token-
                                    // granular, dispatch overhead amortizes

  run_decode_tail(llm_sess, bert_sess, llm_buf, bert_buf, fifo_cfg, 1);
  const DecodeTail fifo =
      run_decode_tail(llm_sess, bert_sess, llm_buf, bert_buf, fifo_cfg, iters);
  const DecodeTail cont =
      run_decode_tail(llm_sess, bert_sess, llm_buf, bert_buf, cont_cfg, iters);
  const double p50_fifo = percentile(fifo.llm_lat_us, 0.50);
  const double p95_fifo = percentile(fifo.llm_lat_us, 0.95);
  const double p99_fifo = percentile(fifo.llm_lat_us, 0.99);
  const double p50_cont = percentile(cont.llm_lat_us, 0.50);
  const double p95_cont = percentile(cont.llm_lat_us, 0.95);
  const double p99_cont = percentile(cont.llm_lat_us, 0.99);
  std::printf("\ndecode tail (llm latency-class vs bert burst, %zu samples)\n",
              fifo.llm_lat_us.size());
  std::printf("  %-22s p50 %8.1f us   p95 %8.1f us   p99 %8.1f us\n",
              "fifo baseline", p50_fifo, p95_fifo, p99_fifo);
  std::printf("  %-22s p50 %8.1f us   p95 %8.1f us   p99 %8.1f us "
              "(occupancy %.2f)\n",
              "continuous batching", p50_cont, p95_cont, p99_cont,
              cont.occupancy);
  const double tail_speedup = p95_cont > 0.0 ? p95_fifo / p95_cont : 0.0;
  std::printf("decode p95 tail speedup: %.2fx\n", tail_speedup);
  json.add_value("serving_decode_p50_fifo_us", p50_fifo, "us");
  json.add_value("serving_decode_p95_fifo_us", p95_fifo, "us");
  json.add_value("serving_decode_p99_fifo_us", p99_fifo, "us");
  json.add_value("serving_decode_p50_cont_us", p50_cont, "us");
  json.add_value("serving_decode_p95_cont_us", p95_cont, "us");
  json.add_value("serving_decode_p99_cont_us", p99_cont, "us");
  json.add_value("serving_decode_occupancy", cont.occupancy, "requests");
  json.add_value("serving_decode_tail_speedup", tail_speedup, "ratio");

  // Overload control: latency-class p95 under ~2x saturation, fixed
  // queue-cap baseline vs brownout + delay-gradient shedding. Both configs
  // run priority classes AND stepped continuous batching (PR 8 machinery) —
  // the only delta is the delay-gradient controller, so the measured gain is
  // attributable to overload control alone. The pressure is a rolling
  // backlog of stepped LLM decodes: under brownout the controller (a) makes
  // throughput yield whenever latency work is pending — even during the
  // batch_usecs ripening window where the baseline happily launches another
  // full decode step in front of it — and (b) halves the decode window of
  // newly admitted streams, so the non-preemptible region a latency request
  // can land behind shrinks. The gate (check_overhead.py --overload,
  // >= 1.2x) is the PR 10 acceptance row.
  serving::MlpServeConfig lat_mlp;
  lat_mlp.features = 16;
  lat_mlp.layers = 2;
  lat_mlp.tokens = 8;
  lat_mlp.bm = lat_mlp.bn = lat_mlp.bk = 8;
  const auto lat_sess =
      serving::make_mlp_session("lat_probe", lat_mlp, /*lanes=*/8, 109);
  const int n_lat_warm = 8;
  const int n_lat = n_lat_warm + (full ? 64 : (smoke ? 40 : 48));
  RequestBuffers lat_buf;
  for (int i = 0; i < n_lat; ++i) {
    std::vector<float> in(static_cast<std::size_t>(lat_sess->input_elems()));
    Xoshiro256 rng(7000 + static_cast<std::uint64_t>(i));
    fill_uniform(in.data(), in.size(), rng, -1.0f, 1.0f);
    lat_buf.ins.push_back(std::move(in));
    lat_buf.outs.emplace_back(
        static_cast<std::size_t>(lat_sess->output_elems()), 0.0f);
  }
  // Dedicated decode-pressure buffers against llm_sess (2 rolling batches of
  // 8 <= 24 lanes); llm_buf stays untouched for the bitwise check below.
  RequestBuffers tp_buf;
  for (int i = 0; i < 16; ++i) {
    std::vector<float> in(static_cast<std::size_t>(llm_sess->input_elems()));
    Xoshiro256 rng(8000 + static_cast<std::uint64_t>(i));
    fill_uniform(in.data(), in.size(), rng, -1.0f, 1.0f);
    tp_buf.ins.push_back(std::move(in));
    tp_buf.outs.emplace_back(
        static_cast<std::size_t>(llm_sess->output_elems()), 0.0f);
  }
  serving::SchedulerConfig fixed_cfg = cfg;
  fixed_cfg.shards = 1;
  fixed_cfg.priority = true;
  fixed_cfg.decode_step_tokens = 12;  // 2 windows/stream at full window
  fixed_cfg.target_delay_usecs = 0;  // fixed queue-cap admission only
  serving::SchedulerConfig adaptive_cfg = fixed_cfg;
  adaptive_cfg.target_delay_usecs = 300;  // sojourn target << region time

  run_overload(lat_sess, llm_sess, lat_buf, tp_buf, fixed_cfg,
               n_lat_warm, 1);  // warmup
  // 5 iterations x (n_lat - warmup) samples pooled per config: p95 on the
  // pooled population keeps the CI gate stable against scheduling noise.
  const OverloadResult fixed_r = run_overload(
      lat_sess, llm_sess, lat_buf, tp_buf, fixed_cfg, n_lat_warm, 5);
  const OverloadResult adapt_r = run_overload(
      lat_sess, llm_sess, lat_buf, tp_buf, adaptive_cfg, n_lat_warm, 5);
  const double p50_fixed = percentile(fixed_r.lat_us, 0.50);
  const double p95_fixed = percentile(fixed_r.lat_us, 0.95);
  const double p50_adapt = percentile(adapt_r.lat_us, 0.50);
  const double p95_adapt = percentile(adapt_r.lat_us, 0.95);
  const double overload_gain = p95_adapt > 0.0 ? p95_fixed / p95_adapt : 0.0;
  std::printf("\noverload (latency-class p95 at ~2x saturation, %zu samples)\n",
              fixed_r.lat_us.size());
  std::printf("  %-22s p50 %8.1f us   p95 %8.1f us\n", "fixed queue cap",
              p50_fixed, p95_fixed);
  std::printf("  %-22s p50 %8.1f us   p95 %8.1f us "
              "(%llu brownouts, %llu gradient sheds)\n",
              "delay-gradient", p50_adapt, p95_adapt,
              static_cast<unsigned long long>(adapt_r.brownouts),
              static_cast<unsigned long long>(adapt_r.sheds));
  std::printf("overload latency p95 gain: %.2fx\n", overload_gain);
  json.add_value("serving_overload_p50_fixed_us", p50_fixed, "us");
  json.add_value("serving_overload_p95_fixed_us", p95_fixed, "us");
  json.add_value("serving_overload_p50_adaptive_us", p50_adapt, "us");
  json.add_value("serving_overload_p95_adaptive_us", p95_adapt, "us");
  json.add_value("serving_overload_latency_p95_gain", overload_gain, "ratio");
  json.add_value("serving_overload_brownouts",
                 static_cast<double>(adapt_r.brownouts), "count");
  json.add_value("serving_overload_sheds",
                 static_cast<double>(adapt_r.sheds), "requests");
  json.add_value("serving_overload_tp_completed",
                 static_cast<double>(adapt_r.tp_ok), "requests");

  // Per-model serving stats.
  std::vector<int> tape_count(w.sessions.size(), 0);
  for (const int m : w.tape) ++tape_count[static_cast<std::size_t>(m)];
  const auto tape_share = [&](const std::string& model) {
    for (std::size_t m = 0; m < w.sessions.size(); ++m) {
      if (w.sessions[m]->name() == model) {
        return tape_count[m];
      }
    }
    return 0;
  };
  std::printf("\n%-8s %9s %8s %11s %11s %11s %7s\n", "model", "requests",
              "batches", "mean batch", "mean lat us", "max lat us", "depth");
  for (const auto& st : sched.stats()) {
    std::printf("%-8s %9llu %8llu %11.2f %11.1f %11.1f %7zu\n",
                st.model.c_str(),
                static_cast<unsigned long long>(st.requests),
                static_cast<unsigned long long>(st.batches), st.mean_batch(),
                st.mean_latency_us(), st.max_latency_us,
                st.pending_highwater);
    json.add_value("serve_" + st.model + "_req_per_sec",
                   tape_share(st.model) / sched_s, "req_per_sec");
    json.add_value("serve_" + st.model + "_mean_latency_us",
                   st.mean_latency_us(), "us");
    json.add_value("serve_" + st.model + "_max_latency_us", st.max_latency_us,
                   "us");
    json.add_value("serve_" + st.model + "_mean_batch", st.mean_batch(),
                   "requests");
    json.add_value("serve_" + st.model + "_pending_highwater",
                   static_cast<double>(st.pending_highwater), "requests");
  }
  json.add_value("serving_queue_depth_highwater",
                 static_cast<double>(sched.queue_depth_highwater()),
                 "requests");
  const auto counters = sched.counters();
  json.add_value("serving_submitted_requests",
                 static_cast<double>(counters.submitted), "requests");
  json.add_value("serving_completed_requests",
                 static_cast<double>(counters.completed), "requests");
  json.add_value("serving_failed_requests",
                 static_cast<double>(counters.failed), "requests");
  json.add_value("serving_expired_requests",
                 static_cast<double>(counters.expired), "requests");
  json.add_value("serving_shed_requests",
                 static_cast<double>(counters.shed), "requests");
  json.add_value("serving_rejected_requests",
                 static_cast<double>(counters.rejected), "requests");
  bench::report_pool_stats(json);

  // Determinism gate: batched == sequential, byte for byte, per request —
  // for the single-shard and sharded (work-stealing) layouts, and for the
  // stepped decode outputs of the continuous-batching run vs the monolithic
  // sequential reference.
  int bad = 0, bad_sharded = 0, bad_stepped = 0;
  for (std::size_t i = 0; i < w.tape.size(); ++i) {
    if (std::memcmp(ref.outs[i].data(), batched.outs[i].data(),
                    ref.outs[i].size() * sizeof(float)) != 0) {
      ++bad;
    }
    if (std::memcmp(ref.outs[i].data(), shard_out.outs[i].data(),
                    ref.outs[i].size() * sizeof(float)) != 0) {
      ++bad_sharded;
    }
  }
  for (std::size_t i = 0; i < llm_buf.outs.size(); ++i) {
    if (std::memcmp(llm_want[i].data(), llm_buf.outs[i].data(),
                    llm_want[i].size() * sizeof(float)) != 0) {
      ++bad_stepped;
    }
  }
  if (bad != 0 || bad_sharded != 0 || bad_stepped != 0) {
    std::printf("\nFAIL: %d/%d batched, %d/%d sharded and %d/%d stepped "
                "results differ from sequential execution\n",
                bad, requests, bad_sharded, requests, bad_stepped, n_llm);
    return 1;
  }
  std::printf("\nbatched + sharded + stepped results bitwise-identical to "
              "sequential execution (%d + %d requests) OK\n", requests, n_llm);
  return 0;
}
