// Table II: ResNet-50 training throughput (images/sec). The measured
// quantity is the forward pass through the full PARLOOPER/TPP ResNet-50;
// training throughput applies the canonical fwd:bwd cost ratio of ~1:2 for
// convolutional nets (dgrad + wgrad each cost about one forward), as
// documented in DESIGN.md. Both fp32 and bf16 paths are reported; the paper
// compares SPR vs GVT3 and lands within 4% of the vendor stack.
// BENCH_tab2_resnet_training.json rows carry a _p<N> suffix (N = active pool
// partition count), so the CI matrix legs (1 vs 2 partitions) land in
// distinct rows and the partition-scaling trajectory is tracked per PR.
#include "bench/bench_util.hpp"
#include "dl/resnet.hpp"

using namespace plt;

int main(int argc, char** argv) {
  const bool full = bench::has_flag(argc, argv, "--full");
  dl::ResNetConfig cfg;
  cfg.N = 1;
  cfg.image = full ? 224 : 64;
  cfg.channel_scale = full ? 1 : 4;

  bench::JsonReporter json("tab2_resnet_training");
  const std::string psuf = bench::partition_suffix();
  bench::print_header("Table II — ResNet-50 training throughput (images/sec)");
  std::printf("%-8s %14s %14s %20s\n", "dtype", "fwd img/s", "train img/s",
              "(fwd / 3 — fwd:bwd=1:2)");
  for (DType dt : {DType::F32, DType::BF16}) {
    cfg.dtype = dt;
    Xoshiro256 rng(51);
    dl::ResNet50 model(cfg, rng);
    std::vector<float> input(static_cast<std::size_t>(cfg.N * 3 * cfg.image *
                                                      cfg.image));
    fill_uniform(input.data(), input.size(), rng, -1.0f, 1.0f);
    std::vector<float> logits(static_cast<std::size_t>(cfg.N) * 1000);
    model.forward(input.data(), logits.data());  // warmup
    const int iters = 2;
    WallTimer t;
    for (int i = 0; i < iters; ++i) model.forward(input.data(), logits.data());
    const double fwd_ips = static_cast<double>(cfg.N * iters) / t.seconds();
    std::printf("%-8s %14.2f %14.2f   (model flops %.2f GF/img)\n",
                dt == DType::F32 ? "fp32" : "bf16", fwd_ips, fwd_ips / 3.0,
                model.forward_flops() / 1e9 / cfg.N);
    const std::string dts = dt == DType::F32 ? "fp32" : "bf16";
    json.add_value("tab2_resnet_fwd_" + dts + psuf, fwd_ips, "img_per_sec");
    json.add_value("tab2_resnet_train_" + dts + psuf, fwd_ips / 3.0,
                   "img_per_sec");
  }
  bench::report_pool_stats(json);
  std::printf("\nexpected shape: bf16 >= fp32 when bf16 hardware exists; the "
              "paper's SPR/GVT3 gap (1.76x) comes from the compute-peak "
              "difference the perf model captures.\n");
  return 0;
}
