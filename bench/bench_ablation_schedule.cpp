// Ablation: the design choices DESIGN.md calls out, isolated one at a time
// on a fixed GEMM — (a) loop order, (b) multi-level blocking depth,
// (c) BRGEMM k_step fusion, (d) dynamic vs static scheduling. Each knob is
// a pure loop_spec_string / config change with zero kernel-code change,
// which is the paper's central usability claim.
#include "bench/bench_util.hpp"

using namespace plt;

int main(int argc, char** argv) {
  const bool full = bench::has_flag(argc, argv, "--full");
  const std::int64_t n = full ? 1024 : 256;

  kernels::GemmConfig base;
  base.M = base.N = base.K = n;
  base.bm = base.bn = base.bk = 32;

  bench::print_header(
      ("Ablation — schedule knobs on GEMM " + std::to_string(n) + "^3 (fp32)")
          .c_str());
  std::printf("%-34s %12s\n", "variant", "GFLOPS");

  const auto report = [&](const char* name, const kernels::GemmConfig& cfg) {
    std::printf("%-34s %12.2f\n", name, bench::run_gemm(cfg, 1, 2).gflops);
  };

  // (a) loop order.
  for (const char* spec : {"abc", "BCa", "aBC", "Cba"}) {
    kernels::GemmConfig cfg = base;
    cfg.loop_spec = spec;
    report((std::string("order ") + spec).c_str(), cfg);
  }

  // (b) blocking depth on the M/N loops.
  {
    kernels::GemmConfig cfg = base;
    cfg.loop_spec = "BCabc";
    cfg.m_blocking = {n / 64};
    cfg.n_blocking = {n / 64};
    report("blocked-once (bcaBC-style)", cfg);
  }

  // (c) BRGEMM k_step fusion.
  for (std::int64_t ks : {1, 2, 4}) {
    if ((n / 32) % ks != 0) continue;
    kernels::GemmConfig cfg = base;
    cfg.k_step = ks;
    report((std::string("k_step=") + std::to_string(ks)).c_str(), cfg);
  }

  // (d) scheduling policy.
  {
    kernels::GemmConfig cfg = base;
    cfg.loop_spec = "BCa @ schedule(dynamic,1)";
    report("dynamic self-scheduling", cfg);
  }
  return 0;
}
