// Fig. 4: PARLOOPER auto-tuning vs a full-schedule search (TVM-Autoscheduler
// substitute). PARLOOPER stops its search space at the TPP boundary (outer
// loop order / blocking / parallelization only), while the full-schedule
// substitute also sweeps the register/micro-tile dimension (bm, bn, bk) the
// way a tensor compiler must. The paper reports PARLOOPER reaching equal or
// better GFLOPS while tuning 2.3x-500x faster.
#include "bench/bench_util.hpp"
#include "tuner/tuner.hpp"

using namespace plt;

int main(int argc, char** argv) {
  const bool full = bench::has_flag(argc, argv, "--full");
  std::vector<std::int64_t> sizes =
      full ? std::vector<std::int64_t>{512, 1024, 2048}
           : std::vector<std::int64_t>{128, 256};

  bench::print_header(
      "Fig. 4 — outer-loop tuning (PARLOOPER) vs full-schedule search");
  std::printf("%-14s | %10s %10s | %10s %10s | %9s\n", "size",
              "ours GF", "ours s", "full GF", "full s", "tune-ratio");

  for (std::int64_t n : sizes) {
    kernels::GemmConfig base;
    base.M = base.N = base.K = n;
    base.bm = base.bn = base.bk = 32;

    // PARLOOPER: enumerate outer-loop specs, benchmark them.
    perfmodel::GemmModelProblem p;
    p.M = p.N = p.K = n;
    p.bm = p.bn = p.bk = 32;
    tuner::SpecGenOptions gopts;
    gopts.max_candidates = full ? 32 : 12;
    const auto cands = tuner::generate_gemm_candidates(p, gopts);
    tuner::TuneOptions topts;
    topts.warmup = 0;
    topts.iters = 2;
    tuner::GemmTuner our_tuner(base, topts);
    double ours_seconds = 0.0;
    const auto ours = our_tuner.run(cands, &ours_seconds);

    // Full-schedule substitute: the same outer-loop sweep crossed with the
    // micro-tile dimension (what a tensor compiler schedules itself).
    WallTimer full_timer;
    double full_best = 0.0;
    for (std::int64_t bs : {16, 32, 64}) {
      if (n % bs != 0) continue;
      kernels::GemmConfig cfg = base;
      cfg.bm = cfg.bn = cfg.bk = bs;
      perfmodel::GemmModelProblem p2 = p;
      p2.bm = p2.bn = p2.bk = bs;
      const auto c2 = tuner::generate_gemm_candidates(p2, gopts);
      tuner::GemmTuner t2(cfg, topts);
      const auto r2 = t2.run(c2);
      if (!r2.empty()) full_best = std::max(full_best, r2.front().gflops);
    }
    const double full_seconds = full_timer.seconds();

    std::printf("%4ldx%4ldx%4ld | %10.2f %10.2f | %10.2f %10.2f | %8.1fx\n",
                static_cast<long>(n), static_cast<long>(n),
                static_cast<long>(n), ours.front().gflops, ours_seconds,
                full_best, full_seconds, full_seconds / ours_seconds);
  }
  std::printf("\nexpected shape: comparable best GFLOPS, with the outer-loop "
              "search several times cheaper (paper: 2.3x-500x).\n");
  return 0;
}
