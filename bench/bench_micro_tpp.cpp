// Google-benchmark microbenchmarks for the TPP backend itself: BRGEMM at
// the microkernel tile sizes the kernels use, elementwise TPPs, softmax and
// layernorm equations, and the VNNI pack transform.
#include <benchmark/benchmark.h>

#include "bench/bench_util.hpp"
#include "common/rng.hpp"
#include "tpp/brgemm.hpp"
#include "tpp/equations.hpp"
#include "tpp/transforms.hpp"
#include "tpp/unary.hpp"

namespace {

using namespace plt;

void BM_BrgemmF32(benchmark::State& state) {
  const std::int64_t b = state.range(0);
  const std::int64_t count = 8;
  std::vector<float> a(static_cast<std::size_t>(b * b * count));
  std::vector<float> bb(a.size());
  std::vector<float> c(static_cast<std::size_t>(b * b));
  Xoshiro256 rng(1);
  fill_uniform(a.data(), a.size(), rng, -0.5f, 0.5f);
  fill_uniform(bb.data(), bb.size(), rng, -0.5f, 0.5f);
  tpp::BrgemmTPP brgemm(b, b, b, b * b, b * b, 0.0f);
  for (auto _ : state) {
    brgemm(a.data(), bb.data(), c.data(), count);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * b * b * b * count);
}
BENCHMARK(BM_BrgemmF32)->Arg(16)->Arg(32)->Arg(64);

void BM_BrgemmBf16Vnni(benchmark::State& state) {
  const std::int64_t b = state.range(0);
  const std::int64_t count = 8;
  std::vector<bf16> flat(static_cast<std::size_t>(b * b));
  Xoshiro256 rng(2);
  for (auto& v : flat) v = bf16::from_f32(rng.uniform(-0.5f, 0.5f));
  const std::int64_t blk = tpp::vnni2_elems(b, b);
  std::vector<bf16> a(static_cast<std::size_t>(blk * count));
  for (std::int64_t i = 0; i < count; ++i)
    tpp::vnni2_pack(flat.data(), a.data() + i * blk, b, b, b);
  std::vector<bf16> bb(static_cast<std::size_t>(b * b * count));
  for (auto& v : bb) v = bf16::from_f32(rng.uniform(-0.5f, 0.5f));
  std::vector<float> c(static_cast<std::size_t>(b * b));
  tpp::BrgemmTPP brgemm(b, b, b, blk, b * b, 0.0f, DType::BF16, DType::BF16,
                        DType::F32, tpp::ALayout::kVnni2);
  for (auto _ : state) {
    brgemm(a.data(), bb.data(), c.data(), count);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * b * b * b * count);
}
BENCHMARK(BM_BrgemmBf16Vnni)->Arg(16)->Arg(32)->Arg(64);

void BM_UnaryGelu(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  std::vector<float> in(static_cast<std::size_t>(n * n)), out(in.size());
  Xoshiro256 rng(3);
  fill_uniform(in.data(), in.size(), rng, -2.0f, 2.0f);
  tpp::UnaryTPP gelu(tpp::UnaryKind::kGelu, n, n);
  for (auto _ : state) {
    gelu(in.data(), out.data());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * n * n);
}
BENCHMARK(BM_UnaryGelu)->Arg(32)->Arg(128);

void BM_SoftmaxRows(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  std::vector<float> in(static_cast<std::size_t>(n * n)), out(in.size());
  Xoshiro256 rng(4);
  fill_uniform(in.data(), in.size(), rng, -4.0f, 4.0f);
  for (auto _ : state) {
    tpp::softmax_rows(in.data(), out.data(), n, n, n, n);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * n * n);
}
BENCHMARK(BM_SoftmaxRows)->Arg(64)->Arg(256);

void BM_LayerNormFwd(benchmark::State& state) {
  const std::int64_t rows = 128, cols = state.range(0);
  std::vector<float> in(static_cast<std::size_t>(rows * cols)), out(in.size());
  std::vector<float> gamma(static_cast<std::size_t>(cols), 1.0f);
  std::vector<float> beta(static_cast<std::size_t>(cols), 0.0f);
  std::vector<float> mean(static_cast<std::size_t>(rows)), var(mean.size());
  Xoshiro256 rng(5);
  fill_uniform(in.data(), in.size(), rng, -1.0f, 1.0f);
  tpp::LayerNormFwd ln{rows, cols, 1e-5f};
  for (auto _ : state) {
    ln(in.data(), gamma.data(), beta.data(), mean.data(), var.data(),
       out.data());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * rows * cols);
}
BENCHMARK(BM_LayerNormFwd)->Arg(256)->Arg(1024);

void BM_Vnni2Pack(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  std::vector<bf16> in(static_cast<std::size_t>(n * n)), out(
      static_cast<std::size_t>(tpp::vnni2_elems(n, n)));
  for (auto _ : state) {
    tpp::vnni2_pack(in.data(), out.data(), n, n, n);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * n * n);
}
BENCHMARK(BM_Vnni2Pack)->Arg(32)->Arg(128);

// PARLOOPER dispatch overhead per invocation, per execution runtime. The
// runtime is flipped in-process so one run records the pool-vs-omp ratio.
void BM_NestDispatch(benchmark::State& state, plt::Runtime rt) {
  const plt::Runtime saved = plt::runtime();
  plt::set_runtime(rt);
  std::vector<parlooper::LoopSpecs> loops = {parlooper::LoopSpecs{0, 4, 1, {}},
                                             parlooper::LoopSpecs{0, 4, 1, {}}};
  parlooper::LoopNest nest(loops, "Ab", parlooper::Backend::kInterpreter);
  std::int64_t sink = 0;
  const parlooper::BodyFn body = [&](const std::int64_t* ind) {
    sink += ind[0] + ind[1];
  };
  for (auto _ : state) {
    nest(body);
    benchmark::DoNotOptimize(sink);
  }
  plt::set_runtime(saved);
}
BENCHMARK_CAPTURE(BM_NestDispatch, serial, plt::Runtime::kSerial);
#if defined(PLT_HAVE_OPENMP)
// Without OpenMP this row would silently measure the serial fallback.
BENCHMARK_CAPTURE(BM_NestDispatch, omp, plt::Runtime::kOpenMP);
#endif
BENCHMARK_CAPTURE(BM_NestDispatch, pool, plt::Runtime::kPool);

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  // BENCH_micro_tpp.json: the per-runtime dispatch overhead rows tracked
  // across PRs (the acceptance metric for the persistent-pool runtime).
  plt::bench::JsonReporter json("micro_tpp");
  plt::bench::report_dispatch_overhead(json, 20000);
  return 0;
}
