// Fig. 11: LLM inference latency (GPT-J / Llama2 style decoders, batch 1):
// first-token (prefill, compute bound) and per-next-token (KV-cache decode,
// bandwidth bound), for the framework-default schedule substitute ("hf-sub",
// serial K-outer loops) vs PARLOOPER, in fp32 and bf16. Expected shape:
// PARLOOPER wins (paper: 1.1x-2.8x), bf16 accelerates prefill more than
// decode, next-token << first-token.
#include "bench/bench_util.hpp"
#include "dl/llm.hpp"

using namespace plt;

int main(int argc, char** argv) {
  const bool full = bench::has_flag(argc, argv, "--full");
  const std::int64_t prompt = full ? 1024 : 128;
  const std::int64_t gen = full ? 32 : 8;

  bench::print_header("Fig. 11 — LLM inference (batch 1)");
  std::printf("%-10s %-10s %-6s %16s %16s\n", "model", "stack", "dtype",
              "first-token ms", "next-token ms");

  struct ModelCase {
    const char* name;
    dl::LlmConfig cfg;
  };
  for (ModelCase mc : {ModelCase{"gptj", dl::LlmConfig::gptj_scaled()},
                       ModelCase{"llama2", dl::LlmConfig::llama2_scaled()}}) {
    mc.cfg.max_seq = prompt + gen;
    for (const char* stack : {"hf-sub", "parlooper"}) {
      for (DType dt : {DType::F32, DType::BF16}) {
        dl::LlmConfig cfg = mc.cfg;
        cfg.dtype = dt;
        cfg.loop_spec = std::string(stack) == "hf-sub" ? "abc" : "BCa";
        Xoshiro256 rng(31);
        dl::LlmModel model(cfg, rng);
        const auto t = model.generate(prompt, gen, rng);
        std::printf("%-10s %-10s %-6s %16.2f %16.3f\n", mc.name, stack,
                    dt == DType::F32 ? "fp32" : "bf16", t.first_token_ms,
                    t.per_next_token_ms);
      }
    }
  }
  std::printf("\nexpected shape: parlooper <= hf-sub latency; bf16 helps the "
              "compute-bound first token most; next-token << first-token.\n");
  return 0;
}
