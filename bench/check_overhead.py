#!/usr/bin/env python3
"""CI gate: the persistent-pool runtime must keep its small-nest dispatch
advantage over the per-call OpenMP region path.

Usage: check_overhead.py BENCH_micro_tpp.json [min_ratio]
"""
import json
import sys


def main() -> int:
    path = sys.argv[1] if len(sys.argv) > 1 else "BENCH_micro_tpp.json"
    min_ratio = float(sys.argv[2]) if len(sys.argv) > 2 else 1.3
    with open(path) as f:
        data = json.load(f)
    ns = {r["name"]: r["ns_per_invocation"] for r in data["records"]}
    omp = ns.get("overhead_small_nest_omp")
    pool = ns.get("overhead_small_nest_pool")
    if not pool:
        print(f"missing pool overhead record in {path}: {sorted(ns)}")
        return 1
    if not omp:
        # No-OpenMP build: there is no per-call region-spawn baseline to
        # gate against (the bench skips the row rather than mislabel the
        # serial fallback as omp).
        print(f"no omp record in {path} (OpenMP not built); gate skipped")
        return 0
    ratio = omp / pool
    print(f"omp={omp:.1f}ns pool={pool:.1f}ns ratio={ratio:.2f}x "
          f"(required >= {min_ratio}x)")
    if ratio < min_ratio:
        print("FAIL: pool runtime lost its dispatch-overhead advantage")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
