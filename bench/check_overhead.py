#!/usr/bin/env python3
"""CI perf gates over the BENCH_*.json reporter output.

Default mode — pool dispatch overhead:
    check_overhead.py BENCH_micro_tpp.json [min_ratio]
  The persistent-pool runtime must keep its small-nest dispatch advantage
  over the per-call OpenMP region path (>= min_ratio, default 1.3).

Serving mode — micro-batching scheduler throughput:
    check_overhead.py --serving BENCH_serving.json [min_ratio]
  The scheduler (batched, persistent pool) must beat naive per-request
  dispatch by >= min_ratio (default 1.5) on the mixed-model workload.

Partitioned mode — sharded serving on the partitioned pool:
    check_overhead.py --partitioned BENCH_serving.json [min_ratio]
  The sharded scheduler (one queue + dispatcher per pool partition, pinned
  sessions, idle-shard stealing) must beat the single-shard scheduler by
  >= min_ratio (default 1.3). Run with PLT_POOL_PARTITIONS=2; the gate is
  skipped when the bench recorded fewer than 2 shards (nothing to compare).

Decode-tail mode — priority classes + continuous LLM-decode batching:
    check_overhead.py --decode-tail BENCH_serving.json [min_ratio]
  Latency-class LLM decode p95 on the mixed llm/bert tape must improve by
  >= min_ratio (default 1.3) with continuous batching on (priority classes +
  token-granular decode) vs the FIFO baseline.

Overload mode — delay-gradient brownout + gradient shedding:
    check_overhead.py --overload BENCH_serving.json [min_ratio]
  Latency-class p95 under ~2x saturation (standing stepped-decode backlog)
  must improve by >= min_ratio (default 1.2) with the delay-gradient
  controller on (PLT_SERVE_TARGET_DELAY_USECS > 0: throughput brownout +
  halved decode windows + gradient shed) vs the fixed queue-cap baseline.
  Both sides run priority classes and continuous batching, so the gain is
  attributable to overload control alone.
"""
import json
import sys


def check_dispatch(path: str, min_ratio: float) -> int:
    with open(path) as f:
        data = json.load(f)
    ns = {r["name"]: r["ns_per_invocation"] for r in data["records"]}
    omp = ns.get("overhead_small_nest_omp")
    pool = ns.get("overhead_small_nest_pool")
    if not pool:
        print(f"missing pool overhead record in {path}: {sorted(ns)}")
        return 1
    if not omp:
        # No-OpenMP build: there is no per-call region-spawn baseline to
        # gate against (the bench skips the row rather than mislabel the
        # serial fallback as omp).
        print(f"no omp record in {path} (OpenMP not built); gate skipped")
        return 0
    ratio = omp / pool
    print(f"omp={omp:.1f}ns pool={pool:.1f}ns ratio={ratio:.2f}x "
          f"(required >= {min_ratio}x)")
    if ratio < min_ratio:
        print("FAIL: pool runtime lost its dispatch-overhead advantage")
        return 1
    return 0


def check_serving(path: str, min_ratio: float) -> int:
    with open(path) as f:
        data = json.load(f)
    values = {r["name"]: r.get("value") for r in data["records"]}
    speedup = values.get("serving_speedup")
    naive = values.get("serving_naive_req_per_sec")
    sched = values.get("serving_scheduler_req_per_sec")
    if speedup is None or naive is None or sched is None:
        print(f"missing serving records in {path}: {sorted(values)}")
        return 1
    print(f"naive={naive:.1f} req/s scheduler={sched:.1f} req/s "
          f"speedup={speedup:.2f}x (required >= {min_ratio}x)")
    if speedup < min_ratio:
        print("FAIL: scheduler lost its advantage over naive per-request "
              "dispatch")
        return 1
    return 0


def check_partitioned(path: str, min_ratio: float) -> int:
    with open(path) as f:
        data = json.load(f)
    values = {r["name"]: r.get("value") for r in data["records"]}
    shards = values.get("serving_sharded_shards")
    ratio = values.get("serving_sharded_vs_single")
    single = values.get("serving_scheduler_req_per_sec")
    sharded = values.get("serving_sharded_req_per_sec")
    if shards is None or ratio is None:
        print(f"missing sharded-serving records in {path}: {sorted(values)}")
        return 1
    if shards < 2:
        print(f"pool ran with {int(shards)} shard(s); sharded == single "
              "layout, gate skipped (set PLT_POOL_PARTITIONS=2)")
        return 0
    print(f"single-shard={single:.1f} req/s sharded={sharded:.1f} req/s "
          f"({int(shards)} shards) ratio={ratio:.2f}x "
          f"(required >= {min_ratio}x)")
    if ratio < min_ratio:
        print("FAIL: per-partition sharding lost its advantage over the "
              "single-shard scheduler")
        return 1
    return 0


def check_decode_tail(path: str, min_ratio: float) -> int:
    with open(path) as f:
        data = json.load(f)
    values = {r["name"]: r.get("value") for r in data["records"]}
    fifo = values.get("serving_decode_p95_fifo_us")
    cont = values.get("serving_decode_p95_cont_us")
    ratio = values.get("serving_decode_tail_speedup")
    if fifo is None or cont is None or ratio is None:
        print(f"missing decode-tail records in {path}: {sorted(values)}")
        return 1
    print(f"decode p95: fifo={fifo:.1f}us continuous={cont:.1f}us "
          f"speedup={ratio:.2f}x (required >= {min_ratio}x)")
    if ratio < min_ratio:
        print("FAIL: continuous batching lost its decode tail-latency "
              "advantage over the FIFO baseline")
        return 1
    return 0


def check_overload(path: str, min_ratio: float) -> int:
    with open(path) as f:
        data = json.load(f)
    values = {r["name"]: r.get("value") for r in data["records"]}
    fixed = values.get("serving_overload_p95_fixed_us")
    adaptive = values.get("serving_overload_p95_adaptive_us")
    ratio = values.get("serving_overload_latency_p95_gain")
    brownouts = values.get("serving_overload_brownouts")
    if fixed is None or adaptive is None or ratio is None:
        print(f"missing overload records in {path}: {sorted(values)}")
        return 1
    print(f"overload p95: fixed-cap={fixed:.1f}us "
          f"delay-gradient={adaptive:.1f}us gain={ratio:.2f}x "
          f"({int(brownouts or 0)} brownouts, required >= {min_ratio}x)")
    if brownouts is not None and brownouts < 1:
        print("FAIL: the delay-gradient controller never engaged (no "
              "brownout transitions) — the scenario is not saturating")
        return 1
    if ratio < min_ratio:
        print("FAIL: delay-gradient overload control lost its latency-class "
              "p95 advantage over the fixed queue-cap baseline")
        return 1
    return 0


def main() -> int:
    args = sys.argv[1:]
    serving = "--serving" in args
    if serving:
        args.remove("--serving")
    partitioned = "--partitioned" in args
    if partitioned:
        args.remove("--partitioned")
    decode_tail = "--decode-tail" in args
    if decode_tail:
        args.remove("--decode-tail")
    overload = "--overload" in args
    if overload:
        args.remove("--overload")
    if serving:
        path = args[0] if args else "BENCH_serving.json"
        min_ratio = float(args[1]) if len(args) > 1 else 1.5
        return check_serving(path, min_ratio)
    if partitioned:
        path = args[0] if args else "BENCH_serving.json"
        min_ratio = float(args[1]) if len(args) > 1 else 1.3
        return check_partitioned(path, min_ratio)
    if decode_tail:
        path = args[0] if args else "BENCH_serving.json"
        min_ratio = float(args[1]) if len(args) > 1 else 1.3
        return check_decode_tail(path, min_ratio)
    if overload:
        path = args[0] if args else "BENCH_serving.json"
        min_ratio = float(args[1]) if len(args) > 1 else 1.2
        return check_overload(path, min_ratio)
    path = args[0] if args else "BENCH_micro_tpp.json"
    min_ratio = float(args[1]) if len(args) > 1 else 1.3
    return check_dispatch(path, min_ratio)


if __name__ == "__main__":
    sys.exit(main())
