// Shared helpers for the paper-figure benches: CLI scaling, operand setup
// and table printing. Every bench prints the same rows/series as its paper
// figure; pass --full for paper-scale shapes (defaults are scaled so the
// whole suite runs in minutes on one core).
#pragma once

#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "common/aligned_buffer.hpp"
#include "common/rng.hpp"
#include "common/timer.hpp"
#include "kernels/gemm_kernel.hpp"

namespace plt::bench {

inline bool has_flag(int argc, char** argv, const char* flag) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) return true;
  }
  return false;
}

inline void print_header(const char* title) {
  std::printf("\n=== %s ===\n", title);
}

// Prepares packed operands and times a GEMM kernel; returns GFLOPS.
struct GemmRun {
  double gflops = 0.0;
  double seconds = 0.0;
};

inline GemmRun run_gemm(const kernels::GemmConfig& cfg, int warmup = 1,
                        int iters = 3) {
  kernels::GemmKernel kernel(cfg);
  AlignedBuffer<std::uint8_t> a(kernel.a_elems() * dtype_size(cfg.dtype));
  AlignedBuffer<std::uint8_t> b(kernel.b_elems() * dtype_size(cfg.dtype));
  AlignedBuffer<std::uint8_t> c(kernel.c_elems() * dtype_size(cfg.dtype));
  Xoshiro256 rng(11);
  std::vector<float> flat(std::max(kernel.a_elems(), kernel.b_elems()));
  fill_uniform(flat.data(), flat.size(), rng, -0.5f, 0.5f);
  kernel.pack_a(flat.data(), a.data());
  kernel.pack_b(flat.data(), b.data());
  GemmRun r;
  r.seconds = time_best_seconds(
      [&] { kernel.run(a.data(), b.data(), c.data()); }, warmup, iters);
  r.gflops = gflops(kernel.flops(), r.seconds);
  return r;
}

inline double geomean(const std::vector<double>& v) {
  double log_sum = 0.0;
  for (double x : v) log_sum += std::log(x);
  return v.empty() ? 0.0 : std::exp(log_sum / static_cast<double>(v.size()));
}

}  // namespace plt::bench
