// Shared helpers for the paper-figure benches: CLI scaling, operand setup
// and table printing. Every bench prints the same rows/series as its paper
// figure; pass --full for paper-scale shapes (defaults are scaled so the
// whole suite runs in minutes on one core).
#pragma once

#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "common/aligned_buffer.hpp"
#include "common/cpu_features.hpp"
#include "common/env.hpp"
#include "common/rng.hpp"
#include "common/threading.hpp"
#include "common/timer.hpp"
#include "kernels/gemm_kernel.hpp"
#include "parlooper/threaded_loop.hpp"

namespace plt::bench {

inline bool has_flag(int argc, char** argv, const char* flag) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) return true;
  }
  return false;
}

inline void print_header(const char* title) {
  std::printf("\n=== %s ===\n", title);
}

// Machine-readable perf tracking: every bench appends records and writes
// BENCH_<bench>.json on destruction (into $PLT_BENCH_JSON_DIR or the CWD),
// so the perf trajectory across PRs is diffable by tooling instead of being
// buried in stdout tables.
class JsonReporter {
 public:
  explicit JsonReporter(std::string bench_name)
      : bench_name_(std::move(bench_name)) {}

  // gflops <= 0 or ns_per_invocation <= 0 are recorded as null (a metric
  // that does not apply to this row).
  void add(const std::string& name, double gflops_v, double ns_per_invocation,
           const std::string& runtime_label = "") {
    Record r;
    r.name = name;
    r.gflops = gflops_v;
    r.ns_per_invocation = ns_per_invocation;
    r.runtime = runtime_label.empty() ? runtime_name(runtime()) : runtime_label;
    records_.push_back(std::move(r));
  }

  // Generic metric row for quantities that are neither GFLOPS nor
  // ns/invocation (requests/sec, sequences/sec, queue depth, ...); the unit
  // string names what `value` measures.
  void add_value(const std::string& name, double value,
                 const std::string& unit,
                 const std::string& runtime_label = "") {
    Record r;
    r.name = name;
    r.value = value;
    r.unit = unit;
    r.runtime = runtime_label.empty() ? runtime_name(runtime()) : runtime_label;
    records_.push_back(std::move(r));
  }

  ~JsonReporter() { write(); }

  void write() const {
    const std::string dir = common::env_str("PLT_BENCH_JSON_DIR", "");
    const std::string path =
        (dir.empty() ? "" : dir + "/") + "BENCH_" + bench_name_ + ".json";
    std::ofstream os(path);
    if (!os) return;
    os << "{\n  \"bench\": \"" << bench_name_ << "\",\n"
       << "  \"threads\": " << max_threads() << ",\n"
       << "  \"isa\": \"" << isa_name(effective_isa()) << "\",\n"
       << "  \"records\": [\n";
    for (std::size_t i = 0; i < records_.size(); ++i) {
      const Record& r = records_[i];
      os << "    {\"name\": \"" << r.name << "\", \"runtime\": \""
         << r.runtime << "\", \"gflops\": ";
      if (r.gflops > 0) os << r.gflops; else os << "null";
      os << ", \"ns_per_invocation\": ";
      if (r.ns_per_invocation > 0) os << r.ns_per_invocation; else os << "null";
      if (!r.unit.empty()) {
        os << ", \"value\": " << r.value << ", \"unit\": \"" << r.unit << "\"";
      }
      os << "}" << (i + 1 < records_.size() ? "," : "") << "\n";
    }
    os << "  ]\n}\n";
    std::printf("[bench] wrote %s (%zu records)\n", path.c_str(),
                records_.size());
  }

 private:
  struct Record {
    std::string name;
    double gflops = 0.0;
    double ns_per_invocation = 0.0;
    double value = 0.0;
    std::string unit;  // non-empty => emit the generic value field
    std::string runtime;
  };
  std::string bench_name_;
  std::vector<Record> records_;
};

// Row-name suffix identifying the active pool partition count ("_p1",
// "_p2", ...), so the same bench's JSON rows from different CI matrix legs
// stay distinct and the partition-scaling trajectory is trackable.
inline std::string partition_suffix() {
  return "_p" + std::to_string(pool_partitions());
}

// Records a ThreadPool::stats() snapshot of the process-wide pool into the
// bench JSON: partition layout, whole-team regions, serial degradations
// (nested nests and lost dispatch races — by design the common case inside
// batched serving), completed barrier episodes, and per-partition run_on /
// steal counters. No-op under non-pool runtimes (there is no pool to read).
inline void report_pool_stats(JsonReporter& json) {
  if (runtime() != Runtime::kPool) return;
  ThreadPool& pool = ThreadPool::instance();
  const ThreadPool::Stats s = pool.stats();
  json.add_value("pool_partitions", pool.partitions(), "count", "pool");
  json.add_value("pool_team_regions", static_cast<double>(s.team_regions),
                 "count", "pool");
  json.add_value("pool_serial_degradations",
                 static_cast<double>(s.serial_degradations), "count", "pool");
  json.add_value("pool_barrier_epochs",
                 static_cast<double>(s.barrier_epochs), "count", "pool");
  for (std::size_t p = 0; p < s.partition.size(); ++p) {
    const std::string prefix = "pool_partition" + std::to_string(p);
    json.add_value(prefix + "_regions",
                   static_cast<double>(s.partition[p].regions), "count",
                   "pool");
    json.add_value(prefix + "_steals",
                   static_cast<double>(s.partition[p].steals), "count",
                   "pool");
  }
}

// Per-invocation dispatch overhead of a small PARLOOPER nest (the runtime's
// fixed cost: region entry, schedule lookup, body walk) in nanoseconds. The
// tiny body keeps the work negligible, so the number isolates what the
// paper says must be near zero (Section II-B).
inline double small_nest_ns_per_invocation(int repeats = 20000) {
  std::vector<parlooper::LoopSpecs> loops = {
      parlooper::LoopSpecs{0, 4, 1, {}}, parlooper::LoopSpecs{0, 4, 1, {}}};
  parlooper::LoopNest nest(loops, "Ab", parlooper::Backend::kInterpreter);
  volatile std::int64_t sink = 0;
  // A prebuilt BodyFn so the measurement excludes std::function construction.
  const parlooper::BodyFn body = [&](const std::int64_t* ind) {
    sink += ind[0] + ind[1];
  };
  const double s = time_best_seconds(
      [&] {
        for (int i = 0; i < repeats; ++i) nest(body);
      },
      1, 3);
  return s / repeats * 1e9;
}

// Measures small-nest dispatch overhead under every built runtime, prints a
// table, records overhead_small_nest_<runtime> JSON rows, and returns the
// omp/pool ratio (0 when OpenMP is not built — an "omp" row would really be
// the serial fallback, which would poison the tracked history and the CI
// gate). Shared by bench_fig2_gemm and bench_micro_tpp so the rows the gate
// reads come from one place.
inline double report_dispatch_overhead(JsonReporter& json, int repeats) {
  const Runtime saved = runtime();
  std::vector<Runtime> runtimes = {Runtime::kSerial, Runtime::kPool};
#if defined(PLT_HAVE_OPENMP)
  runtimes.insert(runtimes.begin() + 1, Runtime::kOpenMP);
#else
  std::printf("(OpenMP not built: omp overhead row skipped)\n");
#endif
  double ns_omp = 0.0, ns_pool = 0.0;
  for (Runtime rt : runtimes) {
    set_runtime(rt);
    const double ns = small_nest_ns_per_invocation(repeats);
    set_runtime(saved);
    std::printf("%-8s %10.1f ns/invocation\n", runtime_name(rt), ns);
    json.add(std::string("overhead_small_nest_") + runtime_name(rt), 0.0, ns,
             runtime_name(rt));
    if (rt == Runtime::kOpenMP) ns_omp = ns;
    if (rt == Runtime::kPool) ns_pool = ns;
  }
  if (ns_pool > 0.0 && ns_omp > 0.0) {
    std::printf("pool vs omp per-invocation overhead: %.2fx lower\n",
                ns_omp / ns_pool);
    return ns_omp / ns_pool;
  }
  return 0.0;
}

// Prepares packed operands and times a GEMM kernel; returns GFLOPS.
struct GemmRun {
  double gflops = 0.0;
  double seconds = 0.0;
};

inline GemmRun run_gemm(const kernels::GemmConfig& cfg, int warmup = 1,
                        int iters = 3) {
  kernels::GemmKernel kernel(cfg);
  AlignedBuffer<std::uint8_t> a(kernel.a_elems() * dtype_size(cfg.dtype));
  AlignedBuffer<std::uint8_t> b(kernel.b_elems() * dtype_size(cfg.dtype));
  AlignedBuffer<std::uint8_t> c(kernel.c_elems() * dtype_size(cfg.dtype));
  Xoshiro256 rng(11);
  std::vector<float> flat(std::max(kernel.a_elems(), kernel.b_elems()));
  fill_uniform(flat.data(), flat.size(), rng, -0.5f, 0.5f);
  kernel.pack_a(flat.data(), a.data());
  kernel.pack_b(flat.data(), b.data());
  GemmRun r;
  r.seconds = time_best_seconds(
      [&] { kernel.run(a.data(), b.data(), c.data()); }, warmup, iters);
  r.gflops = gflops(kernel.flops(), r.seconds);
  return r;
}

inline double geomean(const std::vector<double>& v) {
  double log_sum = 0.0;
  for (double x : v) log_sum += std::log(x);
  return v.empty() ? 0.0 : std::exp(log_sum / static_cast<double>(v.size()));
}

}  // namespace plt::bench
