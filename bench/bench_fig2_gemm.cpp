// Fig. 2: GEMM GFLOPS across sizes and precisions — PARLOOPER/TPP vs the
// vendor-library substitutes (fixed-schedule blocked GEMM standing in for
// oneDNN/AOCL, naive triple loop as the floor).
//
// Expected shape (paper): PARLOOPER matches/exceeds the library baseline in
// fp32 and wins clearly in bf16 where packed layouts and wide dot-products
// matter (the paper reports up to 1.98x on SPR-BF16).
#include <cmath>

#include "baselines/ref_gemm.hpp"
#include "bench/bench_util.hpp"
#include "tpp/transforms.hpp"

using namespace plt;

namespace {

double bench_baseline_f32(std::int64_t n, int iters) {
  std::vector<float> a(static_cast<std::size_t>(n * n)),
      b(static_cast<std::size_t>(n * n)), c(static_cast<std::size_t>(n * n));
  Xoshiro256 rng(5);
  fill_uniform(a.data(), a.size(), rng, -0.5f, 0.5f);
  fill_uniform(b.data(), b.size(), rng, -0.5f, 0.5f);
  const double s = time_best_seconds(
      [&] { baselines::fixed_blocked_gemm(a.data(), b.data(), c.data(), n, n, n); },
      1, iters);
  return gflops(2.0 * n * n * n, s);
}

double bench_baseline_bf16(std::int64_t n, int iters) {
  std::vector<bf16> a(static_cast<std::size_t>(n * n)),
      b(static_cast<std::size_t>(n * n));
  std::vector<float> c(static_cast<std::size_t>(n * n));
  Xoshiro256 rng(6);
  for (auto& v : a) v = bf16::from_f32(rng.uniform(-0.5f, 0.5f));
  for (auto& v : b) v = bf16::from_f32(rng.uniform(-0.5f, 0.5f));
  const double s = time_best_seconds(
      [&] {
        baselines::fixed_blocked_gemm_bf16(a.data(), b.data(), c.data(), n, n, n);
      },
      1, iters);
  return gflops(2.0 * n * n * n, s);
}

}  // namespace

int main(int argc, char** argv) {
  const bool full = bench::has_flag(argc, argv, "--full");
  const bool smoke = bench::has_flag(argc, argv, "--smoke");
  std::vector<std::int64_t> sizes =
      full ? std::vector<std::int64_t>{512, 1024, 2048, 4096}
           : smoke ? std::vector<std::int64_t>{128, 256}
                   : std::vector<std::int64_t>{128, 256, 512};
  bench::JsonReporter json("fig2_gemm");
  bench::print_header("Fig. 2 — GEMM GFLOPS (MxKxN square), per precision");
  std::printf("%-16s %-6s %12s %12s %12s %8s\n", "size", "dtype",
              "PARLOOPER", "library-sub", "naive-floor", "speedup");

  for (std::int64_t n : sizes) {
    const int iters = n >= 1024 ? 2 : 3;
    for (DType dt : {DType::F32, DType::BF16}) {
      kernels::GemmConfig cfg;
      cfg.M = cfg.N = cfg.K = n;
      cfg.bm = cfg.bn = cfg.bk = 32;
      cfg.dtype = dt;
      // Fuse the full K reduction per C block: one batch-reduce per tile,
      // so low-precision C tiles convert once (not per k-block).
      cfg.k_step = n / 32;
      cfg.loop_spec = "BCa";
      const auto ours = bench::run_gemm(cfg, 1, iters);
      const double lib = dt == DType::F32 ? bench_baseline_f32(n, iters)
                                          : bench_baseline_bf16(n, iters);
      double naive = 0.0;
      if (n <= 512) {  // the floor is too slow to run at large sizes
        std::vector<float> a(static_cast<std::size_t>(n * n)),
            b(a.size()), c(a.size());
        Xoshiro256 rng(7);
        fill_uniform(a.data(), a.size(), rng, -0.5f, 0.5f);
        fill_uniform(b.data(), b.size(), rng, -0.5f, 0.5f);
        const double s = time_best_seconds(
            [&] { baselines::naive_gemm(a.data(), b.data(), c.data(), n, n, n); },
            0, 1);
        naive = gflops(2.0 * n * n * n, s);
      }
      std::printf("%-4ldx%-4ldx%-4ld  %-6s %12.2f %12.2f %12.2f %7.2fx\n",
                  static_cast<long>(n), static_cast<long>(n),
                  static_cast<long>(n), dt == DType::F32 ? "fp32" : "bf16",
                  ours.gflops, lib, naive, ours.gflops / lib);
      const std::string dts = dt == DType::F32 ? "fp32" : "bf16";
      json.add("gemm_" + std::to_string(n) + "_" + dts + "_parlooper",
               ours.gflops, ours.seconds * 1e9);
      json.add("gemm_" + std::to_string(n) + "_" + dts + "_library_sub", lib,
               0.0);
    }
  }

  // Per-invocation dispatch overhead of a tiny nest under each execution
  // runtime — the cost the persistent pool is built to eliminate. The paper
  // claim is that steady-state dispatch is a cached lookup, not a region
  // respawn (Section II-B).
  bench::print_header("Small-nest dispatch overhead (ns/invocation)");
  bench::report_dispatch_overhead(json, smoke ? 2000 : 20000);
  bench::report_pool_stats(json);

  std::printf("\nexpected shape: PARLOOPER >= library substitute; bf16 >= fp32 "
              "on machines with bf16 acceleration.\n");
  return 0;
}
