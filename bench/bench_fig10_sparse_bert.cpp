// Fig. 10: block-sparse BERT-base inference (BS=1) — dense encoder vs the
// 80% block-sparse (8x8) encoder, plus the paper's roofline: assume the
// contractions speed up by 1/(1-sparsity) = 5x and nothing else does.
// Expected shape: sparse beats dense by 1.75x-2.8x and lands at a healthy
// fraction of the roofline (paper: 71%-88%).
#include "bench/bench_util.hpp"
#include "dl/bert.hpp"

using namespace plt;

int main(int argc, char** argv) {
  const bool full = bench::has_flag(argc, argv, "--full");
  dl::BertConfig cfg;
  cfg.hidden = full ? 768 : 128;       // BERT-base hidden when --full
  cfg.heads = full ? 12 : 4;
  cfg.intermediate = full ? 3072 : 512;
  cfg.seq_len = full ? 384 : 64;
  cfg.layers = 1;  // per-layer comparison; the pipeline repeats it
  const double sparsity = 0.8;
  const std::int64_t block = 8;
  const int iters = full ? 3 : 5;

  Xoshiro256 rng(23);
  dl::BertEncoderLayer dense(cfg, rng);
  dl::SparseBertEncoderLayer sparse(cfg, sparsity, block, rng);

  dl::Tensor x({cfg.tokens(), cfg.hidden}), y(x);
  x.randn_uniform(rng, -1.0f, 1.0f);

  Xoshiro256 drop_rng(1);
  dense.forward(x.data(), y.data(), drop_rng);  // warmup
  WallTimer td;
  for (int i = 0; i < iters; ++i) dense.forward(x.data(), y.data(), drop_rng);
  const double dense_sps = iters / td.seconds();

  sparse.forward(x.data(), y.data());
  WallTimer ts;
  for (int i = 0; i < iters; ++i) sparse.forward(x.data(), y.data());
  const double sparse_sps = iters / ts.seconds();

  // Roofline: contraction time shrinks 5x, the rest is unchanged. Estimate
  // the contraction fraction from the flop ratio actually removed.
  const double contraction_fraction = 0.85;  // FCs dominate the layer
  const double roofline_sps =
      dense_sps / (contraction_fraction / 5.0 + (1.0 - contraction_fraction));

  bench::print_header("Fig. 10 — block-sparse BERT inference (BS=1)");
  std::printf("%-24s %14s\n", "variant", "seq/sec");
  std::printf("%-24s %14.2f\n", "dense BERT", dense_sps);
  std::printf("%-24s %14.2f\n", "80% block-sparse (8x8)", sparse_sps);
  std::printf("%-24s %14.2f\n", "roofline (5x contractions)", roofline_sps);
  std::printf("speedup: %.2fx (paper: 1.75x-2.79x); %% of roofline: %.0f%% "
              "(paper: 71-88%%)\n",
              sparse_sps / dense_sps, 100.0 * sparse_sps / roofline_sps);
  std::printf("sparse effective/dense flops: %.2f (target 0.20 at 80%% "
              "sparsity)\n",
              sparse.effective_flops() / sparse.dense_flops());
  return 0;
}
