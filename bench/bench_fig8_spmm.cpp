// Fig. 8: BF16 Block-SpMM effective GFLOPS vs sparsity, per block size, with
// the dense GEMM rate as the baseline. Expected shape (paper): large blocks
// beat dense even at modest sparsity; small blocks need high sparsity (their
// short accumulation chains underuse the wide dot-product hardware), and the
// max speedup approaches 1/(1-sparsity).
#include "bench/bench_util.hpp"
#include "kernels/spmm_kernel.hpp"

using namespace plt;

int main(int argc, char** argv) {
  const bool full = bench::has_flag(argc, argv, "--full");
  const std::int64_t n = full ? 2048 : 512;

  // Dense baseline at the same shape/precision.
  kernels::GemmConfig dense;
  dense.M = dense.N = dense.K = n;
  dense.bm = dense.bn = dense.bk = 32;
  dense.k_step = n / 32;
  dense.dtype = DType::BF16;
  const double dense_gf = bench::run_gemm(dense, 1, 2).gflops;

  bench::print_header(
      ("Fig. 8 — BF16 Block-SpMM, " + std::to_string(n) + "^3 (effective "
       "GFLOPS; dense baseline " + std::to_string(dense_gf) + ")")
          .c_str());
  std::printf("%-10s", "sparsity");
  for (std::int64_t b : {4, 8, 16, 32}) std::printf(" %8ldx%-4ld", static_cast<long>(b), static_cast<long>(b));
  std::printf(" %10s\n", "dense");

  for (int pct = 0; pct <= 90; pct += full ? 10 : 30) {
    const double sparsity = pct / 100.0;
    std::printf("%8d%%  ", pct);
    for (std::int64_t b : {4, 8, 16, 32}) {
      Xoshiro256 rng(100 + pct + b);
      tpp::BcscMatrix a =
          tpp::BcscMatrix::random(n, n, b, b, DType::BF16, sparsity, rng);
      kernels::SpmmConfig cfg;
      cfg.M = cfg.N = cfg.K = n;
      cfg.bm = cfg.bk = b;
      cfg.bn = 32;
      cfg.dtype = DType::BF16;
      kernels::SpmmKernel kernel(cfg);
      std::vector<bf16> bmat(static_cast<std::size_t>(n * n));
      for (auto& v : bmat) v = bf16::from_f32(rng.uniform(-0.5f, 0.5f));
      std::vector<float> c(static_cast<std::size_t>(n * n));
      const double s = time_best_seconds(
          [&] { kernel.run(a, bmat.data(), c.data()); }, 1, 2);
      // "Effective" GFLOPS credit the dense-equivalent work, as the paper's
      // log-scale axis does.
      std::printf(" %12.2f", gflops(kernel.dense_flops(), s));
    }
    std::printf(" %10.2f\n", dense_gf);
  }
  std::printf("\nexpected shape: crossover vs dense at modest sparsity for "
              "large blocks, higher sparsity for 4x4; max speedup ~1/(1-s).\n");
  return 0;
}
