// Compiled loop-nest plan: the loop IR shared by the interpreter executor
// and the source-JIT backend. Built once per (declaration, spec string) and
// cached; numeric bounds stay runtime parameters of execution, mirroring the
// paper's "blocking lists may be provided at runtime" design.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "parlooper/access_map.hpp"
#include "parlooper/loop_spec.hpp"

namespace plt::parlooper {

struct CompiledLevel {
  LoopTerm term;
  std::int64_t step = 1;    // step of this occurrence
  std::int64_t trip = 0;    // constant trip count (in steps)
  int parent_level = -1;    // previous occurrence of the same letter, or -1

  // PAR-MODE 1 collapse-group bookkeeping.
  bool group_head = false;
  int group_size = 0;       // valid at the head
  bool in_group = false;
  std::int64_t group_total = 0;  // at the head: product of the group's trips
};

// Precompiled steady-state schedule for one team size: for every thread, the
// exact body invocations (innermost logical-index tuples, row-major
// [invocation][num_logical]) in program order, segmented at barrier points.
// Executing a nest becomes a flat array walk — no recursive re-derivation of
// chunk bounds, grid cells or collapse-group divisions per call.
struct ThreadProgram {
  std::vector<std::int64_t> inds;     // invocations * num_logical values
  std::vector<std::int64_t> seg_len;  // invocations per barrier-delimited segment
};

struct TeamSchedule {
  int nthreads = 0;
  std::vector<ThreadProgram> threads;
  const TeamSchedule* next = nullptr;  // intrusive memo chain (see plan)
};

class LoopNestPlan {
 public:
  LoopNestPlan(std::vector<LoopSpecs> loops, const std::string& spec_string);

  const std::vector<LoopSpecs>& loops() const { return loops_; }
  const ParsedSpec& parsed() const { return parsed_; }
  const std::vector<CompiledLevel>& levels() const { return levels_; }
  int num_logical() const { return static_cast<int>(loops_.size()); }
  const std::string& spec_string() const { return spec_string_; }

  // Index of the innermost occurrence level per logical loop (the value the
  // body receives in ind[]).
  const std::vector<int>& innermost_level() const { return innermost_level_; }

  // PAR-MODE 2 logical thread grid (1 along unused axes).
  int grid_rows() const { return grid_rows_; }
  int grid_cols() const { return grid_cols_; }
  int grid_layers() const { return grid_layers_; }

  // Total body invocations of one execution (product of all trip counts).
  std::int64_t total_iterations() const { return total_iterations_; }

  // True when any level is parallelized (precomputed; the hot dispatch path
  // must not rescan the levels per call).
  bool any_parallel() const { return any_parallel_; }

  // Precompiled per-thread schedule for an nthreads-wide team, built on
  // first use and memoized for the plan's lifetime (an invocation is then a
  // flat walk of ThreadProgram::inds). Returns nullptr when the nest is too
  // large to flatten (> flat_schedule_max_iters() body calls) — execution
  // falls back to the recursive interpreter, whose per-call overhead is
  // amortized by the large body count. The lookup is lock-free on the hit
  // path (acquire walk of an immutable chain). Defined in interpreter.cpp,
  // which owns the single source of truth for iteration-order semantics.
  const TeamSchedule* team_schedule(int nthreads) const;

  // Flattening threshold in body invocations (PLT_FLAT_SCHED_MAX overrides;
  // 0 disables flat schedules entirely).
  static std::int64_t flat_schedule_max_iters();

  // Cache key covering the generated-code structure.
  std::string structural_key() const;

  // Access maps attached by the plan's users (LoopNest construction sites).
  // Plans are cached and shared, so several kernels with the same spec and
  // bounds accumulate their (deduplicated) footprints here; the static
  // verifier (src/analysis/) proves race-freedom against every attached map.
  // Returns true when the map was new (not a structural duplicate).
  bool attach_access_map(const AccessMap& map) const;
  std::vector<AccessMap> access_maps() const;

  ~LoopNestPlan();
  LoopNestPlan(const LoopNestPlan&) = delete;
  LoopNestPlan& operator=(const LoopNestPlan&) = delete;

 private:
  std::vector<LoopSpecs> loops_;
  std::string spec_string_;
  ParsedSpec parsed_;
  std::vector<CompiledLevel> levels_;
  std::vector<int> innermost_level_;
  int grid_rows_ = 1, grid_cols_ = 1, grid_layers_ = 1;
  std::int64_t total_iterations_ = 0;
  bool any_parallel_ = false;

  mutable std::atomic<const TeamSchedule*> schedules_{nullptr};
  mutable std::mutex schedule_build_mu_;

  mutable std::mutex access_mu_;  // guards access_maps_/access_signatures_
  mutable std::vector<AccessMap> access_maps_;
  mutable std::vector<std::string> access_signatures_;
};

}  // namespace plt::parlooper
