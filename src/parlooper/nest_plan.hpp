// Compiled loop-nest plan: the loop IR shared by the interpreter executor
// and the source-JIT backend. Built once per (declaration, spec string) and
// cached; numeric bounds stay runtime parameters of execution, mirroring the
// paper's "blocking lists may be provided at runtime" design.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "parlooper/loop_spec.hpp"

namespace plt::parlooper {

struct CompiledLevel {
  LoopTerm term;
  std::int64_t step = 1;    // step of this occurrence
  std::int64_t trip = 0;    // constant trip count (in steps)
  int parent_level = -1;    // previous occurrence of the same letter, or -1

  // PAR-MODE 1 collapse-group bookkeeping.
  bool group_head = false;
  int group_size = 0;       // valid at the head
  bool in_group = false;
};

class LoopNestPlan {
 public:
  LoopNestPlan(std::vector<LoopSpecs> loops, const std::string& spec_string);

  const std::vector<LoopSpecs>& loops() const { return loops_; }
  const ParsedSpec& parsed() const { return parsed_; }
  const std::vector<CompiledLevel>& levels() const { return levels_; }
  int num_logical() const { return static_cast<int>(loops_.size()); }
  const std::string& spec_string() const { return spec_string_; }

  // Index of the innermost occurrence level per logical loop (the value the
  // body receives in ind[]).
  const std::vector<int>& innermost_level() const { return innermost_level_; }

  // PAR-MODE 2 logical thread grid (1 along unused axes).
  int grid_rows() const { return grid_rows_; }
  int grid_cols() const { return grid_cols_; }
  int grid_layers() const { return grid_layers_; }

  // Total body invocations of one execution (product of all trip counts).
  std::int64_t total_iterations() const { return total_iterations_; }

  // Cache key covering the generated-code structure.
  std::string structural_key() const;

 private:
  std::vector<LoopSpecs> loops_;
  std::string spec_string_;
  ParsedSpec parsed_;
  std::vector<CompiledLevel> levels_;
  std::vector<int> innermost_level_;
  int grid_rows_ = 1, grid_cols_ = 1, grid_layers_ = 1;
  std::int64_t total_iterations_ = 0;
};

}  // namespace plt::parlooper
