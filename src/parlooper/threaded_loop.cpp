#include "parlooper/threaded_loop.hpp"

#include <mutex>
#include <sstream>
#include <unordered_map>

#include "analysis/verifier.hpp"
#include "common/env.hpp"
#include "common/fault.hpp"
#include "parlooper/jit_backend.hpp"

namespace plt::parlooper {

namespace {

// Plan cache: (bounds + spec string) -> compiled plan. Unlike the JIT cache
// (structural key only), plans bake numeric trip counts, so bounds are part
// of the key.
struct PlanRegistry {
  std::mutex mu;
  std::unordered_map<std::string, std::shared_ptr<const LoopNestPlan>> map;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
};

PlanRegistry& plan_registry() {
  static PlanRegistry r;
  return r;
}

std::string plan_key(const std::vector<LoopSpecs>& loops,
                     const std::string& spec) {
  std::ostringstream os;
  os << spec << '#';
  for (const LoopSpecs& l : loops) {
    os << l.start << ',' << l.end << ',' << l.step << '[';
    for (std::int64_t b : l.block_steps) os << b << ',';
    os << ']';
  }
  return os.str();
}

bool jit_requested_by_env() {
  static const bool v = common::env_flag("PLT_PARLOOPER_JIT", false);
  return v;
}

}  // namespace

PlanCacheStats plan_cache_stats() {
  PlanRegistry& reg = plan_registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  return PlanCacheStats{reg.hits, reg.misses};
}

void plan_cache_for_each(
    const std::function<void(const LoopNestPlan&)>& visitor) {
  PlanRegistry& reg = plan_registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  for (const auto& [key, plan] : reg.map) visitor(*plan);
}

LoopNest::LoopNest(std::vector<LoopSpecs> loops, const std::string& spec_string,
                   Backend backend, const AccessMap& access) {
  const std::string key = plan_key(loops, spec_string);
  PlanRegistry& reg = plan_registry();
  {
    std::lock_guard<std::mutex> lock(reg.mu);
    auto it = reg.map.find(key);
    if (it != reg.map.end()) {
      ++reg.hits;
      plan_ = it->second;
    }
  }
  if (!plan_) {
    auto plan = std::make_shared<const LoopNestPlan>(std::move(loops), spec_string);
    std::lock_guard<std::mutex> lock(reg.mu);
    auto [it, inserted] = reg.map.emplace(key, plan);
    if (inserted) ++reg.misses; else ++reg.hits;
    plan_ = it->second;
  }

  if (!access.empty()) plan_->attach_access_map(access);
  // Static verification hook (PLT_VERIFY_PLANS=1 warn / =2 fail); memoized
  // per plan so cache hits with an already-proved map set return instantly.
  analysis::maybe_verify_at_plan_compile(*plan_);

  const bool want_jit =
      backend == Backend::kJit ||
      (backend == Backend::kAuto && jit_requested_by_env());
  if (want_jit) {
    jit_ = JitLoop::get_or_compile(*plan_);
  }
}

void LoopNest::operator()(const BodyFn& body, const VoidFn& init,
                          const VoidFn& term) const {
  // Chaos-test hook: one fault point per nest invocation, covering both the
  // JIT and interpreter paths. Unarmed cost is one relaxed load + branch.
  common::fault::fire_point(common::fault::Site::kKernelExec);
  if (jit_ != nullptr) {
    jit_->run(*plan_, body, init, term);
  } else {
    run_interpreter(*plan_, body, init, term);
  }
}

}  // namespace plt::parlooper
