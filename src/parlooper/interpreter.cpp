#include "parlooper/interpreter.hpp"

#include <vector>

#include "common/check.hpp"
#include "common/env.hpp"
#include "common/threading.hpp"

namespace plt::parlooper {

namespace {

struct ThreadExec {
  const LoopNestPlan& plan;
  const BodyFn& body;
  int tid;
  int nthreads;
  bool simulated = false;  // skip barriers when replaying a single thread
  const VoidFn* on_barrier = nullptr;    // trace hook (schedule precompiler)
  std::int64_t coord[4] = {0, 0, 0, 0};  // index by GridAxis
  std::vector<std::int64_t> cur;         // current value per level
  std::vector<std::int64_t> ind;         // body's logical-index array

  ThreadExec(const LoopNestPlan& p, const BodyFn& b, int t, int n)
      : plan(p), body(b), tid(t), nthreads(n) {
    cur.assign(p.levels().size(), 0);
    ind.assign(static_cast<std::size_t>(p.num_logical()), 0);
  }

  // Maps a flat grid-cell id to (row, col, layer) coordinates. Cells are
  // distributed round-robin across the team, so a team smaller than the
  // grid still covers every cell (and a larger team leaves threads idle).
  void set_cell(std::int64_t cell) {
    const std::int64_t layers = plan.grid_layers(), cols = plan.grid_cols();
    coord[static_cast<int>(GridAxis::kRow)] = cell / (cols * layers);
    coord[static_cast<int>(GridAxis::kCol)] = (cell / layers) % cols;
    coord[static_cast<int>(GridAxis::kLayer)] = cell % layers;
  }

  std::int64_t level_base(std::size_t li) const {
    const CompiledLevel& lvl = plan.levels()[li];
    if (lvl.parent_level < 0) {
      return plan.loops()[static_cast<std::size_t>(lvl.term.logical)].start;
    }
    return cur[static_cast<std::size_t>(lvl.parent_level)];
  }

  void call_body() {
    for (int l = 0; l < plan.num_logical(); ++l) {
      ind[static_cast<std::size_t>(l)] =
          cur[static_cast<std::size_t>(plan.innermost_level()[static_cast<std::size_t>(l)])];
    }
    body(ind.data());
  }

  void run_level(std::size_t li) {
    if (li == plan.levels().size()) {
      call_body();
      return;
    }
    const CompiledLevel& lvl = plan.levels()[li];

    if (lvl.group_head) {
      run_collapse_group(li);
      // A barrier on the group's last member fires once the whole collapse
      // group completes — mirroring the JIT backend, which emits the barrier
      // after the group's closing brace. (Mid-group barriers are rejected by
      // validate_spec; they could never fire a consistent number of times.)
      const std::size_t gend = li + static_cast<std::size_t>(lvl.group_size);
      if (plan.levels()[gend - 1].term.barrier_after) {
        if (on_barrier != nullptr) {
          (*on_barrier)();
        } else if (!simulated) {
          thread_barrier();
        }
      }
      return;
    }

    if (lvl.term.grid != GridAxis::kNone) {
      // Block partition of the trip count along this grid axis.
      const std::int64_t ways = lvl.term.grid_ways;
      const std::int64_t w = coord[static_cast<int>(lvl.term.grid)];
      const std::int64_t lo = (lvl.trip * w) / ways;
      const std::int64_t hi = (lvl.trip * (w + 1)) / ways;
      const std::int64_t base = level_base(li);
      for (std::int64_t it = lo; it < hi; ++it) {
        cur[li] = base + it * lvl.step;
        run_level(li + 1);
      }
      return;
    }

    // Sequential level (executed redundantly by every thread).
    const std::int64_t base = level_base(li);
    for (std::int64_t it = 0; it < lvl.trip; ++it) {
      cur[li] = base + it * lvl.step;
      run_level(li + 1);
    }
    if (lvl.term.barrier_after) {
      if (on_barrier != nullptr) {
        (*on_barrier)();
      } else if (!simulated) {
        thread_barrier();
      }
    }
  }

  // PAR-MODE 1: flatten the group's (constant) trip counts row-major and
  // split the flat range across threads. schedule(dynamic,c) is emulated
  // with cyclic chunk assignment — deterministic, synchronization-free, and
  // load-balancing like the OpenMP dynamic schedule it stands in for (the
  // JIT backend emits the real directive).
  void run_collapse_group(std::size_t head) {
    const CompiledLevel& h = plan.levels()[head];
    const int gs = h.group_size;
    const std::int64_t total = h.group_total;  // precompiled by the plan

    const auto exec_flat = [&](std::int64_t flat) {
      std::int64_t rem = flat;
      for (int g = gs - 1; g >= 0; --g) {
        const std::size_t li = head + static_cast<std::size_t>(g);
        const CompiledLevel& lvl = plan.levels()[li];
        const std::int64_t it = rem % lvl.trip;
        rem /= lvl.trip;
        // Note: cur[] of an earlier group level may be this level's base, so
        // bases must be resolved outermost-first; stash step indices first.
        cur[li] = it;  // temporarily store the step index
      }
      for (int g = 0; g < gs; ++g) {
        const std::size_t li = head + static_cast<std::size_t>(g);
        const CompiledLevel& lvl = plan.levels()[li];
        const std::int64_t it = cur[li];
        cur[li] = level_base(li) + it * lvl.step;
      }
      run_level(head + static_cast<std::size_t>(gs));
    };

    if (plan.parsed().dynamic_schedule) {
      const std::int64_t chunk = plan.parsed().dynamic_chunk;
      for (std::int64_t b = tid; b * chunk < total; b += nthreads) {
        const std::int64_t lo = b * chunk;
        const std::int64_t hi = std::min(total, lo + chunk);
        for (std::int64_t f = lo; f < hi; ++f) exec_flat(f);
      }
    } else {
      const std::int64_t per = (total + nthreads - 1) / nthreads;
      const std::int64_t lo = std::min<std::int64_t>(total, per * tid);
      const std::int64_t hi = std::min<std::int64_t>(total, lo + per);
      for (std::int64_t f = lo; f < hi; ++f) exec_flat(f);
    }
  }
};

// Runs one thread's full traversal (grid-cell loop included); the shared
// entry point of live execution, simulation and schedule precompilation.
void traverse_thread(ThreadExec& exec) {
  const LoopNestPlan& plan = exec.plan;
  if (plan.parsed().explicit_grid) {
    const std::int64_t cells = static_cast<std::int64_t>(plan.grid_rows()) *
                               plan.grid_cols() * plan.grid_layers();
    for (std::int64_t cell = exec.tid; cell < cells; cell += exec.nthreads) {
      exec.set_cell(cell);
      exec.run_level(0);
    }
  } else {
    exec.run_level(0);
  }
}

// Steady-state executor: walks a precompiled ThreadProgram. The body sees
// exactly the index tuples the recursive traversal would have produced, with
// real barriers at segment boundaries.
void walk_program(const ThreadProgram& prog, int num_logical,
                  const BodyFn& body, bool live_barriers) {
  const std::int64_t* ind = prog.inds.data();
  const std::size_t nseg = prog.seg_len.size();
  for (std::size_t s = 0; s < nseg; ++s) {
    for (std::int64_t i = 0; i < prog.seg_len[s]; ++i) {
      body(ind);
      ind += num_logical;
    }
    if (live_barriers && s + 1 < nseg) thread_barrier();
  }
}

}  // namespace

ThreadProgram record_thread_program(const LoopNestPlan& plan, int tid,
                                    int nthreads) {
  ThreadProgram prog;
  const int nlog = plan.num_logical();
  std::int64_t seg = 0;
  const BodyFn recorder = [&](const std::int64_t* ind) {
    prog.inds.insert(prog.inds.end(), ind, ind + nlog);
    ++seg;
  };
  const VoidFn barrier_hook = [&] {
    prog.seg_len.push_back(seg);
    seg = 0;
  };
  ThreadExec exec(plan, recorder, tid, nthreads);
  exec.simulated = true;
  exec.on_barrier = &barrier_hook;
  traverse_thread(exec);
  prog.seg_len.push_back(seg);  // final (possibly empty) segment
  return prog;
}

std::vector<ThreadProgram> record_team_programs(const LoopNestPlan& plan,
                                                int nthreads) {
  std::vector<ThreadProgram> team;
  team.reserve(static_cast<std::size_t>(nthreads));
  std::size_t nsegs = 0;
  for (int t = 0; t < nthreads; ++t) {
    if (t > 0 && !plan.any_parallel()) {
      // Serial nests execute on thread 0 only (mirrors simulate_thread);
      // other members get an empty program with matching barrier structure.
      ThreadProgram idle;
      idle.seg_len.assign(nsegs, 0);
      team.push_back(std::move(idle));
      continue;
    }
    team.push_back(record_thread_program(plan, t, nthreads));
    if (t == 0) nsegs = team[0].seg_len.size();
  }
  return team;
}

std::int64_t LoopNestPlan::flat_schedule_max_iters() {
  // 0 disables precompiled schedules entirely (forces the recursive walk).
  static const std::int64_t v = common::env_int(
      "PLT_FLAT_SCHED_MAX", std::int64_t{1} << 13, 0, std::int64_t{1} << 32);
  return v;
}

const TeamSchedule* LoopNestPlan::team_schedule(int nthreads) const {
  if (total_iterations_ > flat_schedule_max_iters()) return nullptr;

  // Lock-free hit path: the chain only ever grows at the head and nodes are
  // immutable once published.
  for (const TeamSchedule* s = schedules_.load(std::memory_order_acquire);
       s != nullptr; s = s->next) {
    if (s->nthreads == nthreads) return s;
  }

  std::lock_guard<std::mutex> lock(schedule_build_mu_);
  const TeamSchedule* head = schedules_.load(std::memory_order_relaxed);
  for (const TeamSchedule* s = head; s != nullptr; s = s->next) {
    if (s->nthreads == nthreads) return s;
  }

  std::vector<ThreadProgram> team = record_team_programs(*this, nthreads);
  const std::size_t nsegs = team.empty() ? 0 : team[0].seg_len.size();
  for (const ThreadProgram& prog : team) {
    PLT_ENSURE(prog.seg_len.size() == nsegs, StatusCode::kInternal,
               "flat schedule: barrier count differs across threads");
  }
  auto* sched = new TeamSchedule;
  sched->nthreads = nthreads;
  sched->threads = std::move(team);
  sched->next = head;
  schedules_.store(sched, std::memory_order_release);
  return sched;
}

void run_interpreter(const LoopNestPlan& plan, const BodyFn& body,
                     const VoidFn& init, const VoidFn& term) {
  if (!plan.any_parallel()) {
    // No parallel letters: a serial nest. (Running it redundantly on every
    // thread, as the raw Listing-2 code would, duplicates the computation.)
    if (init) init();
    if (const TeamSchedule* sched = plan.team_schedule(1)) {
      walk_program(sched->threads[0], plan.num_logical(), body, false);
    } else {
      ThreadExec exec(plan, body, 0, 1);
      exec.run_level(0);
    }
    if (term) term();
    return;
  }
  parallel_region([&](int tid, int nthreads) {
    if (init) init();
    if (const TeamSchedule* sched = plan.team_schedule(nthreads)) {
      walk_program(sched->threads[static_cast<std::size_t>(tid)],
                   plan.num_logical(), body, nthreads > 1);
    } else {
      ThreadExec exec(plan, body, tid, nthreads);
      traverse_thread(exec);
    }
    if (term) term();
  });
}

void simulate_thread(const LoopNestPlan& plan, int tid, int nthreads,
                     const BodyFn& body) {
  if (!plan.any_parallel()) {
    if (tid != 0) return;  // serial nests execute on one thread
    ThreadExec exec(plan, body, 0, 1);
    exec.simulated = true;
    traverse_thread(exec);
    return;
  }
  ThreadExec exec(plan, body, tid, nthreads);
  exec.simulated = true;
  traverse_thread(exec);
}

}  // namespace plt::parlooper
