#include "parlooper/interpreter.hpp"

#include <vector>

#include "common/check.hpp"
#include "common/threading.hpp"

namespace plt::parlooper {

namespace {

struct ThreadExec {
  const LoopNestPlan& plan;
  const BodyFn& body;
  int tid;
  int nthreads;
  bool simulated = false;  // skip barriers when replaying a single thread
  std::int64_t coord[4] = {0, 0, 0, 0};  // index by GridAxis
  std::vector<std::int64_t> cur;         // current value per level
  std::vector<std::int64_t> ind;         // body's logical-index array

  ThreadExec(const LoopNestPlan& p, const BodyFn& b, int t, int n)
      : plan(p), body(b), tid(t), nthreads(n) {
    cur.assign(p.levels().size(), 0);
    ind.assign(static_cast<std::size_t>(p.num_logical()), 0);
  }

  // Maps a flat grid-cell id to (row, col, layer) coordinates. Cells are
  // distributed round-robin across the team, so a team smaller than the
  // grid still covers every cell (and a larger team leaves threads idle).
  void set_cell(std::int64_t cell) {
    const std::int64_t layers = plan.grid_layers(), cols = plan.grid_cols();
    coord[static_cast<int>(GridAxis::kRow)] = cell / (cols * layers);
    coord[static_cast<int>(GridAxis::kCol)] = (cell / layers) % cols;
    coord[static_cast<int>(GridAxis::kLayer)] = cell % layers;
  }

  std::int64_t level_base(std::size_t li) const {
    const CompiledLevel& lvl = plan.levels()[li];
    if (lvl.parent_level < 0) {
      return plan.loops()[static_cast<std::size_t>(lvl.term.logical)].start;
    }
    return cur[static_cast<std::size_t>(lvl.parent_level)];
  }

  void call_body() {
    for (int l = 0; l < plan.num_logical(); ++l) {
      ind[static_cast<std::size_t>(l)] =
          cur[static_cast<std::size_t>(plan.innermost_level()[static_cast<std::size_t>(l)])];
    }
    body(ind.data());
  }

  void run_level(std::size_t li) {
    if (li == plan.levels().size()) {
      call_body();
      return;
    }
    const CompiledLevel& lvl = plan.levels()[li];

    if (lvl.group_head) {
      run_collapse_group(li);
      return;
    }

    if (lvl.term.grid != GridAxis::kNone) {
      // Block partition of the trip count along this grid axis.
      const std::int64_t ways = lvl.term.grid_ways;
      const std::int64_t w = coord[static_cast<int>(lvl.term.grid)];
      const std::int64_t lo = (lvl.trip * w) / ways;
      const std::int64_t hi = (lvl.trip * (w + 1)) / ways;
      const std::int64_t base = level_base(li);
      for (std::int64_t it = lo; it < hi; ++it) {
        cur[li] = base + it * lvl.step;
        run_level(li + 1);
      }
      return;
    }

    // Sequential level (executed redundantly by every thread).
    const std::int64_t base = level_base(li);
    for (std::int64_t it = 0; it < lvl.trip; ++it) {
      cur[li] = base + it * lvl.step;
      run_level(li + 1);
    }
    if (lvl.term.barrier_after && !simulated) thread_barrier();
  }

  // PAR-MODE 1: flatten the group's (constant) trip counts row-major and
  // split the flat range across threads. schedule(dynamic,c) is emulated
  // with cyclic chunk assignment — deterministic, synchronization-free, and
  // load-balancing like the OpenMP dynamic schedule it stands in for (the
  // JIT backend emits the real directive).
  void run_collapse_group(std::size_t head) {
    const CompiledLevel& h = plan.levels()[head];
    const int gs = h.group_size;
    std::int64_t total = 1;
    for (int g = 0; g < gs; ++g) total *= plan.levels()[head + static_cast<std::size_t>(g)].trip;

    const auto exec_flat = [&](std::int64_t flat) {
      std::int64_t rem = flat;
      for (int g = gs - 1; g >= 0; --g) {
        const std::size_t li = head + static_cast<std::size_t>(g);
        const CompiledLevel& lvl = plan.levels()[li];
        const std::int64_t it = rem % lvl.trip;
        rem /= lvl.trip;
        // Note: cur[] of an earlier group level may be this level's base, so
        // bases must be resolved outermost-first; stash step indices first.
        cur[li] = it;  // temporarily store the step index
      }
      for (int g = 0; g < gs; ++g) {
        const std::size_t li = head + static_cast<std::size_t>(g);
        const CompiledLevel& lvl = plan.levels()[li];
        const std::int64_t it = cur[li];
        cur[li] = level_base(li) + it * lvl.step;
      }
      run_level(head + static_cast<std::size_t>(gs));
    };

    if (plan.parsed().dynamic_schedule) {
      const std::int64_t chunk = plan.parsed().dynamic_chunk;
      for (std::int64_t b = tid; b * chunk < total; b += nthreads) {
        const std::int64_t lo = b * chunk;
        const std::int64_t hi = std::min(total, lo + chunk);
        for (std::int64_t f = lo; f < hi; ++f) exec_flat(f);
      }
    } else {
      const std::int64_t per = (total + nthreads - 1) / nthreads;
      const std::int64_t lo = std::min<std::int64_t>(total, per * tid);
      const std::int64_t hi = std::min<std::int64_t>(total, lo + per);
      for (std::int64_t f = lo; f < hi; ++f) exec_flat(f);
    }
  }
};

}  // namespace

void run_interpreter(const LoopNestPlan& plan, const BodyFn& body,
                     const VoidFn& init, const VoidFn& term) {
  bool any_parallel = false;
  for (const CompiledLevel& lvl : plan.levels()) {
    any_parallel = any_parallel || lvl.term.parallel;
  }
  if (!any_parallel) {
    // No parallel letters: a serial nest. (Running it redundantly on every
    // thread, as the raw Listing-2 code would, duplicates the computation.)
    if (init) init();
    ThreadExec exec(plan, body, 0, 1);
    exec.run_level(0);
    if (term) term();
    return;
  }
  parallel_region([&](int tid, int nthreads) {
    if (init) init();
    ThreadExec exec(plan, body, tid, nthreads);
    if (plan.parsed().explicit_grid) {
      const std::int64_t cells = static_cast<std::int64_t>(plan.grid_rows()) *
                                 plan.grid_cols() * plan.grid_layers();
      for (std::int64_t cell = tid; cell < cells; cell += nthreads) {
        exec.set_cell(cell);
        exec.run_level(0);
      }
    } else {
      exec.run_level(0);
    }
    if (term) term();
  });
}

void simulate_thread(const LoopNestPlan& plan, int tid, int nthreads,
                     const BodyFn& body) {
  ThreadExec exec(plan, body, tid, nthreads);
  exec.simulated = true;
  bool any_parallel = false;
  for (const CompiledLevel& lvl : plan.levels()) {
    any_parallel = any_parallel || lvl.term.parallel;
  }
  if (!any_parallel) {
    if (tid == 0) exec.run_level(0);  // serial nests execute on one thread
    return;
  }
  if (plan.parsed().explicit_grid) {
    const std::int64_t cells = static_cast<std::int64_t>(plan.grid_rows()) *
                               plan.grid_cols() * plan.grid_layers();
    for (std::int64_t cell = tid; cell < cells; cell += nthreads) {
      exec.set_cell(cell);
      exec.run_level(0);
    }
  } else {
    exec.run_level(0);
  }
}

}  // namespace plt::parlooper
