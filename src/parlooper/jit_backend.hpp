// Source-JIT backend: emits the target loop-nest instantiation as C++ source
// (Listing 2 of the paper), invokes the system C++ compiler, dlopens the
// resulting shared object and memoizes it (in memory and on disk) keyed by
// the structural spec — "if we request a loop nest with the same
// loop_spec_string, we merely return the function pointer of the already
// compiled and cached loop-nest" (Section II-B).
//
// Numeric bounds/steps are runtime arguments of the generated entry point,
// so one compiled artifact serves every problem size with the same spec
// structure. When no compiler is available the caller falls back to the
// interpreter executor (identical semantics).
#pragma once

#include <memory>
#include <string>

#include "parlooper/interpreter.hpp"
#include "parlooper/nest_plan.hpp"

namespace plt::parlooper {

class JitLoop {
 public:
  // Returns nullptr when JIT compilation is unavailable or fails (the error
  // is logged); otherwise a shared, cached handle.
  static std::shared_ptr<JitLoop> get_or_compile(const LoopNestPlan& plan);

  // True when a usable C++ compiler was found on this host.
  static bool available();

  // Number of compilations this process performed (tests assert the cache
  // prevents re-JITting).
  static std::uint64_t compile_count();

  void run(const LoopNestPlan& plan, const BodyFn& body, const VoidFn& init,
           const VoidFn& term) const;

  // Replays the EMITTED partitioning for one simulated team member without
  // spawning threads or running kernels: the compiled entry is driven with a
  // recording body, and each emitted barrier call closes a segment. This is
  // what the static verifier compares against the interpreter's
  // record_thread_program to prove backend schedule equivalence. Note the
  // generated code skips barrier calls when nthreads == 1 (they would be
  // no-ops live), so single-thread recordings carry one segment.
  ThreadProgram record_thread_program(const LoopNestPlan& plan, int tid,
                                      int nthreads) const;

  // The generated translation unit (exposed for tests/documentation).
  static std::string generate_source(const LoopNestPlan& plan);

  ~JitLoop();
  JitLoop(const JitLoop&) = delete;
  JitLoop& operator=(const JitLoop&) = delete;

 private:
  JitLoop() = default;
  void* dl_handle_ = nullptr;
  void* entry_ = nullptr;  // plt_jit_entry
};

}  // namespace plt::parlooper
