#include "parlooper/nest_plan.hpp"

#include <stdexcept>

#include "common/check.hpp"

namespace plt::parlooper {

LoopNestPlan::LoopNestPlan(std::vector<LoopSpecs> loops,
                           const std::string& spec_string)
    : loops_(std::move(loops)), spec_string_(spec_string) {
  parsed_ = parse_loop_spec(spec_string, static_cast<int>(loops_.size()));
  const std::string err = validate_spec(parsed_, loops_);
  if (!err.empty()) {
    throw std::invalid_argument("loop_spec_string '" + spec_string +
                                "' invalid: " + err);
  }

  levels_.resize(parsed_.terms.size());
  std::vector<int> last_occurrence_level(loops_.size(), -1);
  innermost_level_.assign(loops_.size(), -1);
  total_iterations_ = 1;

  for (std::size_t li = 0; li < parsed_.terms.size(); ++li) {
    CompiledLevel& lvl = levels_[li];
    lvl.term = parsed_.terms[li];
    lvl.step = term_step(parsed_, li, loops_);
    const LoopSpecs& spec = loops_[static_cast<std::size_t>(lvl.term.logical)];
    lvl.parent_level = last_occurrence_level[static_cast<std::size_t>(lvl.term.logical)];
    const std::int64_t extent =
        lvl.parent_level < 0
            ? spec.end - spec.start
            : levels_[static_cast<std::size_t>(lvl.parent_level)].step;
    PLT_CHECK(extent % lvl.step == 0, "non-perfect nesting slipped validation");
    lvl.trip = extent / lvl.step;
    total_iterations_ *= lvl.trip;
    last_occurrence_level[static_cast<std::size_t>(lvl.term.logical)] =
        static_cast<int>(li);
    innermost_level_[static_cast<std::size_t>(lvl.term.logical)] =
        static_cast<int>(li);

    if (lvl.term.grid == GridAxis::kRow) grid_rows_ = lvl.term.grid_ways;
    if (lvl.term.grid == GridAxis::kCol) grid_cols_ = lvl.term.grid_ways;
    if (lvl.term.grid == GridAxis::kLayer) grid_layers_ = lvl.term.grid_ways;
  }

  // Mark PAR-MODE 1 collapse groups (consecutive implicit-parallel levels).
  std::size_t li = 0;
  while (li < levels_.size()) {
    const bool implicit_par = levels_[li].term.parallel &&
                              levels_[li].term.grid == GridAxis::kNone;
    if (!implicit_par) {
      ++li;
      continue;
    }
    std::size_t gend = li;
    while (gend < levels_.size() && levels_[gend].term.parallel &&
           levels_[gend].term.grid == GridAxis::kNone) {
      ++gend;
    }
    levels_[li].group_head = true;
    levels_[li].group_size = static_cast<int>(gend - li);
    levels_[li].group_total = 1;
    for (std::size_t g = li; g < gend; ++g) {
      levels_[g].in_group = true;
      levels_[li].group_total *= levels_[g].trip;
    }
    li = gend;
  }

  for (const CompiledLevel& lvl : levels_) {
    any_parallel_ = any_parallel_ || lvl.term.parallel;
  }
}

LoopNestPlan::~LoopNestPlan() {
  const TeamSchedule* s = schedules_.load(std::memory_order_acquire);
  while (s != nullptr) {
    const TeamSchedule* next = s->next;
    delete s;
    s = next;
  }
}

std::string LoopNestPlan::structural_key() const {
  return plt::parlooper::structural_key(parsed_, num_logical());
}

bool LoopNestPlan::attach_access_map(const AccessMap& map) const {
  if (map.empty()) return false;
  for (const TensorAccess& a : map.accesses) {
    PLT_CHECK(a.coeffs.size() == static_cast<std::size_t>(num_logical()),
              "access map: one coefficient per logical loop");
    PLT_CHECK(a.span >= 1 && a.reps >= 1, "access map: empty footprint");
  }
  const std::string sig = map.signature();
  std::lock_guard<std::mutex> lock(access_mu_);
  for (const std::string& s : access_signatures_) {
    if (s == sig) return false;
  }
  access_signatures_.push_back(sig);
  access_maps_.push_back(map);
  return true;
}

std::vector<AccessMap> LoopNestPlan::access_maps() const {
  std::lock_guard<std::mutex> lock(access_mu_);
  return access_maps_;
}

}  // namespace plt::parlooper
