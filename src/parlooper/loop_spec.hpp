// loop_spec_string parsing and validation (Section II-B).
//
// Grammar (RULE 1 / RULE 2 of the paper):
//  * each lowercase letter a..z names a logical loop (a = loop 0, ...);
//    the order of appearance is the nesting order and the number of
//    appearances of a letter is 1 + the number of times that loop is blocked;
//  * an UPPERCASE letter parallelizes that occurrence. Consecutive uppercase
//    letters form an OpenMP `collapse` group (PAR-MODE 1);
//  * an uppercase letter may be followed by `{R:n}`, `{C:n}` or `{L:n}` to
//    request an explicit n-way decomposition along the row/column/layer axis
//    of a logical thread grid (PAR-MODE 2);
//  * `|` after a letter requests a barrier at the end of that loop level;
//  * everything after `@` is an OpenMP directive suffix appended to the
//    `#pragma omp for` (e.g. "schedule(dynamic,1)").
//
// Example: "bC{R:16}aB{C:4}cb" — loop c0 is parallelized 16-ways and loop b1
// 4-ways on a 16x4 logical thread grid (Listing 3 of the paper).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace plt::parlooper {

// The per-logical-loop declaration of Listing 1: bounds, innermost step and
// the optional blocking-size list consumed by repeated occurrences.
struct LoopSpecs {
  std::int64_t start = 0;
  std::int64_t end = 0;
  std::int64_t step = 1;
  std::vector<std::int64_t> block_steps;  // outermost-first blocking sizes

  LoopSpecs() = default;
  LoopSpecs(std::int64_t s, std::int64_t e, std::int64_t st,
            std::vector<std::int64_t> blocks = {})
      : start(s), end(e), step(st), block_steps(std::move(blocks)) {}
};

enum class GridAxis : std::uint8_t { kNone, kRow, kCol, kLayer };

struct LoopTerm {
  int logical = 0;        // 0-based logical loop id ('a' == 0)
  int occurrence = 0;     // 0 = outermost appearance of this letter
  bool parallel = false;
  GridAxis grid = GridAxis::kNone;
  int grid_ways = 0;      // for explicit decompositions
  bool barrier_after = false;
};

struct ParsedSpec {
  std::vector<LoopTerm> terms;   // outermost .. innermost
  std::string omp_suffix;        // after '@' (trimmed)
  bool explicit_grid = false;    // PAR-MODE 2 in use

  // Dynamic self-scheduling requested via "schedule(dynamic[,chunk])".
  bool dynamic_schedule = false;
  std::int64_t dynamic_chunk = 1;
};

// Parses the string; throws std::invalid_argument on malformed input.
ParsedSpec parse_loop_spec(const std::string& spec, int num_logical_loops);

// Semantic validation against the loop declarations. Returns a human-
// readable error message, or an empty string when valid. Enforces the POC's
// perfect-nesting rule (each blocking size divides its parent) plus the
// PAR-MODE 1 "consecutive uppercase" rule.
std::string validate_spec(const ParsedSpec& parsed,
                          const std::vector<LoopSpecs>& loops);

// Step size of a given term: occurrence i of a loop with n occurrences uses
// block_steps[i] for i < n-1 and the loop's base step for the innermost.
std::int64_t term_step(const ParsedSpec& parsed, std::size_t term_index,
                       const std::vector<LoopSpecs>& loops);

// Structural cache key: everything that affects generated code (term
// sequence, parallelization, grid ways, directive) but not the numeric
// bounds, which are runtime arguments of the generated loop nest.
std::string structural_key(const ParsedSpec& parsed, int num_logical_loops);

}  // namespace plt::parlooper
