// Interpreter executor for a compiled loop-nest plan.
//
// Reproduces the execution model of the paper's generated code (Listing 2):
// every thread in the parallel region redundantly executes the sequential
// levels; PAR-MODE 1 collapse groups distribute their flattened iteration
// space across threads (static chunking, or cyclic self-scheduling when the
// spec requests schedule(dynamic)); PAR-MODE 2 grid levels are partitioned
// in block fashion along the thread grid's row/column/layer coordinate.
//
// This executor is semantically identical to the source-JIT backend and is
// the default (it needs no compiler at runtime); the test suite runs both
// and asserts identical iteration coverage.
#pragma once

#include <functional>

#include "parlooper/nest_plan.hpp"

namespace plt::parlooper {

using BodyFn = std::function<void(const std::int64_t* ind)>;
using VoidFn = std::function<void()>;

void run_interpreter(const LoopNestPlan& plan, const BodyFn& body,
                     const VoidFn& init = {}, const VoidFn& term = {});

// Enumerates, in program order, the body invocations that thread `tid` of a
// team of `nthreads` would execute — without running any other thread and
// without barriers. This is the trace generator of the performance-modeling
// tool (Section II-E): it lets the model replay a candidate loop
// instantiation for an arbitrary simulated thread count, enabling offline,
// cross-platform tuning.
void simulate_thread(const LoopNestPlan& plan, int tid, int nthreads,
                     const BodyFn& body);

// Records, without executing any body, the exact ThreadProgram thread `tid`
// of an nthreads-wide team runs: every invocation's logical-index tuple in
// program order, segmented at barrier points. This is the raw material of
// the static schedule verifier (src/analysis/) and of team_schedule().
ThreadProgram record_thread_program(const LoopNestPlan& plan, int tid,
                                    int nthreads);

// Records the whole team, applying the serial-nest rule (a nest with no
// parallel letters executes on thread 0 only; other members get an empty
// program with matching barrier structure). Exactly the programs
// team_schedule() would memoize, without the flat-schedule size gate.
std::vector<ThreadProgram> record_team_programs(const LoopNestPlan& plan,
                                                int nthreads);

}  // namespace plt::parlooper
