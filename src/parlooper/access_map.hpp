// AccessMap: a static description of the memory footprint of one loop-nest
// body invocation, attached to the nest-execution API by the kernels/dl
// layers that own the body.
//
// The paper's safety claim — "parallelize aggressively without changing
// results" — is only provable if the verifier (src/analysis/) knows what the
// body touches. Each TensorAccess maps a logical-index tuple to an affine
// footprint:
//
//   offset(ind) = base + sum_l coeffs[l] * ind[l]
//   footprint   = union over r in [0, reps) of
//                 [offset + r * rep_stride, offset + r * rep_stride + span)
//
// in elements of the named tensor. `span`/`reps`/`rep_stride` describe the
// common blocked-tile shapes: a contiguous block is {span=bm*bn, reps=1}, a
// bm x bn tile inside a column-major matrix with leading dimension ld is
// {span=bm, reps=bn, rep_stride=ld}.
//
// The map is an OVER-approximation by contract: it must cover every element
// the invocation can touch and may include elements touched only on some
// invocations (e.g. an epilogue guarded by `ik == last`). Over-approximating
// a write footprint can only make the race check stricter, never unsound.
// Accesses with the same `tensor` name refer to the same buffer; an in/out
// aliasing kernel must reuse one name so the verifier sees the conflict.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace plt::parlooper {

struct TensorAccess {
  std::string tensor;                // buffer identity (diagnostics + aliasing)
  bool write = false;                // false = read-only access
  std::int64_t base = 0;             // constant element offset
  std::vector<std::int64_t> coeffs;  // per logical loop, element-offset factor
  std::int64_t span = 1;             // contiguous elements per repetition
  std::int64_t reps = 1;             // repetitions (tile columns)
  std::int64_t rep_stride = 0;       // elements between repetitions
};

struct AccessMap {
  std::vector<TensorAccess> accesses;

  bool empty() const { return accesses.empty(); }

  AccessMap& add_read(std::string tensor, std::vector<std::int64_t> coeffs,
                      std::int64_t span, std::int64_t reps = 1,
                      std::int64_t rep_stride = 0, std::int64_t base = 0) {
    accesses.push_back(TensorAccess{std::move(tensor), false, base,
                                    std::move(coeffs), span, reps, rep_stride});
    return *this;
  }
  AccessMap& add_write(std::string tensor, std::vector<std::int64_t> coeffs,
                       std::int64_t span, std::int64_t reps = 1,
                       std::int64_t rep_stride = 0, std::int64_t base = 0) {
    accesses.push_back(TensorAccess{std::move(tensor), true, base,
                                    std::move(coeffs), span, reps, rep_stride});
    return *this;
  }

  // Structural identity, used to deduplicate maps attached to a shared plan
  // (two kernels with the same spec+bounds share a cached plan; each attach
  // of an identical map is a no-op).
  std::string signature() const {
    std::string s;
    for (const TensorAccess& a : accesses) {
      s += a.tensor;
      s += a.write ? "!w" : "!r";
      s += std::to_string(a.base) + ":";
      for (std::int64_t c : a.coeffs) s += std::to_string(c) + ",";
      s += ";" + std::to_string(a.span) + "x" + std::to_string(a.reps) + "+" +
           std::to_string(a.rep_stride) + "|";
    }
    return s;
  }
};

}  // namespace plt::parlooper
