#include "parlooper/loop_spec.hpp"

#include <algorithm>
#include <cctype>
#include <sstream>
#include <stdexcept>

namespace plt::parlooper {

namespace {

[[noreturn]] void parse_error(const std::string& spec, std::size_t pos,
                              const std::string& what) {
  std::ostringstream os;
  os << "loop_spec_string '" << spec << "': " << what << " (at position "
     << pos << ")";
  throw std::invalid_argument(os.str());
}

}  // namespace

ParsedSpec parse_loop_spec(const std::string& spec, int num_logical_loops) {
  if (num_logical_loops < 1 || num_logical_loops > 26) {
    throw std::invalid_argument("parlooper supports 1..26 logical loops");
  }
  ParsedSpec out;
  std::vector<int> occurrence_count(static_cast<std::size_t>(num_logical_loops), 0);

  std::size_t i = 0;
  // The loop-letter section ends at '@'; the rest is the directive suffix.
  const std::size_t at = spec.find('@');
  const std::size_t letters_end = at == std::string::npos ? spec.size() : at;

  while (i < letters_end) {
    const char ch = spec[i];
    if (std::isspace(static_cast<unsigned char>(ch))) {
      ++i;
      continue;
    }
    if (ch == '|') {
      if (out.terms.empty()) parse_error(spec, i, "'|' before any loop letter");
      out.terms.back().barrier_after = true;
      ++i;
      continue;
    }
    if (!std::isalpha(static_cast<unsigned char>(ch))) {
      parse_error(spec, i, std::string("unexpected character '") + ch + "'");
    }
    LoopTerm term;
    const char lower = static_cast<char>(std::tolower(static_cast<unsigned char>(ch)));
    term.logical = lower - 'a';
    if (term.logical >= num_logical_loops) {
      parse_error(spec, i, std::string("letter '") + ch +
                               "' exceeds the declared number of loops");
    }
    term.parallel = std::isupper(static_cast<unsigned char>(ch)) != 0;
    term.occurrence = occurrence_count[static_cast<std::size_t>(term.logical)]++;
    ++i;

    if (i < letters_end && spec[i] == '{') {
      if (!term.parallel)
        parse_error(spec, i, "grid annotation on a non-parallel loop letter");
      const std::size_t close = spec.find('}', i);
      if (close == std::string::npos || close >= letters_end)
        parse_error(spec, i, "unterminated '{'");
      const std::string body = spec.substr(i + 1, close - i - 1);
      const std::size_t colon = body.find(':');
      if (colon == std::string::npos || colon == 0)
        parse_error(spec, i, "grid annotation must be {R:n}, {C:n} or {L:n}");
      const char axis = static_cast<char>(
          std::toupper(static_cast<unsigned char>(body[0])));
      switch (axis) {
        case 'R': term.grid = GridAxis::kRow; break;
        case 'C': term.grid = GridAxis::kCol; break;
        case 'L': term.grid = GridAxis::kLayer; break;
        default: parse_error(spec, i, "grid axis must be R, C or L");
      }
      try {
        term.grid_ways = std::stoi(body.substr(colon + 1));
      } catch (const std::exception&) {
        parse_error(spec, i, "grid ways must be an integer");
      }
      if (term.grid_ways < 1) parse_error(spec, i, "grid ways must be >= 1");
      out.explicit_grid = true;
      i = close + 1;
    }
    out.terms.push_back(term);
  }

  if (at != std::string::npos) {
    std::string suffix = spec.substr(at + 1);
    // trim
    const auto b = suffix.find_first_not_of(" \t");
    const auto e = suffix.find_last_not_of(" \t");
    out.omp_suffix = b == std::string::npos ? "" : suffix.substr(b, e - b + 1);
  }
  const std::size_t dyn = out.omp_suffix.find("schedule(dynamic");
  if (dyn != std::string::npos) {
    out.dynamic_schedule = true;
    const std::size_t comma = out.omp_suffix.find(',', dyn);
    const std::size_t close = out.omp_suffix.find(')', dyn);
    if (comma != std::string::npos && close != std::string::npos && comma < close) {
      try {
        out.dynamic_chunk =
            std::stoll(out.omp_suffix.substr(comma + 1, close - comma - 1));
      } catch (const std::exception&) {
        out.dynamic_chunk = 1;
      }
      if (out.dynamic_chunk < 1) out.dynamic_chunk = 1;
    }
  }

  if (out.terms.empty()) {
    throw std::invalid_argument("loop_spec_string contains no loop letters");
  }
  return out;
}

std::int64_t term_step(const ParsedSpec& parsed, std::size_t term_index,
                       const std::vector<LoopSpecs>& loops) {
  const LoopTerm& t = parsed.terms[term_index];
  const LoopSpecs& spec = loops[static_cast<std::size_t>(t.logical)];
  int total = 0;
  for (const LoopTerm& u : parsed.terms)
    if (u.logical == t.logical) ++total;
  if (t.occurrence == total - 1) return spec.step;  // innermost occurrence
  return spec.block_steps[static_cast<std::size_t>(t.occurrence)];
}

std::string validate_spec(const ParsedSpec& parsed,
                          const std::vector<LoopSpecs>& loops) {
  const int n = static_cast<int>(loops.size());
  std::vector<int> counts(loops.size(), 0);
  for (const LoopTerm& t : parsed.terms) {
    if (t.logical >= n) return "loop letter exceeds declared loops";
    ++counts[static_cast<std::size_t>(t.logical)];
  }
  for (int l = 0; l < n; ++l) {
    const auto& spec = loops[static_cast<std::size_t>(l)];
    const int c = counts[static_cast<std::size_t>(l)];
    if (c == 0) {
      return std::string("logical loop '") + static_cast<char>('a' + l) +
             "' does not appear in the spec string";
    }
    if (spec.step <= 0) return "loop step must be positive";
    if (static_cast<int>(spec.block_steps.size()) < c - 1) {
      return std::string("loop '") + static_cast<char>('a' + l) + "' blocked " +
             std::to_string(c - 1) + " time(s) but only " +
             std::to_string(spec.block_steps.size()) +
             " blocking size(s) declared";
    }
    // Perfect-nesting rule of the POC (Section II-B, RULE 1).
    const std::int64_t trip = spec.end - spec.start;
    std::int64_t prev = trip;
    for (int occ = 0; occ < c; ++occ) {
      const std::int64_t s = occ == c - 1
                                 ? spec.step
                                 : spec.block_steps[static_cast<std::size_t>(occ)];
      if (s <= 0) return "blocking sizes must be positive";
      if (prev % s != 0) {
        return std::string("loop '") + static_cast<char>('a' + l) +
               "': blocking size " + std::to_string(s) +
               " does not perfectly divide enclosing extent " +
               std::to_string(prev);
      }
      prev = s;
    }
  }

  // PAR-MODE rules: explicit-grid terms may appear anywhere; implicit
  // (OpenMP collapse) parallel terms must be consecutive and unique group.
  bool in_group = false, group_done = false;
  for (const LoopTerm& t : parsed.terms) {
    const bool implicit_par = t.parallel && t.grid == GridAxis::kNone;
    if (implicit_par) {
      if (group_done) return "PAR-MODE 1 parallel letters must be consecutive";
      in_group = true;
    } else if (in_group) {
      in_group = false;
      group_done = true;
    }
  }
  if (parsed.explicit_grid) {
    for (const LoopTerm& t : parsed.terms) {
      if (t.parallel && t.grid == GridAxis::kNone) {
        return "cannot mix PAR-MODE 1 and PAR-MODE 2 in one spec";
      }
    }
    int axis_seen[4] = {0, 0, 0, 0};
    for (const LoopTerm& t : parsed.terms) {
      if (t.grid != GridAxis::kNone) {
        if (axis_seen[static_cast<int>(t.grid)]++) {
          return "each grid axis (R/C/L) may be used at most once";
        }
      }
      // Threads may own several grid cells (team smaller than the grid), so
      // they would hit a barrier a different number of times.
      if (t.barrier_after) {
        return "barrier '|' is not supported with explicit thread grids";
      }
    }
  }

  // Barriers below a parallel level would be executed a different number of
  // times per thread and deadlock; allow them only at or above it.
  bool below_parallel = false;
  for (const LoopTerm& t : parsed.terms) {
    if (below_parallel && t.barrier_after) {
      return "barrier '|' below a parallelized loop level is not executable";
    }
    if (t.parallel) below_parallel = true;
  }

  // A barrier inside a collapse group can only fire after the whole group
  // (both backends place it after the group's closing brace); a marker on a
  // non-terminal member would be silently dropped, so reject it.
  for (std::size_t i = 0; i + 1 < parsed.terms.size(); ++i) {
    const LoopTerm& t = parsed.terms[i];
    const LoopTerm& nx = parsed.terms[i + 1];
    const bool t_grp = t.parallel && t.grid == GridAxis::kNone;
    const bool nx_grp = nx.parallel && nx.grid == GridAxis::kNone;
    if (t_grp && nx_grp && t.barrier_after) {
      return "barrier '|' inside a collapse group must follow its last member";
    }
  }
  return "";
}

std::string structural_key(const ParsedSpec& parsed, int num_logical_loops) {
  std::ostringstream os;
  os << 'n' << num_logical_loops << ':';
  for (const LoopTerm& t : parsed.terms) {
    os << static_cast<char>((t.parallel ? 'A' : 'a') + t.logical);
    if (t.grid != GridAxis::kNone) {
      os << '{' << "?RCL"[static_cast<int>(t.grid)] << ':' << t.grid_ways << '}';
    }
    if (t.barrier_after) os << '|';
  }
  if (!parsed.omp_suffix.empty()) os << '@' << parsed.omp_suffix;
  return os.str();
}

}  // namespace plt::parlooper
