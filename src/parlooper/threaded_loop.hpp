// Public PARLOOPER API (Listing 1 of the paper):
//
//   auto gemm_loop = ThreadedLoop<3>({
//       LoopSpecs{0, Kb, k_step, {l1_k_step, l0_k_step}},   // "a"
//       LoopSpecs{0, Mb, m_step, {l1_m_step, l0_m_step}},   // "b"
//       LoopSpecs{0, Nb, n_step, {l1_n_step, l0_n_step}}},  // "c"
//       loop_spec_string);
//   gemm_loop([&](const int64_t* ind) { ... });
//
// The spec string selects loop order, blockings and parallelization at
// runtime with zero user-code change. Plans (and, when enabled, the JITed
// loop functions) are cached so repeated construction with the same spec is
// a lookup, not a re-JIT.
//
// Backend selection: the interpreter executor is the default; setting the
// environment variable PLT_PARLOOPER_JIT=1 (or passing Backend::kJit)
// switches to the source-JIT backend with interpreter fallback.
#pragma once

#include <array>
#include <functional>
#include <memory>

#include "parlooper/access_map.hpp"
#include "parlooper/interpreter.hpp"
#include "parlooper/nest_plan.hpp"

namespace plt::parlooper {

enum class Backend { kAuto, kInterpreter, kJit };

class LoopNest {
 public:
  // `access` optionally declares the per-iteration tensor footprints of the
  // body (see access_map.hpp); it is attached to the (shared, cached) plan
  // and lets the static verifier prove race-freedom of the schedule. An
  // empty map only disables the race check — coverage and backend
  // equivalence are still provable. Construction also runs the
  // PLT_VERIFY_PLANS compile-time verification hook.
  LoopNest(std::vector<LoopSpecs> loops, const std::string& spec_string,
           Backend backend = Backend::kAuto, const AccessMap& access = {});

  void operator()(const BodyFn& body, const VoidFn& init = {},
                  const VoidFn& term = {}) const;

  const LoopNestPlan& plan() const { return *plan_; }
  bool using_jit() const { return jit_ != nullptr; }

 private:
  std::shared_ptr<const LoopNestPlan> plan_;
  std::shared_ptr<const class JitLoop> jit_;  // null => interpreter
};

// Paper-style sugar: the template parameter documents (and checks) the
// number of logical loops at the call site.
template <int N>
class ThreadedLoop : public LoopNest {
 public:
  ThreadedLoop(std::array<LoopSpecs, static_cast<std::size_t>(N)> specs,
               const std::string& spec_string, Backend backend = Backend::kAuto,
               const AccessMap& access = {})
      : LoopNest(std::vector<LoopSpecs>(specs.begin(), specs.end()),
                 spec_string, backend, access) {
    static_assert(N >= 1 && N <= 26, "1..26 logical loops");
  }
};

// Number of plan constructions that found a cached plan vs built a new one
// (Section II-B's "avoid JIT overheads whenever possible" caching claim).
struct PlanCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
};
PlanCacheStats plan_cache_stats();

// Visits every cached plan under the registry lock (the visitor must not
// construct nests). Lets tools/nest_lint sweep the static verifier over
// everything the process instantiated — models register their real plans
// (with attached access maps) simply by being constructed.
void plan_cache_for_each(
    const std::function<void(const LoopNestPlan&)>& visitor);

}  // namespace plt::parlooper
