#include "perfmodel/cache_model.hpp"

#include "common/check.hpp"

namespace plt::perfmodel {

PlatformModel PlatformModel::spr_like() {
  PlatformModel p;
  p.name = "spr-like";
  p.caches = {{48 << 10, 64.0}, {2 << 20, 32.0}, {3932160 /* ~3.75MB/core */, 12.0}};
  p.mem_bytes_per_cycle = 3.0;
  p.fp32_flops_per_cycle = 64.0;    // 2x AVX-512 FMA
  p.bf16_flops_per_cycle = 512.0;   // AMX tile engine
  p.cores = 56;
  return p;
}

PlatformModel PlatformModel::gvt3_like() {
  PlatformModel p;
  p.name = "gvt3-like";
  p.caches = {{64 << 10, 48.0}, {1 << 20, 24.0}, {512 << 10, 10.0}};
  p.mem_bytes_per_cycle = 4.0;
  p.fp32_flops_per_cycle = 32.0;    // 4x SVE256 FMA lanes
  p.bf16_flops_per_cycle = 128.0;   // BF16 MMLA
  p.cores = 64;
  return p;
}

PlatformModel PlatformModel::zen4_like() {
  PlatformModel p;
  p.name = "zen4-like";
  p.caches = {{32 << 10, 64.0}, {1 << 20, 32.0}, {2 << 20, 12.0}};
  p.mem_bytes_per_cycle = 2.0;      // 2-channel desktop memory
  p.fp32_flops_per_cycle = 32.0;    // AVX-512 at half rate (double-pumped)
  p.bf16_flops_per_cycle = 64.0;    // AVX512-BF16 FMA
  p.cores = 16;
  return p;
}

PlatformModel PlatformModel::adl_like() {
  PlatformModel p;
  p.name = "adl-like";
  p.caches = {{48 << 10, 48.0}, {1280 << 10, 24.0}, {3 << 20, 10.0}};
  p.mem_bytes_per_cycle = 2.5;
  p.fp32_flops_per_cycle = 32.0;    // AVX2-era peak on the P cores
  p.bf16_flops_per_cycle = 32.0;    // no bf16 acceleration
  p.cores = 16;                     // 8P + 8E
  return p;
}

LruCacheSim::LruCacheSim(const std::vector<CacheLevelConfig>& levels)
    : levels_(levels) {
  PLT_CHECK(!levels_.empty() && levels_.size() <= 3,
            "cache sim: 1..3 levels");
  state_.resize(levels_.size());
  for (std::size_t i = 0; i < levels_.size(); ++i) {
    state_[i].capacity = levels_[i].size_bytes;
  }
  hits_.assign(levels_.size() + 1, 0);
}

void LruCacheSim::reset() {
  for (Level& l : state_) {
    l.lru.clear();
    l.map.clear();
    l.used = 0;
  }
  hits_.assign(levels_.size() + 1, 0);
}

void LruCacheSim::insert(Level& lvl, std::uint64_t slice, std::int64_t bytes) {
  auto it = lvl.map.find(slice);
  if (it != lvl.map.end()) {
    lvl.used -= it->second->second;
    lvl.lru.erase(it->second);
    lvl.map.erase(it);
  }
  // A slice larger than the level simply bypasses it.
  if (bytes > lvl.capacity) return;
  while (lvl.used + bytes > lvl.capacity && !lvl.lru.empty()) {
    auto& victim = lvl.lru.back();
    lvl.used -= victim.second;
    lvl.map.erase(victim.first);
    lvl.lru.pop_back();
  }
  lvl.lru.emplace_front(slice, bytes);
  lvl.map.emplace(slice, lvl.lru.begin());
  lvl.used += bytes;
}

int LruCacheSim::access(std::uint64_t slice, std::int64_t bytes) {
  int found = levels();  // memory by default
  for (int l = 0; l < levels(); ++l) {
    if (state_[static_cast<std::size_t>(l)].map.count(slice)) {
      found = l;
      break;
    }
  }
  ++hits_[static_cast<std::size_t>(found)];
  for (Level& lvl : state_) insert(lvl, slice, bytes);
  return found;
}

}  // namespace plt::perfmodel
