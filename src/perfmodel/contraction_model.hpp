// Trace-based performance prediction for PARLOOPER loop nests whose body is
// a BRGEMM tensor contraction (Section II-E).
//
// For a candidate loop instantiation the model replays each simulated
// thread's body invocations in chronological order. Every invocation
// touches three tensor slices (the A, B and C blocks identified by the
// logical indices); a per-thread multi-level LRU simulation locates each
// slice and the invocation cost is
//     max(compute cycles, max over operands of bytes / bandwidth(level)).
// The predicted kernel time is the maximum over threads — which also scores
// parallel schedules with poor concurrency (idle threads shift all work onto
// a few traces). Data sharing between threads is ignored, as in the paper.
#pragma once

#include <functional>

#include "parlooper/nest_plan.hpp"
#include "perfmodel/cache_model.hpp"

namespace plt::perfmodel {

struct SliceAccess {
  std::uint64_t id = 0;      // globally unique slice id
  std::int64_t bytes = 0;    // slice footprint
};

// Describes the BRGEMM body of a nest: per body invocation, which slices are
// touched and how many flops are performed.
struct ContractionDesc {
  double flops_per_call = 0.0;
  bool bf16 = false;  // selects the platform's low-precision compute peak
  std::function<SliceAccess(const std::int64_t* ind)> a_slice;
  std::function<SliceAccess(const std::int64_t* ind)> b_slice;
  std::function<SliceAccess(const std::int64_t* ind)> c_slice;
};

struct Prediction {
  double cycles = 0.0;           // max over simulated threads
  double flops_per_cycle = 0.0;  // aggregate: total flops / cycles
  std::int64_t busiest_thread_calls = 0;
};

Prediction predict_contraction(const parlooper::LoopNestPlan& plan,
                               const ContractionDesc& desc,
                               const PlatformModel& platform, int nthreads);

// Convenience: model the Listing-1 blocked GEMM for a given spec string.
struct GemmModelProblem {
  std::int64_t M = 0, N = 0, K = 0;
  std::int64_t bm = 32, bn = 32, bk = 32;
  std::int64_t k_step = 1;
  bool bf16 = false;
  std::vector<std::int64_t> m_blocking, n_blocking, k_blocking;
};

Prediction model_gemm_spec(const GemmModelProblem& p, const std::string& spec,
                           const PlatformModel& platform, int nthreads);

}  // namespace plt::perfmodel
