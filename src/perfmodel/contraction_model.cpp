#include "perfmodel/contraction_model.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "parlooper/interpreter.hpp"

namespace plt::perfmodel {

Prediction predict_contraction(const parlooper::LoopNestPlan& plan,
                               const ContractionDesc& desc,
                               const PlatformModel& platform, int nthreads) {
  PLT_CHECK(nthreads >= 1, "model: need at least one thread");
  const double peak = desc.bf16 ? platform.bf16_flops_per_cycle
                                : platform.fp32_flops_per_cycle;
  const double compute_cycles = desc.flops_per_call / peak;

  Prediction out;
  double total_flops = 0.0;
  for (int tid = 0; tid < nthreads; ++tid) {
    LruCacheSim sim(platform.caches);
    double cycles = 0.0;
    std::int64_t calls = 0;
    parlooper::simulate_thread(plan, tid, nthreads, [&](const std::int64_t* ind) {
      double data_cycles = 0.0;
      for (const auto& slice_fn : {&desc.a_slice, &desc.b_slice, &desc.c_slice}) {
        const SliceAccess s = (*slice_fn)(ind);
        const int level = sim.access(s.id, s.bytes);
        const double bw = level < sim.levels()
                              ? platform.caches[static_cast<std::size_t>(level)]
                                    .bytes_per_cycle
                              : platform.mem_bytes_per_cycle;
        data_cycles = std::max(data_cycles, static_cast<double>(s.bytes) / bw);
      }
      cycles += std::max(compute_cycles, data_cycles);
      ++calls;
      total_flops += desc.flops_per_call;
    });
    if (cycles > out.cycles) {
      out.cycles = cycles;
      out.busiest_thread_calls = calls;
    }
  }
  out.flops_per_cycle = out.cycles > 0.0 ? total_flops / out.cycles : 0.0;
  return out;
}

Prediction model_gemm_spec(const GemmModelProblem& p, const std::string& spec,
                           const PlatformModel& platform, int nthreads) {
  const std::int64_t Mb = p.M / p.bm, Nb = p.N / p.bn, Kb = p.K / p.bk;
  PLT_CHECK(Mb > 0 && Nb > 0 && Kb > 0, "model: blocks must divide shape");
  std::vector<parlooper::LoopSpecs> loops = {
      parlooper::LoopSpecs{0, Kb, p.k_step, p.k_blocking},
      parlooper::LoopSpecs{0, Mb, 1, p.m_blocking},
      parlooper::LoopSpecs{0, Nb, 1, p.n_blocking}};
  parlooper::LoopNestPlan plan(loops, spec);

  const std::int64_t esz = p.bf16 ? 2 : 4;
  ContractionDesc desc;
  desc.flops_per_call =
      2.0 * static_cast<double>(p.bm) * p.bn * p.bk * p.k_step;
  desc.bf16 = p.bf16;
  const std::int64_t a_bytes = p.bm * p.bk * p.k_step * esz;
  const std::int64_t b_bytes = p.bk * p.bn * p.k_step * esz;
  const std::int64_t c_bytes = p.bm * p.bn * 4;  // C accumulates in fp32
  // Slice ids: tensor tag in the top bits, block coordinates below. The
  // K loop iterates in k_step strides, so ik / k_step indexes the fused
  // slice the BRGEMM touches.
  desc.a_slice = [=](const std::int64_t* ind) {
    return SliceAccess{(1ull << 62) | static_cast<std::uint64_t>(
                                          (ind[1] * Kb + ind[0]) / p.k_step),
                       a_bytes};
  };
  desc.b_slice = [=](const std::int64_t* ind) {
    return SliceAccess{(2ull << 62) | static_cast<std::uint64_t>(
                                          (ind[2] * Kb + ind[0]) / p.k_step),
                       b_bytes};
  };
  desc.c_slice = [=](const std::int64_t* ind) {
    return SliceAccess{(3ull << 62) | static_cast<std::uint64_t>(
                                          ind[2] * Mb + ind[1]),
                       c_bytes};
  };
  return predict_contraction(plan, desc, platform, nthreads);
}

}  // namespace plt::perfmodel
