// Multi-level LRU cache simulator operating on tensor slices (Section II-E).
//
// The model registers accesses of *full tensor slices* instead of individual
// cache lines, which keeps traces compact and the simulation cheap — the
// paper's key trick for making offline loop-tuning viable. Caches are
// inclusive; the replacement policy per level is LRU.
#pragma once

#include <cstdint>
#include <list>
#include <string>
#include <unordered_map>
#include <vector>

namespace plt::perfmodel {

struct CacheLevelConfig {
  std::int64_t size_bytes = 0;
  double bytes_per_cycle = 0.0;  // sustained bandwidth out of this level
};

// Platform descriptor: up to 3 cache levels + memory, plus per-precision
// compute peak (flops/cycle/core). Values are normalized per core so the
// model scales with the simulated thread count.
struct PlatformModel {
  std::string name;
  std::vector<CacheLevelConfig> caches;  // L1 first
  double mem_bytes_per_cycle = 1.0;
  double fp32_flops_per_cycle = 32.0;
  double bf16_flops_per_cycle = 64.0;
  int cores = 1;

  // Four presets mirroring the paper's testbed (Section V). Absolute
  // numbers are rough per-core figures; only relative magnitudes matter for
  // ranking loop instantiations.
  static PlatformModel spr_like();
  static PlatformModel gvt3_like();
  static PlatformModel zen4_like();
  static PlatformModel adl_like();
};

class LruCacheSim {
 public:
  explicit LruCacheSim(const std::vector<CacheLevelConfig>& levels);

  // Records an access to `slice` of `bytes` bytes. Returns the level the
  // slice was found in (0 = L1, ..., levels() = memory) and promotes the
  // slice to the MRU position of every level (inclusive hierarchy).
  int access(std::uint64_t slice, std::int64_t bytes);

  int levels() const { return static_cast<int>(levels_.size()); }
  std::uint64_t hits(int level) const { return hits_[static_cast<std::size_t>(level)]; }
  void reset();

 private:
  struct Level {
    std::int64_t capacity = 0;
    std::int64_t used = 0;
    std::list<std::pair<std::uint64_t, std::int64_t>> lru;  // MRU front
    std::unordered_map<std::uint64_t,
                       std::list<std::pair<std::uint64_t, std::int64_t>>::iterator>
        map;
  };

  void insert(Level& lvl, std::uint64_t slice, std::int64_t bytes);

  std::vector<CacheLevelConfig> levels_;
  std::vector<Level> state_;
  std::vector<std::uint64_t> hits_;  // per level + memory at the back
};

}  // namespace plt::perfmodel
