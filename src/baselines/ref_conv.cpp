#include "baselines/ref_conv.hpp"

#include <cstring>
#include <vector>

#include "baselines/ref_gemm.hpp"

namespace plt::baselines {

void naive_conv(const ConvShape& s, const float* input, const float* weights,
                float* output) {
  const std::int64_t P = s.P(), Q = s.Q();
  for (std::int64_t n = 0; n < s.N; ++n)
    for (std::int64_t k = 0; k < s.K; ++k)
      for (std::int64_t p = 0; p < P; ++p)
        for (std::int64_t q = 0; q < Q; ++q) {
          float acc = 0.0f;
          for (std::int64_t c = 0; c < s.C; ++c)
            for (std::int64_t r = 0; r < s.R; ++r)
              for (std::int64_t t = 0; t < s.S; ++t) {
                const std::int64_t h = p * s.stride_h + r - s.pad_h;
                const std::int64_t w = q * s.stride_w + t - s.pad_w;
                if (h < 0 || h >= s.H || w < 0 || w >= s.W) continue;
                acc += input[((n * s.C + c) * s.H + h) * s.W + w] *
                       weights[((k * s.C + c) * s.R + r) * s.S + t];
              }
          output[((n * s.K + k) * P + p) * Q + q] = acc;
        }
}

void im2col_conv(const ConvShape& s, const float* input, const float* weights,
                 float* output) {
  const std::int64_t P = s.P(), Q = s.Q();
  const std::int64_t patch = s.C * s.R * s.S;   // GEMM K dimension
  const std::int64_t pixels = P * Q;            // GEMM N dimension per image

  // Column buffer: col-major (patch x pixels). Weights matrix: col-major
  // (K x patch) gathered once (weights are KCRS row-major over (C,R,S)).
  std::vector<float> wmat(static_cast<std::size_t>(s.K * patch));
  for (std::int64_t k = 0; k < s.K; ++k)
    for (std::int64_t pc = 0; pc < patch; ++pc)
      wmat[static_cast<std::size_t>(k + pc * s.K)] =
          weights[k * patch + pc];

  std::vector<float> col(static_cast<std::size_t>(patch * pixels));
  std::vector<float> out(static_cast<std::size_t>(s.K * pixels));
  for (std::int64_t n = 0; n < s.N; ++n) {
    std::memset(col.data(), 0, col.size() * sizeof(float));
    for (std::int64_t p = 0; p < P; ++p)
      for (std::int64_t q = 0; q < Q; ++q) {
        const std::int64_t pix = p * Q + q;
        for (std::int64_t c = 0; c < s.C; ++c)
          for (std::int64_t r = 0; r < s.R; ++r)
            for (std::int64_t t = 0; t < s.S; ++t) {
              const std::int64_t h = p * s.stride_h + r - s.pad_h;
              const std::int64_t w = q * s.stride_w + t - s.pad_w;
              if (h < 0 || h >= s.H || w < 0 || w >= s.W) continue;
              col[static_cast<std::size_t>((c * s.R + r) * s.S + t +
                                           pix * patch)] =
                  input[((n * s.C + c) * s.H + h) * s.W + w];
            }
      }
    // out (K x pixels) = wmat (K x patch) x col (patch x pixels).
    fixed_blocked_gemm(wmat.data(), col.data(), out.data(), s.K, pixels, patch);
    // Scatter to NKPQ (out column pix is contiguous over K; transpose).
    for (std::int64_t k = 0; k < s.K; ++k)
      for (std::int64_t pix = 0; pix < pixels; ++pix)
        output[(n * s.K + k) * pixels + pix] =
            out[static_cast<std::size_t>(k + pix * s.K)];
  }
}

}  // namespace plt::baselines
