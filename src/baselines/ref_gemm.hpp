// Vendor-library substitutes for the paper's GEMM comparisons (oneDNN /
// AOCL / TVM / Mojo stand-ins — see DESIGN.md "Substitutions").
//
// Three tiers, all correct, differing only in schedule quality:
//   * naive_gemm           — textbook triple loop (lower bound)
//   * fixed_blocked_gemm   — one-size-fits-all cache blocking with OpenMP
//                            parallelism over M; this is the "library
//                            without per-shape outer-loop tuning" baseline
//   * fixed_blocked_gemm_bf16 — same schedule, bf16 inputs with fp32
//                            accumulation (flat layout, no VNNI packing —
//                            the layout handicap Fig. 2 attributes to
//                            oneDNN's unblocked B)
// All matrices are column-major.
#pragma once

#include <cstdint>

#include "common/bf16.hpp"

namespace plt::baselines {

void naive_gemm(const float* a, const float* b, float* c, std::int64_t m,
                std::int64_t n, std::int64_t k);

void fixed_blocked_gemm(const float* a, const float* b, float* c,
                        std::int64_t m, std::int64_t n, std::int64_t k);

void fixed_blocked_gemm_bf16(const bf16* a, const bf16* b, float* c,
                             std::int64_t m, std::int64_t n, std::int64_t k);

}  // namespace plt::baselines
