#include "baselines/ref_gemm.hpp"

#include <algorithm>
#include <cstring>
#include <vector>

#include "common/threading.hpp"

namespace plt::baselines {

void naive_gemm(const float* a, const float* b, float* c, std::int64_t m,
                std::int64_t n, std::int64_t k) {
  for (std::int64_t j = 0; j < n; ++j)
    for (std::int64_t i = 0; i < m; ++i) {
      float sum = 0.0f;
      for (std::int64_t kk = 0; kk < k; ++kk) sum += a[i + kk * m] * b[kk + j * k];
      c[i + j * m] = sum;
    }
}

namespace {

// One-size-fits-all tile sizes: reasonable for mid-size shapes, but not
// adapted per problem — exactly the glass-jaw the paper attributes to
// untuned library schedules.
constexpr std::int64_t kMc = 64, kNc = 64, kKc = 64;

}  // namespace

void fixed_blocked_gemm(const float* a, const float* b, float* c,
                        std::int64_t m, std::int64_t n, std::int64_t k) {
  std::memset(c, 0, sizeof(float) * static_cast<std::size_t>(m) *
                        static_cast<std::size_t>(n));
#if defined(PLT_HAVE_OPENMP)
#pragma omp parallel for schedule(static)
#endif
  for (std::int64_t i0 = 0; i0 < m; i0 += kMc) {
    const std::int64_t i1 = std::min(m, i0 + kMc);
    for (std::int64_t k0 = 0; k0 < k; k0 += kKc) {
      const std::int64_t k1 = std::min(k, k0 + kKc);
      for (std::int64_t j0 = 0; j0 < n; j0 += kNc) {
        const std::int64_t j1 = std::min(n, j0 + kNc);
        for (std::int64_t j = j0; j < j1; ++j) {
          float* cj = c + j * m;
          for (std::int64_t kk = k0; kk < k1; ++kk) {
            const float bv = b[kk + j * k];
            const float* ai = a + kk * m;
            for (std::int64_t i = i0; i < i1; ++i) cj[i] += ai[i] * bv;
          }
        }
      }
    }
  }
}

void fixed_blocked_gemm_bf16(const bf16* a, const bf16* b, float* c,
                             std::int64_t m, std::int64_t n, std::int64_t k) {
  std::memset(c, 0, sizeof(float) * static_cast<std::size_t>(m) *
                        static_cast<std::size_t>(n));
#if defined(PLT_HAVE_OPENMP)
#pragma omp parallel for schedule(static)
#endif
  for (std::int64_t i0 = 0; i0 < m; i0 += kMc) {
    const std::int64_t i1 = std::min(m, i0 + kMc);
    for (std::int64_t k0 = 0; k0 < k; k0 += kKc) {
      const std::int64_t k1 = std::min(k, k0 + kKc);
      for (std::int64_t j0 = 0; j0 < n; j0 += kNc) {
        const std::int64_t j1 = std::min(n, j0 + kNc);
        for (std::int64_t j = j0; j < j1; ++j) {
          float* cj = c + j * m;
          for (std::int64_t kk = k0; kk < k1; ++kk) {
            // Flat bf16: per-element upconvert in the hot loop (no packed
            // layout, no wide dot-product) — the baseline handicap.
            const float bv = b[kk + j * k].to_f32();
            const bf16* ai = a + kk * m;
            for (std::int64_t i = i0; i < i1; ++i)
              cj[i] += ai[i].to_f32() * bv;
          }
        }
      }
    }
  }
}

}  // namespace plt::baselines
