// Convolution baseline: im2col + fixed-schedule GEMM — the classic library
// fallback path. Used as the oneDNN substitute in the Fig. 7 comparison.
// Tensors are NCHW (input), KCRS (weights), NKPQ (output), fp32.
#pragma once

#include <cstdint>

namespace plt::baselines {

struct ConvShape {
  std::int64_t N = 1, C = 0, K = 0, H = 0, W = 0, R = 3, S = 3;
  std::int64_t stride_h = 1, stride_w = 1, pad_h = 0, pad_w = 0;

  std::int64_t P() const { return (H + 2 * pad_h - R) / stride_h + 1; }
  std::int64_t Q() const { return (W + 2 * pad_w - S) / stride_w + 1; }
  double flops() const {
    return 2.0 * static_cast<double>(N) * K * P() * Q() * C * R * S;
  }
};

// Direct naive convolution (numerics ground truth for tests).
void naive_conv(const ConvShape& s, const float* input, const float* weights,
                float* output);

// im2col + blocked GEMM (the performance baseline).
void im2col_conv(const ConvShape& s, const float* input, const float* weights,
                 float* output);

}  // namespace plt::baselines
