// Per-tenant token-bucket admission quotas for the network front-end.
//
// Every request frame carries a tenant_id; the server charges one token from
// that tenant's bucket BEFORE touching the registry or the scheduler, so an
// over-quota tenant is answered RESOURCE_EXHAUSTED from the event loop
// without consuming any serving capacity — the cheap reject the ROADMAP's
// "quotas and backpressure surfaced as a wire status" item asks for.
//
// Classic token bucket: each tenant accrues `qps` tokens per second up to a
// burst cap, one request costs one token. qps <= 0 disarms the quota (every
// request admitted), so the default-off configuration costs one branch.
//
// Thread-safety: the server only calls admit() from its event-loop thread,
// but the mutex keeps the class safe for tests and future multi-loop servers
// — it is never on the model-execution hot path.
#pragma once

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <unordered_map>

namespace plt::net {

class TenantQuota {
 public:
  // qps: sustained tokens/second per tenant (<= 0 = unlimited). burst: bucket
  // cap, i.e. the largest instantaneous spike admitted after idle accrual
  // (<= 0 = same as qps, min 1).
  explicit TenantQuota(double qps, double burst = 0.0)
      : qps_(qps),
        burst_(qps <= 0 ? 0.0 : (burst > 0 ? burst : (qps < 1 ? 1.0 : qps))) {}

  bool enabled() const { return qps_ > 0; }

  // Charges one token from `tenant`'s bucket at time `now`; false = over
  // quota (the caller rejects RESOURCE_EXHAUSTED without side effects).
  bool admit(std::uint64_t tenant, std::chrono::steady_clock::time_point now) {
    if (!enabled()) return true;
    std::lock_guard<std::mutex> g(mu_);
    auto [it, inserted] = buckets_.try_emplace(tenant, Bucket{burst_, now});
    Bucket& b = it->second;
    if (!inserted) {
      const double dt =
          std::chrono::duration<double>(now - b.last_refill).count();
      b.tokens = std::min(burst_, b.tokens + dt * qps_);
      b.last_refill = now;
    }
    if (b.tokens < 1.0) {
      rejected_.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    b.tokens -= 1.0;
    admitted_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }

  std::uint64_t admitted() const {
    return admitted_.load(std::memory_order_relaxed);
  }
  std::uint64_t rejected() const {
    return rejected_.load(std::memory_order_relaxed);
  }

 private:
  struct Bucket {
    double tokens;
    std::chrono::steady_clock::time_point last_refill;
  };

  const double qps_;
  const double burst_;
  std::mutex mu_;
  std::unordered_map<std::uint64_t, Bucket> buckets_;
  std::atomic<std::uint64_t> admitted_{0};
  std::atomic<std::uint64_t> rejected_{0};
};

}  // namespace plt::net
