// Per-tenant token-bucket admission quotas for the network front-end.
//
// Every request frame carries a tenant_id; the server charges one token from
// that tenant's bucket BEFORE touching the registry or the scheduler, so an
// over-quota tenant is answered RESOURCE_EXHAUSTED from the event loop
// without consuming any serving capacity — the cheap reject the ROADMAP's
// "quotas and backpressure surfaced as a wire status" item asks for.
//
// Classic token bucket: each tenant accrues `qps` tokens per second up to a
// burst cap, one request costs one token. qps <= 0 disarms the quota (every
// request admitted), so the default-off configuration costs one branch.
//
// The bucket map is BOUNDED (max_tenants): a tenant-id sweep — hostile or
// just churny — cannot grow it without limit. At the cap, admitting a new
// tenant first evicts by LRU, preferring a bucket whose idle accrual has
// refilled it to the burst cap: evicting a full bucket is lossless, because
// a later request from that tenant re-creates it full, which is exactly the
// state it was evicted in. Only if none of the coldest few buckets is full
// yet is the absolute LRU tail taken (its tenant gets a fresh full bucket
// on return — a bounded, deliberate forgiveness, never unbounded memory).
// Evictions are counted and exported via evicted().
//
// Thread-safety: the server only calls admit() from its event-loop thread,
// but the mutex keeps the class safe for tests and future multi-loop servers
// — it is never on the model-execution hot path.
#pragma once

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <list>
#include <mutex>
#include <unordered_map>

namespace plt::net {

class TenantQuota {
 public:
  // qps: sustained tokens/second per tenant (<= 0 = unlimited). burst: bucket
  // cap, i.e. the largest instantaneous spike admitted after idle accrual
  // (<= 0 = same as qps, min 1). max_tenants: bucket-map cap (0 = unbounded,
  // the pre-hardening behavior).
  explicit TenantQuota(double qps, double burst = 0.0,
                       std::size_t max_tenants = kDefaultMaxTenants)
      : qps_(qps),
        burst_(qps <= 0 ? 0.0 : (burst > 0 ? burst : (qps < 1 ? 1.0 : qps))),
        max_tenants_(max_tenants) {}

  static constexpr std::size_t kDefaultMaxTenants = 4096;

  bool enabled() const { return qps_ > 0; }

  // Charges one token from `tenant`'s bucket at time `now`; false = over
  // quota (the caller rejects RESOURCE_EXHAUSTED without side effects).
  bool admit(std::uint64_t tenant, std::chrono::steady_clock::time_point now) {
    if (!enabled()) return true;
    std::lock_guard<std::mutex> g(mu_);
    auto it = buckets_.find(tenant);
    if (it == buckets_.end()) {
      if (max_tenants_ > 0 && buckets_.size() >= max_tenants_) {
        evict_locked(now);
      }
      lru_.push_front(tenant);
      it = buckets_.emplace(tenant, Bucket{burst_, now, lru_.begin()}).first;
    } else {
      Bucket& b = it->second;
      const double dt =
          std::chrono::duration<double>(now - b.last_refill).count();
      b.tokens = std::min(burst_, b.tokens + dt * qps_);
      b.last_refill = now;
      lru_.splice(lru_.begin(), lru_, b.lru);  // touched: most recent
    }
    Bucket& b = it->second;
    if (b.tokens < 1.0) {
      rejected_.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    b.tokens -= 1.0;
    admitted_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }

  std::uint64_t admitted() const {
    return admitted_.load(std::memory_order_relaxed);
  }
  std::uint64_t rejected() const {
    return rejected_.load(std::memory_order_relaxed);
  }
  // Buckets evicted at the max_tenants cap.
  std::uint64_t evicted() const {
    return evicted_.load(std::memory_order_relaxed);
  }
  std::size_t tracked_tenants() const {
    std::lock_guard<std::mutex> g(mu_);
    return buckets_.size();
  }

 private:
  struct Bucket {
    double tokens;
    std::chrono::steady_clock::time_point last_refill;
    std::list<std::uint64_t>::iterator lru;
  };

  // How far up from the LRU tail to look for a lossless (idle-full) victim
  // before settling for the tail itself. Bounds the eviction cost per
  // admit; under steady churn the tail IS long-idle, so one probe wins.
  static constexpr int kEvictScan = 8;

  void evict_locked(std::chrono::steady_clock::time_point now) {
    if (lru_.empty()) return;
    auto victim = std::prev(lru_.end());  // default: the coldest tenant
    auto pos = victim;
    for (int scanned = 0; scanned < kEvictScan; ++scanned) {
      const auto bit = buckets_.find(*pos);
      const double dt =
          std::chrono::duration<double>(now - bit->second.last_refill)
              .count();
      if (bit->second.tokens + dt * qps_ >= burst_) {
        victim = pos;  // idle long enough to be full again: lossless evict
        break;
      }
      if (pos == lru_.begin()) break;
      --pos;
    }
    buckets_.erase(*victim);
    lru_.erase(victim);
    evicted_.fetch_add(1, std::memory_order_relaxed);
  }

  const double qps_;
  const double burst_;
  const std::size_t max_tenants_;
  mutable std::mutex mu_;
  std::unordered_map<std::uint64_t, Bucket> buckets_;
  std::list<std::uint64_t> lru_;  // front = most recently charged
  std::atomic<std::uint64_t> admitted_{0};
  std::atomic<std::uint64_t> rejected_{0};
  std::atomic<std::uint64_t> evicted_{0};
};

}  // namespace plt::net
