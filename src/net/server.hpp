// Epoll-based network front-end over the serving stack: the step from an
// in-process submit() API to a socket millions of clients could actually
// hit.
//
// One event-loop thread owns a non-blocking listen socket, an epoll set and
// every connection's read/write state machine:
//
//   readable  -> recv into the connection's read buffer, decode as many
//                complete request frames as are buffered (wire.hpp is
//                incremental — a frame split across recv() boundaries just
//                waits for more bytes), resolve each against ONE registry
//                snapshot taken per drain (no per-request registry locking),
//                charge the tenant quota, and submit to the scheduler on the
//                existing per-partition MPMC admission path.
//   complete  -> the scheduler's on_done callback (dispatcher thread) encodes
//                the response frame, hands it to the loop through a
//                completion queue and rings an eventfd — the loop never
//                blocks on model execution, dispatchers never touch epoll.
//   writable  -> flush the connection's write buffer; partial writes keep
//                the remainder buffered and arm EPOLLOUT until drained.
//
// Error model: the wire layer only SERIALIZES `handle.status()` — every
// terminal StatusCode maps 1:1 onto a WireCode (shed -> RESOURCE_EXHAUSTED,
// deadline -> DEADLINE_EXCEEDED, quarantine/shutdown -> UNAVAILABLE, kernel
// fault -> INTERNAL), so the server invents no error handling of its own.
// Malformed frames (bad magic/version/oversized length) poison the byte
// stream and close the connection after a best-effort error response; the
// net_write fault site injects short writes and connection resets on the
// response path, and the conn_accept site closes accepted connections at
// the door, for chaos coverage.
//
// Health + drain (wire v2): a kFrameHealth probe on any connection is
// answered inline with the scheduler's terminal-accounting counters, every
// shard's liveness record (queue depth / quarantine / overload level /
// heartbeat) and the server's draining flag. begin_drain() — also reachable
// via SIGTERM/SIGINT once install_signal_handlers() ran — releases the
// listen port immediately, answers every NEW submit kUnavailable
// ("draining"), keeps serving health probes, flushes all in-flight
// responses, then exits the loop. Replayed request ids (a hardened client
// retrying on a fresh connection) are deduplicated while the original is
// still in flight, so a retry never double-executes a request the server
// already owns.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/status.hpp"
#include "net/quota.hpp"
#include "serving/model_registry.hpp"
#include "serving/scheduler.hpp"

namespace plt::net {

struct ServerConfig {
  // PLT_NET_PORT: TCP port to bind on 127.0.0.1 (0 = kernel-assigned
  // ephemeral port; read it back via Server::port() — the test/CI mode).
  int port = 0;
  // PLT_NET_MAX_CONNS: accepted-connection cap. At the cap, new accepts are
  // closed immediately (the TCP equivalent of load shedding at the door).
  int max_conns = 256;
  // PLT_NET_TENANT_QPS: per-tenant sustained request rate (0 = unlimited).
  // Over-quota requests are answered RESOURCE_EXHAUSTED on the wire before
  // touching the scheduler.
  std::int64_t tenant_qps = 0;
  // PLT_NET_TENANT_BURST: token-bucket burst cap (0 = same as tenant_qps).
  std::int64_t tenant_burst = 0;
  // PLT_NET_TENANT_MAX: bound on tracked tenant buckets; at the cap the
  // LRU bucket is evicted (idle-full preferred — see quota.hpp). 0 =
  // unbounded.
  std::int64_t tenant_max = 4096;

  // Reads the PLT_NET_* environment knobs (range-validated; bad values warn
  // and fall back to the defaults above).
  static ServerConfig from_env();
};

class Server {
 public:
  // The registry and scheduler must outlive the server; the server must be
  // stop()ed (or destroyed) before the scheduler shuts down ONLY if callers
  // need every queued response flushed — pending requests resolve through
  // the scheduler's own drain either way.
  Server(serving::ModelRegistry& registry,
         serving::RequestScheduler& scheduler,
         ServerConfig cfg = ServerConfig::from_env());
  ~Server();  // implies stop()

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  // Binds 127.0.0.1:cfg.port, starts the event loop thread. kUnavailable on
  // socket/bind/listen failure (the loop is not started).
  Status start();

  // Graceful stop: stops accepting and reading (no new submits), waits for
  // every in-flight request's response to be queued, flushes write buffers
  // best-effort, closes every connection, joins the loop. Idempotent.
  void stop();

  // Graceful drain, the SIGTERM semantics: release the listen port (a
  // replacement can bind while we flush), answer every new submit
  // kUnavailable with message "draining" (health probes still served, with
  // the draining flag set), flush every in-flight response, then exit the
  // event loop. Non-blocking and idempotent; callers still invoke stop()
  // to join the loop thread and close the epoll/eventfd descriptors.
  void begin_drain();
  bool draining() const { return draining_.load(std::memory_order_acquire); }

  // Routes SIGTERM/SIGINT to begin_drain() through an async-signal-safe
  // handler (an atomic flag plus an eventfd write — no locks, no
  // allocation in the handler). Process-wide: the most recently installed
  // server owns the signals. Call after start().
  void install_signal_handlers();

  // Liveness surface for a warn-only serving::Watchdog probe: the epoch
  // advances once per event-loop iteration; the backlog is the number of
  // queued completions the loop has not drained yet. A frozen epoch with a
  // non-zero backlog is the stalled-loop signature.
  std::uint64_t loop_epoch() const {
    return loop_epoch_.load(std::memory_order_relaxed);
  }
  std::size_t loop_backlog() const {
    return completions_pending_.load(std::memory_order_relaxed);
  }

  // Actual bound port (resolves cfg.port == 0), valid after start().
  int port() const { return port_; }

  struct Stats {
    std::uint64_t accepted = 0;         // connections accepted
    std::uint64_t conn_rejected = 0;    // closed at the max_conns cap
    std::uint64_t frames = 0;           // request frames decoded
    std::uint64_t responses = 0;        // response frames queued to a conn
    std::uint64_t quota_rejected = 0;   // RESOURCE_EXHAUSTED before submit
    std::uint64_t protocol_errors = 0;  // malformed frames (conn closed)
    std::uint64_t write_faults = 0;     // net_write injected resets
    std::uint64_t health_frames = 0;    // health probes answered
    std::uint64_t drain_rejected = 0;   // submits refused while draining
    std::uint64_t dup_rejected = 0;     // replayed ids refused in flight
    std::uint64_t quota_evicted = 0;    // tenant buckets evicted at the cap
  };
  Stats stats() const;

 private:
  struct Conn;
  struct Completion;

  void loop_main();
  void handle_accept();
  void handle_readable(Conn& c);
  void handle_writable(Conn& c);
  // Decodes + submits every complete frame in c's read buffer. False = the
  // connection hit a protocol error and must close.
  bool process_frames(Conn& c);
  void queue_response(Conn& c, std::vector<std::uint8_t> bytes);
  void drain_completions();
  void close_conn(std::uint64_t id);
  void update_epoll(Conn& c);

  serving::ModelRegistry& registry_;
  serving::RequestScheduler& scheduler_;
  ServerConfig cfg_;
  TenantQuota quota_;

  int listen_fd_ = -1;
  int epoll_fd_ = -1;
  int wake_fd_ = -1;  // eventfd: completion queue -> event loop
  int port_ = 0;

  // Connections are owned by the loop thread; completion callbacks refer to
  // them only by id (fd reuse makes raw fds ambiguous), so a response for a
  // vanished connection is dropped, never dangles.
  std::unordered_map<std::uint64_t, std::unique_ptr<Conn>> conns_;
  std::uint64_t next_conn_id_ = 1;

  std::mutex completions_mu_;
  std::vector<Completion> completions_;
  std::atomic<std::size_t> completions_pending_{0};  // queued, not drained

  // In-flight replay dedup: (tenant, request_id) pairs the scheduler owns
  // right now. Inserted before submit, erased by on_done before the
  // completion is queued — a retry that arrives after the response was
  // queued is a fresh (idempotent) execution, never a duplicate in flight.
  std::mutex inflight_mu_;
  std::unordered_map<std::uint64_t, std::unordered_set<std::uint64_t>>
      inflight_ids_;

  std::atomic<std::uint64_t> in_flight_{0};  // submitted, on_done not yet run
  std::atomic<bool> stopping_{false};
  std::atomic<bool> draining_{false};
  std::atomic<bool> started_{false};
  std::thread loop_;

  std::atomic<std::uint64_t> loop_epoch_{0};
  std::atomic<std::uint64_t> accepted_{0};
  std::atomic<std::uint64_t> conn_rejected_{0};
  std::atomic<std::uint64_t> frames_{0};
  std::atomic<std::uint64_t> responses_{0};
  std::atomic<std::uint64_t> protocol_errors_{0};
  std::atomic<std::uint64_t> write_faults_{0};
  std::atomic<std::uint64_t> health_frames_{0};
  std::atomic<std::uint64_t> drain_rejected_{0};
  std::atomic<std::uint64_t> dup_rejected_{0};
};

}  // namespace plt::net
