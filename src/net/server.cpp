#include "net/server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstring>

#include "common/env.hpp"
#include "common/fault.hpp"
#include "common/log.hpp"
#include "net/wire.hpp"

namespace plt::net {

using steady_clock = std::chrono::steady_clock;

namespace {
// SIGTERM/SIGINT -> drain, async-signal-safe: the handler stores one flag
// and writes one eventfd — both lock-free, no allocation, no logging. The
// event loop translates the flag into begin_drain() on its next wakeup.
std::atomic<bool> g_signal_drain{false};
std::atomic<int> g_signal_wake_fd{-1};

void drain_signal_handler(int /*signo*/) {
  g_signal_drain.store(true, std::memory_order_seq_cst);
  const int fd = g_signal_wake_fd.load(std::memory_order_relaxed);
  if (fd >= 0) {
    const std::uint64_t one = 1;
    [[maybe_unused]] ssize_t n = ::write(fd, &one, sizeof(one));
  }
}
}  // namespace

ServerConfig ServerConfig::from_env() {
  const ServerConfig def;
  ServerConfig c;
  c.port = static_cast<int>(common::env_int("PLT_NET_PORT", def.port, 0, 65535));
  c.max_conns = static_cast<int>(
      common::env_int("PLT_NET_MAX_CONNS", def.max_conns, 1, 65536));
  c.tenant_qps =
      common::env_int("PLT_NET_TENANT_QPS", def.tenant_qps, 0, 100000000);
  c.tenant_burst =
      common::env_int("PLT_NET_TENANT_BURST", def.tenant_burst, 0, 100000000);
  c.tenant_max =
      common::env_int("PLT_NET_TENANT_MAX", def.tenant_max, 0, 100000000);
  return c;
}

// Per-connection state machine. Owned and touched exclusively by the loop
// thread; completion callbacks reference connections only by id.
struct Server::Conn {
  std::uint64_t id = 0;
  int fd = -1;
  std::vector<std::uint8_t> read_buf;
  std::vector<std::uint8_t> write_buf;
  std::size_t write_off = 0;  // flushed prefix of write_buf
  bool want_write = false;    // EPOLLOUT currently armed
  bool close_after_flush = false;  // protocol error: drain, then close
  // Deferred close: handle_writable runs under callers that still hold this
  // Conn& (process_frames mid-drain, drain_completions mid-batch), so it
  // must never destroy the connection itself — it marks it dead and the
  // nearest frame that holds no reference calls close_conn.
  bool dead = false;
};

// One completed request's encoded response, queued by a scheduler thread for
// the loop thread to attach to the connection's write buffer.
struct Server::Completion {
  std::uint64_t conn_id = 0;
  std::vector<std::uint8_t> bytes;
};

// Buffers owned by an in-flight request: the scheduler requires in/out to
// stay valid until the terminal callback, and the connection may die first —
// so the callback (not the Conn) keeps them alive via shared_ptr.
namespace {
struct InFlightCtx {
  std::vector<float> in;
  std::vector<float> out;
};
}  // namespace

Server::Server(serving::ModelRegistry& registry,
               serving::RequestScheduler& scheduler, ServerConfig cfg)
    : registry_(registry),
      scheduler_(scheduler),
      cfg_(cfg),
      quota_(static_cast<double>(cfg.tenant_qps),
             static_cast<double>(cfg.tenant_burst),
             static_cast<std::size_t>(cfg.tenant_max)) {}

Server::~Server() { stop(); }

Status Server::start() {
  if (started_.exchange(true)) {
    return Status::Unavailable("server already started");
  }
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) {
    return Status::Unavailable(std::string("socket: ") + std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(cfg_.port));
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    const Status st =
        Status::Unavailable(std::string("bind: ") + std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return st;
  }
  if (::listen(listen_fd_, 128) < 0) {
    const Status st =
        Status::Unavailable(std::string("listen: ") + std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return st;
  }
  socklen_t alen = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &alen);
  port_ = ntohs(addr.sin_port);

  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  wake_fd_ = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  if (epoll_fd_ < 0 || wake_fd_ < 0) {
    const Status st = Status::Unavailable("epoll_create1/eventfd failed");
    if (epoll_fd_ >= 0) ::close(epoll_fd_);
    if (wake_fd_ >= 0) ::close(wake_fd_);
    ::close(listen_fd_);
    listen_fd_ = epoll_fd_ = wake_fd_ = -1;
    return st;
  }
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.u64 = 0;  // listen socket sentinel
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev);
  ev.events = EPOLLIN;
  ev.data.u64 = 1;  // eventfd sentinel
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev);

  loop_ = std::thread([this] { loop_main(); });
  PLT_LOG_INFO << "net: serving on 127.0.0.1:" << port_
               << " (max_conns=" << cfg_.max_conns
               << ", tenant_qps=" << cfg_.tenant_qps << ")";
  return Status::Ok();
}

void Server::stop() {
  if (!started_.load(std::memory_order_acquire)) return;
  stopping_.store(true, std::memory_order_seq_cst);
  if (wake_fd_ >= 0) {
    const std::uint64_t one = 1;
    [[maybe_unused]] ssize_t n = ::write(wake_fd_, &one, sizeof(one));
  }
  if (loop_.joinable()) loop_.join();
  // Un-register from the signal path before the eventfd closes; a later
  // signal then only sets the flag (harmless) instead of writing a stale fd.
  int expected = wake_fd_;
  g_signal_wake_fd.compare_exchange_strong(expected, -1,
                                           std::memory_order_seq_cst);
  if (listen_fd_ >= 0) ::close(listen_fd_);
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
  if (wake_fd_ >= 0) ::close(wake_fd_);
  listen_fd_ = epoll_fd_ = wake_fd_ = -1;
}

void Server::begin_drain() {
  if (!started_.load(std::memory_order_acquire)) return;
  if (draining_.exchange(true, std::memory_order_seq_cst)) return;
  if (wake_fd_ >= 0) {
    const std::uint64_t one = 1;
    [[maybe_unused]] ssize_t n = ::write(wake_fd_, &one, sizeof(one));
  }
}

void Server::install_signal_handlers() {
  g_signal_wake_fd.store(wake_fd_, std::memory_order_seq_cst);
  struct sigaction sa {};
  sa.sa_handler = &drain_signal_handler;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = SA_RESTART;
  ::sigaction(SIGTERM, &sa, nullptr);
  ::sigaction(SIGINT, &sa, nullptr);
}

Server::Stats Server::stats() const {
  Stats s;
  s.accepted = accepted_.load(std::memory_order_relaxed);
  s.conn_rejected = conn_rejected_.load(std::memory_order_relaxed);
  s.frames = frames_.load(std::memory_order_relaxed);
  s.responses = responses_.load(std::memory_order_relaxed);
  s.quota_rejected = quota_.rejected();
  s.protocol_errors = protocol_errors_.load(std::memory_order_relaxed);
  s.write_faults = write_faults_.load(std::memory_order_relaxed);
  s.health_frames = health_frames_.load(std::memory_order_relaxed);
  s.drain_rejected = drain_rejected_.load(std::memory_order_relaxed);
  s.dup_rejected = dup_rejected_.load(std::memory_order_relaxed);
  s.quota_evicted = quota_.evicted();
  return s;
}

void Server::update_epoll(Conn& c) {
  epoll_event ev{};
  // While stopping, reads are disabled: no new frames, no new submits — the
  // drain only flushes what is already in flight.
  ev.events = stopping_.load(std::memory_order_relaxed)
                  ? 0u
                  : std::uint32_t{EPOLLIN};
  const bool pending = c.write_off < c.write_buf.size();
  if (pending) ev.events |= EPOLLOUT;
  c.want_write = pending;
  ev.data.u64 = c.id + 2;  // 0/1 are the listen/eventfd sentinels
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, c.fd, &ev);
}

void Server::handle_accept() {
  while (true) {
    const int fd =
        ::accept4(listen_fd_, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) return;  // EAGAIN or transient error: nothing more to accept
    if (common::fault::should_inject(common::fault::Site::kConnAccept) !=
        common::fault::Kind::kNone) {
      // Injected accept failure: the connection is slammed at the door
      // before a single frame is read — the client sees a reset on its
      // first recv and must reconnect + retry (the hardened-client path).
      conn_rejected_.fetch_add(1, std::memory_order_relaxed);
      ::close(fd);
      continue;
    }
    if (stopping_.load(std::memory_order_relaxed) ||
        draining_.load(std::memory_order_relaxed) ||
        conns_.size() >= static_cast<std::size_t>(cfg_.max_conns)) {
      // At the connection cap the cheapest honest answer is a closed door:
      // no half-open connection ever queues frames we would have to shed.
      conn_rejected_.fetch_add(1, std::memory_order_relaxed);
      ::close(fd);
      continue;
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    auto conn = std::make_unique<Conn>();
    conn->id = next_conn_id_++;
    conn->fd = fd;
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.u64 = conn->id + 2;
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev);
    accepted_.fetch_add(1, std::memory_order_relaxed);
    conns_.emplace(conn->id, std::move(conn));
  }
}

void Server::close_conn(std::uint64_t id) {
  const auto it = conns_.find(id);
  if (it == conns_.end()) return;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, it->second->fd, nullptr);
  ::close(it->second->fd);
  conns_.erase(it);
}

void Server::handle_readable(Conn& c) {
  std::uint8_t chunk[64 * 1024];
  while (true) {
    const ssize_t n = ::recv(c.fd, chunk, sizeof(chunk), 0);
    if (n > 0) {
      c.read_buf.insert(c.read_buf.end(), chunk, chunk + n);
      if (static_cast<std::size_t>(n) < sizeof(chunk)) break;
      continue;
    }
    if (n == 0) {  // orderly client close
      close_conn(c.id);
      return;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    close_conn(c.id);  // reset or unrecoverable error
    return;
  }
  const bool proto_ok = process_frames(c);
  if (c.dead) {  // a reject flush hit a write fault / reset mid-drain
    close_conn(c.id);
    return;
  }
  if (!proto_ok) {
    // Protocol error: the byte stream is desynchronized. A best-effort error
    // response is already queued; close once it flushes (or immediately if
    // nothing is pending).
    c.close_after_flush = true;
    if (c.write_off >= c.write_buf.size()) {
      close_conn(c.id);
      return;
    }
  }
  update_epoll(c);
}

bool Server::process_frames(Conn& c) {
  if (c.read_buf.empty() || c.close_after_flush || c.dead) return true;
  // ONE registry snapshot per drain: every frame buffered in this readable
  // event resolves against the same immutable table with zero locking —
  // the reload swap costs readers nothing (satellite: registry mutex is off
  // the dispatch path).
  const auto snap = registry_.snapshot();
  std::size_t off = 0;
  bool ok = true;
  while (off < c.read_buf.size() && !c.dead) {
    const std::uint8_t* data = c.read_buf.data() + off;
    const std::size_t avail = c.read_buf.size() - off;
    std::size_t consumed = 0;
    std::string error;

    const auto protocol_error = [&](const std::string& detail) {
      protocol_errors_.fetch_add(1, std::memory_order_relaxed);
      ResponseFrame err;
      err.request_id = 0;  // the frame was unparseable; no id to echo
      err.code = WireCode::kInvalidArgument;
      err.message = "protocol error: " + detail;
      std::vector<std::uint8_t> bytes;
      encode_response(err, &bytes);
      queue_response(c, std::move(bytes));
      ok = false;
    };

    // The server reads two frame kinds on one socket (requests + health
    // probes): peek the validated type, then dispatch to the decoder.
    std::uint16_t ftype = 0;
    const DecodeResult peek = peek_frame_type(data, avail, &ftype, &error);
    if (peek == DecodeResult::kNeedMore) break;
    if (peek == DecodeResult::kError) {
      protocol_error(error);
      break;
    }

    if (ftype == kFrameHealth) {
      HealthFrame probe;
      const DecodeResult res =
          decode_health_request(data, avail, &probe, &consumed, &error);
      if (res == DecodeResult::kNeedMore) break;
      if (res == DecodeResult::kError) {
        protocol_error(error);
        break;
      }
      off += consumed;
      health_frames_.fetch_add(1, std::memory_order_relaxed);

      HealthResponseFrame hr;
      hr.request_id = probe.request_id;
      hr.draining = draining_.load(std::memory_order_acquire) ||
                    stopping_.load(std::memory_order_relaxed);
      const serving::RequestScheduler::Counters ctr = scheduler_.counters();
      hr.submitted = ctr.submitted;
      hr.completed = ctr.completed;
      hr.failed = ctr.failed;
      hr.expired = ctr.expired;
      hr.shed = ctr.shed;
      hr.rejected = ctr.rejected;
      const int nshards = std::min(scheduler_.shard_count(), 255);
      for (int s = 0; s < nshards; ++s) {
        ShardHealth sh;
        sh.queue_depth = static_cast<std::uint32_t>(std::min<std::size_t>(
            scheduler_.shard_backlog(s), 0xffffffffu));
        sh.quarantined = scheduler_.shard_quarantined(s);
        sh.overload_level = scheduler_.overload_level(s);
        sh.heartbeat = scheduler_.shard_heartbeat(s);
        hr.shards.push_back(sh);
      }
      std::vector<std::uint8_t> bytes;
      encode_health_response(hr, &bytes);
      queue_response(c, std::move(bytes));
      continue;
    }
    if (ftype != kFrameRequest) {
      protocol_error("unexpected frame type " + std::to_string(ftype));
      break;
    }

    RequestFrame frame;
    const DecodeResult res =
        decode_request(data, avail, &frame, &consumed, &error);
    if (res == DecodeResult::kNeedMore) break;
    if (res == DecodeResult::kError) {
      protocol_error(error);
      break;
    }
    off += consumed;
    frames_.fetch_add(1, std::memory_order_relaxed);

    const auto reject = [&](WireCode code, const std::string& msg) {
      ResponseFrame r;
      r.request_id = frame.request_id;
      r.code = code;
      r.message = msg;
      std::vector<std::uint8_t> bytes;
      encode_response(r, &bytes);
      queue_response(c, std::move(bytes));
    };

    // Draining beats quota: a shutting-down server answers every submit
    // kUnavailable without charging the tenant's bucket — the retry lands
    // on the replacement process with a full allowance.
    if (draining_.load(std::memory_order_acquire)) {
      drain_rejected_.fetch_add(1, std::memory_order_relaxed);
      reject(WireCode::kUnavailable, "draining");
      continue;
    }
    // Quota before anything else: an over-quota tenant must not cost a
    // registry lookup, an allocation, or a scheduler slot.
    if (!quota_.admit(frame.tenant_id, steady_clock::now())) {
      reject(WireCode::kResourceExhausted,
             "tenant " + std::to_string(frame.tenant_id) + " over quota");
      continue;
    }
    const auto it = snap->by_name.find(frame.name);
    if (it == snap->by_name.end()) {
      reject(WireCode::kInvalidArgument, "unknown model: " + frame.name);
      continue;
    }
    const std::shared_ptr<serving::Session>& session = it->second;
    if (frame.payload.size() !=
        static_cast<std::size_t>(session->input_elems())) {
      reject(WireCode::kInvalidArgument,
             "payload holds " + std::to_string(frame.payload.size()) +
                 " floats, model expects " +
                 std::to_string(session->input_elems()));
      continue;
    }
    if (frame.cls > 2) {
      reject(WireCode::kInvalidArgument,
             "bad request class " + std::to_string(frame.cls));
      continue;
    }

    // Replay dedup: a hardened client retries UNAVAILABLE/RESOURCE_EXHAUSTED
    // with the SAME request id, possibly on a fresh connection while the
    // original submit is still executing. Owning each (tenant, id) pair at
    // most once keeps the retry from double-executing; the replay is told
    // kUnavailable and the client's next backoff retry lands after the
    // original resolved.
    {
      std::lock_guard<std::mutex> g(inflight_mu_);
      if (!inflight_ids_[frame.tenant_id].insert(frame.request_id).second) {
        dup_rejected_.fetch_add(1, std::memory_order_relaxed);
        reject(WireCode::kUnavailable,
               "request " + std::to_string(frame.request_id) +
                   " already in flight (replay)");
        continue;
      }
    }

    auto ctx = std::make_shared<InFlightCtx>();
    ctx->in = std::move(frame.payload);
    ctx->out.resize(static_cast<std::size_t>(session->output_elems()));

    serving::Request req;
    req.in = ctx->in.data();
    req.out = ctx->out.data();
    req.cls = static_cast<serving::RequestClass>(frame.cls);
    req.deadline_usecs = frame.deadline_usecs < -1 ? -1 : frame.deadline_usecs;
    const std::uint64_t conn_id = c.id;
    const std::uint64_t request_id = frame.request_id;
    const std::uint64_t tenant_id = frame.tenant_id;
    in_flight_.fetch_add(1, std::memory_order_seq_cst);
    req.on_done = [this, ctx, conn_id, request_id,
                   tenant_id](const Status& st) {
      // Runs on whichever thread resolved the request (dispatcher, or this
      // loop thread for an immediate refusal): encode, enqueue for the loop,
      // ring the eventfd. The wire layer serializes handle.status() 1:1 —
      // shed/deadline/quarantine arrive here as their own codes already.
      ResponseFrame resp;
      resp.request_id = request_id;
      resp.code = wire_code_from_status(st.code());
      if (st.ok()) {
        resp.payload = std::move(ctx->out);
      } else {
        resp.message = st.message().size() > kMaxMessageLen
                           ? st.message().substr(0, kMaxMessageLen)
                           : st.message();
      }
      // Release the dedup slot BEFORE the response is visible: once the
      // client can observe the outcome, an identically-numbered retry is a
      // fresh idempotent execution, not a replay of one we still own.
      {
        std::lock_guard<std::mutex> g(inflight_mu_);
        const auto tit = inflight_ids_.find(tenant_id);
        if (tit != inflight_ids_.end()) {
          tit->second.erase(request_id);
          if (tit->second.empty()) inflight_ids_.erase(tit);
        }
      }
      Completion done;
      done.conn_id = conn_id;
      encode_response(resp, &done.bytes);
      {
        std::lock_guard<std::mutex> g(completions_mu_);
        completions_.push_back(std::move(done));
        completions_pending_.fetch_add(1, std::memory_order_relaxed);
      }
      const std::uint64_t one = 1;
      [[maybe_unused]] ssize_t n = ::write(wake_fd_, &one, sizeof(one));
      in_flight_.fetch_sub(1, std::memory_order_seq_cst);
    };
    // The handle itself is intentionally dropped: on_done is the completion
    // channel, and the scheduler guarantees exactly one terminal resolution
    // per submit (including refusals, which fire on_done synchronously).
    (void)scheduler_.submit(session, req);
  }
  c.read_buf.erase(c.read_buf.begin(),
                   c.read_buf.begin() + static_cast<std::ptrdiff_t>(off));
  return ok;
}

void Server::queue_response(Conn& c, std::vector<std::uint8_t> bytes) {
  responses_.fetch_add(1, std::memory_order_relaxed);
  c.write_buf.insert(c.write_buf.end(), bytes.begin(), bytes.end());
  handle_writable(c);  // opportunistic flush; arms EPOLLOUT on partial write
}

void Server::handle_writable(Conn& c) {
  if (c.dead) return;
  while (c.write_off < c.write_buf.size()) {
    std::size_t len = c.write_buf.size() - c.write_off;
    switch (common::fault::should_inject(common::fault::Site::kNetWrite)) {
      case common::fault::Kind::kFull:
        // Injected short write: hand the kernel ONE byte so the remainder
        // must survive a re-arm — the partial-write path under test.
        len = 1;
        break;
      case common::fault::Kind::kThrow:
      case common::fault::Kind::kFail:
        // Injected connection reset mid-response.
        write_faults_.fetch_add(1, std::memory_order_relaxed);
        c.dead = true;
        return;
      case common::fault::Kind::kNone:
        break;
    }
    const ssize_t n =
        ::send(c.fd, c.write_buf.data() + c.write_off, len, MSG_NOSIGNAL);
    if (n > 0) {
      c.write_off += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    if (n < 0 && errno == EINTR) continue;
    c.dead = true;  // EPIPE/reset: the client is gone
    return;
  }
  if (c.write_off >= c.write_buf.size()) {
    c.write_buf.clear();
    c.write_off = 0;
    if (c.close_after_flush) {
      c.dead = true;
      return;
    }
  }
  update_epoll(c);
}

void Server::drain_completions() {
  std::vector<Completion> batch;
  {
    std::lock_guard<std::mutex> g(completions_mu_);
    batch.swap(completions_);
    completions_pending_.fetch_sub(batch.size(), std::memory_order_relaxed);
  }
  for (auto& done : batch) {
    const auto it = conns_.find(done.conn_id);
    if (it == conns_.end()) continue;  // client vanished; drop the response
    queue_response(*it->second, std::move(done.bytes));
    if (it->second->dead) close_conn(done.conn_id);
  }
}

void Server::loop_main() {
  constexpr int kMaxEvents = 64;
  epoll_event events[kMaxEvents];
  steady_clock::time_point drain_deadline{};
  bool draining = false;   // drain entered (graceful begin_drain or stop)
  bool reads_off = false;  // hard stop: EPOLLIN disarmed on every conn
  while (true) {
    loop_epoch_.fetch_add(1, std::memory_order_relaxed);
    if (g_signal_drain.exchange(false, std::memory_order_seq_cst)) {
      PLT_LOG_INFO << "net: drain requested by signal";
      draining_.store(true, std::memory_order_seq_cst);
    }
    const bool stopping = stopping_.load(std::memory_order_seq_cst);
    if (stopping || draining_.load(std::memory_order_seq_cst)) {
      if (!draining) {
        draining = true;
        // Grace window for the flush: every in-flight request must resolve
        // (the scheduler guarantees it) and its response reach the socket,
        // but a client that never reads cannot wedge shutdown forever.
        drain_deadline = steady_clock::now() + std::chrono::seconds(5);
        // Release the port up front: a replacement process can bind while
        // this one is still flushing responses.
        if (listen_fd_ >= 0) {
          ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, listen_fd_, nullptr);
          ::close(listen_fd_);
          listen_fd_ = -1;
        }
        PLT_LOG_INFO << "net: draining (" << conns_.size()
                     << " conns, in_flight="
                     << in_flight_.load(std::memory_order_relaxed) << ")";
      }
      if (stopping && !reads_off) {
        // stop() semantics on top of a drain: reads off — no more frames,
        // not even health probes or UNAVAILABLE answers.
        reads_off = true;
        for (auto& entry : conns_) update_epoll(*entry.second);
      }
      drain_completions();
      bool writes_pending = false;
      for (auto& entry : conns_) {
        writes_pending = writes_pending || entry.second->write_off <
                                               entry.second->write_buf.size();
      }
      const bool drained =
          in_flight_.load(std::memory_order_seq_cst) == 0 && !writes_pending;
      {
        std::lock_guard<std::mutex> g(completions_mu_);
        if (drained && completions_.empty()) break;
      }
      if (steady_clock::now() >= drain_deadline) break;
    }

    const int n = ::epoll_wait(epoll_fd_, events, kMaxEvents,
                               /*timeout_ms=*/draining ? 10 : 200);
    for (int i = 0; i < n; ++i) {
      const std::uint64_t tag = events[i].data.u64;
      if (tag == 0) {
        handle_accept();
        continue;
      }
      if (tag == 1) {
        std::uint64_t drainv;
        while (::read(wake_fd_, &drainv, sizeof(drainv)) > 0) {
        }
        drain_completions();
        continue;
      }
      const auto it = conns_.find(tag - 2);
      if (it == conns_.end()) continue;  // closed earlier this batch
      Conn& c = *it->second;
      if ((events[i].events & (EPOLLHUP | EPOLLERR)) != 0) {
        close_conn(c.id);
        continue;
      }
      if ((events[i].events & EPOLLOUT) != 0) {
        handle_writable(c);
        if (c.dead) {
          close_conn(c.id);
          continue;
        }
      }
      if ((events[i].events & EPOLLIN) != 0 &&
          !stopping_.load(std::memory_order_relaxed)) {
        handle_readable(c);
      }
    }
    drain_completions();
  }
  // Loop exit: force-close whatever remains.
  for (auto& entry : conns_) ::close(entry.second->fd);
  conns_.clear();
}

}  // namespace plt::net
