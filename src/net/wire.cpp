#include "net/wire.hpp"

#include <cstring>

namespace plt::net {

namespace {

// Explicit little-endian stores/loads: byte shifts, not memcpy of host
// integers, so the byte stream is identical on any host endianness.
void store_u16(std::vector<std::uint8_t>* out, std::uint16_t v) {
  out->push_back(static_cast<std::uint8_t>(v & 0xFF));
  out->push_back(static_cast<std::uint8_t>(v >> 8));
}

void store_u32(std::vector<std::uint8_t>* out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<std::uint8_t>((v >> (8 * i)) & 0xFF));
  }
}

void store_u64(std::vector<std::uint8_t>* out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<std::uint8_t>((v >> (8 * i)) & 0xFF));
  }
}

std::uint16_t load_u16(const std::uint8_t* p) {
  return static_cast<std::uint16_t>(p[0] | (std::uint16_t{p[1]} << 8));
}

std::uint32_t load_u32(const std::uint8_t* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= std::uint32_t{p[i]} << (8 * i);
  return v;
}

std::uint64_t load_u64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= std::uint64_t{p[i]} << (8 * i);
  return v;
}

void store_f32_payload(std::vector<std::uint8_t>* out,
                       const std::vector<float>& payload) {
  for (float f : payload) {
    std::uint32_t bits;
    std::memcpy(&bits, &f, sizeof(bits));
    store_u32(out, bits);
  }
}

void load_f32_payload(const std::uint8_t* p, std::size_t n_floats,
                      std::vector<float>* out) {
  out->resize(n_floats);
  for (std::size_t i = 0; i < n_floats; ++i) {
    const std::uint32_t bits = load_u32(p + 4 * i);
    std::memcpy(&(*out)[i], &bits, sizeof(float));
  }
}

// Shared prefix check: magic, version, expected frame type. Returns kOk when
// the 8 prefix bytes are valid, kError (with *error) otherwise. len >= 8.
DecodeResult check_prefix(const std::uint8_t* data, std::uint16_t want_type,
                          std::string* error) {
  if (load_u32(data) != kWireMagic) {
    *error = "bad magic (not a PLTW frame)";
    return DecodeResult::kError;
  }
  const std::uint16_t version = load_u16(data + 4);
  if (version != kWireVersion) {
    *error = "wire version mismatch: got " + std::to_string(version) +
             ", want " + std::to_string(kWireVersion);
    return DecodeResult::kError;
  }
  const std::uint16_t type = load_u16(data + 6);
  if (type != want_type) {
    *error = "unexpected frame type " + std::to_string(type);
    return DecodeResult::kError;
  }
  return DecodeResult::kOk;
}

}  // namespace

WireCode wire_code_from_status(StatusCode c) {
  switch (c) {
    case StatusCode::kOk: return WireCode::kOk;
    case StatusCode::kInvalidArgument: return WireCode::kInvalidArgument;
    case StatusCode::kDeadlineExceeded: return WireCode::kDeadlineExceeded;
    case StatusCode::kUnavailable: return WireCode::kUnavailable;
    case StatusCode::kResourceExhausted: return WireCode::kResourceExhausted;
    case StatusCode::kInternal: return WireCode::kInternal;
    case StatusCode::kInFlight: break;  // non-terminal: never on the wire
  }
  return WireCode::kInternal;
}

bool status_from_wire_code(std::uint16_t wire, StatusCode* out) {
  switch (static_cast<WireCode>(wire)) {
    case WireCode::kOk: *out = StatusCode::kOk; return true;
    case WireCode::kInvalidArgument:
      *out = StatusCode::kInvalidArgument;
      return true;
    case WireCode::kDeadlineExceeded:
      *out = StatusCode::kDeadlineExceeded;
      return true;
    case WireCode::kUnavailable: *out = StatusCode::kUnavailable; return true;
    case WireCode::kResourceExhausted:
      *out = StatusCode::kResourceExhausted;
      return true;
    case WireCode::kInternal: *out = StatusCode::kInternal; return true;
  }
  return false;
}

const char* wire_code_name(WireCode c) {
  StatusCode sc;
  if (!status_from_wire_code(static_cast<std::uint16_t>(c), &sc)) return "?";
  return status_code_name(sc);
}

DecodeResult peek_frame_type(const std::uint8_t* data, std::size_t len,
                             std::uint16_t* type, std::string* error) {
  if (len < 8) return DecodeResult::kNeedMore;
  if (load_u32(data) != kWireMagic) {
    *error = "bad magic (not a PLTW frame)";
    return DecodeResult::kError;
  }
  const std::uint16_t version = load_u16(data + 4);
  if (version != kWireVersion) {
    *error = "wire version mismatch: got " + std::to_string(version) +
             ", want " + std::to_string(kWireVersion);
    return DecodeResult::kError;
  }
  *type = load_u16(data + 6);
  return DecodeResult::kOk;
}

void encode_request(const RequestFrame& f, std::vector<std::uint8_t>* out) {
  const std::size_t payload_bytes = f.payload.size() * 4;
  out->reserve(out->size() + kRequestHeaderBytes + f.name.size() +
               payload_bytes);
  store_u32(out, kWireMagic);
  store_u16(out, kWireVersion);
  store_u16(out, kFrameRequest);
  store_u64(out, f.request_id);
  store_u64(out, f.tenant_id);
  store_u16(out, f.cls);
  store_u16(out, static_cast<std::uint16_t>(f.name.size()));
  store_u32(out, static_cast<std::uint32_t>(payload_bytes));
  store_u64(out, static_cast<std::uint64_t>(f.deadline_usecs));
  out->insert(out->end(), f.name.begin(), f.name.end());
  store_f32_payload(out, f.payload);
}

void encode_response(const ResponseFrame& f, std::vector<std::uint8_t>* out) {
  const std::size_t payload_bytes = f.payload.size() * 4;
  out->reserve(out->size() + kResponseHeaderBytes + f.message.size() +
               payload_bytes);
  store_u32(out, kWireMagic);
  store_u16(out, kWireVersion);
  store_u16(out, kFrameResponse);
  store_u64(out, f.request_id);
  store_u16(out, static_cast<std::uint16_t>(f.code));
  store_u16(out, static_cast<std::uint16_t>(f.message.size()));
  store_u32(out, static_cast<std::uint32_t>(payload_bytes));
  out->insert(out->end(), f.message.begin(), f.message.end());
  store_f32_payload(out, f.payload);
}

void encode_health_request(const HealthFrame& f,
                           std::vector<std::uint8_t>* out) {
  out->reserve(out->size() + kHealthRequestBytes);
  store_u32(out, kWireMagic);
  store_u16(out, kWireVersion);
  store_u16(out, kFrameHealth);
  store_u64(out, f.request_id);
}

void encode_health_response(const HealthResponseFrame& f,
                            std::vector<std::uint8_t>* out) {
  const std::size_t n_shards = std::min<std::size_t>(f.shards.size(), 255);
  out->reserve(out->size() + kHealthResponseHeaderBytes + kHealthCounterBytes +
               n_shards * kHealthShardRecordBytes);
  store_u32(out, kWireMagic);
  store_u16(out, kWireVersion);
  store_u16(out, kFrameHealthResponse);
  store_u64(out, f.request_id);
  out->push_back(f.draining ? 1 : 0);
  out->push_back(static_cast<std::uint8_t>(n_shards));
  for (int i = 0; i < 6; ++i) out->push_back(0);  // reserved
  store_u64(out, f.submitted);
  store_u64(out, f.completed);
  store_u64(out, f.failed);
  store_u64(out, f.expired);
  store_u64(out, f.shed);
  store_u64(out, f.rejected);
  for (std::size_t i = 0; i < n_shards; ++i) {
    const ShardHealth& sh = f.shards[i];
    store_u32(out, sh.queue_depth);
    std::uint32_t flags = sh.quarantined ? 1u : 0u;
    flags |= (static_cast<std::uint32_t>(sh.overload_level) & 0x3u) << 1;
    store_u32(out, flags);
    store_u64(out, sh.heartbeat);
  }
}

DecodeResult decode_health_request(const std::uint8_t* data, std::size_t len,
                                   HealthFrame* out, std::size_t* consumed,
                                   std::string* error) {
  if (len < kHealthRequestBytes) return DecodeResult::kNeedMore;
  const DecodeResult pre = check_prefix(data, kFrameHealth, error);
  if (pre != DecodeResult::kOk) return pre;
  out->request_id = load_u64(data + 8);
  *consumed = kHealthRequestBytes;
  return DecodeResult::kOk;
}

DecodeResult decode_health_response(const std::uint8_t* data, std::size_t len,
                                    HealthResponseFrame* out,
                                    std::size_t* consumed,
                                    std::string* error) {
  if (len < kHealthResponseHeaderBytes) return DecodeResult::kNeedMore;
  const DecodeResult pre = check_prefix(data, kFrameHealthResponse, error);
  if (pre != DecodeResult::kOk) return pre;
  // shard_count is a u8, so the frame size is bounded by construction —
  // no adversarial length to cap here.
  const std::size_t n_shards = data[17];
  const std::size_t total = kHealthResponseHeaderBytes + kHealthCounterBytes +
                            n_shards * kHealthShardRecordBytes;
  if (len < total) return DecodeResult::kNeedMore;
  out->request_id = load_u64(data + 8);
  out->draining = data[16] != 0;
  const std::uint8_t* c = data + kHealthResponseHeaderBytes;
  out->submitted = load_u64(c);
  out->completed = load_u64(c + 8);
  out->failed = load_u64(c + 16);
  out->expired = load_u64(c + 24);
  out->shed = load_u64(c + 32);
  out->rejected = load_u64(c + 40);
  out->shards.resize(n_shards);
  const std::uint8_t* rec = c + kHealthCounterBytes;
  for (std::size_t i = 0; i < n_shards; ++i, rec += kHealthShardRecordBytes) {
    ShardHealth& sh = out->shards[i];
    sh.queue_depth = load_u32(rec);
    const std::uint32_t flags = load_u32(rec + 4);
    sh.quarantined = (flags & 1u) != 0;
    sh.overload_level = static_cast<int>((flags >> 1) & 0x3u);
    sh.heartbeat = load_u64(rec + 8);
  }
  *consumed = total;
  return DecodeResult::kOk;
}

DecodeResult decode_request(const std::uint8_t* data, std::size_t len,
                            RequestFrame* out, std::size_t* consumed,
                            std::string* error) {
  if (len < kRequestHeaderBytes) return DecodeResult::kNeedMore;
  const DecodeResult pre = check_prefix(data, kFrameRequest, error);
  if (pre != DecodeResult::kOk) return pre;
  // Every length is validated against its cap BEFORE any allocation — an
  // oversized prefix is rejected from the header bytes alone.
  const std::size_t name_len = load_u16(data + 26);
  const std::size_t payload_len = load_u32(data + 28);
  if (name_len == 0 || name_len > kMaxNameLen) {
    *error = "request name length " + std::to_string(name_len) +
             " outside [1, " + std::to_string(kMaxNameLen) + "]";
    return DecodeResult::kError;
  }
  if (payload_len > kMaxPayloadBytes) {
    *error = "request payload length " + std::to_string(payload_len) +
             " exceeds cap " + std::to_string(kMaxPayloadBytes);
    return DecodeResult::kError;
  }
  if (payload_len % 4 != 0) {
    *error = "request payload length " + std::to_string(payload_len) +
             " is not a multiple of 4 (float32 payload)";
    return DecodeResult::kError;
  }
  const std::size_t total = kRequestHeaderBytes + name_len + payload_len;
  if (len < total) return DecodeResult::kNeedMore;
  out->request_id = load_u64(data + 8);
  out->tenant_id = load_u64(data + 16);
  out->cls = load_u16(data + 24);
  out->deadline_usecs = static_cast<std::int64_t>(load_u64(data + 32));
  out->name.assign(reinterpret_cast<const char*>(data + kRequestHeaderBytes),
                   name_len);
  load_f32_payload(data + kRequestHeaderBytes + name_len, payload_len / 4,
                   &out->payload);
  *consumed = total;
  return DecodeResult::kOk;
}

DecodeResult decode_response(const std::uint8_t* data, std::size_t len,
                             ResponseFrame* out, std::size_t* consumed,
                             std::string* error) {
  if (len < kResponseHeaderBytes) return DecodeResult::kNeedMore;
  const DecodeResult pre = check_prefix(data, kFrameResponse, error);
  if (pre != DecodeResult::kOk) return pre;
  const std::uint16_t wire = load_u16(data + 16);
  StatusCode code;
  if (!status_from_wire_code(wire, &code)) {
    *error = "unknown wire status code " + std::to_string(wire);
    return DecodeResult::kError;
  }
  const std::size_t msg_len = load_u16(data + 18);
  const std::size_t payload_len = load_u32(data + 20);
  if (msg_len > kMaxMessageLen) {
    *error = "response message length " + std::to_string(msg_len) +
             " exceeds cap " + std::to_string(kMaxMessageLen);
    return DecodeResult::kError;
  }
  if (payload_len > kMaxPayloadBytes) {
    *error = "response payload length " + std::to_string(payload_len) +
             " exceeds cap " + std::to_string(kMaxPayloadBytes);
    return DecodeResult::kError;
  }
  if (payload_len % 4 != 0) {
    *error = "response payload length " + std::to_string(payload_len) +
             " is not a multiple of 4 (float32 payload)";
    return DecodeResult::kError;
  }
  const std::size_t total = kResponseHeaderBytes + msg_len + payload_len;
  if (len < total) return DecodeResult::kNeedMore;
  out->request_id = load_u64(data + 8);
  out->code = static_cast<WireCode>(wire);
  out->message.assign(
      reinterpret_cast<const char*>(data + kResponseHeaderBytes), msg_len);
  load_f32_payload(data + kResponseHeaderBytes + msg_len, payload_len / 4,
                   &out->payload);
  *consumed = total;
  return DecodeResult::kOk;
}

}  // namespace plt::net
