// Binary wire protocol for the network front-end: length-prefixed request/
// response frames with explicit little-endian field encoding — no protobuf,
// no host-endianness assumptions baked into the byte stream.
//
// Frame layouts (all multi-byte fields little-endian):
//
//   request (header 40 bytes, then name, then payload):
//     [ 0..3 ]  u32  magic            0x57544C50 ("PLTW")
//     [ 4..5 ]  u16  version          kWireVersion
//     [ 6..7 ]  u16  type             1 = request
//     [ 8..15]  u64  request_id       echoed verbatim in the response
//     [16..23]  u64  tenant_id        quota bucket key
//     [24..25]  u16  class            0 latency | 1 throughput | 2 default
//     [26..27]  u16  name_len         session name bytes (<= kMaxNameLen)
//     [28..31]  u32  payload_len      input bytes (<= kMaxPayloadBytes,
//                                     multiple of 4 — float32 payload)
//     [32..39]  i64  deadline_usecs   -1 server default | 0 none | > 0 rel.
//
//   response (header 24 bytes, then message, then payload):
//     [ 0..3 ]  u32  magic
//     [ 4..5 ]  u16  version
//     [ 6..7 ]  u16  type             2 = response
//     [ 8..15]  u64  request_id
//     [16..17]  u16  wire status code (WireCode — 1:1 with plt::StatusCode)
//     [18..19]  u16  msg_len          UTF-8 status detail (<= kMaxMessageLen)
//     [20..23]  u32  payload_len      output bytes (0 on any non-OK status)
//
// Decoding is incremental: decode_request/decode_response return kNeedMore
// until a full frame is buffered, and validate every length field BEFORE
// allocating for it — an adversarial 4 GB length prefix is rejected from the
// 40 header bytes alone, it never reserves memory.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.hpp"

namespace plt::net {

inline constexpr std::uint32_t kWireMagic = 0x57544C50u;  // "PLTW"
inline constexpr std::uint16_t kWireVersion = 1;
inline constexpr std::uint16_t kFrameRequest = 1;
inline constexpr std::uint16_t kFrameResponse = 2;

inline constexpr std::size_t kRequestHeaderBytes = 40;
inline constexpr std::size_t kResponseHeaderBytes = 24;
inline constexpr std::size_t kMaxNameLen = 256;
inline constexpr std::size_t kMaxMessageLen = 1024;
// Upper bound on a frame's tensor payload. Large enough for every model the
// serving layer hosts (a 4 MB activation is already generous), small enough
// that a corrupt or hostile length prefix cannot balloon the read buffer.
inline constexpr std::size_t kMaxPayloadBytes = std::size_t{64} << 20;

// Wire status codes: the 1:1 image of plt::StatusCode's terminal codes. The
// numbering matches StatusCode on purpose, but the mapping goes through
// wire_code_from_status/status_from_wire_code so the coupling is explicit
// and round-trip-tested, never an implicit cast.
enum class WireCode : std::uint16_t {
  kOk = 0,
  kInvalidArgument = 1,
  kDeadlineExceeded = 2,
  kUnavailable = 3,
  kResourceExhausted = 4,
  kInternal = 5,
};

// Terminal StatusCode -> wire code. kInFlight is non-terminal and never
// crosses the wire; mapping it is a server bug reported as kInternal.
WireCode wire_code_from_status(StatusCode c);

// Wire code -> StatusCode. Returns false (and leaves *out untouched) for a
// value outside the WireCode range — a corrupt or future-version response.
bool status_from_wire_code(std::uint16_t wire, StatusCode* out);

const char* wire_code_name(WireCode c);

struct RequestFrame {
  std::uint64_t request_id = 0;
  std::uint64_t tenant_id = 0;
  std::uint16_t cls = 2;  // RequestClass numbering; 2 = session default
  std::int64_t deadline_usecs = -1;
  std::string name;            // session/model name
  std::vector<float> payload;  // input tensor, row-major float32
};

struct ResponseFrame {
  std::uint64_t request_id = 0;
  WireCode code = WireCode::kOk;
  std::string message;         // status detail, empty on OK
  std::vector<float> payload;  // output tensor, empty on any non-OK status
};

// Appends one encoded frame to *out (callers batch multiple frames into one
// buffer for pipelined writes).
void encode_request(const RequestFrame& f, std::vector<std::uint8_t>* out);
void encode_response(const ResponseFrame& f, std::vector<std::uint8_t>* out);

enum class DecodeResult {
  kNeedMore,  // buffer holds a valid prefix of a frame; read more bytes
  kOk,        // one frame decoded; *consumed bytes were used
  kError,     // malformed frame (bad magic/version/type/length); *error set.
              // The stream is desynchronized — the connection must close.
};

// Decodes one frame from [data, data+len). On kOk, *out is filled and
// *consumed is the frame's full byte size; on kError, *error names the
// violation and the frame must not be retried.
DecodeResult decode_request(const std::uint8_t* data, std::size_t len,
                            RequestFrame* out, std::size_t* consumed,
                            std::string* error);
DecodeResult decode_response(const std::uint8_t* data, std::size_t len,
                             ResponseFrame* out, std::size_t* consumed,
                             std::string* error);

}  // namespace plt::net
