// Binary wire protocol for the network front-end: length-prefixed request/
// response frames with explicit little-endian field encoding — no protobuf,
// no host-endianness assumptions baked into the byte stream.
//
// Frame layouts (all multi-byte fields little-endian):
//
//   request (header 40 bytes, then name, then payload):
//     [ 0..3 ]  u32  magic            0x57544C50 ("PLTW")
//     [ 4..5 ]  u16  version          kWireVersion
//     [ 6..7 ]  u16  type             1 = request
//     [ 8..15]  u64  request_id       echoed verbatim in the response
//     [16..23]  u64  tenant_id        quota bucket key
//     [24..25]  u16  class            0 latency | 1 throughput | 2 default
//     [26..27]  u16  name_len         session name bytes (<= kMaxNameLen)
//     [28..31]  u32  payload_len      input bytes (<= kMaxPayloadBytes,
//                                     multiple of 4 — float32 payload)
//     [32..39]  i64  deadline_usecs   -1 server default | 0 none | > 0 rel.
//
//   response (header 24 bytes, then message, then payload):
//     [ 0..3 ]  u32  magic
//     [ 4..5 ]  u16  version
//     [ 6..7 ]  u16  type             2 = response
//     [ 8..15]  u64  request_id
//     [16..17]  u16  wire status code (WireCode — 1:1 with plt::StatusCode)
//     [18..19]  u16  msg_len          UTF-8 status detail (<= kMaxMessageLen)
//     [20..23]  u32  payload_len      output bytes (0 on any non-OK status)
//
//   health request (16 bytes, header only — version 2):
//     [ 0..3 ]  u32  magic
//     [ 4..5 ]  u16  version
//     [ 6..7 ]  u16  type             3 = health probe
//     [ 8..15]  u64  request_id       echoed in the health response
//
//   health response (header 24 bytes, then 6 u64 terminal counters, then
//   shard_count 16-byte shard records — version 2):
//     [ 0..3 ]  u32  magic
//     [ 4..5 ]  u16  version
//     [ 6..7 ]  u16  type             4 = health response
//     [ 8..15]  u64  request_id
//     [16]      u8   draining         1 once Server::begin_drain() ran
//     [17]      u8   shard_count      shard records that follow the counters
//     [18..23]       reserved (zero)
//     counters: submitted, completed, failed, expired, shed, rejected (u64
//     each — the PR 6 terminal-accounting sextuple)
//     per shard: u32 queue_depth, u32 flags (bit 0 quarantined, bits 1-2
//     overload level), u64 heartbeat
//
// Decoding is incremental: the decode_* functions return kNeedMore until a
// full frame is buffered, and validate every length field BEFORE allocating
// for it — an adversarial 4 GB length prefix is rejected from the header
// bytes alone, it never reserves memory. Streams that multiplex frame types
// (the server reads requests and health probes on one socket) peek the type
// with peek_frame_type and dispatch to the matching decoder.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.hpp"

namespace plt::net {

inline constexpr std::uint32_t kWireMagic = 0x57544C50u;  // "PLTW"
// Version 2 added the health/drain surface (frame types 3 and 4). A v1 peer
// is rejected at check_prefix — the handshake-free protocol relies on
// version equality, and status_from_wire_code already rejects unknown codes.
inline constexpr std::uint16_t kWireVersion = 2;
inline constexpr std::uint16_t kFrameRequest = 1;
inline constexpr std::uint16_t kFrameResponse = 2;
inline constexpr std::uint16_t kFrameHealth = 3;
inline constexpr std::uint16_t kFrameHealthResponse = 4;

inline constexpr std::size_t kRequestHeaderBytes = 40;
inline constexpr std::size_t kResponseHeaderBytes = 24;
inline constexpr std::size_t kHealthRequestBytes = 16;
inline constexpr std::size_t kHealthResponseHeaderBytes = 24;
inline constexpr std::size_t kHealthCounterBytes = 6 * 8;
inline constexpr std::size_t kHealthShardRecordBytes = 16;
inline constexpr std::size_t kMaxNameLen = 256;
inline constexpr std::size_t kMaxMessageLen = 1024;
// Upper bound on a frame's tensor payload. Large enough for every model the
// serving layer hosts (a 4 MB activation is already generous), small enough
// that a corrupt or hostile length prefix cannot balloon the read buffer.
inline constexpr std::size_t kMaxPayloadBytes = std::size_t{64} << 20;

// Wire status codes: the 1:1 image of plt::StatusCode's terminal codes. The
// numbering matches StatusCode on purpose, but the mapping goes through
// wire_code_from_status/status_from_wire_code so the coupling is explicit
// and round-trip-tested, never an implicit cast.
enum class WireCode : std::uint16_t {
  kOk = 0,
  kInvalidArgument = 1,
  kDeadlineExceeded = 2,
  kUnavailable = 3,
  kResourceExhausted = 4,
  kInternal = 5,
};

// Terminal StatusCode -> wire code. kInFlight is non-terminal and never
// crosses the wire; mapping it is a server bug reported as kInternal.
WireCode wire_code_from_status(StatusCode c);

// Wire code -> StatusCode. Returns false (and leaves *out untouched) for a
// value outside the WireCode range — a corrupt or future-version response.
bool status_from_wire_code(std::uint16_t wire, StatusCode* out);

const char* wire_code_name(WireCode c);

struct RequestFrame {
  std::uint64_t request_id = 0;
  std::uint64_t tenant_id = 0;
  std::uint16_t cls = 2;  // RequestClass numbering; 2 = session default
  std::int64_t deadline_usecs = -1;
  std::string name;            // session/model name
  std::vector<float> payload;  // input tensor, row-major float32
};

struct ResponseFrame {
  std::uint64_t request_id = 0;
  WireCode code = WireCode::kOk;
  std::string message;         // status detail, empty on OK
  std::vector<float> payload;  // output tensor, empty on any non-OK status
};

// Health probe (type 3): header-only, the id is echoed in the response.
struct HealthFrame {
  std::uint64_t request_id = 0;
};

// Per-shard liveness record inside a health response.
struct ShardHealth {
  std::uint32_t queue_depth = 0;  // admission queue + published pending
  bool quarantined = false;
  int overload_level = 0;         // 0 normal / 1 brownout / 2 shedding
  std::uint64_t heartbeat = 0;    // dispatcher loop epoch
};

// Health response (type 4): the server's drain flag, the scheduler's
// terminal-accounting counters, and one record per shard.
struct HealthResponseFrame {
  std::uint64_t request_id = 0;
  bool draining = false;
  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;
  std::uint64_t failed = 0;
  std::uint64_t expired = 0;
  std::uint64_t shed = 0;
  std::uint64_t rejected = 0;
  std::vector<ShardHealth> shards;  // <= 255 records (u8 count on the wire)
};

// Appends one encoded frame to *out (callers batch multiple frames into one
// buffer for pipelined writes).
void encode_request(const RequestFrame& f, std::vector<std::uint8_t>* out);
void encode_response(const ResponseFrame& f, std::vector<std::uint8_t>* out);
void encode_health_request(const HealthFrame& f,
                           std::vector<std::uint8_t>* out);
void encode_health_response(const HealthResponseFrame& f,
                            std::vector<std::uint8_t>* out);

enum class DecodeResult {
  kNeedMore,  // buffer holds a valid prefix of a frame; read more bytes
  kOk,        // one frame decoded; *consumed bytes were used
  kError,     // malformed frame (bad magic/version/type/length); *error set.
              // The stream is desynchronized — the connection must close.
};

// Decodes one frame from [data, data+len). On kOk, *out is filled and
// *consumed is the frame's full byte size; on kError, *error names the
// violation and the frame must not be retried.
DecodeResult decode_request(const std::uint8_t* data, std::size_t len,
                            RequestFrame* out, std::size_t* consumed,
                            std::string* error);
DecodeResult decode_response(const std::uint8_t* data, std::size_t len,
                             ResponseFrame* out, std::size_t* consumed,
                             std::string* error);
DecodeResult decode_health_request(const std::uint8_t* data, std::size_t len,
                                   HealthFrame* out, std::size_t* consumed,
                                   std::string* error);
DecodeResult decode_health_response(const std::uint8_t* data, std::size_t len,
                                    HealthResponseFrame* out,
                                    std::size_t* consumed, std::string* error);

// Validates the 8-byte prefix (magic + version) and reports the frame type,
// for streams that multiplex frame kinds on one socket. kNeedMore below 8
// buffered bytes; kError on a foreign or wrong-version stream.
DecodeResult peek_frame_type(const std::uint8_t* data, std::size_t len,
                             std::uint16_t* type, std::string* error);

}  // namespace plt::net
