#include "net/client.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace plt::net {

Status Client::connect(const std::string& host, int port) {
  close();
  fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd_ < 0) {
    return Status::Unavailable(std::string("socket: ") + std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    close();
    return Status::InvalidArgument("not an IPv4 address: " + host);
  }
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    const Status st = Status::Unavailable(std::string("connect ") + host + ":" +
                                          std::to_string(port) + ": " +
                                          std::strerror(errno));
    close();
    return st;
  }
  return Status::Ok();
}

void Client::close() {
  if (fd_ >= 0) ::close(fd_);
  fd_ = -1;
  read_buf_.clear();
}

Status Client::send_request(const RequestFrame& req) {
  if (fd_ < 0) return Status::Unavailable("client not connected");
  std::vector<std::uint8_t> bytes;
  encode_request(req, &bytes);
  std::size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n =
        ::send(fd_, bytes.data() + off, bytes.size() - off, MSG_NOSIGNAL);
    if (n > 0) {
      off += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    const Status st =
        Status::Unavailable(std::string("send: ") + std::strerror(errno));
    close();
    return st;
  }
  return Status::Ok();
}

Status Client::recv_response(ResponseFrame* resp) {
  if (fd_ < 0) return Status::Unavailable("client not connected");
  while (true) {
    // Try to decode before reading: pipelined responses often arrive several
    // to a recv, and the leftover bytes of the previous decode may already
    // hold a complete frame.
    if (!read_buf_.empty()) {
      std::size_t consumed = 0;
      std::string error;
      const DecodeResult res = decode_response(
          read_buf_.data(), read_buf_.size(), resp, &consumed, &error);
      if (res == DecodeResult::kOk) {
        read_buf_.erase(read_buf_.begin(),
                        read_buf_.begin() + static_cast<std::ptrdiff_t>(consumed));
        return Status::Ok();
      }
      if (res == DecodeResult::kError) {
        close();  // stream desynchronized
        return Status::InvalidArgument("malformed response: " + error);
      }
    }
    std::uint8_t chunk[64 * 1024];
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n > 0) {
      read_buf_.insert(read_buf_.end(), chunk, chunk + n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    const Status st = n == 0 ? Status::Unavailable("connection closed by server")
                             : Status::Unavailable(std::string("recv: ") +
                                                   std::strerror(errno));
    close();
    return st;
  }
}

Status Client::call(const RequestFrame& req, ResponseFrame* resp) {
  Status st = send_request(req);
  if (!st.ok()) return st;
  return recv_response(resp);
}

}  // namespace plt::net
