#include "net/client.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <thread>

#include "common/env.hpp"

namespace plt::net {

namespace {
// splitmix64 finalizer: the deterministic jitter source. Seeded from
// (request_id, attempt) so two clients retrying the same incident spread
// out, while a test replaying the same ids sees the same schedule.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}
}  // namespace

ClientConfig ClientConfig::from_env() {
  const ClientConfig def;
  ClientConfig c;
  c.timeout_usecs = common::env_int("PLT_NET_CLIENT_TIMEOUT_USECS",
                                    def.timeout_usecs, 0, 600000000);
  c.max_retries = static_cast<int>(
      common::env_int("PLT_NET_CLIENT_RETRIES", def.max_retries, 0, 100));
  c.backoff_usecs = common::env_int("PLT_NET_CLIENT_BACKOFF_USECS",
                                    def.backoff_usecs, 0, 60000000);
  c.breaker_fails = static_cast<int>(common::env_int(
      "PLT_NET_CLIENT_BREAKER_FAILS", def.breaker_fails, 0, 1000000));
  c.breaker_cooldown_usecs = common::env_int(
      "PLT_NET_CLIENT_BREAKER_USECS", def.breaker_cooldown_usecs, 0,
      600000000);
  return c;
}

void Client::apply_timeouts() {
  if (cfg_.timeout_usecs <= 0 || fd_ < 0) return;
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(cfg_.timeout_usecs / 1000000);
  tv.tv_usec = static_cast<suseconds_t>(cfg_.timeout_usecs % 1000000);
  ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  ::setsockopt(fd_, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
}

Status Client::connect(const std::string& host, int port) {
  close();
  host_ = host;
  port_ = port;
  fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd_ < 0) {
    return Status::Unavailable(std::string("socket: ") + std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  apply_timeouts();  // SO_SNDTIMEO also bounds the blocking connect below
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    close();
    return Status::InvalidArgument("not an IPv4 address: " + host);
  }
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    const Status st = Status::Unavailable(std::string("connect ") + host + ":" +
                                          std::to_string(port) + ": " +
                                          std::strerror(errno));
    close();
    record_transport(false);
    return st;
  }
  return Status::Ok();
}

void Client::close() {
  if (fd_ >= 0) ::close(fd_);
  fd_ = -1;
  read_buf_.clear();
}

Status Client::send_all(const std::vector<std::uint8_t>& bytes) {
  if (fd_ < 0) return Status::Unavailable("client not connected");
  std::size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n =
        ::send(fd_, bytes.data() + off, bytes.size() - off, MSG_NOSIGNAL);
    if (n > 0) {
      off += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      // SO_SNDTIMEO expired: the peer stopped draining its receive window.
      // A half-sent frame is unrecoverable — close.
      close();
      return Status::DeadlineExceeded("send timed out");
    }
    const Status st =
        Status::Unavailable(std::string("send: ") + std::strerror(errno));
    close();
    return st;
  }
  return Status::Ok();
}

Status Client::recv_some() {
  std::uint8_t chunk[64 * 1024];
  while (true) {
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n > 0) {
      read_buf_.insert(read_buf_.end(), chunk, chunk + n);
      return Status::Ok();
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      // SO_RCVTIMEO expired: a dead or wedged peer no longer blocks the
      // caller forever. The stream may hold a torn frame — close.
      close();
      return Status::DeadlineExceeded("recv timed out");
    }
    const Status st = n == 0
                          ? Status::Unavailable("connection closed by server")
                          : Status::Unavailable(std::string("recv: ") +
                                                std::strerror(errno));
    close();
    return st;
  }
}

Status Client::send_request(const RequestFrame& req) {
  std::vector<std::uint8_t> bytes;
  encode_request(req, &bytes);
  return send_all(bytes);
}

Status Client::recv_response(ResponseFrame* resp) {
  if (fd_ < 0) return Status::Unavailable("client not connected");
  while (true) {
    // Try to decode before reading: pipelined responses often arrive several
    // to a recv, and the leftover bytes of the previous decode may already
    // hold a complete frame.
    if (!read_buf_.empty()) {
      std::size_t consumed = 0;
      std::string error;
      const DecodeResult res = decode_response(
          read_buf_.data(), read_buf_.size(), resp, &consumed, &error);
      if (res == DecodeResult::kOk) {
        read_buf_.erase(
            read_buf_.begin(),
            read_buf_.begin() + static_cast<std::ptrdiff_t>(consumed));
        return Status::Ok();
      }
      if (res == DecodeResult::kError) {
        close();  // stream desynchronized
        return Status::InvalidArgument("malformed response: " + error);
      }
    }
    const Status st = recv_some();
    if (!st.ok()) return st;
  }
}

Status Client::health(HealthResponseFrame* out, std::uint64_t request_id) {
  if (fd_ < 0) return Status::Unavailable("client not connected");
  HealthFrame probe;
  probe.request_id = request_id;
  std::vector<std::uint8_t> bytes;
  encode_health_request(probe, &bytes);
  Status st = send_all(bytes);
  if (!st.ok()) return st;
  while (true) {
    if (!read_buf_.empty()) {
      std::uint16_t type = 0;
      std::string error;
      const DecodeResult peek =
          peek_frame_type(read_buf_.data(), read_buf_.size(), &type, &error);
      if (peek == DecodeResult::kError) {
        close();
        return Status::InvalidArgument("malformed response: " + error);
      }
      if (peek == DecodeResult::kOk) {
        if (type != kFrameHealthResponse) {
          close();
          return Status::Internal(
              "unexpected frame type " + std::to_string(type) +
              " while awaiting health response (do not interleave health "
              "probes with pipelined calls)");
        }
        std::size_t consumed = 0;
        const DecodeResult res = decode_health_response(
            read_buf_.data(), read_buf_.size(), out, &consumed, &error);
        if (res == DecodeResult::kOk) {
          read_buf_.erase(
              read_buf_.begin(),
              read_buf_.begin() + static_cast<std::ptrdiff_t>(consumed));
          return Status::Ok();
        }
        if (res == DecodeResult::kError) {
          close();
          return Status::InvalidArgument("malformed response: " + error);
        }
      }
    }
    st = recv_some();
    if (!st.ok()) return st;
  }
}

Status Client::breaker_admit() {
  if (cfg_.breaker_fails <= 0 || !open_) return Status::Ok();
  if (std::chrono::steady_clock::now() < open_until_) {
    return Status::Unavailable("circuit breaker open");
  }
  return Status::Ok();  // half-open: let one probe through
}

void Client::record_transport(bool ok) {
  if (ok) {
    consecutive_fails_ = 0;
    open_ = false;
    return;
  }
  ++consecutive_fails_;
  if (cfg_.breaker_fails <= 0 || consecutive_fails_ < cfg_.breaker_fails) {
    return;
  }
  if (!open_) {
    open_ = true;
    ++breaker_trips_;
  }
  // A failed half-open probe lands here too: the cooldown re-arms without
  // counting a fresh trip (it is the same incident).
  open_until_ = std::chrono::steady_clock::now() +
                std::chrono::microseconds(cfg_.breaker_cooldown_usecs);
}

bool Client::breaker_open() const { return open_; }

Status Client::call_once(const RequestFrame& req, ResponseFrame* resp) {
  const Status adm = breaker_admit();
  if (!adm.ok()) return adm;  // fail-fast: no socket touch, no fail count
  Status st = send_request(req);
  if (st.ok()) st = recv_response(resp);
  // The breaker watches the TRANSPORT only: a well-formed server refusal
  // (shed, draining, over quota) proves the peer alive and must not open
  // the circuit.
  record_transport(st.ok());
  return st;
}

Status Client::call(const RequestFrame& req, ResponseFrame* resp) {
  Status st = call_once(req, resp);
  for (int attempt = 0; attempt < cfg_.max_retries; ++attempt) {
    const bool transport_retry =
        !st.ok() && st.code() == StatusCode::kUnavailable;
    const bool server_retry =
        st.ok() && (resp->code == WireCode::kUnavailable ||
                    resp->code == WireCode::kResourceExhausted);
    if (!transport_retry && !server_retry) break;
    ++retries_;
    if (cfg_.backoff_usecs > 0) {
      const std::int64_t base = cfg_.backoff_usecs
                                << std::min(attempt, 20);
      const std::uint64_t j = mix64(req.request_id * 1315423911ull +
                                    static_cast<std::uint64_t>(attempt));
      const double factor =
          0.5 + static_cast<double>(j & 1023) / 1024.0;  // [0.5, 1.5)
      std::this_thread::sleep_for(std::chrono::microseconds(
          static_cast<std::int64_t>(static_cast<double>(base) * factor)));
    }
    if (!connected()) {
      const Status cst = connect(host_, port_);
      if (!cst.ok()) {
        st = cst;
        continue;
      }
    }
    // Same request_id on purpose: requests are idempotent by id and the
    // server dedups a replay of one it still owns.
    st = call_once(req, resp);
  }
  return st;
}

}  // namespace plt::net
