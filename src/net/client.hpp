// Blocking wire-protocol client: the counterpart of net::Server used by the
// tests, the serve_net_demo example and the bench_net loadgen.
//
// Two usage shapes:
//   * call(req, &resp)            — one synchronous round trip.
//   * send_request / recv_response — pipelining: keep N requests in flight
//     on one connection; responses come back in completion order and carry
//     the request_id you sent, so the caller correlates by id, not order.
//
// The client is deliberately dumb: blocking socket, full-frame reads via the
// incremental wire decoder, no retries, no timeouts beyond the socket's.
// Error handling is Status-first — a torn connection or malformed response
// is kUnavailable/kInvalidArgument from the transport, distinct from the
// SERVER's status which arrives inside a well-formed ResponseFrame.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "net/wire.hpp"

namespace plt::net {

class Client {
 public:
  Client() = default;
  ~Client() { close(); }
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  // Blocking TCP connect; kUnavailable on failure. Reconnecting an open
  // client closes the old socket first.
  Status connect(const std::string& host, int port);
  bool connected() const { return fd_ >= 0; }
  void close();

  // One blocking round trip. Transport failures come back as a non-OK
  // Status; the SERVER's verdict is resp->code either way.
  Status call(const RequestFrame& req, ResponseFrame* resp);

  // Pipelined halves of call(). send_request returns once the whole frame
  // is on the socket; recv_response blocks until one full response frame
  // arrives (any request_id).
  Status send_request(const RequestFrame& req);
  Status recv_response(ResponseFrame* resp);

 private:
  int fd_ = -1;
  std::vector<std::uint8_t> read_buf_;  // bytes past the last decoded frame
};

}  // namespace plt::net
