// Wire-protocol client: the counterpart of net::Server used by the tests,
// the serve_net_demo example and the bench_net loadgen.
//
// Two usage shapes:
//   * call(req, &resp)            — one synchronous round trip, hardened:
//     socket timeouts, bounded jittered-backoff retries, circuit breaker.
//   * send_request / recv_response — pipelining: keep N requests in flight
//     on one connection; responses come back in completion order and carry
//     the request_id you sent, so the caller correlates by id, not order.
//     The pipelined halves never retry (a replay would reorder the stream);
//     they only honor the socket timeout.
//
// Hardening (ClientConfig, all knobs env-tunable):
//   * timeouts  — SO_RCVTIMEO/SO_SNDTIMEO from PLT_NET_CLIENT_TIMEOUT_USECS.
//     A dead peer can no longer wedge recv() forever: the timed-out call
//     returns kDeadlineExceeded and closes the connection (after a partial
//     read the byte stream is unrecoverable).
//   * retries   — call() retries kUnavailable / kResourceExhausted (both the
//     transport's verdict and the server's) with jittered exponential
//     backoff, reconnecting first if the connection died, and resends the
//     SAME request_id: requests are idempotent by id, and the server dedups
//     replays of a request it still has in flight. kDeadlineExceeded is NOT
//     retried — the caller's clock, not ours.
//   * breaker   — consecutive TRANSPORT failures (connect/send/recv, not
//     server verdicts) open a per-connection circuit breaker; while open,
//     call() fails fast with kUnavailable("circuit breaker open") instead of
//     hammering a dead peer. After a cooldown one half-open probe is let
//     through; success closes the breaker, failure re-opens it.
//
// Error model stays Status-first: a torn connection or malformed response is
// kUnavailable/kInvalidArgument from the transport, distinct from the
// SERVER's status which arrives inside a well-formed ResponseFrame.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "net/wire.hpp"

namespace plt::net {

struct ClientConfig {
  // PLT_NET_CLIENT_TIMEOUT_USECS: socket send/recv timeout (SO_SNDTIMEO /
  // SO_RCVTIMEO). 0 = block forever (the pre-hardening behavior).
  std::int64_t timeout_usecs = 0;

  // PLT_NET_CLIENT_RETRIES: max call() retries on kUnavailable /
  // kResourceExhausted. 0 = single attempt, no retry.
  int max_retries = 0;

  // PLT_NET_CLIENT_BACKOFF_USECS: base backoff before retry k; the actual
  // sleep is base * 2^k scaled by a deterministic jitter in [0.5, 1.5)
  // derived from (request_id, k) — reproducible in tests, decorrelated
  // across clients.
  std::int64_t backoff_usecs = 1000;

  // PLT_NET_CLIENT_BREAKER_FAILS: consecutive transport failures that trip
  // the circuit breaker. 0 = breaker disabled.
  int breaker_fails = 0;

  // PLT_NET_CLIENT_BREAKER_USECS: open-state cooldown before the half-open
  // probe is allowed through.
  std::int64_t breaker_cooldown_usecs = 100000;

  // Reads the PLT_NET_CLIENT_* knobs (range-validated; bad values warn and
  // fall back to the defaults above).
  static ClientConfig from_env();
};

class Client {
 public:
  Client() : Client(ClientConfig{}) {}
  explicit Client(ClientConfig cfg) : cfg_(cfg) {}
  ~Client() { close(); }
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  const ClientConfig& config() const { return cfg_; }

  // Blocking TCP connect; kUnavailable on failure. Reconnecting an open
  // client closes the old socket first. Remembers host/port so a retry can
  // re-establish the connection after the peer dropped it.
  Status connect(const std::string& host, int port);
  bool connected() const { return fd_ >= 0; }
  void close();

  // One round trip, with the retry/breaker policy above. Transport failures
  // come back as a non-OK Status; the SERVER's verdict is resp->code either
  // way (a retried-out UNAVAILABLE verdict returns OK with that code).
  Status call(const RequestFrame& req, ResponseFrame* resp);

  // Pipelined halves of call(). send_request returns once the whole frame
  // is on the socket; recv_response blocks (up to the socket timeout) until
  // one full response frame arrives (any request_id). Never retries.
  Status send_request(const RequestFrame& req);
  Status recv_response(ResponseFrame* resp);

  // Health probe (wire v2): sends a kFrameHealth frame and waits for the
  // matching health response. Not for use interleaved with pipelined call
  // traffic on the same connection — a request response arriving while the
  // probe waits is a caller protocol error (kInternal).
  Status health(HealthResponseFrame* out, std::uint64_t request_id = 0);

  // Observability for tests and loadgens.
  std::uint64_t retries() const { return retries_; }        // retry attempts
  std::uint64_t breaker_trips() const { return breaker_trips_; }
  bool breaker_open() const;

 private:
  // One un-retried round trip through the breaker.
  Status call_once(const RequestFrame& req, ResponseFrame* resp);
  // Breaker bookkeeping around a transport outcome.
  Status breaker_admit();
  void record_transport(bool ok);
  void apply_timeouts();
  // Blocking full-buffer send / single-chunk recv with the timeout ->
  // kDeadlineExceeded mapping (both close the connection on any failure).
  Status send_all(const std::vector<std::uint8_t>& bytes);
  Status recv_some();

  ClientConfig cfg_;
  int fd_ = -1;
  std::vector<std::uint8_t> read_buf_;  // bytes past the last decoded frame
  std::string host_;
  int port_ = 0;

  int consecutive_fails_ = 0;
  bool open_ = false;  // breaker state
  std::chrono::steady_clock::time_point open_until_{};
  std::uint64_t retries_ = 0;
  std::uint64_t breaker_trips_ = 0;
};

}  // namespace plt::net
