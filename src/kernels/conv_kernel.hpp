// Direct convolution kernel (Section III-B, Listing 4): the 7 logical loops
// (minibatch, input-channel blocks, output-channel blocks, output rows,
// output columns, filter rows, filter columns) are declared with PARLOOPER
// and the compute body is an offset-based BRGEMM that folds the
// (channel-block, R, S) reduction into one batch-reduce call.
//
// Layouts (paper Listing 4, channels blocked by bc / bk):
//   I[N][Cb][Hp][Wp][bc]        input, physically padded (Hp = H + 2*pad)
//   W[Kb][Cb][R][S][bc][bk]     weights (bk fastest; bf16 blocks VNNI2)
//   O[N][Kb][P][Q][bk]          output
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/aligned_buffer.hpp"
#include "parlooper/threaded_loop.hpp"
#include "tpp/brgemm.hpp"
#include "tpp/unary.hpp"

namespace plt::kernels {

struct ConvConfig {
  std::int64_t N = 1;            // minibatch
  std::int64_t C = 0, K = 0;     // input / output feature maps
  std::int64_t H = 0, W = 0;     // input spatial (unpadded)
  std::int64_t R = 3, S = 3;     // filter spatial
  std::int64_t stride_h = 1, stride_w = 1;
  std::int64_t pad_h = 0, pad_w = 0;
  std::int64_t bc = 32, bk = 32; // channel block sizes
  std::int64_t w_step = 0;       // output pixels per BRGEMM call (0 => Q)
  std::int64_t c_step = 0;       // channel blocks folded per call (0 => Cb)
  DType dtype = DType::F32;
  // Default: parallel over (minibatch x output-channel) blocks, everything
  // else sequential inside — safe for any schedule.
  std::string loop_spec = "ACdebfg";
  parlooper::Backend backend = parlooper::Backend::kAuto;

  std::int64_t P() const { return (H + 2 * pad_h - R) / stride_h + 1; }
  std::int64_t Q() const { return (W + 2 * pad_w - S) / stride_w + 1; }
  std::int64_t Hp() const { return H + 2 * pad_h; }
  std::int64_t Wp() const { return W + 2 * pad_w; }
  std::int64_t Cb() const { return C / bc; }
  std::int64_t Kb() const { return K / bk; }
};

class ConvKernel {
 public:
  explicit ConvKernel(ConvConfig cfg);

  // Operands in the blocked layouts above.
  void run(const void* input, const void* weights, void* output) const;

  ConvKernel with_spec(const std::string& loop_spec) const;

  const ConvConfig& config() const { return cfg_; }
  double flops() const {
    return 2.0 * static_cast<double>(cfg_.N) * cfg_.K * cfg_.P() * cfg_.Q() *
           cfg_.C * cfg_.R * cfg_.S;
  }

  std::size_t input_elems() const;    // padded blocked input
  std::size_t weight_elems() const;   // blocked (vnni-aware) weights
  std::size_t output_elems() const;

  // NCHW fp32 -> padded blocked input (pad region zeroed).
  void pack_input(const float* nchw, void* blocked) const;
  // KCRS fp32 -> blocked weights.
  void pack_weights(const float* kcrs, void* blocked) const;
  // Blocked output -> NKPQ fp32.
  void unpack_output(const void* blocked, float* nkpq) const;

 private:
  ConvConfig cfg_;
  std::int64_t w_block_elems_ = 0;  // elements per [bc][bk] weight block
  tpp::UnaryTPP zero_tpp_;
  tpp::BrgemmTPP brgemm_tpp_;
  std::vector<std::int64_t> offs_a_, offs_b_;  // (c, r, s) reduction offsets
  std::shared_ptr<const parlooper::LoopNest> loop_;
};

}  // namespace plt::kernels
