#include "kernels/conv_kernel.hpp"

#include <cstring>

#include "common/check.hpp"
#include "tpp/transforms.hpp"

namespace plt::kernels {

ConvKernel::ConvKernel(ConvConfig cfg)
    : cfg_([&] {
        if (cfg.w_step == 0) cfg.w_step = cfg.Q();
        if (cfg.c_step == 0) cfg.c_step = cfg.Cb();
        return cfg;
      }()),
      w_block_elems_(cfg_.dtype == DType::BF16
                         ? tpp::vnni2_elems(cfg_.bk, cfg_.bc)
                         : cfg_.bc * cfg_.bk),
      zero_tpp_(tpp::UnaryKind::kZero, cfg_.bk, cfg_.w_step, cfg_.dtype,
                cfg_.dtype),
      brgemm_tpp_(tpp::BrgemmDesc{
          /*m=*/cfg_.bk, /*n=*/cfg_.w_step, /*k=*/cfg_.bc,
          /*lda=*/cfg_.bk,
          /*ldb=*/cfg_.stride_w * cfg_.bc,
          /*ldc=*/cfg_.bk, cfg_.dtype, cfg_.dtype, cfg_.dtype,
          /*beta=*/1.0f, tpp::BrgemmVariant::kOffset,
          cfg_.dtype == DType::BF16 ? tpp::ALayout::kVnni2
                                    : tpp::ALayout::kFlat,
          0, 0}) {
  PLT_CHECK(cfg_.C % cfg_.bc == 0 && cfg_.K % cfg_.bk == 0,
            "conv: bc|bk must divide C|K");
  PLT_CHECK(cfg_.Q() % cfg_.w_step == 0, "conv: w_step must divide Q");
  PLT_CHECK(cfg_.Cb() % cfg_.c_step == 0, "conv: c_step must divide Cb");
  PLT_CHECK(cfg_.P() > 0 && cfg_.Q() > 0, "conv: empty output");

  // Reduction offsets over (channel block, filter row, filter col), in
  // elements, shared by every body invocation.
  const std::int64_t in_c_stride = cfg_.Hp() * cfg_.Wp() * cfg_.bc;
  const std::int64_t w_c_stride = cfg_.R * cfg_.S * w_block_elems_;
  for (std::int64_t c = 0; c < cfg_.c_step; ++c)
    for (std::int64_t r = 0; r < cfg_.R; ++r)
      for (std::int64_t s = 0; s < cfg_.S; ++s) {
        offs_a_.push_back(c * w_c_stride + (r * cfg_.S + s) * w_block_elems_);
        offs_b_.push_back(c * in_c_stride + r * cfg_.Wp() * cfg_.bc +
                          s * cfg_.bc);
      }

  // Listing 4's seven logical loops (a..g). R and S are folded into the
  // BRGEMM offsets, so their loop extents are single-step here.
  std::vector<parlooper::LoopSpecs> loops = {
      parlooper::LoopSpecs{0, cfg_.N, 1},                 // a: minibatch
      parlooper::LoopSpecs{0, cfg_.Cb(), cfg_.c_step},    // b: C blocks
      parlooper::LoopSpecs{0, cfg_.Kb(), 1},              // c: K blocks
      parlooper::LoopSpecs{0, cfg_.P(), 1},               // d: output rows
      parlooper::LoopSpecs{0, cfg_.Q(), cfg_.w_step},     // e: output cols
      parlooper::LoopSpecs{0, cfg_.R, cfg_.R},            // f: filter rows
      parlooper::LoopSpecs{0, cfg_.S, cfg_.S}};           // g: filter cols
  // Footprints of one (in, ic, ik, ih, iw, ir, is) invocation. The output
  // block is read-modify-written (accumulation over the C-block loop); the
  // weight read covers the c_step reduction blocks folded into the BRGEMM
  // offsets; the input read over-approximates the strided R x S window with
  // one contiguous span per reduction block (sound per the AccessMap
  // contract — reads only matter against writes, and nothing writes input).
  const std::int64_t Cb = cfg_.Cb(), Kb = cfg_.Kb();
  const std::int64_t P = cfg_.P(), Q = cfg_.Q();
  const std::int64_t Hp = cfg_.Hp(), Wp = cfg_.Wp();
  const std::int64_t bc = cfg_.bc, bk = cfg_.bk, w_blk = w_block_elems_;
  parlooper::AccessMap access;
  access
      .add_write("out", {Kb * P * Q * bk, 0, P * Q * bk, Q * bk, bk, 0, 0},
                 cfg_.w_step * bk)
      .add_read("out", {Kb * P * Q * bk, 0, P * Q * bk, Q * bk, bk, 0, 0},
                cfg_.w_step * bk)
      .add_read("weights",
                {0, cfg_.R * cfg_.S * w_blk, Cb * cfg_.R * cfg_.S * w_blk, 0,
                 0, cfg_.S * w_blk, w_blk},
                cfg_.c_step * cfg_.R * cfg_.S * w_blk)
      .add_read("in",
                {Cb * Hp * Wp * bc, Hp * Wp * bc, 0, cfg_.stride_h * Wp * bc,
                 cfg_.stride_w * bc, Wp * bc, bc},
                (cfg_.R - 1) * Wp * bc +
                    ((cfg_.w_step - 1) * cfg_.stride_w + cfg_.S) * bc,
                cfg_.c_step, Hp * Wp * bc);
  loop_ = std::make_shared<const parlooper::LoopNest>(loops, cfg_.loop_spec,
                                                      cfg_.backend, access);
}

ConvKernel ConvKernel::with_spec(const std::string& loop_spec) const {
  ConvConfig c = cfg_;
  c.loop_spec = loop_spec;
  return ConvKernel(c);
}

void ConvKernel::run(const void* input, const void* weights,
                     void* output) const {
  const std::size_t esz = dtype_size(cfg_.dtype);
  const char* ip = static_cast<const char*>(input);
  const char* wp = static_cast<const char*>(weights);
  char* op = static_cast<char*>(output);
  const std::int64_t Cb = cfg_.Cb(), Kb = cfg_.Kb();
  const std::int64_t P = cfg_.P(), Q = cfg_.Q();
  const std::int64_t Hp = cfg_.Hp(), Wp = cfg_.Wp();
  const std::int64_t bc = cfg_.bc, bk = cfg_.bk;
  const std::int64_t brcount =
      static_cast<std::int64_t>(offs_a_.size());
  (void)Kb;

  (*loop_)([&](const std::int64_t* ind) {
    const std::int64_t in = ind[0], ic = ind[1], ik = ind[2];
    const std::int64_t ih = ind[3], iw = ind[4], ir = ind[5], is = ind[6];
    char* o_block =
        op + static_cast<std::size_t>(
                 (((in * cfg_.Kb() + ik) * P + ih) * Q + iw) * bk) * esz;
    if (ic == 0 && ir == 0 && is == 0) zero_tpp_(nullptr, o_block);
    const char* w_base =
        wp + static_cast<std::size_t>(
                 (((ik * Cb + ic) * cfg_.R + ir) * cfg_.S + is) *
                 w_block_elems_) * esz;
    const char* i_base =
        ip + static_cast<std::size_t>(
                 ((in * Cb + ic) * Hp + ih * cfg_.stride_h + ir) * Wp * bc +
                 (iw * cfg_.stride_w + is) * bc) * esz;
    brgemm_tpp_.run_offset(w_base, i_base, o_block, offs_a_.data(),
                           offs_b_.data(), brcount);
  });
}

std::size_t ConvKernel::input_elems() const {
  return static_cast<std::size_t>(cfg_.N * cfg_.Cb() * cfg_.Hp() * cfg_.Wp() *
                                  cfg_.bc);
}
std::size_t ConvKernel::weight_elems() const {
  return static_cast<std::size_t>(cfg_.Kb() * cfg_.Cb() * cfg_.R * cfg_.S *
                                  w_block_elems_);
}
std::size_t ConvKernel::output_elems() const {
  return static_cast<std::size_t>(cfg_.N * cfg_.Kb() * cfg_.P() * cfg_.Q() *
                                  cfg_.bk);
}

void ConvKernel::pack_input(const float* nchw, void* blocked) const {
  const std::size_t esz = dtype_size(cfg_.dtype);
  std::memset(blocked, 0, input_elems() * esz);  // zero fills the padding
  const std::int64_t Hp = cfg_.Hp(), Wp = cfg_.Wp();
  for (std::int64_t n = 0; n < cfg_.N; ++n)
    for (std::int64_t c = 0; c < cfg_.C; ++c)
      for (std::int64_t h = 0; h < cfg_.H; ++h)
        for (std::int64_t w = 0; w < cfg_.W; ++w) {
          const float v =
              nchw[((n * cfg_.C + c) * cfg_.H + h) * cfg_.W + w];
          const std::size_t idx = static_cast<std::size_t>(
              (((n * cfg_.Cb() + c / cfg_.bc) * Hp + h + cfg_.pad_h) * Wp +
               w + cfg_.pad_w) * cfg_.bc + c % cfg_.bc);
          if (cfg_.dtype == DType::F32) {
            static_cast<float*>(blocked)[idx] = v;
          } else {
            static_cast<bf16*>(blocked)[idx] = bf16::from_f32(v);
          }
        }
}

void ConvKernel::pack_weights(const float* kcrs, void* blocked) const {
  const std::int64_t bc = cfg_.bc, bk = cfg_.bk;
  std::vector<float> tile(static_cast<std::size_t>(bk * bc));
  std::vector<bf16> tile16(tile.size());
  for (std::int64_t ik = 0; ik < cfg_.Kb(); ++ik)
    for (std::int64_t ic = 0; ic < cfg_.Cb(); ++ic)
      for (std::int64_t r = 0; r < cfg_.R; ++r)
        for (std::int64_t s = 0; s < cfg_.S; ++s) {
          // Gather the [bc][bk] tile: col-major m=bk (out channels) x k=bc.
          for (std::int64_t cc = 0; cc < bc; ++cc)
            for (std::int64_t kk = 0; kk < bk; ++kk) {
              const std::int64_t ko = ik * bk + kk, co = ic * bc + cc;
              tile[static_cast<std::size_t>(kk + cc * bk)] =
                  kcrs[((ko * cfg_.C + co) * cfg_.R + r) * cfg_.S + s];
            }
          const std::size_t blk =
              static_cast<std::size_t>((((ik * cfg_.Cb() + ic) * cfg_.R + r) *
                                        cfg_.S + s) * w_block_elems_);
          if (cfg_.dtype == DType::F32) {
            std::memcpy(static_cast<float*>(blocked) + blk, tile.data(),
                        tile.size() * sizeof(float));
          } else {
            for (std::size_t i = 0; i < tile.size(); ++i)
              tile16[i] = bf16::from_f32(tile[i]);
            tpp::vnni2_pack(tile16.data(), static_cast<bf16*>(blocked) + blk,
                            bk, bc, bk);
          }
        }
}

void ConvKernel::unpack_output(const void* blocked, float* nkpq) const {
  const std::int64_t P = cfg_.P(), Q = cfg_.Q();
  for (std::int64_t n = 0; n < cfg_.N; ++n)
    for (std::int64_t k = 0; k < cfg_.K; ++k)
      for (std::int64_t p = 0; p < P; ++p)
        for (std::int64_t q = 0; q < Q; ++q) {
          const std::size_t idx = static_cast<std::size_t>(
              (((n * cfg_.Kb() + k / cfg_.bk) * P + p) * Q + q) * cfg_.bk +
              k % cfg_.bk);
          const float v = cfg_.dtype == DType::F32
                              ? static_cast<const float*>(blocked)[idx]
                              : static_cast<const bf16*>(blocked)[idx].to_f32();
          nkpq[((n * cfg_.K + k) * P + p) * Q + q] = v;
        }
}

}  // namespace plt::kernels
