#include "kernels/mlp_kernel.hpp"

#include <cstring>

#include "common/check.hpp"

namespace plt::kernels {

MlpKernel::MlpKernel(MlpConfig cfg) : cfg_(cfg) {
  PLT_CHECK(cfg_.sizes.size() >= 2, "mlp: need at least one layer");
  PLT_CHECK(cfg_.N > 0 && cfg_.N % cfg_.bn == 0, "mlp: bn must divide N");
  for (std::size_t l = 0; l + 1 < cfg_.sizes.size(); ++l) {
    const std::int64_t K = cfg_.sizes[l];
    const std::int64_t M = cfg_.sizes[l + 1];
    PLT_CHECK(K % cfg_.bk == 0 && M % cfg_.bm == 0,
              "mlp: bk|bm must divide layer widths");
    // Feature width of layer l+1 must also be divisible by bk, because its
    // activation becomes the next layer's K dimension.
    GemmConfig gc;
    gc.M = M;
    gc.N = cfg_.N;
    gc.K = K;
    gc.bm = cfg_.bm;
    gc.bn = cfg_.bn;
    gc.bk = cfg_.bk;
    gc.dtype = cfg_.dtype;
    gc.loop_spec = cfg_.loop_spec;
    gc.backend = cfg_.backend;
    layers_.emplace_back(gc);
    bias_tpps_.emplace_back(tpp::BinaryDesc{
        tpp::BinaryKind::kAdd, cfg_.bm, cfg_.bn, 0, 0, 0, DType::F32,
        cfg_.dtype, cfg_.dtype, tpp::Broadcast::kCol});
    act_tpps_.emplace_back(
        cfg_.act == Activation::kGelu ? tpp::UnaryKind::kGelu
                                      : tpp::UnaryKind::kRelu,
        cfg_.bm, cfg_.bn, cfg_.dtype, cfg_.dtype);
  }
  // Staging: a C-layout and a B-layout buffer per intermediate activation.
  const std::size_t esz = dtype_size(cfg_.dtype);
  for (std::size_t l = 0; l + 2 < cfg_.sizes.size(); ++l) {
    const std::size_t elems =
        static_cast<std::size_t>(cfg_.sizes[l + 1]) * static_cast<std::size_t>(cfg_.N);
    staging_.emplace_back(elems * esz);  // C stage of layer l
    staging_.emplace_back(elems * esz);  // B stage feeding layer l+1
  }
}

double MlpKernel::flops() const {
  double f = 0.0;
  for (const GemmKernel& g : layers_) f += g.flops();
  return f;
}

void MlpKernel::c_to_b(std::int64_t l, const void* c_act, void* b_act) const {
  // C[Nb][Mb][bn][bm] (features = sizes[l+1]) -> B[Nb][K'b][bn][bk].
  const std::int64_t F = cfg_.sizes[static_cast<std::size_t>(l) + 1];
  const std::int64_t N = cfg_.N;
  const std::int64_t bm = cfg_.bm, bn = cfg_.bn, bk = cfg_.bk;
  const std::int64_t Mb = F / bm, Kb = F / bk, Nb = N / bn;
  const std::size_t esz = dtype_size(cfg_.dtype);
  const char* src = static_cast<const char*>(c_act);
  char* dst = static_cast<char*>(b_act);
  for (std::int64_t in = 0; in < Nb; ++in)
    for (std::int64_t f = 0; f < F; ++f)
      for (std::int64_t nn = 0; nn < bn; ++nn) {
        const std::size_t c_idx = static_cast<std::size_t>(
            (((in * Mb + f / bm) * bn + nn) * bm) + f % bm);
        const std::size_t b_idx = static_cast<std::size_t>(
            (((in * Kb + f / bk) * bn + nn) * bk) + f % bk);
        std::memcpy(dst + b_idx * esz, src + c_idx * esz, esz);
      }
}

void MlpKernel::run(const void* input, const std::vector<const void*>& weights,
                    const std::vector<const float*>& biases,
                    void* output) const {
  const std::int64_t L = num_layers();
  PLT_CHECK(static_cast<std::int64_t>(weights.size()) == L,
            "mlp: one weight tensor per layer");
  PLT_CHECK(!cfg_.with_bias ||
                static_cast<std::int64_t>(biases.size()) == L,
            "mlp: one bias per layer when with_bias");

  const void* cur_b = input;
  for (std::int64_t l = 0; l < L; ++l) {
    void* c_out = l == L - 1 ? output
                             : static_cast<void*>(
                                   staging_[static_cast<std::size_t>(2 * l)].data());
    const GemmKernel& gemm = layers_[static_cast<std::size_t>(l)];
    const tpp::BinaryTPP& bias_tpp = bias_tpps_[static_cast<std::size_t>(l)];
    const tpp::UnaryTPP& act_tpp = act_tpps_[static_cast<std::size_t>(l)];
    const float* bias = cfg_.with_bias ? biases[static_cast<std::size_t>(l)] : nullptr;
    const std::int64_t bm = cfg_.bm;
    const bool apply_act = cfg_.act != Activation::kNone;

    gemm.run_with_epilogue(
        weights[static_cast<std::size_t>(l)], cur_b, c_out,
        [&](std::int64_t im, std::int64_t /*in*/, void* c_block) {
          if (bias != nullptr) bias_tpp(bias + im * bm, c_block, c_block);
          if (apply_act) act_tpp(c_block, c_block);
        });

    if (l < L - 1) {
      void* b_stage = staging_[static_cast<std::size_t>(2 * l + 1)].data();
      c_to_b(l, c_out, b_stage);
      cur_b = b_stage;
    }
  }
}

}  // namespace plt::kernels
