// Multi-Layer Perceptron kernel (Section III-A): cascading fully-connected
// layers where each layer is the Listing-1 GEMM with a fused bias-add and
// activation TPP applied to each C block as soon as its K reduction
// completes — `if (ik == Kb - k_step) relu_tpp(&C[in][im][0][0])`.
//
// Layer l computes O_l = act(W_l x I_l + bias_l): weights are the blocked A
// operand, the previous layer's activation is the blocked B operand.
#pragma once

#include <vector>

#include "kernels/gemm_kernel.hpp"
#include "tpp/binary.hpp"

namespace plt::kernels {

enum class Activation { kNone, kRelu, kGelu };

struct MlpConfig {
  // sizes[l] is the feature width of layer input l; L = sizes.size()-1
  // layers. N is the minibatch.
  std::vector<std::int64_t> sizes;
  std::int64_t N = 0;
  std::int64_t bm = 32, bn = 32, bk = 32;
  DType dtype = DType::F32;
  Activation act = Activation::kRelu;
  bool with_bias = true;
  std::string loop_spec = "BCa";
  parlooper::Backend backend = parlooper::Backend::kAuto;
};

class MlpKernel {
 public:
  explicit MlpKernel(MlpConfig cfg);

  // weights[l]: blocked A layout (M=sizes[l+1], K=sizes[l]); biases[l]:
  // sizes[l+1] floats (may be empty when with_bias is false). `input` is the
  // blocked B layout of layer 0; `output` receives the blocked C layout of
  // the last layer. Intermediate activations are staged internally.
  void run(const void* input, const std::vector<const void*>& weights,
           const std::vector<const float*>& biases, void* output) const;

  const MlpConfig& config() const { return cfg_; }
  std::int64_t num_layers() const {
    return static_cast<std::int64_t>(cfg_.sizes.size()) - 1;
  }
  const GemmKernel& layer(std::int64_t l) const { return layers_[static_cast<std::size_t>(l)]; }
  double flops() const;

  // Converts a layer-l C activation (C[Nb][Mb][bn][bm], feature dim M =
  // sizes[l+1]) into the next layer's B layout (B[Nb][Kb][bn][bk], K = M).
  void c_to_b(std::int64_t l, const void* c_act, void* b_act) const;

 private:
  MlpConfig cfg_;
  std::vector<GemmKernel> layers_;
  std::vector<tpp::BinaryTPP> bias_tpps_;   // per layer: bias add (col bcast)
  std::vector<tpp::UnaryTPP> act_tpps_;     // per layer activation
  mutable std::vector<AlignedBuffer<std::uint8_t>> staging_;  // C and B stage
};

}  // namespace plt::kernels
