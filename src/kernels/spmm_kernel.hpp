// Block-SpMM kernel (Section III-C, Listing 5): C = A_sparse x B_dense with
// A in BCSC format. The PARLOOPER loops mirror the dense GEMM's; the body is
// the bcsc_spmm_tpp, which batch-reduces over the surviving blocks of one
// block-row. B and C are plain dense column-major matrices here (the paper
// packs them in VNNI-friendly layouts; our VNNI packing lives inside the A
// blocks, which is what the low-precision microkernels consume).
#pragma once

#include <memory>
#include <string>

#include "parlooper/threaded_loop.hpp"
#include "tpp/spmm.hpp"

namespace plt::kernels {

struct SpmmConfig {
  std::int64_t M = 0, N = 0, K = 0;
  std::int64_t bm = 8, bk = 8;   // the block-sparsity structure of A
  std::int64_t bn = 32;          // dense N tiling
  DType dtype = DType::F32;      // A/B precision (C accumulates fp32)
  std::string loop_spec = "AB";  // parallel over (m-block, n-tile)
  parlooper::Backend backend = parlooper::Backend::kAuto;

  std::int64_t Mb() const { return M / bm; }
  std::int64_t Nb() const { return N / bn; }
};

class SpmmKernel {
 public:
  explicit SpmmKernel(SpmmConfig cfg);

  // b: dense K x N col-major (ldb = K), same precision as a's blocks;
  // c: dense M x N col-major fp32 (ldc = M), overwritten.
  void run(const tpp::BcscMatrix& a, const void* b, float* c) const;

  const SpmmConfig& config() const { return cfg_; }

  // Effective flops of one run for the given sparse matrix.
  double flops(const tpp::BcscMatrix& a) const;
  // Dense-equivalent flops (what a dense GEMM of the same shape does).
  double dense_flops() const {
    return 2.0 * static_cast<double>(cfg_.M) * cfg_.N * cfg_.K;
  }

 private:
  SpmmConfig cfg_;
  tpp::SpmmTPP spmm_tpp_;
  std::shared_ptr<const parlooper::LoopNest> loop_;
};

}  // namespace plt::kernels
