// Multi-threaded GEMM kernel written exactly in the PARLOOPER/TPP style of
// Listing 1: blocked operand layouts, a zero_tpp + brgemm_tpp body, and a
// loop_spec_string runtime knob that selects order/blocking/parallelism with
// zero code change.
//
// Layouts (paper Section II-A):
//   A[Mb][Kb][bk][bm]  (bm fastest; bf16 blocks are VNNI2-packed)
//   B[Nb][Kb][bn][bk]  (bk fastest)
//   C[Nb][Mb][bn][bm]  (bm fastest)
#pragma once

#include <memory>
#include <string>

#include "common/aligned_buffer.hpp"
#include "parlooper/threaded_loop.hpp"
#include "tpp/brgemm.hpp"
#include "tpp/transforms.hpp"
#include "tpp/unary.hpp"

namespace plt::kernels {

struct GemmConfig {
  std::int64_t M = 0, N = 0, K = 0;
  std::int64_t bm = 32, bn = 32, bk = 32;
  DType dtype = DType::F32;     // operand precision (C matches)
  std::int64_t k_step = 1;      // k-blocks fused per BRGEMM call
  // Default spec: parallel M/N block loops (collapse), sequential K inside —
  // safe under any schedule because one owner touches a C block for all ik.
  std::string loop_spec = "BCa";
  std::vector<std::int64_t> m_blocking;  // extra blocking sizes for 'b'
  std::vector<std::int64_t> n_blocking;  // extra blocking sizes for 'c'
  std::vector<std::int64_t> k_blocking;  // extra blocking sizes for 'a'
  parlooper::Backend backend = parlooper::Backend::kAuto;

  std::int64_t Mb() const { return M / bm; }
  std::int64_t Nb() const { return N / bn; }
  std::int64_t Kb() const { return K / bk; }
};

class GemmKernel {
 public:
  explicit GemmKernel(GemmConfig cfg);

  // Operands in the blocked layouts above (bf16 A blocks VNNI2-packed).
  void run(const void* a, const void* b, void* c) const;

  // Same, with a fused epilogue invoked on each C block right after its K
  // reduction completes (ik == Kb - k_step) — the MLP fusion hook of
  // Section III-A ("if (ik == Kb - k_step) relu_tpp(&C[in][im][0][0])").
  using Epilogue =
      std::function<void(std::int64_t im, std::int64_t in, void* c_block)>;
  void run_with_epilogue(const void* a, const void* b, void* c,
                         const Epilogue& epilogue) const;

  // Same kernel, different spec — the "zero lines of code change" knob.
  GemmKernel with_spec(const std::string& loop_spec) const;

  const GemmConfig& config() const { return cfg_; }
  double flops() const {
    return 2.0 * static_cast<double>(cfg_.M) * cfg_.N * cfg_.K;
  }

  // Layout helpers (flat col-major <-> blocked; handles VNNI for bf16).
  std::size_t a_elems() const;
  std::size_t b_elems() const;
  std::size_t c_elems() const;
  void pack_a(const float* flat, void* blocked) const;
  void pack_b(const float* flat, void* blocked) const;
  void unpack_c(const void* blocked, float* flat) const;

 private:
  GemmConfig cfg_;
  std::int64_t a_block_elems_ = 0;  // elements per A block (vnni-aware)
  tpp::UnaryTPP zero_tpp_;
  tpp::BrgemmTPP brgemm_tpp_;
  std::shared_ptr<const parlooper::LoopNest> loop_;
};

}  // namespace plt::kernels
