#include "kernels/gemm_kernel.hpp"

#include "common/check.hpp"

namespace plt::kernels {

namespace {

std::vector<parlooper::LoopSpecs> make_loops(const GemmConfig& c) {
  // Logical loops of Listing 1: a = K blocks, b = M blocks, c = N blocks.
  parlooper::LoopSpecs a{0, c.Kb(), c.k_step, c.k_blocking};
  parlooper::LoopSpecs b{0, c.Mb(), 1, c.m_blocking};
  parlooper::LoopSpecs n{0, c.Nb(), 1, c.n_blocking};
  return {a, b, n};
}

}  // namespace

GemmKernel::GemmKernel(GemmConfig cfg)
    : cfg_(cfg),
      a_block_elems_(cfg.dtype == DType::BF16
                         ? tpp::vnni2_elems(cfg.bm, cfg.bk)
                         : cfg.bm * cfg.bk),
      zero_tpp_(tpp::UnaryKind::kZero, cfg.bm, cfg.bn, cfg.dtype, cfg.dtype),
      brgemm_tpp_(cfg.bm, cfg.bn, cfg.bk,
                  /*stride_a=*/a_block_elems_,
                  /*stride_b=*/cfg.bn * cfg.bk,
                  /*beta=*/1.0f, cfg.dtype, cfg.dtype, cfg.dtype,
                  cfg.dtype == DType::BF16 ? tpp::ALayout::kVnni2
                                           : tpp::ALayout::kFlat) {
  PLT_CHECK(cfg_.M % cfg_.bm == 0 && cfg_.N % cfg_.bn == 0 &&
                cfg_.K % cfg_.bk == 0,
            "gemm: block sizes must divide M/N/K");
  PLT_CHECK(cfg_.Kb() % cfg_.k_step == 0, "gemm: k_step must divide Kb");
  PLT_CHECK(cfg_.dtype == DType::F32 || cfg_.dtype == DType::BF16,
            "gemm: f32 or bf16");
  // Footprints of one (ik, im, in) invocation, in block-layout elements:
  // the C block is read-modify-written (K-reduction + epilogue), A/B blocks
  // are read-only; k_step consecutive K blocks feed one BRGEMM call.
  const std::int64_t Kb = cfg_.Kb(), Mb = cfg_.Mb();
  const std::int64_t a_blk = a_block_elems_;
  const std::int64_t b_blk = cfg_.bn * cfg_.bk;
  const std::int64_t c_blk = cfg_.bn * cfg_.bm;
  parlooper::AccessMap access;
  access.add_write("C", {0, c_blk, Mb * c_blk}, c_blk)
      .add_read("C", {0, c_blk, Mb * c_blk}, c_blk)
      .add_read("A", {a_blk, Kb * a_blk, 0}, cfg_.k_step * a_blk)
      .add_read("B", {b_blk, 0, Kb * b_blk}, cfg_.k_step * b_blk);
  loop_ = std::make_shared<const parlooper::LoopNest>(
      make_loops(cfg_), cfg_.loop_spec, cfg_.backend, access);
}

GemmKernel GemmKernel::with_spec(const std::string& loop_spec) const {
  GemmConfig c = cfg_;
  c.loop_spec = loop_spec;
  return GemmKernel(c);
}

void GemmKernel::run(const void* a, const void* b, void* c) const {
  run_with_epilogue(a, b, c, Epilogue{});
}

void GemmKernel::run_with_epilogue(const void* a, const void* b, void* c,
                                   const Epilogue& epilogue) const {
  const std::int64_t Kb = cfg_.Kb(), Mb = cfg_.Mb();
  const std::size_t esz = dtype_size(cfg_.dtype);
  const char* ap = static_cast<const char*>(a);
  const char* bp = static_cast<const char*>(b);
  char* cp = static_cast<char*>(c);
  const std::int64_t a_blk = a_block_elems_;
  const std::int64_t b_blk = cfg_.bn * cfg_.bk;
  const std::int64_t c_blk = cfg_.bn * cfg_.bm;
  const std::int64_t k_last = Kb - cfg_.k_step;

  (*loop_)([&](const std::int64_t* ind) {
    const std::int64_t ik = ind[0], im = ind[1], in = ind[2];
    char* c_block = cp + static_cast<std::size_t>((in * Mb + im) * c_blk) * esz;
    if (ik == 0) zero_tpp_(nullptr, c_block);
    brgemm_tpp_(ap + static_cast<std::size_t>((im * Kb + ik) * a_blk) * esz,
                bp + static_cast<std::size_t>((in * Kb + ik) * b_blk) * esz,
                c_block, cfg_.k_step);
    if (epilogue && ik == k_last) epilogue(im, in, c_block);
  });
}

std::size_t GemmKernel::a_elems() const {
  return static_cast<std::size_t>(cfg_.Mb() * cfg_.Kb() * a_block_elems_);
}
std::size_t GemmKernel::b_elems() const {
  return static_cast<std::size_t>(cfg_.N * cfg_.K);
}
std::size_t GemmKernel::c_elems() const {
  return static_cast<std::size_t>(cfg_.M * cfg_.N);
}

void GemmKernel::pack_a(const float* flat, void* blocked) const {
  const std::int64_t Mb = cfg_.Mb(), Kb = cfg_.Kb();
  const std::int64_t bm = cfg_.bm, bk = cfg_.bk;
  if (cfg_.dtype == DType::F32) {
    tpp::block_a_matrix(flat, static_cast<float*>(blocked), cfg_.M, cfg_.K, bm,
                        bk);
    return;
  }
  std::vector<bf16> tmp(static_cast<std::size_t>(bm * bk));
  bf16* out = static_cast<bf16*>(blocked);
  for (std::int64_t im = 0; im < Mb; ++im)
    for (std::int64_t ik = 0; ik < Kb; ++ik) {
      for (std::int64_t kk = 0; kk < bk; ++kk)
        for (std::int64_t mm = 0; mm < bm; ++mm)
          tmp[static_cast<std::size_t>(mm + kk * bm)] = bf16::from_f32(
              flat[(im * bm + mm) + (ik * bk + kk) * cfg_.M]);
      tpp::vnni2_pack(tmp.data(), out + (im * Kb + ik) * a_block_elems_, bm,
                      bk, bm);
    }
}

void GemmKernel::pack_b(const float* flat, void* blocked) const {
  const std::int64_t Nb = cfg_.Nb(), Kb = cfg_.Kb();
  const std::int64_t bn = cfg_.bn, bk = cfg_.bk;
  for (std::int64_t in = 0; in < Nb; ++in)
    for (std::int64_t ik = 0; ik < Kb; ++ik)
      for (std::int64_t nn = 0; nn < bn; ++nn)
        for (std::int64_t kk = 0; kk < bk; ++kk) {
          const float v = flat[(ik * bk + kk) + (in * bn + nn) * cfg_.K];
          const std::size_t idx = static_cast<std::size_t>(
              (((in * Kb + ik) * bn + nn) * bk) + kk);
          if (cfg_.dtype == DType::F32) {
            static_cast<float*>(blocked)[idx] = v;
          } else {
            static_cast<bf16*>(blocked)[idx] = bf16::from_f32(v);
          }
        }
}

void GemmKernel::unpack_c(const void* blocked, float* flat) const {
  const std::int64_t Nb = cfg_.Nb(), Mb = cfg_.Mb();
  const std::int64_t bn = cfg_.bn, bm = cfg_.bm;
  for (std::int64_t in = 0; in < Nb; ++in)
    for (std::int64_t im = 0; im < Mb; ++im)
      for (std::int64_t nn = 0; nn < bn; ++nn)
        for (std::int64_t mm = 0; mm < bm; ++mm) {
          const std::size_t idx = static_cast<std::size_t>(
              (((in * Mb + im) * bn + nn) * bm) + mm);
          const float v = cfg_.dtype == DType::F32
                              ? static_cast<const float*>(blocked)[idx]
                              : static_cast<const bf16*>(blocked)[idx].to_f32();
          flat[(im * bm + mm) + (in * bn + nn) * cfg_.M] = v;
        }
}

}  // namespace plt::kernels
