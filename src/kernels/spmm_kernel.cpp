#include "kernels/spmm_kernel.hpp"

#include "common/check.hpp"

namespace plt::kernels {

SpmmKernel::SpmmKernel(SpmmConfig cfg)
    : cfg_(cfg),
      spmm_tpp_(cfg.bm, cfg.bk, cfg.bn, cfg.dtype, DType::F32, /*beta=*/0.0f,
                /*ldb=*/cfg.K, /*ldc=*/cfg.M) {
  PLT_CHECK(cfg_.M % cfg_.bm == 0 && cfg_.K % cfg_.bk == 0 &&
                cfg_.N % cfg_.bn == 0,
            "spmm: blocks must divide shape");
  // Logical loops: a = M block-rows, b = N tiles (Listing 5 keeps the K loop
  // inside the TPP via the BCSC structure).
  std::vector<parlooper::LoopSpecs> loops = {
      parlooper::LoopSpecs{0, cfg_.Mb(), 1},
      parlooper::LoopSpecs{0, cfg_.Nb(), 1}};
  // One (im, in) invocation writes a column-major bm x bn C tile (beta=0, so
  // no C read) with leading dimension M, and reads a bn-column B panel.
  parlooper::AccessMap access;
  access
      .add_write("C", {cfg_.bm, cfg_.bn * cfg_.M}, cfg_.bm, cfg_.bn, cfg_.M)
      .add_read("B", {0, cfg_.bn * cfg_.K}, cfg_.bn * cfg_.K);
  loop_ = std::make_shared<const parlooper::LoopNest>(loops, cfg_.loop_spec,
                                                      cfg_.backend, access);
}

void SpmmKernel::run(const tpp::BcscMatrix& a, const void* b, float* c) const {
  PLT_CHECK(a.M() == cfg_.M && a.K() == cfg_.K && a.bm() == cfg_.bm &&
                a.bk() == cfg_.bk && a.dtype() == cfg_.dtype,
            "spmm: matrix does not match kernel config");
  const std::size_t esz = dtype_size(cfg_.dtype);
  const char* bp = static_cast<const char*>(b);
  (*loop_)([&](const std::int64_t* ind) {
    const std::int64_t im = ind[0], in = ind[1];
    const char* b_panel = bp + static_cast<std::size_t>(in * cfg_.bn * cfg_.K) * esz;
    float* c_tile = c + in * cfg_.bn * cfg_.M + im * cfg_.bm;
    spmm_tpp_(a, im, b_panel, cfg_.K, c_tile, cfg_.M);
  });
}

double SpmmKernel::flops(const tpp::BcscMatrix& a) const {
  return 2.0 * static_cast<double>(a.nnz_blocks()) * cfg_.bm * cfg_.bk *
         static_cast<double>(cfg_.N);
}

}  // namespace plt::kernels
