// BERT encoder implemented with PARLOOPER/TPP building blocks (Section IV-A):
// fused FC layers (BRGEMM + bias + activation), scaled-dot-product attention
// heads, dropout-with-mask, residual adds and layernorm equations —
// forward AND backward, so the Fig. 9 fine-tuning throughput experiment runs
// a real training step (fwd + bwd + SGD).
//
// A block-sparse inference variant (Section IV-B / Fig. 10) replaces the
// four FC contractions with Block-SpMM over magnitude-pruned weights.
#pragma once

#include <memory>
#include <vector>

#include "dl/attention.hpp"
#include "dl/fc_layer.hpp"
#include "dl/layernorm.hpp"
#include "dl/sparse_fc.hpp"
#include "tpp/equations.hpp"

namespace plt::dl {

struct BertConfig {
  std::int64_t hidden = 256;
  std::int64_t heads = 4;
  std::int64_t intermediate = 1024;
  std::int64_t layers = 2;
  std::int64_t seq_len = 128;
  std::int64_t batch = 1;
  DType dtype = DType::F32;
  float dropout_p = 0.0f;
  std::int64_t bm = 32, bn = 32, bk = 32;
  std::string loop_spec = "BCa";

  std::int64_t tokens() const { return seq_len * batch; }
  std::int64_t head_dim() const { return hidden / heads; }

  // Scaled-down stand-ins for the paper's BERT-base / BERT-large (full-size
  // configs run on a single CI core, just slowly; pass --full to benches).
  static BertConfig base_scaled();
  static BertConfig large_scaled();
};

class BertEncoderLayer {
 public:
  BertEncoderLayer(const BertConfig& cfg, Xoshiro256& rng);

  // x, y: [tokens][hidden] row-major fp32.
  void forward(const float* x, float* y, Xoshiro256& rng) const;

  // dy -> dx; accumulates all parameter gradients. Must follow a forward
  // call (uses the saved activations).
  void backward(const float* dy, float* dx);

  void zero_grad();
  void sgd_step(float lr);
  double forward_flops() const;

 private:
  const BertConfig cfg_;
  FcLayer q_, k_, v_, attn_out_, inter_, out_;
  LayerNorm ln1_, ln2_;

  // Saved forward state (one training step in flight at a time).
  mutable Tensor x_, qb_, kb_, vb_, ctx_, proj_, res1_, ln1_out_, inter_in_,
      proj2_, res2_;
  mutable Tensor probs_t_;  // [batch*heads][seq][seq]
  mutable std::vector<std::uint8_t> mask1_, mask2_;
};

// Minimal embedding front-end: token lookup + layernorm + dropout
// (Bert-Embeddings of Section IV-A).
class BertEmbeddings {
 public:
  BertEmbeddings(const BertConfig& cfg, std::int64_t vocab, Xoshiro256& rng);
  void forward(const std::int32_t* token_ids, float* out,
               Xoshiro256& rng) const;

 private:
  const BertConfig cfg_;
  std::int64_t vocab_;
  Tensor table_;  // [vocab][hidden]
  std::unique_ptr<LayerNorm> ln_;
};

class BertEncoder {
 public:
  BertEncoder(BertConfig cfg, Xoshiro256& rng);

  void forward(const float* x, float* y, Xoshiro256& rng) const;

  // One fine-tuning step with an L2 loss against `target`; returns the loss.
  double training_step(const float* x, const float* target, float lr,
                       Xoshiro256& rng);

  const BertConfig& config() const { return cfg_; }
  double forward_flops() const;

 private:
  BertConfig cfg_;
  std::vector<std::unique_ptr<BertEncoderLayer>> layers_;
  mutable std::vector<Tensor> acts_;  // per-layer inputs + final output
};

// Inference-only encoder layer with block-sparse FC contractions.
class SparseBertEncoderLayer {
 public:
  SparseBertEncoderLayer(const BertConfig& cfg, double sparsity,
                         std::int64_t block, Xoshiro256& rng);
  void forward(const float* x, float* y) const;
  double dense_flops() const;
  double effective_flops() const;

 private:
  const BertConfig cfg_;
  std::unique_ptr<SparseFcLayer> q_, k_, v_, attn_out_, inter_, out_;
  LayerNorm ln1_, ln2_;
  mutable Tensor qb_, kb_, vb_, ctx_, proj_, res1_, ln1_out_, inter_out_,
      proj2_, res2_, probs_t_;
};

}  // namespace plt::dl
