// Block-sparse fully-connected layer (Section IV-B): the dense BRGEMM of
// FcLayer replaced by the Block-SpMM kernel over magnitude-pruned weights.
// Inference only — the paper's sparse path targets latency-oriented BERT
// inference (Fig. 10).
#pragma once

#include <memory>

#include "common/rng.hpp"
#include "dl/tensor.hpp"
#include "kernels/spmm_kernel.hpp"

namespace plt::dl {

struct SparseFcConfig {
  std::int64_t in_features = 0;
  std::int64_t out_features = 0;
  std::int64_t tokens = 0;
  std::int64_t block = 8;       // bm = bk = block (the paper uses 8x8)
  std::int64_t bn = 0;          // N tile (0 => tokens)
  double sparsity = 0.8;
  DType dtype = DType::F32;     // block precision (bf16 uses VNNI blocks)
  bool gelu = false;
  std::string loop_spec = "AB";
};

class SparseFcLayer {
 public:
  // Prunes the given dense row-major (out x in) weights to the target
  // block sparsity (largest-Frobenius-norm blocks survive).
  SparseFcLayer(SparseFcConfig cfg, const Tensor& dense_weight,
                const Tensor& bias);

  // input: S x in row-major fp32; output: S x out row-major fp32.
  void forward(const float* input, float* output) const;

  double effective_flops() const;  // per forward call
  double dense_flops() const;
  double density() const { return a_.density(); }
  const SparseFcConfig& config() const { return cfg_; }

 private:
  SparseFcConfig cfg_;
  tpp::BcscMatrix a_;
  std::unique_ptr<kernels::SpmmKernel> kernel_;
  Tensor bias_;
  mutable AlignedBuffer<bf16> in_stage_;  // bf16 activation panel
};

}  // namespace plt::dl
