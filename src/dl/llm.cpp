#include "dl/llm.hpp"

#include <cmath>
#include <cstring>

#include "common/check.hpp"
#include "common/timer.hpp"
#include "tpp/equations.hpp"
#include "tpp/transforms.hpp"

namespace plt::dl {

namespace {

FcConfig proj_cfg(const LlmConfig& c, std::int64_t in_f, std::int64_t out_f,
                  FcActivation act) {
  FcConfig f;
  f.in_features = in_f;
  f.out_features = out_f;
  f.tokens = c.max_seq;
  f.bm = c.bm;
  f.bn = c.bn;
  f.bk = c.bk;
  f.dtype = c.dtype;
  f.act = act;
  f.loop_spec = c.loop_spec;
  return f;
}

}  // namespace

LlmConfig LlmConfig::gptj_scaled() {
  LlmConfig c;
  c.hidden = 256;
  c.heads = 4;
  c.layers = 6;
  c.ffn = 1024;
  return c;
}

LlmConfig LlmConfig::llama2_scaled() {
  LlmConfig c;
  c.hidden = 320;
  c.heads = 5;
  c.layers = 8;   // deeper, like Llama2-13B vs GPT-J-6B
  c.ffn = 864;    // ~2.7x hidden, Llama-style
  return c;
}

DecoderLayer::DecoderLayer(const LlmConfig& cfg, Xoshiro256& rng)
    : cfg_(cfg),
      q_(proj_cfg(cfg, cfg.hidden, cfg.hidden, FcActivation::kNone), rng),
      k_(proj_cfg(cfg, cfg.hidden, cfg.hidden, FcActivation::kNone), rng),
      v_(proj_cfg(cfg, cfg.hidden, cfg.hidden, FcActivation::kNone), rng),
      o_(proj_cfg(cfg, cfg.hidden, cfg.hidden, FcActivation::kNone), rng),
      up_(proj_cfg(cfg, cfg.hidden, cfg.ffn, FcActivation::kGelu), rng),
      down_(proj_cfg(cfg, cfg.ffn, cfg.hidden, FcActivation::kNone), rng),
      ln1_(cfg.max_seq, cfg.hidden),
      ln2_(cfg.max_seq, cfg.hidden) {
  PLT_CHECK(cfg_.hidden % cfg_.heads == 0, "llm: heads must divide hidden");
  k_cache_.reshape({cfg_.max_seq, cfg_.hidden});
  v_cache_.reshape({cfg_.max_seq, cfg_.hidden});
  qb_.reshape({cfg_.max_seq, cfg_.hidden});
  ctx_.reshape({cfg_.max_seq, cfg_.hidden});
  proj_.reshape({cfg_.max_seq, cfg_.hidden});
  res1_.reshape({cfg_.max_seq, cfg_.hidden});
  ln1_out_.reshape({cfg_.max_seq, cfg_.hidden});
  ffn_mid_.reshape({cfg_.max_seq, cfg_.ffn});
  ffn_out_.reshape({cfg_.max_seq, cfg_.hidden});
  dec_normed_.reshape({cfg_.hidden});
  dec_qv_.reshape({cfg_.hidden});
  dec_ctx_.reshape({cfg_.hidden});
  dec_proj_.reshape({cfg_.hidden});
  dec_r1_.reshape({cfg_.hidden});
  dec_mid_.reshape({cfg_.ffn});
  dec_down_.reshape({cfg_.hidden});
  dec_scores_.resize(static_cast<std::size_t>(cfg_.max_seq));
}

void DecoderLayer::attention_prefill(const float* q, std::int64_t seq,
                                     float* out) const {
  const std::int64_t H = cfg_.hidden, dh = cfg_.head_dim();
  const float scale = 1.0f / std::sqrt(static_cast<float>(dh));
  // Causal mask: query i sees keys [0, i].
  std::vector<std::int32_t> valid(static_cast<std::size_t>(seq));
  for (std::int64_t i = 0; i < seq; ++i)
    valid[static_cast<std::size_t>(i)] = static_cast<std::int32_t>(i + 1);

  std::vector<float> kt(static_cast<std::size_t>(seq * dh));
  std::vector<float> st(static_cast<std::size_t>(seq * seq));
  std::vector<float> vp(static_cast<std::size_t>(seq * dh));
  for (std::int64_t h = 0; h < cfg_.heads; ++h) {
    const float* kh = k_cache_.data() + h * dh;
    const float* vh = v_cache_.data() + h * dh;
    const float* qh = q + h * dh;
    float* oh = out + h * dh;

    tpp::transpose_2d(kh, kt.data(), dh, seq, H, seq);
    tpp::GemmTPP score_gemm(seq, seq, dh, 0.0f, DType::F32, DType::F32,
                            DType::F32, tpp::ALayout::kFlat, seq, H, seq);
    score_gemm(kt.data(), qh, st.data());
    tpp::softmax_scale_mask_rows(st.data(), st.data(), seq, seq, seq, seq,
                                 scale, valid.data());
    for (std::int64_t t = 0; t < seq; ++t)
      for (std::int64_t d = 0; d < dh; ++d)
        vp[static_cast<std::size_t>(t * dh + d)] = vh[t * H + d];
    tpp::GemmTPP ctx_gemm(dh, seq, seq, 0.0f, DType::F32, DType::F32,
                          DType::F32, tpp::ALayout::kFlat, dh, seq, H);
    ctx_gemm(vp.data(), st.data(), oh);
  }
}

void DecoderLayer::attention_decode(const float* q, std::int64_t pos,
                                    float* out) const {
  const std::int64_t H = cfg_.hidden, dh = cfg_.head_dim();
  const float scale = 1.0f / std::sqrt(static_cast<float>(dh));
  const std::int64_t len = pos + 1;
  std::vector<float>& scores = dec_scores_;
  for (std::int64_t h = 0; h < cfg_.heads; ++h) {
    const float* qh = q + h * dh;
    float mx = -1e30f;
    for (std::int64_t j = 0; j < len; ++j) {
      const float* kj = k_cache_.data() + j * H + h * dh;
      float dot = 0.0f;
      for (std::int64_t d = 0; d < dh; ++d) dot += qh[d] * kj[d];
      scores[static_cast<std::size_t>(j)] = dot * scale;
      mx = std::max(mx, dot * scale);
    }
    float sum = 0.0f;
    for (std::int64_t j = 0; j < len; ++j) {
      scores[static_cast<std::size_t>(j)] =
          std::exp(scores[static_cast<std::size_t>(j)] - mx);
      sum += scores[static_cast<std::size_t>(j)];
    }
    const float inv = 1.0f / sum;
    float* oh = out + h * dh;
    for (std::int64_t d = 0; d < dh; ++d) oh[d] = 0.0f;
    for (std::int64_t j = 0; j < len; ++j) {
      const float p = scores[static_cast<std::size_t>(j)] * inv;
      const float* vj = v_cache_.data() + j * H + h * dh;
      for (std::int64_t d = 0; d < dh; ++d) oh[d] += p * vj[d];
    }
  }
}

void DecoderLayer::prefill(const float* x, std::int64_t seq, float* y) {
  const std::int64_t H = cfg_.hidden;
  PLT_CHECK(seq <= cfg_.max_seq, "llm: sequence exceeds max_seq");
  // Pre-norm transformer block.
  tpp::LayerNormFwd ln{seq, H, 1e-5f};
  std::vector<float> mean(static_cast<std::size_t>(seq)), var(mean.size());
  ln(x, ln1_.gamma().data(), ln1_.beta().data(), mean.data(), var.data(),
     ln1_out_.data());

  q_.forward_tokens(ln1_out_.data(), seq, qb_.data());
  k_.forward_tokens(ln1_out_.data(), seq, k_cache_.data());
  v_.forward_tokens(ln1_out_.data(), seq, v_cache_.data());
  attention_prefill(qb_.data(), seq, ctx_.data());
  o_.forward_tokens(ctx_.data(), seq, proj_.data());
  for (std::int64_t i = 0; i < seq * H; ++i)
    res1_[static_cast<std::size_t>(i)] = x[i] + proj_[static_cast<std::size_t>(i)];

  ln(res1_.data(), ln2_.gamma().data(), ln2_.beta().data(), mean.data(),
     var.data(), ln1_out_.data());
  up_.forward_tokens(ln1_out_.data(), seq, ffn_mid_.data());
  down_.forward_tokens(ffn_mid_.data(), seq, ffn_out_.data());
  for (std::int64_t i = 0; i < seq * H; ++i)
    y[i] = res1_[static_cast<std::size_t>(i)] + ffn_out_[static_cast<std::size_t>(i)];
}

void DecoderLayer::decode_one(const float* x, std::int64_t pos, float* y) {
  const std::int64_t H = cfg_.hidden;
  PLT_CHECK(pos < cfg_.max_seq, "llm: position exceeds max_seq");
  tpp::LayerNormFwd ln{1, H, 1e-5f};
  float mean, var;
  float* normed = dec_normed_.data();
  ln(x, ln1_.gamma().data(), ln1_.beta().data(), &mean, &var, normed);

  float* qv = dec_qv_.data();
  q_.forward_tokens(normed, 1, qv);
  k_.forward_tokens(normed, 1, k_cache_.data() + pos * H);
  v_.forward_tokens(normed, 1, v_cache_.data() + pos * H);

  float* ctx = dec_ctx_.data();
  attention_decode(qv, pos, ctx);
  float* proj = dec_proj_.data();
  o_.forward_tokens(ctx, 1, proj);
  float* r1 = dec_r1_.data();
  for (std::int64_t i = 0; i < H; ++i) r1[i] = x[i] + proj[i];

  ln(r1, ln2_.gamma().data(), ln2_.beta().data(), &mean, &var, normed);
  float* mid = dec_mid_.data();
  up_.forward_tokens(normed, 1, mid);
  float* down = dec_down_.data();
  down_.forward_tokens(mid, 1, down);
  for (std::int64_t i = 0; i < H; ++i) y[i] = r1[i] + down[i];
}

LlmModel::LlmModel(LlmConfig cfg, Xoshiro256& rng) : cfg_(cfg) {
  for (std::int64_t l = 0; l < cfg_.layers; ++l)
    layers_.push_back(std::make_unique<DecoderLayer>(cfg_, rng));
  lm_head_.reshape({cfg_.vocab, cfg_.hidden});
  lm_head_.randn_uniform(rng, -0.05f, 0.05f);
}

LlmModel::Timing LlmModel::generate(std::int64_t prompt_len,
                                    std::int64_t gen_tokens, Xoshiro256& rng) {
  const std::int64_t H = cfg_.hidden;
  PLT_CHECK(prompt_len + gen_tokens <= cfg_.max_seq,
            "llm: prompt + generation exceeds max_seq");
  Tensor x({prompt_len, H}), y({prompt_len, H});
  x.randn_uniform(rng, -1.0f, 1.0f);

  Timing t;
  WallTimer prefill_timer;
  for (auto& layer : layers_) {
    layer->prefill(x.data(), prompt_len, y.data());
    std::swap(x, y);
  }
  // LM head for the first generated token (argmax over the vocabulary).
  std::vector<float> logits(static_cast<std::size_t>(cfg_.vocab));
  const float* last = x.data() + (prompt_len - 1) * H;
  for (std::int64_t o = 0; o < cfg_.vocab; ++o) {
    float acc = 0.0f;
    for (std::int64_t d = 0; d < H; ++d)
      acc += lm_head_[static_cast<std::size_t>(o * H + d)] * last[d];
    logits[static_cast<std::size_t>(o)] = acc;
  }
  t.first_token_ms = prefill_timer.millis();

  std::vector<float> tok(static_cast<std::size_t>(H)), tok_out(tok.size());
  for (std::int64_t d = 0; d < H; ++d)
    tok[static_cast<std::size_t>(d)] = last[d] * 0.5f;

  WallTimer decode_timer;
  for (std::int64_t g = 0; g < gen_tokens; ++g) {
    const std::int64_t pos = prompt_len + g;
    for (auto& layer : layers_) {
      layer->decode_one(tok.data(), pos, tok_out.data());
      std::swap(tok, tok_out);
    }
    for (std::int64_t o = 0; o < cfg_.vocab; ++o) {
      float acc = 0.0f;
      for (std::int64_t d = 0; d < H; ++d)
        acc += lm_head_[static_cast<std::size_t>(o * H + d)] *
               tok[static_cast<std::size_t>(d)];
      logits[static_cast<std::size_t>(o)] = acc;
    }
  }
  t.per_next_token_ms =
      gen_tokens > 0 ? decode_timer.millis() / static_cast<double>(gen_tokens)
                     : 0.0;
  return t;
}

double LlmModel::prefill_flops(std::int64_t seq) const {
  const double h = static_cast<double>(cfg_.hidden);
  const double per_layer = 2.0 * seq * h * h * 4.0 +              // q,k,v,o
                           2.0 * seq * h * cfg_.ffn * 2.0 +       // up, down
                           4.0 * seq * seq * h;                   // attention
  return per_layer * static_cast<double>(cfg_.layers);
}

}  // namespace plt::dl
