// Fully-connected layer on row-major activations, built on the PARLOOPER/TPP
// BRGEMM with blocked weights — the building block of the BERT, sparse-BERT
// and LLM pipelines (Section IV).
//
// Forward:   O[S][out] = act(I[S][in] x W^T + bias)
// Layout trick: a row-major [S][F] activation *is* a column-major F x S
// matrix, so the blocked-A BRGEMM of Listing 1 applies directly with
//   M = out features, N = S tokens, K = in features,
//   A = blocked weights W[Mb][Kb][bk][bm] (bf16 blocks VNNI2-packed),
//   B = the activation itself (k-panels strided), C = the output.
//
// Backward (fp32 master weights, the usual mixed-precision convention):
//   dI = dO x W          (uses a blocked transposed weight copy)
//   dW = dO^T-free GEMM on transposed activations, dbias = column sums
#pragma once

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "dl/tensor.hpp"
#include "kernels/gemm_kernel.hpp"
#include "tpp/binary.hpp"
#include "tpp/unary.hpp"

namespace plt::dl {

enum class FcActivation : std::uint8_t { kNone, kRelu, kGelu };

struct FcConfig {
  std::int64_t in_features = 0;
  std::int64_t out_features = 0;
  std::int64_t tokens = 0;          // S: rows of the activation matrix
  std::int64_t bm = 32, bn = 32, bk = 32;
  DType dtype = DType::F32;         // contraction precision
  FcActivation act = FcActivation::kNone;
  bool with_bias = true;
  std::string loop_spec = "BCa";
  parlooper::Backend backend = parlooper::Backend::kAuto;
};

class FcLayer {
 public:
  explicit FcLayer(FcConfig cfg, Xoshiro256& rng);
  ~FcLayer();

  // input:  S x in row-major (fp32). For bf16 the input is converted into an
  //         internal bf16 staging panel (activations flow in bf16).
  // output: S x out row-major fp32; saved for the backward pass.
  void forward(const float* input, float* output) const;

  // Same weights, different token count (used by the LLM decode path where
  // prefill processes S tokens and generation processes 1). Falls back to a
  // 1-wide token block when `tokens` is not divisible by bn.
  void forward_tokens(const float* input, std::int64_t tokens,
                      float* output) const;

  // grad_out: S x out fp32. Accumulates dweight_/dbias_ and writes grad_in
  // (S x in) unless null. `input` must be the forward input.
  void backward(const float* input, const float* grad_out, float* grad_in);

  void zero_grad();
  void sgd_step(float lr);  // updates master weights and re-packs

  const FcConfig& config() const { return cfg_; }
  double forward_flops() const {
    return 2.0 * static_cast<double>(cfg_.tokens) * cfg_.in_features *
           cfg_.out_features;
  }
  Tensor& weight() { return weight_; }        // out x in row-major (master)
  Tensor& bias() { return bias_; }
  Tensor& grad_weight() { return dweight_; }
  Tensor& grad_bias() { return dbias_; }
  const Tensor& pre_activation() const { return preact_; }

  // Re-packs the blocked operands after an external weight edit.
  void repack();

 private:
  // Pre-planned forward pipeline for one token count: the BRGEMM/bias/act
  // TPP handles (kernel-cache entries resolved once) and the compiled
  // LoopNest plan. Without this, every forward_tokens call re-derives five
  // cache keys through ostringstream — a fixed cost that dominates
  // small-token serving requests (the LLM decode path calls with S=1).
  // Not thread-safe on one instance, like the rest of the layer's mutable
  // scratch; concurrent serving uses per-lane replicas.
  struct TokenPlan;
  TokenPlan& token_plan(std::int64_t S) const;

  FcConfig cfg_;
  Tensor weight_, bias_, dweight_, dbias_;
  mutable std::vector<std::pair<std::int64_t, std::unique_ptr<TokenPlan>>>
      token_plans_;
  mutable Tensor preact_;                // saved pre-activation (S x out)
  AlignedBuffer<std::uint8_t> w_blocked_;      // forward A operand
  AlignedBuffer<std::uint8_t> wt_blocked_;     // dgrad A operand (W^T), fp32
  mutable AlignedBuffer<std::uint8_t> in_stage_;   // bf16 input panel
  std::unique_ptr<kernels::GemmKernel> dgrad_gemm_;
  tpp::BinaryTPP bias_tpp_;
  tpp::UnaryTPP act_tpp_;
};

}  // namespace plt::dl
