// ResNet-50 built on the PARLOOPER direct-convolution kernel (Section IV-C):
// conv layers (Listing 4) followed by batch-norm, ReLU, pooling and a final
// fully-connected classifier — the architecture of He et al. with the
// standard [3, 4, 6, 3] bottleneck stages.
//
// Activations travel between layers as channel-blocked feature maps
// ([N][Cb][H][W][bc]); conversion helpers insert the physical padding the
// next convolution expects.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/aligned_buffer.hpp"
#include "common/rng.hpp"
#include "dl/tensor.hpp"
#include "kernels/conv_kernel.hpp"

namespace plt::dl {

// Channel-blocked activation: data[N][C/block][H][W][block], fp32 or bf16.
struct FeatureMap {
  std::int64_t N = 0, C = 0, H = 0, W = 0;
  std::int64_t block = 16;
  DType dtype = DType::F32;
  AlignedBuffer<std::uint8_t> data;

  std::size_t elems() const {
    return static_cast<std::size_t>(N * C * H * W);
  }
  void allocate() { data.resize(elems() * dtype_size(dtype)); }
  float get(std::int64_t n, std::int64_t c, std::int64_t h,
            std::int64_t w) const;
  void set(std::int64_t n, std::int64_t c, std::int64_t h, std::int64_t w,
           float v);
};

// Conv + batch-norm + optional ReLU block. Batch-norm statistics are
// computed per forward call (training semantics, as in the Fig. 9 / Tab. II
// training experiments).
class ConvBnRelu {
 public:
  ConvBnRelu(std::int64_t in_c, std::int64_t out_c, std::int64_t kernel,
             std::int64_t stride, std::int64_t pad, std::int64_t N,
             std::int64_t H, std::int64_t W, DType dtype, bool relu,
             Xoshiro256& rng, std::int64_t block = 16);

  // in: feature map matching (N, in_c, H, W); out is resized internally.
  void forward(const FeatureMap& in, FeatureMap& out) const;
  // Adds `residual` before the ReLU (bottleneck shortcut join).
  void forward_add(const FeatureMap& in, const FeatureMap& residual,
                   FeatureMap& out) const;

  const kernels::ConvKernel& conv() const { return *conv_; }
  double flops() const { return conv_->flops(); }
  std::int64_t out_h() const { return conv_->config().P(); }
  std::int64_t out_w() const { return conv_->config().Q(); }

 private:
  void run_conv(const FeatureMap& in, FeatureMap& out) const;
  void bn_relu(FeatureMap& out, const FeatureMap* residual) const;

  std::unique_ptr<kernels::ConvKernel> conv_;
  AlignedBuffer<std::uint8_t> weights_;
  Tensor gamma_, beta_;
  bool relu_ = true;
  mutable AlignedBuffer<std::uint8_t> in_padded_;
};

struct ResNetConfig {
  std::int64_t N = 1;          // minibatch
  std::int64_t image = 224;    // input spatial size
  DType dtype = DType::F32;
  std::int64_t block = 16;     // channel blocking
  // Scale divides every stage's channel counts (1 = real ResNet-50).
  std::int64_t channel_scale = 1;
};

class ResNet50 {
 public:
  ResNet50(ResNetConfig cfg, Xoshiro256& rng);

  // input: NCHW fp32; returns logits [N][1000] (row-major).
  void forward(const float* nchw, float* logits) const;

  double forward_flops() const;
  const ResNetConfig& config() const { return cfg_; }

 private:
  struct Bottleneck {
    std::unique_ptr<ConvBnRelu> reduce, conv3, expand, downsample;
  };

  ResNetConfig cfg_;
  std::unique_ptr<ConvBnRelu> stem_;
  std::vector<Bottleneck> blocks_;
  Tensor fc_w_, fc_b_;  // [1000][final_c]
  std::int64_t final_c_ = 0;
};

// The 20 ResNet-50 convolution shapes of the paper's Fig. 7 table
// (LayerID 2..20, with their N/C/K/H/W/R/S/stride metadata).
struct Fig7ConvShape {
  int layer_id;
  std::int64_t C, K, H, W, R, S, stride, pad;
};
const std::vector<Fig7ConvShape>& fig7_conv_shapes();

}  // namespace plt::dl
