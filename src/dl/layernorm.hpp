// LayerNorm layer: parameters + saved statistics around the layernorm
// equation TPPs (the layernorm_tpp_eqn of Listing 6).
#pragma once

#include "dl/tensor.hpp"
#include "tpp/equations.hpp"

namespace plt::dl {

class LayerNorm {
 public:
  LayerNorm(std::int64_t tokens, std::int64_t hidden)
      : tokens_(tokens), hidden_(hidden) {
    gamma_.reshape({hidden});
    beta_.reshape({hidden});
    dgamma_.reshape({hidden});
    dbeta_.reshape({hidden});
    mean_.reshape({tokens});
    var_.reshape({tokens});
    gamma_.fill(1.0f);
    beta_.zero();
  }

  void forward(const float* in, float* out) const {
    tpp::LayerNormFwd fwd{tokens_, hidden_, 1e-5f};
    fwd(in, gamma_.data(), beta_.data(), mean_.data(), var_.data(), out);
  }

  // `in` must be the forward input; accumulates dgamma/dbeta.
  void backward(const float* grad_out, const float* in, float* grad_in) {
    tpp::LayerNormBwd bwd{tokens_, hidden_};
    bwd(grad_out, in, gamma_.data(), mean_.data(), var_.data(), grad_in,
        dgamma_.data(), dbeta_.data());
  }

  void zero_grad() {
    dgamma_.zero();
    dbeta_.zero();
  }
  void sgd_step(float lr) {
    for (std::int64_t i = 0; i < hidden_; ++i) {
      gamma_[static_cast<std::size_t>(i)] -= lr * dgamma_[static_cast<std::size_t>(i)];
      beta_[static_cast<std::size_t>(i)] -= lr * dbeta_[static_cast<std::size_t>(i)];
    }
  }

  Tensor& gamma() { return gamma_; }
  Tensor& beta() { return beta_; }

 private:
  std::int64_t tokens_, hidden_;
  Tensor gamma_, beta_, dgamma_, dbeta_;
  mutable Tensor mean_, var_;
};

}  // namespace plt::dl
