// Single-head scaled-dot-product attention forward/backward over one
// (batch, head) slice, expressed with GEMM TPPs plus the fused
// scale+mask+softmax equation TPP (the Bert-Self-Attention building block of
// Section IV-A).
//
// Slices are rows of the packed [tokens][hidden] activation: Q/K/V/out
// pointers address the head's first feature with row stride `ld` (= hidden).
// Internally the head packs K/V/Q into dh-major panels so every contraction
// maps onto the column-major BRGEMM microkernels without strided loads.
#pragma once

#include <cstdint>
#include <vector>

namespace plt::dl {

struct AttentionHead {
  std::int64_t seq = 0;   // tokens in this slice
  std::int64_t dh = 0;    // head dimension
  std::int64_t ld = 0;    // row stride of the packed activation (= hidden)

  // probs_t: caller-provided (seq x seq) buffer storing the softmax output
  // transposed (key index fastest) — saved for the backward pass.
  void forward(const float* q, const float* k, const float* v, float* out,
               float* probs_t) const;

  // dq/dk/dv accumulate is NOT performed — they are written (the caller owns
  // accumulation across heads via distinct slices).
  void backward(const float* q, const float* k, const float* v,
                const float* probs_t, const float* dout, float* dq, float* dk,
                float* dv) const;
};

}  // namespace plt::dl
