// Decoder-only LLM inference pipeline (Section IV-A / Fig. 11): GPT-J- and
// Llama2-style transformer decoders with a KV cache, split into the two
// phases the paper reports — the compute-bound prefill ("first token") and
// the bandwidth-bound autoregressive generation ("next tokens").
#pragma once

#include <memory>
#include <vector>

#include "dl/fc_layer.hpp"
#include "dl/layernorm.hpp"
#include "dl/tensor.hpp"

namespace plt::dl {

struct LlmConfig {
  std::int64_t hidden = 256;
  std::int64_t heads = 4;
  std::int64_t layers = 4;
  std::int64_t ffn = 1024;       // MLP width
  std::int64_t vocab = 4096;
  std::int64_t max_seq = 1152;   // prompt + generated tokens
  DType dtype = DType::F32;
  std::int64_t bm = 32, bn = 32, bk = 32;
  std::string loop_spec = "BCa";

  std::int64_t head_dim() const { return hidden / heads; }

  // Scaled stand-ins for GPT-J-6B and Llama2-13B (same architecture family,
  // different depth/width ratios).
  static LlmConfig gptj_scaled();
  static LlmConfig llama2_scaled();
};

class DecoderLayer {
 public:
  DecoderLayer(const LlmConfig& cfg, Xoshiro256& rng);

  // Prefill: processes `seq` tokens at once with a causal mask and fills
  // positions [0, seq) of the KV cache. x/y: [seq][hidden].
  void prefill(const float* x, std::int64_t seq, float* y);

  // Decode: processes one token at position `pos` against the cache
  // (positions [0, pos] become visible). x/y: [hidden].
  void decode_one(const float* x, std::int64_t pos, float* y);

 private:
  void attention_prefill(const float* q, std::int64_t seq, float* out) const;
  void attention_decode(const float* q, std::int64_t pos, float* out) const;

  const LlmConfig cfg_;
  FcLayer q_, k_, v_, o_, up_, down_;
  LayerNorm ln1_, ln2_;
  Tensor k_cache_, v_cache_;  // [max_seq][hidden]
  Tensor qb_, ctx_, proj_, res1_, ln1_out_, ffn_mid_, ffn_out_;
  // Single-token decode scratch, preallocated: the decode path is called
  // per generated token per layer, so per-call heap traffic would dominate
  // its bandwidth-bound profile.
  Tensor dec_normed_, dec_qv_, dec_ctx_, dec_proj_, dec_r1_, dec_mid_,
      dec_down_;
  mutable std::vector<float> dec_scores_;  // [max_seq]
};

class LlmModel {
 public:
  LlmModel(LlmConfig cfg, Xoshiro256& rng);

  // Runs prefill over `prompt_len` synthetic token embeddings, then
  // generates `gen_tokens` tokens. Returns per-phase wall times.
  struct Timing {
    double first_token_ms = 0.0;   // prefill + first generation step
    double per_next_token_ms = 0.0;
  };
  Timing generate(std::int64_t prompt_len, std::int64_t gen_tokens,
                  Xoshiro256& rng);

  const LlmConfig& config() const { return cfg_; }
  double prefill_flops(std::int64_t seq) const;

 private:
  LlmConfig cfg_;
  std::vector<std::unique_ptr<DecoderLayer>> layers_;
  Tensor lm_head_;  // [vocab][hidden]
};

}  // namespace plt::dl
