// Minimal dense tensor for the DL workloads: row-major fp32 (activations,
// gradients, master weights). Low-precision storage lives inside the
// kernels' blocked layouts; this class is deliberately simple — the DL
// pipelines are kernel showcases, not a framework.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <vector>

#include "common/aligned_buffer.hpp"
#include "common/rng.hpp"

namespace plt::dl {

class Tensor {
 public:
  Tensor() = default;
  explicit Tensor(std::vector<std::int64_t> shape) { reshape(std::move(shape)); }
  Tensor(std::initializer_list<std::int64_t> shape)
      : Tensor(std::vector<std::int64_t>(shape)) {}

  void reshape(std::vector<std::int64_t> shape) {
    shape_ = std::move(shape);
    std::int64_t n = 1;
    for (std::int64_t d : shape_) n *= d;
    data_.resize(static_cast<std::size_t>(n));
  }

  const std::vector<std::int64_t>& shape() const { return shape_; }
  std::int64_t dim(std::size_t i) const { return shape_[i]; }
  std::int64_t numel() const { return static_cast<std::int64_t>(data_.size()); }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }
  float& operator[](std::size_t i) { return data_[i]; }
  float operator[](std::size_t i) const { return data_[i]; }

  void zero() { data_.zero(); }
  void fill(float v) {
    for (auto& x : data_) x = v;
  }
  void randn_uniform(Xoshiro256& rng, float lo = -0.1f, float hi = 0.1f) {
    fill_uniform(data_.data(), data_.size(), rng, lo, hi);
  }

 private:
  std::vector<std::int64_t> shape_;
  AlignedBuffer<float> data_;
};

}  // namespace plt::dl
