#include "dl/bert.hpp"

#include <cstring>

#include "common/check.hpp"

namespace plt::dl {

namespace {

FcConfig fc_cfg(const BertConfig& c, std::int64_t in_f, std::int64_t out_f,
                FcActivation act) {
  FcConfig f;
  f.in_features = in_f;
  f.out_features = out_f;
  f.tokens = c.tokens();
  f.bm = c.bm;
  f.bn = c.bn;
  f.bk = c.bk;
  f.dtype = c.dtype;
  f.act = act;
  f.loop_spec = c.loop_spec;
  return f;
}

void add_into(const float* a, const float* b, float* out, std::int64_t n) {
  for (std::int64_t i = 0; i < n; ++i) out[i] = a[i] + b[i];
}

}  // namespace

BertConfig BertConfig::base_scaled() {
  BertConfig c;
  c.hidden = 256;
  c.heads = 4;
  c.intermediate = 1024;
  c.layers = 4;
  c.seq_len = 128;
  c.batch = 1;
  return c;
}

BertConfig BertConfig::large_scaled() {
  BertConfig c;
  c.hidden = 512;
  c.heads = 8;
  c.intermediate = 2048;
  c.layers = 6;
  c.seq_len = 192;  // stands in for the paper's max sequence length 384
  c.batch = 1;
  return c;
}

BertEncoderLayer::BertEncoderLayer(const BertConfig& cfg, Xoshiro256& rng)
    : cfg_(cfg),
      q_(fc_cfg(cfg, cfg.hidden, cfg.hidden, FcActivation::kNone), rng),
      k_(fc_cfg(cfg, cfg.hidden, cfg.hidden, FcActivation::kNone), rng),
      v_(fc_cfg(cfg, cfg.hidden, cfg.hidden, FcActivation::kNone), rng),
      attn_out_(fc_cfg(cfg, cfg.hidden, cfg.hidden, FcActivation::kNone), rng),
      inter_(fc_cfg(cfg, cfg.hidden, cfg.intermediate, FcActivation::kGelu),
             rng),
      out_(fc_cfg(cfg, cfg.intermediate, cfg.hidden, FcActivation::kNone),
           rng),
      ln1_(cfg.tokens(), cfg.hidden),
      ln2_(cfg.tokens(), cfg.hidden) {
  PLT_CHECK(cfg_.hidden % cfg_.heads == 0, "bert: heads must divide hidden");
  const std::int64_t T = cfg_.tokens(), H = cfg_.hidden;
  x_.reshape({T, H});
  qb_.reshape({T, H});
  kb_.reshape({T, H});
  vb_.reshape({T, H});
  ctx_.reshape({T, H});
  proj_.reshape({T, H});
  res1_.reshape({T, H});
  ln1_out_.reshape({T, H});
  inter_in_.reshape({T, cfg_.intermediate});
  proj2_.reshape({T, H});
  res2_.reshape({T, H});
  probs_t_.reshape({cfg_.batch * cfg_.heads, cfg_.seq_len, cfg_.seq_len});
  mask1_.resize(static_cast<std::size_t>(T * H));
  mask2_.resize(static_cast<std::size_t>(T * H));
}

void BertEncoderLayer::forward(const float* x, float* y,
                               Xoshiro256& rng) const {
  const std::int64_t T = cfg_.tokens(), H = cfg_.hidden, S = cfg_.seq_len;
  const std::int64_t dh = cfg_.head_dim();
  std::memcpy(x_.data(), x, static_cast<std::size_t>(T * H) * sizeof(float));

  q_.forward(x, qb_.data());
  k_.forward(x, kb_.data());
  v_.forward(x, vb_.data());

  AttentionHead head{S, dh, H};
  for (std::int64_t b = 0; b < cfg_.batch; ++b) {
    for (std::int64_t h = 0; h < cfg_.heads; ++h) {
      const std::int64_t off = b * S * H + h * dh;
      float* pt = probs_t_.data() + (b * cfg_.heads + h) * S * S;
      head.forward(qb_.data() + off, kb_.data() + off, vb_.data() + off,
                   ctx_.data() + off, pt);
    }
  }

  attn_out_.forward(ctx_.data(), proj_.data());
  if (cfg_.dropout_p > 0.0f) {
    tpp::DropoutFwd drop{T, H, cfg_.dropout_p};
    drop(proj_.data(), rng, proj_.data(), mask1_.data());
  } else {
    std::fill(mask1_.begin(), mask1_.end(), std::uint8_t{1});
  }
  add_into(x, proj_.data(), res1_.data(), T * H);
  ln1_.forward(res1_.data(), ln1_out_.data());

  inter_.forward(ln1_out_.data(), inter_in_.data());
  out_.forward(inter_in_.data(), proj2_.data());
  if (cfg_.dropout_p > 0.0f) {
    tpp::DropoutFwd drop{T, H, cfg_.dropout_p};
    drop(proj2_.data(), rng, proj2_.data(), mask2_.data());
  } else {
    std::fill(mask2_.begin(), mask2_.end(), std::uint8_t{1});
  }
  add_into(ln1_out_.data(), proj2_.data(), res2_.data(), T * H);
  ln2_.forward(res2_.data(), y);
}

void BertEncoderLayer::backward(const float* dy, float* dx) {
  const std::int64_t T = cfg_.tokens(), H = cfg_.hidden, S = cfg_.seq_len;
  const std::int64_t dh = cfg_.head_dim();

  Tensor dres2({T, H}), dproj2({T, H}), dinter({T, cfg_.intermediate});
  Tensor dln1({T, H}), dres1({T, H}), dproj({T, H}), dctx({T, H});
  Tensor dqb({T, H}), dkb({T, H}), dvb({T, H}), tmp({T, H});

  ln2_.backward(dy, res2_.data(), dres2.data());

  // res2 = ln1_out + dropout(proj2): the gradient reaches both summands.
  std::memcpy(dproj2.data(), dres2.data(),
              static_cast<std::size_t>(T * H) * sizeof(float));
  if (cfg_.dropout_p > 0.0f) {
    tpp::DropoutBwd drop{T, H, cfg_.dropout_p};
    drop(dres2.data(), mask2_.data(), dproj2.data());
  }

  out_.backward(inter_in_.data(), dproj2.data(), dinter.data());
  inter_.backward(ln1_out_.data(), dinter.data(), dln1.data());
  add_into(dln1.data(), dres2.data(), dln1.data(), T * H);  // + residual path

  ln1_.backward(dln1.data(), res1_.data(), dres1.data());

  std::memcpy(dproj.data(), dres1.data(),
              static_cast<std::size_t>(T * H) * sizeof(float));
  if (cfg_.dropout_p > 0.0f) {
    tpp::DropoutBwd drop{T, H, cfg_.dropout_p};
    drop(dres1.data(), mask1_.data(), dproj.data());
  }

  attn_out_.backward(ctx_.data(), dproj.data(), dctx.data());

  AttentionHead head{S, dh, H};
  for (std::int64_t b = 0; b < cfg_.batch; ++b) {
    for (std::int64_t h = 0; h < cfg_.heads; ++h) {
      const std::int64_t off = b * S * H + h * dh;
      const float* pt = probs_t_.data() + (b * cfg_.heads + h) * S * S;
      head.backward(qb_.data() + off, kb_.data() + off, vb_.data() + off, pt,
                    dctx.data() + off, dqb.data() + off, dkb.data() + off,
                    dvb.data() + off);
    }
  }

  // dx accumulates the residual path plus the three projections' dgrads.
  std::memcpy(dx, dres1.data(), static_cast<std::size_t>(T * H) * sizeof(float));
  q_.backward(x_.data(), dqb.data(), tmp.data());
  add_into(dx, tmp.data(), dx, T * H);
  k_.backward(x_.data(), dkb.data(), tmp.data());
  add_into(dx, tmp.data(), dx, T * H);
  v_.backward(x_.data(), dvb.data(), tmp.data());
  add_into(dx, tmp.data(), dx, T * H);
}

void BertEncoderLayer::zero_grad() {
  for (FcLayer* fc : {&q_, &k_, &v_, &attn_out_, &inter_, &out_}) fc->zero_grad();
  ln1_.zero_grad();
  ln2_.zero_grad();
}

void BertEncoderLayer::sgd_step(float lr) {
  for (FcLayer* fc : {&q_, &k_, &v_, &attn_out_, &inter_, &out_}) fc->sgd_step(lr);
  ln1_.sgd_step(lr);
  ln2_.sgd_step(lr);
}

double BertEncoderLayer::forward_flops() const {
  double f = 0.0;
  for (const FcLayer* fc : {&q_, &k_, &v_, &attn_out_, &inter_, &out_})
    f += fc->forward_flops();
  // Attention: scores + context GEMMs per (batch, head).
  f += 4.0 * static_cast<double>(cfg_.batch) * cfg_.heads * cfg_.seq_len *
       cfg_.seq_len * cfg_.head_dim();
  return f;
}

BertEmbeddings::BertEmbeddings(const BertConfig& cfg, std::int64_t vocab,
                               Xoshiro256& rng)
    : cfg_(cfg), vocab_(vocab) {
  table_.reshape({vocab, cfg.hidden});
  table_.randn_uniform(rng, -0.1f, 0.1f);
  ln_ = std::make_unique<LayerNorm>(cfg.tokens(), cfg.hidden);
}

void BertEmbeddings::forward(const std::int32_t* token_ids, float* out,
                             Xoshiro256& rng) const {
  const std::int64_t T = cfg_.tokens(), H = cfg_.hidden;
  std::vector<float> looked(static_cast<std::size_t>(T * H));
  for (std::int64_t t = 0; t < T; ++t) {
    const std::int64_t id = token_ids[t] % vocab_;
    std::memcpy(looked.data() + t * H, table_.data() + id * H,
                static_cast<std::size_t>(H) * sizeof(float));
  }
  ln_->forward(looked.data(), out);
  if (cfg_.dropout_p > 0.0f) {
    std::vector<std::uint8_t> mask(static_cast<std::size_t>(T * H));
    tpp::DropoutFwd drop{T, H, cfg_.dropout_p};
    drop(out, rng, out, mask.data());
  }
}

BertEncoder::BertEncoder(BertConfig cfg, Xoshiro256& rng) : cfg_(cfg) {
  for (std::int64_t l = 0; l < cfg_.layers; ++l) {
    layers_.push_back(std::make_unique<BertEncoderLayer>(cfg_, rng));
  }
  acts_.resize(static_cast<std::size_t>(cfg_.layers) + 1);
  for (auto& a : acts_) a.reshape({cfg_.tokens(), cfg_.hidden});
}

void BertEncoder::forward(const float* x, float* y, Xoshiro256& rng) const {
  const std::size_t bytes =
      static_cast<std::size_t>(cfg_.tokens() * cfg_.hidden) * sizeof(float);
  std::memcpy(acts_[0].data(), x, bytes);
  for (std::int64_t l = 0; l < cfg_.layers; ++l) {
    layers_[static_cast<std::size_t>(l)]->forward(
        acts_[static_cast<std::size_t>(l)].data(),
        acts_[static_cast<std::size_t>(l) + 1].data(), rng);
  }
  std::memcpy(y, acts_[static_cast<std::size_t>(cfg_.layers)].data(), bytes);
}

double BertEncoder::training_step(const float* x, const float* target,
                                  float lr, Xoshiro256& rng) {
  const std::int64_t n = cfg_.tokens() * cfg_.hidden;
  Tensor y({cfg_.tokens(), cfg_.hidden});
  forward(x, y.data(), rng);

  // L2 loss and its gradient.
  double loss = 0.0;
  Tensor grad({cfg_.tokens(), cfg_.hidden});
  for (std::int64_t i = 0; i < n; ++i) {
    const float d = y[static_cast<std::size_t>(i)] - target[i];
    loss += 0.5 * static_cast<double>(d) * d;
    grad[static_cast<std::size_t>(i)] = d / static_cast<float>(n);
  }
  loss /= static_cast<double>(n);

  Tensor dx({cfg_.tokens(), cfg_.hidden});
  for (std::int64_t l = cfg_.layers - 1; l >= 0; --l) {
    auto& layer = *layers_[static_cast<std::size_t>(l)];
    layer.zero_grad();
    layer.backward(grad.data(), dx.data());
    std::swap(grad, dx);
    layer.sgd_step(lr);
  }
  return loss;
}

double BertEncoder::forward_flops() const {
  double f = 0.0;
  for (const auto& l : layers_) f += l->forward_flops();
  return f;
}

SparseBertEncoderLayer::SparseBertEncoderLayer(const BertConfig& cfg,
                                               double sparsity,
                                               std::int64_t block,
                                               Xoshiro256& rng)
    : cfg_(cfg),
      ln1_(cfg.tokens(), cfg.hidden),
      ln2_(cfg.tokens(), cfg.hidden) {
  const std::int64_t T = cfg.tokens(), H = cfg.hidden, I = cfg.intermediate;
  const auto make = [&](std::int64_t in_f, std::int64_t out_f, bool gelu) {
    Tensor w({out_f, in_f}), b({out_f});
    w.randn_uniform(rng, -0.05f, 0.05f);
    b.randn_uniform(rng, -0.01f, 0.01f);
    SparseFcConfig sc;
    sc.in_features = in_f;
    sc.out_features = out_f;
    sc.tokens = T;
    sc.block = block;
    sc.sparsity = sparsity;
    sc.dtype = cfg.dtype;
    sc.gelu = gelu;
    return std::make_unique<SparseFcLayer>(sc, w, b);
  };
  q_ = make(H, H, false);
  k_ = make(H, H, false);
  v_ = make(H, H, false);
  attn_out_ = make(H, H, false);
  inter_ = make(H, I, true);
  out_ = make(I, H, false);
  qb_.reshape({T, H});
  kb_.reshape({T, H});
  vb_.reshape({T, H});
  ctx_.reshape({T, H});
  proj_.reshape({T, H});
  res1_.reshape({T, H});
  ln1_out_.reshape({T, H});
  inter_out_.reshape({T, I});
  proj2_.reshape({T, H});
  res2_.reshape({T, H});
  probs_t_.reshape({cfg.batch * cfg.heads, cfg.seq_len, cfg.seq_len});
}

void SparseBertEncoderLayer::forward(const float* x, float* y) const {
  const std::int64_t T = cfg_.tokens(), H = cfg_.hidden, S = cfg_.seq_len;
  const std::int64_t dh = cfg_.head_dim();
  q_->forward(x, qb_.data());
  k_->forward(x, kb_.data());
  v_->forward(x, vb_.data());
  AttentionHead head{S, dh, H};
  for (std::int64_t b = 0; b < cfg_.batch; ++b)
    for (std::int64_t h = 0; h < cfg_.heads; ++h) {
      const std::int64_t off = b * S * H + h * dh;
      head.forward(qb_.data() + off, kb_.data() + off, vb_.data() + off,
                   ctx_.data() + off,
                   probs_t_.data() + (b * cfg_.heads + h) * S * S);
    }
  attn_out_->forward(ctx_.data(), proj_.data());
  add_into(x, proj_.data(), res1_.data(), T * H);
  ln1_.forward(res1_.data(), ln1_out_.data());
  inter_->forward(ln1_out_.data(), inter_out_.data());
  out_->forward(inter_out_.data(), proj2_.data());
  add_into(ln1_out_.data(), proj2_.data(), res2_.data(), T * H);
  ln2_.forward(res2_.data(), y);
}

double SparseBertEncoderLayer::dense_flops() const {
  double f = 0.0;
  for (const auto* fc : {q_.get(), k_.get(), v_.get(), attn_out_.get(),
                         inter_.get(), out_.get()})
    f += fc->dense_flops();
  return f;
}

double SparseBertEncoderLayer::effective_flops() const {
  double f = 0.0;
  for (const auto* fc : {q_.get(), k_.get(), v_.get(), attn_out_.get(),
                         inter_.get(), out_.get()})
    f += fc->effective_flops();
  return f;
}

}  // namespace plt::dl
