#include "dl/fc_layer.hpp"

#include <cstring>

#include "common/check.hpp"
#include "tpp/transforms.hpp"

namespace plt::dl {

namespace {

// Packs a row-major (out x in) weight matrix into the blocked A layout
// A[Mb][Kb][bk][bm] (bm fastest), VNNI2-packing bf16 blocks.
void pack_weight_blocked(const float* w_rowmajor, std::int64_t M,
                         std::int64_t K, std::int64_t bm, std::int64_t bk,
                         DType dtype, std::uint8_t* out) {
  const std::int64_t Mb = M / bm, Kb = K / bk;
  const std::int64_t blk_elems =
      dtype == DType::BF16 ? tpp::vnni2_elems(bm, bk) : bm * bk;
  std::vector<bf16> tile(static_cast<std::size_t>(bm * bk));
  for (std::int64_t im = 0; im < Mb; ++im)
    for (std::int64_t ik = 0; ik < Kb; ++ik) {
      if (dtype == DType::F32) {
        float* dst = reinterpret_cast<float*>(out) + (im * Kb + ik) * blk_elems;
        for (std::int64_t kk = 0; kk < bk; ++kk)
          for (std::int64_t mm = 0; mm < bm; ++mm)
            dst[mm + kk * bm] =
                w_rowmajor[(im * bm + mm) * K + (ik * bk + kk)];
      } else {
        for (std::int64_t kk = 0; kk < bk; ++kk)
          for (std::int64_t mm = 0; mm < bm; ++mm)
            tile[static_cast<std::size_t>(mm + kk * bm)] = bf16::from_f32(
                w_rowmajor[(im * bm + mm) * K + (ik * bk + kk)]);
        tpp::vnni2_pack(tile.data(),
                        reinterpret_cast<bf16*>(out) + (im * Kb + ik) * blk_elems,
                        bm, bk, bm);
      }
    }
}

}  // namespace

FcLayer::FcLayer(FcConfig cfg, Xoshiro256& rng)
    : cfg_(cfg),
      bias_tpp_(tpp::BinaryDesc{tpp::BinaryKind::kAdd, cfg.bm, cfg.bn, 0,
                                cfg.out_features, cfg.out_features, DType::F32,
                                DType::F32, DType::F32, tpp::Broadcast::kCol}),
      act_tpp_(tpp::UnaryDesc{cfg.act == FcActivation::kGelu
                                  ? tpp::UnaryKind::kGelu
                                  : tpp::UnaryKind::kRelu,
                              cfg.bm, cfg.bn, cfg.out_features,
                              cfg.out_features, DType::F32, DType::F32, 1.0f}) {
  PLT_CHECK(cfg_.in_features % cfg_.bk == 0 &&
                cfg_.out_features % cfg_.bm == 0 &&
                cfg_.out_features % cfg_.bk == 0 &&
                cfg_.in_features % cfg_.bm == 0,
            "fc: block sizes must divide features (both directions, for the "
            "dgrad transpose)");
  weight_.reshape({cfg_.out_features, cfg_.in_features});
  bias_.reshape({cfg_.out_features});
  dweight_.reshape({cfg_.out_features, cfg_.in_features});
  dbias_.reshape({cfg_.out_features});
  preact_.reshape({cfg_.tokens, cfg_.out_features});
  weight_.randn_uniform(rng, -0.05f, 0.05f);
  bias_.randn_uniform(rng, -0.01f, 0.01f);

  const std::int64_t Mb = cfg_.out_features / cfg_.bm;
  const std::int64_t Kb = cfg_.in_features / cfg_.bk;
  const std::int64_t blk =
      cfg_.dtype == DType::BF16 ? tpp::vnni2_elems(cfg_.bm, cfg_.bk)
                                : cfg_.bm * cfg_.bk;
  w_blocked_.resize(static_cast<std::size_t>(Mb * Kb * blk) *
                    dtype_size(cfg_.dtype));
  // dgrad operates on fp32 master weights: A = W^T blocked with (bm', bk')
  // = (bk, bm) so the same divisibility holds.
  const std::int64_t Ib = cfg_.in_features / cfg_.bk;
  const std::int64_t Ob = cfg_.out_features / cfg_.bm;
  wt_blocked_.resize(static_cast<std::size_t>(Ib * Ob * cfg_.bk * cfg_.bm) *
                     sizeof(float));
  if (cfg_.dtype == DType::BF16) {
    in_stage_.resize(static_cast<std::size_t>(cfg_.tokens * cfg_.in_features) *
                     sizeof(bf16));
  }
  repack();

  // The dgrad GEMM needs bn | tokens; inference-only layers (e.g. the LLM
  // decode path with arbitrary token counts) simply never build it.
  if (cfg_.tokens % cfg_.bn == 0) {
    kernels::GemmConfig dg;
    dg.M = cfg_.in_features;
    dg.N = cfg_.tokens;
    dg.K = cfg_.out_features;
    dg.bm = cfg_.bk;   // in-features blocked by bk
    dg.bn = cfg_.bn;
    dg.bk = cfg_.bm;   // out-features blocked by bm
    dg.dtype = DType::F32;
    dg.loop_spec = cfg_.loop_spec;
    dg.backend = cfg_.backend;
    dgrad_gemm_ = std::make_unique<kernels::GemmKernel>(dg);
  }
}

void FcLayer::repack() {
  pack_weight_blocked(weight_.data(), cfg_.out_features, cfg_.in_features,
                      cfg_.bm, cfg_.bk, cfg_.dtype, w_blocked_.data());
  // W^T (in x out) in fp32 blocks (bm' = bk, bk' = bm).
  std::vector<float> wt(static_cast<std::size_t>(cfg_.in_features *
                                                 cfg_.out_features));
  for (std::int64_t o = 0; o < cfg_.out_features; ++o)
    for (std::int64_t i = 0; i < cfg_.in_features; ++i)
      wt[static_cast<std::size_t>(i * cfg_.out_features + o)] =
          weight_[static_cast<std::size_t>(o * cfg_.in_features + i)];
  pack_weight_blocked(wt.data(), cfg_.in_features, cfg_.out_features, cfg_.bk,
                      cfg_.bm, DType::F32, wt_blocked_.data());
}

void FcLayer::forward(const float* input, float* output) const {
  forward_tokens(input, cfg_.tokens, output);
}

namespace {

// Footprints of one (ik, im, is) forward invocation: the bm x bn output tile
// (ld = out_features) is read-modify-written across the K reduction, the
// pre-activation stash is written on the last K step (over-approximated as
// every step, per the AccessMap contract), weights and the input panel are
// read-only.
parlooper::AccessMap fc_access_map(const FcConfig& cfg, std::int64_t bn) {
  const std::int64_t Kb = cfg.in_features / cfg.bk;
  const std::int64_t a_blk = cfg.dtype == DType::BF16
                                 ? tpp::vnni2_elems(cfg.bm, cfg.bk)
                                 : cfg.bm * cfg.bk;
  parlooper::AccessMap access;
  access
      .add_write("out", {0, cfg.bm, bn * cfg.out_features}, cfg.bm, bn,
                 cfg.out_features)
      .add_read("out", {0, cfg.bm, bn * cfg.out_features}, cfg.bm, bn,
                cfg.out_features)
      .add_write("preact", {0, cfg.bm, bn * cfg.out_features}, cfg.bm, bn,
                 cfg.out_features)
      .add_read("weights", {a_blk, Kb * a_blk, 0}, a_blk)
      .add_read("in", {cfg.bk, 0, bn * cfg.in_features}, cfg.bk, bn,
                cfg.in_features);
  return access;
}

}  // namespace

// The compiled forward pipeline for one token count, built once per S and
// memoized so the serving/decode hot path touches no cache-key machinery.
struct FcLayer::TokenPlan {
  std::int64_t bn;
  tpp::BrgemmTPP brgemm;
  tpp::UnaryTPP zero;
  tpp::BinaryTPP bias;
  tpp::UnaryTPP act;
  parlooper::LoopNest nest;

  TokenPlan(const FcConfig& cfg, std::int64_t S, std::int64_t bn_in)
      : bn(bn_in),
        brgemm(tpp::BrgemmDesc{
            cfg.bm, bn, cfg.bk,
            /*lda=*/cfg.bm, /*ldb=*/cfg.in_features, /*ldc=*/cfg.out_features,
            cfg.dtype, cfg.dtype, DType::F32, /*beta=*/1.0f,
            tpp::BrgemmVariant::kStride,
            cfg.dtype == DType::BF16 ? tpp::ALayout::kVnni2
                                     : tpp::ALayout::kFlat,
            /*stride_a=*/cfg.dtype == DType::BF16
                ? tpp::vnni2_elems(cfg.bm, cfg.bk)
                : cfg.bm * cfg.bk,
            /*stride_b=*/cfg.bk}),
        zero(tpp::UnaryDesc{tpp::UnaryKind::kZero, cfg.bm, bn, 0,
                            cfg.out_features, DType::F32, DType::F32, 1.0f}),
        bias(tpp::BinaryDesc{tpp::BinaryKind::kAdd, cfg.bm, bn, 0,
                             cfg.out_features, cfg.out_features, DType::F32,
                             DType::F32, DType::F32, tpp::Broadcast::kCol}),
        act(tpp::UnaryDesc{cfg.act == FcActivation::kGelu
                               ? tpp::UnaryKind::kGelu
                               : tpp::UnaryKind::kRelu,
                           cfg.bm, bn, cfg.out_features, cfg.out_features,
                           DType::F32, DType::F32, 1.0f}),
        nest({parlooper::LoopSpecs{0, cfg.in_features / cfg.bk, 1},
              parlooper::LoopSpecs{0, cfg.out_features / cfg.bm, 1},
              parlooper::LoopSpecs{0, S / bn, 1}},
             cfg.loop_spec, cfg.backend, fc_access_map(cfg, bn_in)) {}
};

FcLayer::~FcLayer() = default;

FcLayer::TokenPlan& FcLayer::token_plan(std::int64_t S) const {
  for (auto& entry : token_plans_) {
    if (entry.first == S) return *entry.second;
  }
  const std::int64_t bn = S % cfg_.bn == 0 ? cfg_.bn : 1;
  token_plans_.emplace_back(S, std::make_unique<TokenPlan>(cfg_, S, bn));
  return *token_plans_.back().second;
}

void FcLayer::forward_tokens(const float* input, std::int64_t S,
                             float* output) const {
  const std::int64_t in_f = cfg_.in_features, out_f = cfg_.out_features;
  const std::int64_t Kb = in_f / cfg_.bk;
  PLT_CHECK(S <= cfg_.tokens, "fc: token count exceeds configured maximum");

  TokenPlan& tp = token_plan(S);
  const std::int64_t bn = tp.bn;

  // The B operand: a row-major [S][in] activation is a column-major
  // in x S matrix with ld = in.
  const void* b_panel = input;
  if (cfg_.dtype == DType::BF16) {
    bf16* staged = reinterpret_cast<bf16*>(in_stage_.data());
    for (std::int64_t i = 0; i < S * in_f; ++i)
      staged[i] = bf16::from_f32(input[i]);
    b_panel = staged;
  }

  tpp::BrgemmTPP& brgemm = tp.brgemm;
  tpp::UnaryTPP& zero = tp.zero;
  tpp::BinaryTPP& bias_tpp = tp.bias;
  tpp::UnaryTPP& act_tpp = tp.act;

  const std::size_t esz = dtype_size(cfg_.dtype);
  const char* bp = static_cast<const char*>(b_panel);
  const std::int64_t a_blk =
      cfg_.dtype == DType::BF16 ? tpp::vnni2_elems(cfg_.bm, cfg_.bk)
                                : cfg_.bm * cfg_.bk;
  const bool has_act = cfg_.act != FcActivation::kNone;
  float* pre = preact_.data();

  tp.nest([&](const std::int64_t* ind) {
    const std::int64_t ik = ind[0], im = ind[1], is = ind[2];
    // C tile (bm x bn) inside the column-major out x S output.
    float* c_tile = output + im * cfg_.bm + is * bn * out_f;
    if (ik == 0) zero(nullptr, c_tile);
    brgemm(w_blocked_.data() + static_cast<std::size_t>((im * Kb + ik) * a_blk) * esz,
           bp + static_cast<std::size_t>(ik * cfg_.bk + is * bn * in_f) * esz,
           c_tile, 1);
    if (ik == Kb - 1) {
      if (cfg_.with_bias)
        bias_tpp(bias_.data() + im * cfg_.bm, c_tile, c_tile);
      if (has_act) {
        // Save the pre-activation for the backward pass, then activate.
        float* p_tile = pre + im * cfg_.bm + is * bn * out_f;
        for (std::int64_t j = 0; j < bn; ++j)
          std::memcpy(p_tile + j * out_f, c_tile + j * out_f,
                      sizeof(float) * static_cast<std::size_t>(cfg_.bm));
        act_tpp(c_tile, c_tile);
      }
    }
  });
}

void FcLayer::zero_grad() {
  dweight_.zero();
  dbias_.zero();
}

void FcLayer::backward(const float* input, const float* grad_out,
                       float* grad_in) {
  const std::int64_t S = cfg_.tokens, in_f = cfg_.in_features,
                     out_f = cfg_.out_features;

  // Through the activation: g = act'(preact) * grad_out.
  std::vector<float> g(static_cast<std::size_t>(S * out_f));
  if (cfg_.act == FcActivation::kNone) {
    std::memcpy(g.data(), grad_out, g.size() * sizeof(float));
  } else {
    tpp::UnaryTPP bwd(cfg_.act == FcActivation::kGelu
                          ? tpp::UnaryKind::kGeluBwd
                          : tpp::UnaryKind::kReluBwd,
                      out_f, S);  // col-major out x S, ld = out
    bwd(grad_out, g.data(), preact_.data());
  }

  // dbias[o] = sum_s g(o, s): column sums of the out x S col-major view.
  if (cfg_.with_bias) {
    std::vector<float> db(static_cast<std::size_t>(out_f));
    tpp::UnaryTPP reduce(tpp::UnaryKind::kReduceSumCols, out_f, S);
    reduce(g.data(), db.data());
    for (std::int64_t o = 0; o < out_f; ++o)
      dbias_[static_cast<std::size_t>(o)] += db[static_cast<std::size_t>(o)];
  }

  // dI (in x S col-major) = W^T (in x out) x g (out x S).
  if (grad_in != nullptr) {
    PLT_CHECK(dgrad_gemm_ != nullptr,
              "fc: backward requires bn to divide the configured tokens");
    // dgrad_gemm_ consumes blocked B: pack g into B[Nb][Kb'][bn][bk'] with
    // K' = out_f, bk' = bm. The flat col-major source is g (ld = out_f).
    const std::int64_t Kb2 = out_f / cfg_.bm, Nb = S / cfg_.bn;
    std::vector<float> gb(static_cast<std::size_t>(S * out_f));
    for (std::int64_t in = 0; in < Nb; ++in)
      for (std::int64_t ik = 0; ik < Kb2; ++ik)
        for (std::int64_t nn = 0; nn < cfg_.bn; ++nn)
          for (std::int64_t kk = 0; kk < cfg_.bm; ++kk)
            gb[static_cast<std::size_t>(
                (((in * Kb2 + ik) * cfg_.bn + nn) * cfg_.bm) + kk)] =
                g[static_cast<std::size_t>((ik * cfg_.bm + kk) +
                                           (in * cfg_.bn + nn) * out_f)];
    // C blocked [Nb][Mb'][bn][bm'] -> unblock into grad_in (in x S cm).
    std::vector<float> cb(static_cast<std::size_t>(S * in_f));
    dgrad_gemm_->run(wt_blocked_.data(), gb.data(), cb.data());
    dgrad_gemm_->unpack_c(cb.data(), grad_in);
  }

  // dW (col-major out x in) = g (out x S) x input^T; input^T is the
  // row-major [S][in] activation transposed to col-major S x in.
  std::vector<float> xt(static_cast<std::size_t>(S * in_f));
  tpp::transpose_2d(input, xt.data(), in_f, S, in_f, S);
  std::vector<float> dw(static_cast<std::size_t>(out_f * in_f));
  tpp::GemmTPP wgrad(out_f, in_f, S, 0.0f);
  wgrad(g.data(), xt.data(), dw.data());
  // Accumulate into the row-major master gradient.
  for (std::int64_t o = 0; o < out_f; ++o)
    for (std::int64_t i = 0; i < in_f; ++i)
      dweight_[static_cast<std::size_t>(o * in_f + i)] +=
          dw[static_cast<std::size_t>(o + i * out_f)];
}

void FcLayer::sgd_step(float lr) {
  for (std::int64_t i = 0; i < weight_.numel(); ++i)
    weight_[static_cast<std::size_t>(i)] -=
        lr * dweight_[static_cast<std::size_t>(i)];
  for (std::int64_t i = 0; i < bias_.numel(); ++i)
    bias_[static_cast<std::size_t>(i)] -= lr * dbias_[static_cast<std::size_t>(i)];
  repack();
}

}  // namespace plt::dl
