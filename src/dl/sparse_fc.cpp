#include "dl/sparse_fc.hpp"

#include "common/check.hpp"
#include "tpp/unary.hpp"

namespace plt::dl {

SparseFcLayer::SparseFcLayer(SparseFcConfig cfg, const Tensor& dense_weight,
                             const Tensor& bias)
    : cfg_([&] {
        if (cfg.bn == 0) cfg.bn = cfg.tokens;
        return cfg;
      }()),
      a_([&] {
        PLT_CHECK(dense_weight.dim(0) == cfg_.out_features &&
                      dense_weight.dim(1) == cfg_.in_features,
                  "sparse fc: weight shape mismatch");
        // The SpMM's A is column-major (out x in); the master weights are
        // row-major (out x in) — transpose while densifying.
        std::vector<float> cm(static_cast<std::size_t>(cfg_.out_features *
                                                       cfg_.in_features));
        for (std::int64_t o = 0; o < cfg_.out_features; ++o)
          for (std::int64_t i = 0; i < cfg_.in_features; ++i)
            cm[static_cast<std::size_t>(o + i * cfg_.out_features)] =
                dense_weight[static_cast<std::size_t>(o * cfg_.in_features + i)];
        return tpp::BcscMatrix::prune_from_dense(
            cm.data(), cfg_.out_features, cfg_.in_features, cfg_.block,
            cfg_.block, cfg_.dtype, cfg_.sparsity);
      }()),
      bias_(bias) {
  kernels::SpmmConfig sc;
  sc.M = cfg_.out_features;
  sc.N = cfg_.tokens;
  sc.K = cfg_.in_features;
  sc.bm = cfg_.block;
  sc.bk = cfg_.block;
  sc.bn = cfg_.bn;
  sc.dtype = cfg_.dtype;
  sc.loop_spec = cfg_.loop_spec;
  kernel_ = std::make_unique<kernels::SpmmKernel>(sc);
  if (cfg_.dtype == DType::BF16) {
    in_stage_.resize(static_cast<std::size_t>(cfg_.tokens * cfg_.in_features));
  }
}

void SparseFcLayer::forward(const float* input, float* output) const {
  // Row-major [S][in] is column-major in x S — exactly the dense B panel.
  const void* b = input;
  if (cfg_.dtype == DType::BF16) {
    for (std::int64_t i = 0; i < cfg_.tokens * cfg_.in_features; ++i)
      in_stage_[static_cast<std::size_t>(i)] = bf16::from_f32(input[i]);
    b = in_stage_.data();
  }
  kernel_->run(a_, b, output);

  // Bias + optional activation on the full (out x S col-major) output.
  const std::int64_t S = cfg_.tokens, out_f = cfg_.out_features;
  for (std::int64_t s = 0; s < S; ++s) {
    float* col = output + s * out_f;
    for (std::int64_t o = 0; o < out_f; ++o) {
      float v = col[o] + bias_[static_cast<std::size_t>(o)];
      if (cfg_.gelu) v = tpp::gelu_fwd_scalar(v);
      col[o] = v;
    }
  }
}

double SparseFcLayer::effective_flops() const { return kernel_->flops(a_); }
double SparseFcLayer::dense_flops() const { return kernel_->dense_flops(); }

}  // namespace plt::dl
