#include "dl/resnet.hpp"

#include <cmath>
#include <cstring>

#include "common/check.hpp"

namespace plt::dl {

namespace {

std::int64_t pick_bc(std::int64_t channels, std::int64_t block) {
  return channels % block == 0 ? block : channels;
}

}  // namespace

float FeatureMap::get(std::int64_t n, std::int64_t c, std::int64_t h,
                      std::int64_t w) const {
  const std::int64_t Cb = C / block;
  const std::size_t idx = static_cast<std::size_t>(
      (((n * Cb + c / block) * H + h) * W + w) * block + c % block);
  if (dtype == DType::F32) return reinterpret_cast<const float*>(data.data())[idx];
  return reinterpret_cast<const bf16*>(data.data())[idx].to_f32();
}

void FeatureMap::set(std::int64_t n, std::int64_t c, std::int64_t h,
                     std::int64_t w, float v) {
  const std::int64_t Cb = C / block;
  const std::size_t idx = static_cast<std::size_t>(
      (((n * Cb + c / block) * H + h) * W + w) * block + c % block);
  if (dtype == DType::F32) {
    reinterpret_cast<float*>(data.data())[idx] = v;
  } else {
    reinterpret_cast<bf16*>(data.data())[idx] = bf16::from_f32(v);
  }
}

ConvBnRelu::ConvBnRelu(std::int64_t in_c, std::int64_t out_c,
                       std::int64_t kernel, std::int64_t stride,
                       std::int64_t pad, std::int64_t N, std::int64_t H,
                       std::int64_t W, DType dtype, bool relu, Xoshiro256& rng,
                       std::int64_t block)
    : relu_(relu) {
  kernels::ConvConfig cc;
  cc.N = N;
  cc.C = in_c;
  cc.K = out_c;
  cc.H = H;
  cc.W = W;
  cc.R = kernel;
  cc.S = kernel;
  cc.stride_h = stride;
  cc.stride_w = stride;
  cc.pad_h = pad;
  cc.pad_w = pad;
  cc.bc = pick_bc(in_c, block);
  cc.bk = pick_bc(out_c, block);
  cc.dtype = dtype;
  conv_ = std::make_unique<kernels::ConvKernel>(cc);

  weights_.resize(conv_->weight_elems() * dtype_size(dtype));
  std::vector<float> kcrs(static_cast<std::size_t>(out_c * in_c * kernel *
                                                   kernel));
  const float scale = 1.0f / std::sqrt(static_cast<float>(in_c * kernel * kernel));
  Xoshiro256 local = rng.split();
  fill_uniform(kcrs.data(), kcrs.size(), local, -scale, scale);
  conv_->pack_weights(kcrs.data(), weights_.data());

  gamma_.reshape({out_c});
  beta_.reshape({out_c});
  gamma_.fill(1.0f);
  beta_.zero();
  in_padded_.resize(conv_->input_elems() * dtype_size(dtype));
}

void ConvBnRelu::run_conv(const FeatureMap& in, FeatureMap& out) const {
  const kernels::ConvConfig& cc = conv_->config();
  PLT_CHECK(in.C == cc.C && in.H == cc.H && in.W == cc.W && in.block == cc.bc,
            "conv block: input feature map mismatch");
  // Copy the unpadded map into the physically padded conv input.
  const std::size_t esz = dtype_size(cc.dtype);
  std::memset(in_padded_.data(), 0, conv_->input_elems() * esz);
  const std::int64_t Cb = cc.Cb(), Hp = cc.Hp(), Wp = cc.Wp();
  const char* src = reinterpret_cast<const char*>(in.data.data());
  char* dst = reinterpret_cast<char*>(in_padded_.data());
  const std::size_t row_bytes = static_cast<std::size_t>(cc.W * cc.bc) * esz;
  for (std::int64_t n = 0; n < cc.N; ++n)
    for (std::int64_t cb = 0; cb < Cb; ++cb)
      for (std::int64_t h = 0; h < cc.H; ++h) {
        const std::size_t s_off = static_cast<std::size_t>(
            (((n * Cb + cb) * cc.H + h) * cc.W) * cc.bc) * esz;
        const std::size_t d_off = static_cast<std::size_t>(
            (((n * Cb + cb) * Hp + h + cc.pad_h) * Wp + cc.pad_w) * cc.bc) * esz;
        std::memcpy(dst + d_off, src + s_off, row_bytes);
      }

  out.N = cc.N;
  out.C = cc.K;
  out.H = cc.P();
  out.W = cc.Q();
  out.block = cc.bk;
  out.dtype = cc.dtype;
  out.allocate();
  conv_->run(in_padded_.data(), weights_.data(), out.data.data());
}

void ConvBnRelu::bn_relu(FeatureMap& out, const FeatureMap* residual) const {
  // Per-channel batch statistics over (N, H, W), then normalize + affine,
  // optional residual add, optional ReLU.
  const std::int64_t spatial = out.N * out.H * out.W;
  std::vector<double> mean(static_cast<std::size_t>(out.C), 0.0);
  std::vector<double> var(static_cast<std::size_t>(out.C), 0.0);
  for (std::int64_t n = 0; n < out.N; ++n)
    for (std::int64_t c = 0; c < out.C; ++c)
      for (std::int64_t h = 0; h < out.H; ++h)
        for (std::int64_t w = 0; w < out.W; ++w)
          mean[static_cast<std::size_t>(c)] += out.get(n, c, h, w);
  for (auto& m : mean) m /= static_cast<double>(spatial);
  for (std::int64_t n = 0; n < out.N; ++n)
    for (std::int64_t c = 0; c < out.C; ++c)
      for (std::int64_t h = 0; h < out.H; ++h)
        for (std::int64_t w = 0; w < out.W; ++w) {
          const double d = out.get(n, c, h, w) - mean[static_cast<std::size_t>(c)];
          var[static_cast<std::size_t>(c)] += d * d;
        }
  for (auto& v : var) v /= static_cast<double>(spatial);

  for (std::int64_t n = 0; n < out.N; ++n)
    for (std::int64_t c = 0; c < out.C; ++c) {
      const float mu = static_cast<float>(mean[static_cast<std::size_t>(c)]);
      const float rstd =
          1.0f / std::sqrt(static_cast<float>(var[static_cast<std::size_t>(c)]) + 1e-5f);
      const float g = gamma_[static_cast<std::size_t>(c)];
      const float b = beta_[static_cast<std::size_t>(c)];
      for (std::int64_t h = 0; h < out.H; ++h)
        for (std::int64_t w = 0; w < out.W; ++w) {
          float v = (out.get(n, c, h, w) - mu) * rstd * g + b;
          if (residual != nullptr) v += residual->get(n, c, h, w);
          if (relu_ && v < 0.0f) v = 0.0f;
          out.set(n, c, h, w, v);
        }
    }
}

void ConvBnRelu::forward(const FeatureMap& in, FeatureMap& out) const {
  run_conv(in, out);
  bn_relu(out, nullptr);
}

void ConvBnRelu::forward_add(const FeatureMap& in, const FeatureMap& residual,
                             FeatureMap& out) const {
  run_conv(in, out);
  bn_relu(out, &residual);
}

namespace {

// 3x3 stride-2 pad-1 max pooling on a blocked feature map.
void maxpool_3x3_s2(const FeatureMap& in, FeatureMap& out) {
  out.N = in.N;
  out.C = in.C;
  out.H = (in.H + 2 - 3) / 2 + 1;
  out.W = (in.W + 2 - 3) / 2 + 1;
  out.block = in.block;
  out.dtype = in.dtype;
  out.allocate();
  for (std::int64_t n = 0; n < in.N; ++n)
    for (std::int64_t c = 0; c < in.C; ++c)
      for (std::int64_t p = 0; p < out.H; ++p)
        for (std::int64_t q = 0; q < out.W; ++q) {
          float mx = -1e30f;
          for (std::int64_t r = 0; r < 3; ++r)
            for (std::int64_t s = 0; s < 3; ++s) {
              const std::int64_t h = p * 2 + r - 1, w = q * 2 + s - 1;
              if (h < 0 || h >= in.H || w < 0 || w >= in.W) continue;
              mx = std::max(mx, in.get(n, c, h, w));
            }
          out.set(n, c, p, q, mx);
        }
}

}  // namespace

ResNet50::ResNet50(ResNetConfig cfg, Xoshiro256& rng) : cfg_(cfg) {
  const std::int64_t cs = cfg_.channel_scale;
  PLT_CHECK(64 % cs == 0, "resnet: channel_scale must divide 64");
  const std::int64_t N = cfg_.N;
  const DType dt = cfg_.dtype;
  const std::int64_t blk = cfg_.block;

  std::int64_t H = cfg_.image, W = cfg_.image;
  stem_ = std::make_unique<ConvBnRelu>(3, 64 / cs, 7, 2, 3, N, H, W, dt, true,
                                       rng, blk);
  H = stem_->out_h();
  W = stem_->out_w();
  // maxpool 3x3/2
  H = (H + 2 - 3) / 2 + 1;
  W = (W + 2 - 3) / 2 + 1;

  const std::int64_t stage_blocks[4] = {3, 4, 6, 3};
  const std::int64_t stage_width[4] = {64 / cs, 128 / cs, 256 / cs, 512 / cs};
  std::int64_t in_c = 64 / cs;
  for (int st = 0; st < 4; ++st) {
    const std::int64_t width = stage_width[st];
    const std::int64_t out_c = width * 4;
    for (std::int64_t b = 0; b < stage_blocks[st]; ++b) {
      const std::int64_t stride = (st > 0 && b == 0) ? 2 : 1;
      Bottleneck bn;
      bn.reduce = std::make_unique<ConvBnRelu>(in_c, width, 1, stride, 0, N, H,
                                               W, dt, true, rng, blk);
      const std::int64_t h2 = bn.reduce->out_h(), w2 = bn.reduce->out_w();
      bn.conv3 = std::make_unique<ConvBnRelu>(width, width, 3, 1, 1, N, h2, w2,
                                              dt, true, rng, blk);
      bn.expand = std::make_unique<ConvBnRelu>(width, out_c, 1, 1, 0, N, h2,
                                               w2, dt, true, rng, blk);
      if (b == 0) {
        bn.downsample = std::make_unique<ConvBnRelu>(
            in_c, out_c, 1, stride, 0, N, H, W, dt, false, rng, blk);
      }
      blocks_.push_back(std::move(bn));
      in_c = out_c;
      if (b == 0) {
        H = h2;
        W = w2;
      }
    }
  }
  final_c_ = in_c;
  fc_w_.reshape({1000, final_c_});
  fc_b_.reshape({1000});
  Xoshiro256 local = rng.split();
  fc_w_.randn_uniform(local, -0.05f, 0.05f);
  fc_b_.zero();
}

void ResNet50::forward(const float* nchw, float* logits) const {
  // Input NCHW -> blocked feature map (stem uses bc = 3).
  FeatureMap x;
  x.N = cfg_.N;
  x.C = 3;
  x.H = cfg_.image;
  x.W = cfg_.image;
  x.block = 3;
  x.dtype = cfg_.dtype;
  x.allocate();
  for (std::int64_t n = 0; n < x.N; ++n)
    for (std::int64_t c = 0; c < 3; ++c)
      for (std::int64_t h = 0; h < x.H; ++h)
        for (std::int64_t w = 0; w < x.W; ++w)
          x.set(n, c, h, w, nchw[((n * 3 + c) * x.H + h) * x.W + w]);

  FeatureMap y, pooled;
  stem_->forward(x, y);
  maxpool_3x3_s2(y, pooled);
  FeatureMap cur = std::move(pooled);

  for (const Bottleneck& bn : blocks_) {
    FeatureMap t1, t2, out, shortcut;
    bn.reduce->forward(cur, t1);
    bn.conv3->forward(t1, t2);
    if (bn.downsample) {
      bn.downsample->forward(cur, shortcut);
      bn.expand->forward_add(t2, shortcut, out);
    } else {
      bn.expand->forward_add(t2, cur, out);
    }
    cur = std::move(out);
  }

  // Global average pool + classifier.
  std::vector<float> feat(static_cast<std::size_t>(cfg_.N * final_c_));
  const double inv = 1.0 / static_cast<double>(cur.H * cur.W);
  for (std::int64_t n = 0; n < cfg_.N; ++n)
    for (std::int64_t c = 0; c < final_c_; ++c) {
      double acc = 0.0;
      for (std::int64_t h = 0; h < cur.H; ++h)
        for (std::int64_t w = 0; w < cur.W; ++w) acc += cur.get(n, c, h, w);
      feat[static_cast<std::size_t>(n * final_c_ + c)] =
          static_cast<float>(acc * inv);
    }
  for (std::int64_t n = 0; n < cfg_.N; ++n)
    for (std::int64_t o = 0; o < 1000; ++o) {
      float acc = fc_b_[static_cast<std::size_t>(o)];
      for (std::int64_t c = 0; c < final_c_; ++c)
        acc += fc_w_[static_cast<std::size_t>(o * final_c_ + c)] *
               feat[static_cast<std::size_t>(n * final_c_ + c)];
      logits[n * 1000 + o] = acc;
    }
}

double ResNet50::forward_flops() const {
  double f = stem_->flops();
  for (const Bottleneck& bn : blocks_) {
    f += bn.reduce->flops() + bn.conv3->flops() + bn.expand->flops();
    if (bn.downsample) f += bn.downsample->flops();
  }
  f += 2.0 * static_cast<double>(cfg_.N) * final_c_ * 1000;
  return f;
}

const std::vector<Fig7ConvShape>& fig7_conv_shapes() {
  static const std::vector<Fig7ConvShape> shapes = {
      {2, 64, 256, 56, 56, 1, 1, 1, 0},    {3, 64, 64, 56, 56, 1, 1, 1, 0},
      {4, 64, 64, 56, 56, 3, 3, 1, 1},     {5, 256, 64, 56, 56, 1, 1, 1, 0},
      {6, 256, 512, 56, 56, 1, 1, 2, 0},   {7, 256, 128, 56, 56, 1, 1, 2, 0},
      {8, 128, 128, 28, 28, 3, 3, 1, 1},   {9, 128, 512, 28, 28, 1, 1, 1, 0},
      {10, 512, 128, 28, 28, 1, 1, 1, 0},  {11, 512, 1024, 28, 28, 1, 1, 2, 0},
      {12, 512, 256, 28, 28, 1, 1, 2, 0},  {13, 256, 256, 14, 14, 3, 3, 1, 1},
      {14, 256, 1024, 14, 14, 1, 1, 1, 0}, {15, 1024, 256, 14, 14, 1, 1, 1, 0},
      {16, 1024, 2048, 14, 14, 1, 1, 2, 0},
      {17, 1024, 512, 14, 14, 1, 1, 2, 0}, {18, 512, 512, 7, 7, 3, 3, 1, 1},
      {19, 512, 2048, 7, 7, 1, 1, 1, 0},   {20, 2048, 512, 7, 7, 1, 1, 1, 0}};
  return shapes;
}

}  // namespace plt::dl
