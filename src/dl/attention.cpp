#include "dl/attention.hpp"

#include <cmath>

#include "tpp/brgemm.hpp"
#include "tpp/equations.hpp"
#include "tpp/transforms.hpp"

namespace plt::dl {

namespace {

// Packs a [seq][dh] slice (row stride ld) into a contiguous dh-major panel
// p[t * dh + d].
void pack_panel(const float* slice, std::int64_t seq, std::int64_t dh,
                std::int64_t ld, float* panel) {
  for (std::int64_t t = 0; t < seq; ++t)
    for (std::int64_t d = 0; d < dh; ++d) panel[t * dh + d] = slice[t * ld + d];
}

}  // namespace

void AttentionHead::forward(const float* q, const float* k, const float* v,
                            float* out, float* probs_t) const {
  const float scale = 1.0f / std::sqrt(static_cast<float>(dh));

  // KT: col-major (seq_k x dh) panel so scores^T = KT x Q is one GEMM.
  std::vector<float> kt(static_cast<std::size_t>(seq * dh));
  tpp::transpose_2d(k, kt.data(), dh, seq, ld, seq);

  // scores^T (key-major): st(j, i) = K_j . Q_i.
  std::vector<float> st(static_cast<std::size_t>(seq * seq));
  tpp::GemmTPP score_gemm(seq, seq, dh, 0.0f, DType::F32, DType::F32,
                          DType::F32, tpp::ALayout::kFlat,
                          /*lda=*/seq, /*ldb=*/ld, /*ldc=*/seq);
  score_gemm(kt.data(), q, st.data());

  // Each query's distribution is one contiguous column of st: softmax over
  // "rows" of the transposed view.
  tpp::softmax_scale_mask_rows(st.data(), probs_t, seq, seq, seq, seq, scale,
                               nullptr);

  // ctx(d, i) = sum_j V(j, d) P(i, j): A = dh-major V panel, B = probs_t.
  std::vector<float> vp(static_cast<std::size_t>(seq * dh));
  pack_panel(v, seq, dh, ld, vp.data());
  tpp::GemmTPP ctx_gemm(dh, seq, seq, 0.0f, DType::F32, DType::F32,
                        DType::F32, tpp::ALayout::kFlat,
                        /*lda=*/dh, /*ldb=*/seq, /*ldc=*/ld);
  ctx_gemm(vp.data(), probs_t, out);
}

void AttentionHead::backward(const float* q, const float* k, const float* v,
                             const float* probs_t, const float* dout,
                             float* dq, float* dk, float* dv) const {
  const float scale = 1.0f / std::sqrt(static_cast<float>(dh));

  // dP^T (key-major): dpt(j, i) = sum_d dout(i, d) V(j, d).
  std::vector<float> vt(static_cast<std::size_t>(seq * dh));
  tpp::transpose_2d(v, vt.data(), dh, seq, ld, seq);
  std::vector<float> dpt(static_cast<std::size_t>(seq * seq));
  tpp::GemmTPP dp_gemm(seq, seq, dh, 0.0f, DType::F32, DType::F32, DType::F32,
                       tpp::ALayout::kFlat, seq, ld, seq);
  dp_gemm(vt.data(), dout, dpt.data());

  // Softmax backward per query distribution (contiguous columns).
  std::vector<float> dst(static_cast<std::size_t>(seq * seq));
  tpp::softmax_rows_bwd(dpt.data(), probs_t, dst.data(), seq, seq, seq);

  // dV(j, d): dv_cm(d, j) = sum_i dout(i, d) P(i, j) — A = dh-major dout
  // panel, B = probs_t read query-major, i.e. the transpose of probs_t.
  std::vector<float> dop(static_cast<std::size_t>(seq * dh));
  pack_panel(dout, seq, dh, ld, dop.data());
  std::vector<float> p_qmajor(static_cast<std::size_t>(seq * seq));
  tpp::transpose_2d(probs_t, p_qmajor.data(), seq, seq, seq, seq);
  tpp::GemmTPP dv_gemm(dh, seq, seq, 0.0f, DType::F32, DType::F32, DType::F32,
                       tpp::ALayout::kFlat, dh, seq, ld);
  dv_gemm(dop.data(), p_qmajor.data(), dv);

  // dQ(i, d) = scale * sum_j dS(i, j) K(j, d): A = dh-major K panel,
  // B = dst (key-major columns per query).
  std::vector<float> kp(static_cast<std::size_t>(seq * dh));
  pack_panel(k, seq, dh, ld, kp.data());
  tpp::GemmTPP dq_gemm(dh, seq, seq, 0.0f, DType::F32, DType::F32, DType::F32,
                       tpp::ALayout::kFlat, dh, seq, ld);
  dq_gemm(kp.data(), dst.data(), dq);

  // dK(j, d) = scale * sum_i dS(i, j) Q(i, d): B must be query-major, so
  // transpose dst once.
  std::vector<float> ds_qmajor(static_cast<std::size_t>(seq * seq));
  tpp::transpose_2d(dst.data(), ds_qmajor.data(), seq, seq, seq, seq);
  std::vector<float> qp(static_cast<std::size_t>(seq * dh));
  pack_panel(q, seq, dh, ld, qp.data());
  tpp::GemmTPP dk_gemm(dh, seq, seq, 0.0f, DType::F32, DType::F32, DType::F32,
                       tpp::ALayout::kFlat, dh, seq, ld);
  dk_gemm(qp.data(), ds_qmajor.data(), dk);

  // Apply the attention scale to dQ and dK.
  for (std::int64_t t = 0; t < seq; ++t)
    for (std::int64_t d = 0; d < dh; ++d) {
      dq[t * ld + d] *= scale;
      dk[t * ld + d] *= scale;
    }
}

}  // namespace plt::dl
