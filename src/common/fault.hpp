// Deterministic, seeded fault injection — the hook chaos tests, the CI
// chaos job, and future retry/watchdog logic drive.
//
// Grammar (PLT_FAULT_SPEC): semicolon-separated `site:kind:prob[:max]`
// entries, e.g.
//
//   PLT_FAULT_SPEC="kernel_exec:throw:0.01;queue_push:full:0.05"
//   PLT_FAULT_SEED=42
//
// Sites: kernel_exec (PARLOOPER nest dispatch), queue_push (serving
// admission queue), session_warmup (Session::warmup), registry_lookup
// (ModelRegistry::lookup), net_write (network server response writes: the
// event loop's send path), dispatcher_stall (a shard dispatcher wedges at
// the top of its loop until the watchdog restarts it — any kind stalls),
// conn_accept (the server closes a freshly-accepted connection at the
// door — drives client retries/breakers). Kinds: `throw` (plt::RuntimeError,
// kInternal), `full`/`fail` (the site reports its non-exceptional failure: a
// full queue, a failed lookup; at net_write, `full` forces a 1-byte short
// write — the partial-write path — and `fail`/`throw` a connection reset).
// The optional 4th field caps the number of fires at the site (0 / absent =
// unlimited): `dispatcher_stall:fail:1:1` stalls exactly the first
// dispatcher iteration that evaluates the site and nothing after — the
// deterministic single-fault the watchdog tests arm. A malformed entry
// warns and is dropped; it never arms.
//
// Determinism. Each site keeps an atomic event counter; event n fires iff
// splitmix64(seed ^ site ^ n) maps below the armed probability. For a fixed
// seed the fired SUBSET {n} per site is exactly reproducible; which request
// draws which event number depends on thread interleaving, so chaos tests
// assert counter accounting and per-status invariants, not request
// identities.
//
// Cost when unset: one relaxed atomic load + branch per site (the spec is
// compiled in always — no rebuild needed to chaos-test a production binary).
#pragma once

#include <cstdint>
#include <string>

namespace plt::common::fault {

enum class Site : int {
  kKernelExec = 0,
  kQueuePush = 1,
  kSessionWarmup = 2,
  kRegistryLookup = 3,
  kNetWrite = 4,
  kDispatcherStall = 5,
  kConnAccept = 6,
};
inline constexpr int kSiteCount = 7;

enum class Kind : int {
  kNone = 0,   // site not armed / did not fire
  kThrow = 1,  // site throws plt::RuntimeError(kInternal, ...)
  kFull = 2,   // site reports a full-queue / backpressure condition
  kFail = 3,   // site reports a non-exceptional failure (status, nullptr)
};

const char* site_name(Site s);

// True when any site is armed (spec parsed from env or configure()).
bool enabled();

// Evaluates the site's fault point: bumps the event counter and returns the
// armed Kind when this event fires, kNone otherwise. Suppressed scopes (see
// SuppressGuard) and unarmed sites return kNone without consuming an event.
Kind should_inject(Site s);

// Convenience for `throw`-kind sites: calls should_inject and throws
// plt::RuntimeError(kInternal, "injected fault at <site>") when it fires.
// Returns the Kind for sites that also handle full/fail inline.
Kind fire_point(Site s);

// Exact accounting for tests and the CI chaos job.
std::uint64_t evaluated(Site s);  // events drawn at this site
std::uint64_t injected(Site s);   // events that fired

// Programmatic (re)configuration — what PLT_FAULT_SPEC/PLT_FAULT_SEED do
// from the environment, callable from tests and demos. Resets all counters.
// An empty spec disarms every site.
void configure(const std::string& spec, std::uint64_t seed);

// Disarms all sites and resets counters.
void reset();

// Scoped suppression (process-global, reference-counted): construction and
// warmup paths run real kernels through the kernel_exec site, but a fault
// there is construction noise, not serving chaos — Session::warmup and the
// first-touch pin warmup suppress injection for their duration. The guard
// is global (warmup fans out onto pool workers), so chaos specs should be
// armed while no session is concurrently constructing.
class SuppressGuard {
 public:
  SuppressGuard();
  ~SuppressGuard();
  SuppressGuard(const SuppressGuard&) = delete;
  SuppressGuard& operator=(const SuppressGuard&) = delete;
};

}  // namespace plt::common::fault
