#include "common/log.hpp"

#include <cstdio>
#include <cstdlib>
#include <mutex>

namespace plt {

int log_level() {
  static const int level = [] {
    if (const char* env = std::getenv("PLT_LOG_LEVEL")) return std::atoi(env);
    return 1;  // warnings and errors by default
  }();
  return level;
}

void log_message(LogLevel level, const std::string& msg) {
  static std::mutex mu;
  static const char* names[] = {"ERROR", "WARN", "INFO", "DEBUG"};
  std::lock_guard<std::mutex> lock(mu);
  std::fprintf(stderr, "[plt %s] %s\n", names[static_cast<int>(level)],
               msg.c_str());
}

}  // namespace plt
