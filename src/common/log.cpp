#include "common/log.hpp"

#include <cstdio>
#include <mutex>

#include "common/env.hpp"

namespace plt {

int log_level() {
  // quiet: warning about a malformed value would re-enter this function
  // while the static is still initializing. 1 = warnings and errors.
  static const int level =
      static_cast<int>(common::env_int_quiet("PLT_LOG_LEVEL", 1, 0, 3));
  return level;
}

void log_message(LogLevel level, const std::string& msg) {
  static std::mutex mu;
  static const char* names[] = {"ERROR", "WARN", "INFO", "DEBUG"};
  std::lock_guard<std::mutex> lock(mu);
  std::fprintf(stderr, "[plt %s] %s\n", names[static_cast<int>(level)],
               msg.c_str());
}

}  // namespace plt
