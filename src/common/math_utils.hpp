// Small integer-math helpers shared by the tuner (prime-factor blockings,
// Section II-D constraint 2) and by layout code.
#pragma once

#include <cstdint>
#include <vector>

#include "common/check.hpp"

namespace plt {

inline std::int64_t ceil_div(std::int64_t a, std::int64_t b) {
  PLT_DCHECK(b > 0, "ceil_div by non-positive");
  return (a + b - 1) / b;
}

inline std::int64_t round_up(std::int64_t a, std::int64_t b) {
  return ceil_div(a, b) * b;
}

// Prime factorization in ascending order, e.g. 12 -> {2, 2, 3}.
inline std::vector<std::int64_t> prime_factors(std::int64_t n) {
  std::vector<std::int64_t> f;
  PLT_CHECK(n >= 1, "prime_factors of non-positive value");
  for (std::int64_t p = 2; p * p <= n; ++p) {
    while (n % p == 0) {
      f.push_back(p);
      n /= p;
    }
  }
  if (n > 1) f.push_back(n);
  return f;
}

// All divisors of n in ascending order.
inline std::vector<std::int64_t> divisors(std::int64_t n) {
  std::vector<std::int64_t> lo, hi;
  for (std::int64_t d = 1; d * d <= n; ++d) {
    if (n % d == 0) {
      lo.push_back(d);
      if (d != n / d) hi.push_back(n / d);
    }
  }
  for (auto it = hi.rbegin(); it != hi.rend(); ++it) lo.push_back(*it);
  return lo;
}

// Prefix products of the prime factors scaled by `step` — the paper's
// programmatic blocking-factor rule (Section II-D, constraint 2):
// l0 = step*p0, l1 = step*p0*p1, ...
inline std::vector<std::int64_t> prefix_product_blockings(std::int64_t trip,
                                                          std::int64_t step) {
  std::vector<std::int64_t> out;
  std::int64_t acc = step;
  for (std::int64_t p : prime_factors(trip)) {
    acc *= p;
    out.push_back(acc);
  }
  return out;
}

}  // namespace plt
