// bfloat16 storage type with round-to-nearest-even conversion.
//
// The TPP backend is "precision aware": tensors may be stored in bf16 while
// all accumulation happens in fp32 (the contract libxsmm and the paper use).
// This type is storage-only on purpose — arithmetic goes through float so the
// numerics are identical between the scalar reference kernels and the
// AVX-512-BF16 fast paths.
#pragma once

#include <cstdint>
#include <cstring>

namespace plt {

struct bf16 {
  std::uint16_t bits = 0;

  bf16() = default;

  // Round-to-nearest-even truncation of an IEEE-754 float, matching the
  // semantics of VCVTNEPS2BF16. NaN payloads are preserved (quietened).
  static bf16 from_f32(float f) {
    std::uint32_t u;
    std::memcpy(&u, &f, sizeof(u));
    bf16 r;
    if ((u & 0x7fffffffu) > 0x7f800000u) {   // NaN: quieten, keep high bits
      r.bits = static_cast<std::uint16_t>((u >> 16) | 0x0040u);
      return r;
    }
    const std::uint32_t lsb = (u >> 16) & 1u;
    u += 0x7fffu + lsb;                       // round to nearest even
    r.bits = static_cast<std::uint16_t>(u >> 16);
    return r;
  }

  float to_f32() const {
    const std::uint32_t u = static_cast<std::uint32_t>(bits) << 16;
    float f;
    std::memcpy(&f, &u, sizeof(f));
    return f;
  }

  explicit bf16(float f) : bits(from_f32(f).bits) {}
  explicit operator float() const { return to_f32(); }

  friend bool operator==(bf16 a, bf16 b) { return a.bits == b.bits; }
  friend bool operator!=(bf16 a, bf16 b) { return a.bits != b.bits; }
};

static_assert(sizeof(bf16) == 2, "bf16 must be 2 bytes");

// Datatype tags used by TPP descriptors (a trimmed-down libxsmm_datatype).
enum class DType : std::uint8_t { F32 = 0, BF16 = 1, I32 = 2, U8 = 3 };

inline std::size_t dtype_size(DType t) {
  switch (t) {
    case DType::F32:  return 4;
    case DType::BF16: return 2;
    case DType::I32:  return 4;
    case DType::U8:   return 1;
  }
  return 0;
}

inline const char* dtype_name(DType t) {
  switch (t) {
    case DType::F32:  return "f32";
    case DType::BF16: return "bf16";
    case DType::I32:  return "i32";
    case DType::U8:   return "u8";
  }
  return "?";
}

template <typename T> struct dtype_of;
template <> struct dtype_of<float> { static constexpr DType value = DType::F32; };
template <> struct dtype_of<bf16>  { static constexpr DType value = DType::BF16; };
template <> struct dtype_of<std::int32_t> { static constexpr DType value = DType::I32; };
template <> struct dtype_of<std::uint8_t> { static constexpr DType value = DType::U8; };

// Uniform load/store helpers so templated kernels can mix precisions.
inline float load_f32(const float* p) { return *p; }
inline float load_f32(const bf16* p) { return p->to_f32(); }
inline void store_f32(float* p, float v) { *p = v; }
inline void store_f32(bf16* p, float v) { *p = bf16::from_f32(v); }

}  // namespace plt
