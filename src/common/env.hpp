// Centralized environment-variable parsing with range validation. Every
// PLT_* knob goes through these helpers so a malformed or out-of-range value
// produces a warning and a documented fallback instead of a silent one
// (the scattered std::getenv call sites used to swallow typos like
// PLT_RUNTIME=pools or PLT_SERVE_MAX_BATCH=-3).
//
// The helpers read the environment on every call; call sites that need a
// stable value for the process lifetime cache the result (function-local
// static), which also keeps the read data-race-free under threads.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <string>

namespace plt::common {

// Integer knob. Unset -> def. Set but non-numeric, trailing garbage, or
// outside [lo, hi] -> warning + def.
std::int64_t env_int(const char* name, std::int64_t def,
                     std::int64_t lo = INT64_MIN, std::int64_t hi = INT64_MAX);

// env_int without the warning path, for knobs the logger itself reads
// (PLT_LOG_LEVEL): warning on a bad value would re-enter log_level() while
// its function-local static is still initializing.
std::int64_t env_int_quiet(const char* name, std::int64_t def,
                           std::int64_t lo = INT64_MIN,
                           std::int64_t hi = INT64_MAX);

// Boolean knob: 0/false/off -> false, 1/true/on -> true (case-sensitive,
// matching the documented spellings). Unset -> def; anything else -> warning
// + def.
bool env_flag(const char* name, bool def);

// Free-form string knob (paths, compiler commands). Unset -> def.
std::string env_str(const char* name, const std::string& def);

// String knob restricted to a closed set (runtime names, ISA names).
// Unset -> def; a value outside `allowed` -> warning + def.
std::string env_enum(const char* name, const std::string& def,
                     std::initializer_list<const char*> allowed);

}  // namespace plt::common
