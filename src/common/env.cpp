#include "common/env.hpp"

#include <cerrno>
#include <cstdlib>
#include <cstring>

#include "common/log.hpp"

namespace plt::common {

namespace {

enum class EnvIntParse { kUnset, kMalformed, kOutOfRange, kOk };

EnvIntParse parse_env_int(const char* name, std::int64_t lo, std::int64_t hi,
                          const char** env_out, std::int64_t* value_out) {
  const char* env = std::getenv(name);
  *env_out = env;
  if (env == nullptr || env[0] == '\0') return EnvIntParse::kUnset;
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(env, &end, 10);
  if (errno != 0 || end == env || *end != '\0') return EnvIntParse::kMalformed;
  *value_out = static_cast<std::int64_t>(v);
  if (v < lo || v > hi) return EnvIntParse::kOutOfRange;
  return EnvIntParse::kOk;
}

}  // namespace

std::int64_t env_int(const char* name, std::int64_t def, std::int64_t lo,
                     std::int64_t hi) {
  const char* env = nullptr;
  std::int64_t v = 0;
  switch (parse_env_int(name, lo, hi, &env, &v)) {
    case EnvIntParse::kUnset:
      return def;
    case EnvIntParse::kMalformed:
      PLT_LOG_WARN << name << "='" << env << "' is not an integer; using "
                   << def;
      return def;
    case EnvIntParse::kOutOfRange:
      PLT_LOG_WARN << name << "=" << v << " outside [" << lo << ", " << hi
                   << "]; using " << def;
      return def;
    case EnvIntParse::kOk:
      return v;
  }
  return def;
}

std::int64_t env_int_quiet(const char* name, std::int64_t def, std::int64_t lo,
                           std::int64_t hi) {
  const char* env = nullptr;
  std::int64_t v = 0;
  return parse_env_int(name, lo, hi, &env, &v) == EnvIntParse::kOk ? v : def;
}

bool env_flag(const char* name, bool def) {
  const char* env = std::getenv(name);
  if (env == nullptr || env[0] == '\0') return def;
  const auto is = [env](const char* s) { return std::strcmp(env, s) == 0; };
  if (is("0") || is("false") || is("off")) return false;
  if (is("1") || is("true") || is("on")) return true;
  PLT_LOG_WARN << name << "='" << env << "' is not a boolean (0/1/true/false/"
               << "on/off); using " << (def ? "1" : "0");
  return def;
}

std::string env_str(const char* name, const std::string& def) {
  const char* env = std::getenv(name);
  return env == nullptr ? def : std::string(env);
}

std::string env_enum(const char* name, const std::string& def,
                     std::initializer_list<const char*> allowed) {
  const char* env = std::getenv(name);
  if (env == nullptr || env[0] == '\0') return def;
  for (const char* a : allowed) {
    if (std::strcmp(env, a) == 0) return env;
  }
  std::string options;
  for (const char* a : allowed) {
    if (!options.empty()) options += "|";
    options += a;
  }
  PLT_LOG_WARN << name << "='" << env << "' is not one of " << options
               << "; using '" << def << "'";
  return def;
}

}  // namespace plt::common
