// Status / StatusOr: the error currency of the serving stack.
//
// The serving layer multiplexes many independent requests onto shared
// threads, so a failure must travel as a *value* attached to the request it
// belongs to — never as an exception unwinding a pool worker (which would
// call std::terminate) and never as a bare bool that loses the reason. The
// exception firewalls (ThreadPool regions, RequestScheduler batches) catch
// at the boundary and convert to Status via status_from_exception(); the
// wire front-end (ROADMAP) will map StatusCode 1:1 onto wire status codes.
#pragma once

#include <new>
#include <stdexcept>
#include <string>
#include <utility>

namespace plt {

enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,    // API misuse: bad shapes, unknown names
  kDeadlineExceeded = 2,   // request deadline passed before execution
  kUnavailable = 3,        // shutdown, quarantined session, missing backend
  kResourceExhausted = 4,  // load shed: saturated queue, allocation failure
  kInternal = 5,           // kernel/runtime failure (incl. injected faults)
  // Non-terminal: the request is submitted but not yet resolved. Only ever
  // observed through RequestHandle::status() before done(); a request never
  // *completes* kInFlight, so it is not a wire/terminal code and does not
  // appear in the scheduler's terminal accounting.
  kInFlight = 6,
};

inline const char* status_code_name(StatusCode c) {
  switch (c) {
    case StatusCode::kOk: return "OK";
    case StatusCode::kInvalidArgument: return "INVALID_ARGUMENT";
    case StatusCode::kDeadlineExceeded: return "DEADLINE_EXCEEDED";
    case StatusCode::kUnavailable: return "UNAVAILABLE";
    case StatusCode::kResourceExhausted: return "RESOURCE_EXHAUSTED";
    case StatusCode::kInternal: return "INTERNAL";
    case StatusCode::kInFlight: return "IN_FLIGHT";
  }
  return "UNKNOWN";
}

// [[nodiscard]]: a dropped Status is a silently-swallowed failure, exactly
// the bug class the serving stack's firewalls exist to prevent. Call sites
// that legitimately ignore one must say so with a (void) cast.
class [[nodiscard]] Status {
 public:
  Status() = default;  // OK
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string m) {
    return Status(StatusCode::kInvalidArgument, std::move(m));
  }
  static Status DeadlineExceeded(std::string m) {
    return Status(StatusCode::kDeadlineExceeded, std::move(m));
  }
  static Status Unavailable(std::string m) {
    return Status(StatusCode::kUnavailable, std::move(m));
  }
  static Status ResourceExhausted(std::string m) {
    return Status(StatusCode::kResourceExhausted, std::move(m));
  }
  static Status Internal(std::string m) {
    return Status(StatusCode::kInternal, std::move(m));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  std::string to_string() const {
    if (ok()) return "OK";
    std::string s = status_code_name(code_);
    if (!message_.empty()) {
      s += ": ";
      s += message_;
    }
    return s;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

// Runtime/environment failure carrying a StatusCode, thrown by PLT_ENSURE
// (common/check.hpp). Firewalls map it back to a Status without string
// matching; PLT_CHECK (API misuse) keeps throwing std::invalid_argument.
class RuntimeError : public std::runtime_error {
 public:
  RuntimeError(StatusCode code, const std::string& what)
      : std::runtime_error(what), code_(code) {}
  StatusCode code() const { return code_; }
  Status to_status() const { return Status(code_, what()); }

 private:
  StatusCode code_;
};

// Exception -> Status mapping used by every firewall:
//   RuntimeError          -> its own code (PLT_ENSURE sites, injected faults)
//   std::invalid_argument -> kInvalidArgument (PLT_CHECK sites)
//   std::bad_alloc        -> kResourceExhausted
//   anything else         -> kInternal
inline Status status_from_exception(const std::exception& e) {
  if (const auto* re = dynamic_cast<const RuntimeError*>(&e)) {
    return re->to_status();
  }
  if (dynamic_cast<const std::invalid_argument*>(&e) != nullptr) {
    return Status::InvalidArgument(e.what());
  }
  if (dynamic_cast<const std::bad_alloc*>(&e) != nullptr) {
    return Status::ResourceExhausted(e.what());
  }
  return Status::Internal(e.what());
}

// Status + value, for lookups that can fail (ModelRegistry::lookup). Minimal
// on purpose: value() requires ok() (checked), no exception-based accessors.
template <typename T>
class [[nodiscard]] StatusOr {
 public:
  StatusOr(Status st) : status_(std::move(st)) {}        // NOLINT(runtime/explicit)
  StatusOr(T value) : value_(std::move(value)) {}        // NOLINT(runtime/explicit)

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const {
    if (!ok()) throw RuntimeError(status_.code(), status_.to_string());
    return value_;
  }
  T& value() {
    if (!ok()) throw RuntimeError(status_.code(), status_.to_string());
    return value_;
  }
  T value_or(T def) const { return ok() ? value_ : std::move(def); }

 private:
  Status status_;  // OK when a value is held
  T value_{};
};

}  // namespace plt
