// Wall-clock timing utilities for benchmarks and the auto-tuner.
#pragma once

#include <chrono>
#include <cstdint>

namespace plt {

class WallTimer {
 public:
  WallTimer() : start_(clock::now()) {}

  void reset() { start_ = clock::now(); }

  double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }
  double millis() const { return seconds() * 1e3; }
  double micros() const { return seconds() * 1e6; }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

// Runs fn() warmup+iters times, returns best-of-iters seconds per call.
// Best-of is the standard convention for kernel benchmarking: it filters
// scheduler noise and reflects the steady-state cache-resident rate.
template <typename Fn>
double time_best_seconds(Fn&& fn, int warmup = 1, int iters = 3) {
  for (int i = 0; i < warmup; ++i) fn();
  double best = 1e300;
  for (int i = 0; i < iters; ++i) {
    WallTimer t;
    fn();
    const double s = t.seconds();
    if (s < best) best = s;
  }
  return best;
}

inline double gflops(double flops, double seconds) {
  return seconds > 0 ? flops / seconds * 1e-9 : 0.0;
}

}  // namespace plt
