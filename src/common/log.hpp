// Minimal leveled logging. Controlled by PLT_LOG_LEVEL (0=quiet .. 3=debug).
#pragma once

#include <sstream>
#include <string>

namespace plt {

enum class LogLevel : int { kError = 0, kWarn = 1, kInfo = 2, kDebug = 3 };

int log_level();
void log_message(LogLevel level, const std::string& msg);

namespace detail {
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { log_message(level_, os_.str()); }
  template <typename T>
  LogLine& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream os_;
};
}  // namespace detail

}  // namespace plt

#define PLT_LOG(level)                                       \
  if (static_cast<int>(level) <= ::plt::log_level())         \
  ::plt::detail::LogLine(level)

#define PLT_LOG_INFO PLT_LOG(::plt::LogLevel::kInfo)
#define PLT_LOG_WARN PLT_LOG(::plt::LogLevel::kWarn)
#define PLT_LOG_DEBUG PLT_LOG(::plt::LogLevel::kDebug)
