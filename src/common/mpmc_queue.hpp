// Bounded lock-free MPMC queue (Vyukov's array-based design): each cell
// carries a sequence number that encodes whether it is ready for the next
// producer or the next consumer, so both sides synchronize on a single CAS
// over their ticket counter plus one store to the cell sequence — no mutex
// on the hot path. This is the serving layer's admission queue: many
// producer threads enqueue requests, the scheduler thread drains them.
//
// Capacity is rounded up to a power of two. try_push/try_pop never block;
// a full queue is back-pressure the caller handles (the scheduler's submit
// spins + yields, bounding memory instead of growing an unbounded list).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/check.hpp"

namespace plt::common {

template <typename T>
class MpmcQueue {
 public:
  explicit MpmcQueue(std::size_t min_capacity) {
    std::size_t cap = 1;
    while (cap < min_capacity) cap <<= 1;
    PLT_CHECK(cap >= 2, "mpmc: capacity must be at least 2");
    cells_ = std::vector<Cell>(cap);
    mask_ = cap - 1;
    for (std::size_t i = 0; i < cap; ++i) {
      cells_[i].seq.store(i, std::memory_order_relaxed);
    }
  }

  MpmcQueue(const MpmcQueue&) = delete;
  MpmcQueue& operator=(const MpmcQueue&) = delete;

  std::size_t capacity() const { return mask_ + 1; }

  // Racy by nature (two independent counters); good enough for stats and
  // high-water tracking, never used for synchronization.
  std::size_t size_approx() const {
    const std::size_t h = head_.load(std::memory_order_relaxed);
    const std::size_t t = tail_.load(std::memory_order_relaxed);
    return t >= h ? t - h : 0;
  }

  bool try_push(T v) {
    std::size_t pos = tail_.load(std::memory_order_relaxed);
    while (true) {
      Cell& cell = cells_[pos & mask_];
      const std::size_t seq = cell.seq.load(std::memory_order_acquire);
      const std::intptr_t dif = static_cast<std::intptr_t>(seq) -
                                static_cast<std::intptr_t>(pos);
      if (dif == 0) {
        if (tail_.compare_exchange_weak(pos, pos + 1,
                                        std::memory_order_relaxed)) {
          cell.value = std::move(v);
          cell.seq.store(pos + 1, std::memory_order_release);
          return true;
        }
      } else if (dif < 0) {
        return false;  // the cell still holds an unconsumed value: full
      } else {
        pos = tail_.load(std::memory_order_relaxed);
      }
    }
  }

  bool try_pop(T& out) {
    std::size_t pos = head_.load(std::memory_order_relaxed);
    while (true) {
      Cell& cell = cells_[pos & mask_];
      const std::size_t seq = cell.seq.load(std::memory_order_acquire);
      const std::intptr_t dif = static_cast<std::intptr_t>(seq) -
                                static_cast<std::intptr_t>(pos + 1);
      if (dif == 0) {
        if (head_.compare_exchange_weak(pos, pos + 1,
                                        std::memory_order_relaxed)) {
          out = std::move(cell.value);
          cell.value = T();  // drop the reference eagerly (shared_ptr cells)
          cell.seq.store(pos + mask_ + 1, std::memory_order_release);
          return true;
        }
      } else if (dif < 0) {
        return false;  // empty
      } else {
        pos = head_.load(std::memory_order_relaxed);
      }
    }
  }

 private:
  struct alignas(64) Cell {
    std::atomic<std::size_t> seq{0};
    T value{};
  };

  std::vector<Cell> cells_;
  std::size_t mask_ = 0;
  alignas(64) std::atomic<std::size_t> tail_{0};  // producers
  alignas(64) std::atomic<std::size_t> head_{0};  // consumers
};

}  // namespace plt::common
