// Persistent worker-thread pool: the PLT_RUNTIME=pool execution backend.
//
// The paper's performance thesis is that PARLOOPER adds near-zero overhead
// per nest invocation (Section II-B: plans and JITed nests are cached, so
// steady-state dispatch is a lookup). An OpenMP `#pragma omp parallel` per
// nest call undermines that for small nests: every invocation pays region
// spawn/join. This pool keeps one process-wide team of pinned threads alive;
// dispatching a region is a single atomic epoch bump, and in-region barriers
// are a cache-line-padded sense-reversing flag flip — no kernel transitions
// on the steady-state path (workers spin briefly, then park on a condvar so
// an idle process does not burn CPU).
//
// Semantics match plt::parallel_region(fn): fn(tid, nthreads) runs once per
// team member, tid 0 being the dispatching thread. Nested dispatch from
// inside a region degrades to a serial call, like OpenMP with nesting off.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <thread>
#include <vector>

namespace plt {

class ThreadPool {
 public:
  using RegionFn = void (*)(void* ctx, int tid, int nthreads);

  // Spawns nthreads - 1 workers; the dispatching thread participates as
  // tid 0. pin=true binds thread i to logical core i % cores.
  explicit ThreadPool(int nthreads, bool pin = true);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int size() const { return nthreads_; }

  // Runs fn(ctx, tid, size()) on every team member and returns when all are
  // done. Calls from inside an active region (any pool) run fn(ctx, 0, 1).
  void run(RegionFn fn, void* ctx);

  // Sense-reversing barrier across the team; callable only from inside a
  // region, by every member.
  void barrier(int tid);

  // The process-wide pool used by parallel_region(). Created on first use
  // with default_size() threads.
  static ThreadPool& instance();

  // PLT_NUM_THREADS env override, else OpenMP's max, else hardware cores.
  static int default_size();

 private:
  struct alignas(64) PerThread {
    int barrier_sense = 0;        // owner-thread only
    char pad[60];
  };

  void worker_main(int tid);
  void wait_workers_done();

  int nthreads_;
  bool pin_;
  std::vector<std::thread> workers_;
  std::vector<PerThread> slots_;

  // Dispatch state: workers watch epoch_; fn_/ctx_ are published before the
  // epoch bump (release) and read after observing it (acquire).
  alignas(64) std::atomic<std::uint64_t> epoch_{0};
  RegionFn fn_ = nullptr;
  void* ctx_ = nullptr;
  std::atomic<bool> shutdown_{false};
  alignas(64) std::atomic<int> done_count_{0};

  // Region barrier (centralized sense-reversing).
  alignas(64) std::atomic<int> bar_waiting_{0};
  alignas(64) std::atomic<int> bar_sense_{0};

  // Serializes top-level dispatchers; losers degrade to serial regions
  // (there is only one worker team to hand out).
  std::mutex dispatch_mu_;

  std::mutex wake_mu_;
  std::condition_variable wake_cv_;
  std::mutex done_mu_;
  std::condition_variable done_cv_;
};

// Execution runtime selector shared with common/threading.hpp.
enum class Runtime { kSerial, kOpenMP, kPool };

// Current runtime: PLT_RUNTIME=omp|pool|serial (default pool), overridable
// programmatically (benchmarks flip it to compare backends in-process).
Runtime runtime();
void set_runtime(Runtime r);
const char* runtime_name(Runtime r);

namespace detail {
// Thread-local region context maintained by the active backend so that
// thread_id()/num_threads_in_region()/thread_barrier() work inside pool
// regions exactly as they do inside OpenMP regions.
struct RegionContext {
  ThreadPool* pool = nullptr;
  int tid = 0;
  int nthreads = 1;
  bool active = false;
};
RegionContext& region_context();
}  // namespace detail

}  // namespace plt
