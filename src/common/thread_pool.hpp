// Persistent worker-thread pool: the PLT_RUNTIME=pool execution backend.
//
// The paper's performance thesis is that PARLOOPER adds near-zero overhead
// per nest invocation (Section II-B: plans and JITed nests are cached, so
// steady-state dispatch is a lookup). An OpenMP `#pragma omp parallel` per
// nest call undermines that for small nests: every invocation pays region
// spawn/join. This pool keeps one process-wide team of pinned threads alive;
// dispatching a region is an atomic epoch bump per partition, and in-region
// barriers are cache-line-padded generation counters — no kernel transitions
// on the steady-state path (workers spin briefly, then park on a condvar so
// an idle process does not burn CPU).
//
// Topology-aware partitioning. The team is split into contiguous sub-teams
// (partitions), one per NUMA node by default (common/topology.hpp;
// PLT_POOL_PARTITIONS overrides the count so the layout is exercisable on
// single-node machines). Each partition's workers pin to its node's cores,
// the whole-team region barrier is hierarchical (per-partition leaf + one
// cross-partition root), and run_on(p, fn, ctx) dispatches a region onto a
// single partition so independent regions — e.g. per-partition serving
// batches — execute concurrently instead of serializing on one team.
//
// Semantics match plt::parallel_region(fn): fn(tid, nthreads) runs once per
// team member, tid 0 being the dispatching thread. Partitioning of loop
// iterations is a pure function of (tid, nthreads), so results are
// bitwise-identical across partition counts for a fixed team size. Nested
// dispatch from inside a region degrades to a serial call, like OpenMP with
// nesting off; a run_on() whose partition is busy degrades the same way.
//
// Exception firewall. An exception escaping fn on a worker thread would hit
// the top of worker_main and call std::terminate — one poisoned nest body
// would kill every in-flight request in the process. Instead, the FIRST
// exception thrown by any team member is captured, the region is aborted
// (members blocked in a region barrier unwind instead of deadlocking on the
// thrower's missing arrival), the barrier/dispatch state is reset, and the
// exception is rethrown on the dispatching thread once every member has
// retired. The pool stays fully usable afterwards. Work other members
// completed after the abort point is unspecified (the region failed as a
// whole); serving keeps failures per-request by catching inside the body.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace plt {

class ThreadPool {
 public:
  using RegionFn = void (*)(void* ctx, int tid, int nthreads);

  // Spawns nthreads - 1 workers; the dispatching thread participates as
  // tid 0. pin=true binds each worker to a core of its partition's NUMA
  // node (enumerated online-core list in the 1-partition fallback; pinning
  // is skipped with one warning when the process affinity mask holds fewer
  // cores than the team). partitions=0 derives the count from the detected
  // topology; explicit values are clamped to [1, nthreads].
  explicit ThreadPool(int nthreads, bool pin = true, int partitions = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int size() const { return nthreads_; }
  int partitions() const { return nparts_; }
  int partition_size(int p) const;

  // Runs fn(ctx, tid, size()) on every team member and returns when all are
  // done. Calls from inside an active region (any pool) run fn(ctx, 0, 1),
  // as does losing the dispatch race to another top-level dispatcher. If any
  // member throws, the region aborts and the first exception is rethrown
  // here (exception firewall above).
  void run(RegionFn fn, void* ctx);

  // Runs fn(ctx, tid, partition_size(p)) on partition p's sub-team only;
  // distinct partitions execute concurrently. On partition 0 the caller
  // participates as tid 0; on other partitions every member is a pinned
  // worker and the caller only dispatches and waits (so the compute stays
  // resident on the partition's node). Returns false when the region
  // degraded to a serial call on the caller (nested dispatch, or the
  // partition was busy).
  bool run_on(int p, RegionFn fn, void* ctx);

  // Barrier across the calling region's team: hierarchical (per-partition
  // leaf + cross-partition root) inside whole-team regions, a single leaf
  // inside run_on() regions. Callable only from inside a region, by every
  // member; tid is the region-local thread id.
  void barrier(int tid);

  // Dispatch/synchronization counters, snapshot at any time. steals are
  // attributed by the serving layer (note_steal) when it executes work
  // stolen from another partition's queue on this one.
  struct PartitionCounters {
    std::uint64_t regions = 0;  // run_on dispatches onto this partition
    std::uint64_t steals = 0;
  };
  struct Stats {
    std::uint64_t team_regions = 0;          // whole-team run() dispatches
    std::uint64_t serial_degradations = 0;   // nested / busy fallbacks
    // Completed barrier episodes: a whole-team hierarchical episode counts
    // once (at the root release), a run_on() leaf episode once per leaf.
    std::uint64_t barrier_epochs = 0;
    std::vector<PartitionCounters> partition;
  };
  Stats stats() const;
  void note_steal(int p);

  // Pins the calling thread onto partition p's core set (any core of the
  // sub-team, not one specific core — each specific core is owned by a
  // pinned worker). Used by per-partition serving dispatchers so the
  // dispatch and wait loops stay resident on the node they serve. No-op
  // when the pool built no pin plan (pinning disabled or mask too small).
  void pin_caller_to_partition(int p);

  // The process-wide pool used by parallel_region(). Created on first use
  // with default_size() threads and PLT_POOL_PARTITIONS partitions.
  static ThreadPool& instance();

  // PLT_NUM_THREADS env override, else OpenMP's max, else hardware cores.
  static int default_size();

 private:
  enum class Scope : int { kTeam = 0, kPartition = 1 };

  // Per-partition dispatch + leaf-barrier state. Workers only ever touch
  // their own partition's cache lines on the steady-state path.
  struct Partition {
    int first = 0;  // global tid of the first member
    int count = 0;
    std::vector<int> pin_cores;  // per-member pin target; empty = no pinning

    // Dispatch: members watch epoch; fn/ctx/scope are published before the
    // epoch bump (release) and read after observing it (acquire). A new
    // dispatch is only published after the previous one fully completed
    // (the dispatcher's acquire on `done`), so the plain fields never race.
    alignas(64) std::atomic<std::uint64_t> epoch{0};
    RegionFn fn = nullptr;
    void* ctx = nullptr;
    Scope scope = Scope::kTeam;
    alignas(64) std::atomic<int> done{0};

    // Leaf barrier (generation counter: robust to team- and partition-scope
    // episodes interleaving on the same leaf).
    alignas(64) std::atomic<std::uint64_t> leaf_gen{0};
    alignas(64) std::atomic<int> leaf_waiting{0};

    // Exception firewall state for run_on() (partition-scope) regions:
    // first-thrown exception + abort flag barrier waiters poll. Reset by
    // publish(); team-scope regions use the pool-level slots instead.
    std::atomic<bool> abort{false};
    std::mutex exc_mu;
    std::exception_ptr exc;

    std::mutex dispatch_mu;  // owner of the sub-team
    std::mutex wake_mu;
    std::condition_variable wake_cv;
    std::mutex done_mu;
    std::condition_variable done_cv;

    std::atomic<std::uint64_t> regions{0};
    std::atomic<std::uint64_t> steals{0};
  };

  void worker_main(int g);
  void publish(Partition& part, Scope scope, RegionFn fn, void* ctx);
  void wait_partition_done(Partition& part);
  // Records the first exception of the active region (team scope -> pool
  // slots, partition scope -> part's slots) and raises the abort flag.
  void record_region_exception(Scope scope, Partition& part);
  // True when the active region was aborted (scope-matched flag).
  bool region_aborted(Scope scope, const Partition& part) const {
    return scope == Scope::kTeam
               ? team_abort_.load(std::memory_order_acquire)
               : part.abort.load(std::memory_order_acquire);
  }
  static int expected_done(const Partition& part, int p) {
    // Partition 0's tid-0 slot is the dispatching thread, not a worker.
    return part.count - (p == 0 ? 1 : 0);
  }
  void leaf_barrier(Partition& part, bool team_scope);
  void root_barrier();

  int nthreads_;
  int nparts_;
  bool pin_;
  std::vector<std::unique_ptr<Partition>> parts_;
  std::vector<int> part_of_;   // global tid -> partition index
  std::vector<int> local_of_;  // global tid -> partition-local tid
  std::vector<std::thread> workers_;
  std::atomic<bool> shutdown_{false};

  // Root barrier across partition representatives (whole-team regions).
  alignas(64) std::atomic<std::uint64_t> root_gen_{0};
  alignas(64) std::atomic<int> root_waiting_{0};

  std::atomic<std::uint64_t> team_regions_{0};
  std::atomic<std::uint64_t> serial_degradations_{0};
  std::atomic<std::uint64_t> barrier_epochs_{0};

  // Exception firewall state for whole-team regions (see class comment).
  // Reset by run() before each dispatch; Partition::abort/exc are the
  // partition-scope equivalents for run_on().
  std::atomic<bool> team_abort_{false};
  std::mutex team_exc_mu_;
  std::exception_ptr team_exc_;
};

// Execution runtime selector shared with common/threading.hpp.
enum class Runtime { kSerial, kOpenMP, kPool };

// Current runtime: PLT_RUNTIME=omp|pool|serial (default pool), overridable
// programmatically (benchmarks flip it to compare backends in-process).
Runtime runtime();
void set_runtime(Runtime r);
const char* runtime_name(Runtime r);

namespace detail {
// Thrown out of ThreadPool barrier waits when the active region aborted
// (another member threw). Not derived from std::exception on purpose: region
// bodies that `catch (const std::exception&)` per work item must not swallow
// the unwind. worker_main and the dispatcher catch it at the region boundary.
struct RegionAborted {};

// Thread-local region context maintained by the active backend so that
// thread_id()/num_threads_in_region()/thread_barrier() work inside pool
// regions exactly as they do inside OpenMP regions. `partition` selects the
// barrier scope: -1 = whole-team region (tid is the global slot),
// >= 0 = run_on() region on that partition (tid is partition-local).
struct RegionContext {
  ThreadPool* pool = nullptr;
  int tid = 0;
  int nthreads = 1;
  bool active = false;
  int partition = -1;
};
RegionContext& region_context();
}  // namespace detail

}  // namespace plt
