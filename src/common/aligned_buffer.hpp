// 64-byte aligned, RAII-owned flat buffers for blocked tensors.
//
// Kernels assume cache-line alignment for vector loads/stores; every tensor
// in the library is backed by one of these. The buffer is deliberately not a
// full tensor class — blocked-layout views (see kernels/blocked_layout.hpp)
// overlay index math on top.
#pragma once

#include <cstddef>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <new>
#include <utility>

#include "common/check.hpp"

namespace plt {

inline constexpr std::size_t kCacheLine = 64;

template <typename T>
class AlignedBuffer {
 public:
  AlignedBuffer() = default;

  explicit AlignedBuffer(std::size_t n) { resize(n); }

  AlignedBuffer(AlignedBuffer&& o) noexcept
      : data_(std::exchange(o.data_, nullptr)), size_(std::exchange(o.size_, 0)) {}

  AlignedBuffer& operator=(AlignedBuffer&& o) noexcept {
    if (this != &o) {
      release();
      data_ = std::exchange(o.data_, nullptr);
      size_ = std::exchange(o.size_, 0);
    }
    return *this;
  }

  AlignedBuffer(const AlignedBuffer& o) : AlignedBuffer(o.size_) {
    if (size_) std::memcpy(data_, o.data_, size_ * sizeof(T));
  }

  AlignedBuffer& operator=(const AlignedBuffer& o) {
    if (this != &o) {
      resize(o.size_);
      if (size_) std::memcpy(data_, o.data_, size_ * sizeof(T));
    }
    return *this;
  }

  ~AlignedBuffer() { release(); }

  void resize(std::size_t n) {
    release();
    if (n == 0) return;
    const std::size_t bytes = ((n * sizeof(T) + kCacheLine - 1) / kCacheLine) * kCacheLine;
    data_ = static_cast<T*>(std::aligned_alloc(kCacheLine, bytes));
    PLT_ENSURE(data_ != nullptr, StatusCode::kResourceExhausted,
               "aligned_alloc failed");
    size_ = n;
  }

  void zero() {
    if (size_) std::memset(data_, 0, size_ * sizeof(T));
  }

  T* data() { return data_; }
  const T* data() const { return data_; }
  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  T& operator[](std::size_t i) {
    PLT_DCHECK(i < size_, "buffer index out of range");
    return data_[i];
  }
  const T& operator[](std::size_t i) const {
    PLT_DCHECK(i < size_, "buffer index out of range");
    return data_[i];
  }

  T* begin() { return data_; }
  T* end() { return data_ + size_; }
  const T* begin() const { return data_; }
  const T* end() const { return data_ + size_; }

 private:
  void release() {
    std::free(data_);
    data_ = nullptr;
    size_ = 0;
  }

  T* data_ = nullptr;
  std::size_t size_ = 0;
};

}  // namespace plt
