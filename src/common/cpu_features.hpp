// Runtime CPU feature detection for the TPP backend's ISA dispatch.
//
// The paper's TPP backend JITs platform-specific code (AVX2 / AVX-512 / AMX /
// SVE) for the target at hand. We reproduce the dispatch seam: kernels are
// compiled into per-ISA translation units and selected at runtime from the
// CPUID feature set. The selection can be narrowed with the
// PLT_ISA environment variable ("scalar", "avx2", "avx512", "avx512_bf16")
// which is how tests pin the reference path.
#pragma once

#include <string>

namespace plt {

enum class IsaLevel : int {
  kScalar = 0,
  kAVX2 = 1,         // AVX2 + FMA
  kAVX512 = 2,       // F + BW + VL + DQ
  kAVX512BF16 = 3,   // AVX-512 with BF16 dot-product support
};

struct CpuFeatures {
  bool avx2 = false;
  bool fma = false;
  bool avx512f = false;
  bool avx512bw = false;
  bool avx512vl = false;
  bool avx512dq = false;
  bool avx512_bf16 = false;
  bool amx_bf16 = false;   // detected but not targeted (see DESIGN.md)
  int logical_cores = 1;
  std::string brand;
};

// CPUID-backed detection, computed once per process.
const CpuFeatures& cpu_features();

// Highest ISA level this build can actually run, after applying the
// PLT_ISA environment override (useful to force the scalar reference).
IsaLevel effective_isa();

const char* isa_name(IsaLevel l);

}  // namespace plt
