// Lightweight contract-checking macros used across the library.
//
// PLT_CHECK is always on (it guards API misuse that would otherwise corrupt
// memory); PLT_DCHECK compiles out in release builds and is used on hot
// paths. Both throw std::invalid_argument so callers and tests can recover.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace plt {

[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const std::string& msg) {
  std::ostringstream os;
  os << "check failed: " << expr << " at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw std::invalid_argument(os.str());
}

}  // namespace plt

#define PLT_CHECK(expr, msg)                                   \
  do {                                                         \
    if (!(expr)) ::plt::check_failed(#expr, __FILE__, __LINE__, (msg)); \
  } while (0)

#if defined(NDEBUG)
#define PLT_DCHECK(expr, msg) ((void)0)
#else
#define PLT_DCHECK(expr, msg) PLT_CHECK(expr, msg)
#endif
