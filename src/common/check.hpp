// Lightweight contract-checking macros used across the library.
//
// Two failure families, split so the exception firewalls (thread pool,
// request scheduler) can map exception -> Status without string matching:
//
//   PLT_CHECK(expr, msg)         API misuse (bad shapes, null sessions).
//                                Always on; throws std::invalid_argument.
//   PLT_ENSURE(expr, code, msg)  Runtime/environment failure (compiler
//                                missing, allocation, injected fault).
//                                Always on; throws plt::RuntimeError
//                                carrying the given plt::StatusCode.
//   PLT_DCHECK(expr, msg)        PLT_CHECK that compiles out in release
//                                builds; used on hot paths.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

#include "common/status.hpp"

namespace plt {

[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const std::string& msg) {
  std::ostringstream os;
  os << "check failed: " << expr << " at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw std::invalid_argument(os.str());
}

[[noreturn]] inline void ensure_failed(const char* expr, const char* file,
                                       int line, StatusCode code,
                                       const std::string& msg) {
  std::ostringstream os;
  os << "ensure failed (" << status_code_name(code) << "): " << expr << " at "
     << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw RuntimeError(code, os.str());
}

}  // namespace plt

#define PLT_CHECK(expr, msg)                                   \
  do {                                                         \
    if (!(expr)) ::plt::check_failed(#expr, __FILE__, __LINE__, (msg)); \
  } while (0)

#define PLT_ENSURE(expr, code, msg)                                     \
  do {                                                                  \
    if (!(expr))                                                        \
      ::plt::ensure_failed(#expr, __FILE__, __LINE__, (code), (msg));   \
  } while (0)

#if defined(NDEBUG)
#define PLT_DCHECK(expr, msg) ((void)0)
#else
#define PLT_DCHECK(expr, msg) PLT_CHECK(expr, msg)
#endif
