// Execution-runtime seam for PARLOOPER's generated loops (Section II-B uses
// OpenMP in the paper's POC). Three interchangeable backends provide the
// same parallel_region(fn(tid, nthreads)) semantics, selected by the
// PLT_RUNTIME environment variable or set_runtime():
//
//   pool    persistent pinned thread pool (default) — region dispatch is an
//           atomic epoch bump, no per-call thread spawn (thread_pool.hpp)
//   omp     one OpenMP parallel region per call (the paper's POC behaviour)
//   serial  single-threaded, for debugging and reference runs
//
// All three produce bitwise-identical results: iteration partitioning is a
// pure function of (tid, nthreads) and each output block is owned by one
// thread with a fixed sequential reduction order.
#pragma once

#if defined(PLT_HAVE_OPENMP)
#include <omp.h>
#endif

#include <exception>
#include <mutex>
#include <type_traits>

#include "common/thread_pool.hpp"

namespace plt {

// Team size the next parallel_region will use under the current runtime.
inline int max_threads() {
  switch (runtime()) {
    case Runtime::kSerial:
      return 1;
    case Runtime::kOpenMP:
#if defined(PLT_HAVE_OPENMP)
      return omp_get_max_threads();
#else
      return 1;
#endif
    case Runtime::kPool:
      return ThreadPool::instance().size();
  }
  return 1;
}

inline int thread_id() {
  const detail::RegionContext& ctx = detail::region_context();
  if (ctx.active) return ctx.tid;
#if defined(PLT_HAVE_OPENMP)
  return omp_get_thread_num();
#else
  return 0;
#endif
}

inline int num_threads_in_region() {
  const detail::RegionContext& ctx = detail::region_context();
  if (ctx.active) return ctx.nthreads;
#if defined(PLT_HAVE_OPENMP)
  return omp_get_num_threads();
#else
  return 1;
#endif
}

inline void thread_barrier() {
  const detail::RegionContext& ctx = detail::region_context();
  if (ctx.active) {
    if (ctx.pool != nullptr && ctx.nthreads > 1) ctx.pool->barrier(ctx.tid);
    return;
  }
#if defined(PLT_HAVE_OPENMP)
#pragma omp barrier
#endif
}

// Runs fn(tid, nthreads) on one pool partition's sub-team; regions on
// distinct partitions execute concurrently (the serving layer runs one
// per-partition batch on each). Under non-pool runtimes, or when the pool
// has a single partition, this is exactly parallel_region(fn). Returns false
// when the region degraded to a serial call (nested dispatch, busy
// partition) — results are identical either way, only concurrency is lost.
template <typename Fn>
bool parallel_region_on(int partition, Fn&& fn);

// Runs fn(tid, nthreads) once per team member under the current runtime.
template <typename Fn>
void parallel_region(Fn&& fn) {
  switch (runtime()) {
    case Runtime::kSerial:
      break;
    case Runtime::kOpenMP: {
#if defined(PLT_HAVE_OPENMP)
      // OMP's own introspection serves thread_id()/thread_barrier() here, so
      // no RegionContext is installed. Exception firewall: an exception may
      // not escape an OpenMP region, so the first one is captured and
      // rethrown on the calling thread. Caveat (unlike the pool backend):
      // OpenMP barriers are all-or-none, so a body that throws BEFORE a
      // barrier its surviving teammates wait at deadlocks under omp — bodies
      // with internal barriers must catch per work item (serving does).
      std::exception_ptr region_exc;
      std::mutex exc_mu;
#pragma omp parallel
      {
        try {
          fn(omp_get_thread_num(), omp_get_num_threads());
        } catch (...) {
          std::lock_guard<std::mutex> g(exc_mu);
          if (!region_exc) region_exc = std::current_exception();
        }
      }
      if (region_exc) std::rethrow_exception(region_exc);
      return;
#else
      break;  // no OpenMP in this build: serial fallback
#endif
    }
    case Runtime::kPool: {
      using FnT = std::remove_reference_t<Fn>;
      ThreadPool::instance().run(
          [](void* c, int tid, int nthreads) {
            (*static_cast<FnT*>(c))(tid, nthreads);
          },
          const_cast<void*>(static_cast<const void*>(&fn)));
      return;
    }
  }
  fn(0, 1);
}

template <typename Fn>
bool parallel_region_on(int partition, Fn&& fn) {
  if (runtime() != Runtime::kPool) {
    // Nested dispatch degrades parallel_region to a serial call on every
    // backend; report it so the return contract holds on fallback paths.
    const bool nested = detail::region_context().active;
    parallel_region(std::forward<Fn>(fn));
    return !nested;
  }
  // Always dispatch through run_on: on a 1-partition pool, partition 0 IS
  // the whole team (same tids, same leaf barrier), and run_on's return
  // value reports busy-dispatch degradation that a parallel_region fallback
  // would swallow.
  using FnT = std::remove_reference_t<Fn>;
  return ThreadPool::instance().run_on(
      partition,
      [](void* c, int tid, int nthreads) {
        (*static_cast<FnT*>(c))(tid, nthreads);
      },
      const_cast<void*>(static_cast<const void*>(&fn)));
}

// Partition count of the active execution backend: the process-wide pool's
// under PLT_RUNTIME=pool, 1 otherwise (no other backend is partitioned).
// Shared by the serving layer and the benches so the rule lives here once.
inline int pool_partitions() {
  return runtime() == Runtime::kPool ? ThreadPool::instance().partitions()
                                     : 1;
}

}  // namespace plt
