// Thin OpenMP wrappers so the rest of the library builds (single-threaded)
// even when OpenMP is unavailable. PARLOOPER's generated loops target these
// semantics: the paper's POC uses OpenMP for concurrency (Section II-B).
#pragma once

#if defined(PLT_HAVE_OPENMP)
#include <omp.h>
#endif

namespace plt {

inline int max_threads() {
#if defined(PLT_HAVE_OPENMP)
  return omp_get_max_threads();
#else
  return 1;
#endif
}

inline int thread_id() {
#if defined(PLT_HAVE_OPENMP)
  return omp_get_thread_num();
#else
  return 0;
#endif
}

inline int num_threads_in_region() {
#if defined(PLT_HAVE_OPENMP)
  return omp_get_num_threads();
#else
  return 1;
#endif
}

inline void thread_barrier() {
#if defined(PLT_HAVE_OPENMP)
#pragma omp barrier
#endif
}

// Runs fn(tid, nthreads) inside a parallel region.
template <typename Fn>
void parallel_region(Fn&& fn) {
#if defined(PLT_HAVE_OPENMP)
#pragma omp parallel
  { fn(omp_get_thread_num(), omp_get_num_threads()); }
#else
  fn(0, 1);
#endif
}

}  // namespace plt
