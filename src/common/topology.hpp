// CPU/NUMA topology discovery for the partitioned thread pool. The real
// source of truth is /sys/devices/system/node/node<N>/cpulist; the
// PLT_TOPOLOGY_DIR environment variable points detection at a mocked
// directory with the same layout so partitioning is exercisable (and
// testable) on single-node machines. When neither parses, detection falls
// back to one node holding every hardware thread — the pool then behaves
// exactly like the pre-partitioning runtime.
#pragma once

#include <string>
#include <vector>

namespace plt::common {

struct NumaNode {
  int id = 0;
  std::vector<int> cpus;  // sorted ascending, deduplicated
};

struct Topology {
  std::vector<NumaNode> nodes;  // sorted by id; only nodes with >= 1 cpu

  int total_cpus() const;

  // Parses a sysfs-style node directory (node<N>/cpulist files). Nodes
  // whose cpulist is missing, empty or malformed are skipped. An empty
  // result means the directory did not describe a usable topology.
  static Topology from_dir(const std::string& node_dir);

  // PLT_TOPOLOGY_DIR override, else /sys/devices/system/node, else
  // fallback(hardware_concurrency). Never returns an empty topology.
  static Topology detect();

  // Single node 0 with cpus 0..ncpus-1 (ncpus clamped to >= 1).
  static Topology fallback(int ncpus);
};

// Parses a kernel cpulist string ("0-3,8,10-11"). Returns an empty vector
// on malformed input (trailing garbage, inverted ranges, non-numeric).
std::vector<int> parse_cpu_list(const std::string& s);

}  // namespace plt::common
