#include "common/topology.hpp"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <thread>

#if defined(__linux__)
#include <dirent.h>
#endif

#include "common/env.hpp"
#include "common/log.hpp"

namespace plt::common {

namespace {
// Sanity ceiling on cpu ids (the kernel's NR_CPUS ballpark): a corrupt or
// mistyped cpulist like "0-4294967295" must parse as malformed, not
// materialize a multi-gigabyte vector (and overflow int) at pool startup.
constexpr long kMaxCpuId = 1 << 20;
}  // namespace

std::vector<int> parse_cpu_list(const std::string& s) {
  // Strip trailing whitespace/newline (sysfs files end with '\n').
  std::string t = s;
  while (!t.empty() && std::isspace(static_cast<unsigned char>(t.back()))) {
    t.pop_back();
  }
  std::vector<int> cpus;
  if (t.empty()) return cpus;

  std::istringstream is(t);
  std::string piece;
  while (std::getline(is, piece, ',')) {
    if (piece.empty()) return {};
    std::size_t pos = 0;
    long lo = 0, hi = 0;
    try {
      lo = std::stol(piece, &pos);
    } catch (...) {
      return {};
    }
    if (lo < 0 || lo > kMaxCpuId) return {};
    hi = lo;
    if (pos < piece.size()) {
      if (piece[pos] != '-') return {};
      const std::string rest = piece.substr(pos + 1);
      std::size_t rpos = 0;
      try {
        hi = std::stol(rest, &rpos);
      } catch (...) {
        return {};
      }
      if (rpos != rest.size() || hi < lo || hi > kMaxCpuId) return {};
    }
    for (long c = lo; c <= hi; ++c) cpus.push_back(static_cast<int>(c));
  }
  std::sort(cpus.begin(), cpus.end());
  cpus.erase(std::unique(cpus.begin(), cpus.end()), cpus.end());
  return cpus;
}

int Topology::total_cpus() const {
  int n = 0;
  for (const NumaNode& node : nodes) n += static_cast<int>(node.cpus.size());
  return n;
}

Topology Topology::from_dir(const std::string& node_dir) {
  Topology topo;
#if defined(__linux__)
  DIR* dir = ::opendir(node_dir.c_str());
  if (dir == nullptr) return topo;
  while (dirent* entry = ::readdir(dir)) {
    const std::string name = entry->d_name;
    // Accept only node<digits> (sysfs also holds has_cpu, online, ...).
    if (name.size() <= 4 || name.compare(0, 4, "node") != 0) continue;
    bool numeric = true;
    for (std::size_t i = 4; i < name.size(); ++i) {
      if (!std::isdigit(static_cast<unsigned char>(name[i]))) {
        numeric = false;
        break;
      }
    }
    if (!numeric) continue;
    std::ifstream is(node_dir + "/" + name + "/cpulist");
    if (!is) continue;
    std::string line;
    std::getline(is, line);
    NumaNode node;
    node.id = std::atoi(name.c_str() + 4);
    node.cpus = parse_cpu_list(line);
    if (!node.cpus.empty()) topo.nodes.push_back(std::move(node));
  }
  ::closedir(dir);
  std::sort(topo.nodes.begin(), topo.nodes.end(),
            [](const NumaNode& a, const NumaNode& b) { return a.id < b.id; });
#else
  (void)node_dir;
#endif
  return topo;
}

Topology Topology::fallback(int ncpus) {
  if (ncpus < 1) ncpus = 1;
  Topology topo;
  NumaNode node;
  node.id = 0;
  node.cpus.reserve(static_cast<std::size_t>(ncpus));
  for (int c = 0; c < ncpus; ++c) node.cpus.push_back(c);
  topo.nodes.push_back(std::move(node));
  return topo;
}

Topology Topology::detect() {
  const std::string dir =
      env_str("PLT_TOPOLOGY_DIR", "/sys/devices/system/node");
  Topology topo = from_dir(dir);
  if (!topo.nodes.empty()) return topo;
  if (dir != "/sys/devices/system/node") {
    PLT_LOG_WARN << "topology: PLT_TOPOLOGY_DIR=" << dir
                 << " has no parseable node*/cpulist; using flat fallback";
  }
  const unsigned hc = std::thread::hardware_concurrency();
  return fallback(hc == 0 ? 1 : static_cast<int>(hc));
}

}  // namespace plt::common
