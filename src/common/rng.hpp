// Deterministic, splittable RNG (xoshiro256**) used for tensor init, dropout
// masks and the block-pruning pipeline. Deterministic seeding keeps the test
// suite and the paper-figure benches reproducible run to run.
#pragma once

#include <cstdint>

#include "common/bf16.hpp"

namespace plt {

class Xoshiro256 {
 public:
  explicit Xoshiro256(std::uint64_t seed = 0x9E3779B97F4A7C15ull) {
    // splitmix64 expansion of the seed into the 256-bit state.
    std::uint64_t x = seed;
    for (auto& si : s_) {
      x += 0x9E3779B97F4A7C15ull;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
      si = z ^ (z >> 31);
    }
  }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  std::uint32_t next_u32() { return static_cast<std::uint32_t>(next_u64() >> 32); }

  // Uniform in [0, 1).
  double next_double() { return (next_u64() >> 11) * 0x1.0p-53; }
  float next_float() { return static_cast<float>(next_double()); }

  // Uniform in [lo, hi).
  float uniform(float lo, float hi) { return lo + (hi - lo) * next_float(); }

  // Uniform integer in [0, n).
  std::uint64_t bounded(std::uint64_t n) { return n ? next_u64() % n : 0; }

  // A decorrelated child stream (for per-thread RNG state).
  Xoshiro256 split() { return Xoshiro256(next_u64() ^ 0xA0761D6478BD642Full); }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4];
};

template <typename T>
void fill_uniform(T* p, std::size_t n, Xoshiro256& rng, float lo = -1.0f,
                  float hi = 1.0f) {
  for (std::size_t i = 0; i < n; ++i) store_f32(&p[i], rng.uniform(lo, hi));
}

}  // namespace plt
