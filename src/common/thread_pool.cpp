#include "common/thread_pool.hpp"

#include <algorithm>

#include "common/env.hpp"
#include "common/log.hpp"
#include "common/topology.hpp"

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif
#if defined(PLT_HAVE_OPENMP)
#include <omp.h>
#endif

#if defined(__x86_64__) || defined(_M_X64)
#include <immintrin.h>
#define PLT_CPU_PAUSE() _mm_pause()
#else
#define PLT_CPU_PAUSE() std::this_thread::yield()
#endif

namespace plt {

namespace {

// Spin budget before parking/yielding. Small enough that an oversubscribed
// team (more threads than cores) converges quickly to yield-based waiting.
constexpr int kSpinIters = 1 << 12;

void pin_to_core(int core) {
#if defined(__linux__)
  if (core < 0) return;
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(static_cast<unsigned>(core), &set);
  ::pthread_setaffinity_np(::pthread_self(), sizeof(set), &set);
#else
  (void)core;
#endif
}

// Cores the process is actually allowed to run on (sorted). Empty when the
// platform offers no affinity introspection.
std::vector<int> allowed_cores() {
  std::vector<int> cores;
#if defined(__linux__)
  cpu_set_t set;
  CPU_ZERO(&set);
  if (::sched_getaffinity(0, sizeof(set), &set) == 0) {
    for (int c = 0; c < CPU_SETSIZE; ++c) {
      if (CPU_ISSET(c, &set)) cores.push_back(c);
    }
  }
#endif
  return cores;
}

bool pinning_enabled() {
  static const bool v = common::env_flag("PLT_PIN", true);
  return v;
}

// Resets the thread-local region context even when the region body throws:
// serial, degraded, and caller-participates paths all propagate exceptions
// through the frame that set the context, and a leaked active context would
// degrade every later region to serial.
struct ScopedRegionContext {
  explicit ScopedRegionContext(const detail::RegionContext& v) {
    detail::region_context() = v;
  }
  ~ScopedRegionContext() { detail::region_context() = {}; }
  ScopedRegionContext(const ScopedRegionContext&) = delete;
  ScopedRegionContext& operator=(const ScopedRegionContext&) = delete;
};

}  // namespace

namespace detail {
RegionContext& region_context() {
  thread_local RegionContext ctx;
  return ctx;
}
}  // namespace detail

ThreadPool::ThreadPool(int nthreads, bool pin, int partitions)
    : nthreads_(nthreads < 1 ? 1 : nthreads), pin_(pin) {
  const common::Topology topo = common::Topology::detect();
  if (partitions > nthreads_) {
    PLT_LOG_WARN << "pool: " << partitions << " partitions requested for a "
                 << nthreads_ << "-thread team; clamping to " << nthreads_;
  }
  nparts_ = partitions > 0 ? partitions : static_cast<int>(topo.nodes.size());
  nparts_ = std::max(1, std::min(nparts_, nthreads_));

  // Contiguous, balanced sub-teams: partition p holds global tids
  // [first, first + count). The split is a pure function of (nthreads,
  // nparts), independent of the machine.
  parts_.reserve(static_cast<std::size_t>(nparts_));
  part_of_.assign(static_cast<std::size_t>(nthreads_), 0);
  local_of_.assign(static_cast<std::size_t>(nthreads_), 0);
  const int base = nthreads_ / nparts_, rem = nthreads_ % nparts_;
  int first = 0;
  for (int p = 0; p < nparts_; ++p) {
    auto part = std::make_unique<Partition>();
    part->first = first;
    part->count = base + (p < rem ? 1 : 0);
    for (int l = 0; l < part->count; ++l) {
      part_of_[static_cast<std::size_t>(first + l)] = p;
      local_of_[static_cast<std::size_t>(first + l)] = l;
    }
    first += part->count;
    parts_.push_back(std::move(part));
  }

  // Pin plan: partition p's members bind to its node's cores, filtered by
  // the process affinity mask; the 1-partition fallback binds by the
  // enumerated online-core list (not `i % hardware_concurrency`, which
  // ignores offline/forbidden cores). If the mask holds fewer cores than
  // the team, pinning is skipped entirely — stacking a whole team onto a
  // restricted mask would serialize it behind the scheduler.
  if (pin_ && pinning_enabled()) {
    const std::vector<int> allowed = allowed_cores();
    if (static_cast<int>(allowed.size()) < nthreads_) {
      static std::atomic<bool> warned{false};
      if (!warned.exchange(true)) {
        PLT_LOG_WARN << "pool: affinity mask has " << allowed.size()
                     << " cores for a " << nthreads_
                     << "-thread team; skipping thread pinning";
      }
    } else {
      // Node -> partition mapping. With at least as many partitions as
      // nodes, partition p lives on node p % nodes, and co-located
      // partitions slice that node's cores via a per-node cursor (two
      // sub-teams meant to run concurrently must not time-share the node's
      // leading cores). With FEWER partitions than nodes, each partition
      // takes a contiguous node range so the whole machine stays in use —
      // the 1-partition case degenerates to the full enumerated online-core
      // list. Partitions whose node cores fall outside the affinity mask
      // (mocked/foreign topology) share a cursor over the allowed list, so
      // their slices stay disjoint too.
      const std::size_t nnodes = topo.nodes.size();
      std::vector<std::size_t> node_cursor(nnodes, 0);
      // Fallback assignment (partition's node cores all outside the mask)
      // must not collide with cores that node-based partitions pin —
      // stacking two sub-teams onto one core slice serializes exactly the
      // regions run_on() exists to run concurrently. Node-based partitions
      // are therefore assigned FIRST (marking their cores), and fallback
      // partitions then draw from whatever remains.
      std::vector<bool> core_taken(allowed.size(), false);
      const auto mark_taken = [&](int core) {
        const auto it =
            std::lower_bound(allowed.begin(), allowed.end(), core);
        if (it != allowed.end() && *it == core) {
          core_taken[static_cast<std::size_t>(it - allowed.begin())] = true;
        }
      };
      std::size_t allowed_cursor = 0;
      const auto next_free_core = [&]() -> int {
        for (std::size_t i = 0; i < allowed.size(); ++i) {
          const std::size_t idx = (allowed_cursor + i) % allowed.size();
          if (!core_taken[idx]) {
            allowed_cursor = idx + 1;
            core_taken[idx] = true;
            return allowed[idx];
          }
        }
        // Every allowed core already has an owner: round-robin the overflow.
        return allowed[allowed_cursor++ % allowed.size()];
      };
      // Pass 1: per-partition mask-filtered core lists from the node map.
      std::vector<std::vector<int>> part_cores(
          static_cast<std::size_t>(nparts_));
      std::vector<std::size_t> part_node(static_cast<std::size_t>(nparts_),
                                         0);
      for (int p = 0; p < nparts_; ++p) {
        std::vector<std::size_t> node_idxs;
        if (static_cast<std::size_t>(nparts_) >= nnodes) {
          node_idxs.push_back(static_cast<std::size_t>(p) % nnodes);
        } else {
          const std::size_t lo =
              static_cast<std::size_t>(p) * nnodes /
              static_cast<std::size_t>(nparts_);
          const std::size_t hi =
              (static_cast<std::size_t>(p) + 1) * nnodes /
              static_cast<std::size_t>(nparts_);
          for (std::size_t n = lo; n < hi; ++n) node_idxs.push_back(n);
        }
        part_node[static_cast<std::size_t>(p)] = node_idxs[0];
        for (std::size_t n : node_idxs) {
          for (int c : topo.nodes[n].cpus) {
            if (std::binary_search(allowed.begin(), allowed.end(), c)) {
              part_cores[static_cast<std::size_t>(p)].push_back(c);
            }
          }
        }
      }
      // Pass 2: node-based partitions pin (and claim) their cores. Members
      // that overflow an exhausted node (more members mapped to it than the
      // mask offers) are deferred alongside the foreign-topology partitions
      // so they only take cores no node cursor will claim.
      std::vector<std::pair<int, int>> deferred;  // (partition, local slot)
      for (int p = 0; p < nparts_; ++p) {
        const std::vector<int>& cores = part_cores[static_cast<std::size_t>(p)];
        Partition& part = *parts_[static_cast<std::size_t>(p)];
        part.pin_cores.assign(static_cast<std::size_t>(part.count), -1);
        if (cores.empty()) {
          for (int l = 0; l < part.count; ++l) deferred.emplace_back(p, l);
          continue;
        }
        for (int l = 0; l < part.count; ++l) {
          int core = -1;
          if (static_cast<std::size_t>(nparts_) >= nnodes) {
            // Co-located siblings slice the node via its cursor.
            std::size_t& cur =
                node_cursor[part_node[static_cast<std::size_t>(p)]];
            if (cur < cores.size()) core = cores[cur++];
          } else if (static_cast<std::size_t>(l) < cores.size()) {
            // Exclusive node range: no sibling shares these cores.
            core = cores[static_cast<std::size_t>(l)];
          }
          if (core >= 0) {
            mark_taken(core);
            part.pin_cores[static_cast<std::size_t>(l)] = core;
          } else {
            deferred.emplace_back(p, l);
          }
        }
      }
      // Pass 3: deferred members take the leftovers — off-node placement
      // beats two concurrent sub-team members time-sharing one core.
      for (const auto& [p, l] : deferred) {
        parts_[static_cast<std::size_t>(p)]
            ->pin_cores[static_cast<std::size_t>(l)] = next_free_core();
      }
    }
  }

  workers_.reserve(static_cast<std::size_t>(nthreads_ - 1));
  for (int g = 1; g < nthreads_; ++g) {
    workers_.emplace_back([this, g] { worker_main(g); });
  }
}

ThreadPool::~ThreadPool() {
  shutdown_.store(true, std::memory_order_release);
  for (auto& part : parts_) {
    std::lock_guard<std::mutex> g(part->wake_mu);
  }
  for (auto& part : parts_) part->wake_cv.notify_all();
  for (std::thread& w : workers_) w.join();
}

int ThreadPool::partition_size(int p) const {
  if (p < 0 || p >= nparts_) return 0;
  return parts_[static_cast<std::size_t>(p)]->count;
}

void ThreadPool::worker_main(int g) {
  const int p = part_of_[static_cast<std::size_t>(g)];
  const int l = local_of_[static_cast<std::size_t>(g)];
  Partition& part = *parts_[static_cast<std::size_t>(p)];
  if (!part.pin_cores.empty()) {
    pin_to_core(part.pin_cores[static_cast<std::size_t>(l)]);
  }

  std::uint64_t last_epoch = 0;
  while (true) {
    // Wait for the next region (or shutdown): spin briefly, then park.
    int spins = 0;
    while (part.epoch.load(std::memory_order_acquire) == last_epoch &&
           !shutdown_.load(std::memory_order_acquire)) {
      if (++spins < kSpinIters) {
        PLT_CPU_PAUSE();
      } else {
        std::unique_lock<std::mutex> lk(part.wake_mu);
        part.wake_cv.wait(lk, [&] {
          return part.epoch.load(std::memory_order_acquire) != last_epoch ||
                 shutdown_.load(std::memory_order_acquire);
        });
      }
    }
    if (shutdown_.load(std::memory_order_acquire)) return;
    last_epoch = part.epoch.load(std::memory_order_acquire);

    // Exception firewall: anything escaping fn here would otherwise reach
    // the top of this thread and std::terminate. RegionAborted is the
    // barrier-unwind marker, not a failure in itself.
    const Scope scope = part.scope;
    {
      ScopedRegionContext ctx(scope == Scope::kTeam
                                  ? detail::RegionContext{this, g, nthreads_,
                                                          true, -1}
                                  : detail::RegionContext{this, l, part.count,
                                                          true, p});
      try {
        if (scope == Scope::kTeam) {
          part.fn(part.ctx, g, nthreads_);
        } else {
          part.fn(part.ctx, l, part.count);
        }
      } catch (const detail::RegionAborted&) {
      } catch (...) {
        record_region_exception(scope, part);
      }
    }

    if (part.done.fetch_add(1, std::memory_order_acq_rel) ==
        expected_done(part, p) - 1) {
      // Last member: release the dispatcher if it fell asleep.
      std::lock_guard<std::mutex> guard(part.done_mu);
      part.done_cv.notify_one();
    }
  }
}

void ThreadPool::record_region_exception(Scope scope, Partition& part) {
  if (scope == Scope::kTeam) {
    {
      std::lock_guard<std::mutex> g(team_exc_mu_);
      if (!team_exc_) team_exc_ = std::current_exception();
    }
    team_abort_.store(true, std::memory_order_release);
  } else {
    {
      std::lock_guard<std::mutex> g(part.exc_mu);
      if (!part.exc) part.exc = std::current_exception();
    }
    part.abort.store(true, std::memory_order_release);
  }
}

void ThreadPool::publish(Partition& part, Scope scope, RegionFn fn,
                         void* ctx) {
  part.fn = fn;
  part.ctx = ctx;
  part.scope = scope;
  // Clear partition-scope firewall state from any previous run_on() region
  // before members can observe the new epoch.
  part.abort.store(false, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> g(part.exc_mu);
    part.exc = nullptr;
  }
  part.done.store(0, std::memory_order_relaxed);
  part.epoch.fetch_add(1, std::memory_order_acq_rel);
  {
    // Pairs with the predicate check in worker_main's parked wait.
    std::lock_guard<std::mutex> g(part.wake_mu);
  }
  part.wake_cv.notify_all();
}

void ThreadPool::wait_partition_done(Partition& part) {
  const int p = part_of_[static_cast<std::size_t>(part.first)];
  const int expected = expected_done(part, p);
  int spins = 0;
  while (part.done.load(std::memory_order_acquire) != expected) {
    if (++spins < kSpinIters) {
      PLT_CPU_PAUSE();
    } else {
      std::unique_lock<std::mutex> lk(part.done_mu);
      part.done_cv.wait(lk, [&] {
        return part.done.load(std::memory_order_acquire) == expected;
      });
    }
  }
  part.fn = nullptr;
  part.ctx = nullptr;
}

void ThreadPool::run(RegionFn fn, void* ctx) {
  detail::RegionContext& rc = detail::region_context();
  if (rc.active) {
    // Nested dispatch degrades to a serial region (OpenMP nesting-off).
    serial_degradations_.fetch_add(1, std::memory_order_relaxed);
    fn(ctx, 0, 1);
    return;
  }
  if (nthreads_ == 1) {
    team_regions_.fetch_add(1, std::memory_order_relaxed);
    ScopedRegionContext src({this, 0, 1, true, -1});
    fn(ctx, 0, 1);  // exceptions propagate to the caller directly
    return;
  }

  // One team, one dispatcher: a second application thread dispatching while
  // the team is busy runs its region serially instead of racing on the
  // dispatch state (which would deadlock) or convoying behind the first.
  // A whole-team region claims every partition, so it also excludes (and is
  // excluded by) concurrent run_on() dispatchers.
  int locked = 0;
  for (; locked < nparts_; ++locked) {
    if (!parts_[static_cast<std::size_t>(locked)]->dispatch_mu.try_lock()) {
      break;
    }
  }
  if (locked < nparts_) {
    for (int p = 0; p < locked; ++p) {
      parts_[static_cast<std::size_t>(p)]->dispatch_mu.unlock();
    }
    serial_degradations_.fetch_add(1, std::memory_order_relaxed);
    ScopedRegionContext src({this, 0, 1, true, -1});
    fn(ctx, 0, 1);
    return;
  }

  team_regions_.fetch_add(1, std::memory_order_relaxed);
  team_abort_.store(false, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> g(team_exc_mu_);
    team_exc_ = nullptr;
  }
  for (auto& part : parts_) publish(*part, Scope::kTeam, fn, ctx);

  {
    ScopedRegionContext src({this, 0, nthreads_, true, -1});
    try {
      fn(ctx, 0, nthreads_);
    } catch (const detail::RegionAborted&) {
    } catch (...) {
      record_region_exception(Scope::kTeam, *parts_[0]);
    }
  }

  for (auto& part : parts_) wait_partition_done(*part);

  // Every member has retired: harvest the firewall state. Barrier episodes
  // interrupted by the abort left waiting counters mid-episode; reset them
  // so the next region starts clean (generation counters need no reset —
  // they only advance on a completed release).
  std::exception_ptr exc;
  if (team_abort_.load(std::memory_order_acquire)) {
    for (auto& part : parts_) {
      part->leaf_waiting.store(0, std::memory_order_relaxed);
    }
    root_waiting_.store(0, std::memory_order_relaxed);
    std::lock_guard<std::mutex> g(team_exc_mu_);
    exc = team_exc_;
    team_exc_ = nullptr;
    team_abort_.store(false, std::memory_order_relaxed);
  }
  for (auto& part : parts_) part->dispatch_mu.unlock();
  if (exc) std::rethrow_exception(exc);
}

bool ThreadPool::run_on(int p, RegionFn fn, void* ctx) {
  detail::RegionContext& rc = detail::region_context();
  if (p < 0 || p >= nparts_) p = ((p % nparts_) + nparts_) % nparts_;
  Partition& part = *parts_[static_cast<std::size_t>(p)];

  if (rc.active) {
    serial_degradations_.fetch_add(1, std::memory_order_relaxed);
    fn(ctx, 0, 1);
    return false;
  }
  const bool caller_participates = (p == 0);
  if (part.count == 1 && caller_participates) {
    // Single-member partition 0: the caller is the whole sub-team.
    part.regions.fetch_add(1, std::memory_order_relaxed);
    ScopedRegionContext src({this, 0, 1, true, p});
    fn(ctx, 0, 1);  // exceptions propagate to the caller directly
    return true;
  }
  if (!part.dispatch_mu.try_lock()) {
    serial_degradations_.fetch_add(1, std::memory_order_relaxed);
    ScopedRegionContext src({this, 0, 1, true, p});
    fn(ctx, 0, 1);
    return false;
  }
  std::lock_guard<std::mutex> guard(part.dispatch_mu, std::adopt_lock);

  part.regions.fetch_add(1, std::memory_order_relaxed);
  publish(part, Scope::kPartition, fn, ctx);
  if (caller_participates) {
    ScopedRegionContext src({this, 0, part.count, true, p});
    try {
      fn(ctx, 0, part.count);
    } catch (const detail::RegionAborted&) {
    } catch (...) {
      record_region_exception(Scope::kPartition, part);
    }
  }
  wait_partition_done(part);

  // Harvest the partition firewall (see run()); dispatch_mu is released by
  // the adopt_lock guard during unwinding, so rethrowing here is safe.
  if (part.abort.load(std::memory_order_acquire)) {
    part.leaf_waiting.store(0, std::memory_order_relaxed);
    std::exception_ptr exc;
    {
      std::lock_guard<std::mutex> g(part.exc_mu);
      exc = part.exc;
      part.exc = nullptr;
    }
    part.abort.store(false, std::memory_order_relaxed);
    if (exc) std::rethrow_exception(exc);
  }
  return true;
}

void ThreadPool::leaf_barrier(Partition& part, bool team_scope) {
  // Abort-aware: a member that threw never arrives, so anyone waiting on it
  // would spin forever. Waiters poll the region's abort flag and unwind via
  // RegionAborted; the dispatcher resets the mid-episode waiting counters
  // once every member has retired.
  const Scope scope = team_scope ? Scope::kTeam : Scope::kPartition;
  if (region_aborted(scope, part)) throw detail::RegionAborted{};
  const std::uint64_t gen = part.leaf_gen.load(std::memory_order_acquire);
  if (part.leaf_waiting.fetch_add(1, std::memory_order_acq_rel) ==
      part.count - 1) {
    // Partition representative: join the root before releasing the leaf so
    // the episode orders every member of every partition. Hierarchical
    // episodes are counted once at the root release (not per leaf), so the
    // stat is comparable across partition counts.
    if (team_scope && nparts_ > 1) {
      root_barrier();
    } else {
      barrier_epochs_.fetch_add(1, std::memory_order_relaxed);
    }
    part.leaf_waiting.store(0, std::memory_order_relaxed);
    part.leaf_gen.store(gen + 1, std::memory_order_release);
  } else {
    int spins = 0;
    while (part.leaf_gen.load(std::memory_order_acquire) == gen) {
      if (region_aborted(scope, part)) throw detail::RegionAborted{};
      // Yield past the spin budget so oversubscribed teams make progress.
      if (++spins < kSpinIters) {
        PLT_CPU_PAUSE();
      } else {
        std::this_thread::yield();
      }
    }
  }
}

void ThreadPool::root_barrier() {
  // Only reached from team-scope episodes; partition 0 is a placeholder for
  // the scope-matched abort check.
  if (region_aborted(Scope::kTeam, *parts_[0])) throw detail::RegionAborted{};
  const std::uint64_t gen = root_gen_.load(std::memory_order_acquire);
  if (root_waiting_.fetch_add(1, std::memory_order_acq_rel) == nparts_ - 1) {
    barrier_epochs_.fetch_add(1, std::memory_order_relaxed);
    root_waiting_.store(0, std::memory_order_relaxed);
    root_gen_.store(gen + 1, std::memory_order_release);
  } else {
    int spins = 0;
    while (root_gen_.load(std::memory_order_acquire) == gen) {
      if (region_aborted(Scope::kTeam, *parts_[0])) {
        throw detail::RegionAborted{};
      }
      if (++spins < kSpinIters) {
        PLT_CPU_PAUSE();
      } else {
        std::this_thread::yield();
      }
    }
  }
}

void ThreadPool::barrier(int tid) {
  const detail::RegionContext& rc = detail::region_context();
  if (rc.active && rc.nthreads <= 1) return;  // serial/degraded region
  if (nthreads_ == 1) return;
  if (rc.active && rc.partition >= 0) {
    leaf_barrier(*parts_[static_cast<std::size_t>(rc.partition)], false);
    return;
  }
  // Whole-team region: tid is the global slot; synchronize hierarchically.
  const int p = part_of_[static_cast<std::size_t>(tid)];
  leaf_barrier(*parts_[static_cast<std::size_t>(p)], true);
}

ThreadPool::Stats ThreadPool::stats() const {
  Stats s;
  s.team_regions = team_regions_.load(std::memory_order_relaxed);
  s.serial_degradations =
      serial_degradations_.load(std::memory_order_relaxed);
  s.barrier_epochs = barrier_epochs_.load(std::memory_order_relaxed);
  s.partition.reserve(static_cast<std::size_t>(nparts_));
  for (const auto& part : parts_) {
    PartitionCounters c;
    c.regions = part->regions.load(std::memory_order_relaxed);
    c.steals = part->steals.load(std::memory_order_relaxed);
    s.partition.push_back(c);
  }
  return s;
}

void ThreadPool::pin_caller_to_partition(int p) {
  if (p < 0 || p >= nparts_) return;
  const Partition& part = *parts_[static_cast<std::size_t>(p)];
  if (part.pin_cores.empty()) return;
#if defined(__linux__)
  // The whole partition's core set, not a single core: every specific core
  // is owned by a pinned worker, and hard-binding the dispatcher onto one of
  // them would make its spin/wake loops contend with that worker's compute.
  cpu_set_t set;
  CPU_ZERO(&set);
  for (int c : part.pin_cores) {
    if (c >= 0) CPU_SET(static_cast<unsigned>(c), &set);
  }
  ::pthread_setaffinity_np(::pthread_self(), sizeof(set), &set);
#endif
}

void ThreadPool::note_steal(int p) {
  if (p < 0 || p >= nparts_) return;
  parts_[static_cast<std::size_t>(p)]->steals.fetch_add(
      1, std::memory_order_relaxed);
}

int ThreadPool::default_size() {
  // 0 = unset: fall through to the OpenMP/hardware defaults below.
  const int n = static_cast<int>(
      common::env_int("PLT_NUM_THREADS", 0, 1, 1 << 14));
  if (n >= 1) return n;
#if defined(PLT_HAVE_OPENMP)
  return omp_get_max_threads();
#else
  const unsigned hc = std::thread::hardware_concurrency();
  return hc == 0 ? 1 : static_cast<int>(hc);
#endif
}

ThreadPool& ThreadPool::instance() {
  // Leaked on purpose: worker threads must not be joined during static
  // destruction (kernels may still run in atexit handlers).
  static ThreadPool* pool = new ThreadPool(
      default_size(), /*pin=*/true,
      static_cast<int>(common::env_int("PLT_POOL_PARTITIONS", 0, 0, 1 << 12)));
  return *pool;
}

namespace {

Runtime runtime_from_env() {
  const std::string v =
      common::env_enum("PLT_RUNTIME", "pool", {"serial", "omp", "pool"});
  if (v == "serial") return Runtime::kSerial;
  if (v == "omp") return Runtime::kOpenMP;
  return Runtime::kPool;
}

std::atomic<Runtime>& runtime_state() {
  static std::atomic<Runtime> r{runtime_from_env()};
  return r;
}

}  // namespace

Runtime runtime() { return runtime_state().load(std::memory_order_relaxed); }

void set_runtime(Runtime r) {
  runtime_state().store(r, std::memory_order_relaxed);
}

const char* runtime_name(Runtime r) {
  switch (r) {
    case Runtime::kSerial: return "serial";
    case Runtime::kOpenMP: return "omp";
    case Runtime::kPool: return "pool";
  }
  return "?";
}

}  // namespace plt
