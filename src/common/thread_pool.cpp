#include "common/thread_pool.hpp"

#include "common/env.hpp"

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif
#if defined(PLT_HAVE_OPENMP)
#include <omp.h>
#endif

#if defined(__x86_64__) || defined(_M_X64)
#include <immintrin.h>
#define PLT_CPU_PAUSE() _mm_pause()
#else
#define PLT_CPU_PAUSE() std::this_thread::yield()
#endif

namespace plt {

namespace {

// Spin budget before parking/yielding. Small enough that an oversubscribed
// team (more threads than cores) converges quickly to yield-based waiting.
constexpr int kSpinIters = 1 << 12;

void pin_to_core(int tid) {
#if defined(__linux__)
  const unsigned cores = std::thread::hardware_concurrency();
  if (cores == 0) return;
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(static_cast<unsigned>(tid) % cores, &set);
  ::pthread_setaffinity_np(::pthread_self(), sizeof(set), &set);
#else
  (void)tid;
#endif
}

bool pinning_enabled() {
  static const bool v = common::env_flag("PLT_PIN", true);
  return v;
}

}  // namespace

namespace detail {
RegionContext& region_context() {
  thread_local RegionContext ctx;
  return ctx;
}
}  // namespace detail

ThreadPool::ThreadPool(int nthreads, bool pin)
    : nthreads_(nthreads < 1 ? 1 : nthreads), pin_(pin) {
  slots_.resize(static_cast<std::size_t>(nthreads_));
  workers_.reserve(static_cast<std::size_t>(nthreads_ - 1));
  for (int t = 1; t < nthreads_; ++t) {
    workers_.emplace_back([this, t] { worker_main(t); });
  }
}

ThreadPool::~ThreadPool() {
  shutdown_.store(true, std::memory_order_release);
  {
    std::lock_guard<std::mutex> g(wake_mu_);
  }
  wake_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::worker_main(int tid) {
  if (pin_ && pinning_enabled()) pin_to_core(tid);
  std::uint64_t last_epoch = 0;
  while (true) {
    // Wait for the next region (or shutdown): spin briefly, then park.
    int spins = 0;
    while (epoch_.load(std::memory_order_acquire) == last_epoch &&
           !shutdown_.load(std::memory_order_acquire)) {
      if (++spins < kSpinIters) {
        PLT_CPU_PAUSE();
      } else {
        std::unique_lock<std::mutex> lk(wake_mu_);
        wake_cv_.wait(lk, [&] {
          return epoch_.load(std::memory_order_acquire) != last_epoch ||
                 shutdown_.load(std::memory_order_acquire);
        });
      }
    }
    if (shutdown_.load(std::memory_order_acquire)) return;
    last_epoch = epoch_.load(std::memory_order_acquire);

    detail::RegionContext& ctx = detail::region_context();
    ctx = {this, tid, nthreads_, true};
    fn_(ctx_, tid, nthreads_);
    ctx = {};

    if (done_count_.fetch_add(1, std::memory_order_acq_rel) == nthreads_ - 2) {
      // Last worker: release the dispatcher if it fell asleep.
      std::lock_guard<std::mutex> g(done_mu_);
      done_cv_.notify_one();
    }
  }
}

void ThreadPool::wait_workers_done() {
  int spins = 0;
  while (done_count_.load(std::memory_order_acquire) != nthreads_ - 1) {
    if (++spins < kSpinIters) {
      PLT_CPU_PAUSE();
    } else {
      std::unique_lock<std::mutex> lk(done_mu_);
      done_cv_.wait(lk, [&] {
        return done_count_.load(std::memory_order_acquire) == nthreads_ - 1;
      });
    }
  }
}

void ThreadPool::run(RegionFn fn, void* ctx) {
  detail::RegionContext& rc = detail::region_context();
  if (rc.active || nthreads_ == 1) {
    // Nested (or single-thread) dispatch degrades to a serial region.
    if (rc.active) {
      fn(ctx, 0, 1);
      return;
    }
    rc = {this, 0, 1, true};
    fn(ctx, 0, 1);
    rc = {};
    return;
  }

  // One team, one dispatcher: a second application thread dispatching while
  // the team is busy runs its region serially instead of racing on the
  // dispatch state (which would deadlock) or convoying behind the first.
  if (!dispatch_mu_.try_lock()) {
    rc = {this, 0, 1, true};
    fn(ctx, 0, 1);
    rc = {};
    return;
  }
  std::lock_guard<std::mutex> dispatch_guard(dispatch_mu_, std::adopt_lock);

  fn_ = fn;
  ctx_ = ctx;
  done_count_.store(0, std::memory_order_relaxed);
  epoch_.fetch_add(1, std::memory_order_acq_rel);
  {
    // Pairs with the predicate check in worker_main's parked wait.
    std::lock_guard<std::mutex> g(wake_mu_);
  }
  wake_cv_.notify_all();

  rc = {this, 0, nthreads_, true};
  fn(ctx, 0, nthreads_);
  rc = {};

  wait_workers_done();
  fn_ = nullptr;
  ctx_ = nullptr;
}

void ThreadPool::barrier(int tid) {
  if (nthreads_ == 1) return;
  PerThread& slot = slots_[static_cast<std::size_t>(tid)];
  const int ls = 1 - slot.barrier_sense;
  slot.barrier_sense = ls;
  if (bar_waiting_.fetch_add(1, std::memory_order_acq_rel) == nthreads_ - 1) {
    bar_waiting_.store(0, std::memory_order_relaxed);
    bar_sense_.store(ls, std::memory_order_release);
  } else {
    int spins = 0;
    while (bar_sense_.load(std::memory_order_acquire) != ls) {
      // Yield past the spin budget so oversubscribed teams make progress.
      if (++spins < kSpinIters) {
        PLT_CPU_PAUSE();
      } else {
        std::this_thread::yield();
      }
    }
  }
}

int ThreadPool::default_size() {
  // 0 = unset: fall through to the OpenMP/hardware defaults below.
  const int n = static_cast<int>(
      common::env_int("PLT_NUM_THREADS", 0, 1, 1 << 14));
  if (n >= 1) return n;
#if defined(PLT_HAVE_OPENMP)
  return omp_get_max_threads();
#else
  const unsigned hc = std::thread::hardware_concurrency();
  return hc == 0 ? 1 : static_cast<int>(hc);
#endif
}

ThreadPool& ThreadPool::instance() {
  // Leaked on purpose: worker threads must not be joined during static
  // destruction (kernels may still run in atexit handlers).
  static ThreadPool* pool = new ThreadPool(default_size());
  return *pool;
}

namespace {

Runtime runtime_from_env() {
  const std::string v =
      common::env_enum("PLT_RUNTIME", "pool", {"serial", "omp", "pool"});
  if (v == "serial") return Runtime::kSerial;
  if (v == "omp") return Runtime::kOpenMP;
  return Runtime::kPool;
}

std::atomic<Runtime>& runtime_state() {
  static std::atomic<Runtime> r{runtime_from_env()};
  return r;
}

}  // namespace

Runtime runtime() { return runtime_state().load(std::memory_order_relaxed); }

void set_runtime(Runtime r) {
  runtime_state().store(r, std::memory_order_relaxed);
}

const char* runtime_name(Runtime r) {
  switch (r) {
    case Runtime::kSerial: return "serial";
    case Runtime::kOpenMP: return "omp";
    case Runtime::kPool: return "pool";
  }
  return "?";
}

}  // namespace plt
