#include "common/cpu_features.hpp"

#include <cstring>
#include <thread>

#include "common/env.hpp"

#if defined(__x86_64__) || defined(_M_X64)
#include <cpuid.h>
#define PLT_X86 1
#endif

namespace plt {
namespace {

CpuFeatures detect() {
  CpuFeatures f;
  f.logical_cores = static_cast<int>(std::thread::hardware_concurrency());
  if (f.logical_cores <= 0) f.logical_cores = 1;
#if defined(PLT_X86)
  unsigned int eax = 0, ebx = 0, ecx = 0, edx = 0;
  if (__get_cpuid_count(7, 0, &eax, &ebx, &ecx, &edx)) {
    f.avx2 = (ebx >> 5) & 1;
    f.avx512f = (ebx >> 16) & 1;
    f.avx512dq = (ebx >> 17) & 1;
    f.avx512bw = (ebx >> 30) & 1;
    f.avx512vl = (ebx >> 31) & 1;
    f.amx_bf16 = (edx >> 22) & 1;
  }
  if (__get_cpuid_count(7, 1, &eax, &ebx, &ecx, &edx)) {
    f.avx512_bf16 = (eax >> 5) & 1;
  }
  if (__get_cpuid(1, &eax, &ebx, &ecx, &edx)) {
    f.fma = (ecx >> 12) & 1;
  }
  // Brand string (leaves 0x80000002..4).
  unsigned int brand[12] = {};
  bool ok = true;
  for (unsigned i = 0; i < 3 && ok; ++i) {
    ok = __get_cpuid(0x80000002u + i, &brand[4 * i + 0], &brand[4 * i + 1],
                     &brand[4 * i + 2], &brand[4 * i + 3]);
  }
  if (ok) {
    char buf[49] = {};
    std::memcpy(buf, brand, 48);
    f.brand = buf;
  }
#endif
  return f;
}

}  // namespace

const CpuFeatures& cpu_features() {
  static const CpuFeatures f = detect();
  return f;
}

IsaLevel effective_isa() {
  static const IsaLevel level = [] {
    const CpuFeatures& f = cpu_features();
    IsaLevel best = IsaLevel::kScalar;
#if defined(PLT_KERNELS_AVX2)
    if (f.avx2 && f.fma) best = IsaLevel::kAVX2;
#endif
#if defined(PLT_KERNELS_AVX512)
    if (f.avx512f && f.avx512bw && f.avx512vl && f.avx512dq)
      best = IsaLevel::kAVX512;
    if (best == IsaLevel::kAVX512 && f.avx512_bf16) best = IsaLevel::kAVX512BF16;
#endif
    const std::string s = common::env_enum(
        "PLT_ISA", "", {"scalar", "avx2", "avx512", "avx512_bf16"});
    if (!s.empty()) {
      IsaLevel cap = best;
      if (s == "scalar") cap = IsaLevel::kScalar;
      else if (s == "avx2") cap = IsaLevel::kAVX2;
      else if (s == "avx512") cap = IsaLevel::kAVX512;
      else if (s == "avx512_bf16") cap = IsaLevel::kAVX512BF16;
      if (static_cast<int>(cap) < static_cast<int>(best)) best = cap;
    }
    return best;
  }();
  return level;
}

const char* isa_name(IsaLevel l) {
  switch (l) {
    case IsaLevel::kScalar: return "scalar";
    case IsaLevel::kAVX2: return "avx2";
    case IsaLevel::kAVX512: return "avx512";
    case IsaLevel::kAVX512BF16: return "avx512_bf16";
  }
  return "?";
}

}  // namespace plt
