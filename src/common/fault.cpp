#include "common/fault.hpp"

#include <array>
#include <atomic>
#include <mutex>

#include "common/check.hpp"
#include "common/env.hpp"
#include "common/log.hpp"

namespace plt::common::fault {

namespace {

struct SiteState {
  // Armed configuration. Guarded by the enabled_ publication protocol:
  // configure() writes these, then publishes via enabled_ (release); the
  // fast path loads enabled_ (acquire) before reading them. Reconfiguring
  // while fault points race is a test-harness misuse, not supported.
  Kind kind = Kind::kNone;
  // Fire threshold in [0, 2^64): event fires iff mix(seed, site, n) < bar.
  std::uint64_t bar = 0;
  // Fire cap (0 = unlimited): after max_fires injections the site goes
  // quiet — `site:kind:1:1` is the deterministic "exactly once" chaos spec.
  std::uint64_t max_fires = 0;

  std::atomic<std::uint64_t> evaluated{0};
  std::atomic<std::uint64_t> injected{0};
};

struct Harness {
  std::atomic<bool> enabled{false};
  std::atomic<int> suppress{0};
  std::uint64_t seed = 0;
  std::array<SiteState, kSiteCount> sites;
  std::mutex config_mu;
};

Harness& harness() {
  static Harness* h = new Harness();  // leaked: fault points outlive main
  return *h;
}

// splitmix64: full-avalanche mix so per-site event streams are independent
// and reproducible for a fixed seed.
std::uint64_t mix(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

bool parse_site(const std::string& tok, Site* out) {
  if (tok == "kernel_exec") *out = Site::kKernelExec;
  else if (tok == "queue_push") *out = Site::kQueuePush;
  else if (tok == "session_warmup") *out = Site::kSessionWarmup;
  else if (tok == "registry_lookup") *out = Site::kRegistryLookup;
  else if (tok == "net_write") *out = Site::kNetWrite;
  else if (tok == "dispatcher_stall") *out = Site::kDispatcherStall;
  else if (tok == "conn_accept") *out = Site::kConnAccept;
  else return false;
  return true;
}

bool parse_kind(const std::string& tok, Kind* out) {
  if (tok == "throw") *out = Kind::kThrow;
  else if (tok == "full") *out = Kind::kFull;
  else if (tok == "fail") *out = Kind::kFail;
  else return false;
  return true;
}

// Applies one `site:kind:prob[:max]` entry; false (with a warning) on
// malformed input — the site stays disarmed, it never half-arms.
bool apply_triple(Harness& h, const std::string& triple) {
  const std::size_t c1 = triple.find(':');
  const std::size_t c2 = c1 == std::string::npos ? std::string::npos
                                                 : triple.find(':', c1 + 1);
  if (c1 == std::string::npos || c2 == std::string::npos) return false;
  const std::size_t c3 = triple.find(':', c2 + 1);
  Site site;
  Kind kind;
  if (!parse_site(triple.substr(0, c1), &site)) return false;
  if (!parse_kind(triple.substr(c1 + 1, c2 - c1 - 1), &kind)) return false;
  const std::size_t prob_end = c3 == std::string::npos ? triple.size() : c3;
  double prob = -1.0;
  try {
    std::size_t used = 0;
    prob = std::stod(triple.substr(c2 + 1, prob_end - c2 - 1), &used);
    if (used != prob_end - c2 - 1) return false;
  } catch (...) {
    return false;
  }
  if (!(prob >= 0.0 && prob <= 1.0)) return false;
  std::uint64_t max_fires = 0;  // 0 = unlimited
  if (c3 != std::string::npos) {
    try {
      std::size_t used = 0;
      const long long v = std::stoll(triple.substr(c3 + 1), &used);
      if (used != triple.size() - c3 - 1 || v < 0) return false;
      max_fires = static_cast<std::uint64_t>(v);
    } catch (...) {
      return false;
    }
  }
  SiteState& st = h.sites[static_cast<std::size_t>(site)];
  st.kind = prob > 0.0 ? kind : Kind::kNone;
  // prob 1.0 must always fire: saturate instead of wrapping to 0.
  st.bar = prob >= 1.0 ? ~0ull
                       : static_cast<std::uint64_t>(
                             prob * 18446744073709551616.0 /* 2^64 */);
  st.max_fires = max_fires;
  return true;
}

void configure_locked(Harness& h, const std::string& spec,
                      std::uint64_t seed) {
  h.enabled.store(false, std::memory_order_release);
  h.seed = seed;
  for (SiteState& st : h.sites) {
    st.kind = Kind::kNone;
    st.bar = 0;
    st.max_fires = 0;
    st.evaluated.store(0, std::memory_order_relaxed);
    st.injected.store(0, std::memory_order_relaxed);
  }
  bool any = false;
  std::size_t pos = 0;
  while (pos <= spec.size() && !spec.empty()) {
    const std::size_t semi = spec.find(';', pos);
    const std::size_t end = semi == std::string::npos ? spec.size() : semi;
    const std::string triple = spec.substr(pos, end - pos);
    if (!triple.empty()) {
      if (!apply_triple(h, triple)) {
        PLT_LOG_WARN << "fault: malformed PLT_FAULT_SPEC triple '" << triple
                     << "' (want site:kind:prob); dropped";
      }
    }
    if (semi == std::string::npos) break;
    pos = semi + 1;
  }
  for (const SiteState& st : h.sites) any = any || st.kind != Kind::kNone;
  h.enabled.store(any, std::memory_order_release);
}

// One-time env arming: the first fault-point evaluation (or enabled() call)
// reads PLT_FAULT_SPEC / PLT_FAULT_SEED. configure() afterwards overrides.
void arm_from_env_once() {
  static const bool once = [] {
    const std::string spec = env_str("PLT_FAULT_SPEC", "");
    if (!spec.empty()) {
      Harness& h = harness();
      std::lock_guard<std::mutex> g(h.config_mu);
      configure_locked(
          h, spec,
          static_cast<std::uint64_t>(env_int("PLT_FAULT_SEED", 0)));
    }
    return true;
  }();
  (void)once;
}

}  // namespace

const char* site_name(Site s) {
  switch (s) {
    case Site::kKernelExec: return "kernel_exec";
    case Site::kQueuePush: return "queue_push";
    case Site::kSessionWarmup: return "session_warmup";
    case Site::kRegistryLookup: return "registry_lookup";
    case Site::kNetWrite: return "net_write";
    case Site::kDispatcherStall: return "dispatcher_stall";
    case Site::kConnAccept: return "conn_accept";
  }
  return "?";
}

bool enabled() {
  arm_from_env_once();
  return harness().enabled.load(std::memory_order_acquire);
}

Kind should_inject(Site s) {
  arm_from_env_once();
  Harness& h = harness();
  if (!h.enabled.load(std::memory_order_acquire)) return Kind::kNone;
  if (h.suppress.load(std::memory_order_acquire) > 0) return Kind::kNone;
  SiteState& st = h.sites[static_cast<std::size_t>(s)];
  if (st.kind == Kind::kNone) return Kind::kNone;
  const std::uint64_t n = st.evaluated.fetch_add(1, std::memory_order_relaxed);
  const std::uint64_t u =
      mix(h.seed ^ (static_cast<std::uint64_t>(s) << 56) ^ n);
  if (u >= st.bar) return Kind::kNone;
  if (st.max_fires != 0) {
    // Capped site: the injected counter doubles as the fire budget, claimed
    // with a CAS so it stays exact (tests assert injected == fires).
    std::uint64_t cur = st.injected.load(std::memory_order_relaxed);
    do {
      if (cur >= st.max_fires) return Kind::kNone;
    } while (!st.injected.compare_exchange_weak(cur, cur + 1,
                                                std::memory_order_relaxed));
    return st.kind;
  }
  st.injected.fetch_add(1, std::memory_order_relaxed);
  return st.kind;
}

Kind fire_point(Site s) {
  const Kind k = should_inject(s);
  if (k == Kind::kThrow) {
    throw RuntimeError(StatusCode::kInternal,
                       std::string("injected fault at ") + site_name(s));
  }
  return k;
}

std::uint64_t evaluated(Site s) {
  return harness()
      .sites[static_cast<std::size_t>(s)]
      .evaluated.load(std::memory_order_relaxed);
}

std::uint64_t injected(Site s) {
  return harness()
      .sites[static_cast<std::size_t>(s)]
      .injected.load(std::memory_order_relaxed);
}

void configure(const std::string& spec, std::uint64_t seed) {
  arm_from_env_once();  // ensure env arming cannot later clobber this config
  Harness& h = harness();
  std::lock_guard<std::mutex> g(h.config_mu);
  configure_locked(h, spec, seed);
}

void reset() { configure("", 0); }

SuppressGuard::SuppressGuard() {
  harness().suppress.fetch_add(1, std::memory_order_acq_rel);
}

SuppressGuard::~SuppressGuard() {
  harness().suppress.fetch_sub(1, std::memory_order_acq_rel);
}

}  // namespace plt::common::fault
