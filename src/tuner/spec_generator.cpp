#include "tuner/spec_generator.hpp"

#include <algorithm>
#include <set>

#include "common/math_utils.hpp"
#include "common/rng.hpp"

namespace plt::tuner {

namespace {

// Contiguous windows of the ascending prefix-product list, assigned
// outermost-first (descending) to the blocking levels.
std::vector<std::vector<std::int64_t>> blocking_choices(std::int64_t trip,
                                                        std::int64_t step,
                                                        int levels) {
  std::vector<std::vector<std::int64_t>> out;
  if (levels == 0) {
    out.push_back({});
    return out;
  }
  const std::vector<std::int64_t> pp = prefix_product_blockings(trip, step);
  // Drop the full-trip product (a blocking equal to the whole trip count is
  // the unblocked loop again).
  std::vector<std::int64_t> opts;
  for (std::int64_t v : pp)
    if (v < trip * step) opts.push_back(v);
  if (static_cast<int>(opts.size()) < levels) return out;  // infeasible
  for (std::size_t lo = 0; lo + static_cast<std::size_t>(levels) <= opts.size(); ++lo) {
    // Window [lo, lo+levels) ascending; blocking lists are outermost-first,
    // i.e. descending.
    std::vector<std::int64_t> w(opts.begin() + static_cast<std::ptrdiff_t>(lo),
                                opts.begin() + static_cast<std::ptrdiff_t>(lo) + levels);
    std::reverse(w.begin(), w.end());
    out.push_back(std::move(w));
  }
  return out;
}

}  // namespace

std::vector<TuneCandidate> generate_gemm_candidates(
    const perfmodel::GemmModelProblem& p, const SpecGenOptions& opts) {
  const std::int64_t Kb = p.K / p.bk, Mb = p.M / p.bm, Nb = p.N / p.bn;

  std::vector<TuneCandidate> all;
  std::set<std::string> seen;

  for (int ta = 0; ta <= opts.max_blockings[0]; ++ta) {
    const auto ka = blocking_choices(Kb / p.k_step, p.k_step, ta);
    for (int tb = 0; tb <= opts.max_blockings[1]; ++tb) {
      const auto kb = blocking_choices(Mb, 1, tb);
      for (int tc = 0; tc <= opts.max_blockings[2]; ++tc) {
        const auto kc = blocking_choices(Nb, 1, tc);
        if (ka.empty() || kb.empty() || kc.empty()) continue;

        // Letter multiset for this blocking structure.
        std::string letters;
        letters.append(static_cast<std::size_t>(ta) + 1, 'a');
        letters.append(static_cast<std::size_t>(tb) + 1, 'b');
        letters.append(static_cast<std::size_t>(tc) + 1, 'c');
        std::sort(letters.begin(), letters.end());

        do {
          // Parallelization choices: single M or N occurrence, adjacent
          // (M,N) pair, or none.
          std::vector<std::string> variants;
          if (opts.include_serial) variants.push_back(letters);
          for (std::size_t i = 0; i < letters.size(); ++i) {
            const char ch = letters[i];
            if ((ch == 'b' && opts.allow_parallel_m) ||
                (ch == 'c' && opts.allow_parallel_n)) {
              std::string v = letters;
              v[i] = static_cast<char>(std::toupper(ch));
              variants.push_back(v);
              if (i + 1 < letters.size()) {
                const char nx = letters[i + 1];
                if (nx != ch &&
                    ((nx == 'b' && opts.allow_parallel_m) ||
                     (nx == 'c' && opts.allow_parallel_n))) {
                  std::string v2 = v;
                  v2[i + 1] = static_cast<char>(std::toupper(nx));
                  variants.push_back(v2);
                }
              }
            }
          }
          for (const std::string& spec : variants) {
            // Take the first blocking window per loop for permutation
            // variants beyond the first; all windows for the identity
            // permutation keeps the candidate count manageable.
            for (const auto& bk_a : ka)
              for (const auto& bk_b : kb)
                for (const auto& bk_c : kc) {
                  std::string key = spec + "/";
                  for (auto v : bk_a) key += std::to_string(v) + ",";
                  key += "/";
                  for (auto v : bk_b) key += std::to_string(v) + ",";
                  key += "/";
                  for (auto v : bk_c) key += std::to_string(v) + ",";
                  if (!seen.insert(key).second) continue;
                  all.push_back(TuneCandidate{spec, bk_a, bk_b, bk_c});
                }
          }
        } while (std::next_permutation(letters.begin(), letters.end()));
      }
    }
  }

  // Deterministic down-sample to the candidate budget (keep the first few
  // canonical orders, sample the rest).
  if (all.size() > opts.max_candidates) {
    Xoshiro256 rng(opts.seed);
    const std::size_t keep_head = std::min<std::size_t>(8, opts.max_candidates);
    std::vector<TuneCandidate> sampled(all.begin(),
                                       all.begin() + static_cast<std::ptrdiff_t>(keep_head));
    std::vector<TuneCandidate> rest(all.begin() + static_cast<std::ptrdiff_t>(keep_head),
                                    all.end());
    // Fisher-Yates prefix shuffle of the remainder.
    for (std::size_t i = 0; i < rest.size() && sampled.size() < opts.max_candidates; ++i) {
      const std::size_t j = i + static_cast<std::size_t>(
                                     rng.bounded(rest.size() - i));
      std::swap(rest[i], rest[j]);
      sampled.push_back(rest[i]);
    }
    return sampled;
  }
  return all;
}

}  // namespace plt::tuner
