// Auto-tuning driver (Fig. 1 boxes B2/B3): benchmarks candidate
// loop_spec_strings against the real GEMM kernel, optionally pre-ranks them
// with the performance model (for offline / cross-platform tuning), and
// persists results as CSV.
#pragma once

#include <string>
#include <vector>

#include "kernels/gemm_kernel.hpp"
#include "tuner/spec_generator.hpp"

namespace plt::tuner {

struct TuneResult {
  TuneCandidate candidate;
  double seconds = 0.0;       // best-of-iters wall time
  double gflops = 0.0;
  double model_score = 0.0;   // predicted flops/cycle (0 when not modeled)
};

struct TuneOptions {
  int warmup = 1;
  int iters = 3;
  // When >0, only the model's top_k candidates are actually benchmarked —
  // the offline-tuning shortcut Section II-E motivates.
  int model_top_k = 0;
  perfmodel::PlatformModel platform = perfmodel::PlatformModel::spr_like();
  int model_threads = 0;      // 0 => use the real thread count
};

class GemmTuner {
 public:
  GemmTuner(kernels::GemmConfig base, TuneOptions opts = {});

  // Benchmarks candidates (all, or the model's top-k). Results are sorted
  // by measured GFLOPS, best first. `tuning_seconds` (optional out)
  // receives the total wall time of the search.
  std::vector<TuneResult> run(const std::vector<TuneCandidate>& candidates,
                              double* tuning_seconds = nullptr) const;

  // Scores every candidate with the performance model only (no execution).
  std::vector<TuneResult> rank_with_model(
      const std::vector<TuneCandidate>& candidates) const;

  static void write_csv(const std::string& path,
                        const std::vector<TuneResult>& results);

  const kernels::GemmConfig& base() const { return base_; }

 private:
  kernels::GemmConfig apply(const TuneCandidate& c) const;
  perfmodel::GemmModelProblem model_problem() const;

  kernels::GemmConfig base_;
  TuneOptions opts_;
};

}  // namespace plt::tuner
