// Auto-tuning candidate generation (Section II-D).
//
// Mirrors the paper's constraint set for the Listing-1 GEMM:
//   1. block each logical loop up to a per-loop maximum (multi-level caches)
//   2. pick blocking factors programmatically as prefix products of the
//      prime factorization of the loop trip count
//   3. parallelize (occurrences of) the M and N loops
//   4. consider all permutations subject to 1-3
// Every decision maps 1:1 onto a loop_spec_string plus blocking lists, so a
// candidate is exactly the runtime knob the user code consumes — zero lines
// of user-code change per candidate.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "perfmodel/contraction_model.hpp"

namespace plt::tuner {

struct TuneCandidate {
  std::string spec;
  std::vector<std::int64_t> k_blocking, m_blocking, n_blocking;
};

struct SpecGenOptions {
  // Maximum blocking levels per logical loop (a=K, b=M, c=N).
  std::array<int, 3> max_blockings = {1, 2, 2};
  bool allow_parallel_m = true;
  bool allow_parallel_n = true;
  bool include_serial = false;   // also emit unparallelized variants
  std::size_t max_candidates = 64;
  std::uint64_t seed = 1;        // deterministic down-sampling
};

// Enumerates candidates for the blocked GEMM described by `p` (trip counts
// Mb/Nb/Kb derive from its shape and block sizes).
std::vector<TuneCandidate> generate_gemm_candidates(
    const perfmodel::GemmModelProblem& p, const SpecGenOptions& opts);

}  // namespace plt::tuner
