#include "tuner/tuner.hpp"

#include <algorithm>
#include <fstream>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "common/threading.hpp"
#include "common/timer.hpp"

namespace plt::tuner {

GemmTuner::GemmTuner(kernels::GemmConfig base, TuneOptions opts)
    : base_(std::move(base)), opts_(opts) {}

kernels::GemmConfig GemmTuner::apply(const TuneCandidate& c) const {
  kernels::GemmConfig cfg = base_;
  cfg.loop_spec = c.spec;
  cfg.k_blocking = c.k_blocking;
  cfg.m_blocking = c.m_blocking;
  cfg.n_blocking = c.n_blocking;
  return cfg;
}

perfmodel::GemmModelProblem GemmTuner::model_problem() const {
  perfmodel::GemmModelProblem p;
  p.M = base_.M;
  p.N = base_.N;
  p.K = base_.K;
  p.bm = base_.bm;
  p.bn = base_.bn;
  p.bk = base_.bk;
  p.k_step = base_.k_step;
  p.bf16 = base_.dtype == DType::BF16;
  return p;
}

std::vector<TuneResult> GemmTuner::rank_with_model(
    const std::vector<TuneCandidate>& candidates) const {
  const int threads = opts_.model_threads > 0 ? opts_.model_threads
                                              : max_threads();
  perfmodel::GemmModelProblem p = model_problem();
  std::vector<TuneResult> out;
  out.reserve(candidates.size());
  for (const TuneCandidate& c : candidates) {
    p.k_blocking = c.k_blocking;
    p.m_blocking = c.m_blocking;
    p.n_blocking = c.n_blocking;
    TuneResult r;
    r.candidate = c;
    r.model_score =
        perfmodel::model_gemm_spec(p, c.spec, opts_.platform, threads)
            .flops_per_cycle;
    out.push_back(std::move(r));
  }
  std::sort(out.begin(), out.end(), [](const TuneResult& a, const TuneResult& b) {
    return a.model_score > b.model_score;
  });
  return out;
}

std::vector<TuneResult> GemmTuner::run(
    const std::vector<TuneCandidate>& candidates,
    double* tuning_seconds) const {
  PLT_CHECK(!candidates.empty(), "tuner: no candidates to run");
  WallTimer total;

  std::vector<TuneResult> to_run;
  if (opts_.model_top_k > 0) {
    to_run = rank_with_model(candidates);
    if (static_cast<int>(to_run.size()) > opts_.model_top_k) {
      to_run.resize(static_cast<std::size_t>(opts_.model_top_k));
    }
  } else {
    to_run.reserve(candidates.size());
    for (const TuneCandidate& c : candidates) {
      TuneResult r;
      r.candidate = c;
      to_run.push_back(std::move(r));
    }
  }

  // One shared operand set across candidates (the spec only changes the
  // schedule, not the operands).
  kernels::GemmKernel probe(apply(to_run.front().candidate));
  AlignedBuffer<std::uint8_t> a(probe.a_elems() * dtype_size(base_.dtype));
  AlignedBuffer<std::uint8_t> b(probe.b_elems() * dtype_size(base_.dtype));
  AlignedBuffer<std::uint8_t> c(probe.c_elems() * dtype_size(base_.dtype));
  {
    Xoshiro256 rng(7);
    std::vector<float> flat(std::max(probe.a_elems(), probe.b_elems()));
    fill_uniform(flat.data(), flat.size(), rng, -0.5f, 0.5f);
    probe.pack_a(flat.data(), a.data());
    probe.pack_b(flat.data(), b.data());
  }

  for (TuneResult& r : to_run) {
    kernels::GemmKernel kernel(apply(r.candidate));
    r.seconds = time_best_seconds(
        [&] { kernel.run(a.data(), b.data(), c.data()); }, opts_.warmup,
        opts_.iters);
    r.gflops = gflops(kernel.flops(), r.seconds);
  }

  std::sort(to_run.begin(), to_run.end(),
            [](const TuneResult& x, const TuneResult& y) {
              return x.gflops > y.gflops;
            });
  if (tuning_seconds != nullptr) *tuning_seconds = total.seconds();
  return to_run;
}

void GemmTuner::write_csv(const std::string& path,
                          const std::vector<TuneResult>& results) {
  std::ofstream os(path);
  PLT_CHECK(static_cast<bool>(os), "tuner: cannot open csv for writing");
  os << "spec,k_blocking,m_blocking,n_blocking,seconds,gflops,model_score\n";
  const auto join = [](const std::vector<std::int64_t>& v) {
    std::string s;
    for (std::size_t i = 0; i < v.size(); ++i) {
      if (i) s += ' ';
      s += std::to_string(v[i]);
    }
    return s;
  };
  for (const TuneResult& r : results) {
    os << r.candidate.spec << ',' << join(r.candidate.k_blocking) << ','
       << join(r.candidate.m_blocking) << ',' << join(r.candidate.n_blocking)
       << ',' << r.seconds << ',' << r.gflops << ',' << r.model_score << '\n';
  }
}

}  // namespace plt::tuner
