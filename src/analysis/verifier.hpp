// Static schedule verifier: proves, at plan-compile time and without
// executing a single body invocation, that a compiled LoopNestPlan is safe to
// parallelize — the paper's central "aggressive parallelization without
// changing results" claim turned from a dynamically-tested property (TSan
// jobs, bitwise re-checks) into a statically-proved one.
//
// Three properties, per team size:
//
//   1. COVERAGE      The union of all ThreadProgram index tuples equals the
//                    full logical iteration space exactly once — across
//                    collapse groups, PAR-MODE 2 grids, remainder chunks,
//                    dynamic-schedule chunking and idle threads.
//   2. RACE-FREEDOM  Write footprints derived from the attached AccessMap
//                    strides are pairwise-disjoint across threads within each
//                    barrier-delimited segment, and read-after-write hazards
//                    only cross barriers (in/out aliasing uses one tensor
//                    name, so it is flagged the same way).
//   3. BACKEND       The interpreter's recorded schedule and the JIT
//      EQUIVALENCE   backend's emitted partitioning produce identical
//                    per-thread invocation sequences (and identical barrier
//                    segmentation for teams wider than one).
//
// Exposed three ways: the PLT_VERIFY_PLANS=1|2 hook at plan-compile time
// (warn / PLT_ENSURE-fail), the tools/nest_lint CLI sweep, and the mutation
// self-test that proves the verifier actually detects corrupted schedules.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "parlooper/interpreter.hpp"
#include "parlooper/nest_plan.hpp"

namespace plt::analysis {

enum class IssueKind {
  kStructure,        // malformed programs: barrier counts differ, bad tuples
  kCoverage,         // missing / duplicated / off-grid iteration tuples
  kRace,             // cross-thread write-write overlap within a segment
  kReadAfterWrite,   // cross-thread RAW hazard not separated by a barrier
  kBackendMismatch,  // interpreter and JIT partitionings disagree
};

const char* issue_kind_name(IssueKind k);

struct Issue {
  IssueKind kind;
  std::string message;
};

struct VerifyOptions {
  bool check_coverage = true;
  bool check_races = true;    // no-op unless access maps are supplied
  bool check_backend = true;  // skipped when no JIT compiler is available
  // Plans whose iteration space exceeds this are skipped (*_checked stays
  // false) rather than enumerated; verification is exact, not sampled.
  std::int64_t max_iterations = std::int64_t{1} << 20;
  std::size_t max_issues = 16;  // per report; further findings are counted
};

struct VerifyReport {
  int nthreads = 0;
  bool coverage_checked = false;
  bool races_checked = false;
  bool backend_checked = false;
  std::size_t maps_checked = 0;     // access maps the race pass covered
  std::size_t suppressed_issues = 0;  // findings beyond max_issues
  std::vector<Issue> issues;

  bool ok() const { return issues.empty() && suppressed_issues == 0; }
  bool has(IssueKind k) const;
  std::string summary() const;  // one line; multi-line detail when failing
};

// Verifies recorded per-thread programs against the plan's logical iteration
// space and the given access maps. This is the core the mutation self-test
// drives with deliberately corrupted programs; verify_plan feeds it the real
// recorded schedules. Does not touch the JIT backend.
VerifyReport verify_programs(
    const parlooper::LoopNestPlan& plan,
    const std::vector<parlooper::ThreadProgram>& threads,
    const std::vector<parlooper::AccessMap>& maps,
    const VerifyOptions& opts = {});

// Records the interpreter's team programs for an nthreads-wide team, runs
// verify_programs against the plan's attached access maps, then (when
// requested and a JIT compiler is available) records the JIT backend's
// emitted partitioning and asserts per-thread equality.
VerifyReport verify_plan(const parlooper::LoopNestPlan& plan, int nthreads,
                         const VerifyOptions& opts = {});

// Canonical team-size sweep {1, 2, 4, 8} used by the compile-time hook and
// the nest_lint CLI.
const std::vector<int>& default_team_sizes();

// Plan-compile-time hook, called by LoopNest construction. Gated by
// PLT_VERIFY_PLANS: 0/unset = off; 1 = verify and warn on findings;
// 2 = verify and PLT_ENSURE-fail (kInvalidArgument) on findings. Verifies
// the default team sizes, memoized per (plan, attached-map count) so cached
// plans are not re-proved on every LoopNest hit. Backend equivalence is only
// checked here when the JIT is in use (PLT_PARLOOPER_JIT) — nest_lint checks
// it unconditionally.
void maybe_verify_at_plan_compile(const parlooper::LoopNestPlan& plan);

// --- mutation self-test ------------------------------------------------------
//
// The verifier is itself a safety gate, so CI proves it detects corruption:
// each mutation kind applied to a known-good schedule must produce a failing
// report.
enum class Mutation {
  kDropTuple,        // delete one invocation -> coverage hole
  kDuplicateTuple,   // repeat one invocation -> double execution
  kCrossBarrierSwap, // exchange tuples across a barrier -> RAW violation
};

const char* mutation_name(Mutation m);

// Applies the mutation to a copy of the programs. Returns an empty vector if
// the programs have no site for the mutation (e.g. no multi-segment thread
// for kCrossBarrierSwap).
std::vector<parlooper::ThreadProgram> mutate_programs(
    const std::vector<parlooper::ThreadProgram>& threads, Mutation m,
    int num_logical);

// Runs all three mutations against a canonical two-phase plan and asserts
// the verifier flags each (and passes the unmutated schedule). Returns an
// empty string on success, else a description of the first failure.
std::string mutation_self_test();

}  // namespace plt::analysis
