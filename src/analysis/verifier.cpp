#include "analysis/verifier.hpp"

#include <algorithm>
#include <mutex>
#include <sstream>
#include <unordered_map>

#include "common/check.hpp"
#include "common/env.hpp"
#include "common/log.hpp"
#include "parlooper/jit_backend.hpp"

namespace plt::analysis {

namespace {

using parlooper::AccessMap;
using parlooper::LoopNestPlan;
using parlooper::TensorAccess;
using parlooper::ThreadProgram;

// Logical axis l in body-index terms: the values ind[l] takes are
// start + i * step for i in [0, trips).
struct LogicalAxis {
  std::int64_t start = 0;
  std::int64_t step = 1;
  std::int64_t trips = 0;
};

std::vector<LogicalAxis> logical_axes(const LoopNestPlan& plan) {
  std::vector<LogicalAxis> axes(static_cast<std::size_t>(plan.num_logical()));
  for (int l = 0; l < plan.num_logical(); ++l) {
    const auto& spec = plan.loops()[static_cast<std::size_t>(l)];
    const int inner = plan.innermost_level()[static_cast<std::size_t>(l)];
    LogicalAxis& ax = axes[static_cast<std::size_t>(l)];
    ax.start = spec.start;
    ax.step = plan.levels()[static_cast<std::size_t>(inner)].step;
    ax.trips = (spec.end - spec.start) / ax.step;
  }
  return axes;
}

std::string tuple_to_string(const std::int64_t* ind, int nlog) {
  std::string s = "(";
  for (int l = 0; l < nlog; ++l) {
    if (l > 0) s += ", ";
    s += std::to_string(ind[l]);
  }
  return s + ")";
}

class IssueSink {
 public:
  IssueSink(VerifyReport& report, std::size_t max_issues)
      : report_(report), max_issues_(max_issues) {}

  void add(IssueKind kind, std::string message) {
    if (report_.issues.size() < max_issues_) {
      report_.issues.push_back(Issue{kind, std::move(message)});
    } else {
      ++report_.suppressed_issues;
    }
  }

  // Findings beyond this are pure noise; callers stop scanning entirely.
  bool saturated() const { return report_.suppressed_issues > 1000; }

 private:
  VerifyReport& report_;
  std::size_t max_issues_;
};

// --- coverage ----------------------------------------------------------------

void check_coverage(const LoopNestPlan& plan,
                    const std::vector<ThreadProgram>& threads,
                    IssueSink& sink) {
  const int nlog = plan.num_logical();
  const std::vector<LogicalAxis> axes = logical_axes(plan);
  const std::int64_t total = plan.total_iterations();

  // Row-major rank strides over the per-axis trip counts.
  std::vector<std::int64_t> strides(axes.size(), 1);
  for (std::size_t l = axes.size(); l-- > 1;) {
    strides[l - 1] = strides[l] * std::max<std::int64_t>(axes[l].trips, 1);
  }

  std::vector<std::uint32_t> counts(static_cast<std::size_t>(total), 0);
  for (std::size_t t = 0; t < threads.size(); ++t) {
    const ThreadProgram& prog = threads[t];
    const std::size_t ninv =
        prog.inds.size() / static_cast<std::size_t>(nlog);
    for (std::size_t i = 0; i < ninv; ++i) {
      const std::int64_t* ind = prog.inds.data() + i * static_cast<std::size_t>(nlog);
      std::int64_t rank = 0;
      bool on_grid = true;
      for (int l = 0; l < nlog && on_grid; ++l) {
        const LogicalAxis& ax = axes[static_cast<std::size_t>(l)];
        const std::int64_t off = ind[l] - ax.start;
        if (ax.step <= 0 || off < 0 || off % ax.step != 0 ||
            off / ax.step >= ax.trips) {
          on_grid = false;
        } else {
          rank += (off / ax.step) * strides[static_cast<std::size_t>(l)];
        }
      }
      if (!on_grid) {
        sink.add(IssueKind::kCoverage,
                 "thread " + std::to_string(t) + ": tuple " +
                     tuple_to_string(ind, nlog) +
                     " is off the logical iteration grid");
        continue;
      }
      ++counts[static_cast<std::size_t>(rank)];
    }
  }

  std::vector<std::int64_t> ind(static_cast<std::size_t>(nlog), 0);
  for (std::int64_t rank = 0; rank < total; ++rank) {
    const std::uint32_t c = counts[static_cast<std::size_t>(rank)];
    if (c == 1) continue;
    if (sink.saturated()) return;
    std::int64_t rem = rank;
    for (int l = 0; l < nlog; ++l) {
      const LogicalAxis& ax = axes[static_cast<std::size_t>(l)];
      const std::int64_t i = rem / strides[static_cast<std::size_t>(l)];
      rem %= strides[static_cast<std::size_t>(l)];
      ind[static_cast<std::size_t>(l)] = ax.start + i * ax.step;
    }
    sink.add(IssueKind::kCoverage,
             "tuple " + tuple_to_string(ind.data(), nlog) +
                 (c == 0 ? " is never executed"
                         : " is executed " + std::to_string(c) + " times"));
  }
}

// --- race-freedom ------------------------------------------------------------

struct Interval {
  std::int64_t lo = 0;
  std::int64_t hi = 0;  // exclusive
  int tid = 0;
  bool write = false;
};

// Coalesces overlapping/adjacent intervals of one (thread, rw) class.
void coalesce(std::vector<Interval>& v) {
  if (v.size() < 2) return;
  std::sort(v.begin(), v.end(), [](const Interval& a, const Interval& b) {
    return a.lo < b.lo;
  });
  std::size_t out = 0;
  for (std::size_t i = 1; i < v.size(); ++i) {
    if (v[i].lo <= v[out].hi) {
      v[out].hi = std::max(v[out].hi, v[i].hi);
    } else {
      v[++out] = v[i];
    }
  }
  v.resize(out + 1);
}

void check_races_for_map(const LoopNestPlan& plan,
                         const std::vector<ThreadProgram>& threads,
                         const AccessMap& map, std::size_t map_index,
                         IssueSink& sink) {
  const int nlog = plan.num_logical();
  const std::size_t nsegs = threads.empty() ? 0 : threads[0].seg_len.size();

  // Per-invocation starting offset within each thread's inds array, advanced
  // segment by segment.
  std::vector<std::size_t> cursor(threads.size(), 0);

  for (std::size_t seg = 0; seg < nsegs; ++seg) {
    // tensor -> intervals of every thread in this barrier-delimited segment.
    std::unordered_map<std::string, std::vector<Interval>> by_tensor;
    for (std::size_t t = 0; t < threads.size(); ++t) {
      const ThreadProgram& prog = threads[t];
      const std::int64_t ninv = prog.seg_len[seg];

      // Intervals of this (thread, segment), coalesced per access class
      // before joining the cross-thread pool (a K-reduction re-touching one
      // C block collapses to a single interval here).
      std::unordered_map<std::string, std::vector<Interval>> mine[2];
      for (std::int64_t i = 0; i < ninv; ++i) {
        const std::int64_t* ind =
            prog.inds.data() + cursor[t] + static_cast<std::size_t>(i * nlog);
        for (const TensorAccess& a : map.accesses) {
          std::int64_t off = a.base;
          for (int l = 0; l < nlog; ++l) {
            off += a.coeffs[static_cast<std::size_t>(l)] * ind[l];
          }
          auto& dst = mine[a.write ? 1 : 0][a.tensor];
          for (std::int64_t r = 0; r < a.reps; ++r) {
            const std::int64_t lo = off + r * a.rep_stride;
            dst.push_back(
                Interval{lo, lo + a.span, static_cast<int>(t), a.write});
          }
        }
      }
      cursor[t] += static_cast<std::size_t>(ninv * nlog);
      for (auto& rw : mine) {
        for (auto& [tensor, ivs] : rw) {
          coalesce(ivs);
          auto& pool = by_tensor[tensor];
          pool.insert(pool.end(), ivs.begin(), ivs.end());
        }
      }
    }

    for (auto& [tensor, ivs] : by_tensor) {
      std::sort(ivs.begin(), ivs.end(),
                [](const Interval& a, const Interval& b) { return a.lo < b.lo; });
      for (std::size_t i = 0; i < ivs.size(); ++i) {
        for (std::size_t j = i + 1;
             j < ivs.size() && ivs[j].lo < ivs[i].hi; ++j) {
          if (ivs[i].tid == ivs[j].tid) continue;
          if (!ivs[i].write && !ivs[j].write) continue;
          if (sink.saturated()) return;
          const bool ww = ivs[i].write && ivs[j].write;
          std::ostringstream os;
          os << "map #" << map_index << " tensor '" << tensor << "' segment "
             << seg << ": threads " << ivs[i].tid << " and " << ivs[j].tid
             << (ww ? " write overlapping ranges ["
                    : " have a read/write overlap [")
             << std::max(ivs[i].lo, ivs[j].lo) << ", "
             << std::min(ivs[i].hi, ivs[j].hi)
             << ") within one barrier-delimited segment";
          sink.add(ww ? IssueKind::kRace : IssueKind::kReadAfterWrite,
                   os.str());
        }
      }
    }
  }
}

// --- backend equivalence -----------------------------------------------------

void check_backend_equivalence(const LoopNestPlan& plan,
                               const std::vector<ThreadProgram>& interp,
                               int nthreads, VerifyReport& report,
                               IssueSink& sink) {
  std::shared_ptr<parlooper::JitLoop> jit =
      parlooper::JitLoop::get_or_compile(plan);
  if (jit == nullptr) return;  // no compiler / non-rectangular collapse
  report.backend_checked = true;

  // Serial nests: the JIT executes on one thread of one; the emitted code
  // also skips barrier calls when nthreads == 1, so compare the flat
  // invocation sequence of thread 0 only.
  const bool serial = !plan.any_parallel();
  const int compare_threads = serial ? 1 : nthreads;
  for (int t = 0; t < compare_threads; ++t) {
    const ThreadProgram jp =
        serial ? jit->record_thread_program(plan, 0, 1)
               : jit->record_thread_program(plan, t, nthreads);
    const ThreadProgram& ip = interp[static_cast<std::size_t>(t)];
    if (jp.inds != ip.inds) {
      sink.add(IssueKind::kBackendMismatch,
               "thread " + std::to_string(t) +
                   ": JIT invocation sequence differs from the interpreter (" +
                   std::to_string(jp.inds.size()) + " vs " +
                   std::to_string(ip.inds.size()) + " recorded values)");
      continue;
    }
    if (!serial && nthreads > 1 && jp.seg_len != ip.seg_len) {
      sink.add(IssueKind::kBackendMismatch,
               "thread " + std::to_string(t) +
                   ": JIT barrier segmentation differs from the interpreter");
    }
  }
}

}  // namespace

const char* issue_kind_name(IssueKind k) {
  switch (k) {
    case IssueKind::kStructure: return "structure";
    case IssueKind::kCoverage: return "coverage";
    case IssueKind::kRace: return "race";
    case IssueKind::kReadAfterWrite: return "read-after-write";
    case IssueKind::kBackendMismatch: return "backend-mismatch";
  }
  return "?";
}

bool VerifyReport::has(IssueKind k) const {
  for (const Issue& i : issues) {
    if (i.kind == k) return true;
  }
  return false;
}

std::string VerifyReport::summary() const {
  std::ostringstream os;
  if (ok()) {
    os << "nthreads=" << nthreads << ": OK ("
       << (coverage_checked ? "coverage" : "coverage-skipped") << ", "
       << (races_checked ? "races[" + std::to_string(maps_checked) + " maps]"
                         : "races-skipped")
       << ", " << (backend_checked ? "backend" : "backend-skipped") << ")";
    return os.str();
  }
  os << "nthreads=" << nthreads << ": " << issues.size() << " issue(s)";
  if (suppressed_issues > 0) os << " (+" << suppressed_issues << " suppressed)";
  for (const Issue& i : issues) {
    os << "\n  [" << issue_kind_name(i.kind) << "] " << i.message;
  }
  return os.str();
}

VerifyReport verify_programs(const LoopNestPlan& plan,
                             const std::vector<ThreadProgram>& threads,
                             const std::vector<AccessMap>& maps,
                             const VerifyOptions& opts) {
  VerifyReport report;
  report.nthreads = static_cast<int>(threads.size());
  IssueSink sink(report, opts.max_issues);

  if (threads.empty()) {
    sink.add(IssueKind::kStructure, "no thread programs recorded");
    return report;
  }
  if (plan.total_iterations() > opts.max_iterations) {
    return report;  // nothing checked; *_checked flags stay false
  }

  // Structural sanity: aligned barrier structure (live execution would
  // deadlock otherwise) and self-consistent program shapes.
  const int nlog = plan.num_logical();
  const std::size_t nsegs = threads[0].seg_len.size();
  bool structure_ok = true;
  for (std::size_t t = 0; t < threads.size(); ++t) {
    const ThreadProgram& prog = threads[t];
    if (prog.seg_len.size() != nsegs) {
      sink.add(IssueKind::kStructure,
               "thread " + std::to_string(t) + " hits " +
                   std::to_string(prog.seg_len.size() - 1) +
                   " barrier(s) but thread 0 hits " +
                   std::to_string(nsegs - 1) +
                   " — live execution would deadlock");
      structure_ok = false;
      continue;
    }
    std::int64_t sum = 0;
    for (std::int64_t s : prog.seg_len) sum += s;
    if (sum * nlog != static_cast<std::int64_t>(prog.inds.size())) {
      sink.add(IssueKind::kStructure,
               "thread " + std::to_string(t) +
                   ": segment lengths do not cover the invocation array");
      structure_ok = false;
    }
  }

  if (opts.check_coverage && structure_ok) {
    check_coverage(plan, threads, sink);
    report.coverage_checked = true;
  }
  if (opts.check_races && structure_ok) {
    for (std::size_t m = 0; m < maps.size(); ++m) {
      check_races_for_map(plan, threads, maps[m], m, sink);
    }
    report.races_checked = true;
    report.maps_checked = maps.size();
  }
  return report;
}

VerifyReport verify_plan(const LoopNestPlan& plan, int nthreads,
                         const VerifyOptions& opts) {
  PLT_CHECK(nthreads >= 1, "verify_plan: need a positive team size");
  if (plan.total_iterations() > opts.max_iterations) {
    VerifyReport report;
    report.nthreads = nthreads;
    return report;
  }
  const std::vector<ThreadProgram> interp =
      parlooper::record_team_programs(plan, nthreads);
  VerifyReport report =
      verify_programs(plan, interp, plan.access_maps(), opts);
  if (opts.check_backend && parlooper::JitLoop::available()) {
    IssueSink sink(report, opts.max_issues);
    check_backend_equivalence(plan, interp, nthreads, report, sink);
  }
  return report;
}

const std::vector<int>& default_team_sizes() {
  static const std::vector<int> sizes = {1, 2, 4, 8};
  return sizes;
}

void maybe_verify_at_plan_compile(const LoopNestPlan& plan) {
  // Read per call (cheap next to a plan build) so tests can flip the knob.
  const int level =
      static_cast<int>(common::env_int("PLT_VERIFY_PLANS", 0, 0, 2));
  if (level == 0) return;

  // Memo keyed by plan address: hook callers (LoopNest construction) only
  // pass plans owned by the never-evicting plan registry, so addresses are
  // stable for the process lifetime. Re-verifies when a user attached a new
  // access map to a cached plan.
  static std::mutex mu;
  static std::unordered_map<const LoopNestPlan*, std::size_t> verified;
  const std::size_t nmaps = plan.access_maps().size();
  {
    std::lock_guard<std::mutex> lock(mu);
    auto it = verified.find(&plan);
    if (it != verified.end() && it->second >= nmaps) return;
  }

  VerifyOptions opts;
  // The hook proves what will actually run: backend equivalence is only
  // relevant (and worth a JIT compile) when the JIT is in use. nest_lint
  // sweeps it unconditionally.
  opts.check_backend = common::env_flag("PLT_PARLOOPER_JIT", false);

  std::string failures;
  for (int n : default_team_sizes()) {
    const VerifyReport report = verify_plan(plan, n, opts);
    if (!report.ok()) {
      failures += (failures.empty() ? "" : "\n") + report.summary();
    }
  }
  if (failures.empty()) {
    std::lock_guard<std::mutex> lock(mu);
    std::size_t& done = verified[&plan];
    done = std::max(done, nmaps);
    return;
  }
  const std::string msg = "static schedule verification failed for spec '" +
                          plan.spec_string() + "':\n" + failures;
  if (level >= 2) {
    // Not memoized: every construction of the bad plan must fail again.
    PLT_ENSURE(false, StatusCode::kInvalidArgument, msg);
  }
  PLT_LOG_WARN << msg;
  std::lock_guard<std::mutex> lock(mu);  // warn once per (plan, map set)
  std::size_t& done = verified[&plan];
  done = std::max(done, nmaps);
}

// --- mutation self-test ------------------------------------------------------

const char* mutation_name(Mutation m) {
  switch (m) {
    case Mutation::kDropTuple: return "drop-tuple";
    case Mutation::kDuplicateTuple: return "duplicate-tuple";
    case Mutation::kCrossBarrierSwap: return "cross-barrier-swap";
  }
  return "?";
}

std::vector<ThreadProgram> mutate_programs(
    const std::vector<ThreadProgram>& threads, Mutation m, int num_logical) {
  std::vector<ThreadProgram> out = threads;
  const std::size_t nlog = static_cast<std::size_t>(num_logical);

  for (ThreadProgram& prog : out) {
    // Byte offset of each segment's first invocation within inds.
    std::vector<std::size_t> seg_begin(prog.seg_len.size(), 0);
    for (std::size_t s = 1; s < prog.seg_len.size(); ++s) {
      seg_begin[s] = seg_begin[s - 1] +
                     static_cast<std::size_t>(prog.seg_len[s - 1]) * nlog;
    }

    switch (m) {
      case Mutation::kDropTuple:
        for (std::size_t s = 0; s < prog.seg_len.size(); ++s) {
          if (prog.seg_len[s] == 0) continue;
          const std::size_t last =
              seg_begin[s] + static_cast<std::size_t>(prog.seg_len[s] - 1) * nlog;
          prog.inds.erase(prog.inds.begin() + static_cast<std::ptrdiff_t>(last),
                          prog.inds.begin() +
                              static_cast<std::ptrdiff_t>(last + nlog));
          --prog.seg_len[s];
          return out;
        }
        break;
      case Mutation::kDuplicateTuple:
        for (std::size_t s = 0; s < prog.seg_len.size(); ++s) {
          if (prog.seg_len[s] == 0) continue;
          const std::size_t first = seg_begin[s];
          const std::vector<std::int64_t> tuple(
              prog.inds.begin() + static_cast<std::ptrdiff_t>(first),
              prog.inds.begin() + static_cast<std::ptrdiff_t>(first + nlog));
          prog.inds.insert(prog.inds.begin() + static_cast<std::ptrdiff_t>(first),
                           tuple.begin(), tuple.end());
          ++prog.seg_len[s];
          return out;
        }
        break;
      case Mutation::kCrossBarrierSwap: {
        // Exchange the last invocation of one segment with the last
        // invocation of a later segment: coverage stays intact, but work
        // ordered after the barrier now runs before it.
        int first_seg = -1;
        for (std::size_t s = 0; s < prog.seg_len.size(); ++s) {
          if (prog.seg_len[s] == 0) continue;
          if (first_seg < 0) {
            first_seg = static_cast<int>(s);
            continue;
          }
          const std::size_t a =
              seg_begin[static_cast<std::size_t>(first_seg)] +
              static_cast<std::size_t>(
                  prog.seg_len[static_cast<std::size_t>(first_seg)] - 1) * nlog;
          const std::size_t b =
              seg_begin[s] + static_cast<std::size_t>(prog.seg_len[s] - 1) * nlog;
          for (std::size_t l = 0; l < nlog; ++l) {
            std::swap(prog.inds[a + l], prog.inds[b + l]);
          }
          return out;
        }
        break;
      }
    }
  }
  return {};  // no mutation site found
}

std::string mutation_self_test() {
  // Canonical two-phase nest: loop a is the phase (sequential, with a
  // barrier after each phase's parallel work), loop b the element space.
  // Phase a writes row a of tensor x and reads a 2-wide neighborhood of row
  // a-1, so correctness depends on the barrier: x[a-1] must be complete
  // before any thread starts phase a.
  parlooper::LoopNestPlan plan(
      {parlooper::LoopSpecs{0, 2, 1}, parlooper::LoopSpecs{0, 8, 1}}, "aB|");
  AccessMap map;
  map.add_write("x", {16, 1}, /*span=*/1);
  map.add_read("x", {16, 1}, /*span=*/2, /*reps=*/1, /*rep_stride=*/0,
               /*base=*/-16);

  const int nthreads = 4;
  const std::vector<ThreadProgram> team =
      parlooper::record_team_programs(plan, nthreads);

  const VerifyReport clean = verify_programs(plan, team, {map});
  if (!clean.ok()) {
    return "self-test baseline failed: " + clean.summary();
  }

  const struct {
    Mutation m;
    IssueKind expected;
  } cases[] = {
      {Mutation::kDropTuple, IssueKind::kCoverage},
      {Mutation::kDuplicateTuple, IssueKind::kCoverage},
      {Mutation::kCrossBarrierSwap, IssueKind::kReadAfterWrite},
  };
  for (const auto& c : cases) {
    const std::vector<ThreadProgram> mutated =
        mutate_programs(team, c.m, plan.num_logical());
    if (mutated.empty()) {
      return std::string("self-test: no mutation site for ") +
             mutation_name(c.m);
    }
    const VerifyReport report = verify_programs(plan, mutated, {map});
    if (report.ok()) {
      return std::string("self-test: mutation '") + mutation_name(c.m) +
             "' was NOT detected";
    }
    if (!report.has(c.expected)) {
      return std::string("self-test: mutation '") + mutation_name(c.m) +
             "' detected, but not as " + issue_kind_name(c.expected) + ": " +
             report.summary();
    }
  }
  return "";
}

}  // namespace plt::analysis
