#include "serving/watchdog.hpp"

#include <algorithm>

#include "common/env.hpp"
#include "common/log.hpp"
#include "common/threading.hpp"

namespace plt::serving {

WatchdogConfig WatchdogConfig::from_env() {
  const WatchdogConfig def;
  WatchdogConfig c;
  c.period_usecs =
      common::env_int("PLT_WATCHDOG_USECS", def.period_usecs, 0, 600000000);
  c.quarantine_ticks = static_cast<int>(common::env_int(
      "PLT_WATCHDOG_QUARANTINE_TICKS", def.quarantine_ticks, 1, 1000));
  c.restart_ticks = static_cast<int>(common::env_int(
      "PLT_WATCHDOG_RESTART_TICKS", def.restart_ticks, 1, 1000));
  c.restart_ticks = std::max(c.restart_ticks, c.quarantine_ticks);
  return c;
}

Watchdog::Watchdog(RequestScheduler* scheduler, ModelRegistry* registry,
                   WatchdogConfig cfg)
    : cfg_(cfg), sched_(scheduler), registry_(registry) {
  cfg_.restart_ticks = std::max(cfg_.restart_ticks, cfg_.quarantine_ticks);
  if (sched_ != nullptr && cfg_.period_usecs > 0) {
    running_.store(true, std::memory_order_release);
    thread_ = std::thread([this] { main(); });
  }
}

Watchdog::~Watchdog() { stop(); }

void Watchdog::stop() {
  {
    std::lock_guard<std::mutex> g(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
  running_.store(false, std::memory_order_release);
}

bool Watchdog::running() const {
  return running_.load(std::memory_order_acquire);
}

void Watchdog::add_probe(std::string name,
                         std::function<std::uint64_t()> epoch,
                         std::function<std::size_t()> backlog) {
  std::lock_guard<std::mutex> g(mu_);
  Probe p;
  p.name = std::move(name);
  p.epoch = std::move(epoch);
  p.backlog = std::move(backlog);
  p.last = p.epoch ? p.epoch() : 0;
  probes_.push_back(std::move(p));
}

Watchdog::Stats Watchdog::stats() const {
  Stats st;
  st.warnings = warnings_.load(std::memory_order_relaxed);
  st.quarantines = quarantines_.load(std::memory_order_relaxed);
  st.restarts = restarts_.load(std::memory_order_relaxed);
  st.failovers = failovers_.load(std::memory_order_relaxed);
  st.recoveries = recoveries_.load(std::memory_order_relaxed);
  st.probe_warnings = probe_warnings_.load(std::memory_order_relaxed);
  return st;
}

int Watchdog::fail_over(int s) {
  if (registry_ == nullptr) return 0;
  const int nshards = sched_->shard_count();
  if (nshards <= 1) return 0;
  // Candidate partitions: the pinning domain shard_of() uses, widened to at
  // least the shard count — a pool with fewer partitions than shards still
  // homes sessions on every shard (partition indices wrap at dispatch), so
  // the domain must cover every shard or a 1-partition pool would have no
  // target off shard 0. Minus every partition homed on a quarantined (or
  // the stalled) shard.
  const int nparts =
      runtime() == Runtime::kPool
          ? std::max({1, pool_partitions(), nshards})
          : nshards;
  std::vector<int> targets;
  for (int p = 0; p < nparts; ++p) {
    const int home = p % nshards;
    if (home == s || sched_->shard_quarantined(home)) continue;
    targets.push_back(p);
  }
  if (targets.empty()) return 0;  // nowhere healthy to go
  int moved = 0;
  for (const auto& sess : registry_->sessions()) {
    const int p = sess->partition();
    if (p < 0 || p % nshards != s) continue;
    const int target = targets[static_cast<std::size_t>(moved) %
                               targets.size()];
    // Re-pin + re-warm on the new sub-team (first_touch). pin_partition
    // serializes on the session's exec mutex, so it never races a batch;
    // the wedged dispatcher cannot hold that mutex (the stall site sits
    // outside every execution scope).
    sess->pin_partition(target, /*first_touch=*/true);
    PLT_LOG_WARN << "watchdog: failed over session '" << sess->name()
                 << "' from stalled shard " << s << " to partition "
                 << target;
    ++moved;
  }
  failovers_.fetch_add(static_cast<std::uint64_t>(moved),
                       std::memory_order_relaxed);
  return moved;
}

void Watchdog::main() {
  const int nshards = sched_->shard_count();
  std::vector<std::uint64_t> last_hb(static_cast<std::size_t>(nshards), 0);
  std::vector<int> ticks(static_cast<std::size_t>(nshards), 0);
  for (int s = 0; s < nshards; ++s) {
    last_hb[static_cast<std::size_t>(s)] = sched_->shard_heartbeat(s);
  }
  const auto period = std::chrono::microseconds(cfg_.period_usecs);

  std::unique_lock<std::mutex> lk(mu_);
  while (true) {
    if (cv_.wait_for(lk, period, [&] { return stop_; })) break;

    for (int s = 0; s < nshards; ++s) {
      const std::size_t si = static_cast<std::size_t>(s);
      const std::uint64_t hb = sched_->shard_heartbeat(s);
      if (hb != last_hb[si]) {
        // Progress resumed: reset the escalation ladder and re-admit the
        // shard if a previous incident quarantined it.
        last_hb[si] = hb;
        ticks[si] = 0;
        if (sched_->shard_quarantined(s)) {
          sched_->set_shard_quarantined(s, false);
          recoveries_.fetch_add(1, std::memory_order_relaxed);
          PLT_LOG_INFO << "watchdog: shard " << s
                       << " recovered; quarantine lifted";
        }
        continue;
      }
      if (sched_->shard_backlog(s) == 0) {
        // Heartbeat frozen but nothing owed: the idle-parked signature.
        ticks[si] = 0;
        continue;
      }
      ++ticks[si];
      if (ticks[si] == 1) {
        warnings_.fetch_add(1, std::memory_order_relaxed);
        PLT_LOG_WARN << "watchdog: shard " << s
                     << " dispatcher stalled (backlog "
                     << sched_->shard_backlog(s) << ", heartbeat frozen at "
                     << hb << ")";
      }
      if (ticks[si] == cfg_.quarantine_ticks &&
          !sched_->shard_quarantined(s)) {
        sched_->set_shard_quarantined(s, true);
        quarantines_.fetch_add(1, std::memory_order_relaxed);
        PLT_LOG_WARN << "watchdog: shard " << s
                     << " quarantined; rerouting new admissions";
      }
      if (ticks[si] >= cfg_.restart_ticks) {
        // Escalation ceiling: move the shard's sessions to healthy
        // partitions, then replace the wedged thread. Sampling continues
        // from a fresh ladder — if the replacement wedges too (chaos specs
        // without a fire cap), the same escalation runs again.
        const int moved = fail_over(s);
        if (sched_->restart_dispatcher(s)) {
          restarts_.fetch_add(1, std::memory_order_relaxed);
          PLT_LOG_WARN << "watchdog: shard " << s
                       << " dispatcher restarted (failed over " << moved
                       << " sessions)";
          // The restart IS the recovery: lift the quarantine here, not on
          // the next heartbeat advance — a fast replacement can drain the
          // backlog and park before this thread samples again, and a parked
          // (frozen-heartbeat, zero-backlog) shard would stay quarantined
          // forever if re-admission waited for visible progress.
          if (sched_->shard_quarantined(s)) {
            sched_->set_shard_quarantined(s, false);
            recoveries_.fetch_add(1, std::memory_order_relaxed);
            PLT_LOG_INFO << "watchdog: shard " << s
                         << " recovered; quarantine lifted";
          }
        }
        last_hb[si] = sched_->shard_heartbeat(s);
        ticks[si] = 0;
      }
    }

    // External probes: warn-only, edge-triggered per incident.
    for (Probe& p : probes_) {
      if (!p.epoch) continue;
      const std::uint64_t e = p.epoch();
      const std::size_t backlog = p.backlog ? p.backlog() : 0;
      if (e != p.last || backlog == 0) {
        p.last = e;
        p.stalled = false;
        continue;
      }
      if (!p.stalled) {
        p.stalled = true;
        probe_warnings_.fetch_add(1, std::memory_order_relaxed);
        PLT_LOG_WARN << "watchdog: probe '" << p.name
                     << "' stalled (epoch frozen at " << e << ", backlog "
                     << backlog << ")";
      }
    }
  }
  running_.store(false, std::memory_order_release);
}

}  // namespace plt::serving
