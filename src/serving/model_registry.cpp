#include "serving/model_registry.hpp"

#include <unordered_set>

#include "common/check.hpp"
#include "common/fault.hpp"
#include "common/threading.hpp"

namespace plt::serving {

ModelRegistry::ModelRegistry()
    : snap_(std::make_shared<const Snapshot>()) {}

void ModelRegistry::publish_locked(std::shared_ptr<Snapshot> next) {
  next->version = next_version_++;
  std::atomic_store_explicit(
      &snap_, std::shared_ptr<const Snapshot>(std::move(next)),
      std::memory_order_release);
}

std::shared_ptr<const ModelRegistry::Snapshot> ModelRegistry::snapshot()
    const {
  return std::atomic_load_explicit(&snap_, std::memory_order_acquire);
}

void ModelRegistry::add(std::shared_ptr<Session> session, int partition) {
  PLT_CHECK(session != nullptr, "registry: null session");
  int pin = partition;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto cur = snapshot();
    PLT_CHECK(cur->by_name.find(session->name()) == cur->by_name.end(),
              "registry: duplicate model name");
    const int nparts = pool_partitions();
    if (pin < 0) pin = next_partition_++ % nparts;
    pin %= nparts;
    // Copy-on-write: the published table is immutable, so add() builds the
    // successor and swaps — concurrent readers keep walking the old one.
    auto next = std::make_shared<Snapshot>(*cur);
    next->by_name.emplace(session->name(), session);
    next->ordered.push_back(session);
    publish_locked(std::move(next));
  }
  // Outside the lock: the first-touch warmup runs real model forwards.
  session->pin_partition(pin);
}

void ModelRegistry::reload(const SnapshotBuilder& builder) {
  PLT_CHECK(builder != nullptr, "registry: null reload builder");
  std::lock_guard<std::mutex> lock(mu_);
  const auto cur = snapshot();
  std::vector<std::shared_ptr<Session>> next_sessions = builder(cur->ordered);
  auto next = std::make_shared<Snapshot>();
  next->ordered.reserve(next_sessions.size());
  std::vector<std::shared_ptr<Session>> fresh;  // not in the old table
  for (auto& s : next_sessions) {
    PLT_CHECK(s != nullptr, "registry: reload built a null session");
    const auto [it, inserted] = next->by_name.emplace(s->name(), s);
    (void)it;
    PLT_CHECK(inserted, "registry: reload built a duplicate model name");
    const auto old = cur->by_name.find(s->name());
    if (old == cur->by_name.end() || old->second != s) fresh.push_back(s);
    next->ordered.push_back(std::move(s));
  }
  // Pin + first-touch-warm the new sessions BEFORE publishing: the swap must
  // never expose a session whose plans/kernels are still unresolved to live
  // traffic (that would turn the first post-reload request into a warmup).
  // Holding mu_ here only blocks other writers; readers stay on `cur`.
  for (const auto& s : fresh) {
    if (s->partition() < 0) {
      s->pin_partition(next_partition_++ % pool_partitions());
    } else {
      s->pin_partition(s->partition());
    }
  }
  publish_locked(std::move(next));
  // `cur` (and any session only it references) drains naturally: in-flight
  // requests hold shared_ptr<Session>, so the old model frees only after its
  // last batch completes — zero dropped requests across the swap.
}

std::shared_ptr<Session> ModelRegistry::find(const std::string& name) const {
  const auto snap = snapshot();
  const auto it = snap->by_name.find(name);
  return it == snap->by_name.end() ? nullptr : it->second;
}

StatusOr<std::shared_ptr<Session>> ModelRegistry::lookup(
    const std::string& name) const {
  if (common::fault::should_inject(common::fault::Site::kRegistryLookup) !=
      common::fault::Kind::kNone) {
    return Status::Unavailable("injected fault at registry_lookup");
  }
  std::shared_ptr<Session> s = find(name);
  if (s == nullptr) return Status::InvalidArgument("unknown model: " + name);
  return s;
}

Status ModelRegistry::quarantine(const std::string& name,
                                 const std::string& reason) {
  std::shared_ptr<Session> s = find(name);
  if (s == nullptr) return Status::InvalidArgument("unknown model: " + name);
  s->mark_unhealthy(reason);
  return Status::Ok();
}

Status ModelRegistry::set_default_class(const std::string& name,
                                        RequestClass cls) {
  if (cls == RequestClass::kSessionDefault) {
    return Status::InvalidArgument(
        "set_default_class: class must be latency or throughput");
  }
  std::shared_ptr<Session> s = find(name);
  if (s == nullptr) return Status::InvalidArgument("unknown model: " + name);
  s->set_default_class(cls);
  return Status::Ok();
}

std::vector<std::shared_ptr<Session>> ModelRegistry::sessions() const {
  return snapshot()->ordered;
}

std::size_t ModelRegistry::size() const { return snapshot()->ordered.size(); }

std::size_t ModelRegistry::healthy_count() const {
  const auto snap = snapshot();
  std::size_t n = 0;
  for (const auto& s : snap->ordered) n += s->healthy() ? 1 : 0;
  return n;
}

ModelRegistry& ModelRegistry::instance() {
  static ModelRegistry* reg = new ModelRegistry();  // leaked like the pool
  return *reg;
}

}  // namespace plt::serving
