#include "serving/model_registry.hpp"

#include "common/check.hpp"
#include "common/fault.hpp"
#include "common/threading.hpp"

namespace plt::serving {

void ModelRegistry::add(std::shared_ptr<Session> session, int partition) {
  PLT_CHECK(session != nullptr, "registry: null session");
  int pin = partition;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto [it, inserted] = by_name_.emplace(session->name(), session);
    PLT_CHECK(inserted, "registry: duplicate model name");
    ordered_.push_back(session);
    const int nparts = pool_partitions();
    if (pin < 0) pin = next_partition_++ % nparts;
    pin %= nparts;
  }
  // Outside the lock: the first-touch warmup runs real model forwards.
  session->pin_partition(pin);
}

std::shared_ptr<Session> ModelRegistry::find(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = by_name_.find(name);
  return it == by_name_.end() ? nullptr : it->second;
}

StatusOr<std::shared_ptr<Session>> ModelRegistry::lookup(
    const std::string& name) const {
  if (common::fault::should_inject(common::fault::Site::kRegistryLookup) !=
      common::fault::Kind::kNone) {
    return Status::Unavailable("injected fault at registry_lookup");
  }
  std::shared_ptr<Session> s = find(name);
  if (s == nullptr) return Status::InvalidArgument("unknown model: " + name);
  return s;
}

Status ModelRegistry::quarantine(const std::string& name,
                                 const std::string& reason) {
  std::shared_ptr<Session> s = find(name);
  if (s == nullptr) return Status::InvalidArgument("unknown model: " + name);
  s->mark_unhealthy(reason);
  return Status::Ok();
}

Status ModelRegistry::set_default_class(const std::string& name,
                                        RequestClass cls) {
  if (cls == RequestClass::kSessionDefault) {
    return Status::InvalidArgument(
        "set_default_class: class must be latency or throughput");
  }
  std::shared_ptr<Session> s = find(name);
  if (s == nullptr) return Status::InvalidArgument("unknown model: " + name);
  s->set_default_class(cls);
  return Status::Ok();
}

std::vector<std::shared_ptr<Session>> ModelRegistry::sessions() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ordered_;
}

std::size_t ModelRegistry::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ordered_.size();
}

std::size_t ModelRegistry::healthy_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t n = 0;
  for (const auto& s : ordered_) n += s->healthy() ? 1 : 0;
  return n;
}

ModelRegistry& ModelRegistry::instance() {
  static ModelRegistry* reg = new ModelRegistry();  // leaked like the pool
  return *reg;
}

}  // namespace plt::serving
