#include "serving/session.hpp"

#include <algorithm>
#include <vector>

#include "common/check.hpp"
#include "common/fault.hpp"
#include "common/threading.hpp"

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

namespace plt::serving {

namespace {

// Moves the calling thread onto partition p's cores for the duration of a
// scope and restores its previous affinity after. On partition 0 the caller
// participates in run_on() regions as tid 0 (and IS the whole sub-team when
// the partition has one member), so its warmup share would otherwise be
// first-touched wherever the registering thread happens to run.
class ScopedPartitionAffinity {
 public:
  explicit ScopedPartitionAffinity(int p) {
#if defined(__linux__)
    saved_ok_ = ::pthread_getaffinity_np(::pthread_self(), sizeof(saved_),
                                         &saved_) == 0;
#endif
    ThreadPool::instance().pin_caller_to_partition(p);
  }
  ~ScopedPartitionAffinity() {
#if defined(__linux__)
    if (saved_ok_) {
      ::pthread_setaffinity_np(::pthread_self(), sizeof(saved_), &saved_);
    }
#endif
  }

 private:
#if defined(__linux__)
  cpu_set_t saved_;
#endif
  bool saved_ok_ = false;
};

}  // namespace

void Session::warmup() {
  // The warmup fault site fires BEFORE suppression: it models a model that
  // fails to build. The guard then keeps the real kernel runs below from
  // drawing kernel_exec events — construction is not serving chaos.
  common::fault::fire_point(common::fault::Site::kSessionWarmup);
  common::fault::SuppressGuard no_chaos;
  std::vector<float> in(static_cast<std::size_t>(input_elems_));
  std::vector<float> out(static_cast<std::size_t>(output_elems_));
  Xoshiro256 rng(0xC0FFEEull);
  fill_uniform(in.data(), in.size(), rng, -0.1f, 0.1f);
  for (int l = 0; l < lanes_; ++l) run(l, in.data(), out.data());
}

void Session::mark_unhealthy(const std::string& reason) {
  {
    std::lock_guard<std::mutex> g(health_mu_);
    if (health_reason_.empty()) health_reason_ = reason;  // first failure wins
  }
  healthy_.store(false, std::memory_order_release);
}

void Session::mark_healthy() {
  {
    std::lock_guard<std::mutex> g(health_mu_);
    health_reason_.clear();
  }
  healthy_.store(true, std::memory_order_release);
}

std::string Session::health_reason() const {
  std::lock_guard<std::mutex> g(health_mu_);
  return health_reason_;
}

void Session::set_default_class(RequestClass cls) {
  PLT_CHECK(cls != RequestClass::kSessionDefault,
            "serving: a session default class must be latency or throughput");
  default_class_.store(static_cast<int>(cls), std::memory_order_release);
}

void Session::run_step(int lane, const float* in, float* out, int step,
                       int tokens_per_step) {
  (void)tokens_per_step;
  PLT_CHECK(step == 0, "serving: session is not steppable (single step)");
  run(lane, in, out);
}

int Session::acquire_lane() {
  std::lock_guard<std::mutex> g(lane_mu_);
  if (lane_busy_.empty()) lane_busy_.assign(static_cast<std::size_t>(lanes_), 0);
  for (std::size_t l = 0; l < lane_busy_.size(); ++l) {
    if (!lane_busy_[l]) {
      lane_busy_[l] = 1;
      return static_cast<int>(l);
    }
  }
  return -1;
}

void Session::release_lane(int lane) {
  std::lock_guard<std::mutex> g(lane_mu_);
  if (lane >= 0 && static_cast<std::size_t>(lane) < lane_busy_.size()) {
    lane_busy_[static_cast<std::size_t>(lane)] = 0;
  }
}

void Session::pin_partition(int p, bool first_touch) {
  if (p < 0) return;
  // Stored RAW, like pin_partition_if_unpinned: the scheduler homes the
  // session on shard (p % nshards), and a sharded scheduler may run more
  // shards than the pool has partitions (every executor wraps p modulo the
  // real partition count before dispatch). Normalizing here would collapse
  // the shard-homing domain to the partition count — on a 1-partition pool
  // that would make it impossible to re-home a session off shard 0, which
  // is exactly what watchdog failover must do. Only the warmup below needs
  // the real partition index.
  partition_.store(p, std::memory_order_release);
  p %= std::max(1, pool_partitions());
  if (!first_touch || runtime() != Runtime::kPool) return;
  if (ThreadPool::instance().partitions() <= 1) return;
  // Warmup on the owning partition: lanes are spread over its sub-team so
  // every member faults in (and thereby places) the lazily-built per-lane
  // state it will touch when serving real batches. Nests inside run() are
  // nested regions and degrade to serial walks, exactly as during serving.
  std::lock_guard<std::mutex> guard(exec_mu_);
  std::vector<float> in(static_cast<std::size_t>(input_elems_));
  std::vector<float> out(static_cast<std::size_t>(output_elems_));
  Xoshiro256 rng(0xC0FFEEull);
  fill_uniform(in.data(), in.size(), rng, -0.1f, 0.1f);
  // The affinity scope moves this thread onto partition p's cores for the
  // warmup, so placement is correct even when a busy partition degrades
  // parallel_region_on to a serial run on the caller (and for the caller's
  // own tid-0 share on partition 0): every first-touch happens on node p
  // either way. One pass suffices — the lazily-built state is idempotent.
  ScopedPartitionAffinity on_node(p);
  common::fault::SuppressGuard no_chaos;  // first-touch warmup, not serving
  parallel_region_on(p, [&](int tid, int nthreads) {
    std::vector<float> local_out(out);  // lanes run concurrently
    for (int l = tid; l < lanes_; l += nthreads) {
      run(l, in.data(), local_out.data());
    }
  });
}

int Session::pin_partition_if_unpinned(int p) {
  // Stored as given, NOT normalized: under non-pool runtimes (one fictive
  // partition) the scheduler uses this value to spread sessions over its
  // shards, and every executor wraps it modulo the real partition count.
  // The pool-runtime caller (shard_of) already passes a normalized index.
  int expected = -1;
  if (partition_.compare_exchange_strong(expected, p,
                                         std::memory_order_acq_rel)) {
    return p;
  }
  return expected;
}

namespace {

// --- MLP --------------------------------------------------------------------

class MlpSession final : public Session {
 public:
  MlpSession(const std::string& name, const MlpServeConfig& cfg, int lanes,
             std::uint64_t seed)
      : Session(name, lanes, cfg.tokens * cfg.features,
                cfg.tokens * cfg.features,
                2.0 * static_cast<double>(cfg.tokens) * cfg.features *
                    cfg.features * cfg.layers),
        cfg_(cfg) {
    PLT_CHECK(cfg.layers >= 1, "serving: MLP needs at least one layer");
    dl::FcConfig fc;
    fc.in_features = fc.out_features = cfg.features;
    fc.tokens = cfg.tokens;
    fc.bm = cfg.bm;
    fc.bn = cfg.bn;
    fc.bk = cfg.bk;
    fc.dtype = cfg.dtype;
    fc.act = dl::FcActivation::kRelu;
    fc.loop_spec = cfg.loop_spec;
    for (int l = 0; l < this->lanes(); ++l) {
      Xoshiro256 rng(seed);  // every lane sees the same weight stream
      Lane lane;
      for (std::int64_t i = 0; i < cfg.layers; ++i) {
        lane.layers.push_back(std::make_unique<dl::FcLayer>(fc, rng));
      }
      lane.ping.assign(static_cast<std::size_t>(input_elems()), 0.0f);
      lane.pong.assign(static_cast<std::size_t>(input_elems()), 0.0f);
      lanes_.push_back(std::move(lane));
    }
    warmup();
  }

  void run(int lane_id, const float* in, float* out) override {
    Lane& lane = lanes_[static_cast<std::size_t>(lane_id)];
    const float* src = in;
    for (std::size_t i = 0; i < lane.layers.size(); ++i) {
      float* dst = i + 1 == lane.layers.size()
                       ? out
                       : (i % 2 == 0 ? lane.ping.data() : lane.pong.data());
      lane.layers[i]->forward(src, dst);
      src = dst;
    }
  }

 private:
  struct Lane {
    std::vector<std::unique_ptr<dl::FcLayer>> layers;
    std::vector<float> ping, pong;
  };
  MlpServeConfig cfg_;
  std::vector<Lane> lanes_;
};

// --- BERT -------------------------------------------------------------------

class BertSession final : public Session {
 public:
  BertSession(const std::string& name, const dl::BertConfig& cfg, int lanes,
              std::uint64_t seed)
      : Session(name, lanes, cfg.tokens() * cfg.hidden,
                cfg.tokens() * cfg.hidden, 0.0) {
    for (int l = 0; l < this->lanes(); ++l) {
      Xoshiro256 rng(seed);
      models_.push_back(std::make_unique<dl::BertEncoder>(cfg, rng));
    }
    set_flops(models_[0]->forward_flops());
    warmup();
  }

  void run(int lane, const float* in, float* out) override {
    // dropout_p == 0: forward consumes no randomness, the rng is inert.
    Xoshiro256 rng(0);
    models_[static_cast<std::size_t>(lane)]->forward(in, out, rng);
  }

 private:
  std::vector<std::unique_ptr<dl::BertEncoder>> models_;
};

// --- block-sparse FC --------------------------------------------------------

class SparseFcSession final : public Session {
 public:
  SparseFcSession(const std::string& name, const dl::SparseFcConfig& cfg,
                  int lanes, std::uint64_t seed)
      : Session(name, lanes, cfg.tokens * cfg.in_features,
                cfg.tokens * cfg.out_features, 0.0) {
    Xoshiro256 rng(seed);
    dl::Tensor weight({cfg.out_features, cfg.in_features});
    dl::Tensor bias({cfg.out_features});
    weight.randn_uniform(rng, -0.1f, 0.1f);
    bias.randn_uniform(rng, -0.01f, 0.01f);
    for (int l = 0; l < this->lanes(); ++l) {
      layers_.push_back(
          std::make_unique<dl::SparseFcLayer>(cfg, weight, bias));
    }
    set_flops(layers_[0]->effective_flops());
    warmup();
  }

  void run(int lane, const float* in, float* out) override {
    layers_[static_cast<std::size_t>(lane)]->forward(in, out);
  }

 private:
  std::vector<std::unique_ptr<dl::SparseFcLayer>> layers_;
};

// --- LLM (prefill + decode) -------------------------------------------------

class LlmSession final : public Session {
 public:
  LlmSession(const std::string& name, const dl::LlmConfig& cfg,
             std::int64_t prompt_len, std::int64_t gen_tokens, int lanes,
             std::uint64_t seed)
      : Session(name, lanes, prompt_len * cfg.hidden, gen_tokens * cfg.hidden,
                llm_flops(cfg, prompt_len, gen_tokens)),
        cfg_(cfg),
        prompt_len_(prompt_len),
        gen_tokens_(gen_tokens) {
    PLT_CHECK(prompt_len >= 1 && gen_tokens >= 1,
              "serving: LLM needs prompt_len >= 1 and gen_tokens >= 1");
    PLT_CHECK(prompt_len + gen_tokens <= cfg.max_seq,
              "serving: prompt + generation exceeds max_seq");
    for (int l = 0; l < this->lanes(); ++l) {
      Xoshiro256 rng(seed);
      Lane lane;
      for (std::int64_t i = 0; i < cfg.layers; ++i) {
        lane.layers.push_back(std::make_unique<dl::DecoderLayer>(cfg, rng));
      }
      const std::size_t hs =
          static_cast<std::size_t>(prompt_len * cfg.hidden);
      lane.ping.assign(hs, 0.0f);
      lane.pong.assign(hs, 0.0f);
      lane.tok.assign(static_cast<std::size_t>(cfg.hidden), 0.0f);
      lane.tok_out.assign(static_cast<std::size_t>(cfg.hidden), 0.0f);
      lanes_.push_back(std::move(lane));
    }
    warmup();
  }

  // Monolithic run() is literally the stepped pipeline executed in one call:
  // prefill, then every decode token. Stepped execution (run_step) replays
  // the exact same per-lane operation sequence split at token boundaries, so
  // "stepped == monolithic" holds bitwise by construction — the scheduler
  // tests assert it end to end anyway.
  void run(int lane_id, const float* in, float* out) override {
    Lane& lane = lanes_[static_cast<std::size_t>(lane_id)];
    prefill_lane(lane, in);
    decode_range(lane, 0, gen_tokens_, out);
  }

  bool steppable() const override { return true; }

  int step_count(int tokens_per_step) const override {
    if (tokens_per_step <= 0) return 1;  // monolithic decode
    const std::int64_t tps = tokens_per_step;
    return static_cast<int>((gen_tokens_ + tps - 1) / tps);
  }

  void run_step(int lane_id, const float* in, float* out, int step,
                int tokens_per_step) override {
    if (tokens_per_step <= 0) {
      run(lane_id, in, out);
      return;
    }
    Lane& lane = lanes_[static_cast<std::size_t>(lane_id)];
    if (step == 0) prefill_lane(lane, in);
    const std::int64_t begin =
        static_cast<std::int64_t>(step) * tokens_per_step;
    const std::int64_t end =
        std::min<std::int64_t>(gen_tokens_, begin + tokens_per_step);
    decode_range(lane, begin, end, out);
  }

 private:
  struct Lane {
    std::vector<std::unique_ptr<dl::DecoderLayer>> layers;
    std::vector<float> ping, pong, tok, tok_out;
  };

  // Prefill every layer over the prompt and seed the first decode token from
  // the last prompt position, exactly as LlmModel::generate does. Leaves the
  // decode state (KV caches + lane.tok) ready for token 0.
  void prefill_lane(Lane& lane, const float* in) {
    const std::int64_t H = cfg_.hidden;
    const float* src = in;
    float* a = lane.ping.data();
    float* b = lane.pong.data();
    for (auto& layer : lane.layers) {
      layer->prefill(src, prompt_len_, a);
      src = a;
      std::swap(a, b);
    }
    const float* last = src + (prompt_len_ - 1) * H;
    for (std::int64_t d = 0; d < H; ++d) {
      lane.tok[static_cast<std::size_t>(d)] = last[d] * 0.5f;
    }
  }

  // Decodes tokens [begin, end) against the lane's live KV cache, writing
  // row g of `out` for each. The lane carries the autoregressive state
  // between calls, so consecutive ranges compose into one full decode.
  void decode_range(Lane& lane, std::int64_t begin, std::int64_t end,
                    float* out) {
    const std::int64_t H = cfg_.hidden;
    for (std::int64_t g = begin; g < end; ++g) {
      const std::int64_t pos = prompt_len_ + g;
      for (auto& layer : lane.layers) {
        layer->decode_one(lane.tok.data(), pos, lane.tok_out.data());
        std::swap(lane.tok, lane.tok_out);
      }
      for (std::int64_t d = 0; d < H; ++d) {
        out[g * H + d] = lane.tok[static_cast<std::size_t>(d)];
      }
    }
  }

  static double llm_flops(const dl::LlmConfig& cfg, std::int64_t prompt,
                          std::int64_t gen) {
    const double h = static_cast<double>(cfg.hidden);
    const double tokens = static_cast<double>(prompt + gen);
    const double per_layer = 2.0 * tokens * h * h * 4.0 +
                             2.0 * tokens * h * static_cast<double>(cfg.ffn) * 2.0 +
                             4.0 * tokens * tokens * h;
    return per_layer * static_cast<double>(cfg.layers);
  }

  dl::LlmConfig cfg_;
  std::int64_t prompt_len_;
  std::int64_t gen_tokens_;
  std::vector<Lane> lanes_;
};

// --- ResNet-50 --------------------------------------------------------------

class ResNetSession final : public Session {
 public:
  ResNetSession(const std::string& name, const dl::ResNetConfig& cfg,
                int lanes, std::uint64_t seed)
      : Session(name, lanes, cfg.N * 3 * cfg.image * cfg.image, cfg.N * 1000,
                0.0) {
    for (int l = 0; l < this->lanes(); ++l) {
      Xoshiro256 rng(seed);
      models_.push_back(std::make_unique<dl::ResNet50>(cfg, rng));
    }
    set_flops(models_[0]->forward_flops());
    warmup();
  }

  void run(int lane, const float* in, float* out) override {
    models_[static_cast<std::size_t>(lane)]->forward(in, out);
  }

 private:
  std::vector<std::unique_ptr<dl::ResNet50>> models_;
};

}  // namespace

std::shared_ptr<Session> make_mlp_session(const std::string& name,
                                          const MlpServeConfig& cfg, int lanes,
                                          std::uint64_t seed) {
  return std::make_shared<MlpSession>(name, cfg, lanes, seed);
}

std::shared_ptr<Session> make_bert_session(const std::string& name,
                                           dl::BertConfig cfg, int lanes,
                                           std::uint64_t seed) {
  cfg.dropout_p = 0.0f;  // inference: keeps forward RNG-free + deterministic
  return std::make_shared<BertSession>(name, cfg, lanes, seed);
}

std::shared_ptr<Session> make_sparse_fc_session(const std::string& name,
                                                const dl::SparseFcConfig& cfg,
                                                int lanes, std::uint64_t seed) {
  return std::make_shared<SparseFcSession>(name, cfg, lanes, seed);
}

std::shared_ptr<Session> make_llm_session(const std::string& name,
                                          dl::LlmConfig cfg,
                                          std::int64_t prompt_len,
                                          std::int64_t gen_tokens, int lanes,
                                          std::uint64_t seed) {
  auto s = std::make_shared<LlmSession>(name, cfg, prompt_len, gen_tokens,
                                        lanes, seed);
  // Decode traffic is the tail-latency-critical class by default; submitters
  // can still override per request (Request::cls) or per session.
  s->set_default_class(RequestClass::kLatency);
  return s;
}

std::shared_ptr<Session> make_resnet_session(const std::string& name,
                                             const dl::ResNetConfig& cfg,
                                             int lanes, std::uint64_t seed) {
  return std::make_shared<ResNetSession>(name, cfg, lanes, seed);
}

}  // namespace plt::serving
