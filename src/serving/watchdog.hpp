// Watchdog supervision: detects wedged dispatchers and recovers placement.
//
// The scheduler's fault machinery (PR 6) isolates failures that ANNOUNCE
// themselves — an exception, a failed lookup, a passed deadline. A wedged
// dispatcher announces nothing: its thread is alive, its queue fills, and
// every session pinned to its partition silently stops being served. The
// Watchdog closes that gap by sampling each shard's liveness surface
// (RequestScheduler::shard_heartbeat / shard_backlog) every
// PLT_WATCHDOG_USECS microseconds and escalating when a dispatcher's
// heartbeat stops advancing while it still owns backlog:
//
//   tick 1                  -> warn (logged; Stats::warnings)
//   tick quarantine_ticks   -> shard quarantined: submit() reroutes new
//                              admissions to healthy shards; queued work
//                              stays for the restarted dispatcher
//   tick restart_ticks      -> FAILOVER + supervised restart: sessions
//                              pinned to the stalled shard's partitions are
//                              re-pinned (re-warmed via the run_on
//                              machinery) onto healthy partitions — the
//                              first concrete piece of the ROADMAP's
//                              load-aware placer — then the dispatcher
//                              thread is replaced. The stale thread hands
//                              its pending work back through the queue, so
//                              every stranded request still resolves to
//                              exactly one terminal status.
//
// Escalation resets as soon as the heartbeat advances again; a quarantined
// shard is re-admitted (recovery) when its replacement makes progress. A
// parked dispatcher with an EMPTY shard is never flagged — zero backlog is
// the idle signature, not the wedged one.
//
// False positives are safe by construction: restarting a healthy-but-slow
// dispatcher only retires it at the next loop boundary (it re-enqueues its
// pending work and exits — nothing is lost, nothing races), so the period
// only needs to be large against the worst expected batch execution time,
// not provably larger.
//
// External probes (add_probe) extend the same stall detection to event
// loops outside the scheduler — the net::Server publishes loop_epoch()/
// backlog for this — but are WARN-ONLY: the watchdog cannot restart what it
// does not own.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serving/model_registry.hpp"
#include "serving/scheduler.hpp"

namespace plt::serving {

struct WatchdogConfig {
  // PLT_WATCHDOG_USECS: sampling period; 0 disables supervision entirely
  // (the watchdog thread is never started). A wedged dispatcher is detected
  // (warned) within 2x this period.
  std::int64_t period_usecs = 0;

  // PLT_WATCHDOG_QUARANTINE_TICKS: consecutive stalled samples before the
  // shard is quarantined (new admissions rerouted).
  int quarantine_ticks = 2;

  // PLT_WATCHDOG_RESTART_TICKS: consecutive stalled samples before failover
  // + supervised dispatcher restart. Clamped to >= quarantine_ticks.
  int restart_ticks = 3;

  static WatchdogConfig from_env();
};

class Watchdog {
 public:
  // registry may be null: the watchdog then restarts dispatchers but cannot
  // fail sessions over (it has no session table to re-pin). The scheduler
  // and registry must outlive the watchdog.
  explicit Watchdog(RequestScheduler* scheduler,
                    ModelRegistry* registry = nullptr,
                    WatchdogConfig cfg = WatchdogConfig::from_env());
  ~Watchdog();  // implies stop()

  Watchdog(const Watchdog&) = delete;
  Watchdog& operator=(const Watchdog&) = delete;

  // Stops and joins the supervision thread. Idempotent.
  void stop();

  // True while the supervision thread runs (period > 0 and not stopped).
  bool running() const;

  const WatchdogConfig& config() const { return cfg_; }

  // Warn-only supervision of an external event loop (e.g. the net::Server
  // epoll loop): flagged by the same heartbeat-frozen-while-backlogged rule,
  // logged and counted but never restarted. Call before heavy traffic;
  // thread-safe.
  void add_probe(std::string name, std::function<std::uint64_t()> epoch,
                 std::function<std::size_t()> backlog);

  struct Stats {
    std::uint64_t warnings = 0;     // first stalled tick per incident
    std::uint64_t quarantines = 0;  // shards quarantined
    std::uint64_t restarts = 0;     // supervised dispatcher restarts
    std::uint64_t failovers = 0;    // sessions re-pinned off stalled shards
    std::uint64_t recoveries = 0;   // quarantined shards re-admitted
    std::uint64_t probe_warnings = 0;  // external probes flagged
  };
  Stats stats() const;

 private:
  void main();
  // Re-pins every session homed on shard s onto healthy partitions,
  // round-robin, re-warming each on its new sub-team. Returns sessions moved.
  int fail_over(int s);

  WatchdogConfig cfg_;
  RequestScheduler* sched_;
  ModelRegistry* registry_;

  struct Probe {
    std::string name;
    std::function<std::uint64_t()> epoch;
    std::function<std::size_t()> backlog;
    std::uint64_t last = 0;
    bool stalled = false;  // edge-triggered warn
  };
  std::vector<Probe> probes_;  // guarded by mu_

  std::atomic<std::uint64_t> warnings_{0};
  std::atomic<std::uint64_t> quarantines_{0};
  std::atomic<std::uint64_t> restarts_{0};
  std::atomic<std::uint64_t> failovers_{0};
  std::atomic<std::uint64_t> recoveries_{0};
  std::atomic<std::uint64_t> probe_warnings_{0};

  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;  // guarded by mu_
  std::atomic<bool> running_{false};
  std::thread thread_;
};

}  // namespace plt::serving
