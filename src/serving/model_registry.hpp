// Registry of live serving sessions, keyed by model name. The scheduler and
// the network front-end resolve submit-by-name through it; benches and the
// demos iterate it to drive mixed traffic.
//
// Hot reload. The session table lives in an immutable Snapshot published
// through an atomic shared_ptr exchange (the same swap shape as the
// scheduler's pre-planned cache): readers load the pointer once and walk a
// table that can never change under them — no mutex on the lookup hot path —
// while writers (add/reload) build a fresh Snapshot under a writer mutex and
// publish it in one atomic store. reload(builder) replaces the whole table
// under live traffic with ZERO dropped requests: in-flight requests hold
// shared_ptr<Session> references into the old snapshot and drain against it,
// new arrivals resolve against the new one, and the old sessions free when
// their last in-flight batch completes.
//
// Hot-path rule: resolve MANY names against ONE snapshot() — take the
// pointer once per batch/drain, not once per request (the network server's
// read loop does exactly this). find()/lookup() are one-shot conveniences
// that grab a fresh snapshot internally.
#pragma once

#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.hpp"
#include "serving/session.hpp"

namespace plt::serving {

class ModelRegistry {
 public:
  // Immutable published session table. version increments on every publish
  // (add or reload), so observers can tell snapshots apart.
  struct Snapshot {
    std::unordered_map<std::string, std::shared_ptr<Session>> by_name;
    std::vector<std::shared_ptr<Session>> ordered;  // registration order
    std::uint64_t version = 0;
  };

  // Builds the successor session table from the current one. Returning the
  // full table (not a delta) keeps reload transactional: the swap publishes
  // exactly what the builder returned, nothing in between.
  using SnapshotBuilder = std::function<std::vector<std::shared_ptr<Session>>(
      const std::vector<std::shared_ptr<Session>>& current)>;

  // Registers a session under session->name(); fails on duplicates (two
  // models with one name would make batch grouping ambiguous). Registration
  // pins the session to a pool partition (explicit `partition`, else
  // round-robin across the partitions) and first-touch-warms its lazily
  // built scratch/plans on that partition's sub-team, so the sharded
  // scheduler serves it where its memory lives. On a single-partition pool
  // (or a non-pool runtime) pinning is a no-op beyond recording partition 0.
  void add(std::shared_ptr<Session> session, int partition = -1);

  // Atomically replaces the session table with builder(current). Sessions
  // reused from `current` keep their pins and health; NEW sessions are
  // pinned round-robin and first-touch-warmed BEFORE the swap, so the first
  // request a fresh model sees is already on cached plans. Throws
  // std::invalid_argument (table unchanged) on null sessions or duplicate
  // names. Writers serialize; readers never block.
  void reload(const SnapshotBuilder& builder);

  // Loads the current table: one atomic shared_ptr load, no mutex. The
  // returned snapshot is immutable and safe to resolve against for as long
  // as the caller holds it (in-flight work drains against old snapshots).
  std::shared_ptr<const Snapshot> snapshot() const;

  // Number of times a new table has been published (add() or reload()).
  std::uint64_t version() const { return snapshot()->version; }

  // nullptr when the name is unknown.
  std::shared_ptr<Session> find(const std::string& name) const;

  // Status-carrying resolve: kInvalidArgument on an unknown name,
  // kUnavailable when the registry_lookup fault site fires. A quarantined
  // session still resolves — callers decide whether to reject on health
  // (the scheduler does, at submit).
  StatusOr<std::shared_ptr<Session>> lookup(const std::string& name) const;

  // Marks the named session unhealthy (see Session health API);
  // kInvalidArgument on an unknown name.
  Status quarantine(const std::string& name, const std::string& reason);

  // Sets the named session's default priority class (applied to requests
  // submitted kSessionDefault); kInvalidArgument on an unknown name or on
  // kSessionDefault itself (a default cannot defer to itself).
  Status set_default_class(const std::string& name, RequestClass cls);

  // Registration-ordered snapshot of every session.
  std::vector<std::shared_ptr<Session>> sessions() const;

  std::size_t size() const;
  std::size_t healthy_count() const;

  // Process-wide registry (a serving host typically wants exactly one);
  // scoped registries remain constructible for tests.
  static ModelRegistry& instance();

  ModelRegistry();

 private:
  // Publishes `next` as the current snapshot (stamps the version). Caller
  // holds mu_.
  void publish_locked(std::shared_ptr<Snapshot> next);

  mutable std::mutex mu_;  // serializes WRITERS only (add/reload)
  // Readers use std::atomic_load on this shared_ptr (C++17's atomic
  // shared_ptr free functions); writers std::atomic_store a fresh Snapshot.
  std::shared_ptr<const Snapshot> snap_;
  std::uint64_t next_version_ = 1;
  int next_partition_ = 0;  // round-robin cursor for unpinned registrations
};

}  // namespace plt::serving
