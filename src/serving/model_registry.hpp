// Registry of live serving sessions, keyed by model name. The scheduler
// resolves submit-by-name through it; benches and the demo iterate it to
// drive mixed traffic. Thread-safe (sessions register at startup but lookups
// run concurrently with serving).
#pragma once

#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.hpp"
#include "serving/session.hpp"

namespace plt::serving {

class ModelRegistry {
 public:
  // Registers a session under session->name(); fails on duplicates (two
  // models with one name would make batch grouping ambiguous). Registration
  // pins the session to a pool partition (explicit `partition`, else
  // round-robin across the partitions) and first-touch-warms its lazily
  // built scratch/plans on that partition's sub-team, so the sharded
  // scheduler serves it where its memory lives. On a single-partition pool
  // (or a non-pool runtime) pinning is a no-op beyond recording partition 0.
  void add(std::shared_ptr<Session> session, int partition = -1);

  // nullptr when the name is unknown.
  std::shared_ptr<Session> find(const std::string& name) const;

  // Status-carrying resolve: kInvalidArgument on an unknown name,
  // kUnavailable when the registry_lookup fault site fires. A quarantined
  // session still resolves — callers decide whether to reject on health
  // (the scheduler does, at submit).
  StatusOr<std::shared_ptr<Session>> lookup(const std::string& name) const;

  // Marks the named session unhealthy (see Session health API);
  // kInvalidArgument on an unknown name.
  Status quarantine(const std::string& name, const std::string& reason);

  // Sets the named session's default priority class (applied to requests
  // submitted kSessionDefault); kInvalidArgument on an unknown name or on
  // kSessionDefault itself (a default cannot defer to itself).
  Status set_default_class(const std::string& name, RequestClass cls);

  // Registration-ordered snapshot of every session.
  std::vector<std::shared_ptr<Session>> sessions() const;

  std::size_t size() const;
  std::size_t healthy_count() const;

  // Process-wide registry (a serving host typically wants exactly one);
  // scoped registries remain constructible for tests.
  static ModelRegistry& instance();

 private:
  mutable std::mutex mu_;
  std::unordered_map<std::string, std::shared_ptr<Session>> by_name_;
  std::vector<std::shared_ptr<Session>> ordered_;
  int next_partition_ = 0;  // round-robin cursor for unpinned registrations
};

}  // namespace plt::serving
