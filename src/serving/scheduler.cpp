#include "serving/scheduler.hpp"

#include <algorithm>
#include <limits>

#include "common/check.hpp"
#include "common/env.hpp"
#include "common/fault.hpp"
#include "common/threading.hpp"
#include "common/timer.hpp"

namespace plt::serving {

using steady_clock = std::chrono::steady_clock;

SchedulerConfig SchedulerConfig::from_env() {
  const SchedulerConfig def;
  SchedulerConfig c;
  c.max_batch = static_cast<int>(
      common::env_int("PLT_SERVE_MAX_BATCH", def.max_batch, 1, 4096));
  c.batch_usecs =
      common::env_int("PLT_SERVE_BATCH_USECS", def.batch_usecs, 0, 60000000);
  c.queue_capacity = static_cast<std::size_t>(common::env_int(
      "PLT_SERVE_QUEUE_CAP", static_cast<std::int64_t>(def.queue_capacity), 2,
      1 << 20));
  c.shards = static_cast<int>(common::env_int("PLT_SERVE_SHARDS", 0, 0, 64));
  c.steal = common::env_flag("PLT_SERVE_STEAL", def.steal);
  c.default_deadline_usecs = common::env_int(
      "PLT_SERVE_DEADLINE_USECS", def.default_deadline_usecs, 0, 60000000);
  c.submit_timeout_usecs =
      common::env_int("PLT_SERVE_SUBMIT_TIMEOUT_USECS",
                      def.submit_timeout_usecs, 0, 60000000);
  c.quarantine = common::env_flag("PLT_SERVE_QUARANTINE", def.quarantine);
  c.priority = common::env_flag("PLT_SERVE_PRIORITY", def.priority);
  c.decode_step_tokens = static_cast<int>(common::env_int(
      "PLT_SERVE_DECODE_STEP_TOKENS", def.decode_step_tokens, 0, 4096));
  c.target_delay_usecs = common::env_int(
      "PLT_SERVE_TARGET_DELAY_USECS", def.target_delay_usecs, 0, 60000000);
  return c;
}

void RequestHandle::wait() const {
  if (st_ == nullptr) return;
  if (st_->done.load(std::memory_order_acquire)) return;
  // Straight to the condvar: a request spans at least one model forward, so
  // spinning here only steals cycles from the team doing the work.
  RequestScheduler* owner = st_->owner;
  std::unique_lock<std::mutex> lk(owner->done_mu_);
  owner->done_cv_.wait(
      lk, [&] { return st_->done.load(std::memory_order_acquire); });
}

RequestScheduler::RequestScheduler(SchedulerConfig cfg) : cfg_(cfg) {
  PLT_CHECK(cfg_.max_batch >= 1, "serving: max_batch must be >= 1");
  int nshards = cfg_.shards;
  if (nshards <= 0) {
    // Auto: mirror the pool's partitioning so each dispatcher owns one
    // sub-team; non-pool runtimes have no partitions to mirror.
    nshards = pool_partitions();
  }
  nshards = std::max(1, nshards);
  shards_.reserve(static_cast<std::size_t>(nshards));
  for (int s = 0; s < nshards; ++s) {
    shards_.push_back(std::make_unique<Shard>(cfg_.queue_capacity));
  }
  for (int s = 0; s < nshards; ++s) {
    shards_[static_cast<std::size_t>(s)]->dispatcher =
        std::thread([this, s] { dispatcher_main(s, 0); });
  }
}

RequestScheduler::~RequestScheduler() { shutdown(); }

void RequestScheduler::wake_shard(Shard& shard) {
  {
    std::lock_guard<std::mutex> g(shard.wake_mu);
  }
  shard.wake_cv.notify_all();
}

int RequestScheduler::shard_of(Session* session) {
  const int nshards = shard_count();
  if (nshards == 1) return 0;  // single-queue layout: no pinning involved
  int p = session->partition();
  if (p < 0) {
    // Unpinned session on a sharded scheduler: pin it round-robin now (no
    // warmup — registration is where first-touch placement happens). The
    // round-robin domain is the POOL PARTITION count, not the shard count:
    // home batches execute on the session's partition, so pinning over
    // fewer shards than partitions would strand the extra sub-teams.
    const int domain =
        runtime() == Runtime::kPool ? std::max(1, pool_partitions()) : nshards;
    p = session->pin_partition_if_unpinned(
        rr_pin_.fetch_add(1, std::memory_order_relaxed) % domain);
  }
  return p % nshards;
}

void RequestScheduler::complete_terminal(detail::RequestState& r,
                                         Status status) {
  const auto now = steady_clock::now();
  r.latency_us =
      std::chrono::duration<double, std::micro>(now - r.t_submit).count();
  r.status = std::move(status);
  const StatusCode code = r.status.code();
  switch (code) {
    case StatusCode::kDeadlineExceeded:
      expired_.fetch_add(1, std::memory_order_relaxed);
      break;
    case StatusCode::kResourceExhausted:
      shed_.fetch_add(1, std::memory_order_relaxed);
      break;
    case StatusCode::kUnavailable:
      rejected_.fetch_add(1, std::memory_order_relaxed);
      break;
    default:
      failed_.fetch_add(1, std::memory_order_relaxed);
      break;
  }
  {
    std::lock_guard<std::mutex> g(stats_mu_);
    ModelStats& st = stats_[r.session->name()];
    if (st.model.empty()) st.model = r.session->name();
    switch (code) {
      case StatusCode::kDeadlineExceeded: st.expired += 1; break;
      case StatusCode::kResourceExhausted: st.shed += 1; break;
      case StatusCode::kUnavailable: st.rejected += 1; break;
      default: st.failed += 1; break;
    }
  }
  r.done.store(true, std::memory_order_release);
  {
    std::lock_guard<std::mutex> g(done_mu_);
  }
  done_cv_.notify_all();
  if (r.on_done) r.on_done(r.status);
}

RequestHandle RequestScheduler::submit(const std::shared_ptr<Session>& session,
                                       const Request& req) {
  PLT_CHECK(session != nullptr, "serving: submit with null session");
  submitters_.fetch_add(1, std::memory_order_seq_cst);
  struct SubmitterGuard {
    std::atomic<int>& n;
    ~SubmitterGuard() { n.fetch_sub(1, std::memory_order_seq_cst); }
  } submitter_guard{submitters_};
  submitted_.fetch_add(1, std::memory_order_relaxed);

  auto st = std::make_shared<detail::RequestState>();
  st->session = session;
  st->in = req.in;
  st->out = req.out;
  st->on_done = req.on_done;
  st->owner = this;
  st->t_submit = steady_clock::now();
  st->cls = req.cls == RequestClass::kSessionDefault ? session->default_class()
                                                     : req.cls;
  PLT_CHECK(st->cls == RequestClass::kLatency ||
                st->cls == RequestClass::kThroughput,
            "serving: request class must resolve to latency or throughput");
  const std::int64_t ddl = req.deadline_usecs >= 0
                               ? req.deadline_usecs
                               : cfg_.default_deadline_usecs;
  if (ddl > 0) {
    st->has_deadline = true;
    st->deadline = st->t_submit + std::chrono::microseconds(ddl);
  }

  if (stop_.load(std::memory_order_seq_cst)) {
    complete_terminal(*st, Status::Unavailable("scheduler shut down"));
    return RequestHandle(std::move(st));  // admission closed
  }
  if (cfg_.quarantine && !session->healthy()) {
    complete_terminal(*st, Status::Unavailable("session quarantined: " +
                                               session->health_reason()));
    return RequestHandle(std::move(st));
  }

  st->admitted = true;
  int s = shard_of(session.get());
  const int nshards = shard_count();
  if (shards_[static_cast<std::size_t>(s)]->quarantined.load(
          std::memory_order_acquire)) {
    // Watchdog quarantine: route this admission to the next healthy shard.
    // It executes there under the established thief rules (session exec
    // mutex + the thief's partition), so only locality is sacrificed — work
    // already queued on the quarantined shard is drained by its restarted
    // dispatcher, never dropped by the flag.
    for (int k = 1; k < nshards; ++k) {
      const int alt = (s + k) % nshards;
      if (!shards_[static_cast<std::size_t>(alt)]->quarantined.load(
              std::memory_order_acquire)) {
        s = alt;
        break;
      }
    }
  }
  Shard& shard = *shards_[static_cast<std::size_t>(s)];
  // Decode granularity, fixed for the request's lifetime. Normally the
  // scheduler's configured window — so every request of one session agrees
  // on steps_total and a pending group stays step-homogeneous — except
  // under brownout, where new steppable requests get a halved window:
  // smaller decode regions mean more frequent preemption points for
  // latency-class work while the shard is overloaded.
  int step_tokens = cfg_.decode_step_tokens;
  if (step_tokens > 1 &&
      shard.overload_level.load(std::memory_order_relaxed) >= 1) {
    step_tokens /= 2;
  }
  st->step_tokens = step_tokens;
  st->steps_total = std::max(1, session->step_count(step_tokens));
  while (true) {
    // The queue_push fault site simulates a full queue for one attempt
    // (kind is irrelevant here — any fire means "no space this round").
    const bool faux_full =
        common::fault::should_inject(common::fault::Site::kQueuePush) !=
        common::fault::Kind::kNone;
    if (!faux_full && shard.queue.try_push(st)) break;
    // Full queue = back-pressure. Load shedding drops the NEWEST work first:
    // this request (not anything already queued) is shed when its own
    // deadline has already passed, when the configured submit timeout
    // elapses, or when admission closes under it. Otherwise make sure the
    // dispatcher is draining, then let it run.
    if (stop_.load(std::memory_order_seq_cst)) {
      st->admitted = false;
      complete_terminal(*st, Status::Unavailable("scheduler shut down"));
      return RequestHandle(std::move(st));
    }
    const auto now = steady_clock::now();
    if (st->has_deadline && now >= st->deadline) {
      st->admitted = false;
      complete_terminal(*st, Status::ResourceExhausted(
                                 "admission queue saturated past deadline"));
      return RequestHandle(std::move(st));
    }
    if (cfg_.submit_timeout_usecs > 0 &&
        now - st->t_submit >=
            std::chrono::microseconds(cfg_.submit_timeout_usecs)) {
      st->admitted = false;
      complete_terminal(
          *st, Status::ResourceExhausted("admission queue full past submit "
                                         "timeout"));
      return RequestHandle(std::move(st));
    }
    wake_shard(shard);
    std::this_thread::yield();
  }
  // Fence pairs with the dispatcher's fence after it sets parked: either we
  // observe parked and notify, or the dispatcher's predicate observes our
  // push. Never both missed (no lost wakeup).
  std::atomic_thread_fence(std::memory_order_seq_cst);
  if (shard.parked.load(std::memory_order_relaxed)) {
    wake_shard(shard);
  } else if (cfg_.steal && nshards > 1) {
    // Home dispatcher is busy (mid-batch): nudge one IDLE-parked sibling to
    // come steal this backlog (a deadline-parked sibling has its own
    // batches and would ignore the hint). Push-side nudging keeps idle
    // shards fully asleep — no periodic steal polling — at the same steal
    // latency.
    for (int k = 1; k < nshards; ++k) {
      Shard& sib = *shards_[static_cast<std::size_t>((s + k) % nshards)];
      if (sib.idle_parked.load(std::memory_order_relaxed)) {
        sib.steal_hint.store(true, std::memory_order_release);
        wake_shard(sib);
        break;
      }
    }
  }

  return RequestHandle(std::move(st));
}

void RequestScheduler::execute_batch(
    int s, Session* session,
    std::vector<std::shared_ptr<detail::RequestState>> reqs,
    std::size_t pending_highwater) {
  const int batch = static_cast<int>(reqs.size());
  std::vector<detail::RequestState*> rp(reqs.size());
  for (std::size_t i = 0; i < reqs.size(); ++i) rp[i] = reqs[i].get();

  WallTimer exec_timer;
  // One region for the whole batch: team member t serves requests
  // t, t + nthreads, ... on their own lanes; nests inside a request run as
  // serial walks (nested-region rule), so this is the only dispatch cost.
  // The session exec mutex keeps a stolen batch from racing the home
  // dispatcher on the same lanes; it is uncontended in steady state.
  {
    std::lock_guard<std::mutex> lane_guard(session->exec_mutex());
    // Per-request exception firewall: a poisoned request fails ITS OWN
    // handle (status_from_exception) while its batch-mates complete
    // normally — the exception never reaches the region boundary, so the
    // pool-level firewall (which would fail the whole region) stays a
    // backstop for bugs in this very loop.
    const auto body = [&](int tid, int nthreads) {
      for (int i = tid; i < batch; i += nthreads) {
        try {
          session->run(i, rp[i]->in, rp[i]->out);
        } catch (const std::exception& e) {
          rp[i]->status = status_from_exception(e);
        } catch (...) {
          rp[i]->status = Status::Internal("unknown exception");
        }
      }
    };
    if (shard_count() > 1) {
      // Sharded layout: a home batch runs on the SESSION's partition — the
      // sub-team whose node first-touched its weights/scratch — even when
      // the shard count differs from the partition count. A stolen batch
      // (executing on a shard other than the session's home shard) runs on
      // the thief's partition instead: the home sub-team is busy, and extra
      // concurrency is the point of the steal. run_on() wraps either index
      // modulo the partition count.
      const int home = session->partition();
      const bool home_batch = home >= 0 && home % shard_count() == s;
      parallel_region_on(home_batch ? home : s, body);
    } else {
      parallel_region(body);
    }
  }
  const double exec_us = exec_timer.micros();

  const auto now = steady_clock::now();
  double sum_lat = 0.0, max_lat = 0.0;
  std::uint64_t n_ok = 0, n_failed = 0;
  std::string first_failure;
  for (auto& r : reqs) {
    const double lat =
        std::chrono::duration<double, std::micro>(now - r->t_submit).count();
    r->latency_us = lat;  // before the release store: visible once done
    if (r->status.ok()) {
      ++n_ok;
      sum_lat += lat;
      max_lat = std::max(max_lat, lat);
    } else {
      ++n_failed;
      if (first_failure.empty()) first_failure = r->status.to_string();
    }
  }
  if (n_failed > 0 && cfg_.quarantine) session->mark_unhealthy(first_failure);
  completed_.fetch_add(n_ok, std::memory_order_relaxed);
  failed_.fetch_add(n_failed, std::memory_order_relaxed);

  // Stats before completion: a client that has waited on all its handles
  // must see every one of them counted. Latency aggregates cover OK requests
  // only, so chaos runs stay comparable to fault-free ones.
  {
    std::lock_guard<std::mutex> g(stats_mu_);
    ModelStats& st = stats_[session->name()];
    if (st.model.empty()) st.model = session->name();
    st.requests += n_ok;
    st.failed += n_failed;
    st.batches += 1;
    st.batched_requests_sum += static_cast<std::uint64_t>(batch);
    st.sum_latency_us += sum_lat;
    st.max_latency_us = std::max(st.max_latency_us, max_lat);
    st.sum_exec_us += exec_us;
    st.pending_highwater = std::max(st.pending_highwater, pending_highwater);
  }

  for (auto& r : reqs) r->done.store(true, std::memory_order_release);
  {
    std::lock_guard<std::mutex> g(done_mu_);
  }
  done_cv_.notify_all();
  for (auto& r : reqs) {
    if (r->on_done) r->on_done(r->status);
  }
}

std::vector<std::shared_ptr<detail::RequestState>>
RequestScheduler::execute_steps(
    int s, Session* session,
    std::vector<std::shared_ptr<detail::RequestState>> reqs,
    std::size_t pending_highwater) {
  const int batch = static_cast<int>(reqs.size());
  std::vector<detail::RequestState*> rp(reqs.size());
  for (std::size_t i = 0; i < reqs.size(); ++i) rp[i] = reqs[i].get();

  WallTimer exec_timer;
  // One region per token window: team member t advances requests
  // t, t + nthreads, ... by ONE step, each on the lane it holds across its
  // whole lifetime (the lane's KV cache is the request's decode state). Same
  // exec-mutex and per-request firewall rules as a monolithic batch.
  {
    std::lock_guard<std::mutex> lane_guard(session->exec_mutex());
    const auto body = [&](int tid, int nthreads) {
      for (int i = tid; i < batch; i += nthreads) {
        try {
          session->run_step(rp[i]->lane, rp[i]->in, rp[i]->out, rp[i]->step,
                            rp[i]->step_tokens);
        } catch (const std::exception& e) {
          rp[i]->status = status_from_exception(e);
        } catch (...) {
          rp[i]->status = Status::Internal("unknown exception");
        }
      }
    };
    if (shard_count() > 1) {
      const int home = session->partition();
      const bool home_batch = home >= 0 && home % shard_count() == s;
      parallel_region_on(home_batch ? home : s, body);
    } else {
      parallel_region(body);
    }
  }
  const double exec_us = exec_timer.micros();

  // Triage: a failed step resolves the request (its lane is released, batch-
  // mates keep decoding); a request whose last step just ran completes OK;
  // everything else survives to be re-admitted at the front of its group.
  const auto now = steady_clock::now();
  std::vector<std::shared_ptr<detail::RequestState>> survivors;
  std::vector<std::shared_ptr<detail::RequestState>> terminal;
  survivors.reserve(reqs.size());
  double sum_lat = 0.0, max_lat = 0.0;
  std::uint64_t n_ok = 0, n_failed = 0;
  std::string first_failure;
  for (auto& r : reqs) {
    if (!r->status.ok()) {
      ++n_failed;
      if (first_failure.empty()) first_failure = r->status.to_string();
    } else if (r->step + 1 < r->steps_total) {
      ++r->step;
      survivors.push_back(std::move(r));
      continue;
    } else {
      ++n_ok;
    }
    // Terminal either way: resolve latency, free the lane for waiting
    // step-0 requests (lane release is what re-opens admission under
    // starvation), defer the done store until stats are recorded.
    const double lat =
        std::chrono::duration<double, std::micro>(now - r->t_submit).count();
    r->latency_us = lat;
    if (r->status.ok()) {
      sum_lat += lat;
      max_lat = std::max(max_lat, lat);
    }
    if (r->lane >= 0) {
      session->release_lane(r->lane);
      r->lane = -1;
    }
    terminal.push_back(std::move(r));
  }
  if (n_failed > 0 && cfg_.quarantine) session->mark_unhealthy(first_failure);
  completed_.fetch_add(n_ok, std::memory_order_relaxed);
  failed_.fetch_add(n_failed, std::memory_order_relaxed);

  {
    std::lock_guard<std::mutex> g(stats_mu_);
    ModelStats& st = stats_[session->name()];
    if (st.model.empty()) st.model = session->name();
    st.requests += n_ok;
    st.failed += n_failed;
    st.decode_steps += 1;
    st.decode_step_requests_sum += static_cast<std::uint64_t>(batch);
    st.sum_latency_us += sum_lat;
    st.max_latency_us = std::max(st.max_latency_us, max_lat);
    st.sum_exec_us += exec_us;
    st.pending_highwater = std::max(st.pending_highwater, pending_highwater);
  }

  if (!terminal.empty()) {
    for (auto& r : terminal) r->done.store(true, std::memory_order_release);
    {
      std::lock_guard<std::mutex> g(done_mu_);
    }
    done_cv_.notify_all();
    for (auto& r : terminal) {
      if (r->on_done) r->on_done(r->status);
    }
  }
  return survivors;
}

void RequestScheduler::dispatcher_main(int s, std::uint64_t my_gen) {
  Shard& shard = *shards_[static_cast<std::size_t>(s)];
  const int nshards = shard_count();
  const bool can_steal = cfg_.steal && nshards > 1;
  const auto stale = [&] {
    return shard.generation.load(std::memory_order_acquire) != my_gen;
  };
  if (runtime() == Runtime::kPool && nshards > 1) {
    // Keep this dispatcher's submit/wait loops resident on the node whose
    // sub-team executes its batches.
    ThreadPool& pool = ThreadPool::instance();
    pool.pin_caller_to_partition(s % pool.partitions());
  }

  // One pending map per class: [0] latency, [1] throughput. With priority
  // off, everything lands in [0] and the layout reduces to the class-blind
  // pre-priority scheduler.
  std::unordered_map<Session*, Pending> pending[2];
  std::size_t n_pending = 0;
  const int nclasses = cfg_.priority ? 2 : 1;

  const auto effective_batch = [&](Session* sess) {
    return std::min(cfg_.max_batch, sess->lanes());
  };
  const auto class_of = [&](const detail::RequestState& r) {
    return cfg_.priority ? static_cast<std::size_t>(r.cls) : std::size_t{0};
  };
  // Flushes ONE execution window (up to effective_batch requests) from the
  // front of group p: one monolithic batch, or one token-window step region
  // for a steppable session — whose unfinished survivors are pushed back to
  // the FRONT so they keep their slots at the next token boundary. Returns
  // false only when nothing moved (every lane held by in-flight requests
  // elsewhere and no request expired).
  const auto flush = [&](Pending& p) -> bool {
    if (p.reqs.empty()) return false;
    Session* sess = p.reqs.front()->session.get();
    const std::size_t hw = p.highwater;
    const auto now = steady_clock::now();
    std::vector<std::shared_ptr<detail::RequestState>> take;
    bool progressed = false;
    while (static_cast<int>(take.size()) < effective_batch(sess) &&
           !p.reqs.empty()) {
      auto r = std::move(p.reqs.front());
      p.reqs.pop_front();
      --n_pending;
      // Expire due requests at the last gate before execution: a request
      // whose deadline passed while batched completes kDeadlineExceeded
      // without running, its output buffer untouched. Only never-executed
      // requests expire — one past step 0 has partial output and a live
      // lane, and always runs to completion.
      if (r->step == 0 && r->has_deadline && now >= r->deadline) {
        complete_terminal(
            *r, Status::DeadlineExceeded("deadline passed while queued"));
        progressed = true;
        continue;
      }
      if (r->steps_total > 1 && r->lane < 0) {
        r->lane = sess->acquire_lane();
        if (r->lane < 0) {
          // Lane starvation: every lane is held by an in-flight request
          // (possibly on another shard, via stealing). Put the request back
          // and retry once a completion frees a lane.
          p.reqs.push_front(std::move(r));
          ++n_pending;
          break;
        }
      }
      take.push_back(std::move(r));
    }
    if (!p.reqs.empty()) p.oldest = p.reqs.front()->t_submit;
    if (take.empty()) return progressed;
    if (take.front()->steps_total > 1) {
      auto survivors = execute_steps(s, sess, std::move(take), hw);
      for (auto it = survivors.rbegin(); it != survivors.rend(); ++it) {
        p.reqs.push_front(std::move(*it));
        ++n_pending;
      }
      if (!p.reqs.empty()) p.oldest = p.reqs.front()->t_submit;
    } else {
      execute_batch(s, sess, std::move(take), hw);
    }
    return true;
  };
  const auto admit = [&](std::shared_ptr<detail::RequestState> r) {
    // Only never-executed requests can expire here: a stepped request handed
    // back through the queue by a replaced dispatcher is past step 0, holds
    // a live lane and always runs to completion.
    if (r->step == 0 && r->has_deadline && steady_clock::now() >= r->deadline) {
      complete_terminal(
          *r, Status::DeadlineExceeded("deadline passed while queued"));
      return;
    }
    Session* sess = r->session.get();
    Pending& p = pending[class_of(*r)][sess];
    if (p.reqs.empty()) p.oldest = r->t_submit;
    p.reqs.push_back(std::move(r));
    ++n_pending;
    p.highwater = std::max(p.highwater, p.reqs.size());
  };
  const auto drain = [&] {
    std::shared_ptr<detail::RequestState> r;
    while (shard.queue.try_pop(r)) admit(std::move(r));
  };

  // ---- Delay-gradient overload controller (cfg_.target_delay_usecs > 0).
  // CoDel-shaped: track the MINIMUM head-of-line sojourn of the standing
  // backlog over a controller interval. If even the minimum stayed above the
  // target, the backlog is not a transient burst — escalate one level
  // (normal -> brownout -> gradient shed); once it dips below, de-escalate.
  // Using the interval minimum (not the mean) is what makes bursts free:
  // a queue that fully drains at any point in the interval resets to 0.
  const bool adaptive = cfg_.target_delay_usecs > 0;
  constexpr std::int64_t kNoSample = std::numeric_limits<std::int64_t>::max();
  const auto interval = std::chrono::microseconds(
      adaptive ? std::max<std::int64_t>(4 * cfg_.target_delay_usecs,
                                        2 * cfg_.batch_usecs + 100)
               : 0);
  auto interval_end = steady_clock::now() + interval;
  std::int64_t min_sojourn_us = kNoSample;
  int level = 0;

  // Level-2 relief valve: shed half of the throughput-class queued backlog,
  // earliest-to-miss-deadline first (that work would expire unexecuted
  // anyway — shedding it now frees capacity for requests that can still make
  // their deadlines), deadline-less requests newest-first after. Latency-
  // class and in-flight stepped requests are never gradient-shed.
  const auto gradient_shed = [&] {
    auto& shed_class = pending[nclasses - 1];
    std::vector<std::shared_ptr<detail::RequestState>*> cand;
    for (auto& entry : shed_class) {
      for (auto& r : entry.second.reqs) {
        if (r->step == 0) cand.push_back(&r);
      }
    }
    if (cand.empty()) return;
    const std::size_t n_shed = std::max<std::size_t>(1, cand.size() / 2);
    std::sort(cand.begin(), cand.end(),
              [](const std::shared_ptr<detail::RequestState>* a,
                 const std::shared_ptr<detail::RequestState>* b) {
                const detail::RequestState& ra = **a;
                const detail::RequestState& rb = **b;
                if (ra.has_deadline != rb.has_deadline) return ra.has_deadline;
                if (ra.has_deadline) return ra.deadline < rb.deadline;
                return ra.t_submit > rb.t_submit;
              });
    for (std::size_t i = 0; i < n_shed; ++i) {
      gradient_sheds_.fetch_add(1, std::memory_order_relaxed);
      complete_terminal(
          **cand[i],
          Status::ResourceExhausted("overload: delay-gradient shed"));
      cand[i]->reset();  // tombstone; compacted below
    }
    for (auto& entry : shed_class) {
      auto& q = entry.second.reqs;
      q.erase(std::remove_if(
                  q.begin(), q.end(),
                  [](const std::shared_ptr<detail::RequestState>& r) {
                    return r == nullptr;
                  }),
              q.end());
      if (!q.empty()) entry.second.oldest = q.front()->t_submit;
    }
    n_pending -= n_shed;
  };
  const auto controller_tick = [&] {
    const auto now = steady_clock::now();
    if (n_pending == 0 && shard.queue.size_approx() == 0) {
      min_sojourn_us = 0;  // backlog fully drained inside this interval
    } else {
      auto oldest = steady_clock::time_point::max();
      for (auto& per_class : pending) {
        for (auto& entry : per_class) {
          if (!entry.second.reqs.empty()) {
            oldest = std::min(oldest, entry.second.oldest);
          }
        }
      }
      if (oldest != steady_clock::time_point::max()) {
        min_sojourn_us = std::min(
            min_sojourn_us,
            std::chrono::duration_cast<std::chrono::microseconds>(now - oldest)
                .count());
      }
    }
    if (now < interval_end) return;
    const bool over =
        min_sojourn_us != kNoSample && min_sojourn_us > cfg_.target_delay_usecs;
    if (over) {
      if (level == 0) brownouts_.fetch_add(1, std::memory_order_relaxed);
      level = std::min(2, level + 1);
      if (level == 2) gradient_shed();
    } else {
      level = std::max(0, level - 1);
    }
    shard.overload_level.store(level, std::memory_order_relaxed);
    min_sojourn_us = kNoSample;
    interval_end = now + interval;
  };

  // Flushes ready groups in (class, earliest-request-deadline, age) order
  // until none remain. The admission queue is re-drained after EVERY window:
  // that is both the priority overtake point (fresh latency work preempts a
  // formed throughput batch between regions) and the continuous-batching
  // join point (a mid-stream decode submit enters its group before the next
  // token window). Groups whose flush cannot progress (lane-starved) are
  // set aside so their siblings still flush; a completion clears the set.
  const auto flush_ready = [&] {
    std::vector<Session*> starved;
    const auto is_starved = [&](Session* sess) {
      return std::find(starved.begin(), starved.end(), sess) != starved.end();
    };
    while (true) {
      const auto now = steady_clock::now();
      Pending* best = nullptr;
      Session* best_sess = nullptr;
      steady_clock::time_point best_ddl{};
      steady_clock::time_point best_old{};
      // `best == nullptr` in the class-loop condition: any ready group in a
      // lower (more urgent) class preempts the entire next class.
      for (int ci = 0; ci < nclasses && best == nullptr; ++ci) {
        if (level >= 1 && nclasses == 2 && ci == 1) {
          // Brownout: throughput-class batches yield whenever ANY latency
          // work is pending — even a group that has not hit its batch
          // deadline yet. The latency group becomes ready within
          // batch_usecs, so the yield costs throughput at most one batch
          // window per round while the shard is overloaded.
          bool latency_waiting = false;
          for (auto& entry : pending[0]) {
            if (!entry.second.reqs.empty()) {
              latency_waiting = true;
              break;
            }
          }
          if (latency_waiting) break;
        }
        for (auto& entry : pending[ci]) {
          Pending& p = entry.second;
          if (p.reqs.empty() || is_starved(entry.first)) continue;
          const bool ready =
              p.reqs.front()->step > 0 ||
              static_cast<int>(p.reqs.size()) >= effective_batch(entry.first) ||
              now >= p.oldest + std::chrono::microseconds(cfg_.batch_usecs);
          if (!ready) continue;
          auto ddl = steady_clock::time_point::max();
          for (const auto& r : p.reqs) {
            if (r->has_deadline) ddl = std::min(ddl, r->deadline);
          }
          if (best == nullptr || ddl < best_ddl ||
              (ddl == best_ddl && p.oldest < best_old)) {
            best = &p;
            best_sess = entry.first;
            best_ddl = ddl;
            best_old = p.oldest;
          }
        }
      }
      if (best == nullptr) break;
      if (flush(*best)) {
        starved.clear();  // a completion may have freed lanes
        drain();
      } else {
        starved.push_back(best_sess);
      }
      // Tick at every dequeue opportunity (the CoDel sampling point), not
      // just once per dispatcher-loop iteration: a saturating burst is
      // drained entirely inside this loop, so an outer-loop-only tick would
      // sample the queue before the backlog forms and after it is gone —
      // and never observe the standing delay in between. `best` is
      // recomputed after the tick, so a gradient shed mutating the pending
      // queues here is safe.
      if (adaptive) controller_tick();
    }
  };
  // Idle shard: pop from siblings' queues, oldest shard first from s+1. The
  // executing partition gets the steal attributed (ISSUE 5 stats).
  const auto try_steal = [&]() -> bool {
    bool stole = false;
    int budget = cfg_.max_batch;
    for (int k = 1; k < nshards && budget > 0; ++k) {
      Shard& victim = *shards_[static_cast<std::size_t>((s + k) % nshards)];
      std::shared_ptr<detail::RequestState> r;
      while (budget > 0 && victim.queue.try_pop(r)) {
        shard.stolen.fetch_add(1, std::memory_order_relaxed);
        if (runtime() == Runtime::kPool) {
          ThreadPool& pool = ThreadPool::instance();
          pool.note_steal(s % pool.partitions());
        }
        admit(std::move(r));
        stole = true;
        --budget;
      }
    }
    return stole;
  };

  while (true) {
    // Deterministic wedge (dispatcher_stall fault site, any kind): park this
    // thread mid-iteration — heartbeat frozen, backlog accumulating — until
    // the watchdog's restart_dispatcher() bumps the shard generation or
    // shutdown begins. This is exactly the failure the watchdog exists to
    // detect; the site sits OUTSIDE any session exec mutex so failover
    // re-warms never deadlock against the wedged thread.
    if (common::fault::should_inject(common::fault::Site::kDispatcherStall) !=
        common::fault::Kind::kNone) {
      while (!stop_.load(std::memory_order_acquire) && !stale()) {
        std::this_thread::sleep_for(std::chrono::microseconds(100));
      }
    }
    if (stale()) {
      // Replaced by a supervised restart: hand every locally pending request
      // back through the admission queue for the new dispatcher, then exit
      // without touching shard state again. The submitters_ guard is the
      // same no-lost-work protocol submit() uses: the new dispatcher cannot
      // conclude its shutdown drain while we are mid-handback, so either our
      // pushes land in time to be drained or we resolve them terminally
      // ourselves — a stranded request always gets exactly one status.
      submitters_.fetch_add(1, std::memory_order_seq_cst);
      const bool closed = stop_.load(std::memory_order_seq_cst);
      for (auto& per_class : pending) {
        for (auto& entry : per_class) {
          for (auto& req : entry.second.reqs) {
            if (closed || !shard.queue.try_push(req)) {
              if (req->lane >= 0) {
                req->session->release_lane(req->lane);
                req->lane = -1;
              }
              complete_terminal(
                  *req, Status::Unavailable("dispatcher restarted; request "
                                            "not rescheduled"));
            }
          }
          entry.second.reqs.clear();
        }
      }
      wake_shard(shard);
      submitters_.fetch_sub(1, std::memory_order_seq_cst);
      return;
    }
    shard.heartbeat.fetch_add(1, std::memory_order_relaxed);

    // Sample the backlog BEFORE draining/flushing (flushing empties groups,
    // so sampling after would cap the metric near max_batch). CAS-max:
    // plain check-then-store would let two shards' interleaved updates
    // regress the published high-water mark.
    const std::size_t depth = shard.queue.size_approx() + n_pending;
    std::size_t seen = queue_highwater_.load(std::memory_order_relaxed);
    while (depth > seen && !queue_highwater_.compare_exchange_weak(
                               seen, depth, std::memory_order_relaxed)) {
    }

    std::shared_ptr<detail::RequestState> r;
    drain();
    shard.pending_pub.store(n_pending, std::memory_order_relaxed);

    if (stop_.load(std::memory_order_seq_cst)) {
      // Draining: force-flush every partial batch — repeatedly, because a
      // stepped group needs one window per remaining token step and a lane-
      // starved group must wait for a sibling shard's completions — then
      // exit once no producer is mid-submit, nothing is pending and the
      // shard's queue is provably empty. Every shard drains its own queue,
      // so stealing is unnecessary here.
      bool progressed = true;
      while (n_pending > 0 && progressed) {
        progressed = false;
        for (auto& per_class : pending) {
          for (auto& entry : per_class) {
            if (!entry.second.reqs.empty()) {
              progressed = flush(entry.second) || progressed;
            }
          }
        }
      }
      if (submitters_.load(std::memory_order_seq_cst) == 0 &&
          n_pending == 0) {
        if (!shard.queue.try_pop(r)) break;
        admit(std::move(r));
      } else {
        std::this_thread::yield();
      }
      continue;
    }

    if (adaptive) controller_tick();
    flush_ready();
    shard.pending_pub.store(n_pending, std::memory_order_relaxed);

    if (n_pending == 0) {
      if (can_steal) {
        // Consume any pending nudge before scanning, so a nudge that lands
        // mid-scan wakes the park below instead of being lost.
        shard.steal_hint.store(false, std::memory_order_relaxed);
        if (try_steal()) continue;
      }
      std::unique_lock<std::mutex> lk(shard.wake_mu);
      shard.parked.store(true, std::memory_order_relaxed);
      shard.idle_parked.store(true, std::memory_order_relaxed);
      std::atomic_thread_fence(std::memory_order_seq_cst);
      shard.wake_cv.wait(lk, [&] {
        return shard.queue.size_approx() > 0 ||
               stop_.load(std::memory_order_acquire) || stale() ||
               (can_steal &&
                shard.steal_hint.load(std::memory_order_acquire));
      });
      shard.idle_parked.store(false, std::memory_order_relaxed);
      shard.parked.store(false, std::memory_order_relaxed);
      continue;
    }

    // Partial batches: expire never-executed requests whose own deadline
    // passed (they leave the batch without running; in-flight stepped
    // requests are immune), then sleep until the next deadline — batch or
    // per-request, whichever is sooner — or a new arrival. A group that is
    // ready but still here is lane-starved; lanes free on another shard's
    // completions, which don't wake this one, so poll on a short backoff.
    const auto now = steady_clock::now();
    steady_clock::time_point earliest = steady_clock::time_point::max();
    for (auto& per_class : pending) {
      for (auto& entry : per_class) {
        Pending& p = entry.second;
        if (p.reqs.empty()) continue;
        std::size_t w = 0;
        for (std::size_t i = 0; i < p.reqs.size(); ++i) {
          if (p.reqs[i]->step == 0 && p.reqs[i]->has_deadline &&
              now >= p.reqs[i]->deadline) {
            complete_terminal(
                *p.reqs[i],
                Status::DeadlineExceeded("deadline passed while queued"));
            --n_pending;
          } else {
            if (w != i) p.reqs[w] = std::move(p.reqs[i]);
            ++w;
          }
        }
        p.reqs.resize(w);
        if (p.reqs.empty()) continue;
        p.oldest = p.reqs.front()->t_submit;
        const auto batch_deadline =
            p.oldest + std::chrono::microseconds(cfg_.batch_usecs);
        const bool ready =
            p.reqs.front()->step > 0 ||
            static_cast<int>(p.reqs.size()) >= effective_batch(entry.first) ||
            batch_deadline <= now;
        if (ready) {
          earliest = std::min(earliest, now + std::chrono::microseconds(200));
        } else {
          earliest = std::min(earliest, batch_deadline);
          for (const auto& r : p.reqs) {
            if (r->has_deadline) earliest = std::min(earliest, r->deadline);
          }
        }
      }
    }
    if (n_pending == 0) continue;
    std::unique_lock<std::mutex> lk(shard.wake_mu);
    shard.parked.store(true, std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    shard.wake_cv.wait_until(lk, earliest, [&] {
      return shard.queue.size_approx() > 0 ||
             stop_.load(std::memory_order_acquire) || stale();
    });
    shard.parked.store(false, std::memory_order_relaxed);
  }
}

void RequestScheduler::shutdown() {
  stop_.store(true, std::memory_order_seq_cst);
  for (auto& shard : shards_) wake_shard(*shard);
  bool expected = false;
  if (joined_.compare_exchange_strong(expected, true)) {
    // restart_mu_ held across the joins: restart_dispatcher() either
    // completes before we take it (its replacement thread is in shards_ /
    // retired_ and gets joined) or takes it after stop_ is set and refuses.
    std::lock_guard<std::mutex> g(restart_mu_);
    for (auto& shard : shards_) {
      if (shard->dispatcher.joinable()) shard->dispatcher.join();
    }
    for (auto& t : retired_) {
      if (t.joinable()) t.join();
    }
    retired_.clear();
  }
}

std::uint64_t RequestScheduler::shard_heartbeat(int s) const {
  if (s < 0 || s >= shard_count()) return 0;
  return shards_[static_cast<std::size_t>(s)]->heartbeat.load(
      std::memory_order_acquire);
}

std::size_t RequestScheduler::shard_backlog(int s) const {
  if (s < 0 || s >= shard_count()) return 0;
  const Shard& shard = *shards_[static_cast<std::size_t>(s)];
  return shard.queue.size_approx() +
         shard.pending_pub.load(std::memory_order_relaxed);
}

bool RequestScheduler::shard_quarantined(int s) const {
  if (s < 0 || s >= shard_count()) return false;
  return shards_[static_cast<std::size_t>(s)]->quarantined.load(
      std::memory_order_acquire);
}

void RequestScheduler::set_shard_quarantined(int s, bool q) {
  if (s < 0 || s >= shard_count()) return;
  shards_[static_cast<std::size_t>(s)]->quarantined.store(
      q, std::memory_order_release);
}

int RequestScheduler::overload_level(int s) const {
  if (s < 0 || s >= shard_count()) return 0;
  return shards_[static_cast<std::size_t>(s)]->overload_level.load(
      std::memory_order_relaxed);
}

bool RequestScheduler::restart_dispatcher(int s) {
  if (s < 0 || s >= shard_count()) return false;
  Shard& shard = *shards_[static_cast<std::size_t>(s)];
  std::lock_guard<std::mutex> g(restart_mu_);
  if (stop_.load(std::memory_order_seq_cst)) return false;
  // Bumping the generation (a) releases a thread wedged at the
  // dispatcher_stall fault point and (b) marks the old thread stale: it
  // hands its local pending work back through the queue and exits instead
  // of racing the replacement on shard state.
  const std::uint64_t gen =
      shard.generation.fetch_add(1, std::memory_order_acq_rel) + 1;
  wake_shard(shard);  // a parked stale thread must observe the bump
  retired_.push_back(std::move(shard.dispatcher));
  shard.dispatcher = std::thread([this, s, gen] { dispatcher_main(s, gen); });
  restarts_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

std::vector<ModelStats> RequestScheduler::stats() const {
  std::lock_guard<std::mutex> g(stats_mu_);
  std::vector<ModelStats> out;
  out.reserve(stats_.size());
  for (const auto& entry : stats_) out.push_back(entry.second);
  std::sort(out.begin(), out.end(),
            [](const ModelStats& a, const ModelStats& b) {
              return a.model < b.model;
            });
  return out;
}

RequestScheduler::Counters RequestScheduler::counters() const {
  Counters c;
  c.submitted = submitted_.load(std::memory_order_relaxed);
  c.completed = completed_.load(std::memory_order_relaxed);
  c.failed = failed_.load(std::memory_order_relaxed);
  c.expired = expired_.load(std::memory_order_relaxed);
  c.shed = shed_.load(std::memory_order_relaxed);
  c.rejected = rejected_.load(std::memory_order_relaxed);
  return c;
}

std::uint64_t RequestScheduler::steals(int s) const {
  if (s < 0 || s >= shard_count()) return 0;
  return shards_[static_cast<std::size_t>(s)]->stolen.load(
      std::memory_order_relaxed);
}

}  // namespace plt::serving
