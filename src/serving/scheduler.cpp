#include "serving/scheduler.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "common/env.hpp"
#include "common/threading.hpp"
#include "common/timer.hpp"

namespace plt::serving {

using steady_clock = std::chrono::steady_clock;

SchedulerConfig SchedulerConfig::from_env() {
  const SchedulerConfig def;
  SchedulerConfig c;
  c.max_batch = static_cast<int>(
      common::env_int("PLT_SERVE_MAX_BATCH", def.max_batch, 1, 4096));
  c.batch_usecs =
      common::env_int("PLT_SERVE_BATCH_USECS", def.batch_usecs, 0, 60000000);
  c.queue_capacity = static_cast<std::size_t>(common::env_int(
      "PLT_SERVE_QUEUE_CAP", static_cast<std::int64_t>(def.queue_capacity), 2,
      1 << 20));
  return c;
}

void RequestHandle::wait() const {
  if (st_ == nullptr) return;
  if (st_->done.load(std::memory_order_acquire)) return;
  // Straight to the condvar: a request spans at least one model forward, so
  // spinning here only steals cycles from the team doing the work.
  RequestScheduler* owner = st_->owner;
  std::unique_lock<std::mutex> lk(owner->done_mu_);
  owner->done_cv_.wait(
      lk, [&] { return st_->done.load(std::memory_order_acquire); });
}

RequestScheduler::RequestScheduler(SchedulerConfig cfg)
    : cfg_(cfg), queue_(cfg.queue_capacity) {
  PLT_CHECK(cfg_.max_batch >= 1, "serving: max_batch must be >= 1");
  dispatcher_ = std::thread([this] { dispatcher_main(); });
}

RequestScheduler::~RequestScheduler() { shutdown(); }

void RequestScheduler::wake_dispatcher() {
  {
    std::lock_guard<std::mutex> g(wake_mu_);
  }
  wake_cv_.notify_all();
}

RequestHandle RequestScheduler::submit(const std::shared_ptr<Session>& session,
                                       const float* in, float* out) {
  PLT_CHECK(session != nullptr, "serving: submit with null session");
  submitters_.fetch_add(1, std::memory_order_seq_cst);
  if (stop_.load(std::memory_order_seq_cst)) {
    submitters_.fetch_sub(1, std::memory_order_seq_cst);
    return RequestHandle();  // admission closed
  }

  auto st = std::make_shared<detail::RequestState>();
  st->session = session;
  st->in = in;
  st->out = out;
  st->owner = this;
  st->t_submit = steady_clock::now();

  while (!queue_.try_push(st)) {
    // Full queue = back-pressure: make sure the dispatcher is draining, then
    // let it run. Accepted requests are never dropped.
    wake_dispatcher();
    std::this_thread::yield();
  }
  // Fence pairs with the dispatcher's fence after it sets parked: either we
  // observe parked and notify, or the dispatcher's predicate observes our
  // push. Never both missed (no lost wakeup).
  std::atomic_thread_fence(std::memory_order_seq_cst);
  if (dispatcher_parked_.load(std::memory_order_relaxed)) wake_dispatcher();

  submitters_.fetch_sub(1, std::memory_order_seq_cst);
  return RequestHandle(std::move(st));
}

void RequestScheduler::execute_batch(
    Session* session, std::vector<std::shared_ptr<detail::RequestState>> reqs,
    std::size_t pending_highwater) {
  const int batch = static_cast<int>(reqs.size());
  std::vector<detail::RequestState*> rp(reqs.size());
  for (std::size_t i = 0; i < reqs.size(); ++i) rp[i] = reqs[i].get();

  WallTimer exec_timer;
  // One region for the whole batch: team member t serves requests
  // t, t + nthreads, ... on their own lanes; nests inside a request run as
  // serial walks (nested-region rule), so this is the only dispatch cost.
  parallel_region([&](int tid, int nthreads) {
    for (int i = tid; i < batch; i += nthreads) {
      session->run(i, rp[i]->in, rp[i]->out);
    }
  });
  const double exec_us = exec_timer.micros();

  const auto now = steady_clock::now();
  double sum_lat = 0.0, max_lat = 0.0;
  for (auto& r : reqs) {
    const double lat =
        std::chrono::duration<double, std::micro>(now - r->t_submit).count();
    r->latency_us = lat;  // before the release store: visible once done
    sum_lat += lat;
    max_lat = std::max(max_lat, lat);
  }

  // Stats before completion: a client that has waited on all its handles
  // must see every one of them counted.
  {
    std::lock_guard<std::mutex> g(stats_mu_);
    ModelStats& st = stats_[session->name()];
    if (st.model.empty()) st.model = session->name();
    st.requests += static_cast<std::uint64_t>(batch);
    st.batches += 1;
    st.batched_requests_sum += static_cast<std::uint64_t>(batch);
    st.sum_latency_us += sum_lat;
    st.max_latency_us = std::max(st.max_latency_us, max_lat);
    st.sum_exec_us += exec_us;
    st.pending_highwater = std::max(st.pending_highwater, pending_highwater);
  }

  for (auto& r : reqs) r->done.store(true, std::memory_order_release);
  {
    std::lock_guard<std::mutex> g(done_mu_);
  }
  done_cv_.notify_all();
}

void RequestScheduler::dispatcher_main() {
  std::unordered_map<Session*, Pending> pending;
  std::size_t n_pending = 0;

  const auto effective_batch = [&](Session* s) {
    return std::min(cfg_.max_batch, s->lanes());
  };
  const auto flush = [&](Pending& p) {
    Session* s = p.reqs.front()->session.get();
    n_pending -= p.reqs.size();
    const std::size_t hw = p.highwater;
    execute_batch(s, std::move(p.reqs), hw);
    p.reqs.clear();
  };
  const auto admit = [&](std::shared_ptr<detail::RequestState> r) {
    Session* s = r->session.get();
    Pending& p = pending[s];
    if (p.reqs.empty()) p.oldest = r->t_submit;
    p.reqs.push_back(std::move(r));
    ++n_pending;
    p.highwater = std::max(p.highwater, p.reqs.size());
    if (static_cast<int>(p.reqs.size()) >= effective_batch(s)) flush(p);
  };

  while (true) {
    const std::size_t depth = queue_.size_approx() + n_pending;
    if (depth > queue_highwater_.load(std::memory_order_relaxed)) {
      queue_highwater_.store(depth, std::memory_order_relaxed);
    }

    std::shared_ptr<detail::RequestState> r;
    while (queue_.try_pop(r)) admit(std::move(r));

    if (stop_.load(std::memory_order_seq_cst)) {
      // Draining: flush every partial batch immediately, then exit once no
      // producer is mid-submit and the queue is provably empty.
      for (auto& entry : pending) {
        if (!entry.second.reqs.empty()) flush(entry.second);
      }
      if (submitters_.load(std::memory_order_seq_cst) == 0) {
        if (!queue_.try_pop(r)) break;
        admit(std::move(r));
      } else {
        std::this_thread::yield();
      }
      continue;
    }

    if (n_pending == 0) {
      std::unique_lock<std::mutex> lk(wake_mu_);
      dispatcher_parked_.store(true, std::memory_order_relaxed);
      std::atomic_thread_fence(std::memory_order_seq_cst);
      wake_cv_.wait(lk, [&] {
        return queue_.size_approx() > 0 ||
               stop_.load(std::memory_order_acquire);
      });
      dispatcher_parked_.store(false, std::memory_order_relaxed);
      continue;
    }

    // Partial batches: flush the ones whose oldest request hit the deadline,
    // then sleep until the next deadline (or a new arrival).
    const auto now = steady_clock::now();
    steady_clock::time_point earliest = steady_clock::time_point::max();
    for (auto& entry : pending) {
      Pending& p = entry.second;
      if (p.reqs.empty()) continue;
      const auto deadline =
          p.oldest + std::chrono::microseconds(cfg_.batch_usecs);
      if (deadline <= now) {
        flush(p);
      } else {
        earliest = std::min(earliest, deadline);
      }
    }
    if (n_pending == 0) continue;
    std::unique_lock<std::mutex> lk(wake_mu_);
    dispatcher_parked_.store(true, std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    wake_cv_.wait_until(lk, earliest, [&] {
      return queue_.size_approx() > 0 || stop_.load(std::memory_order_acquire);
    });
    dispatcher_parked_.store(false, std::memory_order_relaxed);
  }
}

void RequestScheduler::shutdown() {
  stop_.store(true, std::memory_order_seq_cst);
  wake_dispatcher();
  bool expected = false;
  if (joined_.compare_exchange_strong(expected, true)) {
    if (dispatcher_.joinable()) dispatcher_.join();
  }
}

std::vector<ModelStats> RequestScheduler::stats() const {
  std::lock_guard<std::mutex> g(stats_mu_);
  std::vector<ModelStats> out;
  out.reserve(stats_.size());
  for (const auto& entry : stats_) out.push_back(entry.second);
  std::sort(out.begin(), out.end(),
            [](const ModelStats& a, const ModelStats& b) {
              return a.model < b.model;
            });
  return out;
}

}  // namespace plt::serving
